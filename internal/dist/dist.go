// Package dist implements HPF's data-mapping model for one-dimensional
// arrays: the regular BLOCK, BLOCK(k), CYCLIC and CYCLIC(k)
// distributions of the HPF-1 standard, replication, and the irregular
// contiguous (cut-point) distributions that the paper's proposed
// ATOM:BLOCK extension and load-balancing partitioners produce (§5.2).
//
// A Dist describes how the index space [0, N) of a global array maps to
// NP processors' memories ("distributed array descriptor", the DADs of
// §5.2.1). The owner-computes rule, local/global index translation and
// per-processor counts all derive from it. ALIGN is expressed by
// sharing one Dist between arrays (the paper aligns q, r, x and b with
// p so one descriptor governs all of them).
package dist

import "fmt"

// Dist maps the global indices of an N-element array onto NP
// processors. Implementations must be pure functions of the index (no
// state), so descriptors can be shared freely across arrays (HPF
// ALIGN).
type Dist interface {
	// N is the global array length.
	N() int
	// NP is the number of processors.
	NP() int
	// Owner returns the rank owning global index g.
	Owner(g int) int
	// Local translates a global index to (owner, local offset).
	Local(g int) (proc, off int)
	// Global translates (proc, local offset) back to a global index.
	Global(proc, off int) int
	// Count returns how many elements proc owns.
	Count(proc int) int
	// Name describes the distribution for reports, e.g. "BLOCK".
	Name() string
}

// Contiguous is implemented by distributions whose per-processor index
// sets are contiguous global ranges [Lo(p), Lo(p)+Count(p)). Row- and
// column-partitioned matrix-vector products need this to slice their
// local strips.
type Contiguous interface {
	Dist
	// Lo returns the first global index owned by proc.
	Lo(proc int) int
}

// Same reports whether two descriptors define the same mapping. It
// compares structurally (name, shape, per-processor counts and, for
// contiguous distributions, block starts) rather than with ==, because
// descriptors like Irregular are not comparable values. Vector
// operations use it to enforce HPF alignment.
func Same(a, b Dist) bool {
	if a.Name() != b.Name() || a.N() != b.N() || a.NP() != b.NP() {
		return false
	}
	ca, aok := a.(Contiguous)
	cb, bok := b.(Contiguous)
	if aok != bok {
		return false
	}
	for r := 0; r < a.NP(); r++ {
		if a.Count(r) != b.Count(r) {
			return false
		}
		if aok && ca.Lo(r) != cb.Lo(r) {
			return false
		}
	}
	return true
}

// Counts returns the per-processor element counts of d as a slice,
// which is the shape collective (all)gather/scatter operations take.
func Counts(d Dist) []int {
	c := make([]int, d.NP())
	for r := range c {
		c[r] = d.Count(r)
	}
	return c
}

// check panics if (n, np) are not a valid descriptor shape.
func check(n, np int) {
	if n < 0 {
		panic(fmt.Sprintf("dist: negative array length %d", n))
	}
	if np < 1 {
		panic(fmt.Sprintf("dist: invalid processor count %d", np))
	}
}

// Block is HPF's DISTRIBUTE (BLOCK): processor r owns the contiguous
// range [r*n/np, (r+1)*n/np), i.e. blocks as equal as possible with the
// remainder spread one element at a time over the leading processors.
type Block struct {
	n, np int
}

// NewBlock creates a BLOCK distribution of n elements over np procs.
func NewBlock(n, np int) Block {
	check(n, np)
	return Block{n: n, np: np}
}

// N implements Dist.
func (b Block) N() int { return b.n }

// NP implements Dist.
func (b Block) NP() int { return b.np }

// Name implements Dist.
func (b Block) Name() string { return "BLOCK" }

// Lo implements Contiguous.
func (b Block) Lo(proc int) int { return proc * b.n / b.np }

// Count implements Dist.
func (b Block) Count(proc int) int { return b.Lo(proc+1) - b.Lo(proc) }

// Owner implements Dist.
func (b Block) Owner(g int) int {
	b.boundsCheck(g)
	// Invert lo(r) = floor(r*n/np): candidate then adjust.
	if b.n == 0 {
		return 0
	}
	r := g * b.np / b.n
	for r+1 < b.np && b.Lo(r+1) <= g {
		r++
	}
	for r > 0 && b.Lo(r) > g {
		r--
	}
	return r
}

// Local implements Dist.
func (b Block) Local(g int) (int, int) {
	r := b.Owner(g)
	return r, g - b.Lo(r)
}

// Global implements Dist.
func (b Block) Global(proc, off int) int { return b.Lo(proc) + off }

func (b Block) boundsCheck(g int) {
	if g < 0 || g >= b.n {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", g, b.n))
	}
}

// BlockSize is HPF's DISTRIBUTE (BLOCK(k)): fixed blocks of k elements
// assigned to processors in order; the final processor may hold a short
// block (or some trailing processors none). The paper uses
// BLOCK((n+NP-1)/NP) to force the (n+1)-element row/col pointer array's
// last element onto the last non-empty processor.
type BlockSize struct {
	n, np, k int
}

// NewBlockSize creates a BLOCK(k) distribution. k must be positive and
// k*np must cover n (an HPF constraint).
func NewBlockSize(n, np, k int) BlockSize {
	check(n, np)
	if k < 1 {
		panic(fmt.Sprintf("dist: BLOCK(k) with k=%d", k))
	}
	if k*np < n {
		panic(fmt.Sprintf("dist: BLOCK(%d) over %d procs cannot hold %d elements", k, np, n))
	}
	return BlockSize{n: n, np: np, k: k}
}

// N implements Dist.
func (b BlockSize) N() int { return b.n }

// NP implements Dist.
func (b BlockSize) NP() int { return b.np }

// Name implements Dist.
func (b BlockSize) Name() string { return fmt.Sprintf("BLOCK(%d)", b.k) }

// K returns the block size.
func (b BlockSize) K() int { return b.k }

// Lo implements Contiguous.
func (b BlockSize) Lo(proc int) int {
	lo := proc * b.k
	if lo > b.n {
		lo = b.n
	}
	return lo
}

// Count implements Dist.
func (b BlockSize) Count(proc int) int { return b.Lo(proc+1) - b.Lo(proc) }

// Owner implements Dist.
func (b BlockSize) Owner(g int) int {
	if g < 0 || g >= b.n {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", g, b.n))
	}
	return g / b.k
}

// Local implements Dist.
func (b BlockSize) Local(g int) (int, int) {
	r := b.Owner(g)
	return r, g - r*b.k
}

// Global implements Dist.
func (b BlockSize) Global(proc, off int) int { return proc*b.k + off }

// Cyclic is HPF's DISTRIBUTE (CYCLIC(k)): blocks of k elements dealt
// round-robin to processors. CYCLIC(1) is plain CYCLIC.
type Cyclic struct {
	n, np, k int
}

// NewCyclic creates a CYCLIC(1) distribution.
func NewCyclic(n, np int) Cyclic { return NewCyclicK(n, np, 1) }

// NewCyclicK creates a CYCLIC(k) distribution.
func NewCyclicK(n, np, k int) Cyclic {
	check(n, np)
	if k < 1 {
		panic(fmt.Sprintf("dist: CYCLIC(k) with k=%d", k))
	}
	return Cyclic{n: n, np: np, k: k}
}

// N implements Dist.
func (c Cyclic) N() int { return c.n }

// NP implements Dist.
func (c Cyclic) NP() int { return c.np }

// Name implements Dist.
func (c Cyclic) Name() string {
	if c.k == 1 {
		return "CYCLIC"
	}
	return fmt.Sprintf("CYCLIC(%d)", c.k)
}

// K returns the block size.
func (c Cyclic) K() int { return c.k }

// Owner implements Dist.
func (c Cyclic) Owner(g int) int {
	if g < 0 || g >= c.n {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", g, c.n))
	}
	return (g / c.k) % c.np
}

// Local implements Dist.
func (c Cyclic) Local(g int) (int, int) {
	r := c.Owner(g)
	blk := g / c.k
	round := blk / c.np
	return r, round*c.k + g%c.k
}

// Global implements Dist.
func (c Cyclic) Global(proc, off int) int {
	round := off / c.k
	return (round*c.np+proc)*c.k + off%c.k
}

// Count implements Dist.
func (c Cyclic) Count(proc int) int {
	fullRounds := c.n / (c.k * c.np)
	count := fullRounds * c.k
	rem := c.n - fullRounds*c.k*c.np
	start := proc * c.k
	switch {
	case rem > start+c.k:
		count += c.k
	case rem > start:
		count += rem - start
	}
	return count
}

// Replicated maps every element to every processor: HPF's unmapped /
// replicated arrays (the small cut-off-point arrays of §5.2.1 are
// "replicated over all processors"). Owner reports rank 0 as the
// canonical owner.
type Replicated struct {
	n, np int
}

// NewReplicated creates a replicated descriptor.
func NewReplicated(n, np int) Replicated {
	check(n, np)
	return Replicated{n: n, np: np}
}

// N implements Dist.
func (r Replicated) N() int { return r.n }

// NP implements Dist.
func (r Replicated) NP() int { return r.np }

// Name implements Dist.
func (r Replicated) Name() string { return "REPLICATED" }

// Owner implements Dist (canonical owner is rank 0).
func (r Replicated) Owner(g int) int { return 0 }

// Local implements Dist.
func (r Replicated) Local(g int) (int, int) { return 0, g }

// Global implements Dist.
func (r Replicated) Global(proc, off int) int { return off }

// Count implements Dist: every processor holds all n elements.
func (r Replicated) Count(proc int) int { return r.n }

// Lo implements Contiguous.
func (r Replicated) Lo(proc int) int { return 0 }

// Irregular is a contiguous distribution with explicit cut points:
// processor r owns [cuts[r], cuts[r+1]). This is the descriptor shape
// the paper's ATOM:BLOCK redistribution and the CG_BALANCED_PARTITIONER
// produce — "a small array in the size of the number of processors
// keeps the cut-off points, and it is replicated over all processors"
// (§5.2.1).
type Irregular struct {
	cuts []int // len np+1, cuts[0]==0, cuts[np]==n, nondecreasing
}

// NewIrregular creates an irregular contiguous distribution from cut
// points. cuts must have length np+1, start at 0, end at n, and be
// nondecreasing.
func NewIrregular(cuts []int) Irregular {
	if len(cuts) < 2 {
		panic("dist: Irregular needs at least 2 cut points")
	}
	if cuts[0] != 0 {
		panic(fmt.Sprintf("dist: Irregular cuts must start at 0, got %d", cuts[0]))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			panic(fmt.Sprintf("dist: Irregular cuts must be nondecreasing, got %v", cuts))
		}
	}
	c := make([]int, len(cuts))
	copy(c, cuts)
	return Irregular{cuts: c}
}

// N implements Dist.
func (ir Irregular) N() int { return ir.cuts[len(ir.cuts)-1] }

// NP implements Dist.
func (ir Irregular) NP() int { return len(ir.cuts) - 1 }

// Name implements Dist.
func (ir Irregular) Name() string { return "IRREGULAR" }

// Cuts returns a copy of the cut-point array.
func (ir Irregular) Cuts() []int { return append([]int(nil), ir.cuts...) }

// Lo implements Contiguous.
func (ir Irregular) Lo(proc int) int { return ir.cuts[proc] }

// Count implements Dist.
func (ir Irregular) Count(proc int) int { return ir.cuts[proc+1] - ir.cuts[proc] }

// Owner implements Dist by binary search over the cut points.
func (ir Irregular) Owner(g int) int {
	n := ir.N()
	if g < 0 || g >= n {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", g, n))
	}
	lo, hi := 0, ir.NP()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ir.cuts[mid+1] <= g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Local implements Dist.
func (ir Irregular) Local(g int) (int, int) {
	r := ir.Owner(g)
	return r, g - ir.cuts[r]
}

// Global implements Dist.
func (ir Irregular) Global(proc, off int) int { return ir.cuts[proc] + off }
