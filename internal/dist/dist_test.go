package dist

import (
	"testing"
	"testing/quick"
)

// roundTrip checks the fundamental descriptor invariants for every
// global index of d: Local/Global are inverses, Owner agrees with
// Local, counts sum to N, and local offsets are dense in [0, Count).
func roundTrip(t *testing.T, d Dist) {
	t.Helper()
	n, np := d.N(), d.NP()
	total := 0
	for r := 0; r < np; r++ {
		c := d.Count(r)
		if c < 0 {
			t.Fatalf("%s n=%d np=%d: Count(%d) = %d < 0", d.Name(), n, np, r, c)
		}
		total += c
	}
	if total != n {
		// Replicated legitimately over-counts.
		if _, repl := d.(Replicated); !repl {
			t.Fatalf("%s n=%d np=%d: counts sum to %d", d.Name(), n, np, total)
		}
	}
	seen := make(map[[2]int]bool)
	for g := 0; g < n; g++ {
		owner := d.Owner(g)
		if owner < 0 || owner >= np {
			t.Fatalf("%s: Owner(%d) = %d out of range", d.Name(), g, owner)
		}
		r, off := d.Local(g)
		if r != owner {
			t.Fatalf("%s: Local(%d) proc %d != Owner %d", d.Name(), g, r, owner)
		}
		if off < 0 || off >= d.Count(r) {
			t.Fatalf("%s: Local(%d) offset %d out of [0,%d)", d.Name(), g, off, d.Count(r))
		}
		if back := d.Global(r, off); back != g {
			t.Fatalf("%s: Global(Local(%d)) = %d", d.Name(), g, back)
		}
		key := [2]int{r, off}
		if seen[key] {
			t.Fatalf("%s: duplicate (proc,off) = %v", d.Name(), key)
		}
		seen[key] = true
	}
}

func TestBlockRoundTrip(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{0, 1, 5, 16, 17, 100} {
			roundTrip(t, NewBlock(n, np))
		}
	}
}

func TestBlockShape(t *testing.T) {
	b := NewBlock(10, 4)
	// 10/4: blocks of sizes 2,3,2,3 by the floor formula (r*n/np).
	wantLo := []int{0, 2, 5, 7}
	for r, lo := range wantLo {
		if b.Lo(r) != lo {
			t.Errorf("Lo(%d) = %d, want %d", r, b.Lo(r), lo)
		}
	}
	sizes := Counts(b)
	wantSizes := []int{2, 3, 2, 3}
	for r := range wantSizes {
		if sizes[r] != wantSizes[r] {
			t.Errorf("Count(%d) = %d, want %d", r, sizes[r], wantSizes[r])
		}
	}
	// Max and min block sizes differ by at most one (HPF BLOCK evenness).
	for _, np := range []int{2, 3, 5, 8} {
		for _, n := range []int{np, 2*np - 1, 1000} {
			bb := NewBlock(n, np)
			mn, mx := n, 0
			for r := 0; r < np; r++ {
				c := bb.Count(r)
				if c < mn {
					mn = c
				}
				if c > mx {
					mx = c
				}
			}
			if mx-mn > 1 {
				t.Errorf("BLOCK(%d over %d) block sizes range [%d,%d]", n, np, mn, mx)
			}
		}
	}
}

func TestBlockSize(t *testing.T) {
	// The paper's BLOCK((n+NP-1)/NP) for the n+1 pointer array: n=10,
	// NP=4 -> k=3; the 11 elements land as 3,3,3,2.
	n, np := 11, 4
	k := (10 + np - 1) / np
	b := NewBlockSize(n, np, k)
	roundTrip(t, b)
	want := []int{3, 3, 3, 2}
	for r, w := range want {
		if b.Count(r) != w {
			t.Errorf("Count(%d) = %d, want %d", r, b.Count(r), w)
		}
	}
	// The last element must be on the last processor holding data —
	// exactly what the paper's explicit block size arranges.
	if owner := b.Owner(n - 1); owner != np-1 {
		t.Errorf("Owner(last) = %d, want %d", owner, np-1)
	}
	if b.Name() != "BLOCK(3)" {
		t.Errorf("Name = %q", b.Name())
	}
	if b.K() != 3 {
		t.Errorf("K = %d", b.K())
	}
	// Trailing processors may be empty.
	b2 := NewBlockSize(5, 4, 5)
	roundTrip(t, b2)
	if b2.Count(0) != 5 || b2.Count(1) != 0 || b2.Count(3) != 0 {
		t.Errorf("BLOCK(5) of 5 over 4: counts %v", Counts(b2))
	}
}

func TestBlockSizeValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBlockSize(10, 4, 0) },
		func() { NewBlockSize(10, 2, 4) }, // 2*4 < 10
		func() { NewBlock(-1, 4) },
		func() { NewBlock(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}

func TestCyclicRoundTrip(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 5} {
		for _, n := range []int{0, 1, 7, 16, 23} {
			for _, k := range []int{1, 2, 3} {
				roundTrip(t, NewCyclicK(n, np, k))
			}
		}
	}
}

func TestCyclicShape(t *testing.T) {
	c := NewCyclic(10, 3)
	// indices 0..9 cyclic over 3: owner = g % 3.
	for g := 0; g < 10; g++ {
		if c.Owner(g) != g%3 {
			t.Errorf("Owner(%d) = %d, want %d", g, c.Owner(g), g%3)
		}
	}
	if c.Count(0) != 4 || c.Count(1) != 3 || c.Count(2) != 3 {
		t.Errorf("CYCLIC counts = %v", Counts(c))
	}
	if c.Name() != "CYCLIC" {
		t.Errorf("Name = %q", c.Name())
	}
	ck := NewCyclicK(10, 2, 3)
	// blocks: [0..2]->0, [3..5]->1, [6..8]->0, [9]->1
	if ck.Owner(7) != 0 || ck.Owner(9) != 1 {
		t.Errorf("CYCLIC(3) owners wrong: %d %d", ck.Owner(7), ck.Owner(9))
	}
	if ck.Name() != "CYCLIC(3)" || ck.K() != 3 {
		t.Errorf("Name=%q K=%d", ck.Name(), ck.K())
	}
}

func TestReplicated(t *testing.T) {
	r := NewReplicated(6, 3)
	if r.N() != 6 || r.NP() != 3 || r.Name() != "REPLICATED" {
		t.Errorf("descriptor wrong: %v %v %v", r.N(), r.NP(), r.Name())
	}
	for g := 0; g < 6; g++ {
		if r.Owner(g) != 0 {
			t.Errorf("Owner(%d) = %d", g, r.Owner(g))
		}
		pr, off := r.Local(g)
		if pr != 0 || off != g {
			t.Errorf("Local(%d) = (%d,%d)", g, pr, off)
		}
	}
	for p := 0; p < 3; p++ {
		if r.Count(p) != 6 || r.Lo(p) != 0 {
			t.Errorf("proc %d: Count=%d Lo=%d", p, r.Count(p), r.Lo(p))
		}
	}
}

func TestIrregular(t *testing.T) {
	ir := NewIrregular([]int{0, 4, 4, 9, 12})
	roundTrip(t, ir)
	if ir.N() != 12 || ir.NP() != 4 {
		t.Fatalf("N=%d NP=%d", ir.N(), ir.NP())
	}
	if ir.Count(1) != 0 {
		t.Errorf("empty processor Count = %d", ir.Count(1))
	}
	if ir.Owner(4) != 2 { // proc 1 is empty so index 4 belongs to proc 2
		t.Errorf("Owner(4) = %d, want 2", ir.Owner(4))
	}
	if ir.Owner(11) != 3 || ir.Owner(0) != 0 {
		t.Errorf("boundary owners wrong")
	}
	cuts := ir.Cuts()
	cuts[0] = 99 // must not alias internal state
	if ir.Lo(0) != 0 {
		t.Error("Cuts() exposed internal slice")
	}
}

func TestIrregularValidation(t *testing.T) {
	for _, cuts := range [][]int{
		{0},
		{1, 5},
		{0, 3, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cuts %v should panic", cuts)
				}
			}()
			NewIrregular(cuts)
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	dists := []Dist{NewBlock(10, 3), NewBlockSize(10, 3, 4), NewCyclic(10, 3), NewIrregular([]int{0, 5, 10})}
	for _, d := range dists {
		for _, g := range []int{-1, 10} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: Owner(%d) should panic", d.Name(), g)
					}
				}()
				d.Owner(g)
			}()
		}
	}
}

// Property: round-trip invariants hold for random shapes.
func TestDistQuick(t *testing.T) {
	f := func(nRaw, npRaw, kRaw uint8) bool {
		n := int(nRaw % 60)
		np := int(npRaw%8) + 1
		k := int(kRaw%4) + 1
		for _, d := range []Dist{
			NewBlock(n, np),
			NewCyclicK(n, np, k),
		} {
			total := 0
			for r := 0; r < np; r++ {
				total += d.Count(r)
			}
			if total != n {
				return false
			}
			for g := 0; g < n; g++ {
				r, off := d.Local(g)
				if d.Global(r, off) != g || d.Owner(g) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContiguousInterface(t *testing.T) {
	var _ Contiguous = NewBlock(10, 2)
	var _ Contiguous = NewBlockSize(10, 2, 5)
	var _ Contiguous = NewIrregular([]int{0, 3, 10})
	var _ Contiguous = NewReplicated(10, 2)
	// Cyclic must NOT be contiguous.
	var d Dist = NewCyclic(10, 2)
	if _, ok := d.(Contiguous); ok {
		t.Error("Cyclic should not satisfy Contiguous")
	}
}

func TestSameDirect(t *testing.T) {
	cases := []struct {
		a, b Dist
		want bool
	}{
		{NewBlock(10, 2), NewBlock(10, 2), true},
		{NewBlock(10, 2), NewBlock(11, 2), false},
		{NewBlock(10, 2), NewBlock(10, 5), false},
		{NewBlock(10, 2), NewCyclic(10, 2), false},
		{NewCyclicK(10, 2, 2), NewCyclicK(10, 2, 2), true},
		{NewCyclicK(10, 2, 2), NewCyclicK(10, 2, 3), false},
		{NewIrregular([]int{0, 4, 10}), NewIrregular([]int{0, 4, 10}), true},
		{NewIrregular([]int{0, 4, 10}), NewIrregular([]int{0, 6, 10}), false},
		{NewIrregular([]int{0, 5, 10}), NewBlock(10, 2), false}, // same mapping, different name: Same is conservative
		{NewReplicated(10, 2), NewReplicated(10, 2), true},
	}
	for i, c := range cases {
		if got := Same(c.a, c.b); got != c.want {
			t.Errorf("case %d: Same(%s, %s) = %v, want %v", i, c.a.Name(), c.b.Name(), got, c.want)
		}
	}
}
