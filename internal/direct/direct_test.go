package direct

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hpfcg/internal/sparse"
)

func residual(A *sparse.Dense, x, b []float64) float64 {
	n := A.NRows
	r := make([]float64, n)
	A.MulVec(x, r)
	max := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func TestLUKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	A := sparse.NewDense(2, 2)
	A.Set(0, 0, 2)
	A.Set(0, 1, 1)
	A.Set(1, 0, 1)
	A.Set(1, 1, 3)
	x, err := SolveDense(A, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLURequiresPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	A := sparse.NewDense(2, 2)
	A.Set(0, 1, 1)
	A.Set(1, 0, 1)
	x, err := SolveDense(A, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	A := sparse.NewDense(2, 2)
	A.Set(0, 0, 1)
	A.Set(0, 1, 2)
	A.Set(1, 0, 2)
	A.Set(1, 1, 4)
	if _, err := SolveDense(A, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	rect := sparse.NewDense(2, 3)
	if _, err := Factor(rect); err == nil {
		t.Fatal("expected error for rectangular matrix")
	}
}

func TestLUSolveValidation(t *testing.T) {
	A := sparse.NewDense(2, 2)
	A.Set(0, 0, 1)
	A.Set(1, 1, 1)
	f, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSolveCSR(t *testing.T) {
	A := sparse.Laplace1D(20)
	b := sparse.Ones(20)
	x, err := SolveCSR(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(A.ToDense(), x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestCholesky(t *testing.T) {
	A := sparse.RandomSPD(25, 5, 6).ToDense()
	c, err := FactorCholesky(A)
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.RandomVector(25, 2)
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(A, x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	A := sparse.NewDense(2, 2)
	A.Set(0, 0, 1)
	A.Set(1, 1, -1)
	if _, err := FactorCholesky(A); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	rect := sparse.NewDense(2, 3)
	if _, err := FactorCholesky(rect); err == nil {
		t.Fatal("expected error for rectangular matrix")
	}
}

func TestLUMatchesCholeskyOnSPD(t *testing.T) {
	A := sparse.RandomSPD(30, 4, 9).ToDense()
	b := sparse.RandomVector(30, 3)
	xl, err := SolveDense(A, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FactorCholesky(A)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xl {
		if math.Abs(xl[i]-xc[i]) > 1e-8 {
			t.Fatalf("LU and Cholesky disagree at %d: %g vs %g", i, xl[i], xc[i])
		}
	}
}

func TestFactorReuse(t *testing.T) {
	A := sparse.RandomSPD(15, 3, 4).ToDense()
	f, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		b := sparse.RandomVector(15, seed)
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(A, x, b); r > 1e-8 {
			t.Fatalf("seed %d residual %g", seed, r)
		}
	}
}

// Property: LU solves random diagonally-dominant systems to small
// residual.
func TestLUQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		A := sparse.RandomSPD(n, 4, seed).ToDense()
		b := sparse.RandomVector(n, seed+1)
		x, err := SolveDense(A, b)
		if err != nil {
			return false
		}
		return residual(A, x, b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
