// Package direct implements the dense direct solvers the paper
// positions iterative methods against (§1): Gaussian elimination (LU
// with partial pivoting) and Cholesky factorisation. They serve as
// numerical oracles in tests and as the baseline in experiment E12
// (storage and time crossover of direct vs CG on sparse systems).
package direct

import (
	"errors"
	"fmt"
	"math"

	"hpfcg/internal/sparse"
)

// ErrSingular is returned when elimination meets a zero (or, for
// Cholesky, non-positive) pivot.
var ErrSingular = errors.New("direct: matrix is singular to working precision")

// LU holds a dense LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   *sparse.Dense // L (unit lower, below diag) and U (upper) packed
	perm []int         // row permutation
}

// Factor computes the LU factorisation of dense square A (A is not
// modified).
func Factor(A *sparse.Dense) (*LU, error) {
	n := A.NRows
	if n != A.NCols {
		return nil, fmt.Errorf("direct: matrix must be square, got %dx%d", n, A.NCols)
	}
	lu := A.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below row k.
		pivRow, pivVal := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pivVal {
				pivRow, pivVal = i, v
			}
		}
		if pivVal == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if pivRow != k {
			rk, rp := lu.Row(k), lu.Row(pivRow)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[pivRow] = perm[pivRow], perm[k]
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pk
			lu.Set(i, k, m)
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{n: n, lu: lu, perm: perm}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("direct: rhs length %d != %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply permutation, forward solve L·y = P·b (unit diagonal).
	for i := 0; i < f.n; i++ {
		sum := b[f.perm[i]]
		row := f.lu.Row(i)
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back solve U·x = y.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		sum := x[i]
		for j := i + 1; j < f.n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// SolveDense is one-shot Gaussian elimination: factor A and solve for b.
func SolveDense(A *sparse.Dense, b []float64) ([]float64, error) {
	f, err := Factor(A)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveCSR densifies a sparse matrix and solves directly — the
// "impractical for very large sparse systems" baseline whose O(n²)
// storage and O(n³) time experiment E12 quantifies.
func SolveCSR(A *sparse.CSR, b []float64) ([]float64, error) {
	return SolveDense(A.ToDense(), b)
}

// Cholesky holds the lower-triangular factor of an SPD matrix: A = L·Lᵀ.
type Cholesky struct {
	n int
	l *sparse.Dense
}

// FactorCholesky computes the Cholesky factorisation of dense SPD A.
func FactorCholesky(A *sparse.Dense) (*Cholesky, error) {
	n := A.NRows
	if n != A.NCols {
		return nil, fmt.Errorf("direct: matrix must be square, got %dx%d", n, A.NCols)
	}
	l := sparse.NewDense(n, n)
	for j := 0; j < n; j++ {
		sum := A.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l.At(j, k) * l.At(j, k)
		}
		if sum <= 0 {
			return nil, fmt.Errorf("%w: non-positive pivot %g at column %d", ErrSingular, sum, j)
		}
		ljj := math.Sqrt(sum)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := A.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b via the two triangular solves.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, len(b))
	if err := c.SolveInto(x, b, make([]float64, len(b))); err != nil {
		return nil, err
	}
	return x, nil
}

// N returns the factored dimension.
func (c *Cholesky) N() int { return c.n }

// SolveInto solves A·x = b into dst, using scratch for the forward
// substitution intermediate; all three slices must have length n and b
// may alias neither output. Unlike Solve it allocates nothing, which is
// what lets the multigrid coarsest-grid direct solve run inside a
// zero-allocation V-cycle.
func (c *Cholesky) SolveInto(dst, b, scratch []float64) error {
	if len(b) != c.n || len(dst) != c.n || len(scratch) != c.n {
		return fmt.Errorf("direct: SolveInto lengths %d/%d/%d != %d", len(dst), len(b), len(scratch), c.n)
	}
	y := scratch
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= c.l.At(i, j) * y[j]
		}
		y[i] = sum / c.l.At(i, i)
	}
	x := dst
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for j := i + 1; j < c.n; j++ {
			sum -= c.l.At(j, i) * x[j]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return nil
}
