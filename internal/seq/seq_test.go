package seq

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hpfcg/internal/direct"
	"hpfcg/internal/sparse"
)

// solveFn is the common solver signature for table-driven tests.
type solveFn func(A *sparse.CSR, b, x []float64, opt Options) (Stats, error)

func allSolvers() map[string]solveFn {
	return map[string]solveFn{
		"cg":       CG,
		"bicg":     BiCG,
		"cgs":      CGS,
		"bicgstab": BiCGSTAB,
		"gmres": func(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
			if opt.MaxIter == 0 {
				// Restarted GMRES converges slowly on Laplacians; allow
				// more Arnoldi steps than the 2n solver default.
				opt.MaxIter = 40 * len(b)
			}
			return GMRES(A, b, x, 30, opt)
		},
		"pcg-jacobi": func(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
			M, err := NewJacobi(A)
			if err != nil {
				return Stats{}, err
			}
			return PCG(A, M, b, x, opt)
		},
	}
}

func relResidual(A *sparse.CSR, x, b []float64) float64 {
	n := A.NRows
	r := make([]float64, n)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

func TestAllSolversOnSPDSystems(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"laplace1d": sparse.Laplace1D(40),
		"laplace2d": sparse.Laplace2D(6, 7),
		"randspd":   sparse.RandomSPD(50, 5, 11),
	}
	for mname, A := range mats {
		b := sparse.RandomVector(A.NRows, 5)
		for sname, solve := range allSolvers() {
			x := make([]float64, A.NRows)
			st, err := solve(A, b, x, Options{Tol: 1e-9})
			if err != nil {
				t.Fatalf("%s on %s: %v", sname, mname, err)
			}
			if !st.Converged {
				t.Fatalf("%s on %s did not converge: %v", sname, mname, st)
			}
			if rr := relResidual(A, x, b); rr > 1e-7 {
				t.Errorf("%s on %s: true residual %g", sname, mname, rr)
			}
		}
	}
}

func TestSolversAgainstDirect(t *testing.T) {
	A := sparse.RandomSPD(35, 4, 3)
	b := sparse.RandomVector(35, 9)
	want, err := direct.SolveCSR(A, b)
	if err != nil {
		t.Fatal(err)
	}
	for sname, solve := range allSolvers() {
		x := make([]float64, 35)
		if _, err := solve(A, b, x, Options{Tol: 1e-12}); err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("%s deviates from direct solve at %d: %g vs %g", sname, i, x[i], want[i])
			}
		}
	}
}

func TestNonsymmetricSolvers(t *testing.T) {
	// CG is not expected to work here; BiCG/CGS/BiCGSTAB/GMRES are.
	n := 40
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1.5) // asymmetric off-diagonals
			coo.Add(i+1, i, -0.5)
		}
	}
	A := coo.ToCSR()
	if A.IsSymmetric(1e-15) {
		t.Fatal("test matrix should be nonsymmetric")
	}
	b := sparse.RandomVector(n, 1)
	for _, sname := range []string{"bicg", "cgs", "bicgstab", "gmres"} {
		solve := allSolvers()[sname]
		x := make([]float64, n)
		st, err := solve(A, b, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", sname, err)
		}
		if !st.Converged {
			t.Fatalf("%s did not converge: %v", sname, st)
		}
		if rr := relResidual(A, x, b); rr > 1e-7 {
			t.Errorf("%s: residual %g", sname, rr)
		}
	}
}

// E5: the per-iteration computational structure the paper tabulates.
func TestComputationalStructure(t *testing.T) {
	A := sparse.Laplace2D(10, 10)
	b := sparse.Ones(A.NRows)
	perIter := func(st Stats, count int) float64 {
		// Subtract the setup matvec (initial residual).
		return float64(count-1) / float64(st.Iterations)
	}

	x := make([]float64, A.NRows)
	st, err := CG(A, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if got := perIter(st, st.MatVecs); got != 1 {
		t.Errorf("CG matvecs/iter = %g, want 1", got)
	}
	if st.TransMatVecs != 0 {
		t.Errorf("CG used %d transpose products", st.TransMatVecs)
	}
	// CG storage: x, r, p, q (§2: "requires storage for four vectors").
	if st.WorkVectors != 3 { // r, p, q (x is caller-owned)
		t.Errorf("CG work vectors = %d, want 3", st.WorkVectors)
	}

	x = make([]float64, A.NRows)
	st, err = BiCG(A, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if got := perIter(st, st.MatVecs); got != 1 {
		t.Errorf("BiCG matvecs/iter = %g, want 1", got)
	}
	if got := float64(st.TransMatVecs) / float64(st.Iterations); got != 1 {
		t.Errorf("BiCG transpose matvecs/iter = %g, want 1", got)
	}
	// BiCG: "requires three extra vectors to be stored" vs CG.
	if st.WorkVectors != 6 {
		t.Errorf("BiCG work vectors = %d, want 6", st.WorkVectors)
	}

	x = make([]float64, A.NRows)
	st, err = BiCGSTAB(A, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if got := perIter(st, st.MatVecs); math.Abs(got-2) > 0.01 {
		t.Errorf("BiCGSTAB matvecs/iter = %g, want 2", got)
	}
	if st.TransMatVecs != 0 {
		t.Errorf("BiCGSTAB used transpose products")
	}
	// "It does however involve four inner products" (§2.1).
	if got := float64(st.DotProducts-2) / float64(st.Iterations); math.Abs(got-5) > 0.2 {
		// 4 algorithmic dots + 1 norm for the stop criterion.
		t.Errorf("BiCGSTAB dots/iter = %g, want ~5 (4 + stop criterion)", got)
	}

	x = make([]float64, A.NRows)
	st, err = CGS(A, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if got := perIter(st, st.MatVecs); math.Abs(got-2) > 0.01 {
		t.Errorf("CGS matvecs/iter = %g, want 2", got)
	}
	if st.TransMatVecs != 0 {
		t.Errorf("CGS used transpose products")
	}
}

// The §2 convergence claim: CG converges in at most n_e iterations,
// where n_e is the number of distinct eigenvalues.
func TestCGDistinctEigenvalueBound(t *testing.T) {
	cases := []struct {
		eigs     []float64
		distinct int
	}{
		{[]float64{3, 3, 3, 3, 3, 3, 3, 3}, 1},
		{[]float64{1, 1, 1, 1, 9, 9, 9, 9}, 2},
		{[]float64{1, 2, 3, 1, 2, 3, 1, 2}, 3},
		{[]float64{1, 5, 10, 50, 1, 5, 10, 50, 1, 5}, 4},
	}
	for _, c := range cases {
		A := sparse.DiagWithEigenvalues(c.eigs)
		b := sparse.RandomVector(len(c.eigs), 7)
		x := make([]float64, len(c.eigs))
		st, err := CG(A, b, x, Options{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("eigs %v: no convergence", c.eigs)
		}
		if st.Iterations > c.distinct {
			t.Errorf("eigs %v: %d iterations > %d distinct eigenvalues",
				c.eigs, st.Iterations, c.distinct)
		}
	}
}

func TestPreconditioningReducesIterations(t *testing.T) {
	// An ill-conditioned diagonal + Laplacian mix.
	A := sparse.Laplace2D(15, 15)
	// Scale rows/cols to worsen conditioning while keeping SPD.
	n := A.NRows
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + 50*float64(i)/float64(n)
	}
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			coo.Add(i, A.Col[k], A.Val[k]*s[i]*s[A.Col[k]])
		}
	}
	As := coo.ToCSR()
	b := sparse.Ones(n)
	opt := Options{Tol: 1e-10, MaxIter: 5 * n}

	x := make([]float64, n)
	plain, err := CG(As, b, x, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pname := range []string{"jacobi", "ssor", "ic0"} {
		M, err := ByName(pname, As)
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		x := make([]float64, n)
		st, err := PCG(As, M, b, x, opt)
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		if !st.Converged {
			t.Fatalf("%s did not converge", pname)
		}
		if st.Iterations >= plain.Iterations {
			t.Errorf("%s: %d iterations, plain CG %d — preconditioning should help",
				pname, st.Iterations, plain.Iterations)
		}
		if rr := relResidual(As, x, b); rr > 1e-7 {
			t.Errorf("%s: residual %g", pname, rr)
		}
	}
}

func TestPCGIdentityMatchesCG(t *testing.T) {
	A := sparse.Laplace1D(30)
	b := sparse.RandomVector(30, 4)
	x1 := make([]float64, 30)
	x2 := make([]float64, 30)
	st1, err1 := CG(A, b, x1, Options{})
	st2, err2 := PCG(A, Identity{}, b, x2, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1.Iterations != st2.Iterations {
		t.Errorf("CG %d iters, PCG(identity) %d", st1.Iterations, st2.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-10 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestZeroRHS(t *testing.T) {
	A := sparse.Laplace1D(10)
	b := make([]float64, 10)
	for name, solve := range allSolvers() {
		x := make([]float64, 10)
		st, err := solve(A, b, x, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.Converged || st.Iterations != 0 {
			t.Errorf("%s on zero rhs: %v", name, st)
		}
	}
}

func TestAlreadyConverged(t *testing.T) {
	A := sparse.Laplace1D(10)
	b := make([]float64, 10)
	want := sparse.RandomVector(10, 3)
	A.MulVec(want, b)
	x := append([]float64(nil), want...)
	st, err := CG(A, b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("exact initial guess: %v", st)
	}
}

func TestMaxIterNoConvergence(t *testing.T) {
	A := sparse.Laplace2D(20, 20)
	b := sparse.Ones(A.NRows)
	x := make([]float64, A.NRows)
	st, err := CG(A, b, x, Options{Tol: 1e-14, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Error("3 iterations should not converge")
	}
	if st.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3", st.Iterations)
	}
	if st.Residual <= 0 {
		t.Error("unconverged Residual should be positive")
	}
}

func TestHistoryRecorded(t *testing.T) {
	A := sparse.Laplace1D(25)
	b := sparse.Ones(25)
	x := make([]float64, 25)
	st, err := CG(A, b, x, Options{History: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.History) != st.Iterations {
		t.Fatalf("history length %d != iterations %d", len(st.History), st.Iterations)
	}
	if st.History[len(st.History)-1] > st.History[0] {
		t.Error("residual did not decrease overall")
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestBreakdownDetected(t *testing.T) {
	// An indefinite matrix can make p·Ap vanish; engineered 2x2 case:
	// A = [[0,1],[1,0]], b = [1,0], x0 = 0: r = b, p = r, Ap = [0,1],
	// p·Ap = 0.
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	A := coo.ToCSR()
	x := make([]float64, 2)
	_, err := CG(A, []float64{1, 0}, x, Options{})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("expected ErrBreakdown, got %v", err)
	}
}

func TestInputValidationPanics(t *testing.T) {
	A := sparse.Laplace1D(4)
	for _, fn := range []func(){
		func() { CG(A, make([]float64, 3), make([]float64, 4), Options{}) },
		func() { CG(A, make([]float64, 4), make([]float64, 5), Options{}) },
		func() { GMRES(A, make([]float64, 4), make([]float64, 4), 0, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGMRESRestartLargerThanN(t *testing.T) {
	A := sparse.Laplace1D(5)
	b := sparse.Ones(5)
	x := make([]float64, 5)
	st, err := GMRES(A, b, x, 50, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("GMRES(50) on n=5: %v", st)
	}
}

// GMRES storage grows with the restart length — the §2.1 "longer
// recurrences require greater storage" observation.
func TestGMRESStorageGrowsWithRestart(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.Ones(A.NRows)
	x5 := make([]float64, A.NRows)
	st5, err := GMRES(A, b, x5, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x40 := make([]float64, A.NRows)
	st40, err := GMRES(A, b, x40, 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st40.WorkVectors <= st5.WorkVectors {
		t.Errorf("GMRES(40) vectors %d <= GMRES(5) vectors %d", st40.WorkVectors, st5.WorkVectors)
	}
}

// Property: CG solves random SPD systems.
func TestCGQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		A := sparse.RandomSPD(n, 4, seed)
		b := sparse.RandomVector(n, seed+1)
		x := make([]float64, n)
		st, err := CG(A, b, x, Options{Tol: 1e-10})
		if err != nil || !st.Converged {
			return false
		}
		return relResidual(A, x, b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
