package seq

import (
	"fmt"

	"hpfcg/internal/sparse"
)

// PBiCGSTAB is the right-preconditioned stabilized BiCG method — the
// paper notes a preconditioner "can be added to any of the algorithms
// described above" while preserving the computational structure; this
// adds two preconditioner solves per iteration to BiCGSTAB's two
// matrix products and four inner products.
func PBiCGSTAB(A *sparse.CSR, M Preconditioner, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := c.newVec(n)
	copy(rt, r)
	p := c.newVec(n)
	ph := c.newVec(n) // M^{-1} p
	v := c.newVec(n)
	s := c.newVec(n)
	sh := c.newVec(n) // M^{-1} s
	t := c.newVec(n)
	copy(p, r)
	rho := c.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		M.Apply(p, ph)
		c.matvec(A, ph, v)
		rtv := c.dot(rt, v)
		if rtv == 0 {
			return st, fmt.Errorf("%w: r̃·Ap̂ = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / rtv
		st.AXPYs++
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		M.Apply(s, sh)
		c.matvec(A, sh, t)
		tt := c.dot(t, t)
		var omega float64
		if tt != 0 {
			omega = c.dot(t, s) / tt
		}
		if omega == 0 {
			c.axpy(x, alpha, ph)
			copy(r, s)
			rn = c.norm(r)
			rel := rn / bn
			c.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
			return st, fmt.Errorf("%w: omega = 0 at iteration %d", ErrBreakdown, k)
		}
		c.axpy(x, alpha, ph)
		c.axpy(x, omega, sh)
		st.AXPYs++
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = c.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := (rho / rho0) * (alpha / omega)
		st.AXPYs += 2
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	}
	st.Residual = rn / bn
	return st, nil
}
