package seq

import (
	"errors"
	"fmt"
	"math"

	"hpfcg/internal/sparse"
)

// Preconditioner approximates z = M⁻¹ r for a matrix M ≈ A. The paper
// observes that "a preconditioner for A can be added to any of the
// algorithms described above" while preserving their structure; PCG
// takes one through this interface.
type Preconditioner interface {
	// Apply computes z = M⁻¹ r. r is not modified; z must have the same
	// length.
	Apply(r, z []float64)
	// Name identifies the preconditioner in reports.
	Name() string
}

// Identity is the no-op preconditioner (PCG(Identity) == CG).
type Identity struct{}

// Apply implements Preconditioner.
func (Identity) Apply(r, z []float64) { copy(z, r) }

// Name implements Preconditioner.
func (Identity) Name() string { return "none" }

// Jacobi is diagonal scaling: M = diag(A). It is fully parallel under
// any aligned distribution (a pure element-wise operation), which makes
// it the natural preconditioner for the distributed solvers.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi extracts the diagonal of A. It fails if any diagonal entry
// is zero.
func NewJacobi(A *sparse.CSR) (*Jacobi, error) {
	d := A.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("seq: zero diagonal at %d, Jacobi undefined", i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Apply implements Preconditioner.
func (j *Jacobi) Apply(r, z []float64) {
	for i := range r {
		z[i] = r[i] * j.invDiag[i]
	}
}

// Name implements Preconditioner.
func (j *Jacobi) Name() string { return "jacobi" }

// InvDiag exposes the reciprocal diagonal so distributed solvers can
// apply the same preconditioner locally.
func (j *Jacobi) InvDiag() []float64 { return j.invDiag }

// SSOR is the symmetric successive over-relaxation preconditioner
// M = (D/ω + L) · ω/(2−ω) · D⁻¹ · (D/ω + U), applied by a forward and
// a backward triangular sweep.
type SSOR struct {
	a     *sparse.CSR
	diag  []float64
	omega float64
}

// NewSSOR builds the SSOR preconditioner with relaxation factor omega
// in (0, 2); omega = 1 gives symmetric Gauss-Seidel.
func NewSSOR(A *sparse.CSR, omega float64) (*SSOR, error) {
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("seq: SSOR omega %g outside (0,2)", omega)
	}
	d := A.Diag()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("seq: zero diagonal at %d, SSOR undefined", i)
		}
	}
	return &SSOR{a: A, diag: d, omega: omega}, nil
}

// Apply implements Preconditioner:
// z = ω(2−ω) (D+ωU)⁻¹ D (D+ωL)⁻¹ r.
func (s *SSOR) Apply(r, z []float64) {
	n := len(r)
	w := s.omega
	t := make([]float64, n)
	// Forward solve (D + ωL) t = r.
	for i := 0; i < n; i++ {
		sum := r[i]
		cols, vals := s.a.Row(i)
		for k, j := range cols {
			if j < i {
				sum -= w * vals[k] * t[j]
			}
		}
		t[i] = sum / s.diag[i]
	}
	// Scale by D.
	for i := 0; i < n; i++ {
		t[i] *= s.diag[i]
	}
	// Backward solve (D + ωU) z = t.
	for i := n - 1; i >= 0; i-- {
		sum := t[i]
		cols, vals := s.a.Row(i)
		for k, j := range cols {
			if j > i {
				sum -= w * vals[k] * z[j]
			}
		}
		z[i] = sum / s.diag[i]
	}
	f := w * (2 - w)
	for i := range z {
		z[i] *= f
	}
}

// Name implements Preconditioner.
func (s *SSOR) Name() string { return fmt.Sprintf("ssor(%g)", s.omega) }

// ErrNotSPD is returned by NewIC0 when the incomplete factorisation
// hits a non-positive pivot.
var ErrNotSPD = errors.New("seq: matrix is not positive definite (IC(0) pivot failure)")

// IC0 is the zero-fill incomplete Cholesky preconditioner: M = L·Lᵀ
// where L has the sparsity of the lower triangle of A.
type IC0 struct {
	n      int
	rowPtr []int // lower triangle incl. diagonal, CSR
	col    []int
	val    []float64
	diagAt []int // position of the diagonal entry in each row
}

// NewIC0 computes the incomplete Cholesky factor of symmetric
// positive-definite A.
func NewIC0(A *sparse.CSR) (*IC0, error) {
	n := A.NRows
	if n != A.NCols {
		return nil, fmt.Errorf("seq: IC(0) needs a square matrix, got %dx%d", n, A.NCols)
	}
	// Extract the lower triangle (including diagonal).
	rowPtr := make([]int, n+1)
	var col []int
	var val []float64
	diagAt := make([]int, n)
	for i := 0; i < n; i++ {
		rowPtr[i] = len(col)
		cols, vals := A.Row(i)
		hasDiag := false
		for k, j := range cols {
			if j > i {
				break
			}
			if j == i {
				diagAt[i] = len(col)
				hasDiag = true
			}
			col = append(col, j)
			val = append(val, vals[k])
		}
		if !hasDiag {
			return nil, fmt.Errorf("seq: IC(0) missing diagonal at row %d", i)
		}
	}
	rowPtr[n] = len(col)

	// Row-oriented IC(0): for each row i and each stored k < i,
	// L[i,k] = (A[i,k] - Σ_{j<k} L[i,j]·L[k,j]) / L[k,k],
	// then L[i,i] = sqrt(A[i,i] - Σ_{j<i} L[i,j]²).
	for i := 0; i < n; i++ {
		for kk := rowPtr[i]; kk < rowPtr[i+1]; kk++ {
			k := col[kk]
			if k == i {
				sum := val[kk]
				for jj := rowPtr[i]; jj < kk; jj++ {
					sum -= val[jj] * val[jj]
				}
				if sum <= 0 {
					return nil, fmt.Errorf("%w: pivot %g at row %d", ErrNotSPD, sum, i)
				}
				val[kk] = math.Sqrt(sum)
				continue
			}
			sum := val[kk]
			// Sparse dot of rows i and k over columns < k.
			a, b := rowPtr[i], rowPtr[k]
			for a < kk && b < diagAt[k] {
				switch {
				case col[a] == col[b]:
					sum -= val[a] * val[b]
					a++
					b++
				case col[a] < col[b]:
					a++
				default:
					b++
				}
			}
			val[kk] = sum / val[diagAt[k]]
		}
	}
	return &IC0{n: n, rowPtr: rowPtr, col: col, val: val, diagAt: diagAt}, nil
}

// Apply implements Preconditioner: solve L·y = r then Lᵀ·z = y.
func (ic *IC0) Apply(r, z []float64) {
	n := ic.n
	y := make([]float64, n)
	// Forward: L y = r (L stored by rows).
	for i := 0; i < n; i++ {
		sum := r[i]
		for k := ic.rowPtr[i]; k < ic.diagAt[i]; k++ {
			sum -= ic.val[k] * y[ic.col[k]]
		}
		y[i] = sum / ic.val[ic.diagAt[i]]
	}
	// Backward: Lᵀ z = y, processed by columns of Lᵀ = rows of L.
	copy(z, y)
	for i := n - 1; i >= 0; i-- {
		z[i] /= ic.val[ic.diagAt[i]]
		zi := z[i]
		for k := ic.rowPtr[i]; k < ic.diagAt[i]; k++ {
			z[ic.col[k]] -= ic.val[k] * zi
		}
	}
}

// Name implements Preconditioner.
func (ic *IC0) Name() string { return "ic0" }

// ByName constructs a preconditioner from its CLI name: "none",
// "jacobi", "ssor" (omega 1.2) or "ic0".
func ByName(name string, A *sparse.CSR) (Preconditioner, error) {
	switch name {
	case "", "none":
		return Identity{}, nil
	case "jacobi":
		return NewJacobi(A)
	case "ssor":
		return NewSSOR(A, 1.2)
	case "ic0":
		return NewIC0(A)
	}
	return nil, fmt.Errorf("seq: unknown preconditioner %q", name)
}
