package seq

import (
	"math"
	"testing"

	"hpfcg/internal/sparse"
)

func TestTridiagEigKnown(t *testing.T) {
	// Diagonal tridiagonal: eigenvalues are the diagonal itself.
	min, max := TridiagEigBounds([]float64{3, 1, 7}, []float64{0, 0})
	if math.Abs(min-1) > 1e-9 || math.Abs(max-7) > 1e-9 {
		t.Errorf("bounds (%g, %g), want (1, 7)", min, max)
	}
	// 2x2 [[2,1],[1,2]]: eigenvalues 1 and 3.
	min, max = TridiagEigBounds([]float64{2, 2}, []float64{1})
	if math.Abs(min-1) > 1e-9 || math.Abs(max-3) > 1e-9 {
		t.Errorf("2x2 bounds (%g, %g), want (1, 3)", min, max)
	}
	all := TridiagEigAll([]float64{2, 2}, []float64{1})
	if len(all) != 2 || math.Abs(all[0]-1) > 1e-9 || math.Abs(all[1]-3) > 1e-9 {
		t.Errorf("all = %v", all)
	}
	// Laplace1D(n) tridiagonal: eigenvalues 2 - 2cos(k*pi/(n+1)).
	n := 10
	diag := make([]float64, n)
	off := make([]float64, n-1)
	for i := range diag {
		diag[i] = 2
	}
	for i := range off {
		off[i] = -1
	}
	min, max = TridiagEigBounds(diag, off)
	wantMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	wantMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	if math.Abs(min-wantMin) > 1e-8 || math.Abs(max-wantMax) > 1e-8 {
		t.Errorf("Laplacian bounds (%g, %g), want (%g, %g)", min, max, wantMin, wantMax)
	}
	if mn, mx := TridiagEigBounds(nil, nil); mn != 0 || mx != 0 {
		t.Errorf("empty bounds (%g, %g)", mn, mx)
	}
}

// CG's Ritz values must estimate the true extremal eigenvalues.
func TestCGSpectrumEstimate(t *testing.T) {
	// Known spectrum: diagonal matrix.
	eigs := []float64{1, 2.5, 4, 9, 16, 16, 25, 30, 30, 42}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.RandomVector(len(eigs), 3)
	x := make([]float64, len(eigs))
	st, err := CG(A, b, x, Options{Tol: 1e-12, EstimateSpectrum: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spectrum == nil {
		t.Fatal("no spectrum estimate")
	}
	// With full convergence the Ritz values hit the distinct eigenvalues.
	if math.Abs(st.Spectrum.EigMin-1) > 1e-6 {
		t.Errorf("EigMin = %g, want 1", st.Spectrum.EigMin)
	}
	if math.Abs(st.Spectrum.EigMax-42) > 1e-6 {
		t.Errorf("EigMax = %g, want 42", st.Spectrum.EigMax)
	}
	if math.Abs(st.Spectrum.Cond-42) > 1e-4 {
		t.Errorf("Cond = %g, want 42", st.Spectrum.Cond)
	}
	if len(st.Spectrum.Ritz) != st.Iterations {
		t.Errorf("%d Ritz values for %d iterations", len(st.Spectrum.Ritz), st.Iterations)
	}
}

func TestCGSpectrumOnLaplacian(t *testing.T) {
	n := 60
	A := sparse.Laplace1D(n)
	b := sparse.RandomVector(n, 9)
	x := make([]float64, n)
	st, err := CG(A, b, x, Options{Tol: 1e-12, EstimateSpectrum: true})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	wantMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	sp := st.Spectrum
	if sp == nil {
		t.Fatal("no spectrum")
	}
	// Ritz estimates converge from inside the spectrum: min >= true min,
	// max <= true max, both within a few percent after full convergence.
	if sp.EigMin < wantMin-1e-9 || sp.EigMin > wantMin*1.25 {
		t.Errorf("EigMin = %g, true %g", sp.EigMin, wantMin)
	}
	if sp.EigMax > wantMax+1e-9 || sp.EigMax < wantMax*0.95 {
		t.Errorf("EigMax = %g, true %g", sp.EigMax, wantMax)
	}
	trueCond := wantMax / wantMin
	if sp.Cond > trueCond*1.05 || sp.Cond < trueCond*0.7 {
		t.Errorf("Cond = %g, true %g", sp.Cond, trueCond)
	}
}

func TestSpectrumDisabledByDefault(t *testing.T) {
	A := sparse.Laplace1D(10)
	b := sparse.Ones(10)
	x := make([]float64, 10)
	st, err := CG(A, b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spectrum != nil {
		t.Error("spectrum estimated without the option")
	}
}

func TestEstimateSpectrumEmpty(t *testing.T) {
	if estimateSpectrum(nil, nil) != nil {
		t.Error("empty coefficient list should give nil")
	}
}
