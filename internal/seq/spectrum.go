package seq

import (
	"math"
	"sort"
)

// The CG-Lanczos connection: the alpha/beta coefficients of k CG
// iterations define a k x k symmetric tridiagonal matrix T_k whose
// eigenvalues (Ritz values) approximate the extremal eigenvalues of A.
// The paper's §2 convergence discussion is all about the spectrum
// ("converge to the solution ... in at most n_e iterations, where n_e
// is the number of distinct eigenvalues"); this file lets CG report
// the spectrum estimate it implicitly computes, at no extra matrix
// work.
//
// T_k has diagonal d_1 = 1/alpha_1,
// d_k = 1/alpha_k + beta_{k-1}/alpha_{k-1}, and off-diagonal
// e_k = sqrt(beta_k)/alpha_k.

// lanczosTridiag converts CG's alpha/beta sequences to the Lanczos
// tridiagonal (diag, offdiag) with len(off) = len(diag)-1.
func lanczosTridiag(alphas, betas []float64) (diag, off []float64) {
	k := len(alphas)
	if k == 0 {
		return nil, nil
	}
	diag = make([]float64, k)
	off = make([]float64, k-1)
	diag[0] = 1 / alphas[0]
	for i := 1; i < k; i++ {
		diag[i] = 1/alphas[i] + betas[i-1]/alphas[i-1]
	}
	for i := 0; i+1 < k; i++ {
		off[i] = math.Sqrt(math.Max(betas[i], 0)) / alphas[i]
	}
	return diag, off
}

// sturmCount returns the number of eigenvalues of the symmetric
// tridiagonal (diag, off) strictly less than x (Sturm sequence /
// LDL^T sign count).
func sturmCount(diag, off []float64, x float64) int {
	count := 0
	d := 1.0
	for i := range diag {
		e2 := 0.0
		if i > 0 {
			e2 = off[i-1] * off[i-1]
		}
		d = diag[i] - x - e2/d
		if d == 0 {
			d = 1e-300
		}
		if d < 0 {
			count++
		}
	}
	return count
}

// TridiagEigBounds returns the smallest and largest eigenvalues of a
// symmetric tridiagonal matrix by Sturm bisection inside the
// Gershgorin interval.
func TridiagEigBounds(diag, off []float64) (min, max float64) {
	n := len(diag)
	if n == 0 {
		return 0, 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(off[i-1])
		}
		if i < n-1 {
			r += math.Abs(off[i])
		}
		if diag[i]-r < lo {
			lo = diag[i] - r
		}
		if diag[i]+r > hi {
			hi = diag[i] + r
		}
	}
	bisect := func(target int) float64 {
		a, b := lo, hi
		for iter := 0; iter < 200 && b-a > 1e-13*math.Max(1, math.Abs(b)); iter++ {
			mid := (a + b) / 2
			if sturmCount(diag, off, mid) < target {
				a = mid
			} else {
				b = mid
			}
		}
		return (a + b) / 2
	}
	return bisect(1), bisect(n)
}

// TridiagEigAll returns all eigenvalues (ascending) by per-index Sturm
// bisection — fine for the small T_k CG produces.
func TridiagEigAll(diag, off []float64) []float64 {
	n := len(diag)
	out := make([]float64, n)
	for i := 1; i <= n; i++ {
		d2 := append([]float64(nil), diag...)
		o2 := append([]float64(nil), off...)
		lo, hi := math.Inf(1), math.Inf(-1)
		for j := 0; j < n; j++ {
			r := 0.0
			if j > 0 {
				r += math.Abs(o2[j-1])
			}
			if j < n-1 {
				r += math.Abs(o2[j])
			}
			if d2[j]-r < lo {
				lo = d2[j] - r
			}
			if d2[j]+r > hi {
				hi = d2[j] + r
			}
		}
		a, b := lo, hi
		for it := 0; it < 200 && b-a > 1e-13*math.Max(1, math.Abs(b)); it++ {
			mid := (a + b) / 2
			if sturmCount(d2, o2, mid) < i {
				a = mid
			} else {
				b = mid
			}
		}
		out[i-1] = (a + b) / 2
	}
	sort.Float64s(out)
	return out
}

// SpectrumEstimate summarises the Ritz values extracted from a CG run.
type SpectrumEstimate struct {
	EigMin, EigMax float64
	// Cond is EigMax/EigMin (the estimate of A's spectral condition
	// number that governs the §2 convergence rate).
	Cond float64
	// Ritz holds all Ritz values, ascending.
	Ritz []float64
}

// estimateSpectrum builds the estimate from recorded CG coefficients.
func estimateSpectrum(alphas, betas []float64) *SpectrumEstimate {
	if len(alphas) == 0 {
		return nil
	}
	diag, off := lanczosTridiag(alphas, betas)
	ritz := TridiagEigAll(diag, off)
	est := &SpectrumEstimate{
		EigMin: ritz[0],
		EigMax: ritz[len(ritz)-1],
		Ritz:   ritz,
	}
	if est.EigMin > 0 {
		est.Cond = est.EigMax / est.EigMin
	} else {
		est.Cond = math.Inf(1)
	}
	return est
}
