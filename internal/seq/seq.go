// Package seq provides sequential reference implementations of the
// solver family the paper discusses (§2, §2.1): the classic conjugate
// gradient method, its preconditioned form, BiCG (with the A^T
// product), CGS (which avoids A^T but can diverge), stabilized BiCG
// (BiCGSTAB, with its four inner products per iteration), and
// restarted GMRES (the "longer recurrences, greater storage"
// alternative). They serve three roles: numerical oracles for the
// distributed solvers, single-processor baselines for speedup
// measurements, and the source of the per-iteration operation counts
// experiment E5 tabulates.
//
// Every solver records its computational structure in Stats — matrix
// products, transpose products, inner products, SAXPY-class updates and
// working vectors — matching the paper's accounting ("the work per
// iteration is modest, amounting to a single matrix-vector
// multiplication ..., two inner products ..., and several SAXPY
// operations").
package seq

import (
	"errors"
	"fmt"
	"math"

	"hpfcg/internal/sparse"
)

// ErrBreakdown is returned when an algorithmic denominator vanishes
// (e.g. p·Ap = 0 in CG or omega = 0 in BiCGSTAB) before convergence.
var ErrBreakdown = errors.New("seq: iterative method breakdown")

// Options controls iteration limits and tolerance.
type Options struct {
	// Tol is the convergence threshold on the relative residual
	// ||r|| / ||b||. Zero means 1e-10.
	Tol float64
	// MaxIter limits the iteration count. Zero means 2*n.
	MaxIter int
	// History, when true, records the relative residual per iteration.
	History bool
	// EstimateSpectrum, when true, makes CG record its alpha/beta
	// coefficients and report Ritz-value estimates of A's extremal
	// eigenvalues in Stats.Spectrum (the CG-Lanczos connection).
	EstimateSpectrum bool
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2 * n
	}
	return o
}

// Stats reports the outcome and computational structure of a solve.
type Stats struct {
	Iterations   int
	Converged    bool
	Residual     float64 // final relative residual
	MatVecs      int     // products with A
	TransMatVecs int     // products with A^T (BiCG only)
	DotProducts  int
	AXPYs        int // SAXPY-class vector updates
	WorkVectors  int // working vectors allocated (storage, §2.1)
	History      []float64
	// Spectrum holds Ritz-value eigenvalue estimates when
	// Options.EstimateSpectrum was set (CG only).
	Spectrum *SpectrumEstimate
}

// String summarises the stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d converged=%v relres=%.3e matvec=%d matvecT=%d dot=%d axpy=%d vecs=%d",
		s.Iterations, s.Converged, s.Residual, s.MatVecs, s.TransMatVecs, s.DotProducts, s.AXPYs, s.WorkVectors)
}

// counters bundles the vector primitives with operation counting.
type counters struct{ s *Stats }

func (c counters) dot(a, b []float64) float64 {
	c.s.DotProducts++
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

func (c counters) axpy(y []float64, alpha float64, x []float64) {
	c.s.AXPYs++
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// aypx computes y = beta*y + x (the paper's saypx).
func (c counters) aypx(y []float64, beta float64, x []float64) {
	c.s.AXPYs++
	for i := range y {
		y[i] = beta*y[i] + x[i]
	}
}

func (c counters) norm(a []float64) float64 { return math.Sqrt(c.dot(a, a)) }

func (c counters) matvec(A *sparse.CSR, x, y []float64) {
	c.s.MatVecs++
	A.MulVec(x, y)
}

func (c counters) matvecT(A *sparse.CSR, x, y []float64) {
	c.s.TransMatVecs++
	A.MulVecT(x, y)
}

func (c counters) newVec(n int) []float64 {
	c.s.WorkVectors++
	return make([]float64, n)
}

func (c counters) record(rel float64, opt Options) {
	if opt.History {
		c.s.History = append(c.s.History, rel)
	}
}

func checkSystem(A *sparse.CSR, b, x []float64) {
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("seq: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	if len(b) != A.NRows || len(x) != A.NRows {
		panic(fmt.Sprintf("seq: dimension mismatch: A %d, b %d, x %d", A.NRows, len(b), len(x)))
	}
}

// residual0 computes r = b - A*x into r and returns (||r||, ||b||).
func residual0(c counters, A *sparse.CSR, b, x, r []float64) (rn, bn float64) {
	c.matvec(A, x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	c.s.AXPYs++
	return c.norm(r), c.norm(b)
}

// CG solves A*x = b for symmetric positive-definite A by the classic
// non-preconditioned conjugate gradient method (§2 of the paper;
// per-iteration structure: 1 matvec, 2 inner products, 3 SAXPYs). x
// holds the initial guess on entry and the solution on return.
func CG(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	p := c.newVec(n)
	copy(p, r)
	q := c.newVec(n)
	rho := c.dot(r, r)
	var alphas, betas []float64

	finishSpectrum := func() {
		if opt.EstimateSpectrum {
			st.Spectrum = estimateSpectrum(alphas, betas)
		}
	}
	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		c.matvec(A, p, q)
		pq := c.dot(p, q)
		if pq == 0 {
			finishSpectrum()
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		c.axpy(x, alpha, p)  // x = x + alpha p
		c.axpy(r, -alpha, q) // r = r - alpha q
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if opt.EstimateSpectrum {
			alphas = append(alphas, alpha)
		}
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			finishSpectrum()
			return st, nil
		}
		rho0 := rho
		rho = c.dot(r, r)
		if rho0 == 0 {
			finishSpectrum()
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		if opt.EstimateSpectrum {
			betas = append(betas, beta)
		}
		c.aypx(p, beta, r) // p = beta p + r (saypx)
	}
	st.Residual = rn / bn
	finishSpectrum()
	return st, nil
}

// PCG is the preconditioned conjugate gradient method: identical
// structure to CG plus one preconditioner solve z = M⁻¹r per
// iteration. The paper notes preconditioning "will increase the speed
// of convergence" while keeping the computational structure.
func PCG(A *sparse.CSR, M Preconditioner, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	z := c.newVec(n)
	M.Apply(r, z)
	p := c.newVec(n)
	copy(p, z)
	q := c.newVec(n)
	rho := c.dot(r, z)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		c.matvec(A, p, q)
		pq := c.dot(p, q)
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		c.axpy(x, alpha, p)
		c.axpy(r, -alpha, q)
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		M.Apply(r, z)
		rho0 := rho
		rho = c.dot(r, z)
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		c.aypx(p, beta, z)
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCG solves A*x = b for general (non-symmetric) A using two mutually
// orthogonal residual sequences (§2.1). It performs two matrix products
// per iteration, one with A and one with A^T — the transpose product
// that negates row-vs-column distribution optimisations.
func BiCG(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := c.newVec(n) // shadow residual
	copy(rt, r)
	p := c.newVec(n)
	pt := c.newVec(n)
	copy(p, r)
	copy(pt, rt)
	q := c.newVec(n)
	qt := c.newVec(n)
	rho := c.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		c.matvec(A, p, q)
		c.matvecT(A, pt, qt)
		ptq := c.dot(pt, q)
		if ptq == 0 {
			return st, fmt.Errorf("%w: p̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / ptq
		c.axpy(x, alpha, p)
		c.axpy(r, -alpha, q)
		c.axpy(rt, -alpha, qt)
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = c.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		c.aypx(p, beta, r)
		c.aypx(pt, beta, rt)
	}
	st.Residual = rn / bn
	return st, nil
}

// CGS is the conjugate gradient squared method (§2.1): it avoids A^T
// (two products with A instead) but "can have some undesirable
// numerical properties such as actual divergence or irregular rates of
// convergence" — callers should prefer BiCGSTAB.
func CGS(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := c.newVec(n)
	copy(rt, r)
	p := c.newVec(n)
	u := c.newVec(n)
	qv := c.newVec(n)
	vh := c.newVec(n)
	uq := c.newVec(n)
	copy(p, r)
	copy(u, r)
	rho := c.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		c.matvec(A, p, vh)
		sigma := c.dot(rt, vh)
		if sigma == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / sigma
		// q = u - alpha*vh
		st.AXPYs++
		for i := range qv {
			qv[i] = u[i] - alpha*vh[i]
		}
		// uq = u + q
		st.AXPYs++
		for i := range uq {
			uq[i] = u[i] + qv[i]
		}
		c.axpy(x, alpha, uq)
		c.matvec(A, uq, vh)
		c.axpy(r, -alpha, vh)
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = c.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		// u = r + beta*q
		st.AXPYs++
		for i := range u {
			u[i] = r[i] + beta*qv[i]
		}
		// p = u + beta*(q + beta*p)
		st.AXPYs += 2
		for i := range p {
			p[i] = u[i] + beta*(qv[i]+beta*p[i])
		}
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCGSTAB is the stabilized BiCG method (§2.1): two products with A
// (no A^T) and four inner products per iteration — the paper notes the
// "greater demand for an efficient intrinsic" for DOT_PRODUCT.
func BiCGSTAB(A *sparse.CSR, b, x []float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := c.newVec(n)
	copy(rt, r)
	p := c.newVec(n)
	v := c.newVec(n)
	s := c.newVec(n)
	t := c.newVec(n)
	copy(p, r)
	rho := c.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		c.matvec(A, p, v)
		rtv := c.dot(rt, v)
		if rtv == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / rtv
		// s = r - alpha*v
		st.AXPYs++
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		c.matvec(A, s, t)
		tt := c.dot(t, t)
		var omega float64
		if tt != 0 {
			omega = c.dot(t, s) / tt
		}
		if omega == 0 {
			// s is already (numerically) zero or t vanished: take the
			// half step and test.
			c.axpy(x, alpha, p)
			copy(r, s)
			rn = c.norm(r)
			rel := rn / bn
			c.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
			return st, fmt.Errorf("%w: omega = 0 at iteration %d", ErrBreakdown, k)
		}
		c.axpy(x, alpha, p)
		c.axpy(x, omega, s)
		// r = s - omega*t
		st.AXPYs++
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		rn = c.norm(r)
		rel := rn / bn
		c.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = c.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := (rho / rho0) * (alpha / omega)
		// p = r + beta*(p - omega*v)
		st.AXPYs += 2
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	}
	st.Residual = rn / bn
	return st, nil
}
