package seq

import (
	"fmt"
	"math"

	"hpfcg/internal/sparse"
)

// GMRES solves A*x = b for general A by restarted GMRES(m) — the
// paper's example of a method with "longer recurrences (which require
// greater storage)": each cycle stores m+1 Krylov basis vectors, versus
// CG's fixed four. restart m must be >= 1; typical values 10-50.
func GMRES(A *sparse.CSR, b, x []float64, restart int, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	if restart < 1 {
		panic(fmt.Sprintf("seq: GMRES restart %d < 1", restart))
	}
	n := A.NRows
	opt = opt.withDefaults(n)
	m := restart
	if m > n {
		m = n
	}
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}

	// Krylov basis (m+1 vectors: the storage cost §2.1 highlights).
	V := make([][]float64, m+1)
	for i := range V {
		V[i] = c.newVec(n)
	}
	h := make([][]float64, m+1) // Hessenberg, h[i][j], i row, j col
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m) // Givens cosines
	sn := make([]float64, m) // Givens sines
	g := make([]float64, m+1)
	w := c.newVec(n)

	for st.Iterations < opt.MaxIter {
		// Outer (restart) cycle: r already holds b - A x.
		beta := c.norm(r)
		if beta == 0 {
			st.Converged = true
			st.Residual = 0
			return st, nil
		}
		for i := range r {
			V[0][i] = r[i] / beta
		}
		st.AXPYs++
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0 // columns completed this cycle
		for ; k < m && st.Iterations < opt.MaxIter; k++ {
			st.Iterations++
			// Arnoldi step with modified Gram-Schmidt.
			c.matvec(A, V[k], w)
			for i := 0; i <= k; i++ {
				h[i][k] = c.dot(w, V[i])
				c.axpy(w, -h[i][k], V[i])
			}
			h[k+1][k] = c.norm(w)
			subdiag := h[k+1][k]
			if h[k+1][k] != 0 {
				for i := range w {
					V[k+1][i] = w[i] / h[k+1][k]
				}
				st.AXPYs++
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			rel := math.Abs(g[k+1]) / bn
			c.record(rel, opt)
			if rel <= opt.Tol {
				k++
				break
			}
			if subdiag == 0 && math.Abs(g[k+1]) > opt.Tol*bn {
				// Lucky breakdown without convergence cannot happen in
				// exact arithmetic; treat as breakdown.
				return st, fmt.Errorf("%w: Arnoldi breakdown at iteration %d", ErrBreakdown, st.Iterations)
			}
		}

		// Solve the k x k triangular system and update x.
		yv := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * yv[j]
			}
			yv[i] = sum / h[i][i]
		}
		for j := 0; j < k; j++ {
			c.axpy(x, yv[j], V[j])
		}

		// True residual for the restart / convergence check.
		rn, _ = residual0(c, A, b, x, r)
		rel := rn / bn
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
	}
	st.Residual = rn / bn
	return st, nil
}
