package seq

import (
	"math"
	"testing"

	"hpfcg/internal/sparse"
)

func TestChebyshevSolvesWithExactBounds(t *testing.T) {
	n := 60
	A := sparse.Laplace1D(n)
	eigMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	eigMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	b := sparse.RandomVector(n, 2)
	x := make([]float64, n)
	st, err := Chebyshev(A, b, x, eigMin, eigMax, Options{Tol: 1e-9, MaxIter: 20 * n})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %v", st)
	}
	if rr := relResidual(A, x, b); rr > 1e-7 {
		t.Errorf("residual %g", rr)
	}
}

// The pipeline the package intends: a short CG probe estimates the
// spectrum, Chebyshev finishes the job with almost no inner products.
func TestChebyshevWithCGEstimatedBounds(t *testing.T) {
	A := sparse.RandomSPD(80, 5, 12)
	b := sparse.RandomVector(80, 4)
	probeX := make([]float64, 80)
	probe, err := CG(A, b, probeX, Options{MaxIter: 15, Tol: 1e-30, EstimateSpectrum: true})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Spectrum == nil {
		t.Fatal("no spectrum from probe")
	}
	// Ritz intervals underestimate the true spectrum; widen safely.
	lo := probe.Spectrum.EigMin * 0.5
	hi := probe.Spectrum.EigMax * 1.1
	x := make([]float64, 80)
	st, err := Chebyshev(A, b, x, lo, hi, Options{Tol: 1e-9, MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %v", st)
	}
	if rr := relResidual(A, x, b); rr > 1e-7 {
		t.Errorf("residual %g", rr)
	}
	// The point: inner products only at the periodic checks.
	dotsPerIter := float64(st.DotProducts) / float64(st.Iterations)
	if dotsPerIter > 0.25 {
		t.Errorf("Chebyshev used %.2f dots/iteration, want ~0.1", dotsPerIter)
	}
}

func TestChebyshevValidation(t *testing.T) {
	A := sparse.Laplace1D(8)
	b := sparse.Ones(8)
	x := make([]float64, 8)
	if _, err := Chebyshev(A, b, x, 0, 4, Options{}); err == nil {
		t.Error("eigMin=0 accepted")
	}
	if _, err := Chebyshev(A, b, x, 3, 2, Options{}); err == nil {
		t.Error("eigMin > eigMax accepted")
	}
}

func TestChebyshevZeroRHS(t *testing.T) {
	A := sparse.Laplace1D(8)
	x := make([]float64, 8)
	st, err := Chebyshev(A, make([]float64, 8), x, 0.1, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("zero rhs: %v", st)
	}
}
