package seq

import (
	"math"
	"testing"

	"hpfcg/internal/sparse"
)

func TestPBiCGSTABIdentityMatchesBiCGSTAB(t *testing.T) {
	A := sparse.RandomSPD(40, 5, 6)
	b := sparse.RandomVector(40, 2)
	x1 := make([]float64, 40)
	x2 := make([]float64, 40)
	st1, err1 := BiCGSTAB(A, b, x1, Options{Tol: 1e-10})
	st2, err2 := PBiCGSTAB(A, Identity{}, b, x2, Options{Tol: 1e-10})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if st1.Iterations != st2.Iterations {
		t.Errorf("iterations differ: %d vs %d", st1.Iterations, st2.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8 {
			t.Fatalf("solutions differ at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestPBiCGSTABSolvesNonsymmetric(t *testing.T) {
	n := 50
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 5)
		if i+1 < n {
			coo.Add(i, i+1, -2)
			coo.Add(i+1, i, -0.5)
		}
	}
	A := coo.ToCSR()
	b := sparse.RandomVector(n, 3)
	for _, pname := range []string{"jacobi", "ssor"} {
		M, err := ByName(pname, A)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		st, err := PBiCGSTAB(A, M, b, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		if !st.Converged {
			t.Fatalf("%s: not converged: %v", pname, st)
		}
		if rr := relResidual(A, x, b); rr > 1e-7 {
			t.Errorf("%s: residual %g", pname, rr)
		}
	}
}

func TestPBiCGSTABPreconditioningHelps(t *testing.T) {
	// Ill-conditioned diagonal scaling: Jacobi must cut iterations.
	n := 120
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = 1 + float64(i*i)/4
	}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.Ones(n)
	xp := make([]float64, n)
	stPlain, err := BiCGSTAB(A, b, xp, Options{Tol: 1e-10, MaxIter: 10 * n})
	if err != nil {
		t.Fatal(err)
	}
	M, err := NewJacobi(A)
	if err != nil {
		t.Fatal(err)
	}
	xj := make([]float64, n)
	stJac, err := PBiCGSTAB(A, M, b, xj, Options{Tol: 1e-10, MaxIter: 10 * n})
	if err != nil {
		t.Fatal(err)
	}
	if !stJac.Converged {
		t.Fatalf("preconditioned run did not converge: %v", stJac)
	}
	if stJac.Iterations >= stPlain.Iterations {
		t.Errorf("PBiCGSTAB(jacobi) %d iterations >= plain %d", stJac.Iterations, stPlain.Iterations)
	}
}

func TestPBiCGSTABStructure(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.Ones(A.NRows)
	M, err := NewJacobi(A)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, A.NRows)
	st, err := PBiCGSTAB(A, M, b, x, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Two forward products per iteration, no transpose.
	perIt := float64(st.MatVecs-1) / float64(st.Iterations)
	if math.Abs(perIt-2) > 0.01 {
		t.Errorf("matvecs/iter = %g, want 2", perIt)
	}
	if st.TransMatVecs != 0 {
		t.Errorf("used %d transpose products", st.TransMatVecs)
	}
}
