package seq

import (
	"fmt"

	"hpfcg/internal/sparse"
)

// Chebyshev runs the Chebyshev semi-iteration for SPD systems whose
// spectrum lies in [eigMin, eigMax]. Its significance for the paper's
// §4 analysis: the method needs *no inner products* in its recurrence —
// only the matrix product and SAXPYs — so on a distributed machine it
// avoids the t_s·log NP merge that every CG iteration pays twice. The
// price is needing the spectral bounds in advance (here typically
// supplied by a short CG run with Options.EstimateSpectrum) and a
// convergence test that is only evaluated every checkEvery iterations
// (each test is one norm = one allreduce). Experiment E17 measures the
// trade.
func Chebyshev(A *sparse.CSR, b, x []float64, eigMin, eigMax float64, opt Options) (Stats, error) {
	checkSystem(A, b, x)
	if !(eigMin > 0) || !(eigMax >= eigMin) {
		return Stats{}, fmt.Errorf("seq: Chebyshev needs 0 < eigMin <= eigMax, got [%g, %g]", eigMin, eigMax)
	}
	n := A.NRows
	opt = opt.withDefaults(n)
	var st Stats
	c := counters{&st}

	r := c.newVec(n)
	rn, bn := residual0(c, A, b, x, r)
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}

	d := (eigMax + eigMin) / 2  // center
	cc := (eigMax - eigMin) / 2 // radius
	p := c.newVec(n)
	q := c.newVec(n)
	var alpha, beta float64
	const checkEvery = 10

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		switch {
		case k == 1:
			copy(p, r)
			st.AXPYs++
			alpha = 1 / d
		case k == 2:
			beta = (cc * alpha / 2) * (cc * alpha / 2)
			alpha = 1 / (d - beta/alpha)
			c.aypx(p, beta, r)
		default:
			beta = (cc * alpha / 2) * (cc * alpha / 2)
			alpha = 1 / (d - beta/alpha)
			c.aypx(p, beta, r)
		}
		c.axpy(x, alpha, p)
		c.matvec(A, p, q)
		c.axpy(r, -alpha, q)
		if k%checkEvery == 0 || k == opt.MaxIter {
			rn = c.norm(r)
			rel := rn / bn
			c.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
		}
	}
	rn = c.norm(r)
	st.Residual = rn / bn
	if st.Residual <= opt.Tol {
		st.Converged = true
	}
	return st, nil
}
