package seq

import (
	"errors"
	"math"
	"testing"

	"hpfcg/internal/sparse"
)

func TestIdentity(t *testing.T) {
	r := []float64{1, -2, 3}
	z := make([]float64, 3)
	Identity{}.Apply(r, z)
	for i := range r {
		if z[i] != r[i] {
			t.Fatalf("identity changed %d", i)
		}
	}
	if (Identity{}).Name() != "none" {
		t.Error("name")
	}
}

func TestJacobiApply(t *testing.T) {
	A := sparse.DiagWithEigenvalues([]float64{2, 4, 8})
	M, err := NewJacobi(A)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 3)
	M.Apply([]float64{2, 4, 8}, z)
	for i, v := range z {
		if v != 1 {
			t.Errorf("z[%d] = %g, want 1", i, v)
		}
	}
	if M.Name() != "jacobi" {
		t.Error("name")
	}
	if len(M.InvDiag()) != 3 || M.InvDiag()[0] != 0.5 {
		t.Error("InvDiag wrong")
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := NewJacobi(coo.ToCSR()); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

// A preconditioner must be an exact solve for M = A in the SSOR/IC0
// limit cases we can verify: applying then multiplying recovers r.
func TestSSORSanity(t *testing.T) {
	A := sparse.Laplace1D(12)
	M, err := NewSSOR(A, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if M.Name() != "ssor(1)" {
		t.Errorf("name %q", M.Name())
	}
	// SSOR application must be a symmetric positive operation: check
	// z·r > 0 for random r (needed for PCG validity).
	for seed := int64(0); seed < 5; seed++ {
		r := sparse.RandomVector(12, seed)
		z := make([]float64, 12)
		M.Apply(r, z)
		dot := 0.0
		for i := range r {
			dot += r[i] * z[i]
		}
		if dot <= 0 {
			t.Fatalf("seed %d: z·r = %g, SSOR not positive definite", seed, dot)
		}
	}
}

func TestSSORValidation(t *testing.T) {
	A := sparse.Laplace1D(5)
	for _, omega := range []float64{0, 2, -1} {
		if _, err := NewSSOR(A, omega); err == nil {
			t.Errorf("omega %g accepted", omega)
		}
	}
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := NewSSOR(coo.ToCSR(), 1); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestIC0ExactOnDiagonal(t *testing.T) {
	// For a diagonal matrix IC(0) is exact: M = A.
	A := sparse.DiagWithEigenvalues([]float64{4, 9, 16})
	M, err := NewIC0(A)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 3)
	M.Apply([]float64{4, 9, 16}, z)
	for i, v := range z {
		if math.Abs(v-1) > 1e-14 {
			t.Errorf("z[%d] = %g, want 1", i, v)
		}
	}
	if M.Name() != "ic0" {
		t.Error("name")
	}
}

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// For a tridiagonal SPD matrix the Cholesky factor is bidiagonal, so
	// IC(0) (which keeps the full lower bandwidth) is the exact factor:
	// applying M⁻¹ must solve the system exactly.
	A := sparse.Laplace1D(15)
	M, err := NewIC0(A)
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.RandomVector(15, 8)
	b := make([]float64, 15)
	A.MulVec(want, b)
	z := make([]float64, 15)
	M.Apply(b, z)
	for i := range want {
		if math.Abs(z[i]-want[i]) > 1e-9 {
			t.Fatalf("IC0 not exact on tridiagonal at %d: %g vs %g", i, z[i], want[i])
		}
	}
}

func TestIC0RejectsIndefinite(t *testing.T) {
	A := sparse.DiagWithEigenvalues([]float64{1, -1})
	if _, err := NewIC0(A); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := NewIC0(coo.ToCSR()); err == nil {
		t.Error("missing diagonal accepted")
	}
	rect := sparse.NewCOO(2, 3)
	if _, err := NewIC0(rect.ToCSR()); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestByName(t *testing.T) {
	A := sparse.Laplace1D(6)
	for _, name := range []string{"", "none", "jacobi", "ssor", "ic0"} {
		M, err := ByName(name, A)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if M == nil {
			t.Fatalf("%q: nil preconditioner", name)
		}
	}
	if _, err := ByName("ilu-magic", A); err == nil {
		t.Error("unknown name accepted")
	}
}
