package comm

import "fmt"

// AlltoallVInts is AlltoallV for int payloads (used by the
// inspector-executor schedule construction, where processors exchange
// the index lists they need from each other).
func (p *Proc) AlltoallVInts(segments [][]int) [][]int {
	defer p.collEnd("alltoallv-ints", p.clock)
	tag := p.nextTag(opAlltoall)
	np := p.m.np
	if len(segments) != np {
		panic(fmt.Sprintf("comm: AlltoallVInts needs %d segments, got %d", np, len(segments)))
	}
	out := make([][]int, np)
	own := make([]int, len(segments[p.rank]))
	copy(own, segments[p.rank])
	out[p.rank] = own
	for off := 1; off < np; off++ {
		dst := (p.rank + off) % np
		p.Send(dst, tag, Payload{Ints: segments[dst]})
	}
	for off := 1; off < np; off++ {
		src := (p.rank - off + np) % np
		out[src] = p.Recv(src, tag).Ints
	}
	return out
}

// Group is a static subset of the machine's processors over which
// collectives can run — the processor rows and columns of a 2-D grid
// (HPF PROCESSORS P(R,C)) are the motivating case. All members must
// create the group with the same rank list and call its collectives in
// the same order; the machine-wide collective sequence numbers must
// stay aligned across *all* processors, which holds when every
// processor performs the same sequence of (group or global) collective
// calls — the SPMD discipline the rest of the runtime already assumes.
type Group struct {
	ranks []int
	me    int // index of this processor within ranks
}

// NewGroup creates the calling processor's view of a group. ranks must
// list distinct machine ranks and include the caller.
func NewGroup(p *Proc, ranks []int) Group {
	me := -1
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= p.m.np {
			panic(fmt.Sprintf("comm: group rank %d out of range", r))
		}
		if seen[r] {
			panic(fmt.Sprintf("comm: duplicate group rank %d", r))
		}
		seen[r] = true
		if r == p.rank {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("comm: rank %d not a member of group %v", p.rank, ranks))
	}
	rs := make([]int, len(ranks))
	copy(rs, ranks)
	return Group{ranks: rs, me: me}
}

// Size returns the number of group members.
func (g Group) Size() int { return len(g.ranks) }

// Index returns the caller's index within the group.
func (g Group) Index() int { return g.me }

// BcastFloats broadcasts x from the member with index rootIdx to every
// group member using a binomial tree within the group.
func (g Group) BcastFloats(p *Proc, rootIdx int, x []float64) []float64 {
	defer p.collEnd("group-bcast", p.clock)
	tag := p.nextTag(opBcast)
	n := len(g.ranks)
	if rootIdx < 0 || rootIdx >= n {
		panic(fmt.Sprintf("comm: group bcast invalid root index %d", rootIdx))
	}
	if n == 1 {
		return x
	}
	rel := (g.me - rootIdx + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := ((rel ^ mask) + rootIdx) % n
			x = p.Recv(g.ranks[src], tag).Floats
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		mask = 1
		for mask < n {
			mask <<= 1
		}
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + rootIdx) % n
			p.Send(g.ranks[dst], tag, Payload{Floats: x})
		}
		mask >>= 1
	}
	return x
}

// ReduceSumFloats combines x element-wise (sum) onto the member with
// index rootIdx, which receives the total; other members return nil.
func (g Group) ReduceSumFloats(p *Proc, rootIdx int, x []float64) []float64 {
	defer p.collEnd("group-reduce", p.clock)
	tag := p.nextTag(opReduce)
	n := len(g.ranks)
	if rootIdx < 0 || rootIdx >= n {
		panic(fmt.Sprintf("comm: group reduce invalid root index %d", rootIdx))
	}
	acc := make([]float64, len(x))
	copy(acc, x)
	if n == 1 {
		return acc
	}
	rel := (g.me - rootIdx + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel ^ mask) + rootIdx) % n
			p.Send(g.ranks[dst], tag, Payload{Floats: acc})
			return nil
		}
		if rel|mask < n {
			src := ((rel | mask) + rootIdx) % n
			in := p.Recv(g.ranks[src], tag).Floats
			OpSum.combine(acc, in)
			p.Compute(len(acc))
		}
	}
	return acc
}

// AllreduceSumFloats sums x across the group and returns the result on
// every member (reduce to index 0, then broadcast).
func (g Group) AllreduceSumFloats(p *Proc, x []float64) []float64 {
	defer p.collEnd("group-allreduce", p.clock)
	res := g.ReduceSumFloats(p, 0, x)
	return g.BcastFloats(p, 0, res)
}
