package comm

import (
	"math"
	"reflect"
	"testing"

	"hpfcg/internal/topology"
)

func TestAlltoallVInts(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		m.Run(func(p *Proc) {
			segs := make([][]int, np)
			for d := range segs {
				segs[d] = []int{p.Rank()*100 + d, -d}
			}
			got := p.AlltoallVInts(segs)
			for s := range got {
				want := []int{s*100 + p.Rank(), -p.Rank()}
				if !reflect.DeepEqual(got[s], want) {
					t.Errorf("np=%d rank=%d from %d: %v want %v", np, p.Rank(), s, got[s], want)
				}
			}
		})
	}
}

// Row and column groups of a 2-D grid, broadcasting and reducing
// concurrently — the checkerboard use case.
func TestGridGroups(t *testing.T) {
	rows, cols := 2, 3
	np := rows * cols
	m := testMachine(np)
	m.Run(func(p *Proc) {
		pr, pc := p.Rank()/cols, p.Rank()%cols
		colRanks := make([]int, rows)
		for r := 0; r < rows; r++ {
			colRanks[r] = r*cols + pc
		}
		rowRanks := make([]int, cols)
		for c := 0; c < cols; c++ {
			rowRanks[c] = pr*cols + c
		}
		colG := NewGroup(p, colRanks)
		rowG := NewGroup(p, rowRanks)
		if colG.Size() != rows || rowG.Size() != cols {
			t.Errorf("group sizes %d %d", colG.Size(), rowG.Size())
		}
		if colG.Index() != pr || rowG.Index() != pc {
			t.Errorf("group indices %d %d, want %d %d", colG.Index(), rowG.Index(), pr, pc)
		}

		// Broadcast down each column from grid row 0.
		var x []float64
		if pr == 0 {
			x = []float64{float64(100 + pc)}
		}
		x = colG.BcastFloats(p, 0, x)
		if x[0] != float64(100+pc) {
			t.Errorf("rank %d col bcast got %v", p.Rank(), x)
		}

		// Reduce across each row onto column 0.
		sum := rowG.ReduceSumFloats(p, 0, []float64{float64(pc + 1)})
		if pc == 0 {
			want := float64(cols*(cols+1)) / 2
			if sum[0] != want {
				t.Errorf("row reduce = %v, want %g", sum, want)
			}
		} else if sum != nil {
			t.Errorf("non-root got %v", sum)
		}

		// Allreduce across rows.
		all := rowG.AllreduceSumFloats(p, []float64{1})
		if all[0] != float64(cols) {
			t.Errorf("row allreduce = %v", all)
		}
	})
}

func TestGroupNonContiguousRanks(t *testing.T) {
	np := 8
	m := testMachine(np)
	m.Run(func(p *Proc) {
		// Odd ranks form a group; even ranks a second group, exercising
		// concurrent groups with arbitrary members.
		var ranks []int
		for r := p.Rank() % 2; r < np; r += 2 {
			ranks = append(ranks, r)
		}
		g := NewGroup(p, ranks)
		root := 1 // member index 1
		var x []float64
		if g.Index() == root {
			x = []float64{float64(p.Rank())}
		}
		x = g.BcastFloats(p, root, x)
		want := float64(ranks[root])
		if x[0] != want {
			t.Errorf("rank %d group bcast got %g want %g", p.Rank(), x[0], want)
		}
		sum := g.AllreduceSumFloats(p, []float64{float64(p.Rank())})
		wantSum := 0.0
		for _, r := range ranks {
			wantSum += float64(r)
		}
		if math.Abs(sum[0]-wantSum) > 1e-12 {
			t.Errorf("group allreduce %g want %g", sum[0], wantSum)
		}
	})
}

func TestGroupSingleton(t *testing.T) {
	m := testMachine(3)
	m.Run(func(p *Proc) {
		g := NewGroup(p, []int{p.Rank()})
		x := g.BcastFloats(p, 0, []float64{7})
		if x[0] != 7 {
			t.Errorf("singleton bcast %v", x)
		}
		s := g.ReduceSumFloats(p, 0, []float64{3})
		if s[0] != 3 {
			t.Errorf("singleton reduce %v", s)
		}
	})
}

func TestGroupValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func(p *Proc)
	}{
		{"not-member", func(p *Proc) {
			if p.Rank() == 0 {
				NewGroup(p, []int{1})
			}
		}},
		{"out-of-range", func(p *Proc) { NewGroup(p, []int{p.Rank(), 99}) }},
		{"duplicate", func(p *Proc) { NewGroup(p, []int{p.Rank(), p.Rank()}) }},
		{"bad-root", func(p *Proc) {
			g := NewGroup(p, []int{0, 1})
			g.BcastFloats(p, 5, nil)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			NewMachine(2, topology.Ring{}, topology.DefaultCostParams()).Run(c.fn)
		})
	}
}
