package comm

import (
	"math"
	"testing"

	"hpfcg/internal/topology"
)

// serialReduce is the reference: combine all ranks' vectors in rank
// order on one machine.
func serialReduce(np, n int, op ReduceOp, gen func(rank, i int) float64) []float64 {
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = gen(0, i)
	}
	for r := 1; r < np; r++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = gen(r, i)
		}
		op.combine(ref, v)
	}
	return ref
}

// TestAllreduceAlgosBitIdentical: the tree and Rabenseifner algorithms
// must agree bit for bit on integer-valued data (where every
// combination order is exact) for every operator, processor count —
// including the odd counts that exercise the non-power-of-two fold —
// and vector length, including lengths that do not divide evenly into
// the power-of-two block decomposition.
func TestAllreduceAlgosBitIdentical(t *testing.T) {
	sizes := []int{1, 3, 17, 64, 257}
	gen := func(rank, i int) float64 { return float64((rank*31+i*7)%23 - 11) }
	for _, np := range testNPs {
		for _, n := range sizes {
			for _, op := range []ReduceOp{OpSum, OpMax, OpMin} {
				ref := serialReduce(np, n, op, gen)
				for _, algo := range []AllreduceAlgo{AlgoTree, AlgoRecursive, AlgoAuto} {
					got := make([][]float64, np)
					testMachine(np).Run(func(p *Proc) {
						x := make([]float64, n)
						for i := range x {
							x[i] = gen(p.Rank(), i)
						}
						got[p.Rank()] = p.AllreduceWith(x, op, algo)
					})
					for r := 0; r < np; r++ {
						for i := range ref {
							if got[r][i] != ref[i] {
								t.Fatalf("np=%d n=%d op=%d algo=%v rank=%d elem %d: got %v want %v",
									np, n, op, algo, r, i, got[r][i], ref[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestAllreduceInPlaceMatchesAllreduce: the in-place form and the
// copying form are the same collective.
func TestAllreduceInPlaceMatchesAllreduce(t *testing.T) {
	testMachine(4).Run(func(p *Proc) {
		a := make([]float64, 33)
		b := make([]float64, 33)
		for i := range a {
			a[i] = float64(p.Rank()*i + 1)
			b[i] = a[i]
		}
		out := p.AllreduceWith(a, OpSum, AlgoRecursive)
		p.AllreduceInPlace(b, OpSum, AlgoRecursive)
		for i := range out {
			if out[i] != b[i] {
				t.Errorf("elem %d: AllreduceWith %v != AllreduceInPlace %v", i, out[i], b[i])
			}
			if a[i] != float64(p.Rank()*i+1) {
				t.Errorf("AllreduceWith mutated its input at %d", i)
			}
		}
	})
}

// TestAllreduceStartupAsymptotics: under a startup-only cost model both
// algorithms pay the same 2·log2 NP sequential message steps on a
// power-of-two machine; the non-power-of-two fold adds exactly one
// step to the recursive algorithm's critical path.
func TestAllreduceStartupAsymptotics(t *testing.T) {
	tsOnly := topology.CostParams{TStartup: 1}
	run := func(np int, algo AllreduceAlgo) float64 {
		m := NewMachine(np, topology.Hypercube{}, tsOnly)
		return m.Run(func(p *Proc) {
			p.AllreduceInPlace(make([]float64, 64), OpSum, algo)
		}).ModelTime
	}
	for _, np := range []int{2, 4, 8, 16} {
		tree, rec := run(np, AlgoTree), run(np, AlgoRecursive)
		if tree != rec {
			t.Errorf("np=%d: startup-only makespan tree=%g recursive=%g, want equal", np, tree, rec)
		}
	}
	for _, np := range []int{3, 5, 7} {
		tree, rec := run(np, AlgoTree), run(np, AlgoRecursive)
		if rec != tree+1 {
			t.Errorf("np=%d: startup-only makespan tree=%g recursive=%g, want fold cost of exactly one extra step", np, tree, rec)
		}
	}
}

// TestAllreduceBandwidthWin: under a byte-only cost model Rabenseifner
// moves 2·n·(NP-1)/NP words against the tree's 2·n·log2 NP — strictly
// less for NP >= 2, and the gap widens with NP.
func TestAllreduceBandwidthWin(t *testing.T) {
	twOnly := topology.CostParams{TByte: 1}
	const words = 4096
	prevRatio := 1.0
	for _, np := range []int{2, 4, 8, 16} {
		m := NewMachine(np, topology.Hypercube{}, twOnly)
		times := map[AllreduceAlgo]float64{}
		for _, algo := range []AllreduceAlgo{AlgoTree, AlgoRecursive} {
			times[algo] = m.Run(func(p *Proc) {
				p.AllreduceInPlace(make([]float64, words), OpSum, algo)
			}).ModelTime
		}
		if times[AlgoRecursive] >= times[AlgoTree] {
			t.Errorf("np=%d: byte-only makespan recursive %g >= tree %g", np, times[AlgoRecursive], times[AlgoTree])
		}
		ratio := times[AlgoRecursive] / times[AlgoTree]
		if np > 2 && ratio >= prevRatio {
			t.Errorf("np=%d: bandwidth advantage ratio %g did not improve on %g", np, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

// TestAllreduceAutoSelection: the per-call choice is tree for scalars
// (pinned below rabenseifnerMinWords) and recursive for long vectors on
// the default machine, and matches the closed-form comparison in
// between.
func TestAllreduceAutoSelection(t *testing.T) {
	testMachine(8).Run(func(p *Proc) {
		if got := p.chooseAllreduceAlgo(1); got != AlgoTree {
			t.Errorf("1 word: chose %v, want tree", got)
		}
		if got := p.chooseAllreduceAlgo(rabenseifnerMinWords - 1); got != AlgoTree {
			t.Errorf("%d words: chose %v, want tree", rabenseifnerMinWords-1, got)
		}
		if got := p.chooseAllreduceAlgo(4096); got != AlgoRecursive {
			t.Errorf("4096 words: chose %v, want recursive", got)
		}
		// Above the pin the choice must agree with the closed forms.
		for _, words := range []int{rabenseifnerMinWords, 256, 65536} {
			rec := topology.RabenseifnerAllreduceTime(topology.Hypercube{}, topology.DefaultCostParams(), 8, words)
			tree := topology.AllreduceTime(topology.Hypercube{}, topology.DefaultCostParams(), 8, words)
			want := AlgoTree
			if rec < tree {
				want = AlgoRecursive
			}
			if got := p.chooseAllreduceAlgo(words); got != want {
				t.Errorf("%d words: chose %v, closed forms say %v", words, got, want)
			}
		}
	})
	testMachine(1).Run(func(p *Proc) {
		if got := p.chooseAllreduceAlgo(1 << 20); got != AlgoTree {
			t.Errorf("np=1: chose %v, want tree (nothing to communicate)", got)
		}
	})
}

// TestAllreduceScalarsMatchesSeparate: batching k scalars into one
// AllreduceScalars round is bit-identical to k separate AllreduceScalar
// calls — the element-wise combine runs in the same tree order — even
// for floating-point data where the order matters.
func TestAllreduceScalarsMatchesSeparate(t *testing.T) {
	for _, np := range testNPs {
		testMachine(np).Run(func(p *Proc) {
			vals := []float64{
				1.0 / float64(p.Rank()+1),
				math.Pi * float64(p.Rank()),
				1e-17 + float64(p.Rank()),
			}
			batched := make([]float64, len(vals))
			copy(batched, vals)
			p.AllreduceScalars(batched, OpSum)
			for i, v := range vals {
				if sep := p.AllreduceScalar(v, OpSum); sep != batched[i] {
					t.Errorf("np=%d elem %d: batched %v != separate %v", np, i, batched[i], sep)
				}
			}
		})
	}
}

// TestAllreduceScalarNoAllocs is the scalar fast path's zero-allocation
// guard: after one warm-up round fills every rank's buffer pool, the
// steady-state DOT_PRODUCT merge must not touch the heap on any rank
// (AllocsPerRun counts process-wide allocations, so peer ranks
// allocating would fail it too).
func TestAllreduceScalarNoAllocs(t *testing.T) {
	const runs = 7
	m := testMachine(4)
	var allocs float64
	m.Run(func(p *Proc) {
		x := float64(p.Rank() + 1)
		p.AllreduceScalar(x, OpSum) // warm-up: populate the pools
		if p.Rank() == 0 {
			allocs = testing.AllocsPerRun(runs, func() {
				p.AllreduceScalar(x, OpSum)
			})
		} else {
			for i := 0; i < runs+1; i++ {
				p.AllreduceScalar(x, OpSum)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("AllreduceScalar allocated %.1f times per call in steady state, want 0", allocs)
	}
}

// TestAllreduceInPlaceNoAllocs: both algorithms run allocation-free in
// steady state on pooled buffers (vectors sized above the auto
// crossover so the recursive path is the one that matters in practice).
func TestAllreduceInPlaceNoAllocs(t *testing.T) {
	const runs = 7
	for _, algo := range []AllreduceAlgo{AlgoTree, AlgoRecursive} {
		m := testMachine(4)
		var allocs float64
		m.Run(func(p *Proc) {
			x := make([]float64, 128)
			p.AllreduceInPlace(x, OpSum, algo)
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(runs, func() {
					p.AllreduceInPlace(x, OpSum, algo)
				})
			} else {
				for i := 0; i < runs+1; i++ {
					p.AllreduceInPlace(x, OpSum, algo)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("AllreduceInPlace(%v) allocated %.1f times per call in steady state, want 0", algo, allocs)
		}
	}
}

// TestAllgatherVIntoNoAllocs: the gather phase of the mat-vec reuses
// the caller's buffer and pooled messages — no steady-state heap
// traffic on either the power-of-two or the ring path.
func TestAllgatherVIntoNoAllocs(t *testing.T) {
	const runs = 7
	for _, np := range []int{3, 4} {
		m := testMachine(np)
		var allocs float64
		m.Run(func(p *Proc) {
			counts := make([]int, np)
			for i := range counts {
				counts[i] = 16
			}
			local := make([]float64, 16)
			full := make([]float64, 16*np)
			p.AllgatherVInto(local, counts, full)
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(runs, func() {
					p.AllgatherVInto(local, counts, full)
				})
			} else {
				for i := 0; i < runs+1; i++ {
					p.AllgatherVInto(local, counts, full)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("np=%d: AllgatherVInto allocated %.1f times per call in steady state, want 0", np, allocs)
		}
	}
}
