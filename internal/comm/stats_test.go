package comm

import (
	"testing"

	"hpfcg/internal/trace"
)

// TestPayloadBytesMixed: modeled wire size is 8 bytes per element for
// floats and ints alike, including mixed payloads and nil slices.
func TestPayloadBytesMixed(t *testing.T) {
	cases := []struct {
		pl   Payload
		want int
	}{
		{Payload{}, 0},
		{Payload{Floats: []float64{}}, 0},
		{Payload{Floats: make([]float64, 3)}, 24},
		{Payload{Ints: make([]int, 5)}, 40},
		{Payload{Floats: make([]float64, 3), Ints: make([]int, 5)}, 64},
		{Payload{Floats: make([]float64, 1), Ints: []int{}}, 8},
	}
	for _, c := range cases {
		if got := c.pl.Bytes(); got != c.want {
			t.Errorf("Bytes(%d floats, %d ints) = %d, want %d",
				len(c.pl.Floats), len(c.pl.Ints), got, c.want)
		}
	}
}

// TestCommTimeNP1: a single processor cannot communicate, so the
// busiest processor's communication time is zero.
func TestCommTimeNP1(t *testing.T) {
	rs := testMachine(1).Run(func(p *Proc) {
		p.Compute(1000)
		p.Barrier() // degenerate: no messages at np=1
	})
	if rs.CommTime() != 0 {
		t.Errorf("np=1 CommTime = %g, want 0", rs.CommTime())
	}
	if rs.TotalMsgs != 0 || rs.TotalMsgsRecv != 0 {
		t.Errorf("np=1 moved messages: sent=%d recv=%d", rs.TotalMsgs, rs.TotalMsgsRecv)
	}
}

// TestFlopImbalanceEdgeCases: zero-flop runs report perfect balance
// (1.0) rather than dividing by zero; np=1 is always balanced; a
// lopsided load reports max/mean.
func TestFlopImbalanceEdgeCases(t *testing.T) {
	zero := testMachine(4).Run(func(p *Proc) { p.Barrier() })
	if got := zero.FlopImbalance(); got != 1 {
		t.Errorf("zero-flop FlopImbalance = %g, want 1", got)
	}
	single := testMachine(1).Run(func(p *Proc) { p.Compute(12345) })
	if got := single.FlopImbalance(); got != 1 {
		t.Errorf("np=1 FlopImbalance = %g, want 1", got)
	}
	// Rank 1 of 2 does all the work: max/mean = 1000/500 = 2.
	skew := testMachine(2).Run(func(p *Proc) {
		if p.Rank() == 1 {
			p.Compute(1000)
		}
	})
	if got := skew.FlopImbalance(); got != 2 {
		t.Errorf("skewed FlopImbalance = %g, want 2", got)
	}
	// Compute with non-positive flops charges nothing.
	noop := testMachine(2).Run(func(p *Proc) {
		p.Compute(0)
		p.Compute(-5)
	})
	if noop.TotalFlops != 0 || noop.FlopImbalance() != 1 {
		t.Errorf("non-positive Compute: flops=%d imbalance=%g", noop.TotalFlops, noop.FlopImbalance())
	}
}

// TestCommTimeZeroFlopRun: a pure-communication run has CommTime equal
// to the makespan on the busiest rank and zero ComputeTime everywhere.
func TestCommTimeZeroFlopRun(t *testing.T) {
	rs := testMachine(2).Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, make([]float64, 100))
		} else {
			p.RecvFloats(0, 1)
		}
	})
	if rs.CommTime() <= 0 {
		t.Error("pure-communication run reports zero CommTime")
	}
	for r, ps := range rs.Procs {
		if ps.ComputeTime != 0 {
			t.Errorf("rank %d ComputeTime = %g, want 0", r, ps.ComputeTime)
		}
	}
}

// TestRecvCountersSymmetric: per-rank receive accounting mirrors the
// send side, pairwise and in aggregate, once every message has been
// consumed.
func TestRecvCountersSymmetric(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8} {
		rs := testMachine(np).Run(func(p *Proc) {
			p.AllgatherV(make([]float64, 4), fill(np, 4))
			p.AllreduceScalar(float64(p.Rank()), OpSum)
			p.Barrier()
		})
		if rs.TotalMsgsRecv != rs.TotalMsgs {
			t.Errorf("np=%d: TotalMsgsRecv %d != TotalMsgs %d", np, rs.TotalMsgsRecv, rs.TotalMsgs)
		}
		if rs.TotalBytesRecv != rs.TotalBytes {
			t.Errorf("np=%d: TotalBytesRecv %d != TotalBytes %d", np, rs.TotalBytesRecv, rs.TotalBytes)
		}
		// Per-rank receive totals must equal the column sums of the
		// communication matrix.
		for r := 0; r < np; r++ {
			var col int64
			for s := 0; s < np; s++ {
				col += rs.BytesMatrix[s][r]
			}
			if rs.Procs[r].BytesRecv != col {
				t.Errorf("np=%d rank %d: BytesRecv %d != matrix column sum %d", np, r, rs.Procs[r].BytesRecv, col)
			}
		}
	}
}

// TestRecvCountersSeeUndelivered: messages left in the mailboxes are
// visible as a send/recv total mismatch.
func TestRecvCountersSeeUndelivered(t *testing.T) {
	rs := testMachine(2).Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, make([]float64, 8))
			p.SendFloats(1, 2, make([]float64, 8))
		} else {
			p.RecvFloats(0, 1) // second message intentionally unconsumed
		}
	})
	if rs.TotalMsgs != 2 || rs.TotalMsgsRecv != 1 {
		t.Errorf("sent=%d recv=%d, want 2/1", rs.TotalMsgs, rs.TotalMsgsRecv)
	}
	if rs.TotalBytes-rs.TotalBytesRecv != 64 {
		t.Errorf("undelivered bytes = %d, want 64", rs.TotalBytes-rs.TotalBytesRecv)
	}
}

func fill(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestSendPathNoAllocsWhenDetached is the tentpole's zero-overhead
// guarantee: with no tracer attached, Send performs no heap
// allocations (the mailbox channels are pre-sized, the message is a
// value, and the nil-tracer branch constructs no event).
func TestSendPathNoAllocsWhenDetached(t *testing.T) {
	m := testMachine(2)
	var allocs float64
	pl := Payload{Floats: make([]float64, 16)}
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			// One warm-up send, then 8 measured sends; all 9 fit in the
			// mailbox buffer (8+np), so the sender never blocks and the
			// receiver path (which allocates nothing either) only drains.
			p.Send(1, 3, pl)
			allocs = testing.AllocsPerRun(7, func() {
				p.Send(1, 3, pl)
			})
		} else {
			for i := 0; i < 9; i++ {
				p.Recv(0, 3)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("Send allocated %.1f times per call with tracing detached, want 0", allocs)
	}
}

// BenchmarkSendRecvDetached measures the point-to-point round trip
// with no tracer attached; -benchmem should report ~0 allocs/op from
// the send path itself.
func BenchmarkSendRecvDetached(b *testing.B) {
	m := testMachine(2)
	pl := Payload{Floats: make([]float64, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	pingPong(m, pl, b.N)
}

// BenchmarkSendRecvTraced is the same loop with a tracer attached, to
// keep the tracing overhead visible and bounded. It runs in chunks
// with a fresh tracer each so recorded events do not accumulate
// without bound across a large b.N.
func BenchmarkSendRecvTraced(b *testing.B) {
	m := testMachine(2)
	pl := Payload{Floats: make([]float64, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 4096
	for remaining := b.N; remaining > 0; remaining -= chunk {
		m.AttachTracer(&trace.Tracer{})
		pingPong(m, pl, min(chunk, remaining))
	}
}

func pingPong(m *Machine, pl Payload, iters int) {
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < iters; i++ {
				p.Send(1, 1, pl)
				p.Recv(1, 2)
			}
		} else {
			for i := 0; i < iters; i++ {
				p.Recv(0, 1)
				p.Send(0, 2, pl)
			}
		}
	})
}
