package comm

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"hpfcg/internal/topology"
)

func testMachine(np int) *Machine {
	return NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

var testNPs = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestRunSPMD(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		var visited int64
		m.Run(func(p *Proc) {
			if p.NP() != np {
				t.Errorf("NP() = %d, want %d", p.NP(), np)
			}
			atomic.AddInt64(&visited, 1)
		})
		if visited != int64(np) {
			t.Errorf("np=%d: %d procs ran", np, visited)
		}
	}
}

func TestSendRecv(t *testing.T) {
	m := testMachine(4)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 7, []float64{1, 2, 3})
			p.SendInts(1, 8, []int{9, 10})
		}
		if p.Rank() == 1 {
			f := p.RecvFloats(0, 7)
			if !reflect.DeepEqual(f, []float64{1, 2, 3}) {
				t.Errorf("RecvFloats = %v", f)
			}
			in := p.RecvInts(0, 8)
			if !reflect.DeepEqual(in, []int{9, 10}) {
				t.Errorf("RecvInts = %v", in)
			}
		}
	})
}

func TestSendAdvancesClock(t *testing.T) {
	m := testMachine(2)
	stats := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, make([]float64, 1000))
		} else {
			p.RecvFloats(0, 1)
		}
	})
	c := m.Cost()
	wantArrive := c.TStartup + 1*c.THop + 8000*c.TByte
	if math.Abs(stats.ModelTime-wantArrive) > 1e-12 {
		t.Errorf("ModelTime = %g, want %g", stats.ModelTime, wantArrive)
	}
	if stats.TotalMsgs != 1 || stats.TotalBytes != 8000 {
		t.Errorf("TotalMsgs=%d TotalBytes=%d", stats.TotalMsgs, stats.TotalBytes)
	}
}

func TestComputeCharges(t *testing.T) {
	m := testMachine(3)
	stats := m.Run(func(p *Proc) {
		p.Compute(100 * (p.Rank() + 1))
	})
	if stats.TotalFlops != 100+200+300 {
		t.Errorf("TotalFlops = %d", stats.TotalFlops)
	}
	if stats.MaxFlops != 300 {
		t.Errorf("MaxFlops = %d", stats.MaxFlops)
	}
	imb := stats.FlopImbalance()
	if math.Abs(imb-1.5) > 1e-12 {
		t.Errorf("FlopImbalance = %g, want 1.5", imb)
	}
	wantTime := 300 * m.Cost().TFlop
	if math.Abs(stats.ModelTime-wantTime) > 1e-15 {
		t.Errorf("ModelTime = %g, want %g", stats.ModelTime, wantTime)
	}
}

func TestBarrier(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		var phase int64
		m.Run(func(p *Proc) {
			atomic.AddInt64(&phase, 1)
			p.Barrier()
			if got := atomic.LoadInt64(&phase); got != int64(np) {
				t.Errorf("np=%d rank=%d: after barrier phase=%d", np, p.Rank(), got)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, np := range testNPs {
		for root := 0; root < np; root += max(1, np/3) {
			m := testMachine(np)
			want := []float64{3.5, -1, float64(root)}
			m.Run(func(p *Proc) {
				var in []float64
				if p.Rank() == root {
					in = want
				}
				out := p.BcastFloats(root, in)
				if !reflect.DeepEqual(out, want) {
					t.Errorf("np=%d root=%d rank=%d: bcast = %v", np, root, p.Rank(), out)
				}
			})
		}
	}
}

func TestBcastIntsAndScalars(t *testing.T) {
	m := testMachine(5)
	m.Run(func(p *Proc) {
		var xi []int
		if p.Rank() == 2 {
			xi = []int{4, 5, 6}
		}
		got := p.BcastInts(2, xi)
		if !reflect.DeepEqual(got, []int{4, 5, 6}) {
			t.Errorf("BcastInts = %v", got)
		}
		var s float64
		if p.Rank() == 0 {
			s = 2.25
		}
		if gs := p.BcastFloat(0, s); gs != 2.25 {
			t.Errorf("BcastFloat = %v", gs)
		}
		var n int
		if p.Rank() == 4 {
			n = 42
		}
		if gn := p.BcastInt(4, n); gn != 42 {
			t.Errorf("BcastInt = %v", gn)
		}
	})
}

func TestReduceAllOps(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		m.Run(func(p *Proc) {
			x := []float64{float64(p.Rank()), float64(-p.Rank()), 1}
			sum := p.Reduce(0, x, OpSum)
			if p.Rank() == 0 {
				n := float64(np)
				want := []float64{n * (n - 1) / 2, -n * (n - 1) / 2, n}
				if !reflect.DeepEqual(sum, want) {
					t.Errorf("np=%d Reduce sum = %v, want %v", np, sum, want)
				}
			} else if sum != nil {
				t.Errorf("non-root got %v", sum)
			}
			mx := p.Allreduce([]float64{float64(p.Rank())}, OpMax)
			if mx[0] != float64(np-1) {
				t.Errorf("np=%d Allreduce max = %v", np, mx)
			}
			mn := p.Allreduce([]float64{float64(p.Rank())}, OpMin)
			if mn[0] != 0 {
				t.Errorf("np=%d Allreduce min = %v", np, mn)
			}
		})
	}
}

func TestAllreduceScalar(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		m.Run(func(p *Proc) {
			got := p.AllreduceScalar(float64(p.Rank()+1), OpSum)
			want := float64(np*(np+1)) / 2
			if got != want {
				t.Errorf("np=%d AllreduceScalar = %g, want %g", np, got, want)
			}
		})
	}
}

func blockCounts(n, np int) []int {
	counts := make([]int, np)
	for r := range counts {
		lo := r * n / np
		hi := (r + 1) * n / np
		counts[r] = hi - lo
	}
	return counts
}

func TestGatherScatterAllgather(t *testing.T) {
	for _, np := range testNPs {
		n := 3*np + 1 // uneven blocks
		counts := blockCounts(n, np)
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i * i)
		}
		m := testMachine(np)
		m.Run(func(p *Proc) {
			lo := p.Rank() * n / np
			local := make([]float64, counts[p.Rank()])
			for i := range local {
				local[i] = want[lo+i]
			}
			full := p.GatherV(0, local, counts)
			if p.Rank() == 0 {
				if !reflect.DeepEqual(full, want) {
					t.Errorf("np=%d GatherV = %v", np, full)
				}
			} else if full != nil {
				t.Errorf("np=%d non-root GatherV != nil", np)
			}

			back := p.ScatterV(0, full, counts)
			if !reflect.DeepEqual(back, local) {
				t.Errorf("np=%d rank=%d ScatterV = %v, want %v", np, p.Rank(), back, local)
			}

			ag := p.AllgatherV(local, counts)
			if !reflect.DeepEqual(ag, want) {
				t.Errorf("np=%d rank=%d AllgatherV = %v", np, p.Rank(), ag)
			}
		})
	}
}

func TestAllgatherVInts(t *testing.T) {
	for _, np := range testNPs {
		n := 2*np + 3
		counts := blockCounts(n, np)
		want := make([]int, n)
		for i := range want {
			want[i] = 7*i - 3
		}
		m := testMachine(np)
		m.Run(func(p *Proc) {
			lo := p.Rank() * n / np
			local := append([]int(nil), want[lo:lo+counts[p.Rank()]]...)
			got := p.AllgatherVInts(local, counts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("np=%d rank=%d AllgatherVInts = %v", np, p.Rank(), got)
			}
		})
	}
}

func TestAlltoallV(t *testing.T) {
	for _, np := range testNPs {
		m := testMachine(np)
		m.Run(func(p *Proc) {
			segs := make([][]float64, np)
			for d := range segs {
				segs[d] = []float64{float64(100*p.Rank() + d)}
			}
			got := p.AlltoallV(segs)
			for s := range got {
				want := []float64{float64(100*s + p.Rank())}
				if !reflect.DeepEqual(got[s], want) {
					t.Errorf("np=%d rank=%d from %d: %v want %v", np, p.Rank(), s, got[s], want)
				}
			}
		})
	}
}

func TestReduceScatterSum(t *testing.T) {
	for _, np := range testNPs {
		n := 4*np + 2
		counts := blockCounts(n, np)
		m := testMachine(np)
		m.Run(func(p *Proc) {
			full := make([]float64, n)
			for i := range full {
				full[i] = float64((p.Rank() + 1) * (i + 1))
			}
			got := p.ReduceScatterSum(full, counts)
			lo := p.Rank() * n / np
			sumRanks := float64(np*(np+1)) / 2
			for i, v := range got {
				want := sumRanks * float64(lo+i+1)
				if math.Abs(v-want) > 1e-9 {
					t.Errorf("np=%d rank=%d elem %d = %g, want %g", np, p.Rank(), i, v, want)
				}
			}
		})
	}
}

// Property test: AllgatherV reconstructs any random vector for any
// processor count, and ReduceScatterSum matches a serial sum.
func TestCollectivesQuick(t *testing.T) {
	f := func(seed int64, npRaw, nRaw uint8) bool {
		np := int(npRaw%8) + 1
		n := int(nRaw%50) + np
		rng := rand.New(rand.NewSource(seed))
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		counts := blockCounts(n, np)
		ok := true
		m := testMachine(np)
		m.Run(func(p *Proc) {
			lo := p.Rank() * n / np
			local := append([]float64(nil), want[lo:lo+counts[p.Rank()]]...)
			got := p.AllgatherV(local, counts)
			for i := range got {
				if got[i] != want[i] {
					ok = false
				}
			}
			rs := p.ReduceScatterSum(want, counts)
			for i, v := range rs {
				if math.Abs(v-float64(np)*want[lo+i]) > 1e-9 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	m := testMachine(4)
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic to propagate from Run")
		}
		if s, ok := e.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", e)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block in a collective; the abort must unwedge them.
		p.Barrier()
	})
}

func TestTagMismatchPanics(t *testing.T) {
	m := testMachine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected tag mismatch panic")
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 5, []float64{1})
		} else {
			p.RecvFloats(0, 6)
		}
	})
}

func TestModelTimeDeterministic(t *testing.T) {
	run := func() float64 {
		m := testMachine(8)
		st := m.Run(func(p *Proc) {
			x := make([]float64, 100)
			for i := 0; i < 5; i++ {
				p.Compute(1000)
				x = p.Allreduce(x, OpSum)
				p.Barrier()
			}
		})
		return st.ModelTime
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Errorf("model time not deterministic: %g vs %g", t1, t2)
	}
	if t1 <= 0 {
		t.Errorf("model time should be positive, got %g", t1)
	}
}

// The simulated binomial broadcast must scale like the analytic
// t_s*ceil(log2 NP) formula for small messages (§4 of the paper).
func TestBcastMatchesAnalyticShape(t *testing.T) {
	cost := topology.CostParams{TStartup: 1e-4, THop: 0, TByte: 0, TFlop: 0}
	for _, np := range []int{2, 4, 8, 16, 32} {
		m := NewMachine(np, topology.FullyConnected{}, cost)
		st := m.Run(func(p *Proc) {
			p.BcastFloats(0, []float64{1})
		})
		want := float64(topology.Log2Ceil(np)) * cost.TStartup
		if math.Abs(st.ModelTime-want) > 1e-12 {
			t.Errorf("np=%d bcast model time %g, want %g", np, st.ModelTime, want)
		}
	}
}

// The allgather's modeled cost must match the closed forms: the
// (NP-1)-step ring expression for non-power-of-two NP, and the
// hypercube recursive-doubling expression (the paper's
// t_s·log NP + t_w·n·(NP-1)/NP) for power-of-two NP.
func TestAllgatherMatchesAnalytic(t *testing.T) {
	cost := topology.CostParams{TStartup: 1e-4, THop: 1e-6, TByte: 1e-8, TFlop: 0}
	blockLen := 64
	for _, np := range []int{3, 5, 7} { // ring path
		n := blockLen * np
		counts := blockCounts(n, np)
		m := NewMachine(np, topology.Ring{}, cost)
		st := m.Run(func(p *Proc) {
			local := make([]float64, blockLen)
			p.AllgatherV(local, counts)
		})
		want := topology.RingAllgatherTime(cost, np, blockLen*8)
		if math.Abs(st.ModelTime-want) > want*1e-9 {
			t.Errorf("np=%d ring allgather model time %g, want %g", np, st.ModelTime, want)
		}
	}
	for _, np := range []int{2, 4, 8, 16} { // recursive-doubling path
		n := blockLen * np
		counts := blockCounts(n, np)
		m := NewMachine(np, topology.Hypercube{}, cost)
		st := m.Run(func(p *Proc) {
			local := make([]float64, blockLen)
			p.AllgatherV(local, counts)
		})
		// Partners differ by one bit, so every hop count is 1 and the
		// closed form (which charges one hop per step) applies exactly.
		want := topology.HypercubeAllgatherTime(cost, np, blockLen*8)
		if math.Abs(st.ModelTime-want) > want*1e-9 {
			t.Errorf("np=%d hypercube allgather model time %g, want %g", np, st.ModelTime, want)
		}
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	cases := []struct {
		name string
		fn   func(p *Proc)
	}{
		{"send-self", func(p *Proc) { p.SendFloats(p.Rank(), 0, nil) }},
		{"send-range", func(p *Proc) { p.SendFloats(99, 0, nil) }},
		{"recv-range", func(p *Proc) { p.RecvFloats(-1, 0) }},
		{"bad-root", func(p *Proc) { p.BcastFloats(12, nil) }},
		{"bad-counts", func(p *Proc) { p.AllgatherV(nil, []int{1, 2, 3}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			testMachine(2).Run(c.fn)
		})
	}
}

func TestNewMachineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine(0) should panic")
		}
	}()
	NewMachine(0, topology.Ring{}, topology.DefaultCostParams())
}

func TestPayloadBytes(t *testing.T) {
	pl := Payload{Floats: make([]float64, 3), Ints: make([]int, 2)}
	if pl.Bytes() != 40 {
		t.Errorf("Bytes = %d, want 40", pl.Bytes())
	}
}

func TestRunStatsCommTime(t *testing.T) {
	m := testMachine(2)
	st := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, make([]float64, 10))
		} else {
			p.RecvFloats(0, 1)
		}
	})
	if st.CommTime() <= 0 {
		t.Errorf("CommTime = %g, want > 0", st.CommTime())
	}
}

func ExampleMachine_Run() {
	m := NewMachine(4, topology.Hypercube{}, topology.DefaultCostParams())
	m.Run(func(p *Proc) {
		sum := p.AllreduceScalar(float64(p.Rank()), OpSum)
		if p.Rank() == 0 {
			fmt.Println("sum of ranks:", sum)
		}
	})
	// Output: sum of ranks: 6
}

func TestBytesMatrix(t *testing.T) {
	m := testMachine(3)
	st := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(2, 1, make([]float64, 4)) // 32 bytes
		}
		if p.Rank() == 2 {
			p.RecvFloats(0, 1)
		}
	})
	if len(st.BytesMatrix) != 3 {
		t.Fatalf("matrix size %d", len(st.BytesMatrix))
	}
	if st.BytesMatrix[0][2] != 32 {
		t.Errorf("bytes[0][2] = %d, want 32", st.BytesMatrix[0][2])
	}
	total := int64(0)
	for _, row := range st.BytesMatrix {
		for _, b := range row {
			total += b
		}
	}
	if total != st.TotalBytes {
		t.Errorf("matrix total %d != TotalBytes %d", total, st.TotalBytes)
	}
}

func TestRunTimeoutCompletes(t *testing.T) {
	m := testMachine(4)
	rs, err := m.RunTimeout(func(p *Proc) {
		p.AllreduceScalar(1, OpSum)
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalMsgs == 0 {
		t.Error("no stats from completed run")
	}
}

func TestRunTimeoutDetectsDeadlock(t *testing.T) {
	m := testMachine(2)
	// Classic SPMD bug: rank 0 enters a collective, rank 1 does not.
	_, err := m.RunTimeout(func(p *Proc) {
		if p.Rank() == 0 {
			p.Barrier()
		}
	}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunTimeoutForwardsPanics(t *testing.T) {
	m := testMachine(2)
	defer func() {
		if e := recover(); e == nil || e.(string) != "kaboom" {
			t.Fatalf("panic not forwarded: %v", e)
		}
	}()
	m.RunTimeout(func(p *Proc) {
		if p.Rank() == 1 {
			panic("kaboom")
		}
		p.Barrier()
	}, 5*time.Second)
}
