// Nonblocking collectives on the modeled clock: the overlap substrate
// for pipelined CG.
//
// A real MPI_Iallreduce lets the network combine scalars while the
// processor keeps computing; the caller pays only whatever part of the
// reduction the intervening compute did not cover. This file models
// exactly that contract on the simulated machine. IallreduceScalars
// runs the *real* tree reduction eagerly — same partners, same message
// sizes, same combine order as the blocking AllreduceScalars, so the
// numerical results are bit-identical — then rewinds the modeled clock
// to the start time. The returned handle remembers what the blocking
// reduction would have cost; Wait charges
//
//	max(reduction_cost, overlapped_compute)
//
// instead of their sum: compute charged between start and Wait opens
// the overlap window, and Wait only bills the exposed remainder
// (reduction_cost - overlap, floored at zero). Message and flop counts
// stay on the books — the traffic is real, only its latency hides.
//
// Handles are recycled through a small per-processor freelist, so the
// steady-state start/compute/wait cycle allocates nothing (guarded by
// TestIallreduceSteadyStateNoAllocs). Wait is idempotent, and an
// outstanding handle at the end of a Run is harmless: the reduction's
// messages were already drained eagerly, and a cost that was never
// waited on is simply never charged.
package comm

import "hpfcg/internal/trace"

// ReduceHandle is an in-flight nonblocking allreduce started by
// IallreduceScalars. The reduced values are already in the caller's
// slice; the handle only carries the modeled-cost accounting that Wait
// settles. Handles are only valid on the rank that started them.
type ReduceHandle struct {
	p     *Proc
	start float64 // modeled clock when the reduction was started
	cost  float64 // what the blocking reduction would have charged
	done  bool
}

// handlePoolCap bounds the per-processor handle freelist. Solvers keep
// at most a couple of reductions in flight, so a tiny cap suffices.
const handlePoolCap = 4

// IallreduceScalars starts a nonblocking element-wise allreduce of xs
// across all processors. It is a collective: every rank must call it at
// the same point in the program, like AllreduceScalars. On return xs
// already holds the fully reduced values on every rank — the tree
// exchange runs eagerly with the exact schedule and combine order of
// the blocking path, so results are bit-identical to AllreduceScalars —
// but the modeled clock is rewound to the start time: the cost is
// settled by Wait on the returned handle, net of whatever compute the
// caller charged in between. The nil-tracer path allocates nothing in
// steady state.
func (p *Proc) IallreduceScalars(xs []float64, op ReduceOp) *ReduceHandle {
	start := p.clock
	sendT, waitT, compT := p.stats.SendTime, p.stats.WaitTime, p.stats.ComputeTime
	// Suppress per-message tracing during the eager exchange: on the
	// modeled clock those sends/recvs happen inside the collective span,
	// not at their eager wall positions, so the span is the truth.
	tr := p.tr
	p.tr = nil
	p.reduceInPlaceTree(xs, op)
	p.bcastInPlaceTree(xs)
	p.tr = tr
	cost := p.clock - start
	// Rewind: the reduction is in flight, not paid for. Message and flop
	// counts stay (the traffic is real); the time books are restored.
	p.clock = start
	p.stats.SendTime, p.stats.WaitTime, p.stats.ComputeTime = sendT, waitT, compT
	if tr != nil {
		tr.Add(trace.Event{Kind: trace.KindCollective, Peer: -1, Op: "iallreduce",
			Start: start, End: start + cost})
	}
	var h *ReduceHandle
	if n := len(p.handles); n > 0 {
		h = p.handles[n-1]
		p.handles = p.handles[:n-1]
	} else {
		h = &ReduceHandle{}
	}
	h.p, h.start, h.cost, h.done = p, start, cost, false
	return h
}

// Cost returns what the blocking reduction would have charged — the
// upper bound on what Wait can bill.
func (h *ReduceHandle) Cost() float64 { return h.cost }

// Wait completes the nonblocking reduction, charging only the exposed
// part of its cost: compute (or any other modeled time) charged since
// the start overlapped the reduction, so the clock advances by
// max(cost, overlapped) - overlapped. With no intervening work that is
// the full blocking cost; once the overlap window covers the cost,
// Wait is free. Wait is idempotent — a second call is a no-op — and
// recycles the handle into the processor's freelist.
func (h *ReduceHandle) Wait() {
	if h.done {
		return
	}
	h.done = true
	p := h.p
	overlapped := p.clock - h.start
	hidden := overlapped
	if hidden > h.cost {
		hidden = h.cost
	}
	exposed := h.cost - hidden
	waitStart := p.clock
	if exposed > 0 {
		p.clock += exposed
		p.stats.WaitTime += exposed
	}
	p.stats.ReduceHiddenTime += hidden
	p.stats.ReduceExposedTime += exposed
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindCollective, Peer: -1, Op: "iallreduce.wait",
			Start: waitStart, End: p.clock})
	}
	p.checkCrash()
	if len(p.handles) < handlePoolCap {
		p.handles = append(p.handles, h)
	}
}
