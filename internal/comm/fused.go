// Buffer-pooled collectives: the communication-avoiding hot path.
//
// The original collectives allocate a fresh slice per call (the Reduce
// accumulator, the boxed AllreduceScalar argument, the AllgatherV
// result), which makes every CG iteration pay several heap allocations
// per rank. The primitives in this file reuse per-processor scratch
// buffers instead, so a steady-state solver iteration allocates
// nothing.
//
// Buffer ownership protocol: Send passes slices by reference, so a
// long-lived buffer must never be sent directly — a laggard receiver
// could still be reading it when the next superstep overwrites it.
// Every internal message therefore carries a pool-owned copy: the
// sender copies into a GetBuf buffer and relinquishes it through the
// channel; the receiver combines/copies the data and recycles the
// buffer into its *own* pool with PutBuf. Ownership transfers with the
// message, so no buffer is ever written by one rank while readable by
// another, and the pools stay balanced whenever sends and receives do.
package comm

import "fmt"

// poolCap bounds the per-processor buffer pool. Asymmetric patterns
// (e.g. a halo exchange where one rank receives more messages than it
// sends) would otherwise grow a net receiver's pool without bound; the
// cap trades a few allocations in those cases for bounded memory.
const (
	poolCap    = 16
	intPoolCap = 4
)

// GetBuf returns a float scratch buffer of length n, reusing a pooled
// buffer when one is large enough. Callers either relinquish the
// buffer by sending it (ownership transfers to the receiver) or return
// it with PutBuf when done.
func (p *Proc) GetBuf(n int) []float64 {
	for i := len(p.pool) - 1; i >= 0; i-- {
		if b := p.pool[i]; cap(b) >= n {
			last := len(p.pool) - 1
			p.pool[i] = p.pool[last]
			p.pool = p.pool[:last]
			return b[:n]
		}
	}
	return make([]float64, n)
}

// PutBuf recycles a buffer into the pool. Only buffers this rank owns
// may be recycled: ones obtained from GetBuf and not sent, or ones
// received from a peer that sent a pool-owned copy (the internal
// collective protocol). Never PutBuf a slice that was sent to another
// rank — ownership went with the message.
func (p *Proc) PutBuf(b []float64) {
	if cap(b) == 0 || len(p.pool) == cap(p.pool) {
		return
	}
	p.pool = append(p.pool, b[:cap(b)])
}

func (p *Proc) getIntBuf(n int) []int {
	for i := len(p.intPool) - 1; i >= 0; i-- {
		if b := p.intPool[i]; cap(b) >= n {
			last := len(p.intPool) - 1
			p.intPool[i] = p.intPool[last]
			p.intPool = p.intPool[:last]
			return b[:n]
		}
	}
	return make([]int, n)
}

func (p *Proc) putIntBuf(b []int) {
	if cap(b) == 0 || len(p.intPool) == cap(p.intPool) {
		return
	}
	p.intPool = append(p.intPool, b[:cap(b)])
}

// AllreduceScalars combines xs element-wise across all processors in
// place — the batched form of AllreduceScalar that merges several
// scalar reductions (e.g. a solver's dot products plus its convergence
// norm) into a single allreduce round. One tree allreduce of k scalars
// combines each element in exactly the same order as k separate scalar
// allreduces, so the batched results are bit-identical to the unbatched
// ones; only the number of message rounds changes (2·ceil(log2 NP)
// messages of k words instead of k times that many 1-word messages).
// Steady state allocates nothing: all internal messages use the buffer
// pool.
func (p *Proc) AllreduceScalars(xs []float64, op ReduceOp) {
	defer p.collEnd("allreduce", p.clock)
	p.reduceInPlaceTree(xs, op)
	p.bcastInPlaceTree(xs)
}

// reduceInPlaceTree is Reduce to rank 0 with the same binomial-tree
// schedule (partners, message sizes, combine order and hence bitwise
// results) as Reduce(0, ...), but in place and pooled. Non-root ranks
// are left holding their partial accumulation; the following broadcast
// overwrites it.
func (p *Proc) reduceInPlaceTree(acc []float64, op ReduceOp) {
	defer p.collEnd("reduce", p.clock)
	tag := p.nextTag(opReduce)
	np := p.m.np
	if np == 1 {
		return
	}
	for mask := 1; mask < np; mask <<= 1 {
		if p.rank&mask != 0 {
			out := p.GetBuf(len(acc))
			copy(out, acc)
			p.Send(p.rank^mask, tag, Payload{Floats: out})
			return
		}
		if p.rank|mask < np {
			in := p.Recv(p.rank|mask, tag).Floats
			op.combine(acc, in)
			p.Compute(len(acc))
			p.PutBuf(in)
		}
	}
}

// bcastInPlaceTree is Bcast from rank 0 with the same binomial-tree
// schedule as Bcast(0, ...), in place and pooled.
func (p *Proc) bcastInPlaceTree(x []float64) {
	defer p.collEnd("bcast", p.clock)
	tag := p.nextTag(opBcast)
	np := p.m.np
	if np == 1 {
		return
	}
	rel := p.rank
	mask := 1
	for mask < np {
		if rel&mask != 0 {
			in := p.Recv(rel^mask, tag).Floats
			copy(x, in)
			p.PutBuf(in)
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		for mask < np {
			mask <<= 1
		}
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < np {
			out := p.GetBuf(len(x))
			copy(out, x)
			p.Send(rel+mask, tag, Payload{Floats: out})
		}
		mask >>= 1
	}
}

// AllgatherVInto is AllgatherV writing into a caller-provided buffer
// (allocated when full is nil), so a solver that gathers the same
// vector every iteration can reuse one full-length buffer. The message
// schedule — recursive doubling for power-of-two NP, ring otherwise —
// and therefore the modeled cost are identical to AllgatherV; the sent
// blocks are pool-owned copies so reusing full across supersteps is
// safe.
func (p *Proc) AllgatherVInto(local []float64, counts []int, full []float64) []float64 {
	defer p.collEnd("allgatherv", p.clock)
	tag := p.nextTag(opAllgather)
	np := p.m.np
	total := checkCounts(counts, np)
	if len(local) != counts[p.rank] {
		panic(fmt.Sprintf("comm: AllgatherVInto rank %d local length %d != counts %d", p.rank, len(local), counts[p.rank]))
	}
	if full == nil {
		full = make([]float64, total)
	} else if len(full) != total {
		panic(fmt.Sprintf("comm: AllgatherVInto buffer length %d != sum counts %d", len(full), total))
	}
	offs := p.getIntBuf(np + 1)
	offs[0] = 0
	for i, c := range counts {
		offs[i+1] = offs[i] + c
	}
	copy(full[offs[p.rank]:offs[p.rank+1]], local)
	if np == 1 {
		p.putIntBuf(offs)
		return full
	}
	if np&(np-1) == 0 {
		// Recursive doubling: before the step with group size k, this
		// rank holds the k blocks [base, base+k) with base = rank&^(k-1).
		for k := 1; k < np; k <<= 1 {
			partner := p.rank ^ k
			base := p.rank &^ (k - 1)
			pbase := partner &^ (k - 1)
			out := p.GetBuf(offs[base+k] - offs[base])
			copy(out, full[offs[base]:offs[base+k]])
			p.Send(partner, tag, Payload{Floats: out})
			in := p.Recv(partner, tag).Floats
			copy(full[offs[pbase]:offs[pbase+k]], in)
			p.PutBuf(in)
		}
	} else {
		right := (p.rank + 1) % np
		left := (p.rank - 1 + np) % np
		for step := 0; step < np-1; step++ {
			sendBlk := (p.rank - step + np) % np
			recvBlk := (p.rank - step - 1 + np) % np
			out := p.GetBuf(offs[sendBlk+1] - offs[sendBlk])
			copy(out, full[offs[sendBlk]:offs[sendBlk+1]])
			p.Send(right, tag, Payload{Floats: out})
			in := p.Recv(left, tag).Floats
			copy(full[offs[recvBlk]:offs[recvBlk+1]], in)
			p.PutBuf(in)
		}
	}
	p.putIntBuf(offs)
	return full
}
