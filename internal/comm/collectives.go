package comm

import "fmt"

// ReduceOp selects the combining operation of a reduction.
type ReduceOp int

// Supported reduction operators. All are commutative and associative,
// which the tree algorithms require.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) combine(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reduce length mismatch %d vs %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("comm: unknown ReduceOp %d", op))
	}
}

// Barrier blocks until all processors have entered it. It uses the
// dissemination algorithm: ceil(log2 NP) rounds of shifted exchanges.
func (p *Proc) Barrier() {
	defer p.collEnd("barrier", p.clock)
	tag := p.nextTag(opBarrier)
	np := p.m.np
	for k := 1; k < np; k <<= 1 {
		dst := (p.rank + k) % np
		src := (p.rank - k + np) % np
		p.Send(dst, tag, Payload{})
		p.Recv(src, tag)
	}
}

// Bcast distributes root's payload to every processor using a binomial
// tree (ceil(log2 NP) message steps, the t_s*log NP pattern of §4).
// root passes the data; every rank returns it.
func (p *Proc) Bcast(root int, pl Payload) Payload {
	defer p.collEnd("bcast", p.clock)
	tag := p.nextTag(opBcast)
	np := p.m.np
	if root < 0 || root >= np {
		panic(fmt.Sprintf("comm: Bcast invalid root %d", root))
	}
	if np == 1 {
		return pl
	}
	rel := (p.rank - root + np) % np
	// Receive from the parent (clear the lowest set bit of rel).
	mask := 1
	for mask < np {
		if rel&mask != 0 {
			src := ((rel ^ mask) + root) % np
			pl = p.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	if rel == 0 {
		mask = 1
		for mask < np {
			mask <<= 1
		}
	}
	// Forward to children (descending masks below our receive bit).
	mask >>= 1
	for mask > 0 {
		if rel+mask < np {
			dst := (rel + mask + root) % np
			p.Send(dst, tag, pl)
		}
		mask >>= 1
	}
	return pl
}

// BcastFloats broadcasts a float slice from root.
func (p *Proc) BcastFloats(root int, x []float64) []float64 {
	return p.Bcast(root, Payload{Floats: x}).Floats
}

// BcastInts broadcasts an int slice from root.
func (p *Proc) BcastInts(root int, x []int) []int {
	return p.Bcast(root, Payload{Ints: x}).Ints
}

// BcastFloat broadcasts a scalar from root.
func (p *Proc) BcastFloat(root int, x float64) float64 {
	return p.BcastFloats(root, []float64{x})[0]
}

// BcastInt broadcasts an int scalar from root.
func (p *Proc) BcastInt(root int, x int) int {
	return p.BcastInts(root, []int{x})[0]
}

// Reduce combines x element-wise across processors with op using a
// binomial tree. The result is returned at root; other ranks get nil.
// x is not modified.
func (p *Proc) Reduce(root int, x []float64, op ReduceOp) []float64 {
	defer p.collEnd("reduce", p.clock)
	tag := p.nextTag(opReduce)
	np := p.m.np
	if root < 0 || root >= np {
		panic(fmt.Sprintf("comm: Reduce invalid root %d", root))
	}
	acc := make([]float64, len(x))
	copy(acc, x)
	if np == 1 {
		return acc
	}
	rel := (p.rank - root + np) % np
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel ^ mask) + root) % np
			p.Send(dst, tag, Payload{Floats: acc})
			return nil
		}
		if rel|mask < np {
			src := ((rel | mask) + root) % np
			in := p.Recv(src, tag).Floats
			op.combine(acc, in)
			p.Compute(len(acc))
		}
	}
	return acc
}

// Allreduce combines x element-wise across all processors and returns
// the result on every rank. This is the "merge phase" of the paper's
// inner products: t_s*log NP communication for the scalar case. The
// algorithm is chosen per call by modeled cost: binomial tree
// (reduce to rank 0, then broadcast) for short vectors, Rabenseifner's
// bandwidth-optimal reduce-scatter + allgather for long ones (see
// AllreduceWith to force one).
func (p *Proc) Allreduce(x []float64, op ReduceOp) []float64 {
	return p.AllreduceWith(x, op, AlgoAuto)
}

// AllreduceScalar is Allreduce for a single value, the shape of
// DOT_PRODUCT's merge phase. It reuses a pooled 1-element buffer, so
// the per-dot-product heap allocation the boxed form paid is gone; the
// message schedule and result are bit-identical to the original
// tree allreduce.
func (p *Proc) AllreduceScalar(x float64, op ReduceOp) float64 {
	buf := p.GetBuf(1)
	buf[0] = x
	p.AllreduceScalars(buf, op)
	v := buf[0]
	p.PutBuf(buf)
	return v
}

func checkCounts(counts []int, np int) int {
	if len(counts) != np {
		panic(fmt.Sprintf("comm: counts length %d != np %d", len(counts), np))
	}
	total := 0
	for r, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("comm: negative count %d for rank %d", c, r))
		}
		total += c
	}
	return total
}

// offsetsOf returns the prefix-sum offsets of counts.
func offsetsOf(counts []int) []int {
	offs := make([]int, len(counts)+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c
	}
	return offs
}

// GatherV collects variable-size blocks onto root in rank order. local
// must have length counts[rank]. root returns the concatenation; other
// ranks return nil.
func (p *Proc) GatherV(root int, local []float64, counts []int) []float64 {
	defer p.collEnd("gatherv", p.clock)
	tag := p.nextTag(opGather)
	np := p.m.np
	total := checkCounts(counts, np)
	if len(local) != counts[p.rank] {
		panic(fmt.Sprintf("comm: GatherV rank %d local length %d != counts %d", p.rank, len(local), counts[p.rank]))
	}
	if p.rank != root {
		p.Send(root, tag, Payload{Floats: local})
		return nil
	}
	offs := offsetsOf(counts)
	full := make([]float64, total)
	copy(full[offs[root]:], local)
	for r := 0; r < np; r++ {
		if r == root {
			continue
		}
		in := p.Recv(r, tag).Floats
		if len(in) != counts[r] {
			panic(fmt.Sprintf("comm: GatherV expected %d elements from %d, got %d", counts[r], r, len(in)))
		}
		copy(full[offs[r]:], in)
	}
	return full
}

// ScatterV is the inverse of GatherV: root holds the concatenation and
// every rank receives its counts[rank]-sized block.
func (p *Proc) ScatterV(root int, full []float64, counts []int) []float64 {
	defer p.collEnd("scatterv", p.clock)
	tag := p.nextTag(opScatter)
	np := p.m.np
	total := checkCounts(counts, np)
	offs := offsetsOf(counts)
	if p.rank == root {
		if len(full) != total {
			panic(fmt.Sprintf("comm: ScatterV full length %d != sum counts %d", len(full), total))
		}
		for r := 0; r < np; r++ {
			if r == root {
				continue
			}
			p.Send(r, tag, Payload{Floats: full[offs[r]:offs[r+1]]})
		}
		out := make([]float64, counts[root])
		copy(out, full[offs[root]:offs[root+1]])
		return out
	}
	return p.Recv(root, tag).Floats
}

// AllgatherV concatenates each rank's block (in rank order) onto every
// processor — the "all-to-all broadcast of the local vector elements"
// the paper charges to Scenario 1. For power-of-two NP it uses
// recursive doubling (the hypercube algorithm behind the paper's
// t_s·log NP + t_w·n·(NP-1)/NP expression, ceil(log2 NP) steps with
// doubling block sizes and single-hop hypercube partners); otherwise
// it falls back to the (NP-1)-step ring.
func (p *Proc) AllgatherV(local []float64, counts []int) []float64 {
	return p.AllgatherVInto(local, counts, nil)
}

// AllgatherVInts is AllgatherV for int blocks.
func (p *Proc) AllgatherVInts(local []int, counts []int) []int {
	defer p.collEnd("allgatherv-ints", p.clock)
	tag := p.nextTag(opAllgather)
	np := p.m.np
	total := checkCounts(counts, np)
	if len(local) != counts[p.rank] {
		panic(fmt.Sprintf("comm: AllgatherVInts rank %d local length %d != counts %d", p.rank, len(local), counts[p.rank]))
	}
	offs := offsetsOf(counts)
	full := make([]int, total)
	copy(full[offs[p.rank]:], local)
	if np == 1 {
		return full
	}
	right := (p.rank + 1) % np
	left := (p.rank - 1 + np) % np
	for step := 0; step < np-1; step++ {
		sendBlk := (p.rank - step + np) % np
		recvBlk := (p.rank - step - 1 + np) % np
		p.Send(right, tag, Payload{Ints: full[offs[sendBlk]:offs[sendBlk+1]]})
		in := p.Recv(left, tag).Ints
		copy(full[offs[recvBlk]:], in)
	}
	return full
}

// AlltoallV exchanges personalised blocks: segments[d] goes to rank d,
// and the returned slice holds what each rank sent to us (indexed by
// source rank). segments[rank] is passed through (copied) untouched.
func (p *Proc) AlltoallV(segments [][]float64) [][]float64 {
	defer p.collEnd("alltoallv", p.clock)
	tag := p.nextTag(opAlltoall)
	np := p.m.np
	if len(segments) != np {
		panic(fmt.Sprintf("comm: AlltoallV needs %d segments, got %d", np, len(segments)))
	}
	out := make([][]float64, np)
	own := make([]float64, len(segments[p.rank]))
	copy(own, segments[p.rank])
	out[p.rank] = own
	for off := 1; off < np; off++ {
		dst := (p.rank + off) % np
		p.Send(dst, tag, Payload{Floats: segments[dst]})
	}
	for off := 1; off < np; off++ {
		src := (p.rank - off + np) % np
		out[src] = p.Recv(src, tag).Floats
	}
	return out
}

// ReduceScatterSum sums a full-length vector contributed by every
// processor and leaves each rank with its counts[rank]-sized block of
// the sum. This is exactly the MERGE(+) operation of the paper's
// proposed PRIVATE extension (§5.1): each processor's private full-size
// accumulator is merged and re-distributed. Implemented as a
// personalised all-to-all of the blocks followed by local summation:
// (NP-1) messages of ~n/NP elements each, the same asymptotic cost as
// Scenario 1's broadcast, matching the paper's observation that the two
// partitionings have equal communication time.
func (p *Proc) ReduceScatterSum(full []float64, counts []int) []float64 {
	defer p.collEnd("reduce-scatter", p.clock)
	np := p.m.np
	total := checkCounts(counts, np)
	if len(full) != total {
		panic(fmt.Sprintf("comm: ReduceScatterSum full length %d != sum counts %d", len(full), total))
	}
	offs := offsetsOf(counts)
	segs := make([][]float64, np)
	for r := 0; r < np; r++ {
		segs[r] = full[offs[r]:offs[r+1]]
	}
	parts := p.AlltoallV(segs)
	out := make([]float64, counts[p.rank])
	copy(out, parts[p.rank])
	for r := 0; r < np; r++ {
		if r == p.rank {
			continue
		}
		part := parts[r]
		if len(part) != len(out) {
			panic(fmt.Sprintf("comm: ReduceScatterSum expected %d elements from %d, got %d", len(out), r, len(part)))
		}
		for i, v := range part {
			out[i] += v
		}
		p.Compute(len(out))
	}
	return out
}
