// Rabenseifner's allreduce: recursive-halving reduce-scatter followed
// by recursive-doubling allgather. The binomial tree the runtime has
// always used moves the whole vector up and down the tree — 2·log NP
// startups and 2·n·log NP words. Rabenseifner's algorithm pays the
// same 2·log NP startups but only 2·n·(NP-1)/NP words, which makes it
// the bandwidth-optimal choice for long vectors (it is what MPICH and
// Open MPI select for large allreduces). For scalars the byte term is
// noise and the tree is kept; Allreduce picks per call from the
// modeled-cost closed forms in package topology.
package comm

import "hpfcg/internal/topology"

// AllreduceAlgo selects the allreduce algorithm.
type AllreduceAlgo int

const (
	// AlgoAuto picks by comparing the modeled-cost closed forms of the
	// two algorithms for the machine's topology and cost parameters
	// (tree is pinned below rabenseifnerMinWords).
	AlgoAuto AllreduceAlgo = iota
	// AlgoTree is the binomial-tree reduce-to-0 + broadcast.
	AlgoTree
	// AlgoRecursive is Rabenseifner's reduce-scatter + allgather.
	AlgoRecursive
)

// String implements fmt.Stringer.
func (a AllreduceAlgo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoTree:
		return "tree"
	case AlgoRecursive:
		return "recursive"
	}
	return "unknown"
}

// rabenseifnerMinWords pins the tree algorithm below this vector
// length. On a power-of-two machine both algorithms pay the same
// 2·log NP startups, so the modeled closed forms would pick the
// recursive algorithm even for one word; for such tiny messages the
// byte term is far below the startup noise and the simpler tree (whose
// schedule every scalar-merge result in EXPERIMENTS.md was produced
// with) is kept.
const rabenseifnerMinWords = 16

// chooseAllreduceAlgo resolves AlgoAuto from the modeled-cost closed
// forms. All ranks see the same inputs, so the choice is SPMD-safe.
func (p *Proc) chooseAllreduceAlgo(words int) AllreduceAlgo {
	if p.m.np == 1 || words < rabenseifnerMinWords {
		return AlgoTree
	}
	rec := topology.RabenseifnerAllreduceTime(p.m.topo, p.m.cost, p.m.np, words)
	tree := topology.AllreduceTime(p.m.topo, p.m.cost, p.m.np, words)
	if rec < tree {
		return AlgoRecursive
	}
	return AlgoTree
}

// AllreduceWith is Allreduce with an explicit algorithm choice. The
// two algorithms produce bit-identical results for exact data (the
// reduction operators are commutative and associative; floating-point
// summation order differs between them, as it does between NP counts).
func (p *Proc) AllreduceWith(x []float64, op ReduceOp, algo AllreduceAlgo) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	p.AllreduceInPlace(out, op, algo)
	return out
}

// AllreduceInPlace combines x element-wise across all processors in
// place using the selected algorithm. This is the allocation-free form:
// with a pooled machine in steady state neither algorithm allocates.
func (p *Proc) AllreduceInPlace(x []float64, op ReduceOp, algo AllreduceAlgo) {
	if algo == AlgoAuto {
		algo = p.chooseAllreduceAlgo(len(x))
	}
	if algo == AlgoRecursive {
		defer p.collEnd("allreduce", p.clock)
		p.allreduceRabenseifner(x, op)
		return
	}
	p.AllreduceScalars(x, op)
}

// allreduceRabenseifner runs the recursive-halving reduce-scatter +
// recursive-doubling allgather in place. Non-power-of-two NP uses the
// MPICH fold: with r = NP - 2^floor(log2 NP), the first 2r ranks pair
// up, each odd rank folds its vector into its even neighbour and sits
// out, and the remaining power-of-two group runs the recursive
// algorithm; folded-out ranks receive the finished result at the end.
func (p *Proc) allreduceRabenseifner(x []float64, op ReduceOp) {
	np := p.m.np
	// Tag sequence numbers must advance identically on every rank, so
	// draw all four phase tags before any rank can return early.
	tagFold := p.nextTag(opReduce)
	tagRS := p.nextTag(opReduce)
	tagAG := p.nextTag(opAllgather)
	tagOut := p.nextTag(opBcast)
	if np == 1 {
		return
	}

	pof2 := 1
	for pof2*2 <= np {
		pof2 *= 2
	}
	rem := np - pof2

	newRank := -1
	if p.rank < 2*rem {
		if p.rank%2 != 0 {
			// Odd fold rank: contribute the whole vector, wait for the
			// result.
			out := p.GetBuf(len(x))
			copy(out, x)
			p.Send(p.rank-1, tagFold, Payload{Floats: out})
			in := p.Recv(p.rank-1, tagOut).Floats
			copy(x, in)
			p.PutBuf(in)
			return
		}
		in := p.Recv(p.rank+1, tagFold).Floats
		op.combine(x, in)
		p.Compute(len(x))
		p.PutBuf(in)
		newRank = p.rank / 2
	} else {
		newRank = p.rank - rem
	}
	// realRank inverts the fold renumbering for the active group.
	realRank := func(nr int) int {
		if nr < rem {
			return nr * 2
		}
		return nr + rem
	}

	// Block decomposition of x over the pof2 active ranks (first n%pof2
	// blocks one element longer).
	offs := p.getIntBuf(pof2 + 1)
	base, extra := len(x)/pof2, len(x)%pof2
	offs[0] = 0
	for i := 0; i < pof2; i++ {
		blk := base
		if i < extra {
			blk++
		}
		offs[i+1] = offs[i] + blk
	}

	// Recursive halving reduce-scatter: at each step exchange the half
	// of the current range the partner is responsible for; afterwards
	// this rank holds the fully reduced block [lo, lo+1) == [newRank,
	// newRank+1).
	rsStart := p.clock
	lo, hi := 0, pof2
	for dist := pof2 / 2; dist >= 1; dist /= 2 {
		partner := realRank(newRank ^ dist)
		mid := lo + (hi-lo)/2
		sendLo, sendHi := mid, hi
		if newRank&dist != 0 {
			sendLo, sendHi = lo, mid
		}
		out := p.GetBuf(offs[sendHi] - offs[sendLo])
		copy(out, x[offs[sendLo]:offs[sendHi]])
		p.Send(partner, tagRS, Payload{Floats: out})
		if newRank&dist == 0 {
			hi = mid
		} else {
			lo = mid
		}
		in := p.Recv(partner, tagRS).Floats
		op.combine(x[offs[lo]:offs[hi]], in)
		p.Compute(offs[hi] - offs[lo])
		p.PutBuf(in)
	}
	p.collEnd("reduce-scatter", rsStart)

	// Recursive doubling allgather: retrace the halving in reverse,
	// doubling the owned range each step.
	agStart := p.clock
	for dist := 1; dist < pof2; dist *= 2 {
		partner := realRank(newRank ^ dist)
		out := p.GetBuf(offs[hi] - offs[lo])
		copy(out, x[offs[lo]:offs[hi]])
		p.Send(partner, tagAG, Payload{Floats: out})
		in := p.Recv(partner, tagAG).Floats
		span := hi - lo
		if newRank&dist == 0 {
			copy(x[offs[hi]:offs[hi+span]], in)
			hi += span
		} else {
			copy(x[offs[lo-span]:offs[lo]], in)
			lo -= span
		}
		p.PutBuf(in)
	}
	p.collEnd("allgatherv", agStart)
	p.putIntBuf(offs)

	if p.rank < 2*rem {
		out := p.GetBuf(len(x))
		copy(out, x)
		p.Send(p.rank+1, tagOut, Payload{Floats: out})
	}
}
