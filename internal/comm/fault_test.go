package comm

import (
	"errors"
	"testing"
	"time"
)

// stubRank is a hand-rolled RankInjector for machine-level fault tests
// (package fault has its own schedule logic and tests; here we drive
// the hooks directly).
type stubRank struct {
	crashAt  float64
	hasCrash bool
	factor   float64 // 0 = healthy
	dropAll  bool
	delay    float64
}

func (s *stubRank) CrashTime() (float64, bool) { return s.crashAt, s.hasCrash }

func (s *stubRank) FlopFactor(t float64) float64 {
	if s.factor == 0 {
		return 1
	}
	return s.factor
}

func (s *stubRank) SendFault(dst int, t, hop float64) (bool, float64) {
	return s.dropAll, s.delay
}

type stubInjector struct{ ranks map[int]*stubRank }

func (s stubInjector) StartRun(np int) []RankInjector {
	out := make([]RankInjector, np)
	for r, ri := range s.ranks {
		if r < np {
			out[r] = ri
		}
	}
	return out
}

// TestCrashMidAllreduceUnwinds is the abort-propagation regression
// test: killing one rank halfway through a run leaves its peers
// blocked in Recv inside the collective, and both allreduce algorithms
// must observe the abort and unwind into a typed PeerFailure — at
// every np, including non-powers-of-two, with no deadlock.
func TestCrashMidAllreduceUnwinds(t *testing.T) {
	algos := []struct {
		name string
		algo AllreduceAlgo
	}{{"tree", AlgoTree}, {"recursive", AlgoRecursive}}
	for _, np := range []int{2, 3, 4, 8} {
		for _, a := range algos {
			prog := func(p *Proc) {
				buf := make([]float64, 64)
				for i := range buf {
					buf[i] = float64(p.Rank() + i)
				}
				for i := 0; i < 4; i++ {
					p.Compute(200)
					p.AllreduceInPlace(buf, OpSum, a.algo)
				}
			}
			healthy := testMachine(np).Run(prog)
			victim := np / 2
			m := testMachine(np)
			m.AttachInjector(stubInjector{ranks: map[int]*stubRank{
				victim: {crashAt: healthy.ModelTime / 2, hasCrash: true},
			}})
			_, err := m.RunTimeout(prog, 5*time.Second)
			var pf PeerFailure
			if !errors.As(err, &pf) {
				t.Fatalf("np=%d %s: err = %v, want PeerFailure", np, a.name, err)
			}
			if pf.Rank != victim {
				t.Errorf("np=%d %s: failed rank = %d, want %d", np, a.name, pf.Rank, victim)
			}
			if pf.Clock < healthy.ModelTime/2 {
				t.Errorf("np=%d %s: failure clock %g before scheduled crash %g",
					np, a.name, pf.Clock, healthy.ModelTime/2)
			}
		}
	}
}

// TestDroppedMessagePeerFailure: a message lost by the fault layer
// leaves the receiver with nothing to select on — no crash, no abort —
// so the armed recv deadline must convert the silence into a typed
// PeerFailure naming the silent peer.
func TestDroppedMessagePeerFailure(t *testing.T) {
	m := testMachine(2)
	m.AttachInjector(stubInjector{ranks: map[int]*stubRank{
		0: {dropAll: true},
	}})
	m.SetRecvDeadline(100 * time.Millisecond)
	_, err := m.RunChecked(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, []float64{1, 2})
		} else {
			p.RecvFloats(0, 1)
		}
	})
	var pf PeerFailure
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want PeerFailure", err)
	}
	if pf.Rank != 0 {
		t.Errorf("blamed rank = %d, want 0 (the silent sender)", pf.Rank)
	}
}

// TestSpikeDelaysMessage: an injected latency spike shows up 1:1 in
// the modeled makespan (the receiver waits for the delayed head), and
// a spiked-but-delivered run completes without error.
func TestSpikeDelaysMessage(t *testing.T) {
	prog := func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, []float64{1, 2, 3})
		} else {
			p.RecvFloats(0, 1)
		}
	}
	base := testMachine(2).Run(prog)
	m := testMachine(2)
	m.AttachInjector(stubInjector{ranks: map[int]*stubRank{
		0: {delay: 0.5},
	}})
	rs, err := m.RunChecked(prog)
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if got, want := rs.ModelTime-base.ModelTime, 0.5; got != want {
		t.Errorf("spike added %g modeled seconds, want %g", got, want)
	}
}

// TestStraggleStretchesCompute: the flop-cost multiplier scales the
// straggler's modeled compute time exactly, leaving peers untouched.
func TestStraggleStretchesCompute(t *testing.T) {
	m := testMachine(2)
	m.AttachInjector(stubInjector{ranks: map[int]*stubRank{
		0: {factor: 4},
	}})
	rs, err := m.RunChecked(func(p *Proc) {
		p.Compute(1000)
	})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if got, want := rs.Procs[0].ComputeTime, 4*rs.Procs[1].ComputeTime; got != want {
		t.Errorf("straggler compute time = %g, want 4x healthy %g", got, rs.Procs[1].ComputeTime)
	}
}

// TestRunCheckedHealthy: with no injector the checked variant behaves
// exactly like Run — nil error, same accounting.
func TestRunCheckedHealthy(t *testing.T) {
	prog := func(p *Proc) {
		x := p.AllreduceScalar(float64(p.Rank()), OpSum)
		if x != 1+2+3 {
			t.Errorf("allreduce = %g, want 6", x)
		}
	}
	want := testMachine(4).Run(prog)
	rs, err := testMachine(4).RunChecked(prog)
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if rs.ModelTime != want.ModelTime {
		t.Errorf("ModelTime %g != Run's %g", rs.ModelTime, want.ModelTime)
	}
}

// TestNilInjectorNoAllocs is the zero-overhead guard on the fault
// hooks themselves: with no injector attached, steady-state Send and
// Compute must not touch the heap (the injector checks are two loads
// and a branch). AllocsPerRun counts process-wide allocations.
func TestNilInjectorNoAllocs(t *testing.T) {
	const runs = 7
	m := testMachine(2)
	pl := Payload{Floats: make([]float64, 64)}
	var sendAllocs, computeAllocs float64
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 3, pl)
			sendAllocs = testing.AllocsPerRun(runs, func() {
				p.Send(1, 3, pl)
			})
			computeAllocs = testing.AllocsPerRun(runs, func() {
				p.Compute(100)
			})
		} else {
			for i := 0; i < runs+2; i++ {
				p.Recv(0, 3)
			}
		}
	})
	if sendAllocs != 0 {
		t.Errorf("Send allocated %.1f times per call with nil injector, want 0", sendAllocs)
	}
	if computeAllocs != 0 {
		t.Errorf("Compute allocated %.1f times per call with nil injector, want 0", computeAllocs)
	}
}
