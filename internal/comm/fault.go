// Fault-injection hooks of the SPMD machine. AttachInjector mirrors
// AttachTracer: a nil injector — the default — leaves every
// communication and compute path untouched (same arithmetic, same
// allocations, bit-identical modeled clocks), while an attached
// injector lets package fault drive deterministic, clock-scheduled
// crashes, stragglers, message drops and latency spikes through the
// Send/Recv/Compute primitives.
//
// Failure semantics: an injected crash panics the affected rank with
// an internal marker; the existing abort machinery then unwinds every
// peer blocked in communication, and the run surfaces a typed
// PeerFailure instead of a raw panic (RunChecked/RunTimeout return it
// as an error). A dead peer that nobody can observe through the abort
// channel — the receiver of a dropped message — is detected by the
// per-recv deadline armed alongside the injector.
package comm

import (
	"fmt"
	"time"

	"hpfcg/internal/trace"
)

// Injector supplies deterministic fault decisions to a Machine's runs.
// Implementations live in package fault; the machine only sees these
// two interfaces so the dependency points fault -> comm.
type Injector interface {
	// StartRun is called at the start of every Run with the processor
	// count. It returns one RankInjector per rank; nil entries leave
	// that rank healthy and completely hook-free. An Injector may keep
	// state across sequential runs (a mission of restarts) but must not
	// be shared by concurrent runs.
	StartRun(np int) []RankInjector
}

// RankInjector is one rank's fault schedule, consulted from that
// rank's goroutine only (no synchronization required). All times are
// the rank's modeled clock within the current run.
type RankInjector interface {
	// CrashTime returns the modeled clock at which this rank dies, if
	// it is scheduled to crash during this run.
	CrashTime() (float64, bool)
	// FlopFactor returns the straggle multiplier on per-flop cost at
	// modeled time t (1 = healthy).
	FlopFactor(t float64) float64
	// SendFault is consulted once per message sent at modeled time t.
	// hopTime is the healthy network latency of the message (hops·t_h).
	// drop suppresses delivery entirely; delay adds modeled seconds to
	// the message's latency.
	SendFault(dst int, t, hopTime float64) (drop bool, delay float64)
}

// defaultRecvDeadline is armed when an injector is attached and no
// explicit deadline was set: long enough that a healthy-but-slow run
// never trips it, short enough that a run stalled on a dropped message
// fails instead of hanging.
const defaultRecvDeadline = 5 * time.Second

// AttachInjector connects a fault injector: every subsequent Run
// consults it at Send/Recv/Compute. Attaching also arms the per-recv
// deadline (SetRecvDeadline overrides, before or after) so a rank
// starved by a dropped message raises PeerFailure instead of hanging.
// A nil injector — the default — disables injection and the deadline
// with zero overhead on the communication paths. AttachInjector must
// not be called concurrently with Run.
func (m *Machine) AttachInjector(inj Injector) {
	m.inj = inj
	if inj == nil {
		m.recvDeadline = 0
	} else if m.recvDeadline == 0 {
		m.recvDeadline = defaultRecvDeadline
	}
}

// Injector returns the attached fault injector (nil when detached).
func (m *Machine) Injector() Injector { return m.inj }

// SetRecvDeadline sets the wall-clock deadline a blocked Recv waits
// before declaring its peer dead (0 disables). The deadline is a
// fault-detection device, not a model parameter: it only matters when
// messages can be lost, so it is armed by AttachInjector.
func (m *Machine) SetRecvDeadline(d time.Duration) { m.recvDeadline = d }

// PeerFailure is the typed error a fault-injected run surfaces:
// processor Rank failed (crashed, or stopped responding within the
// recv deadline) at modeled time Clock. It propagates through the
// abort machinery, so every surviving rank unwinds instead of hanging,
// and RunChecked/RunTimeout return it as an error.
type PeerFailure struct {
	Rank  int
	Clock float64
}

// Error names the failed rank and the modeled time of death.
func (e PeerFailure) Error() string {
	return fmt.Sprintf("comm: processor %d failed at modeled t=%.6gs", e.Rank, e.Clock)
}

// crashPanic is the internal marker the dying rank panics with; run
// converts it into the user-facing PeerFailure.
type crashPanic struct {
	rank  int
	clock float64
}

// checkCrash kills this rank once its modeled clock reaches the
// injected crash time. Called at the entry of Send/Recv and after
// Compute advances the clock, so the death point is a deterministic
// function of the modeled schedule, never of wall time.
func (p *Proc) checkCrash() {
	if !p.hasCrash || p.clock < p.crashAt {
		return
	}
	p.hasCrash = false
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindFault, Peer: -1, Op: "crash", Start: p.clock, End: p.clock})
	}
	panic(crashPanic{rank: p.rank, clock: p.clock})
}

// straggleFactor consults the injector for the current flop-cost
// multiplier, emitting a trace marker whenever the factor transitions
// (so Perfetto shows where the straggle window opens and closes
// without one event per Compute).
func (p *Proc) straggleFactor(t float64) float64 {
	f := p.inj.FlopFactor(t)
	if f != p.lastFactor {
		if p.tr != nil {
			p.tr.Add(trace.Event{Kind: trace.KindFault, Peer: -1, Op: "straggle", Start: t, End: t})
		}
		p.lastFactor = f
	}
	if f <= 0 {
		f = 1
	}
	return f
}

// ChargeIO advances the modeled clock by the cost of writing b bytes
// to stable storage, modeled like one message injection: t_s + b·t_w.
// The resilient solver charges each checkpoint write through it, which
// is what makes the checkpoint-interval trade-off of experiment E20
// (too often: pay the write; too rarely: lose work on rollback)
// visible on the modeled clock.
func (p *Proc) ChargeIO(bytes int) {
	start := p.clock
	dt := p.m.cost.TStartup + float64(bytes)*p.m.cost.TByte
	p.clock += dt
	p.stats.SendTime += dt
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindCollective, Peer: -1, Op: "checkpoint", Bytes: bytes, Start: start, End: p.clock})
	}
}
