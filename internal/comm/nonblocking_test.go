package comm

import (
	"math"
	"math/rand"
	"testing"

	"hpfcg/internal/trace"
)

// TestIallreduceBitIdenticalToBlocking: the eager tree exchange uses
// the exact schedule and combine order of AllreduceScalars, so the
// reduced values must match bit for bit on every rank.
func TestIallreduceBitIdenticalToBlocking(t *testing.T) {
	for _, np := range testNPs {
		blocking := make([][]float64, np)
		nonblocking := make([][]float64, np)
		fill := func(rank int) []float64 {
			rng := rand.New(rand.NewSource(int64(rank) + 42))
			xs := make([]float64, 3)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			return xs
		}
		testMachine(np).Run(func(p *Proc) {
			xs := fill(p.Rank())
			p.AllreduceScalars(xs, OpSum)
			blocking[p.Rank()] = xs
		})
		testMachine(np).Run(func(p *Proc) {
			xs := fill(p.Rank())
			h := p.IallreduceScalars(xs, OpSum)
			p.Compute(500) // some overlap, to show it does not perturb values
			h.Wait()
			nonblocking[p.Rank()] = xs
		})
		for r := 0; r < np; r++ {
			for i := range blocking[r] {
				if blocking[r][i] != nonblocking[r][i] {
					t.Errorf("np=%d rank %d elem %d: blocking %v nonblocking %v",
						np, r, i, blocking[r][i], nonblocking[r][i])
				}
			}
		}
	}
}

// TestIallreduceWaitBeforeCompute: with an empty overlap window, Wait
// must charge exactly what the blocking reduction would have — the
// per-rank clocks of (allreduce; iallreduce+immediate wait) match
// (allreduce; allreduce) bit for bit.
func TestIallreduceWaitBeforeCompute(t *testing.T) {
	for _, np := range testNPs {
		blockClocks := make([]float64, np)
		nbClocks := make([]float64, np)
		testMachine(np).Run(func(p *Proc) {
			xs := []float64{float64(p.Rank() + 1), 2}
			p.AllreduceScalars(xs, OpSum)
			p.AllreduceScalars(xs, OpSum)
			blockClocks[p.Rank()] = p.Clock()
		})
		testMachine(np).Run(func(p *Proc) {
			xs := []float64{float64(p.Rank() + 1), 2}
			p.AllreduceScalars(xs, OpSum)
			h := p.IallreduceScalars(xs, OpSum)
			h.Wait()
			nbClocks[p.Rank()] = p.Clock()
			if st := p.Stats(); st.ReduceHiddenTime != 0 {
				t.Errorf("np=%d rank %d: hidden %g with no overlap window", np, p.Rank(), st.ReduceHiddenTime)
			}
		})
		for r := 0; r < np; r++ {
			if blockClocks[r] != nbClocks[r] {
				t.Errorf("np=%d rank %d: blocking clock %v, wait-before-compute clock %v",
					np, r, blockClocks[r], nbClocks[r])
			}
		}
	}
}

// TestIallreduceOverlapChargesMax: the handle's Wait settles
// max(reduction_cost, overlapped_compute), i.e. it bills only the
// exposed remainder and books the rest as hidden.
func TestIallreduceOverlapChargesMax(t *testing.T) {
	for _, flops := range []int{0, 64, 1 << 20} {
		testMachine(4).Run(func(p *Proc) {
			xs := []float64{1, 2, 3}
			start := p.Clock()
			h := p.IallreduceScalars(xs, OpSum)
			if p.Clock() != start {
				t.Fatalf("start advanced the clock by %g", p.Clock()-start)
			}
			p.Compute(flops)
			overlapped := p.Clock() - start
			before := p.Stats()
			h.Wait()
			after := p.Stats()
			wantHidden := math.Min(overlapped, h.Cost())
			wantExposed := h.Cost() - wantHidden
			if got := after.ReduceHiddenTime - before.ReduceHiddenTime; got != wantHidden {
				t.Errorf("flops=%d rank %d: hidden %g, want %g", flops, p.Rank(), got, wantHidden)
			}
			if got := after.ReduceExposedTime - before.ReduceExposedTime; got != wantExposed {
				t.Errorf("flops=%d rank %d: exposed %g, want %g", flops, p.Rank(), got, wantExposed)
			}
			if got := p.Clock() - start; got != overlapped+wantExposed {
				t.Errorf("flops=%d rank %d: clock advanced %g, want max-style %g",
					flops, p.Rank(), got, overlapped+wantExposed)
			}
		})
	}
}

// TestIallreduceDoubleWait: the second Wait is a no-op on the clock and
// the books.
func TestIallreduceDoubleWait(t *testing.T) {
	testMachine(4).Run(func(p *Proc) {
		xs := []float64{float64(p.Rank()), 1}
		h := p.IallreduceScalars(xs, OpSum)
		h.Wait()
		clock, stats := p.Clock(), p.Stats()
		h.Wait()
		if p.Clock() != clock {
			t.Errorf("rank %d: second Wait moved the clock %g -> %g", p.Rank(), clock, p.Clock())
		}
		if p.Stats() != stats {
			t.Errorf("rank %d: second Wait changed the stats", p.Rank())
		}
	})
}

// TestIallreduceOutstandingHandleAtTeardown: a handle never waited on
// is harmless — the eager exchange already drained every message, the
// values are already reduced, and the unsettled cost is simply never
// charged (the clock stays rewound).
func TestIallreduceOutstandingHandleAtTeardown(t *testing.T) {
	for _, np := range []int{2, 4, 8} {
		sums := make([]float64, np)
		rs := testMachine(np).Run(func(p *Proc) {
			xs := []float64{1}
			p.IallreduceScalars(xs, OpSum) // handle dropped, never waited
			sums[p.Rank()] = xs[0]
		})
		for r, s := range sums {
			if s != float64(np) {
				t.Errorf("np=%d rank %d: sum %g, want %g", np, r, s, float64(np))
			}
		}
		if rs.TotalMsgs != rs.TotalMsgsRecv {
			t.Errorf("np=%d: %d messages sent but %d received — eager exchange left mail undelivered",
				np, rs.TotalMsgs, rs.TotalMsgsRecv)
		}
		if rs.ModelTime != 0 {
			t.Errorf("np=%d: model time %g, want 0 — unwaited cost was charged", np, rs.ModelTime)
		}
		if hidden, exposed := rs.ReduceOverlap(); hidden != 0 || exposed != 0 {
			t.Errorf("np=%d: overlap books (%g, %g) without a Wait", np, hidden, exposed)
		}
	}
}

// TestIallreduceSteadyStateNoAllocs: with the handle freelist warm and
// no tracer attached, the start/compute/wait cycle allocates nothing.
func TestIallreduceSteadyStateNoAllocs(t *testing.T) {
	const runs = 10
	testMachine(4).Run(func(p *Proc) {
		var d [2]float64
		round := func() {
			d[0] = float64(p.Rank())
			d[1] = 1
			h := p.IallreduceScalars(d[:], OpSum)
			p.Compute(256)
			h.Wait()
		}
		round() // warm the buffer pool and the handle freelist
		if p.Rank() == 0 {
			if allocs := testing.AllocsPerRun(runs, round); allocs > 0 {
				t.Errorf("steady-state iallreduce cycle allocates %.1f per round", allocs)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				round()
			}
		}
	})
}

// TestIallreduceTracerSpans: with a tracer attached, the hidden span
// shows up as an "iallreduce" collective covering the blocking cost,
// and the settled remainder as "iallreduce.wait"; the per-message
// events of the eager exchange are suppressed (their eager positions
// on the modeled clock would be fiction after the rewind).
func TestIallreduceTracerSpans(t *testing.T) {
	var tr trace.Tracer
	m := testMachine(4)
	m.AttachTracer(&tr)
	m.Run(func(p *Proc) {
		xs := []float64{1, 2}
		h := p.IallreduceScalars(xs, OpSum)
		p.Compute(64)
		h.Wait()
	})
	rec := tr.Last()
	for r := 0; r < 4; r++ {
		var spans, waits, prims int
		for _, ev := range rec.RankEvents(r) {
			switch {
			case ev.Op == "iallreduce":
				spans++
				if ev.Duration() <= 0 {
					t.Errorf("rank %d: iallreduce span has duration %g", r, ev.Duration())
				}
			case ev.Op == "iallreduce.wait":
				waits++
			case ev.Kind == trace.KindSend || ev.Kind == trace.KindRecv:
				prims++
			}
		}
		if spans != 1 || waits != 1 {
			t.Errorf("rank %d: %d iallreduce spans and %d waits, want 1 and 1", r, spans, waits)
		}
		if prims != 0 {
			t.Errorf("rank %d: %d eager send/recv events leaked into the trace", r, prims)
		}
	}
}
