// Package comm implements the message-passing substrate the paper's
// HPF runtime compiles to. Go has no MPI or array-parallel library, so
// this package builds one: a Machine runs NP virtual processors as
// goroutines in SPMD style, each with typed point-to-point sends over
// buffered channels and the usual collectives (barrier, broadcast,
// reduce, allreduce, gather/scatter, allgather, alltoall,
// reduce-scatter) built from binomial-tree and ring algorithms.
//
// Alongside real execution, every processor advances a modeled clock
// using the Kumar-style cost model the paper's §4 analysis uses: a
// b-byte message over h hops costs t_s + h*t_h + b*t_w, and f flops
// cost f*t_f. The modeled parallel time of a run is the maximum clock
// over processors, so experiments can compare simulated collective
// costs against the paper's closed-form expressions while still
// checking numerical results for real.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

// Payload is the unit of data exchanged between processors. A message
// may carry floats, ints, or both; modeled size is 8 bytes per element.
type Payload struct {
	Floats []float64
	Ints   []int
}

// Bytes returns the modeled wire size of the payload.
func (pl Payload) Bytes() int { return 8 * (len(pl.Floats) + len(pl.Ints)) }

type message struct {
	tag    int
	pl     Payload
	depart float64 // sender's modeled clock when the message left
	hops   int
	delay  float64 // injected extra latency (fault layer); 0 when healthy
}

// Machine is an NP-processor virtual parallel computer with a fixed
// interconnection topology and cost parameters. A Machine is reusable:
// each Run gets fresh mailboxes.
type Machine struct {
	np           int
	topo         topology.Topology
	cost         topology.CostParams
	tracer       *trace.Tracer
	inj          Injector      // nil = fault injection disabled
	recvDeadline time.Duration // 0 = wait forever (armed by AttachInjector)
}

// NewMachine creates a machine of np processors connected by topo and
// charged according to cost. np must be >= 1.
func NewMachine(np int, topo topology.Topology, cost topology.CostParams) *Machine {
	if np < 1 {
		panic(fmt.Sprintf("comm: NewMachine with np=%d", np))
	}
	return &Machine{np: np, topo: topo, cost: cost}
}

// NP returns the number of processors.
func (m *Machine) NP() int { return m.np }

// Topology returns the machine's interconnection network.
func (m *Machine) Topology() topology.Topology { return m.topo }

// Cost returns the machine's cost parameters.
func (m *Machine) Cost() topology.CostParams { return m.cost }

// AttachTracer connects an event tracer: every subsequent Run records
// its sends, receives, compute spans, and collective spans into a
// fresh trace.Recorder deposited on t (one per run, labeled in start
// order). A nil tracer — the default — keeps tracing disabled with
// zero overhead on the communication paths. AttachTracer must not be
// called concurrently with Run.
func (m *Machine) AttachTracer(t *trace.Tracer) { m.tracer = t }

// ProcStats accumulates per-processor accounting during a Run.
type ProcStats struct {
	MsgsSent    int64   // point-to-point messages sent
	BytesSent   int64   // modeled bytes sent
	MsgsRecv    int64   // point-to-point messages received
	BytesRecv   int64   // modeled bytes received
	Flops       int64   // floating-point operations charged via Compute
	SendTime    float64 // modeled time spent in send overheads
	WaitTime    float64 // modeled time spent waiting for messages
	ComputeTime float64 // modeled time spent computing
	// ReduceHiddenTime is the modeled reduction time nonblocking
	// collectives hid behind overlapped compute; ReduceExposedTime is
	// what their Waits still had to charge. Hidden + exposed equals the
	// blocking cost of every waited-on IallreduceScalars, so hidden > 0
	// means Wait charged strictly less than the blocking path would.
	ReduceHiddenTime  float64
	ReduceExposedTime float64
}

// RunStats summarises one Run of a Machine.
type RunStats struct {
	ModelTime  float64     // modeled parallel time: max processor clock
	Procs      []ProcStats // per-rank accounting
	TotalMsgs  int64
	TotalBytes int64
	// TotalMsgsRecv/TotalBytesRecv count the receive side; they equal
	// the send-side totals when every message was consumed, and the
	// difference is the number of messages a buggy program left
	// undelivered in the mailboxes.
	TotalMsgsRecv  int64
	TotalBytesRecv int64
	TotalFlops     int64
	MaxFlops       int64 // flops on the most loaded processor
	// BytesMatrix[src][dst] is the modeled bytes sent from src to dst —
	// the communication matrix, which makes the difference between a
	// broadcast pattern (dense matrix) and a halo exchange (banded
	// matrix) directly visible.
	BytesMatrix [][]int64
}

// ReduceOverlap sums the nonblocking-collective accounting across
// ranks: hidden is the modeled reduction time that overlapped compute
// absorbed, exposed is what the Waits actually charged. Both are zero
// for programs that only use blocking collectives.
func (rs RunStats) ReduceOverlap() (hidden, exposed float64) {
	for _, ps := range rs.Procs {
		hidden += ps.ReduceHiddenTime
		exposed += ps.ReduceExposedTime
	}
	return hidden, exposed
}

// CommTime returns the modeled time the busiest processor spent in
// communication (send overhead plus waiting).
func (rs RunStats) CommTime() float64 {
	max := 0.0
	for _, ps := range rs.Procs {
		if t := ps.SendTime + ps.WaitTime; t > max {
			max = t
		}
	}
	return max
}

// FlopImbalance returns max/mean flops across processors (1.0 is
// perfectly balanced). Returns 1 when no flops were charged.
func (rs RunStats) FlopImbalance() float64 {
	if rs.TotalFlops == 0 {
		return 1
	}
	mean := float64(rs.TotalFlops) / float64(len(rs.Procs))
	return float64(rs.MaxFlops) / mean
}

type runCtx struct {
	mail      [][]chan message // mail[src][dst]
	bytes     [][]int64        // bytes[src][dst]; row src written only by src's goroutine
	abort     chan struct{}
	abortOnce sync.Once
}

func (rc *runCtx) doAbort() { rc.abortOnce.Do(func() { close(rc.abort) }) }

// abortError marks panics injected into peers when some processor
// failed first; Run suppresses these in favour of the primary panic.
type abortError struct{}

func (abortError) Error() string { return "comm: aborted because a peer processor failed" }

// errAborted is run's internal result when every panic was a secondary
// abortError — which only happens when an external watchdog (RunTimeout)
// fired the abort. It never escapes the package.
var errAborted = errors.New("comm: run aborted by watchdog")

// RunTimeout is Run with a deadlock watchdog: if the SPMD program has
// not finished within d, every processor blocked in communication is
// aborted and an error describing the hang is returned (with zero
// stats). Mismatched collectives — the classic SPMD bug where one
// processor takes a different branch — hang forever under Run;
// RunTimeout turns them into a diagnosable failure. Like RunChecked,
// it returns injected-fault failures as typed PeerFailure errors.
func (m *Machine) RunTimeout(fn func(p *Proc), d time.Duration) (RunStats, error) {
	type outcome struct {
		rs  RunStats
		err error
	}
	done := make(chan outcome, 1)
	panicked := make(chan any, 1)
	var rcHolder atomic.Pointer[runCtx]
	go func() {
		defer func() {
			if e := recover(); e != nil {
				panicked <- e
			}
		}()
		rs, err := m.run(fn, &rcHolder)
		done <- outcome{rs, err}
	}()
	select {
	case o := <-done:
		return o.rs, o.err
	case e := <-panicked:
		panic(e)
	case <-time.After(d):
		if rc := rcHolder.Load(); rc != nil {
			rc.doAbort()
		}
		// Wait for the aborted run to unwind; its procs report the
		// secondary abortError panics, which run folds into errAborted.
		select {
		case o := <-done:
			if o.err != nil && !errors.Is(o.err, errAborted) {
				return o.rs, o.err
			}
		case e := <-panicked:
			panic(e)
		}
		return RunStats{}, fmt.Errorf("comm: SPMD program deadlocked (no completion within %v); likely mismatched collectives or unmatched send/recv", d)
	}
}

// Run executes fn on every processor concurrently (SPMD) and returns
// aggregate statistics. If any processor panics, Run re-panics with the
// first failure after all goroutines have stopped; an injected-fault
// failure panics with the typed PeerFailure (use RunChecked to receive
// it as an error instead).
func (m *Machine) Run(fn func(p *Proc)) RunStats {
	rs, err := m.run(fn, nil)
	if err != nil {
		panic(err)
	}
	return rs
}

// RunChecked is Run for programs that may be killed by the fault
// layer: an injected crash or a deadline-detected dead peer returns a
// typed PeerFailure error together with the partial run's statistics
// (its modeled clocks are the failed run's cost, which the resilient
// solver accounts as lost work). Programming-error panics still
// propagate as panics.
func (m *Machine) RunChecked(fn func(p *Proc)) (RunStats, error) {
	return m.run(fn, nil)
}

func (m *Machine) run(fn func(p *Proc), rcHolder *atomic.Pointer[runCtx]) (RunStats, error) {
	rc := &runCtx{
		mail:  make([][]chan message, m.np),
		bytes: make([][]int64, m.np),
		abort: make(chan struct{}),
	}
	if rcHolder != nil {
		rcHolder.Store(rc)
	}
	for s := 0; s < m.np; s++ {
		rc.mail[s] = make([]chan message, m.np)
		rc.bytes[s] = make([]int64, m.np)
		for d := 0; d < m.np; d++ {
			rc.mail[s][d] = make(chan message, 8+m.np)
		}
	}

	var rec *trace.Recorder
	if m.tracer != nil {
		rec = m.tracer.StartRun(m.np)
	}
	var injs []RankInjector
	if m.inj != nil {
		injs = m.inj.StartRun(m.np)
	}

	procs := make([]*Proc, m.np)
	panics := make([]any, m.np)
	var wg sync.WaitGroup
	for r := 0; r < m.np; r++ {
		p := &Proc{
			m: m, rc: rc, rank: r,
			pool:       make([][]float64, 0, poolCap),
			intPool:    make([][]int, 0, intPoolCap),
			lastFactor: 1,
			deadline:   m.recvDeadline,
		}
		if rec != nil {
			p.tr = rec.Rank(r)
		}
		if r < len(injs) && injs[r] != nil {
			p.inj = injs[r]
			if at, ok := p.inj.CrashTime(); ok {
				p.crashAt, p.hasCrash = at, true
			}
		}
		procs[r] = p
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
					rc.doAbort()
				}
			}()
			fn(procs[rank])
		}(r)
	}
	wg.Wait()

	// Classify the panics: a programming error on any rank always wins
	// and re-panics; injected-fault deaths (crashPanic from the dying
	// rank, PeerFailure from a deadline-detecting survivor) become the
	// run's error; secondary abortErrors are suppressed.
	var bug any
	var fail error
	aborted := false
	for _, e := range panics {
		switch v := e.(type) {
		case nil:
		case abortError:
			aborted = true
		case crashPanic:
			if fail == nil {
				fail = PeerFailure{Rank: v.rank, Clock: v.clock}
			}
		case PeerFailure:
			if fail == nil {
				fail = v
			}
		default:
			if bug == nil {
				bug = e
			}
		}
	}
	if bug != nil {
		panic(bug)
	}
	if fail == nil && aborted {
		return RunStats{}, errAborted
	}

	var rs RunStats
	rs.Procs = make([]ProcStats, m.np)
	rs.BytesMatrix = rc.bytes
	for r, p := range procs {
		rs.Procs[r] = p.stats
		if p.clock > rs.ModelTime {
			rs.ModelTime = p.clock
		}
		rs.TotalMsgs += p.stats.MsgsSent
		rs.TotalBytes += p.stats.BytesSent
		rs.TotalMsgsRecv += p.stats.MsgsRecv
		rs.TotalBytesRecv += p.stats.BytesRecv
		rs.TotalFlops += p.stats.Flops
		if p.stats.Flops > rs.MaxFlops {
			rs.MaxFlops = p.stats.Flops
		}
	}
	if rec != nil {
		rec.Seal(rs.ModelTime)
	}
	return rs, fail
}

// Proc is one virtual processor inside a Run. All methods must be
// called from the goroutine Run started for this rank.
type Proc struct {
	m     *Machine
	rc    *runCtx
	rank  int
	clock float64
	seq   int // collective sequence number, for tag matching
	stats ProcStats
	tr    *trace.RankLog // nil unless a tracer is attached
	// inj is this rank's fault schedule (nil = healthy, hook-free).
	// crashAt/hasCrash cache the injected crash time so the hot-path
	// check is two loads and a compare; lastFactor tracks straggle
	// transitions for the trace markers; deadline bounds blocked Recvs
	// when fault injection is armed.
	inj        RankInjector
	crashAt    float64
	hasCrash   bool
	lastFactor float64
	deadline   time.Duration
	// pool/intPool hold recycled scratch buffers (see GetBuf). They are
	// owned by this rank's goroutine, so no locking is needed.
	pool    [][]float64
	intPool [][]int
	// handles is the freelist of recycled nonblocking-collective
	// handles (see IallreduceScalars), also goroutine-owned.
	handles []*ReduceHandle
}

// Rank returns this processor's rank in [0, NP).
func (p *Proc) Rank() int { return p.rank }

// NP returns the number of processors in the machine.
func (p *Proc) NP() int { return p.m.np }

// Clock returns the processor's current modeled time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a copy of the processor's accounting so far.
func (p *Proc) Stats() ProcStats { return p.stats }

// Compute charges flops floating-point operations to the modeled
// clock. An attached injector can stretch the charge (straggler) or
// kill the rank once its clock passes the scheduled crash time.
func (p *Proc) Compute(flops int) {
	if flops <= 0 {
		return
	}
	start := p.clock
	dt := float64(flops) * p.m.cost.TFlop
	if p.inj != nil {
		dt *= p.straggleFactor(start)
	}
	p.clock += dt
	p.stats.ComputeTime += dt
	p.stats.Flops += int64(flops)
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindCompute, Peer: -1, Flops: flops, Start: start, End: p.clock})
	}
	p.checkCrash()
}

// collEnd records a collective span [start, now) when tracing is on.
// Collectives call it via `defer p.collEnd(op, p.clock)`, which pins
// start at entry time while End reads the clock at return — including
// on the early-return paths of the tree algorithms.
func (p *Proc) collEnd(op string, start float64) {
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindCollective, Peer: -1, Op: op, Start: start, End: p.clock})
	}
}

// maxUserTag bounds user point-to-point tags; collective traffic uses
// tags above this.
const maxUserTag = 1 << 20

// Send transmits pl to processor dst with the given tag. Sends are
// buffered (asynchronous): the sender is charged only the start-up
// overhead t_s; transfer time is charged to the receiver on arrival.
func (p *Proc) Send(dst, tag int, pl Payload) {
	if dst < 0 || dst >= p.m.np {
		panic(fmt.Sprintf("comm: Send to invalid rank %d (np=%d)", dst, p.m.np))
	}
	if dst == p.rank {
		panic("comm: Send to self")
	}
	p.checkCrash()
	start := p.clock
	p.clock += p.m.cost.TStartup
	p.stats.SendTime += p.m.cost.TStartup
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(pl.Bytes())
	p.rc.bytes[p.rank][dst] += int64(pl.Bytes())
	msg := message{
		tag:    tag,
		pl:     pl,
		depart: p.clock,
		hops:   p.m.topo.Distance(p.rank, dst, p.m.np),
	}
	if p.tr != nil {
		p.tr.Add(trace.Event{Kind: trace.KindSend, Peer: dst, Tag: tag, Bytes: pl.Bytes(), Start: start, End: p.clock})
	}
	if p.inj != nil {
		drop, delay := p.inj.SendFault(dst, p.clock, float64(msg.hops)*p.m.cost.THop)
		if drop {
			// The sender paid the start-up overhead and believes the
			// message left; the network lost it. The receiver's recv
			// deadline is what eventually notices.
			if p.tr != nil {
				p.tr.Add(trace.Event{Kind: trace.KindFault, Peer: dst, Tag: tag, Bytes: pl.Bytes(), Op: "drop", Start: p.clock, End: p.clock})
			}
			return
		}
		if delay > 0 {
			msg.delay = delay
			if p.tr != nil {
				p.tr.Add(trace.Event{Kind: trace.KindFault, Peer: dst, Tag: tag, Op: "spike", Start: p.clock, End: p.clock})
			}
		}
	}
	select {
	case p.rc.mail[p.rank][dst] <- msg:
	case <-p.rc.abort:
		panic(abortError{})
	}
}

// Recv blocks until a message from src with the expected tag arrives
// and returns its payload. Messages between a pair of processors are
// delivered in order; a tag mismatch indicates a protocol error and
// panics.
func (p *Proc) Recv(src, tag int) Payload {
	if src < 0 || src >= p.m.np {
		panic(fmt.Sprintf("comm: Recv from invalid rank %d (np=%d)", src, p.m.np))
	}
	if src == p.rank {
		panic("comm: Recv from self")
	}
	p.checkCrash()
	start := p.clock
	var msg message
	if p.deadline > 0 {
		// Fault-armed path: a peer that died silently (its message was
		// dropped, so no abort fired) must not hang this rank forever.
		// The deadline is wall-clock by necessity — a dead peer makes no
		// modeled progress to measure — but the resulting PeerFailure
		// carries modeled time like every other event.
		timer := time.NewTimer(p.deadline)
		select {
		case msg = <-p.rc.mail[src][p.rank]:
			timer.Stop()
		case <-p.rc.abort:
			timer.Stop()
			panic(abortError{})
		case <-timer.C:
			pf := PeerFailure{Rank: src, Clock: p.clock}
			if p.tr != nil {
				p.tr.Add(trace.Event{Kind: trace.KindFault, Peer: src, Op: "peer-timeout", Start: p.clock, End: p.clock})
			}
			panic(pf)
		}
	} else {
		select {
		case msg = <-p.rc.mail[src][p.rank]:
		case <-p.rc.abort:
			panic(abortError{})
		}
	}
	if msg.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", p.rank, tag, src, msg.tag))
	}
	// The head of the message arrives after the network latency; the
	// body then occupies the receiver's link for bytes*t_w. Charging the
	// transfer on the receiver serialises concurrent incoming messages
	// (finite receive bandwidth, as in the LogGP model) — without this,
	// an all-to-all would absorb NP-1 transfers for the price of one.
	// msg.delay is the fault layer's injected latency (0 when healthy).
	head := msg.depart + float64(msg.hops)*p.m.cost.THop + msg.delay
	if head > p.clock {
		p.stats.WaitTime += head - p.clock
		p.clock = head
	}
	body := float64(msg.pl.Bytes()) * p.m.cost.TByte
	p.clock += body
	p.stats.WaitTime += body
	p.stats.MsgsRecv++
	p.stats.BytesRecv += int64(msg.pl.Bytes())
	if p.tr != nil {
		p.tr.Add(trace.Event{
			Kind: trace.KindRecv, Peer: src, Tag: msg.tag, Bytes: msg.pl.Bytes(),
			Start: start, End: p.clock, Depart: msg.depart, Head: head,
		})
	}
	return msg.pl
}

// SendFloats sends a float slice (the slice is not copied; the caller
// must not mutate it afterwards within the same superstep).
func (p *Proc) SendFloats(dst, tag int, x []float64) { p.Send(dst, tag, Payload{Floats: x}) }

// RecvFloats receives a float slice sent with SendFloats.
func (p *Proc) RecvFloats(src, tag int) []float64 { return p.Recv(src, tag).Floats }

// SendInts sends an int slice.
func (p *Proc) SendInts(dst, tag int, x []int) { p.Send(dst, tag, Payload{Ints: x}) }

// RecvInts receives an int slice sent with SendInts.
func (p *Proc) RecvInts(src, tag int) []int { return p.Recv(src, tag).Ints }

// nextTag returns a fresh tag for one collective operation. All ranks
// execute collectives in the same order, so sequence numbers agree.
func (p *Proc) nextTag(op int) int {
	p.seq++
	return maxUserTag + p.seq*16 + op
}

const (
	opBarrier = iota
	opBcast
	opReduce
	opGather
	opScatter
	opAllgather
	opAlltoall
)
