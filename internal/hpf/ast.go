package hpf

import (
	"fmt"
	"strings"
)

// Expr is an integer block-size expression such as (n+NP-1)/NP.
type Expr interface {
	// Eval computes the expression under env (identifier -> value).
	Eval(env map[string]int) (int, error)
	// String renders the expression in source form.
	String() string
}

// NumExpr is an integer literal.
type NumExpr int

// Eval implements Expr.
func (n NumExpr) Eval(map[string]int) (int, error) { return int(n), nil }

// String implements Expr.
func (n NumExpr) String() string { return fmt.Sprintf("%d", int(n)) }

// IdentExpr is a named value (n, np, nz, ...). Lookup is
// case-insensitive (the identifier is stored lowered).
type IdentExpr string

// Eval implements Expr.
func (id IdentExpr) Eval(env map[string]int) (int, error) {
	for k, v := range env {
		if strings.ToLower(k) == string(id) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("hpf: undefined identifier %q", string(id))
}

// String implements Expr.
func (id IdentExpr) String() string { return string(id) }

// BinExpr is a binary arithmetic expression. Division is Fortran
// integer division (truncating).
type BinExpr struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Eval implements Expr.
func (b BinExpr) Eval(env map[string]int) (int, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("hpf: division by zero in %s", b.String())
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("hpf: unknown operator %q", b.Op)
}

// String implements Expr.
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s%c%s)", b.L.String(), b.Op, b.R.String())
}

// PatternKind is the distribution pattern of a DISTRIBUTE directive.
type PatternKind int

// Distribution pattern kinds, covering HPF-1 BLOCK/CYCLIC and the
// proposed ATOM-qualified forms.
const (
	PatBlock PatternKind = iota
	PatCyclic
)

func (k PatternKind) String() string {
	if k == PatBlock {
		return "BLOCK"
	}
	return "CYCLIC"
}

// Pattern is BLOCK, BLOCK(k), CYCLIC or CYCLIC(k), possibly ATOM-
// qualified (the proposed REDISTRIBUTE row(ATOM: BLOCK)).
type Pattern struct {
	Kind PatternKind
	Size Expr // nil when no explicit block size
	Atom bool // true for ATOM: patterns
}

// String renders the pattern in source form.
func (p Pattern) String() string {
	s := p.Kind.String()
	if p.Size != nil {
		s += "(" + exprSrc(p.Size) + ")"
	}
	if p.Atom {
		s = "ATOM: " + s
	}
	return s
}

// Directive is one parsed directive line.
type Directive interface {
	// Line returns the 1-based source line of the directive.
	Line() int
	directive()
}

type base struct{ line int }

func (b base) Line() int  { return b.line }
func (b base) directive() {}

// Processors is `PROCESSORS :: name(count)`.
type Processors struct {
	base
	Name  string
	Count Expr
}

// Distribute is `[DYNAMIC,] DISTRIBUTE array(pattern)`.
type Distribute struct {
	base
	Array   string
	Pat     Pattern
	Dynamic bool
}

// DimSpec is one dimension of an align spec: ":" (aligned), "*"
// (collapsed/replicated), "ATOM:i" (atom-aligned), or an index
// identifier.
type DimSpec struct {
	Kind string // ":", "*", "atom", "ident"
	Name string // identifier for "atom" and "ident" kinds
}

// String renders the dim spec.
func (d DimSpec) String() string {
	switch d.Kind {
	case "atom":
		return "ATOM:" + d.Name
	case "ident":
		return d.Name
	}
	return d.Kind
}

// Align is `[DYNAMIC,] ALIGN source(dims) WITH target(dims) [:: more]`.
// The bare-spec form `ALIGN (:) WITH p(:) :: q, r, x, b` leaves Source
// empty and lists the arrays in Extra.
type Align struct {
	base
	Source     string
	SourceDims []DimSpec
	Target     string
	TargetDims []DimSpec
	Extra      []string // arrays after ::
	Dynamic    bool
}

// Redistribute is `REDISTRIBUTE array(ATOM: pattern)` or
// `REDISTRIBUTE array USING partitioner`.
type Redistribute struct {
	base
	Array       string
	Pat         *Pattern // nil when USING form
	Partitioner string   // empty when pattern form
}

// Indivisable is the proposed atom declaration
// `INDIVISABLE data(ATOM:i) :: indir(i:i+1)`: atoms of array Data are
// delimited by consecutive entries of the indirection array Indir.
type Indivisable struct {
	base
	Data    string
	AtomVar string
	Indir   string
	LoExpr  Expr // section lower bound, normally the atom variable
	HiExpr  Expr // section upper bound, normally atomvar+1
}

// SparseMatrix is `SPARSE_MATRIX (FMT) :: name(ptr, idx, val)`.
type SparseMatrix struct {
	base
	Format string // "csr" or "csc"
	Name   string
	Arrays [3]string
}

// IterClause is one clause of an ITERATION directive.
type IterClause struct {
	Kind  string   // "private", "new"
	Array string   // private array name
	Size  Expr     // private array extent
	Merge string   // "+" for MERGE(+), "discard", "" for none
	Names []string // NEW variable list
}

// Iteration is the §5.1 loop directive
// `ITERATION j ON PROCESSOR(f(j)), PRIVATE(q(n)) WITH MERGE(+), NEW(..)`.
type Iteration struct {
	base
	Var     string
	MapExpr Expr // the f(j) mapping expression
	Clauses []IterClause
}

// Program is an ordered list of directives plus any Fortran source
// lines that were skipped (kept for tooling that wants them).
type Program struct {
	Directives []Directive
	Skipped    []string
}

// Find returns all directives of type T in program order.
func Find[T Directive](p *Program) []T {
	var out []T
	for _, d := range p.Directives {
		if t, ok := d.(T); ok {
			out = append(out, t)
		}
	}
	return out
}
