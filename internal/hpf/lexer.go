// Package hpf implements the directive language the paper writes its
// codes in: the HPF-1 mapping directives (PROCESSORS, DISTRIBUTE,
// ALIGN, DYNAMIC, REDISTRIBUTE) plus the paper's proposed !EXT$
// extensions (INDIVISABLE atoms, ATOM: distributions, SPARSE_MATRIX,
// partitioner-based REDISTRIBUTE ... USING, and the ITERATION ... ON
// PROCESSOR / PRIVATE / MERGE loop directive of §5.1).
//
// The package parses directive text into an AST (Parse), evaluates the
// block-size expressions such as (n+NP-1)/NP against an environment
// (Expr.Eval), and binds a parsed program to concrete distribution
// descriptors for given array sizes (Bind) — the role the HPF compiler
// plays for the codes in Figures 2-5.
package hpf

import (
	"fmt"
	"strings"
)

// isLetter reports an ASCII letter (Fortran identifiers are ASCII).
func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// isDigit reports an ASCII digit.
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokDoubleColon
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokColon:
		return ":"
	case tokDoubleColon:
		return "::"
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex splits one logical directive line (prefix already removed) into
// tokens. Fortran is case-insensitive; identifiers are lowered.
func lex(s string, line int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			if i+1 < len(s) && s[i+1] == ':' {
				toks = append(toks, token{tokDoubleColon, "::", i})
				i += 2
			} else {
				toks = append(toks, token{tokColon, ":", i})
				i++
			}
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case isDigit(c):
			j := i
			for j < len(s) && isDigit(s[j]) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		case isLetter(c) || c == '_':
			// Fortran identifiers are ASCII; rejecting non-ASCII bytes
			// here keeps lexing byte-oriented and round-trip safe.
			j := i
			for j < len(s) && (isLetter(s[j]) || isDigit(s[j]) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(s[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("hpf: line %d: unexpected character %q at column %d", line, c, i+1)
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

// directivePrefixes are accepted sentinel forms; the paper mixes !HPF$,
// $HPF$ and !EXT$ (we also take !hpf$ etc. case-insensitively).
var directivePrefixes = []string{"!hpf$", "$hpf$", "!ext$", "$ext$"}

// splitDirective checks whether a source line is a directive line and
// returns (prefix, body, true) if so. Non-directive lines (Fortran
// statements, blank lines, plain comments) return ok=false.
func splitDirective(line string) (prefix, body string, ok bool) {
	t := strings.TrimSpace(line)
	lower := strings.ToLower(t)
	for _, p := range directivePrefixes {
		if strings.HasPrefix(lower, p) {
			return p, strings.TrimSpace(t[len(p):]), true
		}
	}
	return "", "", false
}
