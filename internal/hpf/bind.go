package hpf

import (
	"fmt"
	"sort"
	"strings"

	"hpfcg/internal/dist"
	"hpfcg/internal/partition"
)

// ArrayPlan is the bound mapping of one array.
type ArrayPlan struct {
	Name      string
	Size      int
	Dist      dist.Dist
	AlignedTo string    // the ultimate alignment target ("" if directly distributed)
	Dims      []DimSpec // source dims from the ALIGN directive, if any
	Dynamic   bool
}

// Plan is the result of binding a directive program to concrete array
// sizes and a processor count — the set of distributed array
// descriptors an HPF compiler would construct.
type Plan struct {
	NP       int
	ProcName string
	Arrays   map[string]*ArrayPlan
	// Sparse maps a sparse-matrix name to its SPARSE_MATRIX directive.
	Sparse map[string]SparseMatrix
	// AtomsOf maps a data array to its INDIVISABLE declaration.
	AtomsOf map[string]Indivisable
	// AtomRedist maps an array to its ATOM-qualified REDISTRIBUTE.
	AtomRedist map[string]Pattern
	// Partitioners maps an array (or sparse-matrix name) to the
	// partitioner named in REDISTRIBUTE ... USING.
	Partitioners map[string]string
	// Iterations lists the ITERATION loop directives in order.
	Iterations []Iteration

	env map[string]int
}

// Bind resolves a parsed program against np processors and the given
// array sizes. extra supplies values for identifiers used in block-size
// expressions (e.g. "n", "nz"); "np" is always available.
func Bind(prog *Program, np int, sizes map[string]int, extra map[string]int) (*Plan, error) {
	if np < 1 {
		return nil, fmt.Errorf("hpf: bind with np=%d", np)
	}
	env := map[string]int{"np": np}
	for k, v := range extra {
		env[strings.ToLower(k)] = v
	}
	for k, v := range sizes {
		lk := strings.ToLower(k)
		if _, dup := env[lk]; !dup {
			env[lk] = v
		}
	}
	pl := &Plan{
		NP:           np,
		Arrays:       map[string]*ArrayPlan{},
		Sparse:       map[string]SparseMatrix{},
		AtomsOf:      map[string]Indivisable{},
		AtomRedist:   map[string]Pattern{},
		Partitioners: map[string]string{},
		env:          env,
	}
	sizeOf := func(name string) (int, error) {
		for k, v := range sizes {
			if strings.ToLower(k) == name {
				return v, nil
			}
		}
		return 0, fmt.Errorf("hpf: no size given for array %q", name)
	}

	type alignEdge struct {
		src, dst string
		dims     []DimSpec
		dynamic  bool
		line     int
	}
	var aligns []alignEdge

	for _, d := range prog.Directives {
		switch d := d.(type) {
		case Processors:
			count, err := d.Count.Eval(env)
			if err != nil {
				return nil, fmt.Errorf("hpf: line %d: %w", d.Line(), err)
			}
			if count != np {
				return nil, fmt.Errorf("hpf: line %d: PROCESSORS declares %d processors, binding with %d", d.Line(), count, np)
			}
			pl.ProcName = d.Name
		case Distribute:
			n, err := sizeOf(d.Array)
			if err != nil {
				return nil, fmt.Errorf("hpf: line %d: %w", d.Line(), err)
			}
			dd, err := bindPattern(d.Pat, n, np, env)
			if err != nil {
				return nil, fmt.Errorf("hpf: line %d: %w", d.Line(), err)
			}
			pl.Arrays[d.Array] = &ArrayPlan{Name: d.Array, Size: n, Dist: dd, Dynamic: d.Dynamic}
		case Align:
			if d.Source != "" {
				aligns = append(aligns, alignEdge{d.Source, d.Target, d.SourceDims, d.Dynamic, d.Line()})
			}
			for _, e := range d.Extra {
				aligns = append(aligns, alignEdge{e, d.Target, d.SourceDims, d.Dynamic, d.Line()})
			}
		case Redistribute:
			if d.Partitioner != "" {
				pl.Partitioners[d.Array] = d.Partitioner
			} else {
				pl.AtomRedist[d.Array] = *d.Pat
			}
		case Indivisable:
			pl.AtomsOf[d.Data] = d
		case SparseMatrix:
			pl.Sparse[d.Name] = d
		case Iteration:
			pl.Iterations = append(pl.Iterations, d)
		}
	}

	// Resolve alignment chains to fixpoint (q -> p, a -> col -> ...).
	for pass := 0; ; pass++ {
		if pass > len(aligns)+1 {
			return nil, fmt.Errorf("hpf: alignment chain does not resolve (cycle?)")
		}
		progress, unresolved := false, 0
		for _, e := range aligns {
			if _, done := pl.Arrays[e.src]; done {
				continue
			}
			target, ok := pl.Arrays[e.dst]
			if !ok {
				unresolved++
				continue
			}
			n, err := sizeOf(e.src)
			if err != nil {
				return nil, fmt.Errorf("hpf: line %d: %w", e.line, err)
			}
			if n != target.Size {
				return nil, fmt.Errorf("hpf: line %d: cannot align %q (size %d) with %q (size %d)",
					e.line, e.src, n, e.dst, target.Size)
			}
			root := e.dst
			if target.AlignedTo != "" {
				root = target.AlignedTo
			}
			pl.Arrays[e.src] = &ArrayPlan{
				Name:      e.src,
				Size:      n,
				Dist:      target.Dist,
				AlignedTo: root,
				Dims:      e.dims,
				Dynamic:   e.dynamic || target.Dynamic,
			}
			progress = true
		}
		if unresolved == 0 {
			break
		}
		if !progress {
			for _, e := range aligns {
				if _, done := pl.Arrays[e.src]; !done {
					if _, ok := pl.Arrays[e.dst]; !ok {
						return nil, fmt.Errorf("hpf: line %d: ALIGN target %q has no distribution", e.line, e.dst)
					}
				}
			}
			return nil, fmt.Errorf("hpf: alignment resolution stalled")
		}
	}
	return pl, nil
}

func bindPattern(pat Pattern, n, np int, env map[string]int) (dist.Dist, error) {
	if pat.Atom {
		return nil, fmt.Errorf("ATOM patterns bind at REDISTRIBUTE time (use BindAtomRedistribution)")
	}
	var k int
	if pat.Size != nil {
		var err error
		k, err = pat.Size.Eval(env)
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, fmt.Errorf("block size %s evaluates to %d", pat.Size, k)
		}
	}
	switch pat.Kind {
	case PatBlock:
		if pat.Size == nil {
			return dist.NewBlock(n, np), nil
		}
		if k*np < n {
			return nil, fmt.Errorf("BLOCK(%d) over %d processors cannot hold %d elements (HPF requires k*NP >= n)", k, np, n)
		}
		return dist.NewBlockSize(n, np, k), nil
	case PatCyclic:
		if pat.Size == nil {
			return dist.NewCyclic(n, np), nil
		}
		return dist.NewCyclicK(n, np, k), nil
	}
	return nil, fmt.Errorf("unknown pattern kind %v", pat.Kind)
}

// BindAtomRedistribution realises a `REDISTRIBUTE arr(ATOM: BLOCK)` or
// `REDISTRIBUTE arr(ATOM: CYCLIC)` for the array using its INDIVISABLE
// declaration: ptr is the runtime indirection array (e.g. the CSC
// column pointers). ATOM: BLOCK yields a contiguous (dist.Irregular)
// element distribution; ATOM: CYCLIC deals whole atoms round-robin
// (partition.AtomCyclic, non-contiguous). Either way no atom is ever
// split.
func (pl *Plan) BindAtomRedistribution(array string, ptr []int) (dist.Dist, error) {
	pat, ok := pl.AtomRedist[array]
	if !ok {
		return nil, fmt.Errorf("hpf: no ATOM redistribution declared for %q", array)
	}
	if _, ok := pl.AtomsOf[array]; !ok {
		return nil, fmt.Errorf("hpf: %q has no INDIVISABLE declaration", array)
	}
	atoms := partition.AtomsFromPtr(ptr)
	switch pat.Kind {
	case PatBlock:
		cuts := partition.UniformAtomBlock(atoms.NAtoms(), pl.NP)
		return atoms.ElemDist(cuts), nil
	case PatCyclic:
		return partition.NewAtomCyclic(atoms, pl.NP), nil
	}
	return nil, fmt.Errorf("hpf: unsupported ATOM pattern %s", pat.Kind)
}

// BindPartitioner realises a `REDISTRIBUTE name USING partitioner`:
// ptr is the indirection array whose atom weights (nonzeros per
// row/column) the partitioner balances. CG_BALANCED_PARTITIONER_1 is
// the optimal contiguous (chains-on-chains) partitioner; it returns
// the element-level distribution for the data arrays plus the
// atom-level cut points for the pointer array.
func (pl *Plan) BindPartitioner(name string, ptr []int) (elem dist.Irregular, atomCuts []int, err error) {
	part, ok := pl.Partitioners[name]
	if !ok {
		return dist.Irregular{}, nil, fmt.Errorf("hpf: no partitioner declared for %q", name)
	}
	switch part {
	case "cg_balanced_partitioner_1":
		atoms := partition.AtomsFromPtr(ptr)
		cuts := partition.BalancedContiguous(atoms.Weights(), pl.NP)
		return atoms.ElemDist(cuts), cuts, nil
	case "cg_greedy_partitioner":
		atoms := partition.AtomsFromPtr(ptr)
		cuts := partition.GreedyContiguous(atoms.Weights(), pl.NP)
		return atoms.ElemDist(cuts), cuts, nil
	}
	return dist.Irregular{}, nil, fmt.Errorf("hpf: unknown partitioner %q", part)
}

// IterationMap compiles an ITERATION directive's ON PROCESSOR(f(i))
// expression into a Go function of the iteration variable. The
// returned map clamps results into [0, NP).
func (pl *Plan) IterationMap(it Iteration) func(i int) int {
	np := pl.NP
	varName := it.Var
	return func(i int) int {
		env := make(map[string]int, len(pl.env)+1)
		for k, v := range pl.env {
			env[k] = v
		}
		env[varName] = i
		v, err := it.MapExpr.Eval(env)
		if err != nil {
			panic(fmt.Sprintf("hpf: iteration map: %v", err))
		}
		v %= np
		if v < 0 {
			v += np
		}
		return v
	}
}

// Describe renders the plan as a human-readable table (used by the
// hpfdump tool).
func (pl *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "processors: %d", pl.NP)
	if pl.ProcName != "" {
		fmt.Fprintf(&b, " (%s)", strings.ToUpper(pl.ProcName))
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(pl.Arrays))
	for n := range pl.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := pl.Arrays[n]
		fmt.Fprintf(&b, "array %-8s size %-8d dist %-12s", a.Name, a.Size, a.Dist.Name())
		if a.AlignedTo != "" {
			fmt.Fprintf(&b, " aligned-with %s", a.AlignedTo)
		}
		if a.Dynamic {
			b.WriteString(" DYNAMIC")
		}
		b.WriteByte('\n')
	}
	for name, sm := range pl.Sparse {
		fmt.Fprintf(&b, "sparse %s format %s trio (%s, %s, %s)\n",
			name, strings.ToUpper(sm.Format), sm.Arrays[0], sm.Arrays[1], sm.Arrays[2])
	}
	for data, ind := range pl.AtomsOf {
		fmt.Fprintf(&b, "atoms  %s(ATOM:%s) :: %s(%s:%s)\n",
			data, ind.AtomVar, ind.Indir, ind.LoExpr, ind.HiExpr)
	}
	for arr, pat := range pl.AtomRedist {
		fmt.Fprintf(&b, "redistribute %s (%s)\n", arr, pat)
	}
	for arr, part := range pl.Partitioners {
		fmt.Fprintf(&b, "redistribute %s USING %s\n", arr, strings.ToUpper(part))
	}
	for _, it := range pl.Iterations {
		fmt.Fprintf(&b, "iteration %s ON PROCESSOR(%s), %d clause(s)\n",
			it.Var, it.MapExpr, len(it.Clauses))
	}
	return b.String()
}
