package hpf

import (
	"strings"
	"testing"

	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// figure2 is the directive block of the paper's Figure 2 (CSR-format
// CG), with the paper's unbalanced-paren typo in the CYCLIC line
// corrected.
const figure2 = `
REAL, dimension(1:nz) :: a
INTEGER, dimension(1:nz) :: col
INTEGER, dimension(1:n+1) :: row
REAL, dimension(1:n) :: x, r, p, q
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
`

func TestParseFigure2(t *testing.T) {
	prog, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Directives) != 6 {
		t.Fatalf("parsed %d directives, want 6", len(prog.Directives))
	}
	if len(prog.Skipped) != 4 {
		t.Errorf("skipped %d Fortran lines, want 4", len(prog.Skipped))
	}
	procs := Find[Processors](prog)
	if len(procs) != 1 || procs[0].Name != "procs" {
		t.Fatalf("PROCESSORS parse: %+v", procs)
	}
	dists := Find[Distribute](prog)
	if len(dists) != 3 {
		t.Fatalf("found %d DISTRIBUTE directives", len(dists))
	}
	if dists[0].Array != "p" || dists[0].Pat.Kind != PatBlock || dists[0].Pat.Size != nil {
		t.Errorf("DISTRIBUTE p: %+v", dists[0])
	}
	if dists[1].Array != "row" || dists[1].Pat.Kind != PatCyclic || dists[1].Pat.Size == nil {
		t.Errorf("DISTRIBUTE row: %+v", dists[1])
	}
	aligns := Find[Align](prog)
	if len(aligns) != 2 {
		t.Fatalf("found %d ALIGN directives", len(aligns))
	}
	if aligns[0].Target != "p" || len(aligns[0].Extra) != 4 {
		t.Errorf("first ALIGN: %+v", aligns[0])
	}
	if aligns[1].Source != "a" || aligns[1].Target != "col" {
		t.Errorf("second ALIGN: %+v", aligns[1])
	}
}

func TestBindFigure2(t *testing.T) {
	prog := MustParse(figure2)
	n, nz, np := 100, 420, 4
	sizes := map[string]int{
		"a": nz, "col": nz, "row": n + 1,
		"p": n, "q": n, "r": n, "x": n, "b": n,
	}
	pl, err := Bind(prog, np, sizes, map[string]int{"n": n, "nz": nz})
	if err != nil {
		t.Fatal(err)
	}
	if pl.ProcName != "procs" || pl.NP != 4 {
		t.Errorf("plan header: %q %d", pl.ProcName, pl.NP)
	}
	// p BLOCK; q, r, x, b aligned with p -> same descriptor.
	pp := pl.Arrays["p"]
	if pp == nil || pp.Dist.Name() != "BLOCK" {
		t.Fatalf("p: %+v", pp)
	}
	for _, name := range []string{"q", "r", "x", "b"} {
		a := pl.Arrays[name]
		if a == nil {
			t.Fatalf("%s not bound", name)
		}
		if a.AlignedTo != "p" {
			t.Errorf("%s aligned to %q, want p", name, a.AlignedTo)
		}
		if !dist.Same(a.Dist, pp.Dist) {
			t.Errorf("%s distribution differs from p", name)
		}
	}
	// row is CYCLIC((n+NP-1)/NP) = CYCLIC(25) over 101 elements.
	row := pl.Arrays["row"]
	if row == nil || row.Dist.Name() != "CYCLIC(25)" {
		t.Fatalf("row: %+v (dist %s)", row, row.Dist.Name())
	}
	// a aligned with col, both BLOCK over nz.
	col := pl.Arrays["col"]
	av := pl.Arrays["a"]
	if col == nil || av == nil {
		t.Fatal("a/col not bound")
	}
	if av.AlignedTo != "col" || !dist.Same(av.Dist, col.Dist) {
		t.Errorf("a not aligned with col: %+v", av)
	}
	if !strings.Contains(pl.Describe(), "array p") {
		t.Error("Describe missing arrays")
	}
}

// The §4 CSR distribution block with the explicit block size that pins
// the (n+1)'th row pointer onto the last processor.
func TestBindExplicitBlockSize(t *testing.T) {
	src := `
!HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
`
	n, nz, np := 10, 40, 4
	pl, err := Bind(MustParse(src), np, map[string]int{"row": n + 1, "col": nz, "a": nz},
		map[string]int{"n": n})
	if err != nil {
		t.Fatal(err)
	}
	row := pl.Arrays["row"]
	if row.Dist.Name() != "BLOCK(3)" {
		t.Fatalf("row dist %s, want BLOCK(3)", row.Dist.Name())
	}
	// The property the paper wants: the last element lands on the last
	// processor.
	if owner := row.Dist.Owner(n); owner != np-1 {
		t.Errorf("row(n+1) owner %d, want %d", owner, np-1)
	}
}

// §5.2.1's dynamic distribution block with the INDIVISABLE and
// REDISTRIBUTE extensions.
const sec521 = `
!HPF$ PROCESSORS :: PROC(NP)
!HPF$ DISTRIBUTE col(BLOCK((N+NP-1)/NP))
!HPF$ DYNAMIC, ALIGN a(:) WITH row(:)
!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)
!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
!EXT$ REDISTRIBUTE row(ATOM: BLOCK)
`

func TestBindSection521(t *testing.T) {
	// Note: the paper's BLOCK((N+NP-1)/NP) idiom only covers the n+1
	// pointer elements when NP does not divide n, so pick np=5 for n=6.
	n, nz, np := 6, 15, 5
	pl, err := Bind(MustParse(sec521), np,
		map[string]int{"col": n + 1, "row": nz, "a": nz},
		map[string]int{"n": n})
	if err != nil {
		t.Fatal(err)
	}
	rowPlan := pl.Arrays["row"]
	if rowPlan == nil || !rowPlan.Dynamic {
		t.Fatalf("row plan: %+v", rowPlan)
	}
	aPlan := pl.Arrays["a"]
	if aPlan == nil || !aPlan.Dynamic || aPlan.AlignedTo != "row" {
		t.Fatalf("a plan: %+v", aPlan)
	}
	if _, ok := pl.AtomsOf["row"]; !ok {
		t.Fatal("INDIVISABLE row not recorded")
	}
	if pat, ok := pl.AtomRedist["row"]; !ok || pat.Kind != PatBlock || !pat.Atom {
		t.Fatalf("ATOM redistribution: %+v ok=%v", pat, ok)
	}

	// Realise the redistribution with the Figure 1 matrix's CSC column
	// pointers: atoms must never split.
	csc := sparse.Figure1Matrix().ToCSC()
	ed, err := pl.BindAtomRedistribution("row", csc.ColPtr)
	if err != nil {
		t.Fatal(err)
	}
	if ed.N() != csc.NNZ() || ed.NP() != np {
		t.Fatalf("element dist %dx%d", ed.N(), ed.NP())
	}
	for j := 0; j < csc.NCols; j++ {
		lo, hi := csc.ColPtr[j], csc.ColPtr[j+1]
		if hi > lo && ed.Owner(lo) != ed.Owner(hi-1) {
			t.Errorf("column %d split by ATOM:BLOCK redistribution", j)
		}
	}
}

const sec522 = `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DYNAMIC, DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ DYNAMIC, ALIGN a(:) WITH col(:)
!HPF$ DYNAMIC, DISTRIBUTE col(BLOCK)
!EXT$ INDIVISABLE row(ATOM: i) :: col(i:i+1)
!EXT$ INDIVISABLE a(ATOM: i) :: col(i:i+1)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
`

func TestBindSection522(t *testing.T) {
	n, nz, np := 8, 30, 3
	pl, err := Bind(MustParse(sec522), np,
		map[string]int{"p": n, "q": n, "r": n, "x": n, "b": n,
			"row": n + 1, "col": nz, "a": nz},
		map[string]int{"n": n, "nz": nz})
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := pl.Sparse["sma"]
	if !ok || sm.Format != "csr" {
		t.Fatalf("SPARSE_MATRIX: %+v", sm)
	}
	if sm.Arrays != [3]string{"row", "col", "a"} {
		t.Errorf("trio: %v", sm.Arrays)
	}
	if pl.Partitioners["sma"] != "cg_balanced_partitioner_1" {
		t.Errorf("partitioner: %v", pl.Partitioners)
	}
	// Realise the partitioner on a skewed matrix.
	m := sparse.PowerLaw(40, 1.0, 12, 3)
	elem, cuts, err := pl.BindPartitioner("sma", m.RowPtr)
	if err != nil {
		t.Fatal(err)
	}
	if elem.N() != m.NNZ() {
		t.Errorf("element dist over %d, want %d", elem.N(), m.NNZ())
	}
	if len(cuts) != np+1 || cuts[0] != 0 || cuts[np] != m.NRows {
		t.Errorf("atom cuts %v", cuts)
	}
	if !strings.Contains(pl.Describe(), "CG_BALANCED_PARTITIONER_1") {
		t.Error("Describe missing partitioner")
	}
}

// The §5.1 ITERATION directive with continuations, exactly as printed
// in the paper.
const iterationSrc = `
!EXT$ ITERATION j ON PROCESSOR(j/np), &
!EXT$ PRIVATE(q(n)) WITH MERGE(+), &
!EXT$ NEW(pj, k), PRIVATE(q(n))
`

func TestParseIteration(t *testing.T) {
	prog, err := Parse(iterationSrc)
	if err != nil {
		t.Fatal(err)
	}
	its := Find[Iteration](prog)
	if len(its) != 1 {
		t.Fatalf("found %d ITERATION directives", len(its))
	}
	it := its[0]
	if it.Var != "j" {
		t.Errorf("var %q", it.Var)
	}
	if it.MapExpr.String() != "(j/np)" {
		t.Errorf("map expr %s", it.MapExpr)
	}
	if len(it.Clauses) != 3 {
		t.Fatalf("%d clauses", len(it.Clauses))
	}
	if it.Clauses[0].Kind != "private" || it.Clauses[0].Array != "q" || it.Clauses[0].Merge != "+" {
		t.Errorf("clause 0: %+v", it.Clauses[0])
	}
	if it.Clauses[1].Kind != "new" || len(it.Clauses[1].Names) != 2 {
		t.Errorf("clause 1: %+v", it.Clauses[1])
	}
	if it.Clauses[2].Kind != "private" || it.Clauses[2].Merge != "" {
		t.Errorf("clause 2: %+v", it.Clauses[2])
	}
}

func TestIterationMap(t *testing.T) {
	pl, err := Bind(MustParse(iterationSrc), 4, nil, map[string]int{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Iterations) != 1 {
		t.Fatal("no iteration bound")
	}
	f := pl.IterationMap(pl.Iterations[0])
	// j/np with np=4: iterations 0-3 -> 0, 4-7 -> 1, ... 12-15 -> 3,
	// 16+ wraps mod np.
	for j := 0; j < 16; j++ {
		if got := f(j); got != j/4 {
			t.Errorf("f(%d) = %d, want %d", j, got, j/4)
		}
	}
	if got := f(17); got != 0 { // 17/4 = 4 -> mod np = 0
		t.Errorf("f(17) = %d, want 0 (clamped)", got)
	}
}

func TestIterationWithDiscard(t *testing.T) {
	prog := MustParse(`!EXT$ ITERATION i ON PROCESSOR(i-1), PRIVATE(tmp(n)) WITH DISCARD`)
	it := Find[Iteration](prog)[0]
	if it.Clauses[0].Merge != "discard" {
		t.Errorf("merge %q", it.Clauses[0].Merge)
	}
	pl, err := Bind(prog, 3, nil, map[string]int{"n": 5})
	if err != nil {
		t.Fatal(err)
	}
	f := pl.IterationMap(it)
	if f(0) != 2 { // (0-1) mod 3 = 2
		t.Errorf("negative map should wrap, got %d", f(0))
	}
}

func TestAlign2DForms(t *testing.T) {
	// Scenario 1 and 2 matrix alignments.
	prog := MustParse(`
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ ALIGN A(:, *) WITH p(:)
`)
	aligns := Find[Align](prog)
	if len(aligns) != 1 {
		t.Fatal("align count")
	}
	a := aligns[0]
	if a.Source != "a" || len(a.SourceDims) != 2 {
		t.Fatalf("%+v", a)
	}
	if a.SourceDims[0].Kind != ":" || a.SourceDims[1].Kind != "*" {
		t.Errorf("dims %v", a.SourceDims)
	}
	prog2 := MustParse(`!HPF$ ALIGN row(ATOM:i) WITH col(i)`)
	a2 := Find[Align](prog2)[0]
	if a2.SourceDims[0].Kind != "atom" || a2.SourceDims[0].Name != "i" {
		t.Errorf("atom align dims %v", a2.SourceDims)
	}
	if a2.TargetDims[0].Kind != "ident" || a2.TargetDims[0].Name != "i" {
		t.Errorf("target dims %v", a2.TargetDims)
	}
}

func TestExprEval(t *testing.T) {
	prog := MustParse(`!HPF$ DISTRIBUTE v(BLOCK(2*n - 6/3 + 1))`)
	d := Find[Distribute](prog)[0]
	env := map[string]int{"n": 5}
	got, err := d.Pat.Size.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 { // 10 - 2 + 1
		t.Errorf("eval = %d, want 9", got)
	}
	if _, err := d.Pat.Size.Eval(map[string]int{}); err == nil {
		t.Error("undefined identifier should error")
	}
	// Division by zero.
	prog2 := MustParse(`!HPF$ DISTRIBUTE v(BLOCK(n/m))`)
	d2 := Find[Distribute](prog2)[0]
	if _, err := d2.Pat.Size.Eval(map[string]int{"n": 4, "m": 0}); err == nil {
		t.Error("division by zero should error")
	}
	// Unary minus.
	prog3 := MustParse(`!HPF$ DISTRIBUTE v(BLOCK(-n + 7))`)
	d3 := Find[Distribute](prog3)[0]
	v, err := d3.Pat.Size.Eval(map[string]int{"n": 3})
	if err != nil || v != 4 {
		t.Errorf("unary minus: %d %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`!HPF$ FROBNICATE x(BLOCK)`,
		`!HPF$ DISTRIBUTE p(TRIANGULAR)`,
		`!HPF$ DISTRIBUTE p(BLOCK`,
		`!HPF$ PROCESSORS PROCS(4)`,
		`!HPF$ ALIGN (:) WITH p(:)`, // bare spec without :: list
		`!HPF$ SPARSE_MATRIX (ELL) :: m(a, b, c)`,
		`!HPF$ SPARSE_MATRIX (CSR) :: m(a, b)`,
		`!EXT$ REDISTRIBUTE row(BLOCK)`, // not ATOM-qualified
		`!EXT$ ITERATION j PROCESSOR(j)`,
		`!EXT$ ITERATION j ON PROCESSOR(j), PRIVATE(q(n)) WITH MERGE(*)`,
		`!EXT$ ITERATION j ON PROCESSOR(j), BOGUS(q)`,
		`!HPF$ DISTRIBUTE p(BLOCK) extra`,
		`!HPF$ DYNAMIC, PROCESSORS :: P(4)`,
		`!HPF$ DISTRIBUTE p(BLOCK(#))`,
		`!EXT$ ITERATION j ON PROCESSOR(j), &`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	// Missing size.
	if _, err := Bind(MustParse(`!HPF$ DISTRIBUTE p(BLOCK)`), 2, nil, nil); err == nil {
		t.Error("missing size accepted")
	}
	// PROCESSORS mismatch.
	if _, err := Bind(MustParse(`!HPF$ PROCESSORS :: P(8)`), 2, nil, nil); err == nil {
		t.Error("processor mismatch accepted")
	}
	// Align size mismatch.
	src := `
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ ALIGN a(:) WITH p(:)
`
	if _, err := Bind(MustParse(src), 2, map[string]int{"p": 10, "a": 7}, nil); err == nil {
		t.Error("align size mismatch accepted")
	}
	// Align to undistributed target.
	if _, err := Bind(MustParse(`!HPF$ ALIGN a(:) WITH ghost(:)`), 2,
		map[string]int{"a": 4, "ghost": 4}, nil); err == nil {
		t.Error("align to unbound target accepted")
	}
	// Bad block size.
	if _, err := Bind(MustParse(`!HPF$ DISTRIBUTE p(BLOCK(n-9))`), 2,
		map[string]int{"p": 8}, map[string]int{"n": 5}); err == nil {
		t.Error("negative block size accepted")
	}
	// Infeasible block size: k*NP < n must be a bind error, not a panic
	// (fuzzer regression).
	if _, err := Bind(MustParse(`!HPF$ DISTRIBUTE p(BLOCK(n/7))`), 4,
		map[string]int{"p": 64}, map[string]int{"n": 64}); err == nil {
		t.Error("infeasible BLOCK(k) accepted")
	}
	// np validation.
	if _, err := Bind(MustParse(``), 0, nil, nil); err == nil {
		t.Error("np=0 accepted")
	}
	// BindAtomRedistribution without declarations.
	pl, err := Bind(MustParse(`!HPF$ DISTRIBUTE p(BLOCK)`), 2, map[string]int{"p": 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.BindAtomRedistribution("p", []int{0, 2, 4}); err == nil {
		t.Error("missing ATOM redistribution accepted")
	}
	if _, _, err := pl.BindPartitioner("p", []int{0, 2, 4}); err == nil {
		t.Error("missing partitioner accepted")
	}
}

func TestAlignChains(t *testing.T) {
	// b aligned with a, a aligned with p: chain resolution.
	src := `
!HPF$ ALIGN b(:) WITH a(:)
!HPF$ ALIGN a(:) WITH p(:)
!HPF$ DISTRIBUTE p(BLOCK)
`
	pl, err := Bind(MustParse(src), 2, map[string]int{"p": 10, "a": 10, "b": 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Arrays["b"].AlignedTo != "p" {
		t.Errorf("b aligned to %q, want p (chain root)", pl.Arrays["b"].AlignedTo)
	}
	if !dist.Same(pl.Arrays["b"].Dist, pl.Arrays["p"].Dist) {
		t.Error("chained alignment distribution mismatch")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse(`!HPF$ NOT_A_DIRECTIVE`)
}

func TestSplitDirectivePrefixes(t *testing.T) {
	for _, line := range []string{
		"!HPF$ DISTRIBUTE p(BLOCK)",
		"$HPF$ DISTRIBUTE p(BLOCK)",
		"!ext$ REDISTRIBUTE row(ATOM: BLOCK)",
		"  !HPF$  DISTRIBUTE p(BLOCK)  ",
	} {
		if _, _, ok := splitDirective(line); !ok {
			t.Errorf("%q not recognised", line)
		}
	}
	for _, line := range []string{"DO i = 1, n", "! plain comment", "C fortran comment"} {
		if _, _, ok := splitDirective(line); ok {
			t.Errorf("%q wrongly recognised", line)
		}
	}
}

func TestBindAtomCyclicRedistribution(t *testing.T) {
	src := `
!HPF$ DISTRIBUTE col(BLOCK)
!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
!EXT$ REDISTRIBUTE row(ATOM: CYCLIC)
`
	np := 3
	pl, err := Bind(MustParse(src), np,
		map[string]int{"col": 7, "row": 15}, map[string]int{"n": 6})
	if err != nil {
		t.Fatal(err)
	}
	csc := sparse.Figure1Matrix().ToCSC()
	d, err := pl.BindAtomRedistribution("row", csc.ColPtr)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ATOM:CYCLIC" {
		t.Fatalf("got %s", d.Name())
	}
	// Column j (atom j) must live on processor j mod np, entirely.
	for j := 0; j < csc.NCols; j++ {
		lo, hi := csc.ColPtr[j], csc.ColPtr[j+1]
		for e := lo; e < hi; e++ {
			if d.Owner(e) != j%np {
				t.Fatalf("column %d element %d on %d, want %d", j, e, d.Owner(e), j%np)
			}
		}
	}
}

func TestGreedyPartitionerBinding(t *testing.T) {
	src := `
!HPF$ DISTRIBUTE p(BLOCK)
!EXT$ REDISTRIBUTE smA USING CG_GREEDY_PARTITIONER
`
	pl, err := Bind(MustParse(src), 2, map[string]int{"p": 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := sparse.PowerLaw(30, 1.0, 10, 2)
	elem, cuts, err := pl.BindPartitioner("sma", m.RowPtr)
	if err != nil {
		t.Fatal(err)
	}
	if elem.N() != m.NNZ() || len(cuts) != 3 {
		t.Errorf("greedy binding wrong: %d %v", elem.N(), cuts)
	}
	// Unknown partitioner name.
	src2 := `
!HPF$ DISTRIBUTE p(BLOCK)
!EXT$ REDISTRIBUTE smA USING METIS_MAGIC
`
	pl2, err := Bind(MustParse(src2), 2, map[string]int{"p": 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl2.BindPartitioner("sma", m.RowPtr); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestParserErrorBranches(t *testing.T) {
	bad := []string{
		`!HPF$ PROCESSORS :: P`,         // missing (count)
		`!HPF$ PROCESSORS :: P(4`,       // missing )
		`!HPF$ PROCESSORS :: 4(4)`,      // name not ident
		`!HPF$ PROCESSORS P(4)`,         // missing ::
		`!EXT$ INDIVISABLE row(ATOM i)`, // missing colon
		`!EXT$ INDIVISABLE row(BLOB:i) :: col(i:i+1)`,
		`!EXT$ INDIVISABLE row(ATOM:i) col(i:i+1)`,    // missing ::
		`!EXT$ INDIVISABLE row(ATOM:i) :: col(i i+1)`, // missing colon in section
		`!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1`,  // missing )
		`!HPF$ ALIGN a(:) p(:)`,                       // missing WITH
		`!HPF$ DISTRIBUTE p()`,                        // empty pattern
		`!HPF$ DISTRIBUTE p(BLOCK(2)`,                 // missing )
		`!EXT$ ITERATION j ON PROCESSOR j`,            // missing (
		`!HPF$ ALIGN a(%) WITH p(:)`,                  // bad dim char
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokKind{tokEOF, tokIdent, tokNumber, tokLParen, tokRParen,
		tokComma, tokColon, tokDoubleColon, tokPlus, tokMinus, tokStar, tokSlash, tokKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestLexerRejectsNonASCIIIdentifiers(t *testing.T) {
	// Fuzzer regression: a Latin-1 byte must not lex as a letter (the
	// formatter round trip breaks if it does).
	if _, err := Parse("!HPF$ DISTRIBUTE A(BLOCK((\xf3)))"); err == nil {
		t.Error("non-ASCII identifier byte accepted")
	}
	if _, err := Parse("!HPF$ DISTRIBUTE grün(BLOCK)"); err == nil {
		t.Error("UTF-8 identifier accepted (Fortran identifiers are ASCII)")
	}
}
