package hpf

import (
	"reflect"
	"strings"
	"testing"
)

// Format must round-trip: reparsing the formatted program yields an
// equivalent AST (modulo line numbers).
func TestFormatRoundTrip(t *testing.T) {
	sources := []string{
		figure2,
		sec521,
		sec522,
		iterationSrc,
		"!EXT$ ITERATION i ON PROCESSOR(i - 1), PRIVATE(tmp(n)) WITH DISCARD, NEW(a, b)",
		"!HPF$ ALIGN A(:, *) WITH p(:)",
		"!HPF$ ALIGN row(ATOM:i) WITH col(i)",
		"!HPF$ DISTRIBUTE v(CYCLIC(2*k + 1))",
	}
	for _, src := range sources {
		orig := MustParse(src)
		formatted := Format(orig)
		back, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not reparse:\n%s\nerror: %v", formatted, err)
		}
		if len(back.Directives) != len(orig.Directives) {
			t.Fatalf("round trip changed directive count %d -> %d:\n%s",
				len(orig.Directives), len(back.Directives), formatted)
		}
		for i := range orig.Directives {
			a := canonical(orig.Directives[i])
			b := canonical(back.Directives[i])
			if !reflect.DeepEqual(a, b) {
				t.Errorf("directive %d changed:\n  orig: %#v\n  back: %#v\n  text: %s",
					i, a, b, FormatDirective(orig.Directives[i]))
			}
		}
	}
}

// canonical strips line numbers (they legitimately change) by
// re-rendering; two directives are equivalent iff they format equally.
func canonical(d Directive) string { return FormatDirective(d) }

func TestFormatSpecificForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"!hpf$ processors :: procs(NP)", "!HPF$ PROCESSORS :: PROCS(np)"},
		{"!HPF$ DISTRIBUTE p(BLOCK)", "!HPF$ DISTRIBUTE p(BLOCK)"},
		{"!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)", "!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)"},
		{"!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))", "!HPF$ DISTRIBUTE row(CYCLIC(((n+np)-1)/np))"},
		{"!EXT$ REDISTRIBUTE row(ATOM: BLOCK)", "!EXT$ REDISTRIBUTE row(ATOM: BLOCK)"},
		{"!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1", "!EXT$ REDISTRIBUTE sma USING CG_BALANCED_PARTITIONER_1"},
		{"!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)", "!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)"},
		{"!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)", "!HPF$ SPARSE_MATRIX (CSR) :: sma(row, col, a)"},
	}
	for _, c := range cases {
		prog := MustParse(c.src)
		got := strings.TrimSpace(Format(prog))
		if got != c.want {
			t.Errorf("Format(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFormatAlignExtras(t *testing.T) {
	prog := MustParse("!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b")
	got := strings.TrimSpace(Format(prog))
	if got != "!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b" {
		t.Errorf("got %q", got)
	}
}
