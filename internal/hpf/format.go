package hpf

import (
	"fmt"
	"strings"
)

// This file implements the directive formatter: every Directive can
// render itself back to canonical source form, and Format renders a
// whole Program. The formatter round-trips through the parser
// (Parse(Format(p)) produces an equivalent program), which the tests
// verify — the property that makes the package usable as a directive
// pretty-printer and not just a reader.

// Format renders all directives of a program in canonical form, one
// per line with the appropriate sentinel (!HPF$ for standard
// directives, !EXT$ for the paper's proposed extensions).
func Format(p *Program) string {
	var b strings.Builder
	for _, d := range p.Directives {
		b.WriteString(FormatDirective(d))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatDirective renders one directive with its sentinel.
func FormatDirective(d Directive) string {
	switch d := d.(type) {
	case Processors:
		return fmt.Sprintf("!HPF$ PROCESSORS :: %s(%s)", strings.ToUpper(d.Name), exprSrc(d.Count))
	case Distribute:
		prefix := "!HPF$ "
		if d.Dynamic {
			prefix += "DYNAMIC, "
		}
		return fmt.Sprintf("%sDISTRIBUTE %s(%s)", prefix, d.Array, d.Pat)
	case Align:
		prefix := "!HPF$ "
		if d.Dynamic {
			prefix += "DYNAMIC, "
		}
		src := d.Source
		out := fmt.Sprintf("%sALIGN %s%s WITH %s%s", prefix, src, dimsSrc(d.SourceDims), d.Target, dimsSrc(d.TargetDims))
		if len(d.Extra) > 0 {
			out += " :: " + strings.Join(d.Extra, ", ")
		}
		return out
	case Redistribute:
		if d.Partitioner != "" {
			return fmt.Sprintf("!EXT$ REDISTRIBUTE %s USING %s", d.Array, strings.ToUpper(d.Partitioner))
		}
		return fmt.Sprintf("!EXT$ REDISTRIBUTE %s(%s)", d.Array, *d.Pat)
	case Indivisable:
		return fmt.Sprintf("!EXT$ INDIVISABLE %s(ATOM:%s) :: %s(%s:%s)",
			d.Data, d.AtomVar, d.Indir, exprSrc(d.LoExpr), exprSrc(d.HiExpr))
	case SparseMatrix:
		return fmt.Sprintf("!HPF$ SPARSE_MATRIX (%s) :: %s(%s, %s, %s)",
			strings.ToUpper(d.Format), d.Name, d.Arrays[0], d.Arrays[1], d.Arrays[2])
	case Iteration:
		out := fmt.Sprintf("!EXT$ ITERATION %s ON PROCESSOR(%s)", d.Var, exprSrc(d.MapExpr))
		for _, cl := range d.Clauses {
			out += ", " + clauseSrc(cl)
		}
		return out
	}
	return fmt.Sprintf("! unknown directive %T", d)
}

func clauseSrc(cl IterClause) string {
	switch cl.Kind {
	case "private":
		out := fmt.Sprintf("PRIVATE(%s(%s))", cl.Array, exprSrc(cl.Size))
		switch cl.Merge {
		case "+":
			out += " WITH MERGE(+)"
		case "discard":
			out += " WITH DISCARD"
		}
		return out
	case "new":
		return fmt.Sprintf("NEW(%s)", strings.Join(cl.Names, ", "))
	}
	return "! unknown clause"
}

func dimsSrc(dims []DimSpec) string {
	if len(dims) == 0 {
		return "(:)"
	}
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// exprSrc strips the outermost parentheses Expr.String adds, to keep
// the canonical form close to hand-written source.
func exprSrc(e Expr) string {
	s := e.String()
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		// Only strip when the parens wrap the whole expression.
		depth := 0
		for i, c := range s {
			switch c {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 && i != len(s)-1 {
					return s
				}
			}
		}
		return s[1 : len(s)-1]
	}
	return s
}
