package hpf

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that every accepted
// program re-binds without crashing when sizes are supplied for the
// arrays it mentions. Run with `go test -fuzz=FuzzParse ./internal/hpf`
// for real fuzzing; as a plain test it exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		figure2,
		sec521,
		sec522,
		iterationSrc,
		"!HPF$ DISTRIBUTE p(BLOCK)",
		"!HPF$ DISTRIBUTE p(CYCLIC(3))",
		"!HPF$ ALIGN a(:) WITH b(:)",
		"!EXT$ REDISTRIBUTE x(ATOM: BLOCK)",
		"!EXT$ ITERATION i ON PROCESSOR(i), NEW(a, b)",
		"!HPF$ PROCESSORS :: P((2+2)*4)",
		"!HPF$ DISTRIBUTE p(BLOCK((n+np-1)/np))",
		"!HPF$ SPARSE_MATRIX (CSC) :: m(x, y, z)",
		"!hpf$ distribute lower(block)",
		"$HPF$ DISTRIBUTE p(BLOCK)",
		"!EXT$ ITERATION j ON PROCESSOR(j/np), &\n!EXT$ PRIVATE(q(n)) WITH DISCARD",
		"!HPF$ DISTRIBUTE p(BLOCK) garbage",
		"!HPF$ ALIGN (:) WITH p(:)",
		"!HPF$ ",
		"!HPF$ DISTRIBUTE p(BLOCK(1/0))",
		strings.Repeat("!HPF$ DISTRIBUTE p(BLOCK)\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Formatter round trip: everything the parser accepts must
		// format to something the parser accepts again, with the same
		// directive count and identical canonical forms.
		back, err := Parse(Format(prog))
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v", err)
		}
		if len(back.Directives) != len(prog.Directives) {
			t.Fatalf("format round trip changed directive count %d -> %d",
				len(prog.Directives), len(back.Directives))
		}
		for i := range prog.Directives {
			if FormatDirective(prog.Directives[i]) != FormatDirective(back.Directives[i]) {
				t.Fatalf("directive %d not canonical under round trip", i)
			}
		}
		// Accepted programs must bind (or fail cleanly) with generous
		// sizes for any arrays mentioned.
		sizes := map[string]int{}
		for _, d := range prog.Directives {
			switch d := d.(type) {
			case Distribute:
				sizes[d.Array] = 64
			case Align:
				sizes[d.Source] = 64
				sizes[d.Target] = 64
				for _, e := range d.Extra {
					sizes[e] = 64
				}
			}
		}
		delete(sizes, "")
		_, _ = Bind(prog, 4, sizes, map[string]int{"n": 64, "nz": 256})
	})
}
