package hpf

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads directive source text (a whole file or fragment; plain
// Fortran lines are skipped) and returns the parsed program.
// Continuation lines ending in `&` are joined, as in Figure 2's
// ITERATION directive.
func Parse(src string) (*Program, error) {
	prog := &Program{}
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		raw := lines[i]
		lineNo := i + 1
		_, body, ok := splitDirective(raw)
		if !ok {
			if strings.TrimSpace(raw) != "" {
				prog.Skipped = append(prog.Skipped, raw)
			}
			i++
			continue
		}
		// Join continuations.
		for strings.HasSuffix(strings.TrimSpace(body), "&") {
			body = strings.TrimSuffix(strings.TrimSpace(body), "&")
			i++
			if i >= len(lines) {
				return nil, fmt.Errorf("hpf: line %d: continuation at end of input", lineNo)
			}
			_, next, ok := splitDirective(lines[i])
			if !ok {
				return nil, fmt.Errorf("hpf: line %d: continuation must be a directive line", i+1)
			}
			body += " " + next
		}
		i++
		d, err := parseDirective(body, lineNo)
		if err != nil {
			return nil, err
		}
		prog.Directives = append(prog.Directives, d)
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	line int
}

func parseDirective(body string, line int) (Directive, error) {
	toks, err := lex(body, line)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, line: line}
	d, err := p.directive()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return d, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("hpf: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokIdent && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf("expected %s, found %q", k, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != kw {
		return p.errf("expected %q, found %q", strings.ToUpper(kw), t.text)
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent)
	return t.text, err
}

func (p *parser) directive() (Directive, error) {
	dynamic := false
	if p.acceptKeyword("dynamic") {
		dynamic = true
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
	}
	kw, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch kw {
	case "processors":
		if dynamic {
			return nil, p.errf("DYNAMIC cannot qualify PROCESSORS")
		}
		return p.processors()
	case "distribute":
		return p.distribute(dynamic)
	case "align":
		return p.align(dynamic)
	case "redistribute":
		if dynamic {
			return nil, p.errf("DYNAMIC cannot qualify REDISTRIBUTE")
		}
		return p.redistribute()
	case "indivisable", "indivisible":
		return p.indivisable()
	case "sparse_matrix":
		return p.sparseMatrix()
	case "iteration":
		return p.iteration()
	}
	return nil, p.errf("unknown directive %q", strings.ToUpper(kw))
}

// processors parses `PROCESSORS :: name(count)`.
func (p *parser) processors() (Directive, error) {
	if _, err := p.expect(tokDoubleColon); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	count, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return Processors{base{p.line}, name, count}, nil
}

// pattern parses `[ATOM:] (BLOCK|CYCLIC) [(expr)]`.
func (p *parser) pattern() (Pattern, error) {
	var pat Pattern
	if p.acceptKeyword("atom") {
		if _, err := p.expect(tokColon); err != nil {
			return pat, err
		}
		pat.Atom = true
	}
	kw, err := p.ident()
	if err != nil {
		return pat, err
	}
	switch kw {
	case "block":
		pat.Kind = PatBlock
	case "cyclic":
		pat.Kind = PatCyclic
	default:
		return pat, p.errf("expected BLOCK or CYCLIC, found %q", strings.ToUpper(kw))
	}
	if p.accept(tokLParen) {
		pat.Size, err = p.expr()
		if err != nil {
			return pat, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return pat, err
		}
	}
	return pat, nil
}

// distribute parses `DISTRIBUTE array(pattern)`.
func (p *parser) distribute(dynamic bool) (Directive, error) {
	arr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	pat, err := p.pattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return Distribute{base{p.line}, arr, pat, dynamic}, nil
}

// dims parses a parenthesised dim-spec list: (:), (:, *), (ATOM:i), (i).
func (p *parser) dims() ([]DimSpec, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []DimSpec
	for {
		switch {
		case p.accept(tokColon):
			out = append(out, DimSpec{Kind: ":"})
		case p.accept(tokStar):
			out = append(out, DimSpec{Kind: "*"})
		case p.peek().kind == tokIdent && p.peek().text == "atom":
			p.pos++
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			out = append(out, DimSpec{Kind: "atom", Name: name})
		case p.peek().kind == tokIdent:
			name, _ := p.ident()
			out = append(out, DimSpec{Kind: "ident", Name: name})
		default:
			return nil, p.errf("expected dimension spec, found %q", p.peek().text)
		}
		if !p.accept(tokComma) {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return out, nil
}

// align parses both forms:
//
//	ALIGN (:) WITH p(:) :: q, r, x, b
//	ALIGN a(:) WITH col(:)
//	ALIGN A(:, *) WITH p(:)
//	ALIGN row(ATOM:i) WITH col(i)
func (p *parser) align(dynamic bool) (Directive, error) {
	a := Align{base: base{p.line}, Dynamic: dynamic}
	var err error
	if p.peek().kind == tokIdent {
		a.Source, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	a.SourceDims, err = p.dims()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	a.Target, err = p.ident()
	if err != nil {
		return nil, err
	}
	a.TargetDims, err = p.dims()
	if err != nil {
		return nil, err
	}
	if p.accept(tokDoubleColon) {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			a.Extra = append(a.Extra, name)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if a.Source == "" && len(a.Extra) == 0 {
		return nil, p.errf("ALIGN with bare spec needs a :: array list")
	}
	return a, nil
}

// redistribute parses `REDISTRIBUTE arr(ATOM: pattern)` or
// `REDISTRIBUTE arr USING partitioner`.
func (p *parser) redistribute() (Directive, error) {
	arr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("using") {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Redistribute{base{p.line}, arr, nil, part}, nil
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	pat, err := p.pattern()
	if err != nil {
		return nil, err
	}
	if !pat.Atom {
		return nil, p.errf("REDISTRIBUTE pattern must be ATOM-qualified in the extension syntax")
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return Redistribute{base{p.line}, arr, &pat, ""}, nil
}

// indivisable parses `INDIVISABLE data(ATOM:i) :: indir(lo:hi)`.
func (p *parser) indivisable() (Directive, error) {
	data, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("atom"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	atomVar, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDoubleColon); err != nil {
		return nil, err
	}
	indir, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return Indivisable{base{p.line}, data, atomVar, indir, lo, hi}, nil
}

// sparseMatrix parses `SPARSE_MATRIX (FMT) :: name(a1, a2, a3)`.
func (p *parser) sparseMatrix() (Directive, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	format, err := p.ident()
	if err != nil {
		return nil, err
	}
	if format != "csr" && format != "csc" {
		return nil, p.errf("SPARSE_MATRIX format must be CSR or CSC, found %q", strings.ToUpper(format))
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDoubleColon); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var arrays [3]string
	for i := 0; i < 3; i++ {
		arrays[i], err = p.ident()
		if err != nil {
			return nil, err
		}
		if i < 2 {
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return SparseMatrix{base{p.line}, format, name, arrays}, nil
}

// iteration parses the §5.1 directive
// `ITERATION j ON PROCESSOR(expr) {, clause}`.
func (p *parser) iteration() (Directive, error) {
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("processor"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	mapExpr, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	it := Iteration{base: base{p.line}, Var: v, MapExpr: mapExpr}
	for p.accept(tokComma) {
		cl, err := p.iterClause()
		if err != nil {
			return nil, err
		}
		it.Clauses = append(it.Clauses, cl)
	}
	return it, nil
}

func (p *parser) iterClause() (IterClause, error) {
	var cl IterClause
	kw, err := p.ident()
	if err != nil {
		return cl, err
	}
	switch kw {
	case "private":
		cl.Kind = "private"
		if _, err := p.expect(tokLParen); err != nil {
			return cl, err
		}
		cl.Array, err = p.ident()
		if err != nil {
			return cl, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return cl, err
		}
		cl.Size, err = p.expr()
		if err != nil {
			return cl, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return cl, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return cl, err
		}
		if p.acceptKeyword("with") {
			switch {
			case p.acceptKeyword("merge"):
				if _, err := p.expect(tokLParen); err != nil {
					return cl, err
				}
				if _, err := p.expect(tokPlus); err != nil {
					return cl, p.errf("only MERGE(+) is defined")
				}
				if _, err := p.expect(tokRParen); err != nil {
					return cl, err
				}
				cl.Merge = "+"
			case p.acceptKeyword("discard"):
				cl.Merge = "discard"
			default:
				return cl, p.errf("expected MERGE or DISCARD after WITH")
			}
		}
	case "new":
		cl.Kind = "new"
		if _, err := p.expect(tokLParen); err != nil {
			return cl, err
		}
		for {
			name, err := p.ident()
			if err != nil {
				return cl, err
			}
			cl.Names = append(cl.Names, name)
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return cl, err
		}
	default:
		return cl, p.errf("unknown ITERATION clause %q", strings.ToUpper(kw))
	}
	return cl, nil
}

// expr parses additive expressions with standard precedence.
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPlus):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = BinExpr{'+', l, r}
		case p.accept(tokMinus):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = BinExpr{'-', l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokStar):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = BinExpr{'*', l, r}
		case p.accept(tokSlash):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = BinExpr{'/', l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) factor() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumExpr(n), nil
	case tokIdent:
		p.pos++
		return IdentExpr(t.text), nil
	case tokLParen:
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokMinus:
		p.pos++
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		return BinExpr{'-', NumExpr(0), e}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}
