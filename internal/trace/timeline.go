package trace

import (
	"fmt"
	"io"
	"strings"
)

// Timeline activity codes, in increasing display priority: when two
// activities overlap inside one bucket the higher-priority character
// wins, so a bucket that contains any compute shows compute.
const (
	tlIdle    = '.'
	tlWait    = 'w' // receiver blocked waiting for a message head
	tlSend    = 's' // send start-up overhead
	tlRecv    = 'r' // message body transfer into this rank
	tlCompute = 'C'
	tlFault   = '!' // injected fault marker (crash, drop, spike, ...)
)

var tlPriority = map[rune]int{tlIdle: 0, tlWait: 1, tlSend: 2, tlRecv: 3, tlCompute: 4, tlFault: 5}

// WriteTimeline renders the run as an ASCII per-rank timeline, one row
// per processor and width buckets across [0, ModelTime]. It is the
// quick-look companion to the Chrome export: `C` compute, `r` receive
// transfer, `s` send overhead, `w` waiting, `.` idle.
func WriteTimeline(w io.Writer, r *Recorder, width int) error {
	if width <= 0 {
		width = 80
	}
	total := r.mtime
	if total <= 0 {
		// Unsealed or empty run: fall back to the latest event end.
		for rank := 0; rank < r.np; rank++ {
			for _, e := range r.logs[rank].events {
				if e.End > total {
					total = e.End
				}
			}
		}
	}
	if total <= 0 {
		_, err := fmt.Fprintln(w, "trace: empty timeline (no events, zero makespan)")
		return err
	}
	if _, err := fmt.Fprintf(w, "timeline %s: %d ranks, %.6gs modeled, %.4gs/char\n",
		r.label, r.np, total, total/float64(width)); err != nil {
		return err
	}
	dt := total / float64(width)
	for rank := 0; rank < r.np; rank++ {
		row := make([]rune, width)
		for i := range row {
			row[i] = tlIdle
		}
		paint := func(from, to float64, c rune) {
			if to <= from {
				return
			}
			lo := int(from / dt)
			hi := int(to / dt)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				if tlPriority[c] > tlPriority[row[i]] {
					row[i] = c
				}
			}
		}
		for _, e := range r.primitives(rank) {
			switch e.Kind {
			case KindCompute:
				paint(e.Start, e.End, tlCompute)
			case KindSend:
				paint(e.Start, e.End, tlSend)
			case KindRecv:
				bodyFrom := e.Start
				if e.Head > e.Start {
					paint(e.Start, e.Head, tlWait)
					bodyFrom = e.Head
				}
				paint(bodyFrom, e.End, tlRecv)
			case KindFault:
				// Instants: widen to one bucket so the marker is visible.
				paint(e.Start, e.Start+dt/2, tlFault)
			}
		}
		if _, err := fmt.Fprintf(w, "r%-3d |%s|\n", rank, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s\nlegend: C compute, r recv transfer, s send overhead, w wait, ! fault, . idle\n",
		strings.Repeat("-", width+6))
	return err
}
