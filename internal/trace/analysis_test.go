package trace_test

import (
	"math"
	"testing"

	"hpfcg/internal/trace"
)

// handBuilt constructs a two-rank trace by hand, mimicking the machine
// semantics: rank 0 computes 2s then spends 1s of send startup
// (depart 3.0); the head reaches rank 1 at 3.5 and the body takes
// 0.5s; rank 1 computed 1s first and computes 1s more after the
// receive. The only dependent chain is 2+1+0.5+0.5+1 = 5s.
func handBuilt() *trace.Recorder {
	r := trace.NewRecorder(2)
	r.Rank(0).Add(trace.Event{Kind: trace.KindCompute, Peer: -1, Flops: 200, Start: 0, End: 2})
	r.Rank(0).Add(trace.Event{Kind: trace.KindSend, Peer: 1, Tag: 5, Bytes: 40, Start: 2, End: 3})
	r.Rank(1).Add(trace.Event{Kind: trace.KindCompute, Peer: -1, Flops: 100, Start: 0, End: 1})
	r.Rank(1).Add(trace.Event{Kind: trace.KindRecv, Peer: 0, Tag: 5, Bytes: 40, Start: 1, End: 4, Depart: 3, Head: 3.5})
	r.Rank(1).Add(trace.Event{Kind: trace.KindCompute, Peer: -1, Flops: 100, Start: 4, End: 5})
	r.Seal(5)
	return r
}

func TestCriticalPathExactValue(t *testing.T) {
	ps := trace.CriticalPath(handBuilt())
	if math.Abs(ps.Length-5) > 1e-15 {
		t.Errorf("Length = %g, want 5", ps.Length)
	}
	if ps.EndRank != 1 {
		t.Errorf("EndRank = %d, want 1", ps.EndRank)
	}
	// Path: compute(2) -> send(1) -> recv(latency .5 + body .5) ->
	// compute(1); rank 1's first compute is slack, not on the path.
	if ps.Events != 4 {
		t.Errorf("Events = %d, want 4", ps.Events)
	}
	if math.Abs(ps.Compute-3) > 1e-15 || math.Abs(ps.SendOverhead-1) > 1e-15 || math.Abs(ps.Network-1) > 1e-15 {
		t.Errorf("breakdown = compute %g, overhead %g, network %g; want 3/1/1", ps.Compute, ps.SendOverhead, ps.Network)
	}
	if sum := ps.Compute + ps.SendOverhead + ps.Network; math.Abs(sum-ps.Length) > 1e-15 {
		t.Errorf("breakdown sum %g != length %g", sum, ps.Length)
	}
}

// TestCriticalPathIgnoresNonBindingArrival: if the receiver was still
// busy when the message head arrived, the message edge is not on the
// path and only the body transfer is charged.
func TestCriticalPathIgnoresNonBindingArrival(t *testing.T) {
	r := trace.NewRecorder(2)
	r.Rank(0).Add(trace.Event{Kind: trace.KindSend, Peer: 1, Tag: 1, Bytes: 8, Start: 0, End: 0.1})
	// Rank 1 computes until 3.0, far past the head arrival at 0.2.
	r.Rank(1).Add(trace.Event{Kind: trace.KindCompute, Peer: -1, Flops: 10, Start: 0, End: 3})
	r.Rank(1).Add(trace.Event{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 8, Start: 3, End: 3.4, Depart: 0.1, Head: 0.2})
	r.Seal(3.4)
	ps := trace.CriticalPath(r)
	if math.Abs(ps.Length-3.4) > 1e-15 {
		t.Errorf("Length = %g, want 3.4", ps.Length)
	}
	// compute 3 + body 0.4; the send and the head latency are slack.
	if math.Abs(ps.Compute-3) > 1e-15 || ps.SendOverhead != 0 || math.Abs(ps.Network-0.4) > 1e-15 {
		t.Errorf("breakdown = %+v", ps)
	}
}

func TestMatrixFromHandBuiltTrace(t *testing.T) {
	cm := trace.Matrix(handBuilt())
	if cm.Msgs[0][1] != 1 || cm.Bytes[0][1] != 40 {
		t.Errorf("matrix[0][1] = %d msgs / %d bytes, want 1/40", cm.Msgs[0][1], cm.Bytes[0][1])
	}
	if got := cm.RowTotals(); got[0] != 40 || got[1] != 0 {
		t.Errorf("RowTotals = %v", got)
	}
	if got := cm.ColTotals(); got[0] != 0 || got[1] != 40 {
		t.Errorf("ColTotals = %v", got)
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	r := trace.NewRecorder(3)
	r.Seal(0)
	ps := trace.CriticalPath(r)
	if ps.Length != 0 || ps.Events != 0 {
		t.Errorf("empty trace: %+v", ps)
	}
}

func TestCriticalPathUnmatchedRecvPanics(t *testing.T) {
	r := trace.NewRecorder(2)
	r.Rank(1).Add(trace.Event{Kind: trace.KindRecv, Peer: 0, Tag: 1, Bytes: 8, Start: 0, End: 1, Depart: 0, Head: 0.5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for a receive with no matching send")
		}
	}()
	trace.CriticalPath(r)
}
