package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/fault"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

// runFaultySpMV runs the CSR SpMV with both a tracer and a non-fatal
// fault plan (straggle + spike) attached, so injected events land in
// the recorder without killing the run.
func runFaultySpMV(t *testing.T) *trace.Recorder {
	t.Helper()
	n := 256
	np := 4
	A := sparse.Banded(n, 4)
	d := dist.NewBlock(n, np)
	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
	tr := &trace.Tracer{}
	m.AttachTracer(tr)
	inj, err := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{Kind: fault.Straggle, Rank: 1, At: 0, Factor: 4, Dst: -1},
		{Kind: fault.Spike, Rank: 2, At: 0, Delay: 1e-4, Dst: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachInjector(inj)
	m.Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.Fill(1)
		op.Apply(x, y)
	})
	return tr.Runs()[0]
}

// TestChromeTraceExportsFaultInstants: injected fault events export as
// Perfetto thread-scoped instant events (ph "i", s "t", cat "fault")
// on the affected rank's row, and the counts match the recorder.
func TestChromeTraceExportsFaultInstants(t *testing.T) {
	rec := runFaultySpMV(t)

	wantFaults := 0
	faultRanks := map[int]bool{}
	for _, e := range rec.Events() {
		if e.Kind == trace.KindFault {
			wantFaults++
			faultRanks[e.Rank] = true
			if e.Start != e.End {
				t.Errorf("fault event %q has nonzero duration %g", e.Op, e.Duration())
			}
		}
	}
	if wantFaults == 0 {
		t.Fatal("straggle+spike plan produced no fault events in the recorder")
	}
	if !faultRanks[1] || !faultRanks[2] {
		t.Errorf("fault events on ranks %v, want both rank 1 (straggle) and 2 (spike)", faultRanks)
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	instants := 0
	ops := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "fault" {
			continue
		}
		instants++
		ops[ev.Name] = true
		if ev.Ph != "i" || ev.S != "t" {
			t.Errorf("fault event %q exported as ph=%q s=%q, want instant ph=i s=t", ev.Name, ev.Ph, ev.S)
		}
		if ev.Dur != 0 {
			t.Errorf("fault instant %q has duration %g", ev.Name, ev.Dur)
		}
	}
	if instants != wantFaults {
		t.Errorf("%d fault instants exported, recorder holds %d fault events", instants, wantFaults)
	}
	if !ops["straggle"] || !ops["spike"] {
		t.Errorf("exported fault ops %v, want straggle and spike markers", ops)
	}

	// The ASCII timeline marks the same instants with '!'.
	var tl bytes.Buffer
	if err := trace.WriteTimeline(&tl, rec, 60); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if !strings.Contains(tl.String(), "!") {
		t.Errorf("timeline shows no fault marker:\n%s", tl.String())
	}

	// Fault instants must not corrupt the critical-path analysis.
	ps := trace.CriticalPath(rec)
	if ps.Length <= 0 || ps.Length > rec.ModelTime()+1e-12 {
		t.Errorf("critical path %g out of (0, makespan=%g]", ps.Length, rec.ModelTime())
	}
}
