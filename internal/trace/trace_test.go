package trace_test

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

func tracedMachine(np int) (*comm.Machine, *trace.Tracer) {
	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
	tr := &trace.Tracer{}
	m.AttachTracer(tr)
	return m, tr
}

func TestRecorderCapturesSendRecvCompute(t *testing.T) {
	m, tr := tracedMachine(2)
	rs := m.Run(func(p *comm.Proc) {
		if p.Rank() == 0 {
			p.Compute(100)
			p.SendFloats(1, 7, make([]float64, 50))
		} else {
			p.RecvFloats(0, 7)
			p.Compute(10)
		}
	})
	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("Runs() = %d recorders, want 1", len(runs))
	}
	rec := runs[0]
	if !rec.Sealed() {
		t.Fatal("recorder not sealed after Run")
	}
	if rec.ModelTime() != rs.ModelTime {
		t.Errorf("ModelTime() = %g, want %g", rec.ModelTime(), rs.ModelTime)
	}
	r0 := rec.RankEvents(0)
	if len(r0) != 2 || r0[0].Kind != trace.KindCompute || r0[1].Kind != trace.KindSend {
		t.Fatalf("rank 0 events = %+v, want [compute send]", r0)
	}
	if r0[1].Peer != 1 || r0[1].Tag != 7 || r0[1].Bytes != 400 {
		t.Errorf("send event = %+v", r0[1])
	}
	r1 := rec.RankEvents(1)
	if len(r1) != 2 || r1[0].Kind != trace.KindRecv || r1[1].Kind != trace.KindCompute {
		t.Fatalf("rank 1 events = %+v, want [recv compute]", r1)
	}
	recv := r1[0]
	if recv.Peer != 0 || recv.Bytes != 400 {
		t.Errorf("recv event = %+v", recv)
	}
	if recv.Depart <= 0 || recv.Head < recv.Depart || recv.End < recv.Head {
		t.Errorf("recv timestamps inconsistent: %+v", recv)
	}
	for _, e := range rec.Events() {
		if e.End < e.Start {
			t.Errorf("event %+v has End < Start", e)
		}
	}
}

func TestCollectiveSpansRecorded(t *testing.T) {
	m, tr := tracedMachine(4)
	m.Run(func(p *comm.Proc) {
		p.Barrier()
		p.AllreduceScalar(float64(p.Rank()), comm.OpSum)
	})
	rec := tr.Runs()[0]
	for rank := 0; rank < 4; rank++ {
		got := map[string]int{}
		for _, e := range rec.RankEvents(rank) {
			if e.Kind == trace.KindCollective {
				got[e.Op]++
			}
		}
		// Allreduce = allreduce span + nested reduce and bcast spans.
		for _, op := range []string{"barrier", "allreduce", "reduce", "bcast"} {
			if got[op] != 1 {
				t.Errorf("rank %d: %d %q spans, want 1 (have %v)", rank, got[op], op, got)
			}
		}
	}
}

func TestTracerCollectsOneRecorderPerRun(t *testing.T) {
	m, tr := tracedMachine(2)
	for i := 0; i < 3; i++ {
		m.Run(func(p *comm.Proc) { p.Barrier() })
	}
	runs := tr.Runs()
	if len(runs) != 3 {
		t.Fatalf("Runs() = %d, want 3", len(runs))
	}
	for i, rec := range runs {
		if !rec.Sealed() {
			t.Errorf("run %d not sealed", i)
		}
		if rec.NumEvents() == 0 {
			t.Errorf("run %d recorded no events", i)
		}
	}
	if tr.Last() != runs[2] {
		t.Error("Last() is not the most recent recorder")
	}
}

// TestMatrixMatchesProcStats checks the acceptance criterion that the
// trace-derived communication matrix agrees with the machine's own
// accounting, per rank on both the send and receive sides.
func TestMatrixMatchesProcStats(t *testing.T) {
	m, tr := tracedMachine(4)
	rs := m.Run(func(p *comm.Proc) {
		p.AllgatherV(make([]float64, 8), []int{8, 8, 8, 8})
		p.AlltoallV([][]float64{{1}, {2, 2}, {3}, {4, 4, 4}})
		p.Barrier()
	})
	rec := tr.Runs()[0]
	cm := trace.Matrix(rec)
	rows, cols := cm.RowTotals(), cm.ColTotals()
	for r := 0; r < 4; r++ {
		if rows[r] != rs.Procs[r].BytesSent {
			t.Errorf("rank %d: matrix row total %d != ProcStats.BytesSent %d", r, rows[r], rs.Procs[r].BytesSent)
		}
		if cols[r] != rs.Procs[r].BytesRecv {
			t.Errorf("rank %d: matrix col total %d != ProcStats.BytesRecv %d", r, cols[r], rs.Procs[r].BytesRecv)
		}
	}
	var msgs int64
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			msgs += cm.Msgs[s][d]
			if s == d && cm.Bytes[s][d] != 0 {
				t.Errorf("self traffic recorded at rank %d", s)
			}
		}
	}
	if msgs != rs.TotalMsgs {
		t.Errorf("matrix msgs %d != TotalMsgs %d", msgs, rs.TotalMsgs)
	}
	if tabs := cm.Tables("test"); len(tabs) != 2 {
		t.Errorf("Tables() = %d tables, want 2", len(tabs))
	}
}

// TestCriticalPathBoundsMakespan asserts the acceptance criterion on
// every collective the machine offers, across processor counts
// including non-powers of two: the happens-before critical path never
// exceeds the modeled makespan, and is positive whenever the
// collective moved anything.
func TestCriticalPathBoundsMakespan(t *testing.T) {
	colls := map[string]func(p *comm.Proc, counts []int){
		"barrier":   func(p *comm.Proc, _ []int) { p.Barrier() },
		"bcast":     func(p *comm.Proc, _ []int) { p.BcastFloats(0, make([]float64, 32)) },
		"reduce":    func(p *comm.Proc, _ []int) { p.Reduce(0, make([]float64, 32), comm.OpSum) },
		"allreduce": func(p *comm.Proc, _ []int) { p.Allreduce(make([]float64, 32), comm.OpMax) },
		"allreduce-tree": func(p *comm.Proc, _ []int) {
			p.AllreduceWith(make([]float64, 64), comm.OpSum, comm.AlgoTree)
		},
		"allreduce-rec": func(p *comm.Proc, _ []int) {
			p.AllreduceWith(make([]float64, 64), comm.OpSum, comm.AlgoRecursive)
		},
		"gatherv":    func(p *comm.Proc, c []int) { p.GatherV(0, make([]float64, c[p.Rank()]), c) },
		"scatterv":   func(p *comm.Proc, c []int) { p.ScatterV(0, scatterFull(p, c), c) },
		"allgatherv": func(p *comm.Proc, c []int) { p.AllgatherV(make([]float64, c[p.Rank()]), c) },
		"alltoallv": func(p *comm.Proc, _ []int) {
			segs := make([][]float64, p.NP())
			for i := range segs {
				segs[i] = make([]float64, 4)
			}
			p.AlltoallV(segs)
		},
		"reduce-scatter": func(p *comm.Proc, c []int) {
			total := 0
			for _, x := range c {
				total += x
			}
			p.ReduceScatterSum(make([]float64, total), c)
		},
	}
	for name, coll := range colls {
		for _, np := range []int{1, 2, 3, 4, 5, 8} {
			counts := make([]int, np)
			for i := range counts {
				counts[i] = 3 + i%2
			}
			m, tr := tracedMachine(np)
			rs := m.Run(func(p *comm.Proc) { coll(p, counts) })
			rec := tr.Runs()[0]
			ps := trace.CriticalPath(rec)
			const eps = 1e-12
			if ps.Length > rs.ModelTime+eps {
				t.Errorf("%s np=%d: critical path %g exceeds makespan %g", name, np, ps.Length, rs.ModelTime)
			}
			if np > 1 && ps.Length <= 0 {
				t.Errorf("%s np=%d: zero critical path for a communicating collective", name, np)
			}
			if ps.Length > 0 && ps.Events == 0 {
				t.Errorf("%s np=%d: positive length but no events on path", name, np)
			}
			if got := ps.Compute + ps.SendOverhead + ps.Network; got > ps.Length+eps {
				t.Errorf("%s np=%d: breakdown %g exceeds length %g", name, np, got, ps.Length)
			}
		}
	}
}

func scatterFull(p *comm.Proc, counts []int) []float64 {
	if p.Rank() != 0 {
		return nil
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return make([]float64, total)
}

// TestCriticalPathTightOnSerialChain: on a strictly serial ping-pong
// there is no slack anywhere, so the critical path must equal the
// makespan exactly. This also exercises message back-edges (rank 1 ->
// rank 0) through many rounds, which a naive rank-ordered sweep would
// mis-resolve.
func TestCriticalPathTightOnSerialChain(t *testing.T) {
	m, tr := tracedMachine(2)
	const rounds = 20
	rs := m.Run(func(p *comm.Proc) {
		buf := make([]float64, 16)
		for i := 0; i < rounds; i++ {
			if p.Rank() == 0 {
				p.Compute(50)
				p.SendFloats(1, i, buf)
				buf = p.RecvFloats(1, i)
			} else {
				buf = p.RecvFloats(0, i)
				p.Compute(30)
				p.SendFloats(0, i, buf)
			}
		}
	})
	ps := trace.CriticalPath(tr.Runs()[0])
	if diff := math.Abs(rs.ModelTime - ps.Length); diff > 1e-12 {
		t.Errorf("serial chain: critical path %g vs makespan %g (diff %g)", ps.Length, rs.ModelTime, diff)
	}
	// Every event of the run is on the path: per round, rank 0 has
	// compute+send+recv and rank 1 recv+compute+send.
	if want := rounds * 6; ps.Events != want {
		t.Errorf("path events = %d, want %d", ps.Events, want)
	}
}

// TestCriticalPathShowsSlack: one lagging rank plus idle peers —
// the path should be well below the sum of all work but equal to the
// straggler's chain.
func TestCriticalPathShowsSlack(t *testing.T) {
	m, tr := tracedMachine(4)
	rs := m.Run(func(p *comm.Proc) {
		p.Compute(100 * (1 + p.Rank()))
		p.Barrier()
	})
	ps := trace.CriticalPath(tr.Runs()[0])
	if ps.Length > rs.ModelTime+1e-12 {
		t.Errorf("critical path %g exceeds makespan %g", ps.Length, rs.ModelTime)
	}
	cost := m.Cost()
	if ps.Compute < 400*cost.TFlop-1e-12 {
		t.Errorf("path compute %g should include the straggler's %g", ps.Compute, 400*cost.TFlop)
	}
}
