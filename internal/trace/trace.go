// Package trace is the observability subsystem of the SPMD machine:
// a low-overhead event recorder that internal/comm emits into when a
// Tracer is attached, plus the analyses the paper's evaluation calls
// for — per-pair communication matrices, a happens-before critical
// path whose length lower-bounds the modeled makespan, and exporters
// to Chrome/Perfetto trace JSON and an ASCII per-rank timeline.
//
// The package deliberately does not import internal/comm: comm emits
// events into a Recorder, and every analysis here works from the
// recorded events alone. All timestamps are the machine's *modeled*
// clock (seconds under the Kumar cost model), not wall time, so a
// trace of a 16-processor run is exactly the timeline the paper's §4
// cost expressions describe.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindCompute is a span of modeled floating-point work.
	KindCompute Kind = iota
	// KindSend is the sender-side start-up span of one point-to-point
	// message (the t_s charge); the transfer itself is charged to the
	// matching KindRecv.
	KindSend
	// KindRecv is the receiver-side span of one message: waiting for
	// the head to arrive plus the body transfer (t_h and t_w charges).
	KindRecv
	// KindCollective is a collective-enter/exit span (barrier, bcast,
	// reduce, ...). Collective spans enclose the primitive events the
	// collective's algorithm issued and carry the operation name in Op.
	KindCollective
	// KindFault is an injected-fault marker (crash, straggle window
	// transition, dropped message, latency spike, peer-timeout). Fault
	// events are instants: Start == End, with the fault name in Op and
	// the peer rank in Peer where one is involved (-1 otherwise).
	KindFault
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindCollective:
		return "collective"
	case KindFault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence on one processor. Start and End are
// modeled seconds; End >= Start always.
type Event struct {
	Kind Kind
	Rank int
	// Peer is the destination rank for sends and the source rank for
	// receives; -1 otherwise.
	Peer int
	// Tag is the message tag (sends and receives).
	Tag int
	// Bytes is the modeled payload size (sends and receives).
	Bytes int
	// Flops is the floating-point operation count (compute spans).
	Flops int
	// Op names the collective for KindCollective spans ("bcast", ...).
	Op string
	// Start and End delimit the span on the modeled clock.
	Start, End float64
	// Depart is the matched sender's clock when the message left, and
	// Head the time its first byte reached this rank (Depart plus the
	// per-hop latency). Set on KindRecv only; together they let the
	// critical-path analysis recover the network delay of the message
	// edge without knowing the machine's cost parameters.
	Depart, Head float64
}

// Duration returns End - Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// RankLog is the per-processor event buffer. Each SPMD goroutine owns
// exactly one RankLog during a run, so Add needs no synchronization.
type RankLog struct {
	rank   int
	events []Event
}

// Add appends one event. It must only be called from the goroutine
// that owns this rank.
func (l *RankLog) Add(ev Event) {
	ev.Rank = l.rank
	l.events = append(l.events, ev)
}

// Recorder holds one run's trace: NP rank logs plus run-level
// metadata. A Recorder is written during exactly one Machine.Run and
// read-only afterwards.
type Recorder struct {
	np     int
	logs   []*RankLog
	label  string
	mtime  float64 // modeled makespan, set by the machine at run end
	sealed bool
}

// NewRecorder creates a recorder for an np-processor run.
func NewRecorder(np int) *Recorder {
	if np < 1 {
		panic(fmt.Sprintf("trace: NewRecorder with np=%d", np))
	}
	r := &Recorder{np: np, logs: make([]*RankLog, np)}
	for i := range r.logs {
		r.logs[i] = &RankLog{rank: i}
	}
	return r
}

// NP returns the number of processors in the traced run.
func (r *Recorder) NP() int { return r.np }

// Rank returns the event buffer for one processor.
func (r *Recorder) Rank(rank int) *RankLog {
	if rank < 0 || rank >= r.np {
		panic(fmt.Sprintf("trace: rank %d out of range [0,%d)", rank, r.np))
	}
	return r.logs[rank]
}

// Label returns the run label assigned by the tracer (or "").
func (r *Recorder) Label() string { return r.label }

// SetLabel names the run; exporters use it in file and track names.
func (r *Recorder) SetLabel(s string) { r.label = s }

// ModelTime returns the run's modeled makespan (the maximum processor
// clock), as reported by the machine when the run finished.
func (r *Recorder) ModelTime() float64 { return r.mtime }

// Seal records the run's makespan; the machine calls it when the run
// completes and the recorder becomes read-only.
func (r *Recorder) Seal(modelTime float64) {
	r.mtime = modelTime
	r.sealed = true
}

// Sealed reports whether the run this recorder belongs to finished.
func (r *Recorder) Sealed() bool { return r.sealed }

// RankEvents returns one rank's events in the order they were
// recorded. Primitive events (compute/send/recv) appear in execution
// order with non-decreasing Start; collective spans are appended at
// their end time, after the primitives they enclose.
func (r *Recorder) RankEvents(rank int) []Event { return r.Rank(rank).events }

// Events returns all events of the run, sorted by Start time (ties
// broken by rank, then by recording order).
func (r *Recorder) Events() []Event {
	var all []Event
	for _, l := range r.logs {
		all = append(all, l.events...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Rank < all[j].Rank
	})
	return all
}

// NumEvents returns the total event count across ranks.
func (r *Recorder) NumEvents() int {
	n := 0
	for _, l := range r.logs {
		n += len(l.events)
	}
	return n
}

// primitives returns one rank's compute/send/recv events in execution
// order, excluding collective spans.
func (r *Recorder) primitives(rank int) []Event {
	evs := r.logs[rank].events
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.Kind != KindCollective {
			out = append(out, e)
		}
	}
	return out
}

// Tracer collects one Recorder per Machine.Run. Attach a Tracer to a
// comm.Machine and every subsequent Run deposits its trace here; runs
// may be concurrent (each gets its own Recorder).
type Tracer struct {
	mu   sync.Mutex
	runs []*Recorder
}

// StartRun allocates the recorder for a run of np processors. The
// machine calls this at run start.
func (t *Tracer) StartRun(np int) *Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := NewRecorder(np)
	rec.label = fmt.Sprintf("run%d-np%d", len(t.runs), np)
	t.runs = append(t.runs, rec)
	return rec
}

// Runs returns the recorders in start order. Only sealed recorders
// belong to completed runs.
func (t *Tracer) Runs() []*Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Recorder, len(t.runs))
	copy(out, t.runs)
	return out
}

// Last returns the most recently started recorder, or nil.
func (t *Tracer) Last() *Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.runs) == 0 {
		return nil
	}
	return t.runs[len(t.runs)-1]
}
