package trace

import (
	"fmt"

	"hpfcg/internal/report"
)

// CommMatrix is the per-pair communication structure of one run:
// point-to-point message counts and modeled bytes from each sender to
// each receiver, reconstructed from the send events.
type CommMatrix struct {
	NP    int
	Msgs  [][]int64 // Msgs[src][dst]
	Bytes [][]int64 // Bytes[src][dst]
}

// Matrix builds the communication matrix of a recorded run.
func Matrix(r *Recorder) CommMatrix {
	np := r.np
	cm := CommMatrix{NP: np, Msgs: make([][]int64, np), Bytes: make([][]int64, np)}
	for s := 0; s < np; s++ {
		cm.Msgs[s] = make([]int64, np)
		cm.Bytes[s] = make([]int64, np)
	}
	for rank := 0; rank < np; rank++ {
		for _, e := range r.logs[rank].events {
			if e.Kind == KindSend {
				cm.Msgs[rank][e.Peer]++
				cm.Bytes[rank][e.Peer] += int64(e.Bytes)
			}
		}
	}
	return cm
}

// RowTotals returns per-sender byte totals (row sums of Bytes).
func (cm CommMatrix) RowTotals() []int64 {
	out := make([]int64, cm.NP)
	for s := 0; s < cm.NP; s++ {
		for d := 0; d < cm.NP; d++ {
			out[s] += cm.Bytes[s][d]
		}
	}
	return out
}

// ColTotals returns per-receiver byte totals (column sums of Bytes).
func (cm CommMatrix) ColTotals() []int64 {
	out := make([]int64, cm.NP)
	for s := 0; s < cm.NP; s++ {
		for d := 0; d < cm.NP; d++ {
			out[d] += cm.Bytes[s][d]
		}
	}
	return out
}

// Tables renders the matrix as report tables (bytes and message
// counts), ready for the same renderers every experiment uses.
func (cm CommMatrix) Tables(title string) []*report.Table {
	return []*report.Table{
		report.BytesMatrixTable(title+" — bytes", cm.Bytes),
		report.CountMatrixTable(title+" — messages", cm.Msgs),
	}
}

// PathStats describes the critical path of a run: the longest chain of
// dependent work (compute spans, send overheads, and message network
// delays) under the happens-before order. Its Length is a lower bound
// on the modeled makespan — if the machine's cost model ever produced
// a makespan below it, the model would be internally inconsistent —
// and the gap between the two is the slack the schedule left on
// non-critical processors.
type PathStats struct {
	// Length is the critical-path length in modeled seconds.
	Length float64
	// EndRank is the processor whose last dependent event ends the path.
	EndRank int
	// Events is the number of primitive events on the path.
	Events int
	// Compute, SendOverhead, and Network break Length into time spent
	// in flop work, message start-ups, and network delay (head latency
	// plus body transfer) along the path.
	Compute      float64
	SendOverhead float64
	Network      float64
}

// String formats the breakdown on one line.
func (ps PathStats) String() string {
	return fmt.Sprintf("critical path %.6gs over %d events (compute %.6gs, send overhead %.6gs, network %.6gs), ends on rank %d",
		ps.Length, ps.Events, ps.Compute, ps.SendOverhead, ps.Network, ps.EndRank)
}

// pathNode is one primitive event in the dependency DAG.
type pathNode struct {
	ev         Event
	prev       int // program-order predecessor on the same rank, or -1
	msgPred    int // for receives, the matching send's node index, or -1
	completion float64
	pred       int // predecessor chosen for the longest path, or -1
	compute    float64
	overhead   float64
	network    float64
}

// CriticalPath computes the longest dependent chain of a recorded run.
//
// The DAG has one node per primitive event. Edges are (a) program
// order within each rank and (b) message edges from each send to its
// matching receive; the k-th receive on rank d from rank s matches the
// k-th send from s to d, which is exact because the machine delivers
// messages between a pair in FIFO order. A node's completion time is
//
//	compute/send: program-order predecessor's completion + own duration
//	recv:         max(prev-on-rank, send completion + head latency)
//	              + body transfer time
//
// where the head latency (Head-Depart) and the body time are recovered
// from the event's recorded timestamps. The recurrence mirrors how the
// machine's clock actually advances but drops every idle gap that is
// not forced by a dependency, so completion[e] <= e.End for every
// event and therefore Length <= ModelTime — an invariant the tests
// assert over every collective, as a built-in consistency check of the
// cost model.
func CriticalPath(r *Recorder) PathStats {
	type msgKey struct{ src, dst int }
	nodes := make([]pathNode, 0, r.NumEvents())
	rankNodes := make([][]int, r.np)
	sendIdx := make(map[msgKey][]int)
	for rank := 0; rank < r.np; rank++ {
		prev := -1
		for _, e := range r.primitives(rank) {
			idx := len(nodes)
			nodes = append(nodes, pathNode{ev: e, prev: prev, msgPred: -1, pred: -1})
			rankNodes[rank] = append(rankNodes[rank], idx)
			if e.Kind == KindSend {
				k := msgKey{rank, e.Peer}
				sendIdx[k] = append(sendIdx[k], idx)
			}
			prev = idx
		}
	}
	// Resolve message edges (FIFO matching per source/destination pair).
	recvCount := make(map[msgKey]int)
	for rank := 0; rank < r.np; rank++ {
		for _, idx := range rankNodes[rank] {
			e := nodes[idx].ev
			if e.Kind != KindRecv {
				continue
			}
			k := msgKey{e.Peer, rank}
			seq := recvCount[k]
			recvCount[k] = seq + 1
			sends := sendIdx[k]
			if seq >= len(sends) {
				panic(fmt.Sprintf("trace: rank %d receive #%d from %d has no matching send event", rank, seq, e.Peer))
			}
			nodes[idx].msgPred = sends[seq]
		}
	}

	// Longest-path sweep in topological order (Kahn's algorithm over
	// the program-order and message edges). A trace of a completed run
	// is acyclic by construction — a cycle would have deadlocked the
	// machine — so the worklist drains completely.
	succs := make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	addEdge := func(from, to int) {
		succs[from] = append(succs[from], to)
		indeg[to]++
	}
	for i := range nodes {
		if nodes[i].prev >= 0 {
			addEdge(nodes[i].prev, i)
		}
		if nodes[i].msgPred >= 0 {
			addEdge(nodes[i].msgPred, i)
		}
	}
	queue := make([]int, 0, len(nodes))
	for i := range nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		processed++
		n := &nodes[idx]
		e := n.ev
		start := 0.0
		if n.prev >= 0 {
			start = nodes[n.prev].completion
			n.pred = n.prev
		}
		switch e.Kind {
		case KindCompute:
			n.completion = start + e.Duration()
			n.compute = e.Duration()
		case KindSend:
			n.completion = start + e.Duration()
			n.overhead = e.Duration()
		case KindRecv:
			latency := e.Head - e.Depart
			body := e.End - e.Start
			if e.Head > e.Start {
				body = e.End - e.Head
			}
			arrive := nodes[n.msgPred].completion + latency
			n.network = body
			if arrive > start {
				n.pred = n.msgPred
				start = arrive
				n.network = latency + body
			}
			n.completion = start + body
		default:
			// Instant markers (injected faults) take no modeled time:
			// they pass the predecessor's completion straight through.
			n.completion = start
		}
		for _, s := range succs[idx] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != len(nodes) {
		panic(fmt.Sprintf("trace: dependency cycle in trace (%d of %d events resolved)", processed, len(nodes)))
	}

	var ps PathStats
	end := -1
	for i := range nodes {
		if nodes[i].completion > ps.Length {
			ps.Length = nodes[i].completion
			end = i
		}
	}
	if end < 0 {
		return ps
	}
	ps.EndRank = nodes[end].ev.Rank
	for i := end; i >= 0; i = nodes[i].pred {
		ps.Events++
		ps.Compute += nodes[i].compute
		ps.SendOverhead += nodes[i].overhead
		ps.Network += nodes[i].network
	}
	return ps
}
