package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

// runCSRSpMV is the acceptance-criterion workload: the row-block CSR
// sparse mat-vec (the paper's Scenario 1) with tracing attached.
func runCSRSpMV(t *testing.T, np int) (comm.RunStats, *trace.Recorder) {
	t.Helper()
	n := 256
	A := sparse.Banded(n, 4)
	d := dist.NewBlock(n, np)
	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
	tr := &trace.Tracer{}
	m.AttachTracer(tr)
	rs := m.Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.Fill(1)
		op.Apply(x, y)
	})
	return rs, tr.Runs()[0]
}

// TestChromeTraceRoundTripsCSRSpMV writes the Chrome trace.json for a
// traced CSR SpMV run, parses it back through encoding/json, and
// checks the event counts against the recorder and the machine stats.
func TestChromeTraceRoundTripsCSRSpMV(t *testing.T) {
	np := 4
	rs, rec := runCSRSpMV(t, np)

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}

	byPh := map[string]int{}
	byCat := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		byCat[ev.Cat]++
		if ev.Tid < 0 || ev.Tid >= np {
			t.Errorf("event %q on tid %d outside [0,%d)", ev.Name, ev.Tid, np)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("event %q has negative duration %g", ev.Name, ev.Dur)
		}
	}
	// One complete ("X") event per recorded event, one flow start per
	// send, one flow finish per (matched) recv, one metadata entry per
	// rank.
	if byPh["X"] != rec.NumEvents() {
		t.Errorf(`%d "X" events, want %d (one per recorded event)`, byPh["X"], rec.NumEvents())
	}
	if int64(byPh["s"]) != rs.TotalMsgs {
		t.Errorf(`%d flow starts, want %d (TotalMsgs)`, byPh["s"], rs.TotalMsgs)
	}
	if int64(byPh["f"]) != rs.TotalMsgsRecv {
		t.Errorf(`%d flow finishes, want %d (TotalMsgsRecv)`, byPh["f"], rs.TotalMsgsRecv)
	}
	if byPh["M"] != np {
		t.Errorf(`%d metadata events, want %d`, byPh["M"], np)
	}
	if int64(byCat["send"]) != rs.TotalMsgs || int64(byCat["recv"]) != rs.TotalMsgsRecv {
		t.Errorf("send/recv span counts %d/%d, want %d/%d",
			byCat["send"], byCat["recv"], rs.TotalMsgs, rs.TotalMsgsRecv)
	}
	if byCat["collective"] == 0 {
		t.Error("no collective spans in the CSR SpMV trace (allgather expected)")
	}
	if total := byPh["X"] + byPh["s"] + byPh["f"] + byPh["M"]; total != len(doc.TraceEvents) {
		t.Errorf("unexpected event phases: %v", byPh)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
}

// TestMatrixMatchesRunStatsCSRSpMV is the other half of the acceptance
// criterion: per-rank byte totals of the trace-derived matrix equal
// the ProcStats aggregates, and the whole matrix equals the machine's
// own BytesMatrix.
func TestMatrixMatchesRunStatsCSRSpMV(t *testing.T) {
	for _, np := range []int{2, 4, 8} {
		rs, rec := runCSRSpMV(t, np)
		cm := trace.Matrix(rec)
		rows, cols := cm.RowTotals(), cm.ColTotals()
		for r := 0; r < np; r++ {
			if rows[r] != rs.Procs[r].BytesSent {
				t.Errorf("np=%d rank %d: row total %d != BytesSent %d", np, r, rows[r], rs.Procs[r].BytesSent)
			}
			if cols[r] != rs.Procs[r].BytesRecv {
				t.Errorf("np=%d rank %d: col total %d != BytesRecv %d", np, r, cols[r], rs.Procs[r].BytesRecv)
			}
			for d2 := 0; d2 < np; d2++ {
				if cm.Bytes[r][d2] != rs.BytesMatrix[r][d2] {
					t.Errorf("np=%d: trace matrix[%d][%d]=%d != machine matrix %d",
						np, r, d2, cm.Bytes[r][d2], rs.BytesMatrix[r][d2])
				}
			}
		}
		ps := trace.CriticalPath(rec)
		if ps.Length > rs.ModelTime+1e-12 {
			t.Errorf("np=%d: critical path %g exceeds makespan %g", np, ps.Length, rs.ModelTime)
		}
	}
}

func TestTimelineRendersEveryRank(t *testing.T) {
	_, rec := runCSRSpMV(t, 4)
	var buf bytes.Buffer
	if err := trace.WriteTimeline(&buf, rec, 60); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"r0", "r1", "r2", "r3", "legend:"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The SpMV allgather both sends and computes, so the timeline must
	// show communication and compute activity somewhere.
	if !strings.ContainsAny(out, "sr") || !strings.Contains(out, "C") {
		t.Errorf("timeline shows no comm or compute activity:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var rowLens []int
	for _, l := range lines {
		if strings.HasPrefix(l, "r") && strings.Contains(l, "|") {
			rowLens = append(rowLens, len(l))
		}
	}
	if len(rowLens) != 4 {
		t.Fatalf("expected 4 rank rows, got %d", len(rowLens))
	}
	for _, l := range rowLens {
		if l != rowLens[0] {
			t.Errorf("ragged timeline rows: %v", rowLens)
		}
	}
}

func TestTimelineEmptyRun(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Seal(0)
	var buf bytes.Buffer
	if err := trace.WriteTimeline(&buf, rec, 40); err != nil {
		t.Fatalf("WriteTimeline on empty run: %v", err)
	}
	if !strings.Contains(buf.String(), "empty timeline") {
		t.Errorf("unexpected empty-run output: %q", buf.String())
	}
}
