package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one entry of the Chrome/Perfetto trace event format
// (the "trace.json" schema chrome://tracing and ui.perfetto.dev load).
// Timestamps and durations are microseconds of the *modeled* clock.
type ChromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	ID   int     `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
	// S is the instant-event scope ("t" = thread) for Ph "i" events.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace.json document.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// Metadata recorded for humans reading the raw file.
	OtherData map[string]any `json:"otherData,omitempty"`
}

const usec = 1e6 // modeled seconds -> microseconds

// BuildChromeTrace converts a recorded run into the Chrome trace
// document: one complete ("X") event per span — compute, send
// overhead, receive, and collective — on thread id = rank, plus a
// flow-event pair ("s"/"f") per matched message so the viewer draws
// the message arrow from sender to receiver.
func BuildChromeTrace(r *Recorder) ChromeTrace {
	doc := ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"np":           r.np,
			"label":        r.label,
			"modelTimeSec": r.mtime,
			"clock":        "modeled (Kumar cost model), not wall time",
		},
	}
	type msgKey struct{ src, dst int }
	// Flow ids must agree between the send ("s") and finish ("f")
	// halves; number matched pairs with the same FIFO rule the
	// critical-path analysis uses.
	sendFlow := make(map[msgKey][]int)
	nextFlow := 1
	for rank := 0; rank < r.np; rank++ {
		for _, e := range r.logs[rank].events {
			switch e.Kind {
			case KindCompute:
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "compute", Cat: "compute", Ph: "X",
					Ts: e.Start * usec, Dur: e.Duration() * usec,
					Pid: 0, Tid: rank,
					Args: map[string]any{"flops": e.Flops},
				})
			case KindSend:
				k := msgKey{rank, e.Peer}
				id := nextFlow
				nextFlow++
				sendFlow[k] = append(sendFlow[k], id)
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: fmt.Sprintf("send→%d", e.Peer), Cat: "send", Ph: "X",
					Ts: e.Start * usec, Dur: e.Duration() * usec,
					Pid: 0, Tid: rank,
					Args: map[string]any{"bytes": e.Bytes, "tag": e.Tag, "dst": e.Peer},
				})
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "msg", Cat: "msg", Ph: "s",
					Ts: e.End * usec, Pid: 0, Tid: rank, ID: id,
				})
			case KindCollective:
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: e.Op, Cat: "collective", Ph: "X",
					Ts: e.Start * usec, Dur: e.Duration() * usec,
					Pid: 0, Tid: rank,
				})
			case KindFault:
				// Injected faults render as thread-scoped instant events:
				// Perfetto paints a marker on the affected rank's row at
				// the modeled instant the fault fired.
				var args map[string]any
				if e.Peer >= 0 {
					args = map[string]any{"peer": e.Peer}
				}
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: e.Op, Cat: "fault", Ph: "i", S: "t",
					Ts:  e.Start * usec,
					Pid: 0, Tid: rank,
					Args: args,
				})
			}
		}
	}
	// Receives in a second pass so every flow id exists before its
	// finish half references it (the viewer does not require this
	// ordering, but it keeps the file self-checking).
	recvCount := make(map[msgKey]int)
	for rank := 0; rank < r.np; rank++ {
		for _, e := range r.logs[rank].events {
			if e.Kind != KindRecv {
				continue
			}
			k := msgKey{e.Peer, rank}
			seq := recvCount[k]
			recvCount[k] = seq + 1
			doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("recv←%d", e.Peer), Cat: "recv", Ph: "X",
				Ts: e.Start * usec, Dur: e.Duration() * usec,
				Pid: 0, Tid: rank,
				Args: map[string]any{"bytes": e.Bytes, "tag": e.Tag, "src": e.Peer},
			})
			if seq < len(sendFlow[k]) {
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "msg", Cat: "msg", Ph: "f", BP: "e",
					Ts: e.End * usec, Pid: 0, Tid: rank, ID: sendFlow[k][seq],
				})
			}
		}
	}
	// Name the threads rank 0..np-1 so the viewer labels tracks.
	for rank := 0; rank < r.np; rank++ {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M",
			Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
	}
	return doc
}

// WriteChromeTrace writes the run as indented trace.json.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChromeTrace(r))
}
