package bench

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
)

// relResidual computes ||b - Ax|| / ||b|| on the host.
func relResidual(A *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, A.NRows)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

// E26 — the latency-regime map for pipelined CG: where hiding the
// per-iteration allreduce behind the mat-vec beats plain CG, and where
// the s-step amortization overtakes both. Table 1 measures real solves
// (plain vs pipelined per-iteration makespan from the modeled clock,
// plus the hidden/exposed reduction split the overlap books record)
// across machine-latency scales; Table 2 charts the §4 modeled
// frontier (hpfexec.ChooseVariant) over the same scales. The claims
// are enforced, not observed — the runner errors unless: both solvers
// converge to the tolerance at every scale (the Ghysels–Vanroose
// recurrence is a different ordering of the same arithmetic, so
// answers are equal in exact arithmetic but not bitwise — bit-identity
// is the overlap-disabled contract core's tests enforce, not this
// one); at least one scale shows the pipelined per-iteration makespan
// strictly below plain CG's with a strictly positive hidden reduction
// time; every clean pipelined solve counts exactly iterations+3
// allreduce rounds; and the modeled frontier pins the three-regime
// story (plain at near-zero latency, pipelined at the default
// constants, s-step once the round can no longer hide).
func E26(cfg Config) ([]*report.Table, error) {
	// machineAt scales the startup/hop constants — the latency knobs the
	// overlap can hide — leaving bandwidth and flop cost alone.
	machineAt := func(np int, scale float64) *comm.Machine {
		c := cfg.Cost
		c.TStartup *= scale
		c.THop *= scale
		m := comm.NewMachine(np, cfg.Topo, c)
		if cfg.Tracer != nil {
			m.AttachTracer(cfg.Tracer)
		}
		if cfg.Injector != nil {
			m.AttachInjector(cfg.Injector)
		}
		return m
	}

	scales := []float64{0.05, 0.2, 1, 5, 25}
	if cfg.Quick {
		scales = []float64{0.05, 1, 25}
	}
	np := 4
	A := sparse.Banded(cfg.pick(1024, 256), cfg.pick(8, 4))
	n := A.NRows
	b := sparse.RandomVector(n, cfg.Seed)
	plan, err := hpfexec.PlanForLayout("csr", np, n, A.NNZ())
	if err != nil {
		return nil, err
	}
	opts := []core.Options{{Tol: 1e-10}}

	t1 := &report.Table{
		ID:    "E26",
		Title: fmt.Sprintf("Pipelined vs plain CG across latency scales (banded n=%d, np=%d, tol 1e-10)", n, np),
		Header: []string{"latency_x", "it", "plain_per_it_s", "pipe_per_it_s", "speedup",
			"reduce_hidden_s", "reduce_exposed_s", "hidden_frac", "pipe_rounds"},
		Notes: []string{
			"per_it columns are SolveModelTime/iterations from Prepared batch solves (setup",
			"excluded); hidden/exposed split every waited-on nonblocking round's blocking",
			"cost across the whole solve (comm.RunStats.ReduceOverlap). pipe_rounds is the",
			"pipelined solve's allreduce count — iterations+3 on a clean solve, enforced.",
			"Enforced: >= 1 scale with pipe_per_it strictly below plain_per_it and hidden",
			"> 0, and both arms converged below tol at every scale. The two recurrences",
			"order the same arithmetic differently, so answers agree to rounding, not",
			"bitwise (bit-identity is the overlap-disabled contract, enforced in core).",
		},
	}
	sawWin := false
	for _, scale := range scales {
		plainPr, err := hpfexec.PrepareSStep(machineAt(np, scale), plan, A, 1)
		if err != nil {
			return nil, fmt.Errorf("E26 scale=%g plain: %w", scale, err)
		}
		plainOut, err := plainPr.SolveBatch([][]float64{b}, opts)
		if err != nil {
			return nil, fmt.Errorf("E26 scale=%g plain: %w", scale, err)
		}
		pipePr, err := hpfexec.PreparePipelined(machineAt(np, scale), plan, A)
		if err != nil {
			return nil, fmt.Errorf("E26 scale=%g pipelined: %w", scale, err)
		}
		pipeOut, err := pipePr.SolveBatch([][]float64{b}, opts)
		if err != nil {
			return nil, fmt.Errorf("E26 scale=%g pipelined: %w", scale, err)
		}
		plainRes, pipeRes := plainOut.Results[0], pipeOut.Results[0]
		if !plainRes.Stats.Converged || !pipeRes.Stats.Converged {
			return nil, fmt.Errorf("E26 scale=%g: convergence plain=%v pipelined=%v",
				scale, plainRes.Stats.Converged, pipeRes.Stats.Converged)
		}
		if pipeRes.Stats.Replacements != 0 {
			return nil, fmt.Errorf("E26 scale=%g: drift guard tripped (%d replacements) on a band",
				scale, pipeRes.Stats.Replacements)
		}
		for arm, x := range map[string][]float64{"plain": plainRes.X, "pipelined": pipeRes.X} {
			if rr := relResidual(A, x, b); rr > 1e-8 {
				return nil, fmt.Errorf("E26 scale=%g: %s relative residual %g", scale, arm, rr)
			}
		}
		it := pipeRes.Stats.Iterations
		if want := it + 3; pipeRes.Stats.Reductions != want {
			return nil, fmt.Errorf("E26 scale=%g: %d reductions for %d iterations, want %d",
				scale, pipeRes.Stats.Reductions, it, want)
		}
		plainPerIt := plainOut.SolveModelTime[0] / float64(plainRes.Stats.Iterations)
		pipePerIt := pipeOut.SolveModelTime[0] / float64(it)
		hidden, exposed := pipeOut.Run.ReduceOverlap()
		if hidden <= 0 {
			return nil, fmt.Errorf("E26 scale=%g: hidden reduction time %g, want > 0", scale, hidden)
		}
		if pipePerIt < plainPerIt {
			sawWin = true
		}
		t1.AddRowf(fmt.Sprintf("%g", scale), it, plainPerIt, pipePerIt,
			fmt.Sprintf("%.2fx", plainPerIt/pipePerIt),
			hidden, exposed, fmt.Sprintf("%.2f", hidden/(hidden+exposed)),
			pipeRes.Stats.Reductions)
	}
	if !sawWin {
		return nil, fmt.Errorf("E26: no latency scale showed pipelined per-iteration makespan below plain CG")
	}

	// Table 2: the modeled frontier over the same latency axis, on a
	// matrix big enough that the overlap window is wide (the measured
	// table's full-size operator). The three-regime pins are enforced at
	// the anchor scales; intermediate scales are charted as modeled.
	A2 := sparse.Banded(1024, 8)
	d2 := dist.NewBlock(A2.NRows, np)
	t2 := &report.Table{
		ID:    "E26",
		Title: fmt.Sprintf("Modeled solver-variant frontier vs latency scale (banded n=%d, np=%d)", A2.NRows, np),
		Header: []string{"latency_x", "winner", "t_plain_s", "t_fused_s", "t_sstep_best_s",
			"t_pipe_s", "pipe_hidden_s"},
		Notes: []string{
			"hpfexec.ChooseVariant prices plain, fused, every s-step candidate and",
			"pipelined CG per iteration (§4 constants, allreduce vs overlap window).",
			"Enforced anchors: plain wins at 0.05x (the overlap recurrence's extra",
			"6n flops are not free), pipelined wins at 1x (the round hides behind",
			"the mat-vec), an s-step variant wins at 125x (a round this long cannot",
			"hide; only 1/s rounds survive).",
		},
	}
	anchors := map[float64]string{0.05: "plain", 1: "pipelined", 125: "sstep"}
	frontierScales := []float64{0.05, 0.2, 1, 5, 25, 125}
	if cfg.Quick {
		frontierScales = []float64{0.05, 1, 125}
	}
	for _, scale := range frontierScales {
		winner, models := hpfexec.ChooseVariant(machineAt(np, scale), A2, d2)
		var tPlain, tFused, tPipe, tSBest, hiddenPipe float64
		first := true
		for _, mod := range models {
			switch {
			case mod.Name == "plain":
				tPlain = mod.TimePerIter
			case mod.Name == "fused":
				tFused = mod.TimePerIter
			case mod.Name == "pipelined":
				tPipe = mod.TimePerIter
				hiddenPipe = mod.HiddenTime
			case mod.S >= 2:
				if first || mod.TimePerIter < tSBest {
					tSBest = mod.TimePerIter
					first = false
				}
			}
		}
		if want, anchored := anchors[scale]; anchored {
			got := winner
			if len(got) > len(want) {
				got = got[:len(want)]
			}
			if got != want {
				return nil, fmt.Errorf("E26 frontier scale=%g: winner %q, want %s (%+v)", scale, winner, want, models)
			}
		}
		t2.AddRowf(fmt.Sprintf("%g", scale), winner, tPlain, tFused, tSBest, tPipe, hiddenPipe)
	}
	return []*report.Table{t1, t2}, nil
}
