package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hpfcg/internal/report"
	"hpfcg/internal/serve"
)

// E21 — the solver service under load. Table 1 is a closed-loop
// throughput/latency sweep: C clients each submit-wait-repeat against
// a live scheduler, across worker batching limits and machine sizes;
// backpressure (429-equivalent ErrQueueFull) is handled by client
// retry, as a real closed-loop client would honour Retry-After. Table 2
// isolates the headline amortization deterministically: one worker, a
// paused queue preloaded with same-matrix jobs, and an exact batch
// occupancy per row — the per-job share of the modeled setup time
// (matrix partition + inspector exchange + executor selection) must
// fall as 1/B while the per-solve time stays flat.
func E21(cfg Config) ([]*report.Table, error) {
	matrix := fmt.Sprintf("laplace2d:%d:%d", cfg.pick(24, 12), cfg.pick(24, 12))

	t1, err := e21ClosedLoop(cfg, matrix)
	if err != nil {
		return nil, err
	}
	t2, err := e21Amortization(cfg, matrix)
	if err != nil {
		return nil, err
	}
	return []*report.Table{t1, t2}, nil
}

func e21ClosedLoop(cfg Config, matrix string) (*report.Table, error) {
	clientCounts := []int{1, 4, 8}
	batchCaps := []int{1, 8}
	nps := []int{2, 4}
	perClient := cfg.pick(8, 3)
	if cfg.Quick {
		clientCounts = []int{1, 4}
		nps = []int{2}
	}

	t1 := &report.Table{
		ID:     "E21",
		Title:  fmt.Sprintf("Solver service closed-loop sweep (%d jobs per client, 2 workers)", perClient),
		Header: []string{"clients", "max_batch", "np", "jobs", "jobs_per_s", "mean_lat_ms", "mean_occupancy", "retries"},
		Notes: []string{
			"Closed loop: each client submits, waits for the result, repeats; ErrQueueFull",
			"(HTTP 429) is retried after the server's Retry-After hint. mean_occupancy is",
			"the average number of same-matrix jobs coalesced into one SPMD run;",
			"max_batch=1 disables batching. Wall-clock columns vary run to run.",
		},
	}

	for _, nc := range clientCounts {
		for _, mb := range batchCaps {
			for _, np := range nps {
				s := serve.New(serve.Options{
					Workers:        2,
					QueueCap:       nc * perClient,
					MaxBatch:       mb,
					RetryAfter:     2 * time.Millisecond,
					PlanCacheBytes: -1, // registry off: E21 isolates batching (E22 measures the cache)
				})
				total := nc * perClient
				var (
					mu       sync.Mutex
					latSum   float64
					occSum   float64
					retries  int
					firstErr error
				)
				var wg sync.WaitGroup
				start := time.Now()
				for c := 0; c < nc; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for k := 0; k < perClient; k++ {
							spec := serve.JobSpec{Matrix: matrix, NP: np, Seed: int64(1 + c*perClient + k)}
							t0 := time.Now()
							var j *serve.Job
							for {
								var err error
								j, err = s.Submit(spec)
								if err == nil {
									break
								}
								if !errors.Is(err, serve.ErrQueueFull) {
									mu.Lock()
									if firstErr == nil {
										firstErr = err
									}
									mu.Unlock()
									return
								}
								mu.Lock()
								retries++
								mu.Unlock()
								time.Sleep(s.RetryAfter())
							}
							v, err := s.Wait(context.Background(), j.ID)
							lat := time.Since(t0)
							mu.Lock()
							if err != nil && firstErr == nil {
								firstErr = err
							}
							if v.State != serve.StateDone && firstErr == nil {
								firstErr = fmt.Errorf("job %s: %s (%s)", j.ID, v.State, v.Error)
							}
							latSum += lat.Seconds()
							if v.Result != nil {
								occSum += float64(v.Result.BatchSize)
							}
							mu.Unlock()
						}
					}(c)
				}
				wg.Wait()
				wall := time.Since(start)
				drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := s.Drain(drainCtx)
				cancel()
				if firstErr != nil {
					return nil, firstErr
				}
				if err != nil {
					return nil, err
				}
				t1.AddRowf(nc, mb, np, total,
					float64(total)/wall.Seconds(),
					latSum/float64(total)*1e3,
					occSum/float64(total),
					retries)
			}
		}
	}
	return t1, nil
}

func e21Amortization(cfg Config, matrix string) (*report.Table, error) {
	const np = 4
	const jobs = 8
	batchCaps := []int{1, 2, 4, 8}

	t2 := &report.Table{
		ID:     "E21",
		Title:  fmt.Sprintf("Same-matrix batching amortization (%s, np=%d, %d jobs, 1 worker)", matrix, np, jobs),
		Header: []string{"batch", "occupancy", "setup_model_s", "setup_per_job_s", "solve_per_job_s", "model_per_job_s"},
		Notes: []string{
			"One worker, queue preloaded while paused, so every dispatch coalesces exactly",
			"`batch` jobs. setup_model_s is the modeled cost the batch pays once (matrix",
			"partition, inspector ghost exchange, executor selection); setup_per_job_s is",
			"each job's share. Model columns are deterministic.",
		},
	}

	for _, mb := range batchCaps {
		s := serve.New(serve.Options{
			Workers:     1,
			QueueCap:    jobs,
			MaxBatch:    mb,
			StartPaused: true,
			// Registry off: with it, only the first batch would pay setup
			// and every batch cap would amortize identically. E21 measures
			// within-batch amortization; E22 measures the plan cache.
			PlanCacheBytes: -1,
		})
		ids := make([]string, jobs)
		for k := 0; k < jobs; k++ {
			j, err := s.Submit(serve.JobSpec{Matrix: matrix, NP: np, Seed: int64(k + 1)})
			if err != nil {
				return nil, err
			}
			ids[k] = j.ID
		}
		s.Resume()
		var setupSum, setupShare, solveSum, modelShare, occSum float64
		for _, id := range ids {
			v, err := s.Wait(context.Background(), id)
			if err != nil {
				return nil, err
			}
			if v.State != serve.StateDone || !v.Result.Converged {
				return nil, fmt.Errorf("job %s: %s (%s)", id, v.State, v.Error)
			}
			if v.Result.BatchSize != mb {
				return nil, fmt.Errorf("job %s: occupancy %d, want %d", id, v.Result.BatchSize, mb)
			}
			occSum += float64(v.Result.BatchSize)
			setupShare += v.Result.SetupModelTime / float64(v.Result.BatchSize)
			solveSum += v.Result.SolveModelTime
			modelShare += v.Result.ModelTime / float64(v.Result.BatchSize)
			setupSum += v.Result.SetupModelTime
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := s.Drain(drainCtx)
		cancel()
		if err != nil {
			return nil, err
		}
		t2.AddRowf(mb, occSum/float64(jobs),
			setupSum/float64(jobs), // each job reports its batch's setup -> mean per-batch setup
			setupShare/float64(jobs),
			solveSum/float64(jobs),
			modelShare/float64(jobs))
	}
	return t2, nil
}
