package bench

import (
	"fmt"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// E19 — the communication-avoiding CG hot path. Table 1 pits the three
// CG formulations against each other across processor counts and
// problem sizes: the literal Figure 2 transcription (three allreduce
// rounds per iteration, fresh vectors and boxed merges every call),
// the fused production CG (batched setup norms, fused mat-vec dot,
// rho reuse — two rounds, bit-identical iterates), and the
// single-reduction variant (all four scalars in one batched round, a
// different floating-point trajectory). Each variant is timed both on
// the modeled machine (t_s·rounds is what shrinks) and in wall-clock
// over repeated solves from a shared workspace (where the
// allocation-free hot path shows up). Table 2 maps the tree vs
// Rabenseifner allreduce crossover that the auto-selection in
// internal/comm navigates: closed-form and simulated model times per
// message length, per processor count.
func E19(cfg Config) ([]*report.Table, error) {
	type variant struct {
		name  string
		reuse bool
		solve func(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt core.Options) (core.Stats, error)
	}
	variants := []variant{
		{"unfused_3round", false, core.CGUnfused},
		{"fused_2round", true, core.CG},
		{"single_1round", true, core.CGFused},
	}
	repeats := cfg.pick(8, 3)
	nps := []int{2, 4, 8, 16}
	sizes := []int{cfg.pick(1024, 256), cfg.pick(4096, 576)}
	if cfg.Quick {
		nps = []int{2, 4}
	}

	t1 := &report.Table{
		ID:     "E19",
		Title:  fmt.Sprintf("CG reduction fusion: rounds, model time, wall clock (%d solves each)", repeats),
		Header: []string{"variant", "np", "n", "iters", "rounds/it", "model_t_s", "wall_us"},
		Notes: []string{
			"rounds/it = allreduce merge rounds per iteration (setup rounds excluded);",
			"model_t_s = simulated makespan per solve; wall_us = host wall clock per solve",
			"over repeated solves reusing one workspace (unfused allocates per call).",
		},
	}
	for _, n := range sizes {
		A := sparse.Banded(n, 4)
		b := sparse.RandomVector(n, cfg.Seed)
		for _, np := range nps {
			d := dist.NewBlock(n, np)
			for _, v := range variants {
				var st core.Stats
				var solveErr error
				m := cfg.machine(np)
				t0 := time.Now()
				rs := m.Run(func(p *comm.Proc) {
					op := spmv.NewRowBlockCSRGhost(p, A, d)
					bv := darray.New(p, d)
					bv.SetGlobal(func(g int) float64 { return b[g] })
					xv := darray.New(p, d)
					opt := core.Options{Tol: 1e-8}
					if v.reuse {
						opt.Work = core.NewWorkspace()
					}
					for rep := 0; rep < repeats; rep++ {
						xv.Fill(0)
						s, err := v.solve(p, op, bv, xv, opt)
						if err != nil {
							solveErr = err
							return
						}
						if p.Rank() == 0 {
							st = s
						}
					}
				})
				wall := time.Since(t0)
				if solveErr != nil {
					return nil, fmt.Errorf("%s np=%d n=%d: %w", v.name, np, n, solveErr)
				}
				if !st.Converged {
					return nil, fmt.Errorf("%s np=%d n=%d: did not converge: %v", v.name, np, n, st)
				}
				// Setup rounds: 3 for the unfused baseline (three separate
				// merges before the loop), 1 for both fused variants (one
				// batched {r·r, b·b} round).
				setup := 1
				if !v.reuse {
					setup = 3
				}
				perIt := float64(st.Reductions-setup) / float64(st.Iterations)
				t1.AddRowf(v.name, np, n, st.Iterations, perIt,
					rs.ModelTime/float64(repeats),
					float64(wall.Microseconds())/float64(repeats))
			}
		}
	}

	t2 := &report.Table{
		ID:     "E19",
		Title:  "allreduce algorithm crossover: binomial tree vs Rabenseifner",
		Header: []string{"np", "words", "tree_model", "rec_model", "tree_sim", "rec_sim", "winner"},
		Notes: []string{
			"model = closed-form AllreduceTime / RabenseifnerAllreduceTime;",
			"sim = simulated makespan of one AllreduceInPlace; winner by sim.",
			"The auto selection pins tree below 16 words, then follows the closed forms.",
		},
	}
	crossNPs := []int{4, 8, 16}
	words := []int{1, 16, 256, 4096, 65536}
	if cfg.Quick {
		crossNPs = []int{4, 8}
		words = []int{1, 256, 4096}
	}
	for _, np := range crossNPs {
		for _, w := range words {
			treeModel := topology.AllreduceTime(cfg.Topo, cfg.Cost, np, w)
			recModel := topology.RabenseifnerAllreduceTime(cfg.Topo, cfg.Cost, np, w)
			sim := func(algo comm.AllreduceAlgo) float64 {
				return cfg.machine(np).Run(func(p *comm.Proc) {
					buf := make([]float64, w)
					p.AllreduceInPlace(buf, comm.OpSum, algo)
				}).ModelTime
			}
			treeSim := sim(comm.AlgoTree)
			recSim := sim(comm.AlgoRecursive)
			winner := "tree"
			if recSim < treeSim {
				winner = "recursive"
			}
			t2.AddRowf(np, w, treeModel, recModel, treeSim, recSim, winner)
		}
	}
	return []*report.Table{t1, t2}, nil
}
