package bench

import (
	"fmt"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/direct"
	"hpfcg/internal/dist"
	"hpfcg/internal/nas"
	"hpfcg/internal/partition"
	"hpfcg/internal/report"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// E1 — Figure 2: the HPF CSR-format CG code, run end to end on the
// distributed machine across a processor sweep. Expected shape: the
// iteration count is NP-invariant; modeled time falls with NP until
// communication startup terms flatten it.
func E1(cfg Config) ([]*report.Table, error) {
	nx := cfg.pick(96, 40)
	A := sparse.Laplace2D(nx, nx)
	n := A.NRows
	b := sparse.RandomVector(n, cfg.Seed)

	t := &report.Table{
		ID:     "E1",
		Title:  fmt.Sprintf("Figure 2 CSR CG, 2-D Laplacian n=%d (nnz=%d)", n, A.NNZ()),
		Header: []string{"np", "iters", "model_time_s", "comm_time_s", "flop_imbalance", "speedup"},
	}
	var t1 float64
	for _, np := range cfg.npSweep() {
		d := dist.NewBlock(n, np)
		var st core.Stats
		var solveErr error
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			s, err := core.CG(p, op, bv, xv, core.Options{Tol: 1e-8})
			if p.Rank() == 0 {
				st, solveErr = s, err
			}
		})
		if solveErr != nil {
			return nil, solveErr
		}
		if np == 1 {
			t1 = rs.ModelTime
		}
		t.AddRowf(np, st.Iterations, rs.ModelTime, rs.CommTime(), rs.FlopImbalance(), t1/rs.ModelTime)
	}
	t.Notes = append(t.Notes,
		"iteration count must be identical across np (same arithmetic, distributed)",
		"speedup saturates as the t_s·log NP reduction terms start to dominate")
	return []*report.Table{t}, nil
}

// E2 — Figure 3 / Scenario 1: row-wise partitioned sparse mat-vec. The
// communication is the all-to-all broadcast of p; measured modeled comm
// time is compared with the paper's §4 hypercube expression
// t_s·log NP + t_w·n·(NP-1)/NP (recursive doubling, per-step form in
// topology.HypercubeAllgatherTime). The processor sweep uses powers of
// two so the hypercube algorithm is the one executed.
func E2(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	A := sparse.Banded(n, 4)
	t := &report.Table{
		ID:     "E2",
		Title:  fmt.Sprintf("Scenario 1 row-block CSR mat-vec, banded n=%d", n),
		Header: []string{"np", "measured_comm_s", "predicted_comm_s", "ratio", "bytes_moved"},
		Notes: []string{
			"prediction: hypercube allgather t_s*log NP + t_w*8n*(NP-1)/NP (+hop terms)",
			"ratio ~ 1 confirms the simulator charges Scenario 1 the paper's §4 cost",
		},
	}
	hcCfg := cfg
	hcCfg.Topo = topology.Hypercube{}
	for _, np := range []int{2, 4, 8, 16} {
		if cfg.Quick && np > 4 {
			break
		}
		d := dist.NewBlock(n, np)
		rs := hcCfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			op.Apply(x, y)
		})
		pred := topology.HypercubeAllgatherTime(hcCfg.Cost, np, 8*(n/np))
		meas := rs.CommTime()
		t.AddRowf(np, meas, pred, meas/pred, rs.TotalBytes)
	}
	return []*report.Table{t}, nil
}

// e3data runs one column-partitioned CSC mat-vec in both execution
// modes and returns the run stats.
func e3data(cfg Config, A *sparse.CSC, n, np int, mode spmv.Mode) comm.RunStats {
	d := dist.NewBlock(n, np)
	return cfg.machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewColBlockCSC(p, A, d, mode)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.Fill(1)
		op.Apply(x, y)
	})
}

// E3 — Figure 4 / Scenario 2: column-wise partitioned CSC mat-vec,
// HPF-1 serialized loop vs the proposed PRIVATE/MERGE execution.
// Expected shape: similar communication volume, but the serialized
// version's compute does not scale (the modeled clock serialises it).
func E3(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	A := sparse.Banded(n, 4).ToCSC()
	t := &report.Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Scenario 2 col-block CSC mat-vec, banded n=%d", n),
		Header: []string{"np", "t_serialized_s", "t_merge_s", "bytes_serialized", "bytes_merge"},
		Notes: []string{
			"serialized = HPF-1 dependent loop (q carried rank to rank, then scattered)",
			"merge = proposed PRIVATE(q(n)) WITH MERGE(+) (reduce-scatter)",
		},
	}
	for _, np := range cfg.npSweep() {
		ser := e3data(cfg, A, n, np, spmv.ModeSerialized)
		mer := e3data(cfg, A, n, np, spmv.ModePrivateMerge)
		t.AddRowf(np, ser.ModelTime, mer.ModelTime, ser.TotalBytes, mer.TotalBytes)
	}
	return []*report.Table{t}, nil
}

// E4 — Figure 5 / §5.1: what the PRIVATE/MERGE extension buys — the
// speedup over the serialized loop — and what it costs — NP·n words of
// temporary storage ("unsatisfactory ... particularly if n >> NP").
func E4(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	A := sparse.Banded(n, 4).ToCSC()
	t := &report.Table{
		ID:     "E4",
		Title:  fmt.Sprintf("PRIVATE WITH MERGE(+) extension, CSC mat-vec n=%d", n),
		Header: []string{"np", "speedup_vs_serialized", "max_flops_serial", "max_flops_merge", "private_storage_KiB"},
		Notes: []string{
			"private storage = NP*n*8 bytes of temporary vectors, the §5.1 memory cost",
		},
	}
	for _, np := range cfg.npSweep() {
		ser := e3data(cfg, A, n, np, spmv.ModeSerialized)
		mer := e3data(cfg, A, n, np, spmv.ModePrivateMerge)
		t.AddRowf(np, ser.ModelTime/mer.ModelTime, ser.MaxFlops, mer.MaxFlops,
			float64(np*n*8)/1024)
	}
	return []*report.Table{t}, nil
}

// E5 — §2/§2.1: the computational structure of the solver family, per
// iteration: matrix products, transpose products, inner products,
// SAXPYs and working vectors.
func E5(cfg Config) ([]*report.Table, error) {
	nx := cfg.pick(20, 8)
	A := sparse.Laplace2D(nx, nx)
	b := sparse.RandomVector(A.NRows, cfg.Seed)
	t := &report.Table{
		ID:     "E5",
		Title:  fmt.Sprintf("per-iteration computational structure, 2-D Laplacian n=%d", A.NRows),
		Header: []string{"method", "iters", "matvec/it", "matvecT/it", "dot/it", "axpy/it", "work_vectors"},
		Notes: []string{
			"paper §2: CG = 1 matvec, 2 inner products, ~3 SAXPY per iteration",
			"paper §2.1: BiCG adds one A^T product; BiCGSTAB has 4 inner products (+1 stop test)",
		},
	}
	solvers := []struct {
		name string
		run  func(b, x []float64) (seq.Stats, error)
	}{
		{"cg", func(b, x []float64) (seq.Stats, error) { return seq.CG(A, b, x, seq.Options{Tol: 1e-9}) }},
		{"bicg", func(b, x []float64) (seq.Stats, error) { return seq.BiCG(A, b, x, seq.Options{Tol: 1e-9}) }},
		{"cgs", func(b, x []float64) (seq.Stats, error) { return seq.CGS(A, b, x, seq.Options{Tol: 1e-9}) }},
		{"bicgstab", func(b, x []float64) (seq.Stats, error) { return seq.BiCGSTAB(A, b, x, seq.Options{Tol: 1e-9}) }},
		{"gmres(20)", func(b, x []float64) (seq.Stats, error) {
			return seq.GMRES(A, b, x, 20, seq.Options{Tol: 1e-9, MaxIter: 40 * len(b)})
		}},
	}
	for _, s := range solvers {
		x := make([]float64, A.NRows)
		st, err := s.run(b, x)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		it := float64(st.Iterations)
		t.AddRowf(s.name, st.Iterations,
			float64(st.MatVecs-1)/it, // subtract the setup residual matvec
			float64(st.TransMatVecs)/it,
			float64(st.DotProducts-2)/it, // subtract the two setup norms
			float64(st.AXPYs-1)/it,
			st.WorkVectors)
	}
	return []*report.Table{t}, nil
}

// E6 — §2.1: the BiCG transpose penalty under a row-block
// distribution: A^T·x re-introduces the merge phase the forward
// product avoided.
func E6(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	A := sparse.RandomSPD(n, 6, cfg.Seed)
	t := &report.Table{
		ID:     "E6",
		Title:  fmt.Sprintf("transpose product penalty (row-block CSR), randspd n=%d", n),
		Header: []string{"np", "t_apply_s", "t_applyT_s", "ratio", "bytes_apply", "bytes_applyT"},
		Notes: []string{
			"§2.1: \"any storage distribution optimisations made on the basis of row access",
			"vs. column access will be negated with the use of BiCG\"",
		},
	}
	for _, np := range cfg.npSweep() {
		if np == 1 {
			continue
		}
		d := dist.NewBlock(n, np)
		run := func(transpose bool) comm.RunStats {
			return cfg.machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSR(p, A, d)
				x := darray.New(p, d)
				y := darray.New(p, d)
				x.Fill(1)
				if transpose {
					op.ApplyT(x, y)
				} else {
					op.Apply(x, y)
				}
			})
		}
		fwd := run(false)
		bwd := run(true)
		t.AddRowf(np, fwd.ModelTime, bwd.ModelTime, bwd.ModelTime/fwd.ModelTime,
			fwd.TotalBytes, bwd.TotalBytes)
	}
	return []*report.Table{t}, nil
}

// E7 — §5.2.1: what plain element-level BLOCK does to the sparse trio
// (splits rows/columns across processors) versus the proposed
// ATOM:BLOCK redistribution (never splits an atom).
func E7(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(2000, 300)
	A := sparse.PowerLaw(n, 1.1, n/8, cfg.Seed)
	atoms := partition.AtomsFromPtr(A.RowPtr)
	t := &report.Table{
		ID:     "E7",
		Title:  fmt.Sprintf("INDIVISABLE atoms vs element BLOCK, power-law n=%d nnz=%d", n, A.NNZ()),
		Header: []string{"np", "rows_split_by_BLOCK", "rows_split_by_ATOM_BLOCK", "atom_block_imbalance"},
		Notes: []string{
			"a split row forces intra-row communication during the multiply (§5.2.1)",
			"ATOM:BLOCK by construction never splits; its cost is element imbalance",
		},
	}
	for _, np := range cfg.npSweep() {
		if np == 1 {
			continue
		}
		splits := partition.SplitCount(atoms, np)
		cuts := partition.UniformAtomBlock(atoms.NAtoms(), np)
		imb := partition.Imbalance(atoms.Weights(), cuts)
		t.AddRowf(np, splits, 0, imb)
	}
	return []*report.Table{t}, nil
}

// E8 — §5.2.2: load-balancing partitioners on an irregular matrix:
// uniform atom blocks vs the greedy heuristic vs the optimal
// contiguous partitioner (CG_BALANCED_PARTITIONER_1), measured as nnz
// imbalance and as modeled time of a full distributed CG solve.
func E8(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(2000, 300)
	np := cfg.pick(8, 4)
	// Clustered heavy rows: the §5.2.2 "identifiable to a human but not
	// to a compiler" structure that defeats uniform distributions. The
	// density (maxDeg = n/2) keeps the multiply compute-dominated so the
	// partitioning effect is visible above the communication terms.
	A := sparse.PowerLawClustered(n, n/2, cfg.Seed)
	atoms := partition.AtomsFromPtr(A.RowPtr)
	weights := atoms.Weights()

	t := &report.Table{
		ID:     "E8",
		Title:  fmt.Sprintf("CG_BALANCED_PARTITIONER_1, power-law n=%d nnz=%d np=%d", n, A.NNZ(), np),
		Header: []string{"partitioner", "nnz_imbalance", "bottleneck_nnz", "spmv_model_time_s", "flop_imbalance"},
		Notes: []string{
			"rows are atoms: every partitioner keeps rows whole (INDIVISABLE)",
			"timed kernel: 10 repeated mat-vec products, the operation §5.2.2 balances",
		},
	}
	cases := []struct {
		name string
		cuts []int
	}{
		{"uniform_atom_block", partition.UniformAtomBlock(len(weights), np)},
		{"greedy", partition.GreedyContiguous(weights, np)},
		{"balanced_optimal", partition.BalancedContiguous(weights, np)},
	}
	for _, c := range cases {
		d := dist.NewIrregular(c.cuts) // row cut points = vector cut points
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			for rep := 0; rep < 10; rep++ {
				op.Apply(x, y)
			}
		})
		t.AddRowf(c.name, partition.Imbalance(weights, c.cuts),
			partition.Bottleneck(weights, c.cuts), rs.ModelTime, rs.FlopImbalance())
	}
	return []*report.Table{t}, nil
}

// E9 — §2: convergence properties. Table 1: CG finishes in at most n_e
// iterations where n_e is the number of distinct eigenvalues. Table 2:
// preconditioning (Jacobi/SSOR/IC(0)) cuts the iteration count on an
// ill-conditioned system.
func E9(cfg Config) ([]*report.Table, error) {
	t1 := &report.Table{
		ID:     "E9",
		Title:  "CG iterations vs number of distinct eigenvalues",
		Header: []string{"n", "distinct_eigenvalues", "iters", "bound_respected"},
	}
	n := cfg.pick(256, 64)
	for _, ne := range []int{1, 2, 4, 8, 16} {
		eigs := make([]float64, n)
		for i := range eigs {
			eigs[i] = float64(1 + 10*(i%ne))
		}
		A := sparse.DiagWithEigenvalues(eigs)
		b := sparse.RandomVector(n, cfg.Seed)
		x := make([]float64, n)
		st, err := seq.CG(A, b, x, seq.Options{Tol: 1e-12})
		if err != nil {
			return nil, err
		}
		t1.AddRowf(n, ne, st.Iterations, st.Iterations <= ne)
	}

	t2 := &report.Table{
		ID:     "E9",
		Title:  "preconditioned CG on an ill-conditioned scaled Laplacian",
		Header: []string{"preconditioner", "iters", "converged", "relres"},
	}
	nx := cfg.pick(24, 10)
	L := sparse.Laplace2D(nx, nx)
	nn := L.NRows
	s := make([]float64, nn)
	for i := range s {
		s[i] = 1 + 40*float64(i)/float64(nn)
	}
	coo := sparse.NewCOO(nn, nn)
	for i := 0; i < nn; i++ {
		for k := L.RowPtr[i]; k < L.RowPtr[i+1]; k++ {
			coo.Add(i, L.Col[k], L.Val[k]*s[i]*s[L.Col[k]])
		}
	}
	A := coo.ToCSR()
	b := sparse.Ones(nn)
	for _, pname := range []string{"none", "jacobi", "ssor", "ic0"} {
		M, err := seq.ByName(pname, A)
		if err != nil {
			return nil, err
		}
		x := make([]float64, nn)
		st, err := seq.PCG(A, M, b, x, seq.Options{Tol: 1e-10, MaxIter: 10 * nn})
		if err != nil {
			return nil, err
		}
		t2.AddRowf(pname, st.Iterations, st.Converged, st.Residual)
	}
	return []*report.Table{t1, t2}, nil
}

// E10 — §4: the vector-operation cost claims. SAXPY runs in O(n/NP)
// with no communication; DOT_PRODUCT adds a t_s·log NP merge.
func E10(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(1<<16, 1<<12)
	t := &report.Table{
		ID:     "E10",
		Title:  fmt.Sprintf("SAXPY and DOT_PRODUCT scaling, n=%d", n),
		Header: []string{"np", "axpy_measured_s", "axpy_predicted_s", "dot_measured_s", "dot_predicted_s", "dot_msgs"},
		Notes: []string{
			"axpy prediction: 2(n/NP)·t_f, no communication (§4)",
			"dot prediction: 2(n/NP)·t_f + 2·ceil(log2 NP)·t_s merge (reduce+bcast)",
		},
	}
	for _, np := range cfg.npSweep() {
		d := dist.NewBlock(n, np)
		axpyRS := cfg.machine(np).Run(func(p *comm.Proc) {
			v := darray.New(p, d)
			w := darray.New(p, d)
			v.AXPY(2, w)
		})
		dotRS := cfg.machine(np).Run(func(p *comm.Proc) {
			v := darray.New(p, d)
			v.Fill(1)
			v.Dot(v)
		})
		blk := (n + np - 1) / np
		axpyPred := 2 * float64(blk) * cfg.Cost.TFlop
		steps := float64(topology.Log2Ceil(np))
		dotPred := 2*float64(blk)*cfg.Cost.TFlop + 2*steps*cfg.Cost.TStartup + steps*cfg.Cost.TFlop
		t.AddRowf(np, axpyRS.ModelTime, axpyPred, dotRS.ModelTime, dotPred, dotRS.TotalMsgs)
	}
	return []*report.Table{t}, nil
}

// E11 — §1 (NAS/PARKBENCH): the NAS-CG kernel, sequential and
// distributed, with the zeta trajectory as the verification signal.
func E11(cfg Config) ([]*report.Table, error) {
	cls := sparse.NASClassS
	if cfg.Quick {
		cls = sparse.NASCGClass{Name: "mini", N: 256, Nonzer: 5, Shift: 8, NIter: 10}
	}
	A := sparse.NASCGMatrix(cls, cfg.Seed)
	seqRes := nas.RunWithMatrix(cls, A)
	if err := nas.Verify(seqRes); err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:     "E11",
		Title:  fmt.Sprintf("NAS-CG-like kernel, class %s (n=%d nonzer=%d shift=%g)", cls.Name, cls.N, cls.Nonzer, cls.Shift),
		Header: []string{"config", "zeta_first", "zeta_final", "matvecs", "model_time_s"},
		Notes: []string{
			"matrix is the documented makea substitution (DESIGN.md): trajectory shape,",
			"not the published verification value, is the reproduction target",
		},
	}
	t.AddRowf("sequential", seqRes.Zetas[0], seqRes.FinalZeta(), seqRes.MatVecs, "-")
	for _, np := range []int{2, 4} {
		var res nas.Result
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			r := nas.RunDistributed(p, cls, A)
			if p.Rank() == 0 {
				res = r
			}
		})
		if err := nas.Verify(res); err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("distributed np=%d", np), res.Zetas[0], res.FinalZeta(), res.MatVecs, rs.ModelTime)
	}
	return []*report.Table{t}, nil
}

// E12 — §1: the motivation for iterative methods — dense Gaussian
// elimination vs sparse CG in wall-clock time and storage, as the
// problem grows.
func E12(cfg Config) ([]*report.Table, error) {
	sizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	t := &report.Table{
		ID:     "E12",
		Title:  "direct (dense LU) vs iterative (sparse CG), 2-D Laplacian",
		Header: []string{"n", "nnz", "lu_wall", "cg_wall", "dense_storage_KiB", "sparse_storage_KiB", "cg_iters"},
		Notes: []string{
			"§1: iterative methods are preferred \"when A is very large and sparse, and where",
			"storage space for the full matrix would either be impractical or too slow\"",
		},
	}
	for _, n := range sizes {
		side := 1
		for side*side < n {
			side++
		}
		A := sparse.Laplace2D(side, side)
		nn := A.NRows
		b := sparse.Ones(nn)

		t0 := time.Now()
		if _, err := direct.SolveCSR(A, b); err != nil {
			return nil, err
		}
		luWall := time.Since(t0)

		x := make([]float64, nn)
		t0 = time.Now()
		st, err := seq.CG(A, b, x, seq.Options{Tol: 1e-10})
		if err != nil {
			return nil, err
		}
		cgWall := time.Since(t0)

		denseKiB := float64(nn*nn*8) / 1024
		sparseKiB := float64(A.NNZ()*16+(nn+1)*8) / 1024
		t.AddRowf(nn, A.NNZ(), luWall.String(), cgWall.String(), denseKiB, sparseKiB, st.Iterations)
	}
	return []*report.Table{t}, nil
}
