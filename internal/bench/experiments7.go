package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"hpfcg/internal/cluster"
	"hpfcg/internal/report"
	"hpfcg/internal/serve"
)

// E22 — the sharded cluster under load. Table 1 extends E21's
// closed-loop sweep across clients × shards: every request crosses the
// real router tier over HTTP, lands on the shard owning its matrix's
// content hash, and repeat traffic turns into Prepared-plan registry
// hits. Table 2 isolates the warm-vs-cold plan-cache cost
// deterministically: a fixed matrix set submitted in passes, where
// pass 0 pays the full modeled setup (partition + inspector ghost
// exchange + executor selection) on each owning shard and every later
// pass must run at hit rate 1 with exactly zero modeled setup.
func E22(cfg Config) ([]*report.Table, error) {
	t1, err := e22ClosedLoop(cfg)
	if err != nil {
		return nil, err
	}
	t2, err := e22WarmCold(cfg)
	if err != nil {
		return nil, err
	}
	return []*report.Table{t1, t2}, nil
}

// e22Cluster is an in-process cluster: a router HTTP server in front
// of S real hpfserve shards, registered through the membership API.
type e22Cluster struct {
	router *cluster.Router
	rts    *httptest.Server
	scheds []*serve.Scheduler
	shards []*httptest.Server
}

func newE22Cluster(nShards int, opts serve.Options) (*e22Cluster, error) {
	c := &e22Cluster{
		router: cluster.NewRouter(cluster.RouterOptions{
			SweepEvery: -1, // nothing fails in-process; no detector needed
			Logf:       func(string, ...any) {},
		}),
	}
	c.rts = httptest.NewServer(c.router.Handler())
	for i := 0; i < nShards; i++ {
		s := serve.New(opts)
		ts := httptest.NewServer(serve.NewHandler(s))
		c.scheds = append(c.scheds, s)
		c.shards = append(c.shards, ts)
		name := fmt.Sprintf("shard-%d", i+1)
		if err := c.router.Membership().Register(name, ts.URL); err != nil {
			c.close()
			return nil, err
		}
	}
	return c, nil
}

func (c *e22Cluster) close() error {
	var firstErr error
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range c.scheds {
		if err := s.Drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, ts := range c.shards {
		ts.Close()
	}
	c.rts.Close()
	c.router.Close()
	return firstErr
}

// registryStats sums the plan-registry counters across shards.
func (c *e22Cluster) registryStats() (hits, misses uint64) {
	for _, s := range c.scheds {
		st := s.PlanCacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}

// e22Result is the slice of the job view the experiment reads.
type e22Result struct {
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Converged      bool    `json:"converged"`
		ModelTime      float64 `json:"model_time"`
		SolveModelTime float64 `json:"solve_model_time"`
		SetupModelTime float64 `json:"setup_model_time"`
		PlanCacheHit   bool    `json:"plan_cache_hit"`
	} `json:"result"`
}

// submitAndWait pushes one spec through the router and waits for the
// answer, retrying backpressure (429/503) after a short pause — the
// closed-loop client contract. Returns the shard it landed on.
func e22SubmitAndWait(base string, spec serve.JobSpec, retries *int) (string, e22Result, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", e22Result{}, err
	}
	var ack struct {
		ID    string `json:"id"`
		Shard string `json:"shard"`
	}
	for {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", e22Result{}, err
		}
		code := resp.StatusCode
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			resp.Body.Close()
			if retries != nil {
				*retries++
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || code != http.StatusAccepted {
			return "", e22Result{}, fmt.Errorf("submit: status %d (%v)", code, err)
		}
		break
	}
	resp, err := http.Get(base + "/jobs/" + ack.ID + "?wait=1&timeout=60s")
	if err != nil {
		return "", e22Result{}, err
	}
	defer resp.Body.Close()
	var v e22Result
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", e22Result{}, err
	}
	if v.State != "done" || v.Result == nil || !v.Result.Converged {
		return "", e22Result{}, fmt.Errorf("job %s: state=%s err=%q", ack.ID, v.State, v.Error)
	}
	return ack.Shard, v, nil
}

// e22Matrices is the sweep's matrix pool: distinct content hashes, so
// the ring spreads them across shards while repeat traffic per matrix
// stays shard-sticky.
func e22Matrices(n, side int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("laplace2d:%d:%d", side, side+i)
	}
	return out
}

func e22ClosedLoop(cfg Config) (*report.Table, error) {
	shardCounts := []int{1, 2, 4}
	clientCounts := []int{1, 4, 8}
	perClient := cfg.pick(8, 3)
	side := cfg.pick(16, 10)
	if cfg.Quick {
		shardCounts = []int{1, 2}
		clientCounts = []int{1, 4}
	}
	matrices := e22Matrices(4, side)

	t1 := &report.Table{
		ID:     "E22",
		Title:  fmt.Sprintf("Cluster closed-loop sweep (%d jobs per client, %d-matrix pool)", perClient, len(matrices)),
		Header: []string{"shards", "clients", "jobs", "jobs_per_s", "mean_lat_ms", "hit_rate", "retries"},
		Notes: []string{
			"Closed loop through the router tier over real HTTP: each client submits,",
			"waits, repeats, retrying 429/503 backpressure. Jobs cycle a fixed matrix",
			"pool, so the content-hash ring pins each matrix to one shard and repeat",
			"traffic turns into plan-registry hits (hit_rate = hits/(hits+misses),",
			"cluster-wide). Wall-clock columns vary run to run; hit_rate does not.",
		},
	}

	for _, ns := range shardCounts {
		for _, nc := range clientCounts {
			c, err := newE22Cluster(ns, serve.Options{
				Workers:    2,
				QueueCap:   nc * perClient,
				RetryAfter: 2 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			total := nc * perClient
			var (
				mu       sync.Mutex
				latSum   float64
				retries  int
				firstErr error
			)
			var wg sync.WaitGroup
			start := time.Now()
			for cl := 0; cl < nc; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						spec := serve.JobSpec{
							Matrix: matrices[(cl*perClient+k)%len(matrices)],
							NP:     2,
							Seed:   int64(1 + cl*perClient + k),
						}
						t0 := time.Now()
						var myRetries int
						_, _, err := e22SubmitAndWait(c.rts.URL, spec, &myRetries)
						lat := time.Since(t0)
						mu.Lock()
						if err != nil && firstErr == nil {
							firstErr = err
						}
						latSum += lat.Seconds()
						retries += myRetries
						mu.Unlock()
					}
				}(cl)
			}
			wg.Wait()
			wall := time.Since(start)
			hits, misses := c.registryStats()
			if err := c.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr != nil {
				return nil, firstErr
			}
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			t1.AddRowf(ns, nc, total,
				float64(total)/wall.Seconds(),
				latSum/float64(total)*1e3,
				hitRate,
				retries)
		}
	}
	return t1, nil
}

func e22WarmCold(cfg Config) (*report.Table, error) {
	const nShards = 2
	passes := cfg.pick(4, 3)
	side := cfg.pick(16, 10)
	matrices := e22Matrices(4, side)

	t2 := &report.Table{
		ID:     "E22",
		Title:  fmt.Sprintf("Warm vs cold plan cache (%d shards, %d matrices, sequential passes)", nShards, len(matrices)),
		Header: []string{"pass", "jobs", "hits", "hit_rate", "setup_model_s", "setup_share", "solve_model_s"},
		Notes: []string{
			"The matrix set is submitted pass after pass through the router (1 worker per",
			"shard, no batching, sequential — occupancy 1, so nothing amortizes except the",
			"registry). Pass 0 pays the full modeled setup on each matrix's owning shard;",
			"every later pass must be all registry hits with exactly zero modeled setup:",
			"hit rate -> 1 and setup share -> 0 beyond the first touch per shard. Model",
			"columns are deterministic.",
		},
	}

	c, err := newE22Cluster(nShards, serve.Options{Workers: 1, MaxBatch: 1})
	if err != nil {
		return nil, err
	}
	defer c.close()

	prevHits := uint64(0)
	for pass := 0; pass < passes; pass++ {
		var setupSum, solveSum, modelSum float64
		for k, m := range matrices {
			// Same seed per matrix on every pass: warm passes must then
			// reproduce the cold pass's solve model time exactly.
			_, v, err := e22SubmitAndWait(c.rts.URL, serve.JobSpec{
				Matrix: m, NP: 2, Seed: int64(k + 1),
			}, nil)
			if err != nil {
				return nil, err
			}
			wantHit := pass > 0
			if v.Result.PlanCacheHit != wantHit {
				return nil, fmt.Errorf("pass %d matrix %s: plan_cache_hit=%v, want %v",
					pass, m, v.Result.PlanCacheHit, wantHit)
			}
			setupSum += v.Result.SetupModelTime
			solveSum += v.Result.SolveModelTime
			modelSum += v.Result.ModelTime
		}
		hits, _ := c.registryStats()
		passHits := hits - prevHits
		prevHits = hits
		setupShare := 0.0
		if modelSum > 0 {
			setupShare = setupSum / modelSum
		}
		t2.AddRowf(pass, len(matrices), int(passHits),
			float64(passHits)/float64(len(matrices)),
			setupSum, setupShare, solveSum)
	}
	if err := c.close(); err != nil {
		return nil, err
	}
	return t2, nil
}
