package bench

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/grid"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// E13 — beyond the paper's conclusion (§4: striping cannot reduce the
// communication time): a 2-D (BLOCK, BLOCK) checkerboard partition of
// the dense matrix replaces the stripe's full-vector broadcast with a
// column broadcast + row reduction of n/√NP-sized blocks. This is the
// extension ablation DESIGN.md calls out: it quantifies what HPF's
// multi-dimensional distributions (which the paper's codes never use)
// would have bought.
func E13(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(1024, 256)
	A := sparse.Banded(n, 2).ToDense()
	t := &report.Table{
		ID:     "E13",
		Title:  fmt.Sprintf("striped vs checkerboard dense mat-vec, n=%d", n),
		Header: []string{"np", "grid", "t_striped_s", "t_checker_s", "bytes_striped", "bytes_checker"},
		Notes: []string{
			"striped = (BLOCK,*) rows + allgather of x (Scenario 1, Figure 3)",
			"checkerboard = (BLOCK,BLOCK) + column bcast + row reduce (Kumar et al.)",
			"per-processor comm drops from O(t_w·n) to O(t_w·n/sqrt(NP)·log NP)",
		},
	}
	nps := []int{4, 16}
	if !cfg.Quick {
		nps = []int{4, 16, 64}
	}
	for _, np := range nps {
		d := dist.NewBlock(n, np)
		striped := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewDenseRowBlock(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			op.Apply(x, y)
		})
		g := grid.NewProcGrid(np)
		checker := cfg.machine(np).Run(func(p *comm.Proc) {
			cb := grid.NewDenseCheckerboard(p, A, g)
			var xBlock []float64
			if pr, _ := g.Coords(p.Rank()); pr == 0 {
				xBlock = make([]float64, cb.XLen())
				for i := range xBlock {
					xBlock[i] = 1
				}
			}
			cb.Apply(xBlock)
		})
		t.AddRowf(np, fmt.Sprintf("%dx%d", g.Rows, g.Cols),
			striped.ModelTime, checker.ModelTime, striped.TotalBytes, checker.TotalBytes)
	}

	// The same comparison for the storage format the paper cares about:
	// sparse CSR blocks.
	sA := sparse.Banded(n, 8)
	ts := &report.Table{
		ID:     "E13",
		Title:  fmt.Sprintf("striped vs checkerboard sparse mat-vec, banded n=%d nnz=%d", n, sA.NNZ()),
		Header: []string{"np", "grid", "t_striped_s", "t_checker_s", "bytes_striped", "bytes_checker"},
		Notes: []string{
			"sparse twist: bytes still drop ~sqrt(NP)x, but the sparse multiply is so",
			"cheap that the checkerboard's two collectives (bcast+reduce) cost more",
			"startup latency than the single allgather — the bandwidth win only pays",
			"off for dense blocks or far larger n. An honest negative result.",
		},
	}
	for _, np := range nps {
		d := dist.NewBlock(n, np)
		striped := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, sA, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			op.Apply(x, y)
		})
		g := grid.NewProcGrid(np)
		checker := cfg.machine(np).Run(func(p *comm.Proc) {
			cb := grid.NewSparseCheckerboard(p, sA, g)
			var xBlock []float64
			if pr, _ := g.Coords(p.Rank()); pr == 0 {
				xBlock = make([]float64, cb.XLen())
				for i := range xBlock {
					xBlock[i] = 1
				}
			}
			cb.Apply(xBlock)
		})
		ts.AddRowf(np, fmt.Sprintf("%dx%d", g.Rows, g.Cols),
			striped.ModelTime, checker.ModelTime, striped.TotalBytes, checker.TotalBytes)
	}
	return []*report.Table{t, ts}, nil
}

// E14 — the inspector-executor alternative to Scenario 1's broadcast
// (§5.1's "expensive inspector loops", refs [15], [19], [20]): the
// one-time inspector builds a ghost schedule; each executor exchange
// then moves only the halo. The table shows the amortisation: the
// inspector costs about one extra exchange, repaid within a few CG
// iterations on a banded matrix.
func E14(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	halfBand := 4
	A := sparse.Banded(n, halfBand)
	const applies = 50
	t := &report.Table{
		ID:    "E14",
		Title: fmt.Sprintf("broadcast vs inspector-executor, banded n=%d, %d applies", n, applies),
		Header: []string{"np", "t_broadcast_s", "t_ghost_s(incl_inspector)", "speedup",
			"bytes_broadcast", "bytes_ghost", "ghosts_per_proc"},
		Notes: []string{
			"ghost column includes the one-time inspector (index-list exchange)",
			"halo is 2*halfband elements per processor vs n*(NP-1)/NP for broadcast",
		},
	}
	for _, np := range cfg.npSweep() {
		if np == 1 {
			continue
		}
		d := dist.NewBlock(n, np)
		bc := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			for i := 0; i < applies; i++ {
				op.Apply(x, y)
			}
		})
		var ghosts int
		gh := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, d) // inspector included
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			for i := 0; i < applies; i++ {
				op.Apply(x, y)
			}
			if p.Rank() == np/2 {
				ghosts = op.NGhosts()
			}
		})
		t.AddRowf(np, bc.ModelTime, gh.ModelTime, bc.ModelTime/gh.ModelTime,
			bc.TotalBytes, gh.TotalBytes, ghosts)
	}
	return []*report.Table{t}, nil
}
