// Package bench is the experiment harness: one runner per figure or
// analytic claim of the paper (the per-experiment index lives in
// DESIGN.md and EXPERIMENTS.md). Each runner regenerates its tables
// from scratch on the simulated machine, so `cgbench -exp all`
// reproduces the whole evaluation.
package bench

import (
	"fmt"
	"io"
	"sort"

	"hpfcg/internal/comm"
	"hpfcg/internal/report"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

// Config controls experiment scale and the simulated machine.
type Config struct {
	// Quick shrinks problem sizes for tests and smoke runs.
	Quick bool
	// Topo is the interconnection network (default hypercube).
	Topo topology.Topology
	// Cost holds the machine constants (default DefaultCostParams).
	Cost topology.CostParams
	// Seed makes the synthetic matrices reproducible.
	Seed int64
	// SStep, when nonzero, restricts E23's blocking-factor sweep to
	// that single factor (cgbench -sstep); 0 sweeps {1, 2, 4, 8}.
	SStep int
	// HPCG, when non-empty ("nx,ny,nz"), restricts E24's per-rank brick
	// sweep to that single size (cgbench -hpcg).
	HPCG string
	// MFree, when non-empty ("5pt:nx,ny" or "27pt:nx,ny,nz"), restricts
	// E25's global-grid sweep to that single spec (cgbench -mfree).
	MFree string
	// Tracer, when non-nil, is attached to every machine the
	// experiment builds: each Machine.Run deposits a trace.Recorder on
	// it, so any experiment gains event-level drill-down (see
	// cmd/hpftrace) without the runner knowing about tracing.
	Tracer *trace.Tracer
	// Injector, when non-nil, is attached to every machine the
	// experiment builds (cmd/cgbench's -fault flag): the same
	// deterministic fault plan is replayed against whatever the
	// experiment runs. Experiments that manage their own fault
	// schedule (E20) override it per machine.
	Injector comm.Injector
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config {
	return Config{
		Topo: topology.Hypercube{},
		Cost: topology.DefaultCostParams(),
		Seed: 1996, // the paper's year
	}
}

func (c Config) machine(np int) *comm.Machine {
	m := comm.NewMachine(np, c.Topo, c.Cost)
	if c.Tracer != nil {
		m.AttachTracer(c.Tracer)
	}
	if c.Injector != nil {
		m.AttachInjector(c.Injector)
	}
	return m
}

// pick returns small when cfg.Quick and full otherwise.
func (c Config) pick(full, small int) int {
	if c.Quick {
		return small
	}
	return full
}

// Runner produces one experiment's tables.
type Runner func(cfg Config) ([]*report.Table, error)

// experiments is the registry; IDs match DESIGN.md / EXPERIMENTS.md.
var experiments = map[string]Runner{
	"E1":  E1,
	"E2":  E2,
	"E3":  E3,
	"E4":  E4,
	"E5":  E5,
	"E6":  E6,
	"E7":  E7,
	"E8":  E8,
	"E9":  E9,
	"E10": E10,
	"E11": E11,
	"E12": E12,
	"E13": E13,
	"E14": E14,
	"E15": E15,
	"E16": E16,
	"E17": E17,
	"E18": E18,
	"E19": E19,
	"E20": E20,
	"E21": E21,
	"E22": E22,
	"E23": E23,
	"E24": E24,
	"E25": E25,
	"E26": E26,
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric ordering: E2 before E10.
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, error) {
	r, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// RunAndRender executes one experiment and renders its tables to w.
func RunAndRender(w io.Writer, id string, cfg Config) error {
	r, err := Get(id)
	if err != nil {
		return err
	}
	tables, err := r(cfg)
	if err != nil {
		return fmt.Errorf("bench: %s: %w", id, err)
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// npSweep is the standard processor-count sweep.
func (c Config) npSweep() []int {
	if c.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16}
}
