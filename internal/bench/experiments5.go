package bench

import (
	"errors"
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/fault"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// missionOutcome is one resilient solve driven to completion across
// restart attempts.
type missionOutcome struct {
	attempts int
	crashes  int
	useful   int // CG iterations in the converged trajectory
	lost     int // iterations computed by failed attempts and rolled back
	mission  float64
	final    float64 // model time of the successful attempt
	sol      []float64
	st       core.Stats
}

// runMission drives core.CGResilient under a fault plan until the
// solve converges: each comm.PeerFailure advances the injector's
// mission clock by the failed attempt's modeled time and restarts from
// the newest complete checkpoint (the same loop hpfexec.SolveCGResilient
// runs, kept inline here so E20 can account lost work per attempt).
func runMission(cfg Config, A *sparse.CSR, b []float64, np, interval int, plan fault.Plan, opt core.Options) (missionOutcome, error) {
	var out missionOutcome
	inj, err := fault.NewInjector(plan)
	if err != nil {
		return out, err
	}
	d := dist.NewBlock(A.NRows, np)
	store := core.NewCheckpointStore(np)
	m := cfg.machine(np)
	m.AttachInjector(inj)
	var solveErr error
	fn := func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRGhost(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		x := darray.New(p, d)
		st, err := core.CGResilient(p, op, bv, x, opt,
			core.Resilience{Store: store, Interval: interval})
		full := x.Gather()
		if p.Rank() == 0 {
			out.sol, out.st, solveErr = full, st, err
		}
	}
	for {
		out.attempts++
		if out.attempts > len(plan.Events)+2 {
			return out, fmt.Errorf("np=%d interval=%d: no convergence after %d attempts", np, interval, out.attempts)
		}
		startIter := 0
		if _, k := store.Latest(); k > 0 {
			startIter = k
		}
		rs, runErr := m.RunChecked(fn)
		out.mission += rs.ModelTime
		if runErr == nil {
			if solveErr != nil {
				return out, solveErr
			}
			out.final = rs.ModelTime
			out.useful = out.st.Iterations
			return out, nil
		}
		var pf comm.PeerFailure
		if !errors.As(runErr, &pf) {
			return out, runErr
		}
		out.crashes++
		if got := store.Reached(); got > startIter {
			out.lost += got - startIter
		}
		inj.Advance(rs.ModelTime)
	}
}

// E20 — resilience: checkpoint/restart under deterministic fault
// injection. Table 1 measures what resilience costs when nothing
// fails: CGResilient with no injector attached versus plain CG — the
// only extra modeled time is the periodic checkpoint write
// (t_s + 24·n/NP·t_w per rank every Interval iterations) and the
// solution must stay bit-identical. Table 2 replays seeded Poisson
// crash schedules (fault.RandomPlan) against the solve for an
// MTBF × checkpoint-interval × NP sweep: mission time counts every
// failed attempt, so the slowdown column is the paper-style price of
// failures, and lost_iters the work rolled back to the last
// checkpoint. Table 3 sweeps the interval at fixed MTBF and compares
// the empirically best choice against Young's first-order optimum
// sqrt(2·MTBF·C)/t_iter; interval=0 (no checkpoints, every failure
// restarts from scratch) anchors the far end.
func E20(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(2048, 288)
	A := sparse.Banded(n, 4)
	b := sparse.RandomVector(n, cfg.Seed)
	opt := core.Options{Tol: 1e-8}
	nps := []int{2, 4, 8}
	if cfg.Quick {
		nps = []int{2, 4}
	}

	// Fault-free baselines per np: plain CG solution, iterations, makespan.
	type baseline struct {
		sol   []float64
		iters int
		model float64
	}
	base := map[int]baseline{}
	for _, np := range nps {
		d := dist.NewBlock(n, np)
		var bl baseline
		var solveErr error
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			x := darray.New(p, d)
			st, err := core.CG(p, op, bv, x, opt)
			full := x.Gather()
			if p.Rank() == 0 {
				bl.sol, bl.iters, solveErr = full, st.Iterations, err
			}
		})
		if solveErr != nil {
			return nil, fmt.Errorf("baseline np=%d: %w", np, solveErr)
		}
		bl.model = rs.ModelTime
		base[np] = bl
	}

	identical := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	t1 := &report.Table{
		ID:     "E20",
		Title:  "failure-free checkpoint overhead: CGResilient (no injector) vs CG",
		Header: []string{"np", "n", "interval", "iters", "ckpts", "cg_model", "res_model", "overhead_pct", "bit_identical"},
		Notes: []string{
			"overhead_pct = (res_model - cg_model) / cg_model * 100: pure checkpoint-write",
			"cost (t_s + 24 bytes/element * t_w per rank every interval iterations);",
			"bit_identical compares solutions element-wise — resilience must not perturb CG.",
		},
	}
	intervals1 := []int{5, 20}
	for _, np := range nps {
		for _, iv := range intervals1 {
			out, err := runMission(cfg, A, b, np, iv, fault.Plan{}, opt)
			if err != nil {
				return nil, fmt.Errorf("healthy np=%d interval=%d: %w", np, iv, err)
			}
			bl := base[np]
			t1.AddRowf(np, n, iv, out.useful, out.st.Checkpoints,
				bl.model, out.final,
				100*(out.final-bl.model)/bl.model,
				identical(bl.sol, out.sol))
		}
	}

	t2 := &report.Table{
		ID:     "E20",
		Title:  "recovery under Poisson crashes: MTBF x checkpoint interval x NP",
		Header: []string{"np", "mtbf/T", "interval", "crashes", "attempts", "lost_iters", "mission_t", "slowdown"},
		Notes: []string{
			"Seeded fault.RandomPlan schedules crashes with the given MTBF (in units of the",
			"healthy makespan T) over a 3T horizon; mission_t sums every attempt's modeled",
			"time; slowdown = mission_t / T. lost_iters = iterations rolled back by failures.",
		},
	}
	mtbfFracs := []float64{0.4, 1.0}
	intervals2 := []int{3, 10}
	for _, np := range nps {
		T := base[np].model
		for _, frac := range mtbfFracs {
			plan := fault.RandomPlan(cfg.Seed+int64(np), np, frac*T, 3*T)
			for _, iv := range intervals2 {
				out, err := runMission(cfg, A, b, np, iv, plan, opt)
				if err != nil {
					return nil, fmt.Errorf("np=%d mtbf=%.2gT interval=%d: %w", np, frac, iv, err)
				}
				if !identical(base[np].sol, out.sol) {
					return nil, fmt.Errorf("np=%d mtbf=%.2gT interval=%d: recovered solution not bit-identical", np, frac, iv)
				}
				t2.AddRowf(np, frac, iv, out.crashes, out.attempts, out.lost,
					out.mission, out.mission/T)
			}
		}
	}

	t3 := &report.Table{
		ID:     "E20",
		Title:  "checkpoint interval choice vs Young's optimum",
		Header: []string{"np", "interval", "crashes", "lost_iters", "mission_t", "slowdown", "young_interval"},
		Notes: []string{
			"Fixed MTBF = 0.5T; interval 0 = checkpointing disabled (failures restart from",
			"scratch). young_interval = sqrt(2 * MTBF * C) / t_iter with C the per-checkpoint",
			"modeled write cost and t_iter the healthy per-iteration time — the first-order",
			"optimum the empirically best row should sit near.",
		},
	}
	np3 := cfg.pick(4, 2)
	T := base[np3].model
	bl := base[np3]
	mtbf := 0.5 * T
	ckptCost := cfg.Cost.TStartup + 24*float64((n+np3-1)/np3)*cfg.Cost.TByte
	tIter := T / float64(bl.iters)
	young := math.Sqrt(2*mtbf*ckptCost) / tIter
	plan := fault.RandomPlan(cfg.Seed+100, np3, mtbf, 3*T)
	intervals3 := []int{0, 2, 5, 10, 20, 40}
	if cfg.Quick {
		intervals3 = []int{0, 2, 5, 15}
	}
	for _, iv := range intervals3 {
		out, err := runMission(cfg, A, b, np3, iv, plan, opt)
		if err != nil {
			return nil, fmt.Errorf("young sweep interval=%d: %w", iv, err)
		}
		t3.AddRowf(np3, iv, out.crashes, out.lost, out.mission, out.mission/T, young)
	}
	return []*report.Table{t1, t2, t3}, nil
}
