package bench

import (
	"fmt"
	"math/rand"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/order"
	"hpfcg/internal/report"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// E15 — machine-parameter sensitivity. HPF's whole premise is
// portability: the same source must run well across machines with very
// different communication constants. This experiment sweeps the
// message start-up time t_s across three orders of magnitude
// (shared-memory-like 1µs up to workstation-cluster 1ms) and reports,
// at fixed NP, how the three executions of the sparse mat-vec compare:
// Scenario 1 (broadcast), Scenario 2 with the §5.1 extension (merge),
// and the inspector-executor halo. The crossovers show which execution
// a compiler should pick on which machine — the decision the paper
// wants directives to inform.
func E15(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	np := cfg.pick(8, 4)
	const applies = 10
	d := dist.NewBlock(n, np)

	matrices := []struct {
		name string
		A    *sparse.CSR
	}{
		{"banded (local halo)", sparse.Banded(n, 4)},
		{"randspd (no locality)", sparse.RandomSPD(n, 6, cfg.Seed)},
	}
	var tables []*report.Table
	for _, mt := range matrices {
		A := mt.A
		csc := A.ToCSC()
		t := &report.Table{
			ID: "E15",
			Title: fmt.Sprintf("start-up-time sensitivity, %s n=%d np=%d, %d applies",
				mt.name, n, np, applies),
			Header: []string{"t_startup", "t_bcast_s", "t_merge_s", "t_ghost_s", "best"},
			Notes: []string{
				"bcast = Scenario 1 allgather; merge = Scenario 2 + PRIVATE/MERGE(+);",
				"ghost = inspector-executor halo (inspector included)",
			},
		}
		for _, ts := range []float64{1e-6, 10e-6, 100e-6, 1e-3} {
			cost := cfg.Cost
			cost.TStartup = ts
			mk := func() *comm.Machine { return comm.NewMachine(np, cfg.Topo, cost) }

			run := func(build func(p *comm.Proc) spmv.Operator) comm.RunStats {
				return mk().Run(func(p *comm.Proc) {
					op := build(p)
					x := darray.New(p, d)
					y := darray.New(p, d)
					x.Fill(1)
					for i := 0; i < applies; i++ {
						op.Apply(x, y)
					}
				})
			}
			bcast := run(func(p *comm.Proc) spmv.Operator { return spmv.NewRowBlockCSR(p, A, d) })
			merge := run(func(p *comm.Proc) spmv.Operator {
				return spmv.NewColBlockCSC(p, csc, d, spmv.ModePrivateMerge)
			})
			ghost := run(func(p *comm.Proc) spmv.Operator { return spmv.NewRowBlockCSRGhost(p, A, d) })

			best := "bcast"
			bt := bcast.ModelTime
			if merge.ModelTime < bt {
				best, bt = "merge", merge.ModelTime
			}
			if ghost.ModelTime < bt {
				best = "ghost"
			}
			t.AddRowf(fmt.Sprintf("%.0e", ts), bcast.ModelTime, merge.ModelTime, ghost.ModelTime, best)
		}
		tables = append(tables, t)
	}
	tables[len(tables)-1].Notes = append(tables[len(tables)-1].Notes,
		"the winner flips with matrix structure and machine constants —",
		"the execution-selection decision the paper wants directives to inform")
	return tables, nil
}

// E16 — reordering meets the inspector-executor: a banded matrix whose
// labelling was scrambled (the "irregular grid" arrival order of
// §5.2.2) has a huge ghost halo; Reverse Cuthill-McKee recovers the
// bandwidth and shrinks the halo back to the neighbour exchange. This
// is the locality knob the runtime machinery of E14 depends on.
func E16(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(2048, 512)
	np := cfg.pick(8, 4)
	const applies = 20
	band := sparse.Banded(n, 4)

	// Scramble the labelling deterministically.
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make(order.Permutation, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	scrambled := order.PermuteSym(band, perm)
	rcm := order.RCM(scrambled)
	restored := order.PermuteSym(scrambled, rcm)

	t := &report.Table{
		ID:     "E16",
		Title:  fmt.Sprintf("RCM reordering and the ghost halo, banded n=%d np=%d, %d applies", n, np, applies),
		Header: []string{"matrix", "bandwidth", "ghosts_per_proc", "t_ghost_s", "bytes"},
		Notes: []string{
			"scrambled = random labelling of the banded matrix (halo ~ whole vector)",
			"rcm = Reverse Cuthill-McKee applied to the scrambled matrix",
		},
	}
	d := dist.NewBlock(n, np)
	for _, c := range []struct {
		name string
		A    *sparse.CSR
	}{
		{"original", band},
		{"scrambled", scrambled},
		{"rcm(scrambled)", restored},
	} {
		A := c.A
		var ghosts int
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			for i := 0; i < applies; i++ {
				op.Apply(x, y)
			}
			if p.Rank() == np/2 {
				ghosts = op.NGhosts()
			}
		})
		t.AddRowf(c.name, order.Bandwidth(A), ghosts, rs.ModelTime, rs.TotalBytes)
	}
	return []*report.Table{t}, nil
}

// E17 — escaping the inner-product merge: every CG iteration pays
// three allreduce merges (rho, p·Ap, stop test), each t_s·log NP; the
// Chebyshev semi-iteration pays none in its recurrence (one norm every
// 10 iterations for the stopping test). With spectral bounds known
// (here analytic; in practice a short CG probe with EstimateSpectrum),
// Chebyshev needs more iterations but less communication — and wins
// once t_s is large. This quantifies §4's observation that the inner
// products are CG's only unavoidable synchronisations.
func E17(cfg Config) ([]*report.Table, error) {
	n := cfg.pick(4096, 512)
	np := cfg.pick(8, 4)
	// A moderately conditioned SPD system (the regime preconditioned
	// production solves live in): CG and Chebyshev need comparable
	// iteration counts, so the communication difference decides.
	A := sparse.RandomSPD(n, 6, cfg.Seed)
	b := sparse.RandomVector(n, cfg.Seed+1)
	d := dist.NewBlock(n, np)
	tol := 1e-8

	// Spectral bounds from a short sequential CG probe — the
	// CG-Lanczos pipeline (seq.Options.EstimateSpectrum), widened for
	// safety since Ritz values sit inside the true spectrum.
	probeX := make([]float64, n)
	probe, err := seq.CG(A, b, probeX, seq.Options{MaxIter: 30, Tol: 1e-30, EstimateSpectrum: true})
	if err != nil && probe.Spectrum == nil {
		return nil, err
	}
	eigMin := probe.Spectrum.EigMin * 0.8
	eigMax := probe.Spectrum.EigMax * 1.1

	t := &report.Table{
		ID:     "E17",
		Title:  fmt.Sprintf("CG vs Chebyshev (dot-free), randspd n=%d np=%d", n, np),
		Header: []string{"t_startup", "cg_iters", "cg_time_s", "cheb_iters", "cheb_time_s", "cheb/cg_time"},
		Notes: []string{
			"CG: 2 allreduce merges per iteration (fused, see E19); Chebyshev: 1 norm per 10 iterations",
			fmt.Sprintf("spectral bounds from a 30-step CG probe (Ritz interval [%.3g, %.3g], widened)",
				probe.Spectrum.EigMin, probe.Spectrum.EigMax),
		},
	}
	for _, ts := range []float64{1e-6, 10e-6, 100e-6, 1e-3} {
		cost := cfg.Cost
		cost.TStartup = ts
		var cgIt, chIt int
		var solveErr error
		cgRS := comm.NewMachine(np, cfg.Topo, cost).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := core.CG(p, op, bv, xv, core.Options{Tol: tol, MaxIter: 40 * n})
			if p.Rank() == 0 {
				cgIt, solveErr = st.Iterations, err
			}
		})
		if solveErr != nil {
			return nil, solveErr
		}
		chRS := comm.NewMachine(np, cfg.Topo, cost).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := core.Chebyshev(p, op, bv, xv, eigMin, eigMax, core.Options{Tol: tol, MaxIter: 40 * n})
			if p.Rank() == 0 {
				chIt, solveErr = st.Iterations, err
			}
		})
		if solveErr != nil {
			return nil, solveErr
		}
		t.AddRowf(fmt.Sprintf("%.0e", ts), cgIt, cgRS.ModelTime, chIt, chRS.ModelTime,
			chRS.ModelTime/cgRS.ModelTime)
	}
	return []*report.Table{t}, nil
}

// E18 — weak scaling: the Gustafson view the strong-scaling E1 cannot
// show. The per-processor problem size is held fixed (n = base·NP), so
// perfect scalability would keep the per-iteration modeled time
// constant; the growth that remains is exactly the t_s·log NP merge
// terms of §4. Iteration counts rise with n (the Laplacian hardens),
// so the table reports time per iteration.
func E18(cfg Config) ([]*report.Table, error) {
	base := cfg.pick(2048, 256) // elements per processor
	t := &report.Table{
		ID:     "E18",
		Title:  fmt.Sprintf("weak scaling, banded CG, n = %d*NP", base),
		Header: []string{"np", "n", "iters", "model_time_s", "time_per_iter_s", "efficiency"},
		Notes: []string{
			"efficiency = time_per_iter(NP=1) / time_per_iter(NP)",
			"the decay is the t_s*log NP DOT_PRODUCT merge growth of §4",
		},
	}
	var perIter1 float64
	for _, np := range cfg.npSweep() {
		n := base * np
		A := sparse.Banded(n, 4)
		b := sparse.RandomVector(n, cfg.Seed)
		d := dist.NewBlock(n, np)
		var iters int
		var solveErr error
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := core.CG(p, op, bv, xv, core.Options{Tol: 1e-8, MaxIter: 10 * n})
			if p.Rank() == 0 {
				iters, solveErr = st.Iterations, err
			}
		})
		if solveErr != nil {
			return nil, solveErr
		}
		perIter := rs.ModelTime / float64(iters)
		if np == 1 {
			perIter1 = perIter
		}
		t.AddRowf(np, n, iters, rs.ModelTime, perIter, perIter1/perIter)
	}
	return []*report.Table{t}, nil
}
