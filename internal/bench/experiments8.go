package bench

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// E23 — communication-avoiding s-step CG. Table 1 is the headline
// rounds claim: at blocking factor s the solver recovers s iterations'
// scalars from one batched Gram allreduce, so merge rounds per
// iteration fall from plain CG's 2 to 1/s while the matrix-powers
// kernel keeps the halo traffic at one (widened) exchange per block;
// the simulated makespan confirms the cost model's prediction that the
// trade wins once the t_s·log NP latency term dominates (np >= 4).
// Table 2 is the stability map across the E19 matrix suite plus an
// ill-conditioned diagonal: where the monomial basis degrades, the
// residual-replacement guard trips (repl > 0) and the solve finishes
// at s=1 — degraded performance, never a wrong answer. Table 3 shows
// the per-np cost-model frontier and that the auto-selector's choice
// (the frontier argmin) is confirmed by the simulated machine.
func E23(cfg Config) ([]*report.Table, error) {
	factors := []int{1, 2, 4, 8}
	if cfg.SStep > 0 {
		factors = []int{cfg.SStep}
	}

	// One s-step solve on a fresh machine; returns the stats, the
	// gathered solution and the run's modeled time.
	solve := func(np int, A *sparse.CSR, b []float64, s int, opt core.Options) (core.Stats, []float64, comm.RunStats, error) {
		n := A.NRows
		d := dist.NewBlock(n, np)
		var st core.Stats
		var x []float64
		var solveErr error
		rs := cfg.machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRPowers(p, A, d, s)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv := darray.New(p, d)
			o := opt
			o.Work = core.NewWorkspace()
			stats, err := core.CGSStep(p, op, bv, xv, o, s)
			if err != nil {
				solveErr = err
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				st, x = stats, full
			}
		})
		return st, x, rs, solveErr
	}

	// roundsPerIter strips the setup/confirm rounds: plain CG pays one
	// batched setup merge then 2 rounds per iteration; CGSStep pays a
	// setup and a confirm round around ceil(iters/s) Gram rounds.
	roundsPerIter := func(st core.Stats, s int) float64 {
		setup := 1
		if s >= 2 {
			setup = 2
		}
		return float64(st.Reductions-setup) / float64(st.Iterations)
	}

	n := cfg.pick(1024, 256)
	A := sparse.Banded(n, 4)
	b := sparse.RandomVector(n, cfg.Seed)
	nps := []int{2, 4, 8, 16}
	if cfg.Quick {
		nps = []int{2, 4}
	}

	t1 := &report.Table{
		ID:     "E23",
		Title:  fmt.Sprintf("s-step CG: allreduce rounds and modeled time (banded n=%d)", n),
		Header: []string{"np", "s", "iters", "rounds/it", "repl", "model_t_s", "pred_t/it", "speedup_vs_s1"},
		Notes: []string{
			"rounds/it = merge rounds per iteration, setup/confirm excluded: 2 for plain",
			"CG, 1/s for the batched Gram recovery. pred_t/it = the cost model's per-",
			"iteration price (hpfexec.ModelSStep); speedup_vs_s1 = simulated makespan",
			"ratio against the s=1 run on the same np. repl > 0 would mean the",
			"stability guard fell back to plain CG (it must stay 0 on this band).",
		},
	}
	for _, np := range nps {
		var baseT float64
		d := dist.NewBlock(n, np)
		for _, s := range factors {
			st, _, rs, err := solve(np, A, b, s, core.Options{Tol: 1e-8})
			if err != nil {
				return nil, fmt.Errorf("E23 np=%d s=%d: %w", np, s, err)
			}
			if !st.Converged {
				return nil, fmt.Errorf("E23 np=%d s=%d: did not converge: %v", np, s, st)
			}
			if s == factors[0] {
				baseT = rs.ModelTime
			}
			mod := hpfexec.ModelSStep(cfg.machine(np), A, d, s)
			t1.AddRowf(np, s, st.Iterations, roundsPerIter(st, s), st.Replacements,
				rs.ModelTime, mod.TimePerIter, baseT/rs.ModelTime)
		}
	}

	// Table 2: the stability map. The diag matrix spans five decades of
	// eigenvalues — enough that the monomial basis at s=8 drifts past
	// the guard and the solve must finish on the plain-CG fallback.
	nd := cfg.pick(96, 64)
	eigs := make([]float64, nd)
	for i := range eigs {
		eigs[i] = math.Pow(10, 5*float64(i)/float64(nd-1))
	}
	suite := []struct {
		name string
		A    *sparse.CSR
	}{
		{"banded", sparse.Banded(cfg.pick(512, 128), 4)},
		{"laplace2d", sparse.Laplace2D(cfg.pick(24, 10), cfg.pick(24, 10))},
		{"randspd", sparse.RandomSPD(cfg.pick(200, 80), 6, cfg.Seed)},
		{"diag_k1e5", sparse.DiagWithEigenvalues(eigs)},
	}
	t2 := &report.Table{
		ID:     "E23",
		Title:  "s-step stability map: guard trips and convergence (np=4, tol 1e-10)",
		Header: []string{"matrix", "s", "converged", "iters", "repl", "rel_resid"},
		Notes: []string{
			"repl counts stability-guard trips (residual replacement + permanent s=1",
			"fallback). The guard may cost iterations, never the answer: every row",
			"converges to tolerance. rel_resid is the true ||b-Ax||/||b|| of the",
			"returned iterate, not the recurrence value.",
		},
	}
	for _, tc := range suite {
		bb := sparse.RandomVector(tc.A.NRows, cfg.Seed+1)
		for _, s := range factors {
			// The ill-conditioned diagonal needs room for the guard's
			// plain-CG fallback tail; 20n covers every suite member.
			opt := core.Options{Tol: 1e-10, MaxIter: 20 * tc.A.NRows}
			st, x, _, err := solve(4, tc.A, bb, s, opt)
			if err != nil {
				return nil, fmt.Errorf("E23 %s s=%d: %w", tc.name, s, err)
			}
			t2.AddRowf(tc.name, s, st.Converged, st.Iterations, st.Replacements,
				trueRelResidual(tc.A, x, bb))
		}
	}

	// Table 3: the cost-model frontier the auto-selector walks.
	t3 := &report.Table{
		ID:     "E23",
		Title:  fmt.Sprintf("cost-model s selection vs simulated machine (banded n=%d)", n),
		Header: []string{"np", "t/it_s1", "t/it_s2", "t/it_s4", "t/it_s8", "chosen", "sim_s1", "sim_chosen", "sim_agrees"},
		Notes: []string{
			"t/it_sK = modeled per-iteration time at blocking factor K; chosen = the",
			"frontier argmin hpfexec.ChooseSStep picks (ties to smaller s). sim_s1 and",
			"sim_chosen are simulated makespans; sim_agrees marks that the simulated",
			"machine confirms the model's verdict on whether s>1 wins.",
		},
	}
	selNPs := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		selNPs = []int{1, 2, 4}
	}
	for _, np := range selNPs {
		d := dist.NewBlock(n, np)
		chosen, frontier := hpfexec.ChooseSStep(cfg.machine(np), A, d)
		perIter := map[int]float64{}
		for _, mod := range frontier {
			perIter[mod.S] = mod.TimePerIter
		}
		_, _, rs1, err := solve(np, A, b, 1, core.Options{Tol: 1e-8})
		if err != nil {
			return nil, err
		}
		simChosen := rs1
		if chosen > 1 {
			if _, _, simChosen, err = solve(np, A, b, chosen, core.Options{Tol: 1e-8}); err != nil {
				return nil, err
			}
		}
		agrees := (chosen > 1) == (simChosen.ModelTime < rs1.ModelTime)
		if chosen == 1 {
			agrees = true // nothing to beat: model and sim trivially agree
		}
		t3.AddRowf(np, perIter[1], perIter[2], perIter[4], perIter[8], chosen,
			rs1.ModelTime, simChosen.ModelTime, agrees)
	}
	return []*report.Table{t1, t2, t3}, nil
}

// trueRelResidual evaluates ||b - A·x|| / ||b|| sequentially.
func trueRelResidual(A *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, A.NRows)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}
