package bench

import (
	"fmt"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/grid"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/mg"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
)

// E24 — HPCG-style multigrid-preconditioned CG on the 27-point
// stencil. Table 1 sweeps machine size × per-rank brick × V-cycle
// depth and makes the preconditioning claim concrete: at every
// configuration the V-cycle PCG needs strictly fewer iterations than
// plain CG on the same operator (the runner errors out otherwise, so
// the committed table is a checked claim, not a printout). Each row
// carries the HPCG-like figure of merit twice — charged flops over the
// modeled machine's makespan (the paper's cost model) and over host
// wall clock (the simulator's own throughput). Table 2 is the
// determinism gate: re-running a configuration reproduces the solution
// bit for bit and the modeled clock exactly.
func E24(cfg Config) ([]*report.Table, error) {
	type size struct{ nx, ny, nz int }
	sizes := []size{{4, 4, 4}, {6, 6, 6}, {8, 8, 8}}
	nps := []int{1, 2, 4, 8}
	if cfg.Quick {
		sizes = []size{{4, 4, 4}, {6, 6, 6}}
		nps = []int{1, 2, 4}
	}
	if cfg.HPCG != "" {
		var s size
		if _, err := fmt.Sscanf(cfg.HPCG, "%d,%d,%d", &s.nx, &s.ny, &s.nz); err != nil {
			return nil, fmt.Errorf("E24: -hpcg wants nx,ny,nz, got %q", cfg.HPCG)
		}
		sizes = []size{s}
	}
	levelSweep := []int{1, 2, mg.DefaultLevels}

	// plainCG solves the same stencil operator without the
	// preconditioner, on a fresh machine of the same shape.
	plainCG := func(np int, spec mg.Spec) (core.Stats, comm.RunStats, error) {
		var st core.Stats
		var solveErr error
		rs, err := cfg.machine(np).RunChecked(func(p *comm.Proc) {
			pb, err := mg.NewProblem(p, spec)
			if err != nil {
				solveErr = err
				return
			}
			n := pb.Fine().N()
			b := sparse.RandomVector(n, cfg.Seed)
			bv := darray.New(p, pb.Dist())
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv := darray.New(p, pb.Dist())
			stats, err := core.CG(p, pb.Operator(), bv, xv, core.Options{Tol: 1e-8, MaxIter: 10 * n})
			if err != nil {
				solveErr = err
				return
			}
			if p.Rank() == 0 {
				st = stats
			}
		})
		if err == nil {
			err = solveErr
		}
		return st, rs, err
	}

	// pcg solves through the hpfexec handle — the same path the service
	// runs — returning the stats, solution, run and wall seconds.
	pcg := func(np int, spec mg.Spec) (*hpfexec.BatchResult, []float64, float64, error) {
		pr, err := hpfexec.PrepareMG(cfg.machine(np), spec)
		if err != nil {
			return nil, nil, 0, err
		}
		b := sparse.RandomVector(pr.N(), cfg.Seed)
		start := time.Now()
		out, err := pr.SolveHPCGBatch([][]float64{b}, []core.Options{{Tol: 1e-8}})
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, nil, 0, err
		}
		return out, out.Results[0].X, wall, nil
	}

	t1 := &report.Table{
		ID:    "E24",
		Title: "HPCG: V-cycle PCG vs plain CG on the 27-point stencil (tol 1e-8)",
		Header: []string{"np", "brick", "lv", "cg_it", "pcg_it", "model_t_s",
			"model_gflops", "wall_gflops"},
		Notes: []string{
			"brick = per-rank nx×ny×nz (global z stacks the ranks); lv = hierarchy depth",
			"after grid.ClampLevels. pcg_it < cg_it is enforced, not observed: the runner",
			"fails if the V-cycle does not strictly beat plain CG anywhere. model_gflops",
			"= charged flops / modeled makespan (the FoM on the simulated machine);",
			"wall_gflops = the same flops over host wall clock.",
		},
	}
	for _, np := range nps {
		for _, sz := range sizes {
			seen := map[int]bool{}
			for _, want := range levelSweep {
				spec := mg.Spec{Nx: sz.nx, Ny: sz.ny, Nz: sz.nz, Levels: want}.WithDefaults()
				fine, err := spec.Fine(np)
				if err != nil {
					return nil, fmt.Errorf("E24 np=%d %v: %w", np, sz, err)
				}
				lv := grid.ClampLevels(fine, want)
				if seen[lv] {
					continue // clamp collapsed this depth into a row already emitted
				}
				seen[lv] = true
				cgStats, _, err := plainCG(np, spec)
				if err != nil {
					return nil, fmt.Errorf("E24 np=%d %v cg: %w", np, sz, err)
				}
				out, _, wall, err := pcg(np, spec)
				if err != nil {
					return nil, fmt.Errorf("E24 np=%d %v pcg: %w", np, sz, err)
				}
				pcgStats := out.Results[0].Stats
				if !cgStats.Converged || !pcgStats.Converged {
					return nil, fmt.Errorf("E24 np=%d %v L%d: no convergence (cg %v, pcg %v)",
						np, sz, lv, cgStats.Converged, pcgStats.Converged)
				}
				if lv > 1 && pcgStats.Iterations >= cgStats.Iterations {
					return nil, fmt.Errorf("E24 np=%d %v L%d: pcg %d iters >= cg %d — preconditioner not helping",
						np, sz, lv, pcgStats.Iterations, cgStats.Iterations)
				}
				t1.AddRowf(np, fmt.Sprintf("%dx%dx%d", sz.nx, sz.ny, sz.nz), lv,
					cgStats.Iterations, pcgStats.Iterations, out.Run.ModelTime,
					report.GFlopRate(out.Run.TotalFlops, out.Run.ModelTime),
					report.GFlopRate(out.Run.TotalFlops, wall))
			}
		}
	}

	// Table 2: determinism. The same spec on the same machine shape
	// must reproduce the solution bitwise and the modeled clock exactly
	// — the property every cached-plan and cluster-shard guarantee
	// stands on.
	t2 := &report.Table{
		ID:     "E24",
		Title:  "HPCG determinism: repeat runs at fixed np",
		Header: []string{"np", "brick", "bit_identical", "model_t_equal"},
		Notes: []string{
			"Each row solves the same spec twice on fresh machines and compares the",
			"full solution vector bitwise plus the modeled makespan exactly. Any",
			"false here would break the plan registry's warm-path contract.",
		},
	}
	detNPs := []int{1, 4}
	if cfg.Quick {
		detNPs = []int{1, 2}
	}
	for _, np := range detNPs {
		spec := mg.Spec{Nx: 4, Ny: 4, Nz: 4}.WithDefaults()
		out1, x1, _, err := pcg(np, spec)
		if err != nil {
			return nil, err
		}
		out2, x2, _, err := pcg(np, spec)
		if err != nil {
			return nil, err
		}
		identical := len(x1) == len(x2)
		for i := 0; identical && i < len(x1); i++ {
			identical = x1[i] == x2[i]
		}
		tEqual := out1.Run.ModelTime == out2.Run.ModelTime
		if !identical || !tEqual {
			return nil, fmt.Errorf("E24 np=%d: repeat run diverged (bits %v, clock %v)", np, identical, tEqual)
		}
		t2.AddRowf(np, "4x4x4", identical, tEqual)
	}
	return []*report.Table{t1, t2}, nil
}
