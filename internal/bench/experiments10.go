package bench

import (
	"fmt"
	"strings"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/mfree"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// parseMFreeSpec parses cgbench's -mfree argument: "5pt:nx,ny" or
// "27pt:nx,ny,nz".
func parseMFreeSpec(s string) (mfree.Spec, error) {
	kind, dims, ok := strings.Cut(s, ":")
	var spec mfree.Spec
	if !ok {
		return spec, fmt.Errorf("bench: -mfree wants 5pt:nx,ny or 27pt:nx,ny,nz, got %q", s)
	}
	spec.Stencil = kind
	switch kind {
	case "5pt":
		if _, err := fmt.Sscanf(dims, "%d,%d", &spec.Nx, &spec.Ny); err != nil {
			return spec, fmt.Errorf("bench: -mfree 5pt wants nx,ny, got %q", dims)
		}
	case "27pt":
		if _, err := fmt.Sscanf(dims, "%d,%d,%d", &spec.Nx, &spec.Ny, &spec.Nz); err != nil {
			return spec, fmt.Errorf("bench: -mfree 27pt wants nx,ny,nz, got %q", dims)
		}
	default:
		return spec, fmt.Errorf("bench: -mfree stencil %q unsupported (5pt, 27pt)", kind)
	}
	return spec, nil
}

// E25 — matrix-free stencil CG vs the assembled CSR executor. Both arms
// solve the identical system on the identical brick layout: the
// assembled arm pays generator assembly (host wall) plus the inspector
// ghost exchange (modeled setup) before it can iterate; the matrix-free
// arm derives its halo schedule from brick coordinates and starts
// iterating at modeled clock zero. The claims are enforced, not
// observed — the runner errors unless every matrix-free solution is
// bit-identical to its assembled counterpart, matrix-free modeled setup
// is exactly zero cold AND warm, assembled cold setup is nonzero
// beyond one rank, and the matrix-free total never exceeds the
// assembled total. Table 2 pins the warm-registry semantics: a second
// batch from the same Prepared handle repeats the answer bitwise with
// setup still exactly zero.
func E25(cfg Config) ([]*report.Table, error) {
	specs := []mfree.Spec{
		{Stencil: "5pt", Nx: 32, Ny: 24},
		{Stencil: "5pt", Nx: 64, Ny: 48},
		{Stencil: "27pt", Nx: 10, Ny: 10, Nz: 16},
	}
	nps := []int{1, 2, 4, 8}
	if cfg.Quick {
		specs = []mfree.Spec{
			{Stencil: "5pt", Nx: 16, Ny: 10},
			{Stencil: "27pt", Nx: 6, Ny: 6, Nz: 8},
		}
		nps = []int{1, 2, 4}
	}
	if cfg.MFree != "" {
		spec, err := parseMFreeSpec(cfg.MFree)
		if err != nil {
			return nil, err
		}
		specs = []mfree.Spec{spec}
	}
	opts := []core.Options{{Tol: 1e-8}}

	// assembled runs CG over the generator-assembled CSR with the ghost
	// executor on the SAME brick layout the matrix-free operator uses,
	// so the two arms differ only in where the operator comes from.
	// Returns the solution, stats, run stats, the modeled setup clock
	// (max over ranks at the moment the executor finished its inspector
	// exchange) and host wall seconds including assembly.
	assembled := func(np int, spec mfree.Spec, b []float64) ([]float64, core.Stats, comm.RunStats, float64, float64, error) {
		start := time.Now()
		A, err := spec.Assemble()
		if err != nil {
			return nil, core.Stats{}, comm.RunStats{}, 0, 0, err
		}
		brick, err := spec.Brick(np)
		if err != nil {
			return nil, core.Stats{}, comm.RunStats{}, 0, 0, err
		}
		var x []float64
		var st core.Stats
		setups := make([]float64, np)
		var solveErr error
		rs, err := cfg.machine(np).RunChecked(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, brick.VectorDist())
			setups[p.Rank()] = p.Clock()
			bv := darray.New(p, brick.VectorDist())
			xv := darray.New(p, brick.VectorDist())
			bv.SetGlobal(func(g int) float64 { return b[g] })
			s, err := core.CG(p, op, bv, xv, opts[0])
			if err != nil {
				solveErr = err
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				x, st = full, s
			}
		})
		if err == nil {
			err = solveErr
		}
		var setup float64
		for _, s := range setups {
			if s > setup {
				setup = s
			}
		}
		return x, st, rs, setup, time.Since(start).Seconds(), err
	}

	t1 := &report.Table{
		ID:    "E25",
		Title: "Matrix-free stencil CG vs assembled CSR on the same brick layout (tol 1e-8)",
		Header: []string{"np", "stencil", "n", "it", "asm_setup_s", "asm_total_s",
			"mf_total_s", "asm_wall_s", "mf_wall_s", "mem_ratio", "bits"},
		Notes: []string{
			"Both arms solve the identical system with the identical z-slab layout;",
			"asm_setup_s is the assembled arm's modeled clock after the inspector ghost",
			"exchange (the matrix-free arm's equivalent is exactly 0, cold and warm,",
			"enforced). bits = solutions bitwise identical (enforced, with equal",
			"iteration counts). mf_total_s <= asm_total_s is enforced; asm_wall_s",
			"includes host-side matrix assembly, which the matrix-free arm never does.",
			"mem_ratio = assembled CSR resident bytes / matrix-free handle bytes.",
		},
	}
	for _, spec := range specs {
		for _, np := range nps {
			if _, err := spec.WithDefaults().Brick(np); err != nil {
				continue // slab thinner than the machine: size not runnable at this np
			}
			pr, err := hpfexec.PrepareStencil(cfg.machine(np), spec)
			if err != nil {
				return nil, fmt.Errorf("E25 np=%d %s: %w", np, spec.Stencil, err)
			}
			b := sparse.RandomVector(pr.N(), cfg.Seed)

			mfStart := time.Now()
			out, err := pr.SolveStencilBatch([][]float64{b}, opts)
			mfWall := time.Since(mfStart).Seconds()
			if err != nil {
				return nil, fmt.Errorf("E25 np=%d %s mfree: %w", np, spec.Stencil, err)
			}
			if out.SetupModelTime != 0 {
				return nil, fmt.Errorf("E25 np=%d %s: cold matrix-free setup %g, want exactly 0",
					np, spec.Stencil, out.SetupModelTime)
			}
			mfRes := out.Results[0]
			if !mfRes.Stats.Converged {
				return nil, fmt.Errorf("E25 np=%d %s: matrix-free CG did not converge", np, spec.Stencil)
			}

			ax, ast, ars, asmSetup, asmWall, err := assembled(np, spec, b)
			if err != nil {
				return nil, fmt.Errorf("E25 np=%d %s assembled: %w", np, spec.Stencil, err)
			}
			if np > 1 && asmSetup <= 0 {
				return nil, fmt.Errorf("E25 np=%d %s: assembled setup %g, want > 0 (inspector not charged?)",
					np, spec.Stencil, asmSetup)
			}
			if mfRes.Stats.Iterations != ast.Iterations {
				return nil, fmt.Errorf("E25 np=%d %s: %d matrix-free iterations vs %d assembled",
					np, spec.Stencil, mfRes.Stats.Iterations, ast.Iterations)
			}
			for i := range ax {
				if mfRes.X[i] != ax[i] {
					return nil, fmt.Errorf("E25 np=%d %s: x[%d] = %v matrix-free vs %v assembled — not bit-identical",
						np, spec.Stencil, i, mfRes.X[i], ax[i])
				}
			}
			if out.Run.ModelTime > ars.ModelTime {
				return nil, fmt.Errorf("E25 np=%d %s: matrix-free total %g > assembled %g",
					np, spec.Stencil, out.Run.ModelTime, ars.ModelTime)
			}

			s := spec.WithDefaults()
			csrBytes := int64(np) * (int64(s.NNZ())*16 + int64(s.N()+1)*8)
			t1.AddRowf(np, s.Stencil, s.N(), ast.Iterations, asmSetup, ars.ModelTime,
				out.Run.ModelTime, asmWall, mfWall,
				fmt.Sprintf("%.0fx", float64(csrBytes)/float64(pr.MemoryBytes())), true)
		}
	}

	// Table 2: warm-registry semantics. A second batch from the same
	// Prepared handle — the serving tier's plan-cache hit — must repeat
	// the cold answer bitwise with setup still exactly zero; there was
	// never an inspector exchange to amortize.
	t2 := &report.Table{
		ID:     "E25",
		Title:  "Matrix-free warm registry: cold vs warm batches from one handle",
		Header: []string{"np", "stencil", "cold_setup_s", "warm_setup_s", "bit_identical", "model_t_equal"},
		Notes: []string{
			"Unlike assembled plans (warm skips the inspector) and MG hierarchies (warm",
			"skips level setup), the matrix-free handle has nothing to skip: setup is",
			"exactly 0 in both columns, enforced. Warmth buys machine reuse only, and",
			"answers stay bitwise stable across batch windows.",
		},
	}
	detNPs := []int{1, 4}
	if cfg.Quick {
		detNPs = []int{1, 2}
	}
	for _, np := range detNPs {
		spec := mfree.Spec{Stencil: "5pt", Nx: 16, Ny: 10}
		pr, err := hpfexec.PrepareStencil(cfg.machine(np), spec)
		if err != nil {
			return nil, err
		}
		b := sparse.RandomVector(pr.N(), cfg.Seed)
		cold, err := pr.SolveStencilBatch([][]float64{b}, opts)
		if err != nil {
			return nil, err
		}
		warm, err := pr.SolveStencilBatch([][]float64{b}, opts)
		if err != nil {
			return nil, err
		}
		if cold.SetupModelTime != 0 || warm.SetupModelTime != 0 {
			return nil, fmt.Errorf("E25 np=%d: setup cold %g warm %g, want exactly 0/0",
				np, cold.SetupModelTime, warm.SetupModelTime)
		}
		identical := true
		for i := range cold.Results[0].X {
			if cold.Results[0].X[i] != warm.Results[0].X[i] {
				identical = false
				break
			}
		}
		tEqual := cold.SolveModelTime[0] == warm.SolveModelTime[0]
		if !identical || !tEqual {
			return nil, fmt.Errorf("E25 np=%d: warm batch diverged (bits %v, clock %v)", np, identical, tEqual)
		}
		t2.AddRowf(np, "5pt", cold.SetupModelTime, warm.SetupModelTime, identical, tEqual)
	}
	return []*report.Table{t1, t2}, nil
}
