package bench

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	c := DefaultConfig()
	c.Quick = true
	return c
}

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Fatalf("%d experiments registered, want 26", len(ids))
	}
	if ids[0] != "E1" || ids[1] != "E2" || ids[len(ids)-1] != "E26" {
		t.Errorf("order wrong: %v", ids)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Every experiment must run in quick mode and produce non-empty,
// rectangular tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := quickCfg()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tables, err := r(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q empty", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %q: row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
			}
		})
	}
}

func TestRunAndRender(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndRender(&buf, "E5", quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E5", "bicgstab", "matvec/it"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := RunAndRender(&buf, "E99", quickCfg()); err == nil {
		t.Error("unknown id accepted")
	}
}

func cell(t *testing.T, tab interface {
	// minimal view over report.Table
}, _ int, _ int) string {
	t.Helper()
	return ""
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// E1's headline shape: iteration counts identical across np, speedup > 1
// at the largest np.
func TestE1Shape(t *testing.T) {
	tables, err := E1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	iters := map[string]bool{}
	for _, row := range tab.Rows {
		iters[row[1]] = true
	}
	if len(iters) != 1 {
		t.Errorf("iteration count varies with np: %v", tab.Rows)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if sp := parseF(t, last[5]); sp <= 1 {
		t.Errorf("no speedup at np=%s: %g", last[0], sp)
	}
}

// E2: measured communication within 2x of the analytic prediction.
func TestE2MatchesFormula(t *testing.T) {
	tables, err := E2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		ratio := parseF(t, row[3])
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("np=%s: measured/predicted = %g, outside [0.5, 2]", row[0], ratio)
		}
	}
}

// E3/E4: the private-merge execution must beat the serialized one for
// np > 1 and the serialized compute must not scale.
func TestE4ExtensionWins(t *testing.T) {
	tables, err := E4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		np, _ := strconv.Atoi(row[0])
		speedup := parseF(t, row[1])
		if np > 1 && speedup <= 1 {
			t.Errorf("np=%d: extension speedup %g <= 1", np, speedup)
		}
	}
}

// E6: the transpose product must move at least as many bytes as the
// forward one (the merge phase re-appears) and cost a comparable
// modeled time — the paper's point is that the row-access optimisation
// cannot be kept for both products.
func TestE6TransposePenalty(t *testing.T) {
	tables, err := E6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		fwdBytes := parseF(t, row[4])
		bwdBytes := parseF(t, row[5])
		if bwdBytes < fwdBytes {
			t.Errorf("np=%s: ApplyT moved %g bytes < Apply %g", row[0], bwdBytes, fwdBytes)
		}
		if ratio := parseF(t, row[3]); ratio < 1 {
			t.Errorf("np=%s: ApplyT/Apply time ratio %g < 1 (merge phase missing)", row[0], ratio)
		}
	}
}

// E8: the optimal partitioner's imbalance must not exceed uniform's,
// and its modeled time must be the smallest.
func TestE8BalancedWins(t *testing.T) {
	tables, err := E8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	var uniImb, balImb, uniTime, balTime float64
	for _, row := range rows {
		switch row[0] {
		case "uniform_atom_block":
			uniImb, uniTime = parseF(t, row[1]), parseF(t, row[3])
		case "balanced_optimal":
			balImb, balTime = parseF(t, row[1]), parseF(t, row[3])
		}
	}
	if balImb > uniImb {
		t.Errorf("balanced imbalance %g > uniform %g", balImb, uniImb)
	}
	if balTime > uniTime {
		t.Errorf("balanced model time %g > uniform %g", balTime, uniTime)
	}
}

// E9: the distinct-eigenvalue bound column must be all true, and every
// preconditioner must beat plain CG.
func TestE9Convergence(t *testing.T) {
	tables, err := E9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "true" {
			t.Errorf("eigenvalue bound violated: %v", row)
		}
	}
	var plain int
	for _, row := range tables[1].Rows {
		iters, _ := strconv.Atoi(row[1])
		if row[0] == "none" {
			plain = iters
			continue
		}
		if iters >= plain {
			t.Errorf("%s: %d iterations >= plain %d", row[0], iters, plain)
		}
	}
}

// E13: the checkerboard must move fewer bytes than striping at every
// processor count (the bandwidth term drops from n to n/sqrt(NP)).
func TestE13CheckerboardBytes(t *testing.T) {
	tables, err := E13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		striped := parseF(t, row[4])
		checker := parseF(t, row[5])
		if checker >= striped {
			t.Errorf("np=%s: checkerboard bytes %g >= striped %g", row[0], checker, striped)
		}
	}
}

// E14: the inspector-executor must beat the broadcast in both time and
// bytes on a banded matrix, even including the inspector cost.
func TestE14GhostWins(t *testing.T) {
	tables, err := E14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if sp := parseF(t, row[3]); sp <= 1 {
			t.Errorf("np=%s: ghost speedup %g <= 1", row[0], sp)
		}
		bcB := parseF(t, row[4])
		ghB := parseF(t, row[5])
		if ghB >= bcB/10 {
			t.Errorf("np=%s: ghost bytes %g not far below broadcast %g", row[0], ghB, bcB)
		}
	}
}

// E10: dot must cost more than axpy (the merge phase) and both must
// shrink as np grows.
func TestE10VectorOps(t *testing.T) {
	tables, err := E10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	for _, row := range rows {
		axpy, dot := parseF(t, row[1]), parseF(t, row[3])
		if row[0] != "1" && dot <= axpy {
			// np=1 has no merge phase; beyond that dot must pay it.
			t.Errorf("np=%s: dot %g <= axpy %g (missing merge cost)", row[0], dot, axpy)
		}
	}
	firstAxpy := parseF(t, rows[0][1])
	lastAxpy := parseF(t, rows[len(rows)-1][1])
	if lastAxpy >= firstAxpy {
		t.Errorf("axpy did not scale: %g -> %g", firstAxpy, lastAxpy)
	}
}

// E15: on a no-locality matrix the best execution must flip between
// low-startup (ghost wins) and high-startup (broadcast wins) machines.
func TestE15WinnerFlips(t *testing.T) {
	tables, err := E15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	// Banded at the lowest startup time: the halo must win.
	if got := tables[0].Rows[0][4]; got != "ghost" {
		t.Errorf("banded low-t_s best = %s, want ghost", got)
	}
	// Across the sweep the winner must not be constant (the portability
	// point): matrix structure and machine constants change the choice.
	seen := map[string]bool{}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			seen[row[4]] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("winner never flips across matrices/machines: %v", seen)
	}
}

// E16: RCM must shrink the scrambled matrix's halo dramatically and
// bring the modeled time back toward the original banded layout.
func TestE16RCMShrinksHalo(t *testing.T) {
	tables, err := E16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	get := func(name string, col int) float64 {
		for _, row := range rows {
			if row[0] == name {
				return parseF(t, row[col])
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	if get("scrambled", 2) < 4*get("original", 2) {
		t.Errorf("scramble did not blow up the halo: %g vs %g", get("scrambled", 2), get("original", 2))
	}
	if get("rcm(scrambled)", 2) > get("scrambled", 2)/4 {
		t.Errorf("RCM halo %g not far below scrambled %g", get("rcm(scrambled)", 2), get("scrambled", 2))
	}
	if get("rcm(scrambled)", 3) >= get("scrambled", 3) {
		t.Errorf("RCM time %g >= scrambled %g", get("rcm(scrambled)", 3), get("scrambled", 3))
	}
}

// E17: at large t_s the dot-free Chebyshev must beat CG in modeled
// time despite needing more iterations.
func TestE17ChebyshevWinsAtHighStartup(t *testing.T) {
	tables, err := E17(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1] // t_s = 1ms
	if ratio := parseF(t, last[5]); ratio >= 1 {
		t.Errorf("t_s=1ms: chebyshev/cg time ratio %g, want < 1", ratio)
	}
	// Chebyshev needs at least as many iterations as CG (optimal Krylov).
	cgIters, _ := strconv.Atoi(last[1])
	chIters, _ := strconv.Atoi(last[3])
	if chIters < cgIters {
		t.Errorf("chebyshev %d iterations < CG %d (CG is Krylov-optimal)", chIters, cgIters)
	}
}

// E18: weak-scaling efficiency must stay high (the halo mat-vec is
// NP-independent; only the log NP dot merges decay it).
func TestE18WeakScaling(t *testing.T) {
	tables, err := E18(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	if eff := parseF(t, last[5]); eff < 0.3 || eff > 1.05 {
		t.Errorf("weak-scaling efficiency at np=%s is %g, outside (0.3, 1.05)", last[0], eff)
	}
}

// E19: the communication-avoidance ledger must show up in the harness —
// reduction rounds per iteration strictly decreasing from the unfused
// baseline through fused CG to the single-reduction variant, with the
// modeled time following, and the Rabenseifner crossover table showing
// the tree winning short vectors and losing long ones.
func TestE19FusionWins(t *testing.T) {
	tables, err := E19(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	// Group table-1 rows by (np, n) and compare the three variants.
	type key struct{ np, n string }
	rounds := map[key]map[string]float64{}
	model := map[key]map[string]float64{}
	for _, row := range tables[0].Rows {
		k := key{row[1], row[2]}
		if rounds[k] == nil {
			rounds[k] = map[string]float64{}
			model[k] = map[string]float64{}
		}
		rounds[k][row[0]] = parseF(t, row[4])
		model[k][row[0]] = parseF(t, row[5])
	}
	for k, r := range rounds {
		if !(r["single_1round"] < r["fused_2round"] && r["fused_2round"] < r["unfused_3round"]) {
			t.Errorf("np=%s n=%s: rounds/it not decreasing: %v", k.np, k.n, r)
		}
		if r["fused_2round"] != 2 {
			t.Errorf("np=%s n=%s: fused CG pays %g rounds/it, want exactly 2", k.np, k.n, r["fused_2round"])
		}
		m := model[k]
		if k.np != "1" && !(m["fused_2round"] < m["unfused_3round"]) {
			t.Errorf("np=%s n=%s: fused model time %g not below unfused %g", k.np, k.n, m["fused_2round"], m["unfused_3round"])
		}
	}
	// Table 2: tree wins a 1-word merge, Rabenseifner wins 4096 words.
	for _, row := range tables[1].Rows {
		words := row[1]
		winner := row[6]
		if words == "1" && winner != "tree" {
			t.Errorf("np=%s words=1: winner %s, want tree", row[0], winner)
		}
		if words == "4096" && winner != "recursive" {
			t.Errorf("np=%s words=4096: winner %s, want recursive", row[0], winner)
		}
	}
}

// The CSV rendering path used by `cgbench -csv` must produce parseable
// output for a real experiment table.
func TestExperimentTableCSV(t *testing.T) {
	tables, err := E5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tables[0].RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var dataLines int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if got := len(strings.Split(ln, ",")); got != len(tables[0].Header) {
			t.Fatalf("csv row %q has %d fields, want %d", ln, got, len(tables[0].Header))
		}
		dataLines++
	}
	if dataLines != len(tables[0].Rows)+1 {
		t.Errorf("csv has %d data lines, want %d", dataLines, len(tables[0].Rows)+1)
	}
}

// E20: resilience must be free when healthy (bit-identical solutions,
// overhead only from checkpoint writes), and under injected crashes
// the checkpointed solves must recover — with some work lost — while
// still reproducing the fault-free answer (asserted inside the
// runner). Checkpointing must beat restart-from-scratch when failures
// actually strike.
func TestE20ResilienceShape(t *testing.T) {
	tables, err := E20(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 tables, got %d", len(tables))
	}
	for _, row := range tables[0].Rows {
		if row[8] != "true" {
			t.Errorf("healthy resilient solve not bit-identical: %v", row)
		}
		over := parseF(t, row[7])
		if over < 0 || over > 10 {
			t.Errorf("checkpoint overhead %g%% outside [0, 10]: %v", over, row)
		}
	}
	// Table 2: every recovery row completed; crashed rows lose work and
	// slow down, and mission time is never below the healthy makespan.
	sawCrash := false
	for _, row := range tables[1].Rows {
		crashes, _ := strconv.Atoi(row[3])
		slow := parseF(t, row[7])
		if crashes > 0 {
			sawCrash = true
			if slow <= 1 {
				t.Errorf("crashes=%d but slowdown %g <= 1: %v", crashes, slow, row)
			}
		}
		if slow < 0.99 {
			t.Errorf("mission faster than healthy makespan: %v", row)
		}
	}
	if !sawCrash {
		t.Error("no crashes delivered across the whole MTBF sweep (plan misconfigured?)")
	}
	// Table 3: with failures striking, some checkpointed interval must
	// beat interval=0 (restart from scratch).
	var scratch float64
	best := math.Inf(1)
	crashed := false
	for _, row := range tables[2].Rows {
		mission := parseF(t, row[4])
		if crashes, _ := strconv.Atoi(row[2]); crashes > 0 {
			crashed = true
		}
		if row[1] == "0" {
			scratch = mission
		} else if mission < best {
			best = mission
		}
	}
	if crashed && best >= scratch {
		t.Errorf("no checkpoint interval beats restart-from-scratch: best %g vs %g", best, scratch)
	}
}

// E21: the solver service must amortize setup. Table 2 is
// deterministic (one worker, preloaded queue, exact occupancy): the
// per-job share of the modeled setup must fall monotonically with the
// batch cap, and a batch of 4 must cut it to at most a third of the
// solo cost while the per-solve model time stays flat.
func TestE21BatchingAmortizes(t *testing.T) {
	tables, err := E21(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	// Table 1: every sweep cell processed its full job count.
	for _, row := range tables[0].Rows {
		if parseF(t, row[4]) <= 0 {
			t.Errorf("non-positive throughput: %v", row)
		}
	}
	perJobSetup := map[int]float64{}
	perJobSolve := map[int]float64{}
	for _, row := range tables[1].Rows {
		b, _ := strconv.Atoi(row[0])
		if occ := parseF(t, row[1]); occ != float64(b) {
			t.Errorf("batch %d: occupancy %g not exact", b, occ)
		}
		perJobSetup[b] = parseF(t, row[3])
		perJobSolve[b] = parseF(t, row[4])
	}
	if perJobSetup[1] <= 0 {
		t.Fatal("solo setup share is zero — stage attribution broken")
	}
	if !(perJobSetup[8] < perJobSetup[4] && perJobSetup[4] < perJobSetup[2] && perJobSetup[2] < perJobSetup[1]) {
		t.Errorf("setup share not monotone in batch size: %v", perJobSetup)
	}
	if perJobSetup[4] > perJobSetup[1]/3 {
		t.Errorf("batch=4 setup share %g not under 1/3 of solo %g", perJobSetup[4], perJobSetup[1])
	}
	for b, s := range perJobSolve {
		if rel := math.Abs(s-perJobSolve[1]) / perJobSolve[1]; rel > 0.05 {
			t.Errorf("batch %d per-solve model time drifted %g%% from solo", b, rel*100)
		}
	}
}

// E22: the cluster must serve warm plan-cache traffic with zero
// modeled setup. Table 2 is deterministic (sequential passes over a
// fixed matrix set, occupancy 1): pass 0 is all misses with positive
// setup, every later pass is all hits with setup exactly 0 and a
// solve model time identical to the cold pass.
func TestE22WarmPathZeroSetup(t *testing.T) {
	tables, err := E22(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	for _, row := range tables[0].Rows {
		if parseF(t, row[3]) <= 0 {
			t.Errorf("non-positive cluster throughput: %v", row)
		}
	}
	var coldSolve float64
	for i, row := range tables[1].Rows {
		hitRate := parseF(t, row[3])
		setup := parseF(t, row[4])
		share := parseF(t, row[5])
		solve := parseF(t, row[6])
		if i == 0 {
			if hitRate != 0 {
				t.Errorf("cold pass hit rate %g, want 0", hitRate)
			}
			if setup <= 0 {
				t.Errorf("cold pass setup %g, want > 0", setup)
			}
			coldSolve = solve
			continue
		}
		if hitRate != 1 {
			t.Errorf("pass %d hit rate %g, want 1", i, hitRate)
		}
		if setup != 0 || share != 0 {
			t.Errorf("pass %d warm setup %g (share %g), want exactly 0", i, setup, share)
		}
		if solve != coldSolve {
			t.Errorf("pass %d solve model %g differs from cold %g", i, solve, coldSolve)
		}
	}
}
