// Per-rank multigrid level: the local rows of the 27-point stencil in
// CSR form with the ghost encoding RowBlockCSRGhost established
// (column >= 0 is a local offset, column < 0 is ghost slot -(c+1)),
// one inspector halo schedule for the smoother/mat-vec, and — on
// coarse levels — the injection restriction and its transpose
// prolongation as inspector gather schedules over the neighbouring
// level's distribution. Under the z-slab decomposition with even
// local dimensions the transfer schedules are empty (fine plane 2k
// and coarse plane k share an owner), but building them through the
// inspector keeps the code correct for any clamped hierarchy shape.
package mg

import (
	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/grid"
	"hpfcg/internal/inspector"
)

// level is one grid of the hierarchy as rank r sees it. Construction
// is collective (inspector.Build exchanges request lists); afterwards
// every operation is an Exchange plus purely local sweeps, and all
// buffers are preallocated so the steady state allocates nothing.
type level struct {
	b  grid.Brick3
	d  dist.Irregular
	lo int // first owned global point
	n  int // owned point count

	rowPtr []int
	col    []int // >= 0: local offset; < 0: ghost slot -(c+1)
	val    []float64
	diag   []float64
	sched  *inspector.Schedule

	nnzLocal  int
	nnzGlobal int64

	// Scratch for the V-cycle: the restricted right-hand side and the
	// correction on this level, and the residual restricted from here.
	r, x, res []float64

	// Transfer from the next-finer level (nil on the finest level).
	// restrictSrc[i] locates coarse point i's injection source in the
	// fine residual (local offset or restrictSched ghost slot);
	// prolongFine/prolongSrc scatter this level's correction back to
	// the fine points with all-even coordinates.
	restrictSrc   []int
	restrictSched *inspector.Schedule
	prolongFine   []int
	prolongSrc    []int
	prolongSched  *inspector.Schedule
}

// newLevel builds rank p's piece of the 27-point stencil on brick b.
// Collective: every rank must call it with the same brick.
func newLevel(p *comm.Proc, b grid.Brick3) *level {
	r := p.Rank()
	d := b.VectorDist()
	lv := &level{
		b:         b,
		d:         d,
		lo:        d.Lo(r),
		n:         d.Count(r),
		nnzGlobal: stencilNNZ(b),
	}
	zlo, zhi := b.ZRange(r)
	lv.rowPtr = make([]int, lv.n+1)
	lv.col = make([]int, 0, lv.n*27)
	lv.val = make([]float64, 0, lv.n*27)
	lv.diag = make([]float64, lv.n)
	lv.r = make([]float64, lv.n)
	lv.x = make([]float64, lv.n)
	lv.res = make([]float64, lv.n)

	// Rows in local order (z, y, x ascending = global index ascending),
	// columns within a row in ascending global order. First with global
	// column indices; remapped to the local/ghost encoding once the
	// inspector has assigned ghost slots.
	i := 0
	for z := zlo; z < zhi; z++ {
		for y := 0; y < b.Y; y++ {
			for x := 0; x < b.X; x++ {
				self := b.Index(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					zz := z + dz
					if zz < 0 || zz >= b.Z {
						continue
					}
					for dy := -1; dy <= 1; dy++ {
						yy := y + dy
						if yy < 0 || yy >= b.Y {
							continue
						}
						for dx := -1; dx <= 1; dx++ {
							xx := x + dx
							if xx < 0 || xx >= b.X {
								continue
							}
							g := b.Index(xx, yy, zz)
							lv.col = append(lv.col, g)
							if g == self {
								lv.val = append(lv.val, 26)
								lv.diag[i] = 26
							} else {
								lv.val = append(lv.val, -1)
							}
						}
					}
				}
				i++
				lv.rowPtr[i] = len(lv.col)
			}
		}
	}
	lv.nnzLocal = len(lv.col)
	lv.sched = inspector.Build(p, d, lv.col)
	for k, g := range lv.col {
		if owner, off := d.Local(g); owner == r {
			lv.col[k] = off
		} else {
			lv.col[k] = -(lv.sched.GhostSlot(g) + 1)
		}
	}
	return lv
}

// buildTransfer wires this (coarse) level to its next-finer level f:
// the injection restriction gather and the transpose prolongation
// scatter. Collective.
func (lv *level) buildTransfer(p *comm.Proc, f *level) {
	r := p.Rank()

	// Restriction: coarse point (x,y,z) reads fine point (2x,2y,2z).
	fineG := make([]int, lv.n)
	for i := range fineG {
		x, y, z := lv.b.Coords(lv.lo + i)
		fineG[i] = f.b.Index(2*x, 2*y, 2*z)
	}
	lv.restrictSched = inspector.Build(p, f.d, fineG)
	lv.restrictSrc = fineG
	for i, g := range fineG {
		if owner, off := f.d.Local(g); owner == r {
			lv.restrictSrc[i] = off
		} else {
			lv.restrictSrc[i] = -(lv.restrictSched.GhostSlot(g) + 1)
		}
	}

	// Prolongation: every fine point with all-even coordinates adds
	// the value of its coarse image.
	var fine, needs []int
	for off := 0; off < f.n; off++ {
		x, y, z := f.b.Coords(f.lo + off)
		if x%2 == 0 && y%2 == 0 && z%2 == 0 {
			fine = append(fine, off)
			needs = append(needs, lv.b.Index(x/2, y/2, z/2))
		}
	}
	lv.prolongSched = inspector.Build(p, lv.d, needs)
	lv.prolongFine = fine
	lv.prolongSrc = needs
	for i, g := range needs {
		if owner, off := lv.d.Local(g); owner == r {
			lv.prolongSrc[i] = off
		} else {
			lv.prolongSrc[i] = -(lv.prolongSched.GhostSlot(g) + 1)
		}
	}
}

// rebind re-attaches the level's schedules to a fresh Proc of the
// same rank — the warm path of plan caching.
func (lv *level) rebind(p *comm.Proc) {
	lv.sched.Rebind(p)
	if lv.restrictSched != nil {
		lv.restrictSched.Rebind(p)
	}
	if lv.prolongSched != nil {
		lv.prolongSched.Rebind(p)
	}
}

// symgs runs one symmetric Gauss-Seidel sweep on A·x = r: ONE halo
// exchange, then a forward and a backward pass with the ghost values
// frozen — Gauss-Seidel within the rank, block-Jacobi across ranks,
// the HPCG smoother. Sequential per rank with a fixed sweep order, so
// the result is bit-deterministic.
func (lv *level) symgs(p *comm.Proc, rl, xl []float64) {
	ghosts := lv.sched.Exchange(xl)
	for i := 0; i < lv.n; i++ {
		s := rl[i]
		for k := lv.rowPtr[i]; k < lv.rowPtr[i+1]; k++ {
			if c := lv.col[k]; c >= 0 {
				s -= lv.val[k] * xl[c]
			} else {
				s -= lv.val[k] * ghosts[-c-1]
			}
		}
		s += lv.diag[i] * xl[i]
		xl[i] = s / lv.diag[i]
	}
	for i := lv.n - 1; i >= 0; i-- {
		s := rl[i]
		for k := lv.rowPtr[i]; k < lv.rowPtr[i+1]; k++ {
			if c := lv.col[k]; c >= 0 {
				s -= lv.val[k] * xl[c]
			} else {
				s -= lv.val[k] * ghosts[-c-1]
			}
		}
		s += lv.diag[i] * xl[i]
		xl[i] = s / lv.diag[i]
	}
	p.Compute(4*lv.nnzLocal + 6*lv.n)
}

// matvec computes y = A·x on the local rows.
func (lv *level) matvec(p *comm.Proc, xl, yl []float64) {
	ghosts := lv.sched.Exchange(xl)
	for i := 0; i < lv.n; i++ {
		var s float64
		for k := lv.rowPtr[i]; k < lv.rowPtr[i+1]; k++ {
			if c := lv.col[k]; c >= 0 {
				s += lv.val[k] * xl[c]
			} else {
				s += lv.val[k] * ghosts[-c-1]
			}
		}
		yl[i] = s
	}
	p.Compute(2 * lv.nnzLocal)
}

// matvecDot is matvec fused with the local partial of x·(A·x), the
// form CG's fused iteration consumes.
func (lv *level) matvecDot(p *comm.Proc, xl, yl []float64) float64 {
	ghosts := lv.sched.Exchange(xl)
	var dot float64
	for i := 0; i < lv.n; i++ {
		var s float64
		for k := lv.rowPtr[i]; k < lv.rowPtr[i+1]; k++ {
			if c := lv.col[k]; c >= 0 {
				s += lv.val[k] * xl[c]
			} else {
				s += lv.val[k] * ghosts[-c-1]
			}
		}
		yl[i] = s
		dot += xl[i] * s
	}
	p.Compute(2*lv.nnzLocal + 2*lv.n)
	return dot
}

// residual computes res = r - A·x.
func (lv *level) residual(p *comm.Proc, rl, xl, resl []float64) {
	ghosts := lv.sched.Exchange(xl)
	for i := 0; i < lv.n; i++ {
		s := rl[i]
		for k := lv.rowPtr[i]; k < lv.rowPtr[i+1]; k++ {
			if c := lv.col[k]; c >= 0 {
				s -= lv.val[k] * xl[c]
			} else {
				s -= lv.val[k] * ghosts[-c-1]
			}
		}
		resl[i] = s
	}
	p.Compute(2*lv.nnzLocal + lv.n)
}

// restrictFrom injects the fine residual into this level's right-hand
// side scratch: r_c(i) = res_f(2x, 2y, 2z).
func (lv *level) restrictFrom(p *comm.Proc, fineRes []float64) {
	ghosts := lv.restrictSched.Exchange(fineRes)
	for i, c := range lv.restrictSrc {
		if c >= 0 {
			lv.r[i] = fineRes[c]
		} else {
			lv.r[i] = ghosts[-c-1]
		}
	}
	p.Compute(lv.n)
}

// prolongInto adds this level's correction back to the fine vector at
// the all-even-coordinate points (the transpose of injection).
func (lv *level) prolongInto(p *comm.Proc, fineX []float64) {
	ghosts := lv.prolongSched.Exchange(lv.x)
	for i, off := range lv.prolongFine {
		if c := lv.prolongSrc[i]; c >= 0 {
			fineX[off] += lv.x[c]
		} else {
			fineX[off] += ghosts[-c-1]
		}
	}
	p.Compute(len(lv.prolongFine))
}
