// Problem assembles the level hierarchy and exposes the two faces the
// solver stack consumes: the fine-grid stencil as an spmv.Operator
// (fused and rebindable, so core.CG/PCG and the plan registry treat
// it like any matrix operator) and the V-cycle as a
// core.Preconditioner.
package mg

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/direct"
	"hpfcg/internal/dist"
	"hpfcg/internal/grid"
	"hpfcg/internal/sparse"
)

// Problem is one rank's handle on a prepared HPCG-style problem. It
// is built inside an SPMD run (construction is collective), owns all
// per-level scratch, and can be rebound to a later run's Proc — the
// warm path that lets hpfexec cache hierarchies across batch windows.
type Problem struct {
	p       *comm.Proc
	spec    Spec
	levels  []*level
	smooths int
	// fineD is the fine-grid distribution boxed once — alignment
	// checks on the hot path must not re-box the concrete descriptor
	// into the interface per call.
	fineD dist.Dist

	// Coarsest-grid direct solve (nil coarseChol = smoother sweeps, the
	// original HPCG convention). Every rank holds the same redundant
	// dense Cholesky factor of the whole coarsest operator; the bottom
	// of the V-cycle allgathers the coarse residual and solves it
	// identically everywhere — deterministic, collective-aligned, and
	// allocation-free on the preallocated buffers below.
	coarseChol    *direct.Cholesky
	coarseCounts  []int
	coarseFull    []float64
	coarseSol     []float64
	coarseScratch []float64
}

// NewProblem builds the hierarchy for the (defaulted, validated) spec
// on p's machine. The requested depth clamps to what the geometry
// supports (grid.ClampLevels), never errors on it. Collective.
func NewProblem(p *comm.Proc, spec Spec) (*Problem, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fine, err := spec.Fine(p.NP())
	if err != nil {
		return nil, err
	}
	depth := grid.ClampLevels(fine, spec.Levels)
	pb := &Problem{p: p, spec: spec, smooths: spec.Smooths}
	b := fine
	for l := 0; l < depth; l++ {
		lv := newLevel(p, b)
		if l > 0 {
			lv.buildTransfer(p, pb.levels[l-1])
		}
		pb.levels = append(pb.levels, lv)
		if l+1 < depth {
			b = b.Coarsen()
		}
	}
	pb.fineD = pb.levels[0].d
	if err := pb.setupCoarse(); err != nil {
		return nil, err
	}
	return pb, nil
}

// setupCoarse resolves the spec's coarsest-grid treatment and, when the
// direct solve is selected, assembles the whole coarsest operator
// densely from geometry and factors it — identically on every rank
// (redundant, no communication), so bottom solves agree bit for bit.
func (pb *Problem) setupCoarse() error {
	coarse := pb.levels[len(pb.levels)-1]
	cn := coarse.b.N()
	switch pb.spec.Coarse {
	case "smooth":
		return nil
	case "direct":
		if cn > MaxCoarseDirect {
			return fmt.Errorf("mg: coarse = direct needs a coarsest grid of at most %d points, got %d (deepen the hierarchy or use auto)", MaxCoarseDirect, cn)
		}
	default: // auto
		if cn > MaxCoarseDirect {
			return nil
		}
	}
	b := coarse.b
	A := sparse.NewDense(cn, cn)
	for g := 0; g < cn; g++ {
		x, y, z := b.Coords(g)
		row := A.Row(g)
		for dz := -1; dz <= 1; dz++ {
			zz := z + dz
			if zz < 0 || zz >= b.Z {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= b.Y {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= b.X {
						continue
					}
					h := b.Index(xx, yy, zz)
					if h == g {
						row[h] = 26
					} else {
						row[h] = -1
					}
				}
			}
		}
	}
	chol, err := direct.FactorCholesky(A)
	if err != nil {
		return fmt.Errorf("mg: coarsest-grid factorization: %w", err)
	}
	// The redundant factor costs ~N³/3 flops on every rank, charged
	// once at setup where the inspector exchanges are charged.
	pb.p.Compute(cn * cn * cn / 3)
	pb.coarseChol = chol
	pb.coarseCounts = make([]int, pb.p.NP())
	for r := range pb.coarseCounts {
		pb.coarseCounts[r] = coarse.d.Count(r)
	}
	pb.coarseFull = make([]float64, cn)
	pb.coarseSol = make([]float64, cn)
	pb.coarseScratch = make([]float64, cn)
	return nil
}

// CoarseDirect reports whether the hierarchy bottoms out in the dense
// direct solve (false: smoother sweeps, the original HPCG convention).
func (pb *Problem) CoarseDirect() bool { return pb.coarseChol != nil }

// Spec returns the (defaulted) spec the problem was built from.
func (pb *Problem) Spec() Spec { return pb.spec }

// Levels returns the clamped hierarchy depth actually built.
func (pb *Problem) Levels() int { return len(pb.levels) }

// Fine returns the fine-grid brick.
func (pb *Problem) Fine() grid.Brick3 { return pb.levels[0].b }

// Dist returns the fine-grid vector distribution solve vectors must
// align with.
func (pb *Problem) Dist() dist.Irregular { return pb.levels[0].d }

// Rebind re-attaches the problem (all level schedules) to a fresh
// Proc of the same rank and shape — no inspector exchange, no level
// setup, the warm registry path.
func (pb *Problem) Rebind(p *comm.Proc) {
	pb.p = p
	for _, lv := range pb.levels {
		lv.rebind(p)
	}
}

// checkAligned panics unless v aligns with the fine grid — the same
// HPF alignment rule darray enforces between vectors.
func (pb *Problem) checkAligned(v *darray.Vector) []float64 {
	if !dist.Same(v.Dist(), pb.fineD) {
		panic("mg: vector not aligned with the problem's fine grid")
	}
	return v.Local()
}

// vcycle runs one V-cycle on A_l·x = r, overwriting xl with the
// result (initial guess zero). All work is on preallocated level
// scratch; nothing allocates.
func (pb *Problem) vcycle(l int, rl, xl []float64) {
	lv := pb.levels[l]
	for i := range xl {
		xl[i] = 0
	}
	pb.p.Compute(lv.n)
	if l == len(pb.levels)-1 {
		if pb.coarseChol != nil {
			// Direct bottom solve: allgather the coarse residual (every
			// rank sees the identical full vector), solve redundantly
			// with the cached Cholesky factor, and keep the owned
			// slice. Deterministic and allocation-free.
			full := pb.p.AllgatherVInto(rl, pb.coarseCounts, pb.coarseFull)
			if err := pb.coarseChol.SolveInto(pb.coarseSol, full, pb.coarseScratch); err != nil {
				panic(err)
			}
			copy(xl, pb.coarseSol[lv.lo:lv.lo+lv.n])
			cn := pb.coarseChol.N()
			pb.p.Compute(2 * cn * cn)
			return
		}
		// Coarsest solve: the smoother alone (the HPCG convention).
		for s := 0; s < pb.smooths; s++ {
			lv.symgs(pb.p, rl, xl)
		}
		return
	}
	for s := 0; s < pb.smooths; s++ {
		lv.symgs(pb.p, rl, xl)
	}
	lv.residual(pb.p, rl, xl, lv.res)
	next := pb.levels[l+1]
	next.restrictFrom(pb.p, lv.res)
	pb.vcycle(l+1, next.r, next.x)
	next.prolongInto(pb.p, xl)
	for s := 0; s < pb.smooths; s++ {
		lv.symgs(pb.p, rl, xl)
	}
}

// Operator returns the fine-grid 27-point stencil as a distributed
// operator for core.CG/PCG.
func (pb *Problem) Operator() *Operator { return &Operator{pb: pb} }

// Precond returns the V-cycle as a core.Preconditioner.
func (pb *Problem) Precond() *Precond { return &Precond{pb: pb} }

// Operator is the fine-grid stencil mat-vec. It implements
// spmv.Operator, spmv.FusedOperator and spmv.Rebindable.
type Operator struct {
	pb *Problem
}

// N implements spmv.Operator.
func (a *Operator) N() int { return a.pb.levels[0].b.N() }

// NNZ implements spmv.Operator. The count is analytic — the stencil
// is never materialized globally.
func (a *Operator) NNZ() int { return int(a.pb.levels[0].nnzGlobal) }

// Apply implements spmv.Operator.
func (a *Operator) Apply(x, y *darray.Vector) {
	a.pb.levels[0].matvec(a.pb.p, a.pb.checkAligned(x), a.pb.checkAligned(y))
}

// ApplyDot implements spmv.FusedOperator.
func (a *Operator) ApplyDot(x, y *darray.Vector) float64 {
	return a.pb.levels[0].matvecDot(a.pb.p, a.pb.checkAligned(x), a.pb.checkAligned(y))
}

// Rebind implements spmv.Rebindable by rebinding the whole problem
// (the preconditioner shares the fine level's schedule).
func (a *Operator) Rebind(p *comm.Proc) { a.pb.Rebind(p) }

// Precond is the V-cycle preconditioner z = M⁻¹·r.
type Precond struct {
	pb *Problem
}

// Apply implements core.Preconditioner.
func (m *Precond) Apply(r, z *darray.Vector) {
	m.pb.vcycle(0, m.pb.checkAligned(r), m.pb.checkAligned(z))
}

// Name implements core.Preconditioner.
func (m *Precond) Name() string {
	return fmt.Sprintf("mg-vcycle(levels=%d,smooths=%d)", len(m.pb.levels), m.pb.smooths)
}
