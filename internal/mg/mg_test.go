package mg

import (
	"fmt"
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

// buildDense assembles the 27-point stencil densely from the same
// Spec geometry, as the single-rank ground truth.
func buildDense(s Spec, np int) [][]float64 {
	b, err := s.Fine(np)
	if err != nil {
		panic(err)
	}
	n := b.N()
	A := make([][]float64, n)
	for g := range A {
		A[g] = make([]float64, n)
		x, y, z := b.Coords(g)
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy, zz := x+dx, y+dy, z+dz
					if xx < 0 || xx >= b.X || yy < 0 || yy >= b.Y || zz < 0 || zz >= b.Z {
						continue
					}
					h := b.Index(xx, yy, zz)
					if h == g {
						A[g][h] = 26
					} else {
						A[g][h] = -1
					}
				}
			}
		}
	}
	return A
}

// TestOperatorMatchesDenseStencil: the distributed stencil mat-vec
// must agree with the densely assembled 27-point operator at every
// rank count, including ones where slabs are uneven.
func TestOperatorMatchesDenseStencil(t *testing.T) {
	spec := Spec{Nx: 3, Ny: 4, Nz: 2, Levels: 1, Smooths: 1}
	for _, np := range []int{1, 2, 3, 4} {
		dense := buildDense(spec, np)
		n := len(dense)
		xs := sparse.RandomVector(n, 7)
		want := make([]float64, n)
		for i := range dense {
			for j, a := range dense[i] {
				want[i] += a * xs[j]
			}
		}
		var got []float64
		machine(np).Run(func(p *comm.Proc) {
			pb, err := NewProblem(p, spec)
			if err != nil {
				t.Error(err)
				return
			}
			op := pb.Operator()
			if op.N() != n {
				t.Errorf("np=%d: N=%d want %d", np, op.N(), n)
			}
			x := darray.New(p, pb.Dist())
			y := darray.New(p, pb.Dist())
			x.SetGlobal(func(g int) float64 { return xs[g] })
			op.Apply(x, y)
			full := y.Gather()
			if p.Rank() == 0 {
				got = full
			}
		})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("np=%d: y[%d] = %v, want %v", np, i, got[i], want[i])
			}
		}
	}
}

// TestStencilNNZMatchesAssembly: the analytic entry count equals the
// dense assembly's nonzero count.
func TestStencilNNZMatchesAssembly(t *testing.T) {
	spec := Spec{Nx: 3, Ny: 5, Nz: 4, Levels: 1, Smooths: 1}
	dense := buildDense(spec, 2)
	nnz := 0
	for i := range dense {
		for _, a := range dense[i] {
			if a != 0 {
				nnz++
			}
		}
	}
	machine(2).Run(func(p *comm.Proc) {
		pb, err := NewProblem(p, spec)
		if err != nil {
			t.Error(err)
			return
		}
		if got := pb.Operator().NNZ(); got != nnz {
			t.Errorf("NNZ = %d, want %d", got, nnz)
		}
	})
}

// solveBoth runs plain CG and V-cycle PCG on the same problem and
// right-hand side, returning iteration counts and solutions.
func solveBoth(t *testing.T, np int, spec Spec, tol float64) (cgIters, pcgIters int, pcgX []float64) {
	t.Helper()
	b, err := spec.Fine(np)
	if err != nil {
		t.Fatal(err)
	}
	rhs := sparse.RandomVector(b.N(), 42)
	run := func(precond bool) (int, []float64) {
		var iters int
		var xs []float64
		machine(np).Run(func(p *comm.Proc) {
			pb, err := NewProblem(p, spec)
			if err != nil {
				t.Error(err)
				return
			}
			bv := darray.New(p, pb.Dist())
			xv := darray.New(p, pb.Dist())
			bv.SetGlobal(func(g int) float64 { return rhs[g] })
			var st core.Stats
			if precond {
				st, err = core.PCG(p, pb.Operator(), pb.Precond(), bv, xv, core.Options{Tol: tol})
			} else {
				st, err = core.CG(p, pb.Operator(), bv, xv, core.Options{Tol: tol})
			}
			if err != nil {
				t.Error(err)
				return
			}
			if !st.Converged {
				t.Errorf("np=%d precond=%v: no convergence in %d iters", np, precond, st.Iterations)
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				iters = st.Iterations
				xs = full
			}
		})
		return iters, xs
	}
	cgIters, _ = run(false)
	pcgIters, pcgX = run(true)
	return cgIters, pcgIters, pcgX
}

// TestVCyclePCGBeatsPlainCG: the acceptance criterion — V-cycle PCG
// converges in strictly fewer iterations than unpreconditioned CG.
func TestVCyclePCGBeatsPlainCG(t *testing.T) {
	cases := []struct {
		np   int
		spec Spec
	}{
		{1, Spec{Nx: 8, Ny: 8, Nz: 8}},
		{2, Spec{Nx: 8, Ny: 8, Nz: 4}},
		{4, Spec{Nx: 4, Ny: 4, Nz: 4}},
		{4, Spec{Nx: 8, Ny: 8, Nz: 2, Levels: 2}},
	}
	for _, c := range cases {
		cg, pcg, x := solveBoth(t, c.np, c.spec, 1e-9)
		if pcg >= cg {
			t.Errorf("np=%d %s: PCG %d iters not < CG %d", c.np, c.spec.Key(), pcg, cg)
		}
		// The answer must actually solve the system.
		dense := buildDense(c.spec, c.np)
		rhs := sparse.RandomVector(len(dense), 42)
		for i := range dense {
			s := rhs[i]
			for j, a := range dense[i] {
				s -= a * x[j]
			}
			if math.Abs(s) > 1e-6 {
				t.Fatalf("np=%d %s: residual %v at row %d", c.np, c.spec.Key(), s, i)
			}
		}
	}
}

// TestPCGBitIdenticalAcrossRuns: repeat solves at fixed np produce
// bit-identical solutions — level setup, smoother order and halo
// exchanges are all deterministic.
func TestPCGBitIdenticalAcrossRuns(t *testing.T) {
	spec := Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3}
	for _, np := range []int{1, 3, 4} {
		_, _, x1 := solveBoth(t, np, spec, 1e-10)
		_, _, x2 := solveBoth(t, np, spec, 1e-10)
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("np=%d: x[%d] differs across runs: %v vs %v", np, i, x1[i], x2[i])
			}
		}
	}
}

// TestLevelsClampWithoutPanic: a requested depth deeper than the
// geometry supports clamps (odd dims, np bigger than the coarsest
// grid) instead of panicking in level setup.
func TestLevelsClampWithoutPanic(t *testing.T) {
	cases := []struct {
		np     int
		spec   Spec
		levels int
	}{
		{2, Spec{Nx: 7, Ny: 8, Nz: 4, Levels: 4}, 1},   // odd x: no coarsening
		{2, Spec{Nx: 12, Ny: 12, Nz: 6, Levels: 8}, 3}, // 12 halves twice
		{8, Spec{Nx: 4, Ny: 4, Nz: 2, Levels: 4}, 2},   // coarse z-planes hit np
	}
	for _, c := range cases {
		machine(c.np).Run(func(p *comm.Proc) {
			pb, err := NewProblem(p, c.spec)
			if err != nil {
				t.Error(err)
				return
			}
			if pb.Levels() != c.levels {
				t.Errorf("np=%d %s: built %d levels, want %d", c.np, c.spec.Key(), pb.Levels(), c.levels)
			}
		})
	}
}

// TestSpecValidate: the admission bounds name the offending field.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Nx: 0, Ny: 4, Nz: 4, Levels: 1, Smooths: 1},
		{Nx: 4, Ny: -1, Nz: 4, Levels: 1, Smooths: 1},
		{Nx: 4, Ny: 4, Nz: MaxDim + 1, Levels: 1, Smooths: 1},
		{Nx: 4, Ny: 4, Nz: 4, Levels: MaxLevels + 1, Smooths: 1},
		{Nx: 4, Ny: 4, Nz: 4, Levels: 1, Smooths: MaxSmooths + 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v passed validation", s)
		}
	}
	ok := Spec{Nx: 4, Ny: 4, Nz: 4}.WithDefaults()
	if err := ok.Validate(); err != nil {
		t.Errorf("defaulted spec rejected: %v", err)
	}
	if ok.Levels != DefaultLevels || ok.Smooths != DefaultSmooths {
		t.Errorf("defaults not applied: %+v", ok)
	}
}

// TestVCycleAllocFree: after one warm-up application the V-cycle
// allocates nothing — every level's scratch, ghost buffer and message
// buffer is preallocated or pooled. AllocsPerRun counts process-wide
// allocations, so every rank runs the same measured loop in lockstep
// (the collective exchanges inside the cycle keep them aligned) and
// the total must still be zero.
func TestVCycleAllocFree(t *testing.T) {
	for _, np := range []int{1, 4} {
		var allocs float64
		machine(np).Run(func(p *comm.Proc) {
			pb, err := NewProblem(p, Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3})
			if err != nil {
				t.Error(err)
				return
			}
			r := darray.New(p, pb.Dist())
			z := darray.New(p, pb.Dist())
			r.SetGlobal(func(g int) float64 { return float64(g%7) - 3 })
			M := pb.Precond()
			M.Apply(r, z) // warm-up: pools fill, block buffers size
			const runs = 10
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(runs, func() {
					M.Apply(r, z)
				})
			} else {
				// AllocsPerRun calls f runs+1 times; match it so the
				// collective exchanges stay aligned across ranks.
				for i := 0; i < runs+1; i++ {
					M.Apply(r, z)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("np=%d: V-cycle allocates %v per application in steady state", np, allocs)
		}
	}
}

// TestPrecondName names the shape for reports.
func TestPrecondName(t *testing.T) {
	machine(2).Run(func(p *comm.Proc) {
		pb, err := NewProblem(p, Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Smooths: 2})
		if err != nil {
			t.Error(err)
			return
		}
		want := fmt.Sprintf("mg-vcycle(levels=%d,smooths=%d)", pb.Levels(), 2)
		if got := pb.Precond().Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	})
}

// TestModelBytesPositive: the registry sizing signal scales with the
// problem and never returns zero for a valid spec.
func TestModelBytesPositive(t *testing.T) {
	small := Spec{Nx: 4, Ny: 4, Nz: 4}.ModelBytes(2)
	big := Spec{Nx: 16, Ny: 16, Nz: 16}.ModelBytes(2)
	if small <= 0 || big <= small {
		t.Errorf("ModelBytes: small=%d big=%d", small, big)
	}
}

// TestCoarseDirectIterationRegression guards the coarsest-grid direct
// solve: against the same problem and tolerance, the exact bottom solve
// must never need more PCG iterations than the smoother-only bottom —
// and the answers of both variants must converge. This is the
// regression fence for the "remaining depth" item the direct solve
// closes.
func TestCoarseDirectIterationRegression(t *testing.T) {
	for _, np := range []int{1, 4} {
		smooth := Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "smooth"}
		dir := Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "direct"}
		_, itSmooth, _ := solveBoth(t, np, smooth, 1e-10)
		_, itDirect, _ := solveBoth(t, np, dir, 1e-10)
		if itDirect > itSmooth {
			t.Errorf("np=%d: direct coarse solve needs %d PCG iterations, smoother-only %d", np, itDirect, itSmooth)
		}
	}
}

// TestCoarseModeSelection: auto picks the direct solve when the
// coarsest grid is small enough and falls back to smoothing when it is
// not; explicit "direct" on an oversized coarsest grid is an error, not
// a silent fallback.
func TestCoarseModeSelection(t *testing.T) {
	machine(2).Run(func(p *comm.Proc) {
		pb, err := NewProblem(p, Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3})
		if err != nil {
			t.Error(err)
			return
		}
		if !pb.CoarseDirect() {
			t.Error("auto did not select the direct solve for a tiny coarsest grid")
		}
		pb, err = NewProblem(p, Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "smooth"})
		if err != nil {
			t.Error(err)
			return
		}
		if pb.CoarseDirect() {
			t.Error("explicit smooth still built a factor")
		}
		// 16×16×16 per rank at depth 1: the coarsest grid IS the fine
		// grid (8192 points), far over MaxCoarseDirect.
		big := Spec{Nx: 16, Ny: 16, Nz: 16, Levels: 1}
		pb, err = NewProblem(p, big)
		if err != nil {
			t.Error(err)
			return
		}
		if pb.CoarseDirect() {
			t.Error("auto built a dense factor over an oversized coarsest grid")
		}
		big.Coarse = "direct"
		if _, err := NewProblem(p, big); err == nil {
			t.Error("explicit direct accepted an oversized coarsest grid")
		}
	})
	if err := (Spec{Nx: 4, Ny: 4, Nz: 4, Coarse: "cholesky"}).WithDefaults().Validate(); err == nil {
		t.Error("unknown coarse mode validated")
	}
}

// TestCoarseDirectDeterministic: the redundant bottom solve is
// bit-identical across repeat runs (every rank factors and solves the
// same dense system).
func TestCoarseDirectDeterministic(t *testing.T) {
	spec := Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "direct"}
	_, _, x0 := solveBoth(t, 4, spec, 1e-10)
	_, _, x1 := solveBoth(t, 4, spec, 1e-10)
	for i := range x0 {
		if x0[i] != x1[i] {
			t.Fatalf("x[%d] differs across runs: %v vs %v", i, x0[i], x1[i])
		}
	}
}
