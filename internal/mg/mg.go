// Package mg is the HPCG-style multigrid subsystem: a deterministic
// 27-point 3-D stencil problem generator over internal/grid's slab
// decomposition, a distributed symmetric Gauss-Seidel smoother, and a
// geometric V-cycle that plugs into core.PCG as a Preconditioner.
//
// The stencil is the HPCG benchmark operator — diagonal 26, every
// interior point coupled to its 26 neighbours with -1 — symmetric
// positive definite by diagonal dominance. Each rank owns a brick of
// nx × ny × nz points (the global grid is nx × ny × nz·np, z-slabs),
// so the halo is one x-y plane per side and the existing inspector
// schedules carry it exactly like any other irregular gather. The
// hierarchy halves every dimension per level; restriction is
// injection, prolongation its transpose, so the V-cycle is symmetric
// and PCG's theory applies.
//
// Everything about a problem is deterministic in (spec, np): level
// setup, smoother sweep order, and the single halo exchange per sweep
// are all sequential per rank with frozen ghosts, so repeated solves
// are bit-identical — the property the serving tier's plan registry
// and the E24 experiment both assert.
package mg

import (
	"fmt"

	"hpfcg/internal/grid"
)

// Spec bounds. Dimensions are per-rank brick sides; MaxDim keeps a
// served job from requesting a grid that swamps the simulator, and
// MaxLevels/MaxSmooths bound the V-cycle shape (satellite: "absurd
// Levels" must be rejected at admission, not deep in a worker).
const (
	DefaultLevels  = 4
	DefaultSmooths = 1
	MaxLevels      = 8
	MaxSmooths     = 8
	MaxDim         = 256

	// MaxCoarseDirect bounds the coarsest-grid direct solve: each rank
	// redundantly factors the whole coarsest operator densely, so the
	// grid must be small enough that the O(N³) factor and O(N²) solves
	// stay cheap next to a smoother sweep. Auto mode falls back to
	// smoothing above this size instead of erroring.
	MaxCoarseDirect = 512
)

// Spec sizes one HPCG-style problem: each rank owns an Nx × Ny × Nz
// brick (the global grid is Nx × Ny × Nz·np), the hierarchy is Levels
// deep (clamped to what the geometry supports; 0 selects
// DefaultLevels), and every V-cycle level runs Smooths symmetric
// Gauss-Seidel sweeps before and after coarse correction (0 selects
// DefaultSmooths).
type Spec struct {
	Nx, Ny, Nz int
	Levels     int
	Smooths    int
	// Coarse selects the coarsest-grid treatment: "" (auto — a direct
	// Cholesky solve when the coarsest grid has at most MaxCoarseDirect
	// points, smoother sweeps otherwise), "smooth" (the original HPCG
	// convention: smoother sweeps only), or "direct" (require the
	// direct solve; NewProblem errors if the coarsest grid is too big).
	Coarse string
}

// WithDefaults fills zero Levels/Smooths with the package defaults.
func (s Spec) WithDefaults() Spec {
	if s.Levels == 0 {
		s.Levels = DefaultLevels
	}
	if s.Smooths == 0 {
		s.Smooths = DefaultSmooths
	}
	return s
}

// Validate checks the (defaulted) spec against the package bounds.
// Errors name the offending field so the serving tier can surface
// them as admission-time 400s.
func (s Spec) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{{"nx", s.Nx}, {"ny", s.Ny}, {"nz", s.Nz}} {
		if d.v < 1 || d.v > MaxDim {
			return fmt.Errorf("mg: %s = %d outside [1, %d]", d.name, d.v, MaxDim)
		}
	}
	if s.Levels < 1 || s.Levels > MaxLevels {
		return fmt.Errorf("mg: levels = %d outside [1, %d]", s.Levels, MaxLevels)
	}
	if s.Smooths < 1 || s.Smooths > MaxSmooths {
		return fmt.Errorf("mg: smooths = %d outside [1, %d]", s.Smooths, MaxSmooths)
	}
	switch s.Coarse {
	case "", "smooth", "direct":
	default:
		return fmt.Errorf("mg: coarse = %q unsupported (auto %q, smooth, direct)", s.Coarse, "")
	}
	return nil
}

// Fine returns the global fine-grid brick for np ranks: each rank's
// local Nz planes stack into a global z-extent of Nz·np.
func (s Spec) Fine(np int) (grid.Brick3, error) {
	return grid.NewBrick3(s.Nx, s.Ny, s.Nz*np, np)
}

// Key is the canonical cache-key fragment of the spec: two specs with
// equal keys build identical problems at equal np.
func (s Spec) Key() string {
	s = s.WithDefaults()
	coarse := s.Coarse
	if coarse == "" {
		coarse = "auto"
	}
	return fmt.Sprintf("27pt:%dx%dx%d:L%d:S%d:C%s", s.Nx, s.Ny, s.Nz, s.Levels, s.Smooths, coarse)
}

// stencilNNZ is the exact stored-entry count of the 27-point stencil
// on an X × Y × Z grid: per-dimension neighbour counts factorize, and
// a length-L line contributes 3L-2 (row, col) pairs in its dimension.
func stencilNNZ(b grid.Brick3) int64 {
	return int64(3*b.X-2) * int64(3*b.Y-2) * int64(3*b.Z-2)
}

// ModelBytes estimates the resident size of a prepared hierarchy at
// np ranks — stencil rows (one int column + one float value per
// entry, plus row pointers and diagonals) and the per-level scratch
// vectors, summed over the clamped hierarchy. Like
// Prepared.MemoryBytes this is a cache-pressure signal for the plan
// registry, not an allocator.
func (s Spec) ModelBytes(np int) int64 {
	s = s.WithDefaults()
	b, err := s.Fine(np)
	if err != nil {
		return 0
	}
	const intB, floatB = 8, 8
	depth := grid.ClampLevels(b, s.Levels)
	var total int64
	for l := 0; l < depth; l++ {
		nnz := stencilNNZ(b)
		n := int64(b.N())
		total += nnz*(intB+floatB) + n*(intB+4*floatB)
		if l+1 < depth {
			b = b.Coarsen()
		}
	}
	// A coarsest-grid direct solve caches the dense Cholesky factor on
	// every rank (b is the coarsest brick after the loop).
	if cn := int64(b.N()); s.Coarse != "smooth" && cn <= MaxCoarseDirect {
		total += int64(np) * (cn*cn + 3*cn) * floatB
	}
	return total
}
