package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseIssueExample(t *testing.T) {
	plan, err := Parse("crash:rank=2@t=0.5ms,straggle:rank=1,x=4")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Event{
		{Kind: Crash, Rank: 2, At: 0.0005, Dst: -1},
		{Kind: Straggle, Rank: 1, Factor: 4, Dst: -1},
	}
	if !reflect.DeepEqual(plan.Events, want) {
		t.Fatalf("Parse = %+v, want %+v", plan.Events, want)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"crash:rank=2@t=0.5ms,straggle:rank=1,x=4",
		"drop:rank=0@t=1us,n=3,dst=2,spike:rank=3@t=2,until=5,x=1.5,delay=10us",
		"straggle:rank=1@t=0.25,until=0.75,x=8,crash:rank=0@t=1e-05",
		"drop:rank=4",
		"spike:rank=2,delay=0.003",
	}
	for _, spec := range specs {
		plan, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(plan.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, plan.String(), err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Errorf("round trip of %q via %q: %+v != %+v", spec, plan.String(), plan, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"rank=2":                   "kind prefix",
		"crash:rank=x":             "rank=x",
		"crash:rank=2,zap=1":       "unknown key",
		"crash":                    "rank",     // rank missing -> Validate
		"straggle:rank=1":          "positive", // factor missing
		"spike:rank=1":             "x>1 or delay>0",
		"crash:rank=1@t=2,until=1": "not after",
		"drop:rank=1,n=-2":         "negative drop count",
		"crash:rank=1@t=-1s":       "negative start",
	}
	for spec, frag := range bad {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		} else if !strings.Contains(err.Error(), frag) {
			t.Errorf("Parse(%q) = %v, want mention of %q", spec, err, frag)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(42, 8, 0.01, 0.1)
	b := RandomPlan(42, 8, 0.01, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("expected some crashes with mtbf=10ms over a 100ms horizon")
	}
	for _, e := range a.Events {
		if e.Kind != Crash || e.At <= 0 || e.At >= 0.1 || e.Rank < 0 || e.Rank >= 8 {
			t.Fatalf("implausible event %+v", e)
		}
	}
	c := RandomPlan(43, 8, 0.01, 0.1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("RandomPlan invalid: %v", err)
	}
}

func TestCrashScheduleAndAdvance(t *testing.T) {
	plan := Plan{Events: []Event{
		{Kind: Crash, Rank: 1, At: 1.0, Dst: -1},
		{Kind: Crash, Rank: 1, At: 2.5, Dst: -1},
		{Kind: Crash, Rank: 9, At: 0.5, Dst: -1}, // beyond np, ignored
	}}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	ris := in.StartRun(4)
	if ris[0] != nil || ris[2] != nil || ris[3] != nil {
		t.Fatal("healthy ranks must get nil injectors")
	}
	if at, ok := ris[1].CrashTime(); !ok || at != 1.0 {
		t.Fatalf("first run crash = (%g,%v), want (1,true)", at, ok)
	}
	// The run died at modeled t=1.2; the first crash is consumed and
	// the second shifts into the next run's local clock.
	in.Advance(1.2)
	if at, ok := in.StartRun(4)[1].CrashTime(); !ok || math.Abs(at-1.3) > 1e-15 {
		t.Fatalf("second run crash = (%g,%v), want (1.3,true)", at, ok)
	}
	in.Advance(2.0) // past the second crash too
	if ri := in.StartRun(4)[1]; ri != nil {
		if _, ok := ri.CrashTime(); ok {
			t.Fatal("all crashes consumed; none should be scheduled")
		}
	}
	if in.Offset() != 3.2 {
		t.Fatalf("Offset = %g, want 3.2", in.Offset())
	}
}

func TestDropConsumesCount(t *testing.T) {
	in, err := NewInjector(Plan{Events: []Event{
		{Kind: Drop, Rank: 0, Count: 2, Dst: -1},
		{Kind: Drop, Rank: 0, At: 5, Dst: 3}, // later window, dst-filtered
	}})
	if err != nil {
		t.Fatal(err)
	}
	ri := in.StartRun(4)[0]
	for i := 0; i < 2; i++ {
		if drop, _ := ri.SendFault(1, 0.1, 1e-6); !drop {
			t.Fatalf("send %d: expected drop", i)
		}
	}
	if drop, _ := ri.SendFault(1, 0.2, 1e-6); drop {
		t.Fatal("count exhausted; message must pass")
	}
	// The dst-filtered drop only fires toward rank 3 after t=5.
	if drop, _ := ri.SendFault(1, 6, 1e-6); drop {
		t.Fatal("dst filter ignored")
	}
	if drop, _ := ri.SendFault(3, 6, 1e-6); !drop {
		t.Fatal("dst-filtered drop did not fire")
	}
	// Consumption survives a restart: a fresh StartRun sees no drops left.
	in.Advance(7)
	if ris := in.StartRun(4); ris[0] != nil {
		if drop, _ := ris[0].SendFault(3, 0.1, 1e-6); drop {
			t.Fatal("consumed drop fired again after restart")
		}
	}
}

func TestStraggleAndSpikeWindows(t *testing.T) {
	in, err := NewInjector(Plan{Events: []Event{
		{Kind: Straggle, Rank: 2, At: 1, Until: 2, Factor: 4, Dst: -1},
		{Kind: Straggle, Rank: 2, At: 1.5, Until: 3, Factor: 2, Dst: -1},
		{Kind: Spike, Rank: 2, At: 1, Until: 2, Factor: 3, Delay: 0.25, Dst: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ri := in.StartRun(4)[2]
	cases := []struct {
		t    float64
		want float64
	}{
		{0.5, 1}, {1.2, 4}, {1.7, 8}, {2.3, 2}, {3.5, 1},
	}
	for _, c := range cases {
		if got := ri.FlopFactor(c.t); got != c.want {
			t.Errorf("FlopFactor(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if _, delay := ri.SendFault(0, 1.5, 0.1); math.Abs(delay-(2*0.1+0.25)) > 1e-15 {
		t.Errorf("spike delay = %g, want %g", delay, 2*0.1+0.25)
	}
	if drop, delay := ri.SendFault(0, 2.5, 0.1); drop || delay != 0 {
		t.Errorf("outside window: (%v,%g), want (false,0)", drop, delay)
	}
	// Windows shift with the mission offset.
	in.Advance(0.9)
	ri = in.StartRun(4)[2]
	if got := ri.FlopFactor(0.2); got != 4 {
		t.Errorf("after Advance(0.9): FlopFactor(0.2) = %g, want 4", got)
	}
}
