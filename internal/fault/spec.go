package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Plan from the compact command-line spec syntax used
// by hpfrun/cgbench -fault:
//
//	crash:rank=2@t=0.5ms,straggle:rank=1,x=4
//
// Events are comma-separated; a token with a kind prefix ("crash:",
// "straggle:", "drop:", "spike:") starts a new event, and following
// bare key=value tokens refine it until the next kind prefix. The
// first token may attach more assignments with '@'. Keys:
//
//	rank=R   affected rank (required)
//	t=D      start time (crash instant / window open)
//	until=D  window close (straggle/spike)
//	x=F      factor (straggle: flop cost; spike: hop latency)
//	delay=D  fixed extra latency (spike)
//	n=N      messages to drop (drop; default 1)
//	dst=R    destination filter (drop/spike; default any)
//
// Durations D accept Go syntax ("0.5ms", "2s") or bare seconds
// ("0.0005"). Parse and Plan.String round-trip.
func Parse(spec string) (Plan, error) {
	var plan Plan
	var cur *Event
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, "@")
		if k, rest, ok := cutKind(parts[0]); ok {
			plan.Events = append(plan.Events, Event{Kind: k, Rank: -1, Dst: -1})
			cur = &plan.Events[len(plan.Events)-1]
			parts[0] = rest
		} else if cur == nil {
			return Plan{}, fmt.Errorf("fault: spec %q: expected a kind prefix (crash:, straggle:, drop:, spike:), got %q", spec, tok)
		}
		for _, kv := range parts {
			if kv == "" {
				continue
			}
			if err := assign(cur, kv); err != nil {
				return Plan{}, fmt.Errorf("fault: spec %q: %w", spec, err)
			}
		}
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// cutKind splits a "kind:rest" token; rest may be empty.
func cutKind(tok string) (Kind, string, bool) {
	head, rest, found := strings.Cut(tok, ":")
	if !found {
		head, rest = tok, ""
	}
	for _, k := range []Kind{Crash, Straggle, Drop, Spike} {
		if head == k.String() {
			return k, rest, true
		}
	}
	return 0, "", false
}

func assign(e *Event, kv string) error {
	key, val, found := strings.Cut(kv, "=")
	if !found || val == "" {
		return fmt.Errorf("token %q is not key=value", kv)
	}
	bad := func(err error) error { return fmt.Errorf("%s=%s: %v", key, val, err) }
	switch key {
	case "rank":
		n, err := strconv.Atoi(val)
		if err != nil {
			return bad(err)
		}
		e.Rank = n
	case "t":
		d, err := parseDur(val)
		if err != nil {
			return bad(err)
		}
		e.At = d
	case "until":
		d, err := parseDur(val)
		if err != nil {
			return bad(err)
		}
		e.Until = d
	case "x":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return bad(err)
		}
		e.Factor = f
	case "delay":
		d, err := parseDur(val)
		if err != nil {
			return bad(err)
		}
		e.Delay = d
	case "n":
		n, err := strconv.Atoi(val)
		if err != nil {
			return bad(err)
		}
		e.Count = n
	case "dst":
		n, err := strconv.Atoi(val)
		if err != nil {
			return bad(err)
		}
		e.Dst = n
	default:
		return fmt.Errorf("unknown key %q (want rank/t/until/x/delay/n/dst)", key)
	}
	return nil
}

// parseDur reads a duration as Go syntax or bare modeled seconds.
func parseDur(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a duration or seconds value")
	}
	return f, nil
}

// String renders the plan in the spec syntax Parse accepts; the two
// round-trip (Parse(p.String()) reproduces p for valid plans written
// by Parse or with the same field conventions).
func (p Plan) String() string {
	var sb strings.Builder
	for i, e := range p.Events {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s:rank=%d", e.Kind, e.Rank)
		if e.At != 0 {
			sb.WriteString("@t=" + ftoa(e.At))
		}
		if e.Until != 0 {
			sb.WriteString(",until=" + ftoa(e.Until))
		}
		if e.Factor != 0 {
			sb.WriteString(",x=" + ftoa(e.Factor))
		}
		if e.Delay != 0 {
			sb.WriteString(",delay=" + ftoa(e.Delay))
		}
		if e.Count != 0 {
			sb.WriteString(",n=" + strconv.Itoa(e.Count))
		}
		if e.Dst >= 0 {
			sb.WriteString(",dst=" + strconv.Itoa(e.Dst))
		}
	}
	return sb.String()
}

// ftoa prints a float so that parseDur/ParseFloat recover it exactly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
