package fault_test

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/fault"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// TestIallreduceOverlapUnderStraggler: the nonblocking-collective
// satellite's fault case. A straggler stretches one rank's compute
// inside the overlap window, so that rank hides *more* of the
// reduction (its window is longer) while the values stay bit-identical
// to the healthy run — the eager exchange is the same arithmetic
// regardless of what the clocks do. The straggled run's makespan must
// not be smaller than the healthy one, and the overlap books must stay
// consistent (hidden + exposed covers every waited-on round on both).
func TestIallreduceOverlapUnderStraggler(t *testing.T) {
	A := sparse.Banded(192, 4)
	n := A.NRows
	b := sparse.RandomVector(n, 9)
	const np = 4
	d := dist.NewBlock(n, np)

	solve := func(inj comm.Injector) ([]float64, core.Stats, comm.RunStats) {
		m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
		if inj != nil {
			m.AttachInjector(inj)
		}
		var sol []float64
		var st core.Stats
		rs := m.Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRGhost(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv := darray.New(p, d)
			got, err := core.CGPipelined(p, op, bv, xv, core.Options{Tol: 1e-10}, true)
			if err != nil {
				t.Errorf("%v", err)
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				sol, st = full, got
			}
		})
		return sol, st, rs
	}

	inj, err := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{Kind: fault.Straggle, Rank: 1, At: 0, Factor: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	healthySol, healthySt, healthyRS := solve(nil)
	stragSol, stragSt, stragRS := solve(inj)

	if !healthySt.Converged || !stragSt.Converged {
		t.Fatalf("convergence: healthy %v, straggled %v", healthySt.Converged, stragSt.Converged)
	}
	if healthySt.Iterations != stragSt.Iterations {
		t.Errorf("iterations diverged under straggler: %d vs %d", healthySt.Iterations, stragSt.Iterations)
	}
	for i := range healthySol {
		if healthySol[i] != stragSol[i] {
			t.Fatalf("x[%d] = %v straggled vs %v healthy — clock skew leaked into the arithmetic",
				i, stragSol[i], healthySol[i])
		}
	}
	if stragRS.ModelTime < healthyRS.ModelTime {
		t.Errorf("straggled makespan %g < healthy %g", stragRS.ModelTime, healthyRS.ModelTime)
	}
	hHealthy, _ := healthyRS.ReduceOverlap()
	hStrag, eStrag := stragRS.ReduceOverlap()
	if hHealthy <= 0 || hStrag <= 0 {
		t.Errorf("hidden time must stay positive: healthy %g, straggled %g", hHealthy, hStrag)
	}
	if eStrag < 0 {
		t.Errorf("straggled exposed time %g < 0", eStrag)
	}
	// The straggler's own rank computes 8x slower, so its overlap
	// window per round is wider and it hides at least as much of the
	// reduction as it does when healthy.
	if stragRS.Procs[1].ReduceHiddenTime < healthyRS.Procs[1].ReduceHiddenTime {
		t.Errorf("straggled rank hides %g, healthy hides %g — a longer window must not hide less",
			stragRS.Procs[1].ReduceHiddenTime, healthyRS.Procs[1].ReduceHiddenTime)
	}
}
