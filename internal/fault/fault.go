// Package fault is the deterministic fault-injection layer of the SPMD
// machine: a seed-driven Plan of crash, straggler, message-drop and
// link-latency-spike events, and an Injector that drives them through
// comm.Machine.AttachInjector. All schedules are expressed on the
// *modeled* clock — a crash fires when the affected rank's simulated
// time reaches the scheduled instant, never when wall time does — so a
// faulty run is exactly as reproducible as a healthy one: same plan,
// same seed, same machine ⇒ bit-identical failure point, recovery
// trajectory, and cost accounting.
//
// Plans are written against *mission time*: the modeled clock of the
// whole solve, accumulated across restarts. After a run dies the
// driver calls Injector.Advance with the failed run's modeled time;
// events already in the past are consumed (a crash fires once) and the
// remaining schedule shifts so the next run picks up where the mission
// left off.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"hpfcg/internal/comm"
)

// Kind classifies one scheduled fault.
type Kind uint8

const (
	// Crash kills the rank when its modeled clock reaches At.
	Crash Kind = iota
	// Straggle multiplies the rank's per-flop cost by Factor inside
	// the window [At, Until).
	Straggle
	// Drop silently discards the next Count messages the rank sends
	// (to Dst, or to anyone when Dst < 0) from mission time At on.
	Drop
	// Spike inflates the network latency of messages the rank sends
	// inside [At, Until): hop latency multiplied by Factor (when
	// Factor > 1) plus a fixed Delay seconds.
	Spike
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggle:
		return "straggle"
	case Drop:
		return "drop"
	case Spike:
		return "spike"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault. Times are mission-modeled seconds.
type Event struct {
	Kind Kind
	// Rank is the affected processor.
	Rank int
	// At is when the fault starts (crash instant, window open).
	At float64
	// Until closes the Straggle/Spike window; 0 means never.
	Until float64
	// Factor is the Straggle flop-cost multiplier, or the Spike hop-
	// latency multiplier (0 = no multiplicative part for Spike).
	Factor float64
	// Delay is the fixed extra latency of a Spike, seconds.
	Delay float64
	// Count is how many messages a Drop discards (0 means 1).
	Count int
	// Dst restricts Drop/Spike to messages toward one destination
	// rank; negative means any destination.
	Dst int
}

// Plan is a complete, deterministic fault schedule.
type Plan struct {
	Events []Event
}

// Validate checks the plan is well-formed.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		at := func(msg string, args ...any) error {
			return fmt.Errorf("fault: event %d (%s): %s", i, e.Kind, fmt.Sprintf(msg, args...))
		}
		if e.Rank < 0 {
			return at("rank is required (got %d)", e.Rank)
		}
		if e.At < 0 {
			return at("negative start time %g", e.At)
		}
		if e.Until != 0 && e.Until <= e.At {
			return at("until=%g is not after t=%g", e.Until, e.At)
		}
		switch e.Kind {
		case Crash:
		case Straggle:
			if e.Factor <= 0 {
				return at("straggle factor x=%g must be positive", e.Factor)
			}
		case Drop:
			if e.Count < 0 {
				return at("negative drop count n=%d", e.Count)
			}
		case Spike:
			if e.Factor < 0 {
				return at("negative spike factor x=%g", e.Factor)
			}
			if e.Factor <= 1 && e.Delay <= 0 {
				return at("spike needs x>1 or delay>0")
			}
		default:
			return at("unknown kind")
		}
	}
	return nil
}

// RandomPlan draws a reproducible crash schedule: a Poisson process of
// rank crashes with the given mean time between failures, over mission
// [0, horizon), each crash striking a uniformly random rank. The same
// (seed, np, mtbf, horizon) always yields the same plan — this is the
// seeded schedule experiment E20 sweeps.
func RandomPlan(seed int64, np int, mtbf, horizon float64) Plan {
	rng := rand.New(rand.NewSource(seed))
	var plan Plan
	t := 0.0
	for {
		t += rng.ExpFloat64() * mtbf
		if t >= horizon {
			return plan
		}
		plan.Events = append(plan.Events, Event{Kind: Crash, Rank: rng.Intn(np), At: t, Dst: -1})
	}
}

// Injector replays a Plan against a comm.Machine. It carries the
// mission clock across restarts: Advance consumes the modeled time of
// a failed run, so crashes already delivered do not fire again and
// windowed faults keep their mission-time position. An Injector may be
// reused across sequential runs but not shared by concurrent ones.
type Injector struct {
	plan      Plan
	offset    float64 // mission seconds consumed by completed/failed runs
	crashDone []bool  // per-event: crash already delivered
	dropLeft  []int   // per-event: messages still to drop
}

// NewInjector validates the plan and builds its injector.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:      plan,
		crashDone: make([]bool, len(plan.Events)),
		dropLeft:  make([]int, len(plan.Events)),
	}
	for i, e := range plan.Events {
		if e.Kind == Drop {
			n := e.Count
			if n == 0 {
				n = 1
			}
			in.dropLeft[i] = n
		}
	}
	return in, nil
}

// Plan returns the schedule the injector replays.
func (in *Injector) Plan() Plan { return in.plan }

// Offset returns the mission time consumed so far (sum of Advance calls).
func (in *Injector) Offset() float64 { return in.offset }

// Advance moves the mission clock forward by the modeled time of a
// finished (usually failed) run. Crash events now in the past are
// consumed: the processor already died once; after the restart it is
// healthy until its next scheduled failure. hpfexec.SolveCGResilient
// calls this between attempts.
func (in *Injector) Advance(elapsed float64) {
	if elapsed < 0 {
		panic(fmt.Sprintf("fault: Advance with negative elapsed %g", elapsed))
	}
	in.offset += elapsed
	for i, e := range in.plan.Events {
		if e.Kind == Crash && e.At <= in.offset {
			in.crashDone[i] = true
		}
	}
}

// StartRun implements comm.Injector: one RankInjector per rank holding
// that rank's schedule translated from mission time into the run's
// local modeled clock (mission minus offset). Ranks without events get
// a nil entry, which keeps them on the machine's hook-free path.
// Events addressed to ranks outside [0, np) are ignored.
func (in *Injector) StartRun(np int) []comm.RankInjector {
	out := make([]comm.RankInjector, np)
	ris := make([]*rankInj, np)
	get := func(r int) *rankInj {
		if ris[r] == nil {
			ris[r] = &rankInj{in: in}
			out[r] = ris[r]
		}
		return ris[r]
	}
	for i, e := range in.plan.Events {
		if e.Rank < 0 || e.Rank >= np {
			continue
		}
		from := e.At - in.offset
		to := math.Inf(1)
		if e.Until != 0 {
			to = e.Until - in.offset
		}
		if to <= 0 {
			continue // window entirely in the mission's past
		}
		switch e.Kind {
		case Crash:
			if in.crashDone[i] {
				continue
			}
			ri := get(e.Rank)
			at := from
			if at < 0 {
				at = 0
			}
			if !ri.hasCrash || at < ri.crashAt {
				ri.crashAt, ri.hasCrash = at, true
			}
		case Straggle:
			get(e.Rank).straggles = append(get(e.Rank).straggles, window{from, to, e.Factor})
		case Drop:
			if in.dropLeft[i] <= 0 {
				continue
			}
			get(e.Rank).drops = append(get(e.Rank).drops, dropWin{from: from, to: to, dst: e.Dst, idx: i})
		case Spike:
			get(e.Rank).spikes = append(get(e.Rank).spikes, spikeWin{from: from, to: to, factor: e.Factor, delay: e.Delay, dst: e.Dst})
		}
	}
	return out
}

type window struct{ from, to, factor float64 }

type dropWin struct {
	from, to float64
	dst      int
	idx      int // index into Injector.dropLeft
}

type spikeWin struct {
	from, to      float64
	factor, delay float64
	dst           int
}

// rankInj is one rank's translated schedule for one run. It is
// consulted only from that rank's goroutine; the only shared state it
// touches is the injector's dropLeft counter for its own events, which
// no other rank references.
type rankInj struct {
	in        *Injector
	crashAt   float64
	hasCrash  bool
	straggles []window
	drops     []dropWin
	spikes    []spikeWin
}

// CrashTime implements comm.RankInjector.
func (ri *rankInj) CrashTime() (float64, bool) { return ri.crashAt, ri.hasCrash }

// FlopFactor implements comm.RankInjector: the product of all straggle
// windows open at run-local modeled time t.
func (ri *rankInj) FlopFactor(t float64) float64 {
	f := 1.0
	for _, w := range ri.straggles {
		if t >= w.from && t < w.to {
			f *= w.factor
		}
	}
	return f
}

// SendFault implements comm.RankInjector: consume a pending drop if
// one matches, otherwise sum the extra latency of open spike windows.
func (ri *rankInj) SendFault(dst int, t, hopTime float64) (bool, float64) {
	for _, d := range ri.drops {
		if ri.in.dropLeft[d.idx] > 0 && t >= d.from && t < d.to && (d.dst < 0 || d.dst == dst) {
			ri.in.dropLeft[d.idx]--
			return true, 0
		}
	}
	delay := 0.0
	for _, s := range ri.spikes {
		if t >= s.from && t < s.to && (s.dst < 0 || s.dst == dst) {
			if s.factor > 1 {
				delay += (s.factor - 1) * hopTime
			}
			delay += s.delay
		}
	}
	return false, delay
}

var _ comm.Injector = (*Injector)(nil)
