package fault_test

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/fault"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// TestEmptyPlanInjectorBitIdentical is the zero-overhead guard's other
// half: attaching an injector whose plan is empty (or whose windows
// never open) must leave a CG solve bit-identical to the detached
// machine — same solution, same residual history, same modeled
// makespan. Straggle multiplies flop time by exactly 1.0 and spikes add
// exactly 0.0, so any deviation here is an injector hook leaking cost
// into the healthy path.
func TestEmptyPlanInjectorBitIdentical(t *testing.T) {
	n := 96
	A := sparse.RandomSPD(n, 5, 17)
	b := sparse.RandomVector(n, 6)

	type outcome struct {
		sol []float64
		st  core.Stats
		rs  comm.RunStats
	}
	solve := func(np int, inj comm.Injector) outcome {
		d := dist.NewBlock(n, np)
		m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
		if inj != nil {
			m.AttachInjector(inj)
		}
		var out outcome
		out.rs = m.Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			x := darray.New(p, d)
			st, err := core.CG(p, op, bv, x, core.Options{Tol: 1e-10, History: true})
			if err != nil {
				t.Errorf("np=%d: %v", np, err)
			}
			full := x.Gather()
			if p.Rank() == 0 {
				out.sol, out.st = full, st
			}
		})
		return out
	}

	for _, np := range []int{2, 4, 8} {
		inj, err := fault.NewInjector(fault.Plan{})
		if err != nil {
			t.Fatal(err)
		}
		plain := solve(np, nil)
		faulty := solve(np, inj)

		if plain.rs.ModelTime != faulty.rs.ModelTime {
			t.Errorf("np=%d: makespan %.17g with injector vs %.17g without",
				np, faulty.rs.ModelTime, plain.rs.ModelTime)
		}
		if plain.st.Iterations != faulty.st.Iterations || plain.st.Residual != faulty.st.Residual {
			t.Errorf("np=%d: stats diverge: %+v vs %+v", np, faulty.st, plain.st)
		}
		for i := range plain.st.History {
			if plain.st.History[i] != faulty.st.History[i] {
				t.Fatalf("np=%d: residual history differs at iteration %d", np, i)
			}
		}
		for g := range plain.sol {
			if plain.sol[g] != faulty.sol[g] {
				t.Fatalf("np=%d: solution differs at %d: %v vs %v",
					np, g, faulty.sol[g], plain.sol[g])
			}
		}
		if plain.rs.TotalFlops != faulty.rs.TotalFlops || plain.rs.TotalMsgs != faulty.rs.TotalMsgs {
			t.Errorf("np=%d: op counts diverge: flops %d/%d msgs %d/%d", np,
				faulty.rs.TotalFlops, plain.rs.TotalFlops, faulty.rs.TotalMsgs, plain.rs.TotalMsgs)
		}
	}
}
