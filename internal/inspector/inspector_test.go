package inspector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

func TestExchangeDelivers(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 8} {
		n := 6 * np
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			r := p.Rank()
			lo := d.Lo(r)
			// Each processor needs its left and right neighbours' border
			// elements plus one far element (global 0).
			var needs []int
			if lo > 0 {
				needs = append(needs, lo-1)
			}
			hi := lo + d.Count(r)
			if hi < n {
				needs = append(needs, hi)
			}
			needs = append(needs, 0, 0) // duplicate + possibly own
			s := Build(p, d, needs)

			local := make([]float64, d.Count(r))
			for off := range local {
				local[off] = float64(10 * d.Global(r, off))
			}
			for rep := 0; rep < 3; rep++ { // schedule reuse
				ghosts := s.Exchange(local)
				for _, g := range needs {
					if d.Owner(g) == r {
						continue
					}
					if got := ghosts[s.GhostSlot(g)]; got != float64(10*g) {
						t.Errorf("np=%d rank=%d rep=%d: ghost %d = %g, want %g",
							np, r, rep, g, got, float64(10*g))
						return
					}
				}
			}
		})
	}
}

func TestOwnElementsExcluded(t *testing.T) {
	np := 2
	d := dist.NewBlock(10, np)
	machine(np).Run(func(p *comm.Proc) {
		lo := d.Lo(p.Rank())
		s := Build(p, d, []int{lo, lo, lo + 1}) // all owned locally
		if s.NGhosts() != 0 {
			t.Errorf("rank %d: %d ghosts for own elements", p.Rank(), s.NGhosts())
		}
		if got := s.Exchange(make([]float64, d.Count(p.Rank()))); len(got) != 0 {
			t.Errorf("expected empty ghost buffer, got %v", got)
		}
	})
}

// The whole point: halo exchange moves only the needed elements, and
// only between neighbouring processors.
func TestHaloBeatsBroadcast(t *testing.T) {
	np := 8
	n := 8 * 64
	d := dist.NewBlock(n, np)
	st := machine(np).Run(func(p *comm.Proc) {
		r := p.Rank()
		lo := d.Lo(r)
		hi := lo + d.Count(r)
		var needs []int
		for b := 1; b <= 2; b++ { // bandwidth-2 halo
			if lo-b >= 0 {
				needs = append(needs, lo-b)
			}
			if hi+b-1 < n {
				needs = append(needs, hi+b-1)
			}
		}
		s := Build(p, d, needs)
		local := make([]float64, d.Count(r))
		s.Exchange(local)
	})
	// Broadcast of the full vector would be ~ n*8 bytes * (np-1)/np per
	// proc; the halo moves 2 elements per border per proc per exchange.
	// Build itself exchanges index lists, so allow that overhead, but
	// the total must stay far below one full-vector broadcast.
	broadcastBytes := int64(n * 8)
	if st.TotalBytes >= broadcastBytes {
		t.Errorf("halo moved %d bytes, >= one broadcast %d", st.TotalBytes, broadcastBytes)
	}
}

func TestBuildValidation(t *testing.T) {
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		Build(p, dist.NewBlock(4, 2), []int{9})
	})
}

func TestGhostSlotUnknownPanics(t *testing.T) {
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected unknown-slot panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		d := dist.NewBlock(4, 2)
		s := Build(p, d, nil)
		s.GhostSlot(1)
	})
}

// Property: for random need sets, Exchange delivers exactly the owner's
// values, under block and cyclic distributions.
func TestExchangeQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8, cyclic bool) bool {
		np := int(npRaw%4) + 1
		n := int(nRaw%30) + np
		var d dist.Dist = dist.NewBlock(n, np)
		if cyclic {
			d = dist.NewCyclic(n, np)
		}
		ok := true
		machine(np).Run(func(p *comm.Proc) {
			rng := rand.New(rand.NewSource(seed + int64(p.Rank())))
			needs := make([]int, rng.Intn(10))
			for i := range needs {
				needs[i] = rng.Intn(n)
			}
			s := Build(p, d, needs)
			r := p.Rank()
			local := make([]float64, d.Count(r))
			for off := range local {
				local[off] = float64(d.Global(r, off)) + 0.5
			}
			ghosts := s.Exchange(local)
			for _, g := range needs {
				if d.Owner(g) == r {
					continue
				}
				if ghosts[s.GhostSlot(g)] != float64(g)+0.5 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
