// Package inspector implements the inspector-executor mechanism the
// paper invokes for irregular accesses (§5.1, refs [15], [19], [20]):
// a one-time *inspector* pass analyses which remote array elements an
// indirect access pattern touches and builds a communication schedule;
// the *executor* then reuses that schedule every iteration, exchanging
// only the needed "ghost" elements instead of broadcasting the whole
// vector.
//
// For the row-block sparse matrix-vector product this is the
// alternative to Scenario 1's all-to-all broadcast: processor r needs
// x(col(k)) only for the column indices appearing in its rows, which
// for banded and mesh matrices is a thin halo. The paper notes
// inspectors are "costly in nature" — the cost is paid once here and
// amortised by schedule reuse across CG iterations ("communication
// schedule reuse", ref [20]); experiment E14 quantifies both sides.
package inspector

import (
	"fmt"
	"sort"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
)

// Schedule is a reusable communication plan for gathering a set of
// remote elements of a distributed vector.
type Schedule struct {
	p *comm.Proc
	d dist.Dist

	// ghostOf maps a needed remote global index to its slot in the
	// ghost buffer (dense positions 0..nGhost-1, sorted by global).
	ghostOf map[int]int
	// recvFrom[src] lists how many ghosts arrive from src (they arrive
	// sorted by global index and are stored contiguously).
	recvCount []int
	recvStart []int
	// sendTo[dst] lists the local offsets this processor must send to
	// dst, in the order dst expects them.
	sendTo [][]int

	nGhost int
	// ghosts is the reusable receive buffer Exchange returns, so the
	// executor steady state allocates nothing.
	ghosts []float64
	// blockGhosts are the reusable receive buffers ExchangeBlock
	// returns, one per exchanged vector; grown on first use and reused
	// afterwards so the block executor steady state allocates nothing.
	blockGhosts [][]float64
}

// Build runs the inspector: needs lists the global indices the caller
// will read (duplicates allowed, own elements ignored), d is the
// vector's distribution. Build is collective — every processor must
// call it, with its own needs.
func Build(p *comm.Proc, d dist.Dist, needs []int) *Schedule {
	np := p.NP()
	r := p.Rank()

	// Unique, sorted remote indices.
	uniq := make(map[int]bool)
	for _, g := range needs {
		if g < 0 || g >= d.N() {
			panic(fmt.Sprintf("inspector: needed index %d outside [0,%d)", g, d.N()))
		}
		if d.Owner(g) != r {
			uniq[g] = true
		}
	}
	remote := make([]int, 0, len(uniq))
	for g := range uniq {
		remote = append(remote, g)
	}
	sort.Ints(remote)

	s := &Schedule{
		p:         p,
		d:         d,
		ghostOf:   make(map[int]int, len(remote)),
		recvCount: make([]int, np),
		recvStart: make([]int, np+1),
		sendTo:    make([][]int, np),
		nGhost:    len(remote),
		ghosts:    make([]float64, len(remote)),
	}

	// Group requests by owner; remote is sorted so each owner's request
	// list is sorted too, and ghost slots are assigned in global order
	// grouped by owner (which is the order values will arrive).
	requests := make([][]int, np)
	for _, g := range remote {
		requests[d.Owner(g)] = append(requests[d.Owner(g)], g)
	}
	slot := 0
	for src := 0; src < np; src++ {
		s.recvStart[src] = slot
		for _, g := range requests[src] {
			s.ghostOf[g] = slot
			slot++
		}
		s.recvCount[src] = len(requests[src])
	}
	s.recvStart[np] = slot

	// The request exchange: each owner learns which of its elements
	// every other processor wants, translated to local offsets.
	wanted := p.AlltoallVInts(requests)
	for dst := 0; dst < np; dst++ {
		if dst == r {
			continue
		}
		offs := make([]int, len(wanted[dst]))
		for i, g := range wanted[dst] {
			owner, off := d.Local(g)
			if owner != r {
				panic(fmt.Sprintf("inspector: rank %d asked rank %d for element %d owned by %d", dst, r, g, owner))
			}
			offs[i] = off
		}
		s.sendTo[dst] = offs
	}
	return s
}

// NGhosts returns how many remote elements the schedule fetches.
func (s *Schedule) NGhosts() int { return s.nGhost }

// Rebind re-attaches the schedule to a fresh processor handle of the
// same rank — the warm-start path of plan caching. The schedule's data
// (ghost slots, send/recv lists, the reusable ghost buffer) is
// machine-shape-specific but run-independent, so a cached schedule can
// serve a new SPMD run without re-running the inspector exchange; only
// the Proc, whose mailboxes belong to the current run, must be swapped.
func (s *Schedule) Rebind(p *comm.Proc) {
	if p.Rank() != s.p.Rank() || p.NP() != s.p.NP() {
		panic(fmt.Sprintf("inspector: rebind rank %d/%d onto schedule built for %d/%d",
			p.Rank(), p.NP(), s.p.Rank(), s.p.NP()))
	}
	s.p = p
}

// GhostSlot returns the ghost-buffer slot of a remote global index,
// panicking if the index was not declared to Build.
func (s *Schedule) GhostSlot(g int) int {
	slot, ok := s.ghostOf[g]
	if !ok {
		panic(fmt.Sprintf("inspector: index %d not in schedule", g))
	}
	return slot
}

// tagGhost is the point-to-point tag of executor traffic. Messages
// between a pair are FIFO, so repeated Exchanges stay matched.
// tagGhostBlock carries the packed multi-vector exchange of
// ExchangeBlock under its own tag so single and block executors can
// interleave without cross-matching.
const (
	tagGhost      = 201
	tagGhostBlock = 202
)

// Exchange runs the executor: given the local block of the distributed
// vector, it sends the locally-owned elements other processors need
// and returns the ghost buffer with the remote elements this processor
// needs (indexed by GhostSlot). Unlike the Scenario 1 broadcast, only
// processor pairs that actually share halo elements exchange messages.
// Collective (in the sense that every processor must call it);
// reusable any number of times — the schedule-reuse of ref [20].
// The returned slice is the schedule's own buffer, valid until the next
// Exchange; sends draw on the processor's buffer pool and received
// messages are recycled into it, so the steady state allocates nothing.
func (s *Schedule) Exchange(local []float64) []float64 {
	np := s.p.NP()
	r := s.p.Rank()
	for dst, offs := range s.sendTo {
		if len(offs) == 0 {
			continue
		}
		buf := s.p.GetBuf(len(offs))
		for i, off := range offs {
			buf[i] = local[off]
		}
		s.p.SendFloats(dst, tagGhost, buf)
	}
	for off := 1; off < np; off++ {
		src := (r - off + np) % np
		if s.recvCount[src] == 0 {
			continue
		}
		part := s.p.RecvFloats(src, tagGhost)
		if len(part) != s.recvCount[src] {
			panic(fmt.Sprintf("inspector: expected %d ghosts from %d, got %d", s.recvCount[src], src, len(part)))
		}
		copy(s.ghosts[s.recvStart[src]:s.recvStart[src+1]], part)
		s.p.PutBuf(part)
	}
	return s.ghosts
}

// ExchangeBlock is the executor for a block of vectors sharing this
// schedule: the halos of all k vectors travel in ONE message per
// neighbour pair (k·count packed words, vector-major) instead of k
// messages, so a matrix-powers kernel that widens the schedule to the
// s-level reachability closure pays a single startup per neighbour per
// basis block. Returned slice v holds vector v's ghosts, indexed by
// GhostSlot; the buffers are the schedule's own, valid until the next
// ExchangeBlock with the same or larger k. Collective, like Exchange;
// sends draw on the processor's buffer pool, so after the first call
// (which sizes the reusable ghost buffers) the steady state allocates
// nothing.
func (s *Schedule) ExchangeBlock(locals [][]float64) [][]float64 {
	k := len(locals)
	for len(s.blockGhosts) < k {
		s.blockGhosts = append(s.blockGhosts, make([]float64, s.nGhost))
	}
	np := s.p.NP()
	r := s.p.Rank()
	for dst, offs := range s.sendTo {
		if len(offs) == 0 {
			continue
		}
		buf := s.p.GetBuf(k * len(offs))
		pos := 0
		for _, lv := range locals {
			for _, off := range offs {
				buf[pos] = lv[off]
				pos++
			}
		}
		s.p.SendFloats(dst, tagGhostBlock, buf)
	}
	for off := 1; off < np; off++ {
		src := (r - off + np) % np
		cnt := s.recvCount[src]
		if cnt == 0 {
			continue
		}
		part := s.p.RecvFloats(src, tagGhostBlock)
		if len(part) != k*cnt {
			panic(fmt.Sprintf("inspector: expected %d block ghosts from %d, got %d", k*cnt, src, len(part)))
		}
		for v := 0; v < k; v++ {
			copy(s.blockGhosts[v][s.recvStart[src]:s.recvStart[src+1]], part[v*cnt:(v+1)*cnt])
		}
		s.p.PutBuf(part)
	}
	return s.blockGhosts[:k]
}
