// Node membership: the router's view of which shards exist and which
// are healthy. Shards register, heartbeat on an interval and
// deregister on shutdown; a shard that misses heartbeats is first
// *suspected* (removed from the routing ring so new traffic avoids it,
// but still addressable for status polls on jobs it already owns) and
// then *evicted* after a longer silence. A heartbeat from a suspect
// restores it — transient stalls do not churn the ring.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeState is a member's health.
type NodeState string

const (
	// StateAlive nodes are in the routing ring.
	StateAlive NodeState = "alive"
	// StateSuspect nodes missed heartbeats: out of the ring, still
	// addressable for job-status proxying until evicted.
	StateSuspect NodeState = "suspect"
)

// Node is one registered shard.
type Node struct {
	Name     string    `json:"name"`
	URL      string    `json:"url"`
	State    NodeState `json:"state"`
	LastBeat time.Time `json:"last_beat"`
}

// MembershipOptions tune failure detection.
type MembershipOptions struct {
	// SuspectAfter marks a node suspect when its last heartbeat is
	// older than this (default 3s).
	SuspectAfter time.Duration
	// EvictAfter removes a suspect entirely (default 15s).
	EvictAfter time.Duration
	// VNodes is the ring's virtual-node count (default DefaultVNodes).
	VNodes int
	// Now overrides the clock for deterministic tests.
	Now func() time.Time
}

func (o MembershipOptions) withDefaults() MembershipOptions {
	if o.SuspectAfter == 0 {
		o.SuspectAfter = 3 * time.Second
	}
	if o.EvictAfter == 0 {
		o.EvictAfter = 15 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Membership tracks shards and owns the current ring snapshot.
type Membership struct {
	opts MembershipOptions

	mu    sync.Mutex
	nodes map[string]*Node
	ring  *Ring
}

// NewMembership builds an empty membership.
func NewMembership(opts MembershipOptions) *Membership {
	m := &Membership{
		opts:  opts.withDefaults(),
		nodes: map[string]*Node{},
	}
	m.ring = NewRing(nil, m.opts.VNodes)
	return m
}

// rebuild recomputes the ring from alive members; callers hold mu.
func (m *Membership) rebuild() {
	alive := make([]string, 0, len(m.nodes))
	for name, n := range m.nodes {
		if n.State == StateAlive {
			alive = append(alive, name)
		}
	}
	m.ring = NewRing(alive, m.opts.VNodes)
}

// Register adds (or refreshes) a shard. Re-registering an evicted or
// suspect shard restores it to the ring.
func (m *Membership) Register(name, url string) error {
	if name == "" || url == "" {
		return fmt.Errorf("cluster: register needs name and url")
	}
	for _, c := range name {
		if c == '@' || c == '/' || c == ' ' {
			return fmt.Errorf("cluster: node name %q may not contain '@', '/' or spaces", name)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[name] = &Node{Name: name, URL: url, State: StateAlive, LastBeat: m.opts.Now()}
	m.rebuild()
	return nil
}

// Heartbeat refreshes a shard's liveness; unknown names report false
// so the shard knows to re-register.
func (m *Membership) Heartbeat(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return false
	}
	n.LastBeat = m.opts.Now()
	if n.State != StateAlive {
		n.State = StateAlive
		m.rebuild()
	}
	return true
}

// Deregister removes a shard immediately (graceful shutdown).
func (m *Membership) Deregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[name]; ok {
		delete(m.nodes, name)
		m.rebuild()
	}
}

// Sweep applies the failure detector: alive nodes silent past
// SuspectAfter turn suspect (and leave the ring); suspects silent past
// EvictAfter are removed. Returns what changed, for logging.
func (m *Membership) Sweep() (suspected, evicted []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.opts.Now()
	changed := false
	for name, n := range m.nodes {
		silent := now.Sub(n.LastBeat)
		switch {
		case n.State == StateAlive && silent > m.opts.SuspectAfter:
			n.State = StateSuspect
			suspected = append(suspected, name)
			changed = true
		case n.State == StateSuspect && silent > m.opts.EvictAfter:
			delete(m.nodes, name)
			evicted = append(evicted, name)
			changed = true
		}
	}
	if changed {
		m.rebuild()
	}
	sort.Strings(suspected)
	sort.Strings(evicted)
	return suspected, evicted
}

// Ring returns the current ring snapshot (alive members only).
func (m *Membership) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Lookup resolves a node by name, whatever its state — status polls
// for jobs a suspect shard owns must still route.
func (m *Membership) Lookup(name string) (Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes lists all members sorted by name.
func (m *Membership) Nodes() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AliveCount returns how many members are in the ring.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Len()
}
