// The router tier: an HTTP front that mirrors the hpfserve job API
// and consistent-hashes every job onto the shard owning its matrix
// content hash. Job IDs returned to clients encode the shard
// ("job-3@shard-a"), so status polls route without any router state;
// backpressure (429/503 + Retry-After) passes through unmodified so
// closed-loop clients behave exactly as against a single shard.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hpfcg/internal/serve"
)

// maxBodyBytes mirrors the shard-side submission bound.
const maxBodyBytes = 64 << 20

// RouterOptions configures a Router.
type RouterOptions struct {
	// Membership tuning (suspect/evict windows, vnode count, clock).
	Membership MembershipOptions
	// SweepEvery is the failure-detector period (default 1s; <0
	// disables the background sweeper — tests drive Sweep directly).
	SweepEvery time.Duration
	// Client performs proxy requests (default: 30s-timeout client).
	Client *http.Client
	// Logf logs membership transitions (default log.Printf).
	Logf func(format string, args ...any)
}

// Router is the cluster front tier.
type Router struct {
	opts RouterOptions
	mem  *Membership
	cli  *http.Client
	logf func(format string, args ...any)

	mu          sync.Mutex
	routed      map[string]uint64 // submissions proxied, by shard
	proxyErrors uint64
	noShard     uint64
	sweepJobs   uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router and, unless disabled, starts its
// failure-detector sweeper. Close releases it.
func NewRouter(opts RouterOptions) *Router {
	rt := &Router{
		opts:   opts,
		mem:    NewMembership(opts.Membership),
		cli:    opts.Client,
		logf:   opts.Logf,
		routed: map[string]uint64{},
		stop:   make(chan struct{}),
	}
	if rt.cli == nil {
		rt.cli = &http.Client{Timeout: 30 * time.Second}
	}
	if rt.logf == nil {
		rt.logf = log.Printf
	}
	every := opts.SweepEvery
	if every == 0 {
		every = time.Second
	}
	if every > 0 {
		rt.wg.Add(1)
		go rt.sweeper(every)
	}
	return rt
}

// Close stops the background sweeper. Idempotent.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Membership exposes the member table (state API handlers, tests,
// the cluster smoke check).
func (rt *Router) Membership() *Membership { return rt.mem }

func (rt *Router) sweeper(every time.Duration) {
	defer rt.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			suspected, evicted := rt.mem.Sweep()
			for _, n := range suspected {
				rt.logf("cluster: shard %s suspected (missed heartbeats)", n)
			}
			for _, n := range evicted {
				rt.logf("cluster: shard %s evicted", n)
			}
		}
	}
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", rt.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) { rt.proxyJobGet(w, r, "") })
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { rt.proxyJobGet(w, r, "/trace") })
	mux.HandleFunc("POST /sweep", rt.handleSweepSubmit)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /cluster/register", rt.handleRegister)
	mux.HandleFunc("POST /cluster/heartbeat", rt.handleHeartbeat)
	mux.HandleFunc("POST /cluster/deregister", rt.handleDeregister)
	mux.HandleFunc("GET /cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.mem.Nodes())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// The router is ready only when it can actually place a job: an
	// empty ring means every submission would 503, so balancers should
	// not send traffic yet.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if rt.mem.AliveCount() == 0 {
			http.Error(w, "no live shards", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// --- state API -------------------------------------------------------

type registerRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := rt.mem.Register(req.Name, req.URL); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	rt.logf("cluster: shard %s registered at %s (%d live)", req.Name, req.URL, rt.mem.AliveCount())
	writeJSON(w, http.StatusOK, map[string]int{"live": rt.mem.AliveCount()})
}

func (rt *Router) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if !rt.mem.Heartbeat(req.Name) {
		// Unknown: the shard was evicted (or never joined) — 404 tells
		// it to re-register.
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown node " + req.Name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	rt.mem.Deregister(req.Name)
	rt.logf("cluster: shard %s deregistered (%d live)", req.Name, rt.mem.AliveCount())
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- job routing -----------------------------------------------------

// EncodeJobID tags a shard-local job ID with its owner; DecodeJobID
// splits it again. The router keeps no job table — the ID is the
// routing state.
func EncodeJobID(bare, node string) string { return bare + "@" + node }

// DecodeJobID splits a cluster job ID into the shard-local ID and the
// owning node name.
func DecodeJobID(id string) (bare, node string, ok bool) {
	i := strings.LastIndex(id, "@")
	if i <= 0 || i == len(id)-1 {
		return "", "", false
	}
	return id[:i], id[i+1:], true
}

// ownerFor places a spec's matrix on the ring. ContentHash already
// canonicalizes (generator specs by trimmed lowercase parameters,
// uploads by CSR digest), so no pre-normalization is needed.
func (rt *Router) ownerFor(spec *serve.JobSpec) (Node, string, error) {
	hash, err := spec.ContentHash()
	if err != nil {
		return Node{}, "", err
	}
	name, ok := rt.mem.Ring().Owner(hash)
	if !ok {
		return Node{}, hash, errNoShards
	}
	n, ok := rt.mem.Lookup(name)
	if !ok {
		return Node{}, hash, errNoShards
	}
	return n, hash, nil
}

var errNoShards = fmt.Errorf("cluster: no live shards in the ring")

// handleSubmit proxies POST /jobs to the owning shard. Status codes
// and backpressure headers pass through unmodified; on 202 the job ID
// is rewritten to encode the shard.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := serve.EnsureRequestID(r)
	w.Header().Set(serve.RequestIDHeader, reqID)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	var spec serve.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}

	node, _, err := rt.ownerFor(&spec)
	if err == errNoShards {
		rt.mu.Lock()
		rt.noShard++
		rt.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	status, hdr, respBody, err := rt.proxy(r.Context(), "POST", node.URL+"/jobs", body, reqID)
	if err != nil {
		rt.countProxyError()
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "shard " + node.Name + ": " + err.Error()})
		return
	}
	rt.mu.Lock()
	rt.routed[node.Name]++
	rt.mu.Unlock()

	copyHeader(w, hdr, "Retry-After")
	copyHeader(w, hdr, serve.RequestIDHeader)
	if status == http.StatusAccepted {
		var sub struct {
			ID        string `json:"id"`
			StatusURL string `json:"status_url"`
		}
		if json.Unmarshal(respBody, &sub) == nil && sub.ID != "" {
			cid := EncodeJobID(sub.ID, node.Name)
			writeJSON(w, http.StatusAccepted, map[string]string{
				"id":         cid,
				"status_url": "/jobs/" + cid,
				"shard":      node.Name,
			})
			return
		}
	}
	// Everything else — 400, 429, 503, 500 — passes through verbatim.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(respBody)
}

// proxyJobGet routes GET /jobs/{id}[/trace] by the shard encoded in
// the ID, preserving the query string (?wait=1&timeout=...).
func (rt *Router) proxyJobGet(w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	bare, nodeName, ok := DecodeJobID(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job ID " + id + " does not encode a shard (want id@node)"})
		return
	}
	node, ok := rt.mem.Lookup(nodeName)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown shard " + nodeName})
		return
	}
	url := node.URL + "/jobs/" + bare + suffix
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), "GET", url, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	resp, err := rt.cli.Do(req)
	if err != nil {
		rt.countProxyError()
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "shard " + nodeName + ": " + err.Error()})
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Content-Disposition", "Retry-After"} {
		copyHeader(w, resp.Header, h)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxy performs one round-trip and slurps the response.
func (rt *Router) proxy(ctx context.Context, method, url string, body []byte, reqID string) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(serve.RequestIDHeader, reqID)
	}
	resp, err := rt.cli.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func copyHeader(w http.ResponseWriter, from http.Header, key string) {
	if v := from.Get(key); v != "" {
		w.Header().Set(key, v)
	}
}

func (rt *Router) countProxyError() {
	rt.mu.Lock()
	rt.proxyErrors++
	rt.mu.Unlock()
}

// --- scatter/gather sweep submission ---------------------------------

type sweepRequest struct {
	Jobs []serve.JobSpec `json:"jobs"`
}

// sweepResult is one scattered submission's outcome.
type sweepResult struct {
	Index     int    `json:"index"`
	ID        string `json:"id,omitempty"`
	StatusURL string `json:"status_url,omitempty"`
	Shard     string `json:"shard,omitempty"`
	Status    int    `json:"status"`
	Error     string `json:"error,omitempty"`
}

// handleSweepSubmit scatters a multi-matrix sweep across the ring —
// each job goes to the shard owning its matrix — and gathers the
// per-job acknowledgements into one response. Partial failure is
// first-class: each element carries its own status.
func (rt *Router) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := serve.EnsureRequestID(r)
	w.Header().Set(serve.RequestIDHeader, reqID)

	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad sweep: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "sweep needs at least one job"})
		return
	}

	results := make([]sweepResult, len(req.Jobs))
	var wg sync.WaitGroup
	for i := range req.Jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			res.Index = i
			spec := req.Jobs[i]
			node, _, err := rt.ownerFor(&spec)
			if err != nil {
				res.Status = http.StatusServiceUnavailable
				if err != errNoShards {
					res.Status = http.StatusBadRequest
				}
				res.Error = err.Error()
				return
			}
			body, _ := json.Marshal(spec)
			status, _, respBody, err := rt.proxy(r.Context(), "POST", node.URL+"/jobs", body, reqID)
			if err != nil {
				rt.countProxyError()
				res.Status = http.StatusBadGateway
				res.Error = err.Error()
				return
			}
			res.Status = status
			res.Shard = node.Name
			if status == http.StatusAccepted {
				var sub struct {
					ID string `json:"id"`
				}
				if json.Unmarshal(respBody, &sub) == nil && sub.ID != "" {
					res.ID = EncodeJobID(sub.ID, node.Name)
					res.StatusURL = "/jobs/" + res.ID
					rt.mu.Lock()
					rt.routed[node.Name]++
					rt.sweepJobs++
					rt.mu.Unlock()
					return
				}
			}
			var e errorResponse
			if json.Unmarshal(respBody, &e) == nil && e.Error != "" {
				res.Error = e.Error
			}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": results})
}

// --- metrics rollup --------------------------------------------------

// handleMetrics renders the router's own counters, then scrapes every
// live shard's /metrics concurrently and merges the expositions with a
// shard="name" label on every sample, grouped per metric family so the
// output stays valid Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	rt.mu.Lock()
	shards := make([]string, 0, len(rt.routed))
	for s := range rt.routed {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	fmt.Fprintln(w, "# HELP hpfrouter_jobs_routed_total Job submissions proxied, by shard.")
	fmt.Fprintln(w, "# TYPE hpfrouter_jobs_routed_total counter")
	for _, s := range shards {
		fmt.Fprintf(w, "hpfrouter_jobs_routed_total{shard=%q} %d\n", s, rt.routed[s])
	}
	fmt.Fprintln(w, "# HELP hpfrouter_proxy_errors_total Proxy round-trips that failed.")
	fmt.Fprintln(w, "# TYPE hpfrouter_proxy_errors_total counter")
	fmt.Fprintf(w, "hpfrouter_proxy_errors_total %d\n", rt.proxyErrors)
	fmt.Fprintln(w, "# HELP hpfrouter_no_shard_total Submissions rejected because the ring was empty.")
	fmt.Fprintln(w, "# TYPE hpfrouter_no_shard_total counter")
	fmt.Fprintf(w, "hpfrouter_no_shard_total %d\n", rt.noShard)
	fmt.Fprintln(w, "# HELP hpfrouter_sweep_jobs_total Jobs submitted through scatter/gather sweeps.")
	fmt.Fprintln(w, "# TYPE hpfrouter_sweep_jobs_total counter")
	fmt.Fprintf(w, "hpfrouter_sweep_jobs_total %d\n", rt.sweepJobs)
	rt.mu.Unlock()

	nodes := rt.mem.Nodes()
	fmt.Fprintln(w, "# HELP hpfrouter_shards_live Shards currently in the routing ring.")
	fmt.Fprintln(w, "# TYPE hpfrouter_shards_live gauge")
	fmt.Fprintf(w, "hpfrouter_shards_live %d\n", rt.mem.AliveCount())

	// Scatter the scrapes.
	type scrape struct {
		node Node
		body []byte
		err  error
	}
	scrapes := make([]scrape, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n.State != StateAlive {
			continue
		}
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			scrapes[i].node = n
			req, err := http.NewRequestWithContext(r.Context(), "GET", n.URL+"/metrics", nil)
			if err != nil {
				scrapes[i].err = err
				return
			}
			resp, err := rt.cli.Do(req)
			if err != nil {
				scrapes[i].err = err
				return
			}
			defer resp.Body.Close()
			scrapes[i].body, scrapes[i].err = io.ReadAll(resp.Body)
		}(i, n)
	}
	wg.Wait()

	merged := newFamilyMerger()
	for _, sc := range scrapes {
		if sc.node.Name == "" {
			continue
		}
		if sc.err != nil {
			rt.countProxyError()
			fmt.Fprintf(w, "# shard %s scrape failed: %v\n", sc.node.Name, sc.err)
			continue
		}
		merged.addExposition(sc.node.Name, sc.body)
	}
	merged.write(w)
}

// familyMerger regroups relabeled samples under one HELP/TYPE block
// per metric family, keeping the exposition valid after concatenating
// several shards' outputs.
type familyMerger struct {
	order    []string
	help     map[string]string
	typ      map[string]string
	samples  map[string][]string
	orphaned []string // samples seen before any family header (none in practice)
}

func newFamilyMerger() *familyMerger {
	return &familyMerger{
		help:    map[string]string{},
		typ:     map[string]string{},
		samples: map[string][]string{},
	}
}

// addExposition scans one shard's exposition; samples follow their
// family's # TYPE line in the text format, so a sequential scan can
// attribute every sample to the current family.
func (fm *familyMerger) addExposition(shard string, body []byte) {
	current := ""
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			fm.ensure(name)
			if fm.help[name] == "" {
				fm.help[name] = line
			}
			current = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, _, _ := strings.Cut(rest, " ")
			fm.ensure(name)
			if fm.typ[name] == "" {
				fm.typ[name] = line
			}
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		relabeled := relabel(line, shard)
		if current == "" {
			fm.orphaned = append(fm.orphaned, relabeled)
			continue
		}
		fm.samples[current] = append(fm.samples[current], relabeled)
	}
}

func (fm *familyMerger) ensure(name string) {
	if _, ok := fm.samples[name]; !ok {
		fm.samples[name] = nil
		fm.order = append(fm.order, name)
	}
}

func (fm *familyMerger) write(w io.Writer) {
	for _, name := range fm.order {
		if fm.help[name] != "" {
			fmt.Fprintln(w, fm.help[name])
		}
		if fm.typ[name] != "" {
			fmt.Fprintln(w, fm.typ[name])
		}
		for _, s := range fm.samples[name] {
			fmt.Fprintln(w, s)
		}
	}
	for _, s := range fm.orphaned {
		fmt.Fprintln(w, s)
	}
}

// relabel injects shard="name" as the first label of a sample line.
func relabel(sample, shard string) string {
	// "name{a="b"} v" -> name{shard="s",a="b"} v ; "name v" -> name{shard="s"} v
	if i := strings.Index(sample, "{"); i >= 0 {
		return sample[:i+1] + fmt.Sprintf("shard=%q,", shard) + sample[i+1:]
	}
	if i := strings.IndexAny(sample, " \t"); i >= 0 {
		return sample[:i] + fmt.Sprintf("{shard=%q}", shard) + sample[i:]
	}
	return sample
}
