// Router-tier integration tests: real hpfserve shards behind real HTTP
// servers, a router in front, and clients speaking only to the router.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hpfcg/internal/serve"
)

type testShard struct {
	name string
	s    *serve.Scheduler
	ts   *httptest.Server
}

func startShard(t *testing.T, name string, opts serve.Options) *testShard {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(serve.NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return &testShard{name: name, s: s, ts: ts}
}

// startRouter builds a router (background sweeper off — tests drive
// Sweep directly) and registers the shards through the HTTP state API
// so that path is exercised too.
func startRouter(t *testing.T, shards ...*testShard) (*Router, *httptest.Server) {
	t.Helper()
	rt := NewRouter(RouterOptions{
		SweepEvery: -1,
		Logf:       t.Logf,
	})
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	for _, sh := range shards {
		body, _ := json.Marshal(registerRequest{Name: sh.name, URL: sh.ts.URL})
		resp, err := http.Post(ts.URL+"/cluster/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d", sh.name, resp.StatusCode)
		}
	}
	return rt, ts
}

type submitAck struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
	Shard     string `json:"shard"`
}

func submitJob(t *testing.T, routerURL, specJSON string) (*http.Response, submitAck) {
	t.Helper()
	resp, err := http.Post(routerURL+"/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack submitAck
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return resp, ack
}

func waitJob(t *testing.T, routerURL, id string) serve.JobView {
	t.Helper()
	resp, err := http.Get(routerURL + "/jobs/" + id + "?wait=1&timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait %s: status %d", id, resp.StatusCode)
	}
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestClusterRepeatTrafficSameShardRegistryHits is the acceptance
// test: repeated submissions of the same matrix route to the same
// shard, the shard's plan registry reports hits, the warm solves skip
// setup entirely, and every answer is bit-identical to a solo hpfserve
// solve of the same spec.
func TestClusterRepeatTrafficSameShardRegistryHits(t *testing.T) {
	sh1 := startShard(t, "shard-1", serve.Options{Workers: 1, MaxBatch: 1})
	sh2 := startShard(t, "shard-2", serve.Options{Workers: 1, MaxBatch: 1})
	_, rts := startRouter(t, sh1, sh2)

	const spec = `{"matrix":"laplace2d:12:12","np":4,"seed":7}`

	// Solo reference: the same spec through a standalone scheduler.
	solo := serve.New(serve.Options{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = solo.Drain(ctx)
	}()
	var soloSpec serve.JobSpec
	if err := json.Unmarshal([]byte(spec), &soloSpec); err != nil {
		t.Fatal(err)
	}
	sj, err := solo.Submit(soloSpec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ref, err := solo.Wait(ctx, sj.ID)
	if err != nil || ref.State != serve.StateDone {
		t.Fatalf("solo reference: %v %v", ref.State, err)
	}

	var owner string
	for round := 0; round < 3; round++ {
		resp, ack := submitJob(t, rts.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		if !strings.HasSuffix(ack.ID, "@"+ack.Shard) {
			t.Fatalf("round %d: job ID %q does not encode shard %q", round, ack.ID, ack.Shard)
		}
		if round == 0 {
			owner = ack.Shard
		} else if ack.Shard != owner {
			t.Fatalf("round %d landed on %s, round 0 on %s — repeat traffic split", round, ack.Shard, owner)
		}
		v := waitJob(t, rts.URL, ack.ID)
		if v.State != serve.StateDone {
			t.Fatalf("round %d: %s (%s)", round, v.State, v.Error)
		}
		if hit := v.Result.PlanCacheHit; hit != (round > 0) {
			t.Fatalf("round %d: plan_cache_hit=%v", round, hit)
		}
		if round > 0 && v.Result.SetupModelTime != 0 {
			t.Fatalf("round %d: warm setup %g, want exactly 0", round, v.Result.SetupModelTime)
		}
		// Bit-identical to the solo solve, warm or cold.
		if len(v.Result.X) != len(ref.Result.X) {
			t.Fatalf("round %d: solution length %d vs solo %d", round, len(v.Result.X), len(ref.Result.X))
		}
		for i := range v.Result.X {
			if v.Result.X[i] != ref.Result.X[i] {
				t.Fatalf("round %d: x[%d] = %v, solo %v — cluster answer not bit-identical",
					round, i, v.Result.X[i], ref.Result.X[i])
			}
		}
	}

	// The owning shard's registry saw the traffic; the other stayed cold.
	shardByName := map[string]*testShard{"shard-1": sh1, "shard-2": sh2}
	st := shardByName[owner].s.PlanCacheStats()
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("owner %s registry stats %+v, want >=2 hits and >=1 miss", owner, st)
	}
	for name, sh := range shardByName {
		if name == owner {
			continue
		}
		if st := sh.s.PlanCacheStats(); st.Hits != 0 || st.Misses != 0 {
			t.Fatalf("non-owner %s saw registry traffic: %+v", name, st)
		}
	}
}

// TestRouterBackpressurePassThrough: shard-side 429 (queue full) and
// 503 (draining) must reach the client unmodified, Retry-After intact.
func TestRouterBackpressurePassThrough(t *testing.T) {
	sh := startShard(t, "lone", serve.Options{
		Workers: 1, QueueCap: 1, StartPaused: true, RetryAfter: 2 * time.Second,
	})
	_, rts := startRouter(t, sh)

	const spec = `{"matrix":"laplace1d:32","np":2}`
	if resp, _ := submitJob(t, rts.URL, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ := submitJob(t, rts.URL, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit through router: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q through router, want %q", ra, "2")
	}

	// Drain the shard; a 503 must also pass through.
	sh.s.Resume()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sh.s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = submitJob(t, rts.URL, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to draining shard through router: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lost its Retry-After crossing the router")
	}
}

// TestRouterRequestIDAcrossHops: the correlation ID survives the
// router->shard hop and is echoed back; absent one, the router mints
// an ID of its own.
func TestRouterRequestIDAcrossHops(t *testing.T) {
	var atShard atomic.Value
	sh := startShard(t, "obs", serve.Options{Workers: 1})
	// Wrap the shard handler to observe the header the router forwards.
	inner := sh.ts.Config.Handler
	sh.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(serve.RequestIDHeader); id != "" {
			atShard.Store(id)
		}
		inner.ServeHTTP(w, r)
	})
	_, rts := startRouter(t, sh)

	req, _ := http.NewRequest("POST", rts.URL+"/jobs",
		strings.NewReader(`{"matrix":"laplace1d:16","np":2}`))
	req.Header.Set(serve.RequestIDHeader, "corr-99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(serve.RequestIDHeader); got != "corr-99" {
		t.Fatalf("router echoed %q, want corr-99", got)
	}
	if got, _ := atShard.Load().(string); got != "corr-99" {
		t.Fatalf("shard received request ID %q, want corr-99", got)
	}

	// No client ID: the router generates one and still forwards it.
	resp2, err := http.Post(rts.URL+"/jobs", "application/json",
		strings.NewReader(`{"matrix":"laplace1d:16","np":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	gen := resp2.Header.Get(serve.RequestIDHeader)
	if !strings.HasPrefix(gen, "req-") {
		t.Fatalf("generated ID %q, want req- prefix", gen)
	}
	if got, _ := atShard.Load().(string); got != gen {
		t.Fatalf("shard saw %q, router minted %q", got, gen)
	}
}

// TestRouterStatusRouting: IDs route by their encoded shard; malformed
// or unknown-shard IDs are clean 404s.
func TestRouterStatusRouting(t *testing.T) {
	sh := startShard(t, "only", serve.Options{Workers: 1})
	_, rts := startRouter(t, sh)

	resp, err := http.Get(rts.URL + "/jobs/job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bare ID: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(rts.URL + "/jobs/job-1@ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown shard: %d, want 404", resp.StatusCode)
	}
}

// TestRouterReadyzAndEmptyRing: a router with zero live shards is not
// ready and 503s submissions (with a Retry-After so clients back off).
func TestRouterReadyzAndEmptyRing(t *testing.T) {
	_, rts := startRouter(t) // no shards

	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty ring: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	sub, _ := submitJob(t, rts.URL, `{"matrix":"laplace1d:16","np":2}`)
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with empty ring: %d, want 503", sub.StatusCode)
	}
	if sub.Header.Get("Retry-After") == "" {
		t.Fatal("empty-ring 503 without Retry-After")
	}

	// A shard joins; the router becomes ready.
	sh := startShard(t, "late", serve.Options{Workers: 1})
	body, _ := json.Marshal(registerRequest{Name: sh.name, URL: sh.ts.URL})
	reg, err := http.Post(rts.URL+"/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	reg.Body.Close()
	resp, err = http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after join: %d, want 200", resp.StatusCode)
	}
}

// TestRouterSweepScatterGather: a multi-matrix sweep scatters each job
// to the shard owning its matrix and gathers per-job acks; every job
// completes through the shard-encoded status path.
func TestRouterSweepScatterGather(t *testing.T) {
	sh1 := startShard(t, "s1", serve.Options{Workers: 2})
	sh2 := startShard(t, "s2", serve.Options{Workers: 2})
	rt, rts := startRouter(t, sh1, sh2)

	matrices := []string{"laplace1d:32", "laplace1d:48", "laplace2d:6:6", "banded:40:2"}
	var sweep sweepRequest
	for _, m := range matrices {
		sweep.Jobs = append(sweep.Jobs, serve.JobSpec{Matrix: m, NP: 2, Seed: 3})
	}
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(rts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	var out struct {
		Jobs []sweepResult `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != len(matrices) {
		t.Fatalf("%d results, want %d", len(out.Jobs), len(matrices))
	}
	ring := rt.Membership().Ring()
	for i, res := range out.Jobs {
		if res.Status != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%s)", i, res.Status, res.Error)
		}
		// The scatter must follow the ring, not round-robin.
		spec := sweep.Jobs[i]
		hash, err := spec.ContentHash()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ring.Owner(hash)
		if res.Shard != want {
			t.Fatalf("job %d (%s): landed on %s, ring owner %s", i, spec.Matrix, res.Shard, want)
		}
		v := waitJob(t, rts.URL, res.ID)
		if v.State != serve.StateDone || !v.Result.Converged {
			t.Fatalf("job %d: %s (%s)", i, v.State, v.Error)
		}
	}
}

// TestRouterMetricsRollup: the cluster /metrics merges every shard's
// exposition under shard="name" labels with one HELP/TYPE block per
// family, alongside the router's own counters.
func TestRouterMetricsRollup(t *testing.T) {
	sh1 := startShard(t, "m1", serve.Options{Workers: 1})
	sh2 := startShard(t, "m2", serve.Options{Workers: 1})
	_, rts := startRouter(t, sh1, sh2)

	// Drive one job so per-shard counters are non-trivial.
	resp, ack := submitJob(t, rts.URL, `{"matrix":"laplace1d:32","np":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitJob(t, rts.URL, ack.ID)

	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"hpfrouter_jobs_routed_total{shard=",
		"hpfrouter_shards_live 2",
		`hpfserve_jobs_submitted_total{shard="m1",job_type="cg"}`,
		`hpfserve_jobs_submitted_total{shard="m2",job_type="cg"}`,
		`hpfserve_stage_seconds_bucket{shard=`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rollup missing %q:\n%s", want, text)
		}
	}
	// One HELP/TYPE block per family even though two shards exported it
	// and job_type labels fan each family into several series.
	for _, family := range []string{
		"hpfserve_jobs_submitted_total",
		"hpfserve_jobs_completed_total",
		"hpfserve_stage_seconds",
		"hpfserve_plan_cache_hits_total",
	} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Fatalf("family %s has %d TYPE lines, want 1", family, n)
		}
	}
	// Histogram invariants must survive relabeling: every bucket series
	// now carries a shard label but stays cumulative.
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatal("rollup lost histogram buckets")
	}
	if strings.Contains(text, "{shard=\"m1\",shard=") {
		t.Fatal("double shard label after relabeling")
	}
}

// TestJoinerLifecycle: a shard joins through the Joiner, heartbeats,
// re-registers after the router forgets it, and deregisters on
// shutdown.
func TestJoinerLifecycle(t *testing.T) {
	rt := NewRouter(RouterOptions{SweepEvery: -1, Logf: t.Logf})
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	j, err := NewJoiner(JoinOptions{
		RouterURL:      rts.URL,
		Name:           "joiner-1",
		AdvertiseURL:   "http://shard:9",
		HeartbeatEvery: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- j.Run(ctx) }()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor("join", func() bool { return rt.Membership().AliveCount() == 1 })
	if n, ok := rt.Membership().Lookup("joiner-1"); !ok || n.URL != "http://shard:9" {
		t.Fatalf("joined node: %+v, %v", n, ok)
	}

	// The router forgets the shard (as an eviction would); the next
	// heartbeat gets a 404 and the joiner must re-register on its own.
	rt.Membership().Deregister("joiner-1")
	waitFor("re-register after eviction", func() bool { return rt.Membership().AliveCount() == 1 })

	// Graceful shutdown deregisters.
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if rt.Membership().AliveCount() != 0 {
		t.Fatal("shard still registered after graceful shutdown")
	}
}
