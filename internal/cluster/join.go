// Shard-side membership: a worker daemon joins the cluster by
// registering with the router, heartbeats on an interval, re-registers
// when the router says it has been evicted (404), and deregisters on
// graceful shutdown so the ring rebalances immediately instead of
// waiting out the failure detector.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"
)

// JoinOptions configure a shard's membership loop.
type JoinOptions struct {
	// RouterURL is the router's base URL (e.g. "http://router:8080").
	RouterURL string
	// Name is this shard's cluster-unique name.
	Name string
	// AdvertiseURL is the base URL other tiers reach this shard at.
	AdvertiseURL string
	// HeartbeatEvery is the heartbeat period (default 1s).
	HeartbeatEvery time.Duration
	// Client performs the HTTP calls (default 5s-timeout client).
	Client *http.Client
	// Logf logs membership events (default log.Printf).
	Logf func(format string, args ...any)
}

// Joiner runs a shard's register/heartbeat/deregister lifecycle.
type Joiner struct {
	opts JoinOptions
	cli  *http.Client
	logf func(format string, args ...any)
}

// NewJoiner validates the options and returns a Joiner; Run drives it.
func NewJoiner(opts JoinOptions) (*Joiner, error) {
	if opts.RouterURL == "" || opts.Name == "" || opts.AdvertiseURL == "" {
		return nil, fmt.Errorf("cluster: join needs router URL, name and advertise URL")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	j := &Joiner{opts: opts, cli: opts.Client, logf: opts.Logf}
	if j.cli == nil {
		j.cli = &http.Client{Timeout: 5 * time.Second}
	}
	if j.logf == nil {
		j.logf = log.Printf
	}
	return j, nil
}

// Run registers, then heartbeats until ctx is cancelled, then
// deregisters (on a short fresh context — the caller's is already
// dead). Registration failures retry with backoff rather than erroring
// out: the router may simply not be up yet.
func (j *Joiner) Run(ctx context.Context) error {
	if err := j.registerUntil(ctx); err != nil {
		return err
	}
	tick := time.NewTicker(j.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			dctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := j.post(dctx, "/cluster/deregister", nil); err != nil {
				j.logf("cluster: deregister from %s failed: %v", j.opts.RouterURL, err)
			} else {
				j.logf("cluster: shard %s left the ring", j.opts.Name)
			}
			return ctx.Err()
		case <-tick.C:
			err := j.post(ctx, "/cluster/heartbeat", func(status int) error {
				if status == http.StatusNotFound {
					return errEvicted
				}
				return nil
			})
			if err == errEvicted {
				// The router evicted us (restart, long GC pause...):
				// re-register instead of heartbeating into the void.
				j.logf("cluster: shard %s was evicted, re-registering", j.opts.Name)
				if err := j.registerUntil(ctx); err != nil {
					return err
				}
			} else if err != nil && ctx.Err() == nil {
				j.logf("cluster: heartbeat to %s failed: %v", j.opts.RouterURL, err)
			}
		}
	}
}

var errEvicted = fmt.Errorf("cluster: shard evicted by router")

// registerUntil retries registration with linear backoff until it
// succeeds or ctx dies.
func (j *Joiner) registerUntil(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		err := j.post(ctx, "/cluster/register", nil)
		if err == nil {
			j.logf("cluster: shard %s joined %s as %s", j.opts.Name, j.opts.RouterURL, j.opts.AdvertiseURL)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		wait := time.Duration(min(attempt+1, 5)) * 500 * time.Millisecond
		j.logf("cluster: register with %s failed (%v), retrying in %s", j.opts.RouterURL, err, wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// post sends this shard's identity to a membership endpoint. check, if
// non-nil, may map a non-2xx status to a sentinel error before the
// generic failure is reported.
func (j *Joiner) post(ctx context.Context, path string, check func(status int) error) error {
	body, _ := json.Marshal(registerRequest{Name: j.opts.Name, URL: j.opts.AdvertiseURL})
	req, err := http.NewRequestWithContext(ctx, "POST", j.opts.RouterURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.cli.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if check != nil {
		if err := check(resp.StatusCode); err != nil {
			return err
		}
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	return nil
}
