package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAcrossJoinOrder: placement depends only on the
// member set, never on the order nodes joined.
func TestRingDeterministicAcrossJoinOrder(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner %s vs %s depending on join order", key, oa, ob)
		}
	}
}

// TestRingBalance: virtual nodes must spread keys across all members
// without any pathological imbalance.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := NewRing(nodes, DefaultVNodes)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		o, ok := r.Owner(fmt.Sprintf("matrix-%d", i))
		if !ok {
			t.Fatal("non-empty ring reported empty")
		}
		counts[o]++
	}
	min, max := keys, 0
	for _, n := range nodes {
		c := counts[n]
		if c == 0 {
			t.Fatalf("node %s owns zero keys: %v", n, counts)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(min) > 3 {
		t.Fatalf("imbalanced ring: %v (max/min > 3)", counts)
	}
}

// TestRingRebalanceOnlyToNewNode: adding a member may only move keys
// onto the new member — consistent hashing's defining property.
func TestRingRebalanceOnlyToNewNode(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 64)
	after := NewRing([]string{"a", "b", "c", "d"}, 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob != oa {
			moved++
			if oa != "d" {
				t.Fatalf("key %q moved %s -> %s, not to the new node", key, ob, oa)
			}
		}
	}
	if moved == 0 {
		t.Fatal("new node received no keys")
	}
	// Expect ~keys/4 to move; flag gross deviation.
	if moved > keys/2 {
		t.Fatalf("%d/%d keys moved on a single join", moved, keys)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if r.Len() != 0 {
		t.Fatalf("empty ring Len %d", r.Len())
	}
}

// TestRingDuplicateNames: duplicates collapse rather than doubling a
// node's share.
func TestRingDuplicateNames(t *testing.T) {
	r := NewRing([]string{"a", "a", "b"}, 8)
	if r.Len() != 2 {
		t.Fatalf("Len %d, want 2", r.Len())
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Nodes %v", got)
	}
}
