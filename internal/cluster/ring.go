// Package cluster shards the solver service across nodes: a router
// tier consistent-hashes jobs by matrix content hash onto hpfserve
// worker shards, so repeat traffic against a hot matrix always lands
// on the shard whose Prepared-plan registry already holds its plan —
// the cross-node extension of the content-addressed caching in
// internal/serve. Membership is a small HTTP state API (register,
// heartbeat, deregister) with suspect-then-evict failure handling, and
// the router mirrors the hpfserve job API (submit proxying with
// backpressure pass-through, shard-encoded job IDs, scatter/gather
// sweep submission, cluster-wide /metrics rollup).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard. 64 points per
// node keeps the max/min key-share ratio tight (≲1.3 for small
// clusters) while the ring stays tiny.
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes. It is a value
// snapshot — membership builds a fresh ring on every change, so reads
// need no locking and rebalancing is deterministic: the ring depends
// only on the member set, never on join order.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member names
}

type ringPoint struct {
	h    uint64
	node string
}

// ringHash places a key on the ring: the first 8 bytes of SHA-256,
// matching the content-hash pipeline so placement is stable across
// processes and platforms.
func ringHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given node names with vnodes virtual
// points each (<=0 selects DefaultVNodes). Duplicate names collapse.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := map[string]bool{}
	for _, n := range nodes {
		uniq[n] = true
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(uniq)*vnodes),
		nodes:  make([]string, 0, len(uniq)),
	}
	for n := range uniq {
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				h:    ringHash(n + "#" + strconv.Itoa(v)),
				node: n,
			})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// A 64-bit collision between vnode labels is astronomically
		// unlikely; break it by name so the ring is still deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner maps a key (a matrix content hash) to the node owning it:
// the first virtual point clockwise from the key's position. Returns
// false when the ring is empty.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node, true
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }
