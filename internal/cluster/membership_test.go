package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the failure detector deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func memWithClock(c *fakeClock) *Membership {
	return NewMembership(MembershipOptions{
		SuspectAfter: 3 * time.Second,
		EvictAfter:   15 * time.Second,
		Now:          c.now,
	})
}

// TestSuspectThenEvict walks a shard through the full failure-detector
// lifecycle: alive -> suspect (out of the ring, still addressable) ->
// evicted (gone), with a heartbeat restoring a suspect along the way.
func TestSuspectThenEvict(t *testing.T) {
	clk := newFakeClock()
	m := memWithClock(clk)
	if err := m.Register("a", "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", "http://b"); err != nil {
		t.Fatal(err)
	}
	if m.AliveCount() != 2 {
		t.Fatalf("alive %d, want 2", m.AliveCount())
	}

	// b goes silent past SuspectAfter.
	clk.advance(4 * time.Second)
	m.Heartbeat("a")
	suspected, evicted := m.Sweep()
	if len(suspected) != 1 || suspected[0] != "b" || len(evicted) != 0 {
		t.Fatalf("sweep suspected=%v evicted=%v", suspected, evicted)
	}
	if m.AliveCount() != 1 {
		t.Fatalf("alive %d after suspect, want 1", m.AliveCount())
	}
	// A suspect is out of the ring but still addressable: status polls
	// for jobs it owns must still route.
	if n, ok := m.Lookup("b"); !ok || n.State != StateSuspect {
		t.Fatalf("Lookup(b) = %+v, %v", n, ok)
	}
	for i := 0; i < 100; i++ {
		if o, _ := m.Ring().Owner(string(rune('0' + i))); o == "b" {
			t.Fatal("suspect shard still owns ring keys")
		}
	}

	// A heartbeat restores the suspect.
	if !m.Heartbeat("b") {
		t.Fatal("heartbeat from suspect rejected")
	}
	if m.AliveCount() != 2 {
		t.Fatalf("alive %d after restore, want 2", m.AliveCount())
	}

	// Silent for good: suspect, then evicted after EvictAfter more.
	clk.advance(4 * time.Second)
	m.Heartbeat("a")
	if s, _ := m.Sweep(); len(s) != 1 || s[0] != "b" {
		t.Fatalf("re-suspect: %v", s)
	}
	clk.advance(16 * time.Second)
	m.Heartbeat("a")
	if _, ev := m.Sweep(); len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evict: %v", ev)
	}
	if _, ok := m.Lookup("b"); ok {
		t.Fatal("evicted shard still addressable")
	}
	// An evicted shard's heartbeat reports false -> it must re-register.
	if m.Heartbeat("b") {
		t.Fatal("heartbeat from evicted shard accepted")
	}
	if err := m.Register("b", "http://b"); err != nil {
		t.Fatal(err)
	}
	if m.AliveCount() != 2 {
		t.Fatalf("alive %d after re-register, want 2", m.AliveCount())
	}
}

func TestRegisterValidation(t *testing.T) {
	m := memWithClock(newFakeClock())
	for _, name := range []string{"", "has space", "has/slash", "has@at"} {
		if err := m.Register(name, "http://x"); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	if err := m.Register("ok", ""); err == nil {
		t.Fatal("empty URL accepted")
	}
	if err := m.Register("shard-1", "http://x"); err != nil {
		t.Fatal(err)
	}
}

// TestDeregisterRebalances: a graceful leave removes the node from the
// ring immediately and its keys land on survivors.
func TestDeregisterRebalances(t *testing.T) {
	m := memWithClock(newFakeClock())
	m.Register("a", "http://a")
	m.Register("b", "http://b")
	m.Deregister("a")
	if m.AliveCount() != 1 {
		t.Fatalf("alive %d, want 1", m.AliveCount())
	}
	if o, ok := m.Ring().Owner("any-key"); !ok || o != "b" {
		t.Fatalf("owner %q, %v after deregister", o, ok)
	}
}
