package spmv

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

func TestGhostOperatorMatchesReference(t *testing.T) {
	for name, A := range testMatrices() {
		want := reference(A, false)
		for _, np := range testNPs {
			got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewRowBlockCSRGhost(p, A, d)
			}, false)
			checkClose(t, name+"/ghost", got, want)
		}
	}
}

func TestGhostScheduleReusedAcrossApplies(t *testing.T) {
	A := sparse.Banded(64, 2)
	np := 4
	d := dist.NewBlock(64, np)
	machine(np).Run(func(p *comm.Proc) {
		op := NewRowBlockCSRGhost(p, A, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		for rep := 0; rep < 3; rep++ {
			x.SetGlobal(func(g int) float64 { return float64(g + rep) })
			op.Apply(x, y)
			full := y.Gather()
			ref := make([]float64, 64)
			xf := make([]float64, 64)
			for g := range xf {
				xf[g] = float64(g + rep)
			}
			A.MulVec(xf, ref)
			for i := range ref {
				if math.Abs(full[i]-ref[i]) > 1e-10 {
					t.Fatalf("rep %d: elem %d = %g, want %g", rep, i, full[i], ref[i])
				}
			}
		}
	})
}

func TestGhostMetadata(t *testing.T) {
	A := sparse.Banded(40, 3)
	np := 4
	d := dist.NewBlock(40, np)
	machine(np).Run(func(p *comm.Proc) {
		op := NewRowBlockCSRGhost(p, A, d)
		if op.N() != 40 || op.NNZ() != A.NNZ() {
			t.Errorf("metadata: N=%d NNZ=%d", op.N(), op.NNZ())
		}
		if op.LocalNNZ() <= 0 {
			t.Errorf("LocalNNZ = %d", op.LocalNNZ())
		}
		// Halfband 3 halo: at most 3 ghosts per side.
		if op.NGhosts() > 6 {
			t.Errorf("banded halo has %d ghosts, want <= 6", op.NGhosts())
		}
		if p.NP() > 1 && op.NGhosts() == 0 {
			t.Error("interior processors should have ghosts")
		}
	})
}

// The E14 claim: on a banded matrix the ghost operator moves far fewer
// bytes per apply than the broadcast operator, and modeled time drops.
func TestGhostBeatsBroadcastOnBanded(t *testing.T) {
	n := 2048
	A := sparse.Banded(n, 4)
	np := 8
	d := dist.NewBlock(n, np)
	run := func(ghost bool, applies int) comm.RunStats {
		return machine(np).Run(func(p *comm.Proc) {
			var op Operator
			if ghost {
				op = NewRowBlockCSRGhost(p, A, d)
			} else {
				op = NewRowBlockCSR(p, A, d)
			}
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			for i := 0; i < applies; i++ {
				op.Apply(x, y)
			}
		})
	}
	const applies = 10
	bc := run(false, applies)
	gh := run(true, applies) // includes the one-time inspector
	if gh.TotalBytes >= bc.TotalBytes {
		t.Errorf("ghost moved %d bytes, broadcast %d", gh.TotalBytes, bc.TotalBytes)
	}
	if gh.ModelTime >= bc.ModelTime {
		t.Errorf("ghost model time %g, broadcast %g", gh.ModelTime, bc.ModelTime)
	}
}

// CG must run unchanged on the ghost operator (it is just an Operator).
func TestGhostWorksUnderGather(t *testing.T) {
	// A dense-ish random matrix: the ghost set approaches the whole
	// vector, and results must still be exact.
	A := sparse.RandomSPD(60, 20, 4)
	want := reference(A, false)
	got := runApply(t, 4, A, func(p *comm.Proc, d dist.Contiguous) Operator {
		return NewRowBlockCSRGhost(p, A, d)
	}, false)
	checkClose(t, "dense-ghost", got, want)
}

func TestRowBlockELLMatchesReference(t *testing.T) {
	for name, A := range testMatrices() {
		want := reference(A, false)
		for _, np := range testNPs {
			got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewRowBlockELL(p, A, d, 0)
			}, false)
			checkClose(t, name+"/ell", got, want)
		}
	}
}

func TestRowBlockELLWidthBound(t *testing.T) {
	A := sparse.PowerLaw(60, 1.0, 30, 3)
	d := dist.NewBlock(60, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("irregular strip accepted under tight width bound")
		}
	}()
	machine(2).Run(func(p *comm.Proc) {
		NewRowBlockELL(p, A, d, 2)
	})
}

func TestRowBlockELLMetadata(t *testing.T) {
	A := sparse.Banded(24, 2)
	d := dist.NewBlock(24, 3)
	machine(3).Run(func(p *comm.Proc) {
		op := NewRowBlockELL(p, A, d, 0)
		if op.N() != 24 || op.NNZ() != A.NNZ() {
			t.Errorf("metadata N=%d NNZ=%d", op.N(), op.NNZ())
		}
		if op.Width() != 5 { // halfband 2 -> at most 5 per row
			t.Errorf("Width = %d, want 5", op.Width())
		}
	})
}

// ELL under CG: the uniform format must plug into the solver unchanged.
func TestRowBlockELLUnderCG(t *testing.T) {
	A := sparse.Banded(48, 3)
	b := sparse.RandomVector(48, 9)
	want := reference(A, false) // reuse harness helpers for shape only
	_ = want
	np := 4
	d := dist.NewBlock(48, np)
	machine(np).Run(func(p *comm.Proc) {
		op := NewRowBlockELL(p, A, d, 0)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.SetGlobal(func(g int) float64 { return b[g] })
		op.Apply(x, y)
		// One apply suffices here; full CG coverage lives in core tests.
		full := y.Gather()
		ref := make([]float64, 48)
		A.MulVec(b, ref)
		for i := range ref {
			if math.Abs(full[i]-ref[i]) > 1e-10 {
				t.Fatalf("elem %d = %g, want %g", i, full[i], ref[i])
			}
		}
	})
}
