package spmv

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/inspector"
	"hpfcg/internal/sparse"
)

// The matrix-powers kernel as a plain Operator must match the
// sequential reference, like every other operator.
func TestPowersApplyMatchesReference(t *testing.T) {
	for name, A := range testMatrices() {
		want := reference(A, false)
		for _, np := range testNPs {
			for _, depth := range []int{1, 2, 3} {
				got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
					return NewRowBlockCSRPowers(p, A, d, depth)
				}, false)
				checkClose(t, name+"/powers", got, want)
			}
		}
	}
}

// The load-bearing property of the kernel: a basis block produced by
// ApplyPowersBlock must be bit-identical — not approximately equal —
// to the vectors repeated RowBlockCSRGhost applies yield, because
// CGSStep's s=1 equivalence and its cross-s convergence accounting
// both assume the block brings in no new rounding.
func TestPowersBlockBitIdenticalToRepeatedApplies(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"laplace2d": sparse.Laplace2D(6, 7),
		"banded":    sparse.Banded(48, 3),
		"randspd":   sparse.RandomSPD(40, 6, 11),
	}
	for name, A := range mats {
		n := A.NRows
		ps := sparse.RandomVector(n, 5)
		rs := sparse.RandomVector(n, 6)
		for _, np := range []int{1, 2, 4} {
			for _, depth := range []int{1, 2, 3, 4} {
				d := dist.NewBlock(n, np)
				machine(np).Run(func(p *comm.Proc) {
					pow := NewRowBlockCSRPowers(p, A, d, depth)
					gh := NewRowBlockCSRGhost(p, A, d)
					pv := darray.New(p, d)
					rv := darray.New(p, d)
					pv.SetGlobal(func(g int) float64 { return ps[g] })
					rv.SetGlobal(func(g int) float64 { return rs[g] })

					AP := make([]*darray.Vector, depth)
					for j := range AP {
						AP[j] = darray.New(p, d)
					}
					rDepth := depth - 1
					if rDepth == 0 {
						rDepth = 1
					}
					AR := make([]*darray.Vector, rDepth)
					for j := range AR {
						AR[j] = darray.New(p, d)
					}
					pow.ApplyPowersBlock(
						[]*darray.Vector{pv, rv},
						[][]*darray.Vector{AP, AR},
					)

					cur := pv
					for j := 0; j < depth; j++ {
						next := darray.New(p, d)
						gh.Apply(cur, next)
						wl, gl := next.Local(), AP[j].Local()
						for i := range wl {
							if wl[i] != gl[i] {
								t.Errorf("%s np=%d depth=%d: A^%d p differs at local %d: %v vs %v",
									name, np, depth, j+1, i, gl[i], wl[i])
							}
						}
						cur = next
					}
					cur = rv
					for j := 0; j < rDepth; j++ {
						next := darray.New(p, d)
						gh.Apply(cur, next)
						wl, gl := next.Local(), AR[j].Local()
						for i := range wl {
							if wl[i] != gl[i] {
								t.Errorf("%s np=%d depth=%d: A^%d r differs at local %d: %v vs %v",
									name, np, depth, j+1, i, gl[i], wl[i])
							}
						}
						cur = next
					}
				})
			}
		}
	}
}

// ExchangeBlock must deliver exactly what k separate Exchanges deliver,
// in one message round per neighbour pair instead of k.
func TestExchangeBlockBitIdenticalToExchanges(t *testing.T) {
	n := 40
	const np = 4
	const k = 3
	d := dist.NewBlock(n, np)
	vecs := make([][]float64, k)
	for v := range vecs {
		vecs[v] = sparse.RandomVector(n, int64(v+1))
	}
	machine(np).Run(func(p *comm.Proc) {
		r := p.Rank()
		lo, cnt := d.Lo(r), d.Count(r)
		// Every rank wants a halo of two indices on each side.
		var needs []int
		for _, g := range []int{lo - 2, lo - 1, lo + cnt, lo + cnt + 1} {
			if g >= 0 && g < n {
				needs = append(needs, g)
			}
		}
		sched := inspector.Build(p, d, needs)
		locals := make([][]float64, k)
		for v := range locals {
			locals[v] = vecs[v][lo : lo+cnt]
		}
		var want [][]float64
		for v := 0; v < k; v++ {
			g := sched.Exchange(locals[v])
			want = append(want, append([]float64(nil), g...))
		}
		got := sched.ExchangeBlock(locals)
		for v := 0; v < k; v++ {
			for i := range want[v] {
				if got[v][i] != want[v][i] {
					t.Errorf("rank %d vec %d slot %d: block %v, single %v", r, v, i, got[v][i], want[v][i])
				}
			}
		}
	})
	// One round: a 2-vector block on the powers schedule must cost fewer
	// messages than two single exchanges.
	countMsgs := func(block bool) int64 {
		st := machine(np).Run(func(p *comm.Proc) {
			r := p.Rank()
			lo, cnt := d.Lo(r), d.Count(r)
			var needs []int
			for _, g := range []int{lo - 1, lo + cnt} {
				if g >= 0 && g < n {
					needs = append(needs, g)
				}
			}
			sched := inspector.Build(p, d, needs)
			locals := [][]float64{vecs[0][lo : lo+cnt], vecs[1][lo : lo+cnt]}
			if block {
				sched.ExchangeBlock(locals)
			} else {
				sched.Exchange(locals[0])
				sched.Exchange(locals[1])
			}
		})
		return st.TotalMsgs
	}
	if b, s := countMsgs(true), countMsgs(false); b >= s {
		t.Errorf("block exchange sent %d msgs, singles sent %d; block must be fewer", b, s)
	}
}

// Satellite guard: the matrix-powers executor allocates nothing in
// steady state — the widened ghost buffers, the packed send buffers and
// the ping-pong level buffers are all reused.
func TestPowersBlockSteadyStateNoAllocs(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	n := A.NRows
	const runs = 7
	const depth = 4
	for _, np := range []int{3, 4} {
		d := dist.NewBlock(n, np)
		var allocs float64
		machine(np).Run(func(p *comm.Proc) {
			op := NewRowBlockCSRPowers(p, A, d, depth)
			pv := darray.New(p, d)
			rv := darray.New(p, d)
			pv.SetGlobal(func(g int) float64 { return float64(g%7) - 3 })
			rv.SetGlobal(func(g int) float64 { return float64(g%5) - 2 })
			AP := make([]*darray.Vector, depth)
			AR := make([]*darray.Vector, depth-1)
			for j := range AP {
				AP[j] = darray.New(p, d)
			}
			for j := range AR {
				AR[j] = darray.New(p, d)
			}
			seeds := []*darray.Vector{pv, rv}
			outs := [][]*darray.Vector{AP, AR}
			op.ApplyPowersBlock(seeds, outs) // warm-up sizes every buffer
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(runs, func() {
					op.ApplyPowersBlock(seeds, outs)
				})
			} else {
				for i := 0; i < runs+1; i++ {
					op.ApplyPowersBlock(seeds, outs)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("np=%d: ApplyPowersBlock allocated %.1f times per call in steady state, want 0", np, allocs)
		}
	}
}

// PowersStats must price exactly the work the kernel itself reports —
// it is the input of the s-selection cost model, so any disagreement
// would make hpfexec pick s against the wrong numbers.
func TestPowersStatsMatchesKernel(t *testing.T) {
	A := sparse.Laplace2D(9, 8)
	n := A.NRows
	const np = 4
	d := dist.NewBlock(n, np)
	for _, depth := range []int{1, 2, 3} {
		entries, ghosts := PowersStats(A, d, np, depth)
		wantGhosts := make([]int, np)
		wantLocal := make([]int, np)
		wantOverlap := make([]int, np)
		machine(np).Run(func(p *comm.Proc) {
			op := NewRowBlockCSRPowers(p, A, d, depth)
			r := p.Rank()
			wantGhosts[r] = op.NGhosts()
			wantLocal[r] = op.LocalNNZ()
			wantOverlap[r] = op.OverlapNNZ()
		})
		maxG := 0
		for _, g := range wantGhosts {
			if g > maxG {
				maxG = g
			}
		}
		if ghosts != maxG {
			t.Errorf("depth %d: PowersStats ghosts %d, kernels report max %d", depth, ghosts, maxG)
		}
		// Depth 1 block = one p-chain level over exactly the local rows:
		// entries must be the largest per-rank local nnz, and the ghost
		// width the single-level halo.
		if depth == 1 {
			maxLocal := 0
			for r := 0; r < np; r++ {
				if wantLocal[r] > maxLocal {
					maxLocal = wantLocal[r]
				}
				if wantOverlap[r] != 0 {
					t.Errorf("depth 1 rank %d: overlap nnz %d, want 0", r, wantOverlap[r])
				}
			}
			if entries != maxLocal {
				t.Errorf("depth 1: PowersStats entries %d, want max local nnz %d", entries, maxLocal)
			}
			var singleHalo [np]int
			machine(np).Run(func(p *comm.Proc) {
				singleHalo[p.Rank()] = NewRowBlockCSRGhost(p, A, d).NGhosts()
			})
			for r := 0; r < np; r++ {
				if wantGhosts[r] != singleHalo[r] {
					t.Errorf("depth 1 rank %d: powers halo %d, ghost op halo %d", r, wantGhosts[r], singleHalo[r])
				}
			}
		}
	}
	// Widening monotonicity: deeper closures fetch at least as many
	// ghosts and sweep at least as many entries.
	e1, g1 := PowersStats(A, d, np, 1)
	e3, g3 := PowersStats(A, d, np, 3)
	if g3 <= g1 || e3 <= e1 {
		t.Errorf("depth 3 (%d entries, %d ghosts) should dominate depth 1 (%d, %d)", e3, g3, e1, g1)
	}
}
