package spmv

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// fusedBuilders enumerates every operator that implements
// FusedOperator.
func fusedBuilders(A *sparse.CSR) map[string]func(p *comm.Proc, d dist.Contiguous) FusedOperator {
	dense := A.ToDense()
	return map[string]func(p *comm.Proc, d dist.Contiguous) FusedOperator{
		"rowblock-csr": func(p *comm.Proc, d dist.Contiguous) FusedOperator {
			return NewRowBlockCSR(p, A, d)
		},
		"rowblock-csr-ghost": func(p *comm.Proc, d dist.Contiguous) FusedOperator {
			return NewRowBlockCSRGhost(p, A, d)
		},
		"dense-rowblock": func(p *comm.Proc, d dist.Contiguous) FusedOperator {
			return NewDenseRowBlock(p, dense, d)
		},
	}
}

// TestApplyDotBitIdenticalToApplyThenDot: the fused kernel must produce
// exactly the y and exactly the local dot partial of the unfused pair —
// CG's fused and unfused iterations may not drift by one ulp.
func TestApplyDotBitIdenticalToApplyThenDot(t *testing.T) {
	A := sparse.Laplace2D(7, 9)
	n := A.NRows
	xs := sparse.RandomVector(n, 17)
	for name, build := range fusedBuilders(A) {
		for _, np := range testNPs {
			d := dist.NewBlock(n, np)
			machine(np).Run(func(p *comm.Proc) {
				op := build(p, d)
				x := darray.New(p, d)
				x.SetGlobal(func(g int) float64 { return xs[g] })
				y1 := darray.New(p, d)
				y2 := darray.New(p, d)

				op.Apply(x, y1)
				want := x.DotLocal(y1)
				got := op.ApplyDot(x, y2)

				if got != want {
					t.Errorf("%s np=%d rank=%d: fused partial %v != unfused %v", name, np, p.Rank(), got, want)
				}
				l1, l2 := y1.Local(), y2.Local()
				for i := range l1 {
					if l1[i] != l2[i] {
						t.Errorf("%s np=%d rank=%d: y differs at local %d: %v vs %v", name, np, p.Rank(), i, l1[i], l2[i])
					}
				}
			})
		}
	}
}

// TestApplyDotChargesApplyPlusDot: the fused kernel's modeled flop
// charge must equal Apply + DotLocal exactly, so fusion changes memory
// traffic and wall-clock but never the modeled cost comparisons.
func TestApplyDotChargesApplyPlusDot(t *testing.T) {
	A := sparse.Laplace2D(6, 6)
	n := A.NRows
	for name, build := range fusedBuilders(A) {
		const np = 4
		d := dist.NewBlock(n, np)
		unfused := machine(np).Run(func(p *comm.Proc) {
			op := build(p, d)
			x := darray.New(p, d)
			x.SetGlobal(func(g int) float64 { return float64(g) })
			y := darray.New(p, d)
			op.Apply(x, y)
			x.DotLocal(y)
		})
		fused := machine(np).Run(func(p *comm.Proc) {
			op := build(p, d)
			x := darray.New(p, d)
			x.SetGlobal(func(g int) float64 { return float64(g) })
			y := darray.New(p, d)
			op.ApplyDot(x, y)
		})
		if fused.TotalFlops != unfused.TotalFlops {
			t.Errorf("%s: fused charges %d flops, Apply+DotLocal charges %d", name, fused.TotalFlops, unfused.TotalFlops)
		}
	}
}

// TestApplySteadyStateNoAllocs: with the reusable gather target and the
// pooled collectives, the row-block mat-vec allocates nothing per call
// in steady state — the per-iteration term of the tentpole's
// allocation-free CG hot path.
func TestApplySteadyStateNoAllocs(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	n := A.NRows
	const runs = 7
	for _, name := range []string{"rowblock-csr", "rowblock-csr-ghost"} {
		build := fusedBuilders(A)[name]
		for _, np := range []int{3, 4} {
			d := dist.NewBlock(n, np)
			var allocs float64
			machine(np).Run(func(p *comm.Proc) {
				op := build(p, d)
				x := darray.New(p, d)
				x.SetGlobal(func(g int) float64 { return float64(g%7) - 3 })
				y := darray.New(p, d)
				op.ApplyDot(x, y) // warm-up: fills gather target and pools
				if p.Rank() == 0 {
					allocs = testing.AllocsPerRun(runs, func() {
						op.ApplyDot(x, y)
					})
				} else {
					for i := 0; i < runs+1; i++ {
						op.ApplyDot(x, y)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("%s np=%d: ApplyDot allocated %.1f times per call in steady state, want 0", name, np, allocs)
			}
		}
	}
}
