// The matrix-powers kernel: the communication-avoiding step beyond the
// single-level inspector-executor of ghost.go. An s-step Krylov solver
// needs the whole basis block {A·v, A²·v, …, Aˢ·v} per outer iteration;
// computing it with s ordinary Applies pays s ghost exchanges (s
// per-neighbour message startups). The kernel here instead *widens* the
// inspector: at construction it walks the s-level reachability closure
// of this rank's row partition — ring 0 is the local rows, ring t the
// column indices first reachable in t hops — stores replicated matrix
// rows for rings 0..s-1 (the PA1 overlap of Demmel/Hoemmen/Mohiyuddin),
// and builds ONE inspector.Schedule over the ring 1..s indices. Every
// basis block then needs a single (wider) halo exchange; the redundant
// flops on the overlap rows are the latency-for-flops trade the s-step
// cost model (hpfexec.ModelSStep) weighs against saved allreduce and
// exchange startups.
//
// Level j of a depth-dep basis is computed only on the row prefix
// rings 0..dep-j (the rows whose level-j values later levels still
// need), so the per-level sweep shrinks back to exactly the local rows
// at the top level; summation per row is in the original CSR column
// order, which keeps every produced vector bit-identical to the one
// j repeated RowBlockCSRGhost.Applies would yield.
package spmv

import (
	"fmt"
	"sort"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/inspector"
	"hpfcg/internal/sparse"
)

// PowersOperator is implemented by operators that can compute blocks of
// Krylov basis vectors from one widened ghost exchange — the
// matrix-powers kernel contract core.CGSStep consumes.
type PowersOperator interface {
	Operator
	// MaxDepth is the closure depth the operator was inspected for; a
	// basis of any depth up to it can be produced per block.
	MaxDepth() int
	// ApplyPowersBlock fills outs[v][j] = A^(j+1) · seeds[v] for every
	// seed, with len(outs[v]) in [1, MaxDepth()], using a single halo
	// exchange (all seeds' ghosts packed into one message round) for
	// the whole block.
	ApplyPowersBlock(seeds []*darray.Vector, outs [][]*darray.Vector)
}

// RowBlockCSRPowers is the row-block CSR matrix-powers kernel. It is a
// drop-in Operator (Apply/ApplyDot are bit-identical in values to
// RowBlockCSRGhost, over the widened schedule) that additionally
// serves whole basis blocks through ApplyPowersBlock.
type RowBlockCSRPowers struct {
	p     *comm.Proc
	d     dist.Contiguous
	depth int
	sched *inspector.Schedule

	nLocal int // local rows (== ring 0 == value slots 0..nLocal-1)
	nSlots int // nLocal + widened ghost count

	// The replicated extended rows, ring-ordered: entry slots reference
	// the value-slot space (locals first, then ghost slots).
	rowSlot []int // extended row -> value slot of its global index
	rowPtr  []int
	colSlot []int
	val     []float64
	// ringEnd[t] = extended rows in rings 0..t (t = 0..depth-1);
	// nnzAt[t] the stored entries among them. Level j of a depth-dep
	// basis sweeps the prefix ringEnd[dep-j].
	ringEnd []int
	nnzAt   []int
	// cumEntries[dep] = total entries swept producing a depth-dep basis
	// (sum of the per-level prefixes) — the flop-charge table.
	cumEntries []int

	// Ping-pong level buffers; steady state allocates nothing.
	work0, work1 []float64
	seedLocals   [][]float64 // reusable ExchangeBlock argument

	n, nnz, nnzLocal int
}

// powersClosure walks the depth-level reachability closure of rank's
// row partition in A: extRows lists rings 0..depth-1 in ring order
// (ring 0 = the local rows, each later ring sorted by global index),
// ringEnd[t] the prefix length of rings 0..t, and ghosts every index of
// rings 1..depth — the widened halo one exchange must fetch. Pure and
// communication-free: every rank holds the full CSR at construction, so
// the closure inspection is local (the collective part is only the
// inspector.Build request exchange).
func powersClosure(A *sparse.CSR, d dist.Contiguous, rank, depth int) (extRows, ringEnd, ghosts []int) {
	lo := d.Lo(rank)
	cnt := d.Count(rank)
	seen := make([]bool, A.NRows)
	extRows = make([]int, 0, cnt)
	for i := lo; i < lo+cnt; i++ {
		seen[i] = true
		extRows = append(extRows, i)
	}
	ringEnd = make([]int, depth)
	ringEnd[0] = cnt
	frontier := extRows
	for t := 1; t <= depth; t++ {
		var next []int
		for _, i := range frontier {
			for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
				if c := A.Col[k]; !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		sort.Ints(next)
		ghosts = append(ghosts, next...)
		if t < depth {
			extRows = append(extRows, next...)
			ringEnd[t] = len(extRows)
		}
		frontier = next
	}
	return extRows, ringEnd, ghosts
}

// NewRowBlockCSRPowers slices the row strip, inspects the depth-level
// closure and runs the widened inspector (collective: every processor
// must construct it together, like NewRowBlockCSRGhost).
func NewRowBlockCSRPowers(p *comm.Proc, A *sparse.CSR, d dist.Contiguous, depth int) *RowBlockCSRPowers {
	if depth < 1 {
		panic(fmt.Sprintf("spmv: powers depth %d < 1", depth))
	}
	r := p.Rank()
	lo := d.Lo(r)
	cnt := d.Count(r)
	extRows, ringEnd, ghosts := powersClosure(A, d, r, depth)
	sched := inspector.Build(p, d, ghosts)

	a := &RowBlockCSRPowers{
		p:       p,
		d:       d,
		depth:   depth,
		sched:   sched,
		nLocal:  cnt,
		nSlots:  cnt + sched.NGhosts(),
		rowSlot: make([]int, len(extRows)),
		rowPtr:  make([]int, len(extRows)+1),
		ringEnd: ringEnd,
		nnzAt:   make([]int, depth),
		n:       A.NRows,
		nnz:     A.NNZ(),
	}
	slot := func(g int) int {
		if g >= lo && g < lo+cnt {
			return g - lo
		}
		return cnt + sched.GhostSlot(g)
	}
	for ei, i := range extRows {
		a.rowSlot[ei] = slot(i)
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			a.colSlot = append(a.colSlot, slot(A.Col[k]))
			a.val = append(a.val, A.Val[k])
		}
		a.rowPtr[ei+1] = len(a.val)
	}
	a.nnzLocal = a.rowPtr[cnt]
	for t := 0; t < depth; t++ {
		a.nnzAt[t] = a.rowPtr[a.ringEnd[t]]
	}
	// cumEntries[dep] = sum_{j=1..dep} nnzAt[dep-j] = entries swept for
	// one depth-dep basis.
	a.cumEntries = make([]int, depth+1)
	for dep := 1; dep <= depth; dep++ {
		sum := 0
		for t := 0; t < dep; t++ {
			sum += a.nnzAt[t]
		}
		a.cumEntries[dep] = sum
	}
	a.work0 = make([]float64, a.nSlots)
	a.work1 = make([]float64, a.nSlots)
	return a
}

// N implements Operator.
func (a *RowBlockCSRPowers) N() int { return a.n }

// NNZ implements Operator.
func (a *RowBlockCSRPowers) NNZ() int { return a.nnz }

// LocalNNZ returns this processor's own (ring 0) stored entries.
func (a *RowBlockCSRPowers) LocalNNZ() int { return a.nnzLocal }

// OverlapNNZ returns the replicated entries of rings 1..depth-1 — the
// redundancy the latency saving is bought with.
func (a *RowBlockCSRPowers) OverlapNNZ() int { return len(a.val) - a.nnzLocal }

// NGhosts returns the widened halo size (indices of rings 1..depth).
func (a *RowBlockCSRPowers) NGhosts() int { return a.sched.NGhosts() }

// MaxDepth implements PowersOperator.
func (a *RowBlockCSRPowers) MaxDepth() int { return a.depth }

// Rebind implements Rebindable: re-attach the kernel and its widened
// inspector schedule to a new run's processor handle, so a cached
// s-step plan (hpfexec.Registry) skips the closure inspection and the
// request exchange entirely on warm traffic.
func (a *RowBlockCSRPowers) Rebind(p *comm.Proc) {
	checkRebind("RowBlockCSRPowers", a.p, p)
	a.p = p
	a.sched.Rebind(p)
}

// Apply implements Operator: one (widened) halo exchange, then the
// local row loop. Values are bit-identical to RowBlockCSRGhost.Apply —
// the summation runs over the same entries in the same CSR order —
// only the modeled exchange is wider.
func (a *RowBlockCSRPowers) Apply(x, y *darray.Vector) {
	checkAligned("RowBlockCSRPowers.Apply", a.d, x, y)
	xl := x.Local()
	ghosts := a.sched.Exchange(xl)
	yl := y.Local()
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			c := a.colSlot[k]
			var xv float64
			if c < a.nLocal {
				xv = xl[c]
			} else {
				xv = ghosts[c-a.nLocal]
			}
			s += a.val[k] * xv
		}
		yl[i] = s
	}
	a.p.Compute(2 * a.nnzLocal)
}

// ApplyDot implements FusedOperator (see RowBlockCSR.ApplyDot for the
// bit-identity argument).
func (a *RowBlockCSRPowers) ApplyDot(x, y *darray.Vector) float64 {
	checkAligned("RowBlockCSRPowers.ApplyDot", a.d, x, y)
	xl := x.Local()
	ghosts := a.sched.Exchange(xl)
	yl := y.Local()
	dot := 0.0
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			c := a.colSlot[k]
			var xv float64
			if c < a.nLocal {
				xv = xl[c]
			} else {
				xv = ghosts[c-a.nLocal]
			}
			s += a.val[k] * xv
		}
		yl[i] = s
		dot += xl[i] * s
	}
	a.p.Compute(2*a.nnzLocal + 2*len(yl))
	return dot
}

// ApplyPowersBlock implements PowersOperator: all seeds' halos travel
// in one packed exchange, then each basis chain is evaluated level by
// level over the shrinking ring prefixes. Steady state allocates
// nothing (the ping-pong buffers and the schedule's block ghost
// buffers are reused).
func (a *RowBlockCSRPowers) ApplyPowersBlock(seeds []*darray.Vector, outs [][]*darray.Vector) {
	if len(seeds) != len(outs) {
		panic(fmt.Sprintf("spmv: %d seeds for %d output chains", len(seeds), len(outs)))
	}
	for v, chain := range outs {
		if len(chain) < 1 || len(chain) > a.depth {
			panic(fmt.Sprintf("spmv: basis depth %d outside [1,%d]", len(chain), a.depth))
		}
		checkAligned("RowBlockCSRPowers.ApplyPowersBlock", a.d, seeds[v], chain[len(chain)-1])
	}
	for len(a.seedLocals) < len(seeds) {
		a.seedLocals = append(a.seedLocals, nil)
	}
	locals := a.seedLocals[:len(seeds)]
	for v, sv := range seeds {
		locals[v] = sv.Local()
	}
	ghosts := a.sched.ExchangeBlock(locals)
	entries := 0
	for v := range seeds {
		dep := len(outs[v])
		// Level 0: the seed's values over every slot of the closure.
		prev := a.work0
		copy(prev[:a.nLocal], locals[v])
		copy(prev[a.nLocal:a.nSlots], ghosts[v])
		cur := a.work1
		for j := 1; j <= dep; j++ {
			rows := a.ringEnd[dep-j]
			for i := 0; i < rows; i++ {
				s := 0.0
				for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
					s += a.val[k] * prev[a.colSlot[k]]
				}
				cur[a.rowSlot[i]] = s
			}
			copy(outs[v][j-1].Local(), cur[:a.nLocal])
			prev, cur = cur, prev
		}
		entries += a.cumEntries[dep]
	}
	a.p.Compute(2 * entries)
}

// PowersStats reports, without any communication, the per-rank maxima
// a depth-deep kernel under d would incur producing the CG s-step basis
// pair (one depth-deep chain for p, one (depth-1)-deep chain for r) per
// block: maxBlockEntries is the largest per-rank count of stored
// entries swept (local + replicated overlap, all levels), maxGhosts the
// widest per-rank ghost set of the closure. These are the exact
// flops-vs-rounds inputs of the s-selection cost model — the same
// numbers the kernel itself will charge, obtained by running only the
// closure inspection.
func PowersStats(A *sparse.CSR, d dist.Contiguous, np, depth int) (maxBlockEntries, maxGhosts int) {
	for r := 0; r < np; r++ {
		extRows, ringEnd, ghosts := powersClosure(A, d, r, depth)
		rowNNZ := func(i int) int { return A.RowPtr[extRows[i]+1] - A.RowPtr[extRows[i]] }
		nnzAt := make([]int, depth)
		pos, sum := 0, 0
		for t := 0; t < depth; t++ {
			for ; pos < ringEnd[t]; pos++ {
				sum += rowNNZ(pos)
			}
			nnzAt[t] = sum
		}
		entries := 0
		for t := 0; t < depth; t++ {
			entries += nnzAt[t] // p-chain level depth-t
			if t < depth-1 {
				entries += nnzAt[t] // r-chain level depth-1-t
			}
		}
		if entries > maxBlockEntries {
			maxBlockEntries = entries
		}
		if len(ghosts) > maxGhosts {
			maxGhosts = len(ghosts)
		}
	}
	return maxBlockEntries, maxGhosts
}
