package spmv

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// RowBlockELL is Scenario 1 with ELLPACK storage: the uniform-row
// format of §5.2.1's "regular" case. Each processor stores its row
// strip as a dense (localRows x width) sheet, so the inner loop has no
// row-pointer indirection — the trade the paper describes between
// exploiting structure and generality. Communication is identical to
// RowBlockCSR (the allgather of p); only the local loop changes.
type RowBlockELL struct {
	p     *comm.Proc
	d     dist.Contiguous
	width int
	col   []int     // column-major local sheet: col[j*rows+i]
	val   []float64 // same layout
	rows  int
	n     int
	nnz   int
}

// NewRowBlockELL slices processor p's row strip of A and converts it
// to ELLPACK. maxWidth bounds the acceptable row width (0 = no bound);
// construction panics if the strip is too irregular, mirroring
// sparse.CSR.ToELL.
func NewRowBlockELL(p *comm.Proc, A *sparse.CSR, d dist.Contiguous, maxWidth int) *RowBlockELL {
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("spmv: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	if A.NRows != d.N() || d.NP() != p.NP() {
		panic(fmt.Sprintf("spmv: distribution %dx%d does not match matrix %d / machine %d",
			d.N(), d.NP(), A.NRows, p.NP()))
	}
	r := p.Rank()
	lo := d.Lo(r)
	rows := d.Count(r)

	width := 0
	for i := lo; i < lo+rows; i++ {
		if w := A.RowPtr[i+1] - A.RowPtr[i]; w > width {
			width = w
		}
	}
	if maxWidth > 0 && width > maxWidth {
		panic(fmt.Sprintf("spmv: local ELL width %d exceeds bound %d (row strip too irregular)", width, maxWidth))
	}
	e := &RowBlockELL{
		p:     p,
		d:     d,
		width: width,
		col:   make([]int, rows*width),
		val:   make([]float64, rows*width),
		rows:  rows,
		n:     A.NRows,
		nnz:   A.NNZ(),
	}
	for i := 0; i < rows; i++ {
		cols, vals := A.Row(lo + i)
		pad := 0
		if len(cols) > 0 {
			pad = cols[0]
		}
		for j := 0; j < width; j++ {
			idx := j*rows + i
			if j < len(cols) {
				e.col[idx] = cols[j]
				e.val[idx] = vals[j]
			} else {
				e.col[idx] = pad
				e.val[idx] = 0
			}
		}
	}
	return e
}

// N implements Operator.
func (a *RowBlockELL) N() int { return a.n }

// NNZ implements Operator (structural nonzeros, not padded storage).
func (a *RowBlockELL) NNZ() int { return a.nnz }

// Width returns the local ELLPACK width (padding included).
func (a *RowBlockELL) Width() int { return a.width }

// Apply implements Operator: allgather p, then the padded dense sheet
// loop (compute charged for stored entries including padding, the cost
// of the format on non-uniform rows).
func (a *RowBlockELL) Apply(x, y *darray.Vector) {
	checkAligned("RowBlockELL.Apply", a.d, x, y)
	xFull := x.Gather()
	yl := y.Local()
	for i := range yl {
		yl[i] = 0
	}
	for j := 0; j < a.width; j++ {
		base := j * a.rows
		for i := 0; i < a.rows; i++ {
			yl[i] += a.val[base+i] * xFull[a.col[base+i]]
		}
	}
	a.p.Compute(2 * a.rows * a.width)
}
