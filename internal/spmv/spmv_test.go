package spmv

import (
	"math"
	"testing"
	"testing/quick"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

var testNPs = []int{1, 2, 3, 4, 8}

// runApply distributes A with the given operator builder, applies it to
// a fixed vector and returns the gathered result.
func runApply(t *testing.T, np int, A *sparse.CSR, build func(p *comm.Proc, d dist.Contiguous) Operator, transpose bool) []float64 {
	t.Helper()
	n := A.NRows
	d := dist.NewBlock(n, np)
	var out []float64
	machine(np).Run(func(p *comm.Proc) {
		op := build(p, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.SetGlobal(func(g int) float64 { return math.Sin(float64(g) + 1) })
		if transpose {
			op.(TransposeOperator).ApplyT(x, y)
		} else {
			op.Apply(x, y)
		}
		full := y.Gather()
		if p.Rank() == 0 {
			out = full
		}
	})
	return out
}

func reference(A *sparse.CSR, transpose bool) []float64 {
	n := A.NRows
	x := make([]float64, n)
	for g := range x {
		x[g] = math.Sin(float64(g) + 1)
	}
	y := make([]float64, n)
	if transpose {
		A.MulVecT(x, y)
	} else {
		A.MulVec(x, y)
	}
	return y
}

func checkClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
}

// testMatrices exercises structured, random, and asymmetric patterns.
func testMatrices() map[string]*sparse.CSR {
	asym := sparse.NewCOO(9, 9)
	asym.Add(0, 8, 2)
	asym.Add(3, 1, -1)
	asym.Add(8, 0, 5)
	asym.Add(4, 4, 3)
	asym.Add(7, 2, 1.5)
	return map[string]*sparse.CSR{
		"laplace1d": sparse.Laplace1D(17),
		"laplace2d": sparse.Laplace2D(4, 5),
		"randspd":   sparse.RandomSPD(30, 5, 3),
		"asym":      asym.ToCSR(),
	}
}

func TestRowBlockCSRApply(t *testing.T) {
	for name, A := range testMatrices() {
		want := reference(A, false)
		for _, np := range testNPs {
			got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewRowBlockCSR(p, A, d)
			}, false)
			checkClose(t, name+"/rowcsr", got, want)
		}
	}
}

func TestRowBlockCSRApplyT(t *testing.T) {
	for name, A := range testMatrices() {
		want := reference(A, true)
		for _, np := range testNPs {
			got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewRowBlockCSR(p, A, d)
			}, true)
			checkClose(t, name+"/rowcsrT", got, want)
		}
	}
}

func TestColBlockCSCBothModes(t *testing.T) {
	for name, A := range testMatrices() {
		csc := A.ToCSC()
		want := reference(A, false)
		for _, np := range testNPs {
			for _, mode := range []Mode{ModeSerialized, ModePrivateMerge} {
				got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
					return NewColBlockCSC(p, csc, d, mode)
				}, false)
				checkClose(t, name+"/colcsc/"+mode.String(), got, want)
			}
		}
	}
}

func TestColBlockCSCApplyT(t *testing.T) {
	for name, A := range testMatrices() {
		csc := A.ToCSC()
		want := reference(A, true)
		for _, np := range testNPs {
			got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewColBlockCSC(p, csc, d, ModePrivateMerge)
			}, true)
			checkClose(t, name+"/colcscT", got, want)
		}
	}
}

func TestDenseOperators(t *testing.T) {
	A := sparse.RandomSPD(20, 4, 5)
	den := A.ToDense()
	want := reference(A, false)
	wantT := reference(A, true)
	for _, np := range testNPs {
		got := runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
			return NewDenseRowBlock(p, den, d)
		}, false)
		checkClose(t, "denserow", got, want)

		got = runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
			return NewDenseRowBlock(p, den, d)
		}, true)
		checkClose(t, "denserowT", got, wantT)

		for _, mode := range []Mode{ModeSerialized, ModePrivateMerge} {
			got = runApply(t, np, A, func(p *comm.Proc, d dist.Contiguous) Operator {
				return NewDenseColBlock(p, den, d, mode)
			}, false)
			checkClose(t, "densecol/"+mode.String(), got, want)
		}
	}
}

func TestIrregularDistributionApply(t *testing.T) {
	// Operators must also work under the ATOM/partitioner-produced
	// irregular contiguous distributions of §5.2.
	A := sparse.PowerLaw(40, 1.1, 12, 2)
	want := reference(A, false)
	np := 4
	d := dist.NewIrregular([]int{0, 5, 17, 18, 40})
	var got []float64
	machine(np).Run(func(p *comm.Proc) {
		op := NewRowBlockCSR(p, A, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.SetGlobal(func(g int) float64 { return math.Sin(float64(g) + 1) })
		op.Apply(x, y)
		full := y.Gather()
		if p.Rank() == 0 {
			got = full
		}
	})
	checkClose(t, "irregular/rowcsr", got, want)
}

func TestOperatorMetadata(t *testing.T) {
	A := sparse.Laplace1D(10)
	csc := A.ToCSC()
	d := dist.NewBlock(10, 2)
	machine(2).Run(func(p *comm.Proc) {
		row := NewRowBlockCSR(p, A, d)
		if row.N() != 10 || row.NNZ() != A.NNZ() {
			t.Errorf("row metadata: N=%d NNZ=%d", row.N(), row.NNZ())
		}
		if row.LocalNNZ() <= 0 || row.LocalNNZ() >= A.NNZ() {
			t.Errorf("LocalNNZ = %d", row.LocalNNZ())
		}
		col := NewColBlockCSC(p, csc, d, ModePrivateMerge)
		if col.N() != 10 || col.NNZ() != A.NNZ() || col.Mode() != ModePrivateMerge {
			t.Errorf("col metadata wrong")
		}
		if col.LocalNNZ() <= 0 {
			t.Errorf("col LocalNNZ = %d", col.LocalNNZ())
		}
		den := NewDenseRowBlock(p, A.ToDense(), d)
		if den.NNZ() != 100 {
			t.Errorf("dense NNZ = %d", den.NNZ())
		}
		dcb := NewDenseColBlock(p, A.ToDense(), d, ModeSerialized)
		if dcb.N() != 10 || dcb.NNZ() != 100 {
			t.Errorf("dense col metadata wrong")
		}
	})
	if ModeSerialized.String() != "serialized" || ModePrivateMerge.String() != "private-merge" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestMisalignedOperandsPanic(t *testing.T) {
	A := sparse.Laplace1D(12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected alignment panic")
		}
	}()
	machine(2).Run(func(p *comm.Proc) {
		d := dist.NewBlock(12, 2)
		other := dist.NewCyclic(12, 2)
		op := NewRowBlockCSR(p, A, d)
		x := darray.New(p, other)
		y := darray.New(p, d)
		op.Apply(x, y)
	})
}

func TestConstructorValidation(t *testing.T) {
	rect := sparse.NewCOO(3, 4)
	rect.Add(0, 0, 1)
	rm := rect.ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("expected non-square panic")
		}
	}()
	machine(1).Run(func(p *comm.Proc) {
		NewRowBlockCSR(p, rm, dist.NewBlock(3, 1))
	})
}

// §4's central claim: with regular striping, row-wise and column-wise
// (with the extension) have the same asymptotic communication, while
// the serialized column version also serialises the compute.
func TestSerializedSlowerThanPrivateMerge(t *testing.T) {
	A := sparse.Banded(512, 8)
	csc := A.ToCSC()
	np := 8
	d := dist.NewBlock(512, np)
	run := func(mode Mode) comm.RunStats {
		return machine(np).Run(func(p *comm.Proc) {
			op := NewColBlockCSC(p, csc, d, mode)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			op.Apply(x, y)
		})
	}
	serial := run(ModeSerialized)
	merge := run(ModePrivateMerge)
	if merge.ModelTime >= serial.ModelTime {
		t.Errorf("private-merge model time %.3g should beat serialized %.3g",
			merge.ModelTime, serial.ModelTime)
	}
}

// The BiCG penalty (E6): under row-block distribution the transpose
// product must cost at least as much as the forward product (it adds
// the merge phase).
func TestTransposePenalty(t *testing.T) {
	A := sparse.RandomSPD(256, 6, 8)
	np := 8
	d := dist.NewBlock(256, np)
	run := func(transpose bool) comm.RunStats {
		return machine(np).Run(func(p *comm.Proc) {
			op := NewRowBlockCSR(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.Fill(1)
			if transpose {
				op.ApplyT(x, y)
			} else {
				op.Apply(x, y)
			}
		})
	}
	fwd := run(false)
	bwd := run(true)
	if bwd.TotalBytes < fwd.TotalBytes {
		t.Errorf("ApplyT moved %d bytes, forward %d; transpose should not be cheaper",
			bwd.TotalBytes, fwd.TotalBytes)
	}
}

// Property: distributed row CSR equals the sequential product for
// random matrices and processor counts.
func TestRowBlockQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8) bool {
		n := int(nRaw%30) + 2
		np := int(npRaw%4) + 1
		A := sparse.RandomSPD(n, 4, seed)
		want := reference(A, false)
		ok := true
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			op := NewRowBlockCSR(p, A, d)
			x := darray.New(p, d)
			y := darray.New(p, d)
			x.SetGlobal(func(g int) float64 { return math.Sin(float64(g) + 1) })
			op.Apply(x, y)
			got := y.Gather()
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
