// Package spmv implements the distributed matrix-vector products of §4
// of the paper, for dense and compressed sparse storage, under the two
// partitioning scenarios it analyses:
//
// Scenario 1 (row-wise): the matrix is distributed (BLOCK, *) — each
// processor owns a strip of whole rows, aligned with the result vector
// q. Because a sparse row may reference any column of p, the whole of p
// must be made available first: an all-to-all broadcast (allgather)
// costing t_s-ish*(NP) + t_w*n*(NP-1)/NP. The multiply itself is then
// purely local and the result needs no rearrangement.
//
// Scenario 2 (column-wise): the matrix is distributed (*, BLOCK) — each
// processor owns a strip of whole columns, aligned with the operand
// vector p. No broadcast of p is needed, but contributions to q(row(k))
// scatter across processors: a many-to-one accumulation that HPF-1
// cannot parallelise. Two executions are provided:
//
//   - ModeSerialized emulates what an HPF-1 compiler must do with the
//     dependent loop: execute the column loop in global order, with the
//     running q carried processor to processor (NP-1 messages of n
//     elements) and finally scattered. The modeled clock serialises the
//     compute exactly as the paper describes ("no parallel loop
//     execution is possible").
//   - ModePrivateMerge is the paper's proposed §5.1 extension: each
//     processor accumulates into a PRIVATE full-length copy of q and the
//     copies are merged with MERGE(+) — a reduce-scatter costing the
//     same asymptotically as Scenario 1's broadcast, which is the
//     paper's conclusion that neither regular striping can reduce the
//     communication time.
//
// Transpose products (ApplyT) are provided for BiCG: under row-wise
// partitioning A^T must be applied column-wise and vice versa, so "any
// storage distribution optimisations made on the basis of row access
// vs. column access will be negated" — experiment E6 measures that.
package spmv

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// Operator is a distributed linear operator y = A*x over aligned
// distributed vectors.
type Operator interface {
	// N returns the (square) global dimension.
	N() int
	// NNZ returns the global stored-entry count (n*n for dense).
	NNZ() int
	// Apply computes y = A*x. x and y must be aligned with the
	// operator's vector distribution.
	Apply(x, y *darray.Vector)
}

// TransposeOperator additionally applies A^T, as BiCG requires.
type TransposeOperator interface {
	Operator
	// ApplyT computes y = A^T*x.
	ApplyT(x, y *darray.Vector)
}

// Rebindable is an Operator that can be re-attached to a fresh
// processor handle of the same rank and machine shape. Operators are
// built inside one SPMD run and hold that run's Proc; a plan cache
// (hpfexec.Registry) that carries operators across runs rebinds them
// at the start of each new run, skipping the construction cost — for
// the ghost executor, the whole inspector exchange — while reusing the
// same buffers, so warm runs stay bit-identical to cold ones.
type Rebindable interface {
	Operator
	// Rebind swaps in the new run's processor handle. p must have the
	// rank and NP the operator was built with.
	Rebind(p *comm.Proc)
}

// FusedOperator is an Operator that can compute y = A*x and the local
// partial of the inner product x·y in one pass over the matrix — CG's
// p·Ap without a second sweep over q. The returned value is only the
// local partial; the caller merges it (typically batched with other
// partials in one comm.AllreduceScalars round). Implementations must
// produce a partial bit-identical to Apply followed by x.DotLocal(y)
// and charge the same flops, so fused and unfused solves agree exactly.
type FusedOperator interface {
	Operator
	// ApplyDot computes y = A*x and returns the local partial of x·y.
	ApplyDot(x, y *darray.Vector) float64
}

// Mode selects how the column-partitioned many-to-one accumulation is
// executed (see the package comment).
type Mode int

const (
	// ModeSerialized runs the dependent loop serially in global column
	// order, as HPF-1 forces.
	ModeSerialized Mode = iota
	// ModePrivateMerge uses the paper's proposed PRIVATE/MERGE(+)
	// extension.
	ModePrivateMerge
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSerialized:
		return "serialized"
	case ModePrivateMerge:
		return "private-merge"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

func checkAligned(op string, d dist.Dist, x, y *darray.Vector) {
	if !dist.Same(d, x.Dist()) || !dist.Same(d, y.Dist()) {
		panic(fmt.Sprintf("spmv: %s operands not aligned with operator distribution %s", op, d.Name()))
	}
}

func checkRebind(op string, old, new *comm.Proc) {
	if new.Rank() != old.Rank() || new.NP() != old.NP() {
		panic(fmt.Sprintf("spmv: %s rebind rank %d/%d onto operator built for %d/%d",
			op, new.Rank(), new.NP(), old.Rank(), old.NP()))
	}
}

// RowBlockCSR is Scenario 1 with CSR storage: processor r holds the
// whole rows [Lo(r), Lo(r)+Count(r)) of A (the paper's
// ALIGN A(:,*) WITH p(:), DISTRIBUTE row/col/a accordingly).
type RowBlockCSR struct {
	p        *comm.Proc
	d        dist.Contiguous
	lo       int
	rowPtr   []int // local rows, rebased to 0
	col      []int // global column indices
	val      []float64
	n        int
	nnz      int
	nnzLocal int
	xfull    []float64 // reusable gather target: Apply allocates nothing in steady state
}

// NewRowBlockCSR slices processor p's row strip out of the global
// matrix A. Every processor must call it with the same A and d.
func NewRowBlockCSR(p *comm.Proc, A *sparse.CSR, d dist.Contiguous) *RowBlockCSR {
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("spmv: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	if A.NRows != d.N() || d.NP() != p.NP() {
		panic(fmt.Sprintf("spmv: distribution %dx%d does not match matrix %d / machine %d",
			d.N(), d.NP(), A.NRows, p.NP()))
	}
	r := p.Rank()
	lo := d.Lo(r)
	hi := lo + d.Count(r)
	base := A.RowPtr[lo]
	rowPtr := make([]int, hi-lo+1)
	for i := lo; i <= hi; i++ {
		rowPtr[i-lo] = A.RowPtr[i] - base
	}
	return &RowBlockCSR{
		p:        p,
		d:        d,
		lo:       lo,
		rowPtr:   rowPtr,
		col:      A.Col[base:A.RowPtr[hi]],
		val:      A.Val[base:A.RowPtr[hi]],
		n:        A.NRows,
		nnz:      A.NNZ(),
		nnzLocal: A.RowPtr[hi] - base,
		xfull:    make([]float64, A.NRows),
	}
}

// N implements Operator.
func (a *RowBlockCSR) N() int { return a.n }

// NNZ implements Operator.
func (a *RowBlockCSR) NNZ() int { return a.nnz }

// LocalNNZ returns this processor's stored entries (load metric).
func (a *RowBlockCSR) LocalNNZ() int { return a.nnzLocal }

// Rebind implements Rebindable.
func (a *RowBlockCSR) Rebind(p *comm.Proc) {
	checkRebind("RowBlockCSR", a.p, p)
	a.p = p
}

// Apply implements Operator: allgather p, then local row loop — the
// Figure 2 FORALL over j with the inner DO over row(j):row(j+1)-1.
func (a *RowBlockCSR) Apply(x, y *darray.Vector) {
	checkAligned("RowBlockCSR.Apply", a.d, x, y)
	xFull := x.GatherInto(a.xfull)
	yl := y.Local()
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.val[k] * xFull[a.col[k]]
		}
		yl[i] = s
	}
	a.p.Compute(2 * a.nnzLocal)
}

// ApplyDot implements FusedOperator: the same gather + row loop as
// Apply, with the local x·y partial accumulated as each y element is
// produced. Each row's s is the identical expression Apply computes and
// the partial adds xl[i]*s in ascending row order, exactly as
// x.DotLocal(y) would after Apply — so fused and unfused CG iterates
// agree bit for bit. Flop charge is Apply's 2·nnz plus DotLocal's 2·n.
func (a *RowBlockCSR) ApplyDot(x, y *darray.Vector) float64 {
	checkAligned("RowBlockCSR.ApplyDot", a.d, x, y)
	xFull := x.GatherInto(a.xfull)
	xl := x.Local()
	yl := y.Local()
	dot := 0.0
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.val[k] * xFull[a.col[k]]
		}
		yl[i] = s
		dot += xl[i] * s
	}
	a.p.Compute(2*a.nnzLocal + 2*len(yl))
	return dot
}

// ApplyT implements TransposeOperator. The local rows of A are columns
// of A^T, so the product becomes a column-partitioned many-to-one
// accumulation: a PRIVATE full-length accumulator merged with
// reduce-scatter. This is the §2.1 BiCG penalty: the transpose product
// re-introduces the merge communication the row distribution avoided.
func (a *RowBlockCSR) ApplyT(x, y *darray.Vector) {
	checkAligned("RowBlockCSR.ApplyT", a.d, x, y)
	xl := x.Local()
	priv := make([]float64, a.n)
	for i := range xl {
		xi := xl[i]
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			priv[a.col[k]] += a.val[k] * xi
		}
	}
	a.p.Compute(2 * a.nnzLocal)
	y.ReduceScatterFrom(priv)
}

// ColBlockCSC is Scenario 2 with CSC storage: processor r holds the
// whole columns [Lo(r), ...) of A, aligned with p.
type ColBlockCSC struct {
	p        *comm.Proc
	d        dist.Contiguous
	lo       int
	colPtr   []int // local columns, rebased
	row      []int // global row indices
	val      []float64
	n        int
	nnz      int
	nnzLocal int
	mode     Mode
	xfull    []float64 // reusable gather target for ApplyT
}

// NewColBlockCSC slices processor p's column strip out of A.
func NewColBlockCSC(p *comm.Proc, A *sparse.CSC, d dist.Contiguous, mode Mode) *ColBlockCSC {
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("spmv: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	if A.NRows != d.N() || d.NP() != p.NP() {
		panic(fmt.Sprintf("spmv: distribution %dx%d does not match matrix %d / machine %d",
			d.N(), d.NP(), A.NRows, p.NP()))
	}
	r := p.Rank()
	lo := d.Lo(r)
	hi := lo + d.Count(r)
	base := A.ColPtr[lo]
	colPtr := make([]int, hi-lo+1)
	for j := lo; j <= hi; j++ {
		colPtr[j-lo] = A.ColPtr[j] - base
	}
	return &ColBlockCSC{
		p:        p,
		d:        d,
		lo:       lo,
		colPtr:   colPtr,
		row:      A.Row[base:A.ColPtr[hi]],
		val:      A.Val[base:A.ColPtr[hi]],
		n:        A.NRows,
		nnz:      A.NNZ(),
		nnzLocal: A.ColPtr[hi] - base,
		mode:     mode,
		xfull:    make([]float64, A.NRows),
	}
}

// N implements Operator.
func (a *ColBlockCSC) N() int { return a.n }

// NNZ implements Operator.
func (a *ColBlockCSC) NNZ() int { return a.nnz }

// LocalNNZ returns this processor's stored entries.
func (a *ColBlockCSC) LocalNNZ() int { return a.nnzLocal }

// Mode returns the accumulation mode.
func (a *ColBlockCSC) Mode() Mode { return a.mode }

// Rebind implements Rebindable.
func (a *ColBlockCSC) Rebind(p *comm.Proc) {
	checkRebind("ColBlockCSC", a.p, p)
	a.p = p
}

// accumulate adds this processor's column contributions into the
// full-length vector q using only local x elements (p is aligned with
// the columns, so "performing the element-wise multiplication will not
// require any interprocessor communication").
func (a *ColBlockCSC) accumulate(xl []float64, q []float64) {
	for j := range xl {
		pj := xl[j]
		for k := a.colPtr[j]; k < a.colPtr[j+1]; k++ {
			q[a.row[k]] += a.val[k] * pj
		}
	}
	a.p.Compute(2 * a.nnzLocal)
}

// Apply implements Operator in the configured mode.
func (a *ColBlockCSC) Apply(x, y *darray.Vector) {
	checkAligned("ColBlockCSC.Apply", a.d, x, y)
	switch a.mode {
	case ModeSerialized:
		a.applySerialized(x, y)
	case ModePrivateMerge:
		a.applyPrivateMerge(x, y)
	default:
		panic(fmt.Sprintf("spmv: unknown mode %v", a.mode))
	}
}

// applySerialized executes the dependent loop in global column order:
// the running q travels rank to rank (each processor's compute starts
// only after its predecessor's finishes — the modeled clock enforces
// the serialisation), then the final q is scattered to its owners.
func (a *ColBlockCSC) applySerialized(x, y *darray.Vector) {
	const tagQ = 101
	np := a.p.NP()
	r := a.p.Rank()
	var q []float64
	if r == 0 {
		q = make([]float64, a.n)
	} else {
		q = a.p.RecvFloats(r-1, tagQ)
	}
	a.accumulate(x.Local(), q)
	if r < np-1 {
		a.p.SendFloats(r+1, tagQ, q)
		q = nil
	}
	// Last processor owns the completed q; scatter it by y's layout.
	y.ScatterFrom(np-1, q)
}

// applyPrivateMerge is the §5.1 extension path: private accumulation,
// then MERGE(+) via reduce-scatter onto y's distribution.
func (a *ColBlockCSC) applyPrivateMerge(x, y *darray.Vector) {
	priv := make([]float64, a.n)
	a.accumulate(x.Local(), priv)
	y.ReduceScatterFrom(priv)
}

// ApplyT implements TransposeOperator: the local columns of A are rows
// of A^T, so the transpose product is Scenario 1 shaped — gather x,
// then a purely local row loop over A^T's rows.
func (a *ColBlockCSC) ApplyT(x, y *darray.Vector) {
	checkAligned("ColBlockCSC.ApplyT", a.d, x, y)
	xFull := x.GatherInto(a.xfull)
	yl := y.Local()
	for j := range yl {
		s := 0.0
		for k := a.colPtr[j]; k < a.colPtr[j+1]; k++ {
			s += a.val[k] * xFull[a.row[k]]
		}
		yl[j] = s
	}
	a.p.Compute(2 * a.nnzLocal)
}

// DenseRowBlock is Scenario 1 with dense storage (Figure 3):
// A distributed (BLOCK, *).
type DenseRowBlock struct {
	p     *comm.Proc
	d     dist.Contiguous
	lo    int
	rows  [][]float64 // local rows (views into A)
	n     int
	xfull []float64 // reusable gather target: Apply allocates nothing in steady state
}

// NewDenseRowBlock slices processor p's row strip out of dense A.
func NewDenseRowBlock(p *comm.Proc, A *sparse.Dense, d dist.Contiguous) *DenseRowBlock {
	if A.NRows != A.NCols || A.NRows != d.N() || d.NP() != p.NP() {
		panic("spmv: DenseRowBlock shape mismatch")
	}
	r := p.Rank()
	lo := d.Lo(r)
	rows := make([][]float64, d.Count(r))
	for i := range rows {
		rows[i] = A.Row(lo + i)
	}
	return &DenseRowBlock{p: p, d: d, lo: lo, rows: rows, n: A.NRows, xfull: make([]float64, A.NRows)}
}

// N implements Operator.
func (a *DenseRowBlock) N() int { return a.n }

// NNZ implements Operator.
func (a *DenseRowBlock) NNZ() int { return a.n * a.n }

// Apply implements Operator: allgather p, local dense row loop.
func (a *DenseRowBlock) Apply(x, y *darray.Vector) {
	checkAligned("DenseRowBlock.Apply", a.d, x, y)
	xFull := x.GatherInto(a.xfull)
	yl := y.Local()
	for i, row := range a.rows {
		s := 0.0
		for j, v := range row {
			s += v * xFull[j]
		}
		yl[i] = s
	}
	a.p.Compute(2 * a.n * len(a.rows))
}

// ApplyDot implements FusedOperator (see RowBlockCSR.ApplyDot for the
// bit-identity argument).
func (a *DenseRowBlock) ApplyDot(x, y *darray.Vector) float64 {
	checkAligned("DenseRowBlock.ApplyDot", a.d, x, y)
	xFull := x.GatherInto(a.xfull)
	xl := x.Local()
	yl := y.Local()
	dot := 0.0
	for i, row := range a.rows {
		s := 0.0
		for j, v := range row {
			s += v * xFull[j]
		}
		yl[i] = s
		dot += xl[i] * s
	}
	a.p.Compute(2*a.n*len(a.rows) + 2*len(yl))
	return dot
}

// ApplyT implements TransposeOperator via private accumulation and
// merge, mirroring RowBlockCSR.ApplyT.
func (a *DenseRowBlock) ApplyT(x, y *darray.Vector) {
	checkAligned("DenseRowBlock.ApplyT", a.d, x, y)
	xl := x.Local()
	priv := make([]float64, a.n)
	for i, row := range a.rows {
		xi := xl[i]
		for j, v := range row {
			priv[j] += v * xi
		}
	}
	a.p.Compute(2 * a.n * len(a.rows))
	y.ReduceScatterFrom(priv)
}

// DenseColBlock is Scenario 2 with dense storage (Figure 4):
// A distributed (*, BLOCK), supporting both accumulation modes.
type DenseColBlock struct {
	p    *comm.Proc
	d    dist.Contiguous
	lo   int
	cols [][]float64 // local columns, copied column-major
	n    int
	mode Mode
}

// NewDenseColBlock slices (and transposes into column-major) processor
// p's column strip of dense A.
func NewDenseColBlock(p *comm.Proc, A *sparse.Dense, d dist.Contiguous, mode Mode) *DenseColBlock {
	if A.NRows != A.NCols || A.NRows != d.N() || d.NP() != p.NP() {
		panic("spmv: DenseColBlock shape mismatch")
	}
	r := p.Rank()
	lo := d.Lo(r)
	cols := make([][]float64, d.Count(r))
	for c := range cols {
		col := make([]float64, A.NRows)
		for i := 0; i < A.NRows; i++ {
			col[i] = A.At(i, lo+c)
		}
		cols[c] = col
	}
	return &DenseColBlock{p: p, d: d, lo: lo, cols: cols, n: A.NRows, mode: mode}
}

// N implements Operator.
func (a *DenseColBlock) N() int { return a.n }

// NNZ implements Operator.
func (a *DenseColBlock) NNZ() int { return a.n * a.n }

func (a *DenseColBlock) accumulate(xl, q []float64) {
	for c, col := range a.cols {
		pj := xl[c]
		for i, v := range col {
			q[i] += v * pj
		}
	}
	a.p.Compute(2 * a.n * len(a.cols))
}

// Apply implements Operator in the configured mode (see ColBlockCSC).
func (a *DenseColBlock) Apply(x, y *darray.Vector) {
	checkAligned("DenseColBlock.Apply", a.d, x, y)
	switch a.mode {
	case ModeSerialized:
		const tagQ = 102
		np := a.p.NP()
		r := a.p.Rank()
		var q []float64
		if r == 0 {
			q = make([]float64, a.n)
		} else {
			q = a.p.RecvFloats(r-1, tagQ)
		}
		a.accumulate(x.Local(), q)
		if r < np-1 {
			a.p.SendFloats(r+1, tagQ, q)
			q = nil
		}
		y.ScatterFrom(np-1, q)
	case ModePrivateMerge:
		priv := make([]float64, a.n)
		a.accumulate(x.Local(), priv)
		y.ReduceScatterFrom(priv)
	default:
		panic(fmt.Sprintf("spmv: unknown mode %v", a.mode))
	}
}
