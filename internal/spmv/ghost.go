package spmv

import (
	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/inspector"
	"hpfcg/internal/sparse"
)

// RowBlockCSRGhost is Scenario 1 with an inspector-executor executor
// instead of the all-to-all broadcast: at construction the column
// indices of the local rows are inspected, a communication schedule for
// just the off-processor ("ghost") elements of p is built once, and
// every Apply reuses it. For matrices with locality (banded, mesh) the
// halo is O(bandwidth) instead of O(n), turning Scenario 1's
// t_w·n·(NP-1)/NP broadcast into a neighbour exchange — the §5.1
// inspector cost paid once and amortised over CG iterations
// (experiment E14).
type RowBlockCSRGhost struct {
	p        *comm.Proc
	d        dist.Contiguous
	rowPtr   []int
	colLocal []int // remapped: >=0 local offset, <0 encodes ghost slot -(s+1)
	val      []float64
	sched    *inspector.Schedule
	n        int
	nnz      int
	nnzLocal int
}

// NewRowBlockCSRGhost slices the row strip and runs the inspector
// (collective: every processor must construct it together).
func NewRowBlockCSRGhost(p *comm.Proc, A *sparse.CSR, d dist.Contiguous) *RowBlockCSRGhost {
	base := NewRowBlockCSR(p, A, d)
	r := p.Rank()
	lo := d.Lo(r)
	hi := lo + d.Count(r)

	sched := inspector.Build(p, d, base.col)

	colLocal := make([]int, len(base.col))
	for k, g := range base.col {
		if g >= lo && g < hi {
			colLocal[k] = g - lo
		} else {
			colLocal[k] = -(sched.GhostSlot(g) + 1)
		}
	}
	return &RowBlockCSRGhost{
		p:        p,
		d:        d,
		rowPtr:   base.rowPtr,
		colLocal: colLocal,
		val:      base.val,
		sched:    sched,
		n:        base.n,
		nnz:      base.nnz,
		nnzLocal: base.nnzLocal,
	}
}

// N implements Operator.
func (a *RowBlockCSRGhost) N() int { return a.n }

// NNZ implements Operator.
func (a *RowBlockCSRGhost) NNZ() int { return a.nnz }

// LocalNNZ returns this processor's stored entries.
func (a *RowBlockCSRGhost) LocalNNZ() int { return a.nnzLocal }

// NGhosts returns the number of remote p elements each Apply fetches.
func (a *RowBlockCSRGhost) NGhosts() int { return a.sched.NGhosts() }

// Rebind implements Rebindable: re-attach the operator and its
// inspector schedule to the new run's processor handle. The schedule
// itself is reused, so the warm run skips the inspector exchange
// entirely — the cost plan caching exists to amortize.
func (a *RowBlockCSRGhost) Rebind(p *comm.Proc) {
	checkRebind("RowBlockCSRGhost", a.p, p)
	a.p = p
	a.sched.Rebind(p)
}

// Apply implements Operator: exchange the halo, then the local row
// loop reading either the local block or the ghost buffer.
func (a *RowBlockCSRGhost) Apply(x, y *darray.Vector) {
	checkAligned("RowBlockCSRGhost.Apply", a.d, x, y)
	xl := x.Local()
	ghosts := a.sched.Exchange(xl)
	yl := y.Local()
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			c := a.colLocal[k]
			var xv float64
			if c >= 0 {
				xv = xl[c]
			} else {
				xv = ghosts[-c-1]
			}
			s += a.val[k] * xv
		}
		yl[i] = s
	}
	a.p.Compute(2 * a.nnzLocal)
}

// ApplyDot implements FusedOperator: the halo exchange and row loop of
// Apply with the local x·y partial accumulated in the same pass (see
// RowBlockCSR.ApplyDot for the bit-identity argument).
func (a *RowBlockCSRGhost) ApplyDot(x, y *darray.Vector) float64 {
	checkAligned("RowBlockCSRGhost.ApplyDot", a.d, x, y)
	xl := x.Local()
	ghosts := a.sched.Exchange(xl)
	yl := y.Local()
	dot := 0.0
	for i := range yl {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			c := a.colLocal[k]
			var xv float64
			if c >= 0 {
				xv = xl[c]
			} else {
				xv = ghosts[-c-1]
			}
			s += a.val[k] * xv
		}
		yl[i] = s
		dot += xl[i] * s
	}
	a.p.Compute(2*a.nnzLocal + 2*len(yl))
	return dot
}
