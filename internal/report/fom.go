package report

// GFlopRate is the HPCG-style figure of merit: floating-point
// operations per second in units of 1e9, from an operation count and
// an elapsed time. The benchmark tier reports it twice per run — once
// against the modeled machine clock (the paper's cost model) and once
// against host wall clock (the simulator's own throughput) — and the
// serving tier attaches the modeled rate to every hpcg job result.
// Non-positive durations yield 0 rather than an infinity that would
// poison table aggregation.
func GFlopRate(flops int64, seconds float64) float64 {
	if seconds <= 0 || flops <= 0 {
		return 0
	}
	return float64(flops) / seconds / 1e9
}
