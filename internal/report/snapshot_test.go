package report

import (
	"bytes"
	"testing"
)

// TestSnapshotRoundTrip: the appended-snapshot stream `cgbench -json`
// produces must parse back into the same tables.
func TestSnapshotRoundTrip(t *testing.T) {
	mk := func(id string) *Snapshot {
		tab := &Table{
			ID:     id,
			Title:  "round trip",
			Header: []string{"np", "t"},
			Notes:  []string{"a note"},
		}
		tab.AddRowf(4, 1.5)
		return &Snapshot{
			Experiment: id,
			Timestamp:  "2026-08-06T00:00:00Z",
			Config:     map[string]any{"quick": true},
			Tables:     []*Table{tab},
		}
	}
	var buf bytes.Buffer
	for _, id := range []string{"E19", "E5"} {
		if err := mk(id).Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	for i, id := range []string{"E19", "E5"} {
		s := snaps[i]
		if s.Experiment != id {
			t.Errorf("snapshot %d: experiment %q, want %q", i, s.Experiment, id)
		}
		if len(s.Tables) != 1 || s.Tables[0].ID != id {
			t.Errorf("snapshot %d: tables did not round-trip: %+v", i, s.Tables)
		}
		if got := s.Tables[0].Rows[0][1]; got != "1.5" {
			t.Errorf("snapshot %d: row cell %q, want 1.5", i, got)
		}
	}
}
