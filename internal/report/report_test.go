package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "demo",
		Header: []string{"np", "time", "name"},
		Notes:  []string{"a note"},
	}
	t.AddRow("1", "0.5", "x")
	t.AddRowf(16, 0.125, "longer-name")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== E1: demo ==", "np", "longer-name", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and data rows must align: "name" column starts at the same
	// byte offset in header and rows.
	hdr, row := lines[1], lines[4]
	if strings.Index(hdr, "name") != strings.Index(row, "longer-name") {
		t.Errorf("columns misaligned:\n%s\n%s", hdr, row)
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "np,time,name\n") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "16,0.125,longer-name") {
		t.Errorf("csv row missing:\n%s", out)
	}
	if !strings.Contains(out, "# a note") {
		t.Errorf("csv note missing:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Header: []string{"a"}, Rows: [][]string{{`va"l,ue`}}}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"va""l,ue"`) {
		t.Errorf("escaping wrong: %s", buf.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Header: []string{"only"}}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("header missing")
	}
}

func TestBytesMatrixTable(t *testing.T) {
	m := [][]int64{
		{0, 512, 0},
		{20480, 0, 3},
		{0, 20 * 1024 * 1024, 0},
	}
	tab := BytesMatrixTable("traffic", m)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"src\\dst", "512", "20K", "20M", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix table missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != 4 {
		t.Errorf("matrix table shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
}

func TestCountMatrixTable(t *testing.T) {
	m := [][]int64{
		{0, 7},
		{12345, 0},
	}
	tab := CountMatrixTable("messages", m)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Counts render raw (no K/M scaling); zeros render as ".".
	for _, want := range []string{"src\\dst", "7", "12345", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("count table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "12K") {
		t.Errorf("count table scaled a count:\n%s", out)
	}
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 3 {
		t.Errorf("count table shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
}
