// Package report renders the experiment tables the benchmark harness
// produces, in aligned plain text (the form the paper's tables would
// take) and CSV for downstream plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a title, column headers, formatted
// rows, and free-form notes (e.g. the analytic formula being compared
// against).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row given as values formatted with %v, %d, %.4g etc.
// by the caller.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf formats each value with a sensible default: strings as-is,
// integers with %d, floats with %.4g.
func (t *Table) AddRowf(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	switch {
	case t.ID != "" && t.Title != "":
		if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
			return err
		}
	case t.ID != "" || t.Title != "":
		if _, err := fmt.Fprintf(w, "== %s%s ==\n", t.ID, t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, w2 := range widths {
		total += w2 + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", max(total, 4))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header row first, notes as
// trailing comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
