package report

import "fmt"

// BytesMatrixTable renders a communication matrix (bytes[src][dst]) as
// a Table — the standard way to eyeball whether a run's traffic is a
// broadcast (dense matrix), a halo exchange (near-diagonal band) or a
// serial pipeline (single sub-diagonal).
func BytesMatrixTable(title string, bytes [][]int64) *Table {
	np := len(bytes)
	t := &Table{Title: title, Header: make([]string, np+1)}
	t.Header[0] = "src\\dst"
	for d := 0; d < np; d++ {
		t.Header[d+1] = fmt.Sprintf("%d", d)
	}
	for s := 0; s < np; s++ {
		row := make([]string, np+1)
		row[0] = fmt.Sprintf("%d", s)
		for d := 0; d < np; d++ {
			row[d+1] = humanBytes(bytes[s][d])
		}
		t.AddRow(row...)
	}
	return t
}

// CountMatrixTable renders a plain count matrix (counts[src][dst]) as
// a Table — same shape as BytesMatrixTable but with raw integers, for
// message counts and other per-pair tallies (0 prints as ".").
func CountMatrixTable(title string, counts [][]int64) *Table {
	np := len(counts)
	t := &Table{Title: title, Header: make([]string, np+1)}
	t.Header[0] = "src\\dst"
	for d := 0; d < np; d++ {
		t.Header[d+1] = fmt.Sprintf("%d", d)
	}
	for s := 0; s < np; s++ {
		row := make([]string, np+1)
		row[0] = fmt.Sprintf("%d", s)
		for d := 0; d < np; d++ {
			if counts[s][d] == 0 {
				row[d+1] = "."
			} else {
				row[d+1] = fmt.Sprintf("%d", counts[s][d])
			}
		}
		t.AddRow(row...)
	}
	return t
}

// humanBytes formats a byte count compactly (0 prints as "." to keep
// sparse matrices readable).
func humanBytes(b int64) string {
	switch {
	case b == 0:
		return "."
	case b < 10*1024:
		return fmt.Sprintf("%d", b)
	case b < 10*1024*1024:
		return fmt.Sprintf("%dK", b/1024)
	default:
		return fmt.Sprintf("%dM", b/(1024*1024))
	}
}
