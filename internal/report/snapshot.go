package report

import (
	"encoding/json"
	"io"
)

// Snapshot is the machine-readable record of one experiment run — the
// benchmark regression format behind `cgbench -json`. Committed
// BENCH_*.json files let a later change diff its tables against a
// known-good run instead of eyeballing rendered text.
type Snapshot struct {
	// Experiment is the registry ID (e.g. "E19").
	Experiment string `json:"experiment"`
	// Timestamp is when the run happened, RFC 3339.
	Timestamp string `json:"timestamp"`
	// Config describes the run parameters that shaped the numbers
	// (quick mode, topology, seed).
	Config map[string]any `json:"config,omitempty"`
	// Tables are the experiment's outputs, verbatim.
	Tables []*Table `json:"tables"`
}

// WriteSnapshot serialises the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshots parses a stream of concatenated snapshots (the format
// an appending `cgbench -json` run produces).
func ReadSnapshots(r io.Reader) ([]*Snapshot, error) {
	dec := json.NewDecoder(r)
	var out []*Snapshot
	for dec.More() {
		var s Snapshot
		if err := dec.Decode(&s); err != nil {
			return out, err
		}
		out = append(out, &s)
	}
	return out, nil
}
