package serve

import (
	"errors"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// A default job (sstep absent) gets the cost model's blocking factor
// automatically: on a 4-processor machine the latency term dominates
// and the service must report s > 1 with the s-step strategy marker.
func TestSStepAutoSelection(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(JobSpec{Matrix: "laplace2d:12:12", NP: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("job %+v", v)
	}
	if v.Result.SStep <= 1 {
		t.Fatalf("auto-selection reported s=%d; np=4 should pick s>1", v.Result.SStep)
	}
	A, err := sparse.GeneratorByName("laplace2d:12:12")
	if err != nil {
		t.Fatal(err)
	}
	m := comm.NewMachine(4, topology.Hypercube{}, topology.DefaultCostParams())
	want, _ := hpfexec.ChooseSStep(m, A, dist.NewBlock(A.NRows, 4))
	if v.Result.SStep != want {
		t.Fatalf("service chose s=%d, cost model says %d", v.Result.SStep, want)
	}
}

// A fixed sstep job must answer bit-identically to the direct
// hpfexec.SolveCGSStep at the same factor.
func TestSStepFixedBitIdenticalToDirect(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	spec := JobSpec{Matrix: "banded:128:4", NP: 4, Seed: 11, SStep: 4}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("job %+v", v)
	}
	if v.Result.SStep != 4 || v.Result.Replacements != 0 {
		t.Fatalf("result s=%d replacements=%d, want 4/0", v.Result.SStep, v.Result.Replacements)
	}

	A, err := sparse.GeneratorByName(spec.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hpfexec.PlanForLayout("csr", spec.NP, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.NewMachine(spec.NP, topology.Hypercube{}, topology.DefaultCostParams())
	b := sparse.RandomVector(A.NRows, spec.Seed)
	want, err := hpfexec.SolveCGSStep(m, plan, A, b, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.X {
		if v.Result.X[i] != want.X[i] {
			t.Fatalf("x[%d] service %v != direct %v", i, v.Result.X[i], want.X[i])
		}
	}
	if v.Result.Strategy != want.Strategy.String() {
		t.Fatalf("strategy %q != %q", v.Result.Strategy, want.Strategy)
	}
}

// Validation: out-of-range factors and CSC layouts are rejected at
// admission; resilient jobs silently run plain CG.
func TestSStepValidationAndResilientForce(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	var verr *ValidationError
	if _, err := s.Submit(JobSpec{Matrix: "laplace1d:32", NP: 2, SStep: -1}); !errors.As(err, &verr) {
		t.Fatalf("sstep=-1 admitted: %v", err)
	}
	if _, err := s.Submit(JobSpec{Matrix: "laplace1d:32", NP: 2, SStep: hpfexec.MaxSStep + 1}); !errors.As(err, &verr) {
		t.Fatalf("oversized sstep admitted: %v", err)
	}
	if _, err := s.Submit(JobSpec{Matrix: "laplace1d:32", NP: 2, Layout: "csc-merge", SStep: 2}); !errors.As(err, &verr) {
		t.Fatalf("sstep on CSC admitted: %v", err)
	}

	j, err := s.Submit(JobSpec{Matrix: "laplace1d:48", NP: 2, Resilient: true, SStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("resilient job %+v", v)
	}
	if v.Result.SStep != 1 {
		t.Fatalf("resilient job ran s=%d, want forced 1", v.Result.SStep)
	}
}

// Jobs asking for different blocking factors run different solvers and
// must not coalesce into one batch.
func TestSStepBatchKeySeparates(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 8, StartPaused: true})
	defer s.Drain(testCtx(t))
	j1, err := s.Submit(JobSpec{Matrix: "laplace1d:64", NP: 2, SStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobSpec{Matrix: "laplace1d:64", NP: 2, SStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Resume()
	for _, id := range []string{j1.ID, j2.ID} {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone || v.Result.BatchSize != 1 {
			t.Fatalf("%s: state %s batch %d, want done/1", id, v.State, v.Result.BatchSize)
		}
	}
	if hits := s.PlanCacheStats().Hits; hits != 0 {
		t.Fatalf("plan cache hits %d across distinct sstep keys, want 0", hits)
	}
}
