// Package serve turns the one-shot solver stack into a service: a
// bounded admission queue with backpressure, a worker pool where each
// worker owns its SPMD machines, and a scheduler whose headline
// optimisation is same-matrix batching — jobs against an identical
// matrix/layout/np/topology key coalesce into one SPMD run, so the
// matrix is assembled, partitioned and inspector-exchanged once and
// the batch of right-hand sides is solved back-to-back from a pooled
// workspace (hpfexec.SolveCGBatch). This is the paper's §2 shape (one
// partitioned/inspected matrix, many solves) run as a request loop.
//
// Lifecycle is production-grade: per-job wall timeouts route through
// hpfexec.SolveCGTimeout, fault-injected jobs can run resilient via
// hpfexec.SolveCGResilient, Drain stops admission, rejects what is
// still queued and lets in-flight batches finish, and Metrics renders
// live Prometheus text (queue depth, in-flight, stage latency
// histograms, batch occupancy, modeled machine-time totals).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpf"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// Admission errors. HTTP maps ErrQueueFull to 429 + Retry-After and
// ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: scheduler is draining")
)

// ValidationError wraps a rejected spec (HTTP 400).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// Options configures a Scheduler.
type Options struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueCap bounds the admission queue (default 64); submissions
	// beyond it get ErrQueueFull.
	QueueCap int
	// MaxBatch caps how many same-key jobs one dispatch coalesces
	// (default 8; 1 disables batching).
	MaxBatch int
	// MaxNP bounds the per-job processor count (default 32).
	MaxNP int
	// RetryAfter is the backpressure hint returned with 429s
	// (default 1s).
	RetryAfter time.Duration
	// PlanCacheBytes budgets the Prepared-plan registry: batchable
	// jobs are solved from content-addressed cached plans, so repeat
	// traffic against a hot matrix skips partitioning and the
	// inspector ghost exchange across batch windows. 0 selects
	// hpfexec.DefaultRegistryBudget; negative disables the registry.
	PlanCacheBytes int64
	// StartPaused creates the scheduler with dispatch paused; Resume
	// starts it. Tests and benchmarks use this to preload the queue so
	// batch composition is deterministic.
	StartPaused bool
	// BatchStarted, when non-nil, is called synchronously by a worker
	// after it marks a batch running and before it solves. Tests use it
	// to hold a batch in flight at a known point.
	BatchStarted func(jobs []*Job)
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueCap == 0 {
		o.QueueCap = 64
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 8
	}
	if o.MaxNP == 0 {
		o.MaxNP = 32
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Scheduler is the solver service: admission, batching, workers.
type Scheduler struct {
	opts Options
	met  *Metrics
	reg  *hpfexec.Registry // nil when the plan cache is disabled

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	jobs     map[string]*Job
	nextID   int
	paused   bool
	draining bool
	inflight int

	wg sync.WaitGroup
}

// New starts a scheduler with opts.Workers workers.
func New(opts Options) *Scheduler {
	s := &Scheduler{
		opts:   opts.withDefaults(),
		met:    newMetrics(),
		jobs:   map[string]*Job{},
		paused: opts.StartPaused,
	}
	if s.opts.PlanCacheBytes >= 0 {
		s.reg = hpfexec.NewRegistry(s.opts.PlanCacheBytes)
		s.met.planStats = s.reg.Stats
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the live metric set.
func (s *Scheduler) Metrics() *Metrics { return s.met }

// PlanCacheStats snapshots the plan registry counters (zero value when
// the cache is disabled).
func (s *Scheduler) PlanCacheStats() hpfexec.RegistryStats {
	if s.reg == nil {
		return hpfexec.RegistryStats{}
	}
	return s.reg.Stats()
}

// Draining reports whether admission has closed — the readiness probe
// (/readyz) turns 503 on this so load balancers stop routing before
// the drain completes.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RetryAfter is the backpressure hint for rejected submissions.
func (s *Scheduler) RetryAfter() time.Duration { return s.opts.RetryAfter }

// Submit validates and enqueues a job. It returns ErrQueueFull when
// the admission queue is at capacity (backpressure), ErrDraining after
// Drain, and a *ValidationError for malformed specs.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	spec.normalize()
	if err := spec.validate(s.opts.MaxNP); err != nil {
		s.met.reject("invalid")
		return nil, &ValidationError{Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.reject("draining")
		return nil, ErrDraining
	}
	if len(s.queue) >= s.opts.QueueCap {
		s.met.reject("queue_full")
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		key:       spec.key(),
		batchable: spec.batchable(),
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.met.submit(spec.jobType())
	s.met.setGauges(len(s.queue), s.inflight)
	s.cond.Broadcast()
	return j, nil
}

// View returns a snapshot of the job's externally visible state.
func (s *Scheduler) View(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// TraceJSON returns the job's captured Perfetto trace, if any.
func (s *Scheduler) TraceJSON(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || len(j.traceJSON) == 0 {
		return nil, false
	}
	return j.traceJSON, true
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	v, _ := s.View(id)
	return v, nil
}

// Resume starts dispatch on a paused scheduler.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain performs the graceful shutdown: admission closes immediately
// (further Submits get ErrDraining), jobs still queued are failed as
// rejected, and Drain then waits — up to ctx — for the in-flight
// batches to finish. Workers exit afterwards.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		rejected := s.queue
		s.queue = nil
		now := time.Now()
		for _, j := range rejected {
			j.state = StateFailed
			j.err = "rejected: server draining"
			j.finished = now
			close(j.done)
			s.met.reject("draining")
		}
		s.met.setGauges(0, s.inflight)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	}
}

// worker is one pool member. It owns its SPMD machines (cached per
// np/topology shape) so runs from different workers never share comm
// state; fault- or trace-attached jobs get a dedicated machine.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	machines := map[string]*comm.Machine{}
	for {
		batch := s.nextBatch()
		if batch == nil {
			return
		}
		if s.opts.BatchStarted != nil {
			s.opts.BatchStarted(batch)
		}
		s.runBatch(machines, batch)
	}
}

// nextBatch blocks for work, pops the head job and coalesces every
// same-key batchable job behind it (FIFO order preserved for the
// rest). Returns nil when the scheduler is draining and the queue is
// empty — the worker's signal to exit.
func (s *Scheduler) nextBatch() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.queue) > 0 && !s.paused {
			break
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
	head := s.queue[0]
	batch := []*Job{head}
	rest := s.queue[1:]
	if head.batchable && s.opts.MaxBatch > 1 {
		kept := rest[:0]
		for _, j := range rest {
			if len(batch) < s.opts.MaxBatch && j.batchable && j.key == head.key {
				batch = append(batch, j)
			} else {
				kept = append(kept, j)
			}
		}
		rest = kept
	}
	s.queue = append(s.queue[:0], rest...)
	now := time.Now()
	for _, j := range batch {
		j.state = StateRunning
		j.started = now
	}
	s.inflight += len(batch)
	s.met.setGauges(len(s.queue), s.inflight)
	waits := make([]float64, len(batch))
	for i, j := range batch {
		waits[i] = now.Sub(j.submitted).Seconds()
	}
	s.met.dispatch(head.Spec.jobType(), len(batch), waits)
	return batch
}

// machineKey caches per-worker machines by shape.
func machineKey(np int, topo string) string { return fmt.Sprintf("%d/%s", np, topo) }

// prepareCGHandle builds the assembled-matrix Prepared for the job's
// solver choice: the pipelined overlap handle when requested, the
// s-step/plain handle (cost model resolves sstep=0) otherwise.
// Validation guarantees the two knobs never both fire.
func prepareCGHandle(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, spec JobSpec) (*hpfexec.Prepared, error) {
	if spec.Pipelined {
		return hpfexec.PreparePipelined(m, plan, A)
	}
	return hpfexec.PrepareSStep(m, plan, A, spec.SStep)
}

// prepareStencilHandle builds the matrix-free Prepared for the job's
// solver choice.
func prepareStencilHandle(m *comm.Machine, spec JobSpec) (*hpfexec.Prepared, error) {
	if spec.Pipelined {
		return hpfexec.PrepareStencilPipelined(m, spec.Stencil.spec())
	}
	return hpfexec.PrepareStencil(m, spec.Stencil.spec())
}

// runBatch executes one dispatch: either the coalesced multi-RHS
// batch solve — through the Prepared-plan registry when enabled, so a
// hot matrix skips partitioning and the inspector exchange — or the
// job's solo special path (fault injection, tracing, timeout,
// resilient mode).
func (s *Scheduler) runBatch(machines map[string]*comm.Machine, batch []*Job) {
	spec := batch[0].Spec

	if spec.batchable() && s.reg != nil {
		s.runBatchRegistry(batch)
		return
	}

	if spec.Method == "hpcg" {
		// Registry disabled: prepare the stencil problem per dispatch
		// on the worker's cached machine.
		s.runBatchHPCG(machines, batch)
		return
	}

	if spec.Method == "stencil" {
		s.runBatchStencil(machines, batch)
		return
	}

	A, err := spec.buildMatrix()
	if err != nil {
		s.failAll(batch, fmt.Errorf("matrix: %w", err))
		return
	}
	if A.NRows != A.NCols {
		s.failAll(batch, fmt.Errorf("matrix: not square (%dx%d)", A.NRows, A.NCols))
		return
	}
	n := A.NRows
	plan, err := hpfexec.PlanForLayout(spec.Layout, spec.NP, n, A.NNZ())
	if err != nil {
		s.failAll(batch, err)
		return
	}

	live, rhs, opts := s.resolveRHS(batch, n)
	if len(live) == 0 {
		return
	}

	if !spec.batchable() {
		// Solo path; nextBatch never coalesces these.
		s.runSolo(live[0], plan, A, rhs[0], opts[0])
		return
	}

	topo, err := topology.ByName(spec.Topology)
	if err != nil {
		s.failAll(live, err)
		return
	}
	key := machineKey(spec.NP, spec.Topology)
	m, ok := machines[key]
	if !ok {
		m = comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		machines[key] = m
	}
	pr, err := prepareCGHandle(m, plan, A, spec)
	if err != nil {
		s.failAll(live, err)
		return
	}
	out, err := pr.SolveBatch(rhs, opts)
	if err != nil {
		s.failAll(live, err)
		return
	}
	s.finishBatch(live, out, false, 0)
}

// runBatchHPCG is the registry-less hpcg path: prepare the stencil
// problem on the worker's cached machine and solve the coalesced
// right-hand sides in one SPMD run.
func (s *Scheduler) runBatchHPCG(machines map[string]*comm.Machine, batch []*Job) {
	spec := batch[0].Spec
	topo, err := topology.ByName(spec.Topology)
	if err != nil {
		s.failAll(batch, err)
		return
	}
	key := machineKey(spec.NP, spec.Topology)
	m, ok := machines[key]
	if !ok {
		m = comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		machines[key] = m
	}
	pr, err := hpfexec.PrepareMG(m, spec.MG.spec())
	if err != nil {
		s.failAll(batch, err)
		return
	}
	live, rhs, opts := s.resolveRHS(batch, pr.N())
	if len(live) == 0 {
		return
	}
	out, err := pr.SolveHPCGBatch(rhs, opts)
	if err != nil {
		s.failAll(live, err)
		return
	}
	s.finishBatch(live, out, false, pr.MGLevels())
}

// runBatchStencil is the registry-less stencil path: build the
// matrix-free handle on the worker's cached machine — no assembly, no
// inspector, zero modeled setup even on this cold path — and solve the
// coalesced right-hand sides in one SPMD run.
func (s *Scheduler) runBatchStencil(machines map[string]*comm.Machine, batch []*Job) {
	spec := batch[0].Spec
	topo, err := topology.ByName(spec.Topology)
	if err != nil {
		s.failAll(batch, err)
		return
	}
	key := machineKey(spec.NP, spec.Topology)
	m, ok := machines[key]
	if !ok {
		m = comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		machines[key] = m
	}
	pr, err := prepareStencilHandle(m, spec)
	if err != nil {
		s.failAll(batch, err)
		return
	}
	live, rhs, opts := s.resolveRHS(batch, pr.N())
	if len(live) == 0 {
		return
	}
	out, err := pr.SolveStencilBatch(rhs, opts)
	if err != nil {
		s.failAll(live, err)
		return
	}
	s.finishBatch(live, out, false, 0)
}

// resolveRHS materializes each job's right-hand side; length
// mismatches fail only that job.
func (s *Scheduler) resolveRHS(batch []*Job, n int) (live []*Job, rhs [][]float64, opts []core.Options) {
	live = batch[:0:len(batch)]
	rhs = make([][]float64, 0, len(batch))
	opts = make([]core.Options, 0, len(batch))
	for _, j := range batch {
		b := j.Spec.RHS
		if len(b) == 0 {
			b = sparse.RandomVector(n, j.Spec.Seed)
		} else if len(b) != n {
			s.finishJob(j, nil, fmt.Errorf("rhs length %d != n=%d", len(b), n))
			continue
		}
		live = append(live, j)
		rhs = append(rhs, b)
		opts = append(opts, core.Options{Tol: j.Spec.Tol, MaxIter: j.Spec.MaxIter})
	}
	return live, rhs, opts
}

// runBatchRegistry is the content-addressed batch path: look the
// matrix up by content hash, prepare (and cache) the plan on a miss,
// then solve the batch from the cached Prepared handle under its entry
// lock. A warm hit runs with zero modeled setup and answers
// bit-identical to the cold path (hpfexec.TestWarmBatchBitIdentical).
func (s *Scheduler) runBatchRegistry(batch []*Job) {
	spec := batch[0].Spec

	hash, A, err := spec.contentHashMatrix()
	if err != nil {
		s.failAll(batch, err)
		return
	}
	entry, hit := s.reg.Get(spec.planKey(hash))
	var pr *hpfexec.Prepared
	switch {
	case hit:
	case spec.Method == "hpcg":
		// Stencil jobs carry no matrix: prepare the multigrid hierarchy
		// on a plan-owned machine and cache the handle like any other
		// plan. A warm hit rebinds the hierarchy — zero modeled setup.
		topo, err := topology.ByName(spec.Topology)
		if err != nil {
			s.failAll(batch, err)
			return
		}
		m := comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		if pr, err = hpfexec.PrepareMG(m, spec.MG.spec()); err != nil {
			s.failAll(batch, err)
			return
		}
		entry, _ = s.reg.Put(spec.planKey(hash), pr)
	case spec.Method == "stencil":
		// Matrix-free jobs carry no matrix either: the handle holds only
		// the spec and per-rank geometric schedules, so caching it buys
		// machine reuse and bit-stable warm answers — there is no setup
		// cost to amortize (cold and warm modeled setup are both zero).
		topo, err := topology.ByName(spec.Topology)
		if err != nil {
			s.failAll(batch, err)
			return
		}
		m := comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		if pr, err = prepareStencilHandle(m, spec); err != nil {
			s.failAll(batch, err)
			return
		}
		entry, _ = s.reg.Put(spec.planKey(hash), pr)
	default:
		if A == nil {
			if A, err = spec.buildMatrix(); err != nil {
				s.failAll(batch, fmt.Errorf("matrix: %w", err))
				return
			}
		}
		if A.NRows != A.NCols {
			s.failAll(batch, fmt.Errorf("matrix: not square (%dx%d)", A.NRows, A.NCols))
			return
		}
		plan, err := hpfexec.PlanForLayout(spec.Layout, spec.NP, A.NRows, A.NNZ())
		if err != nil {
			s.failAll(batch, err)
			return
		}
		topo, err := topology.ByName(spec.Topology)
		if err != nil {
			s.failAll(batch, err)
			return
		}
		// The plan owns a machine of its own: cached plans outlive any
		// single worker, and the entry lock serializes runs on it. The
		// s-step factor resolves here (cost model on 0), so the cached
		// plan carries the widened powers schedule it implies; a
		// pipelined request caches the overlap-solver handle instead
		// (planKey keeps the two apart).
		m := comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
		if pr, err = prepareCGHandle(m, plan, A, spec); err != nil {
			s.failAll(batch, err)
			return
		}
		entry, _ = s.reg.Put(spec.planKey(hash), pr)
	}
	if entry != nil {
		// Cached (or freshly cached): solve under the entry lock so
		// concurrent workers never share the plan's machine. Oversized
		// plans (entry == nil) run uncached from the local pr.
		entry.Lock()
		defer entry.Unlock()
		pr = entry.Prepared()
	}

	live, rhs, opts := s.resolveRHS(batch, pr.N())
	if len(live) == 0 {
		return
	}
	warm := pr.Warm()
	out, err := pr.SolveBatch(rhs, opts)
	if err != nil {
		s.failAll(live, err)
		return
	}
	s.finishBatch(live, out, warm, pr.MGLevels())
}

// finishBatch records model-time metrics and finishes every job of a
// completed batch solve. levels > 0 marks an hpcg batch, which also
// carries the HPCG figure of merit (modeled GFLOP/s of the run).
func (s *Scheduler) finishBatch(live []*Job, out *hpfexec.BatchResult, warm bool, levels int) {
	s.met.addModel(out.Run.ModelTime, out.Run.CommTime(), out.SetupModelTime)
	var gflops float64
	if levels > 0 {
		gflops = report.GFlopRate(out.Run.TotalFlops, out.Run.ModelTime)
	}
	for k, j := range live {
		r := out.Results[k]
		s.finishJob(j, &JobResult{
			X:              r.X,
			Converged:      r.Stats.Converged,
			Iterations:     r.Stats.Iterations,
			Residual:       r.Stats.Residual,
			Strategy:       r.Strategy.String(),
			SStep:          r.Strategy.SStep,
			Replacements:   r.Stats.Replacements,
			Pipelined:      r.Stats.Pipelined,
			Reductions:     r.Stats.Reductions,
			ModelTime:      out.Run.ModelTime,
			SolveModelTime: out.SolveModelTime[k],
			SetupModelTime: out.SetupModelTime,
			CommTime:       out.Run.CommTime(),
			BatchSize:      len(live),
			PlanCacheHit:   warm,
			Levels:         levels,
			ModelGFlops:    gflops,
		}, nil)
	}
}

// failAll finishes every job in the batch with the same error.
func (s *Scheduler) failAll(batch []*Job, err error) {
	for _, j := range batch {
		s.finishJob(j, nil, err)
	}
}

// finishJob moves a job to its terminal state and updates metrics.
func (s *Scheduler) finishJob(j *Job, res *JobResult, err error) {
	now := time.Now()
	s.mu.Lock()
	j.finished = now
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.result = res
	}
	s.inflight--
	s.met.setGauges(len(s.queue), s.inflight)
	close(j.done)
	s.mu.Unlock()
	s.met.finish(j.Spec.jobType(), err == nil, now.Sub(j.started).Seconds())
}
