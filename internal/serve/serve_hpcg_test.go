// Tests for the hpcg job type: the stencil problem end to end through
// the scheduler, batching and plan-cache warmth, the figure of merit,
// field-named admission errors, and job_type-labeled metrics.
package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func hpcgSpec() JobSpec {
	return JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Levels: 3}, NP: 2}
}

// TestHPCGJobEndToEnd: an hpcg job converges through the service and
// reports the V-cycle strategy, hierarchy depth and figure of merit.
func TestHPCGJobEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(hpcgSpec())
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	r := v.Result
	if !r.Converged {
		t.Fatalf("did not converge: %+v", r)
	}
	if !strings.Contains(r.Strategy, "mg-vcycle") {
		t.Errorf("strategy %q, want an mg-vcycle mode", r.Strategy)
	}
	if r.Levels != 3 {
		t.Errorf("levels = %d, want 3", r.Levels)
	}
	if r.ModelGFlops <= 0 {
		t.Errorf("model_gflops = %g, want > 0 (FoM missing)", r.ModelGFlops)
	}
	if want := 4 * 4 * 4 * 2; len(r.X) != want {
		t.Errorf("len(x) = %d, want %d", len(r.X), want)
	}
}

// TestHPCGBatchingAndWarmPlan: same-spec hpcg jobs coalesce into one
// dispatch, and a follow-up batch runs from the warm cached hierarchy
// (plan_cache_hit, setup_model_time exactly 0) with bit-identical
// answers for an identical request.
func TestHPCGBatchingAndWarmPlan(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 8, StartPaused: true})
	defer s.Drain(testCtx(t))
	const njobs = 3
	ids := make([]string, njobs)
	for k := 0; k < njobs; k++ {
		sp := hpcgSpec()
		sp.Seed = 7 // identical jobs: answers must agree bit-for-bit
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[k] = j.ID
	}
	s.Resume()
	var x0 []float64
	for k, id := range ids {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("job %d: state %s (err %q)", k, v.State, v.Error)
		}
		if v.Result.BatchSize != njobs {
			t.Fatalf("job %d: batch size %d, want %d", k, v.Result.BatchSize, njobs)
		}
		if k == 0 {
			x0 = v.Result.X
			continue
		}
		for i := range x0 {
			if v.Result.X[i] != x0[i] {
				t.Fatalf("job %d: x[%d] = %v, job 0 %v", k, i, v.Result.X[i], x0[i])
			}
		}
	}

	// Second window against the same stencil: the cached plan is warm.
	sp := hpcgSpec()
	sp.Seed = 7
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("warm job: state %s (err %q)", v.State, v.Error)
	}
	if !v.Result.PlanCacheHit {
		t.Error("warm job: plan_cache_hit = false")
	}
	if v.Result.SetupModelTime != 0 {
		t.Errorf("warm job: setup_model_time = %g, want exactly 0", v.Result.SetupModelTime)
	}
	for i := range x0 {
		if v.Result.X[i] != x0[i] {
			t.Fatalf("warm job: x[%d] = %v, cold %v (warmth broke bit-identity)", i, v.Result.X[i], x0[i])
		}
	}
	if st := s.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("plan cache recorded no hits: %+v", st)
	}
}

// TestHPCGValidationFieldNames: malformed hpcg specs are rejected at
// admission with a ValidationError naming the offending field.
func TestHPCGValidationFieldNames(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	cases := []struct {
		spec  JobSpec
		field string
	}{
		{JobSpec{Method: "hpcg"}, "mg"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 0, Ny: 4, Nz: 4}}, "mg.nx"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Levels: 99}}, "mg.levels"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Smooths: 99}}, "mg.smooths"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}, Matrix: "laplace1d:8"}, "matrix"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}, SStep: 2}, "sstep"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}, Tol: -1}, "tol"},
		{JobSpec{Matrix: "laplace1d:8", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}}, "mg"},
	}
	for i, c := range cases {
		_, err := s.Submit(c.spec)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("case %d: err = %v, want ValidationError", i, err)
			continue
		}
		if !strings.Contains(err.Error(), "field "+c.field) {
			t.Errorf("case %d: error %q does not name field %q", i, err, c.field)
		}
	}
}

// TestMetricsJobTypeLabels: cg and hpcg traffic land in separate
// job_type series under shared HELP/TYPE headers.
func TestMetricsJobTypeLabels(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	for _, spec := range []JobSpec{{Matrix: "laplace1d:32", NP: 2}, hpcgSpec()} {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := s.Wait(testCtx(t), j.ID); err != nil || v.State != StateDone {
			t.Fatalf("job failed: %v %+v", err, v)
		}
	}
	var buf bytes.Buffer
	s.Metrics().WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		`hpfserve_jobs_submitted_total{job_type="cg"} 1`,
		`hpfserve_jobs_submitted_total{job_type="hpcg"} 1`,
		`hpfserve_jobs_completed_total{job_type="cg"} 1`,
		`hpfserve_jobs_completed_total{job_type="hpcg"} 1`,
		`hpfserve_stage_seconds_bucket{stage="queue",job_type="hpcg",le="+Inf"} 1`,
		`hpfserve_stage_seconds_bucket{stage="solve",job_type="hpcg",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
	for _, family := range []string{
		"hpfserve_jobs_submitted_total",
		"hpfserve_jobs_completed_total",
		"hpfserve_stage_seconds",
	} {
		if n := strings.Count(out, "# TYPE "+family+" "); n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", family, n)
		}
	}
}

// TestHPCGRegistryDisabled: with the plan cache off the hpcg path
// still runs (per-dispatch prepare on the worker's machine).
func TestHPCGRegistryDisabled(t *testing.T) {
	s := New(Options{Workers: 1, PlanCacheBytes: -1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(hpcgSpec())
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	if v.Result.PlanCacheHit {
		t.Error("plan_cache_hit with the registry disabled")
	}
	if v.Result.ModelGFlops <= 0 {
		t.Errorf("model_gflops = %g, want > 0", v.Result.ModelGFlops)
	}
}
