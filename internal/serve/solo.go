// The solo execution path: jobs that need their own machine — fault
// injection, trace capture, wall-clock timeouts, resilient mode — run
// one at a time on a machine built for the job, so injectors and
// tracers never leak into the worker's pooled machines.
package serve

import (
	"bytes"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/fault"
	"hpfcg/internal/hpf"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

func (s *Scheduler) runSolo(j *Job, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options) {
	spec := j.Spec
	topo, err := topology.ByName(spec.Topology)
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	m := comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
	if spec.Fault != "" {
		plan, perr := fault.Parse(spec.Fault)
		if perr != nil {
			s.finishJob(j, nil, perr)
			return
		}
		inj, ierr := fault.NewInjector(plan)
		if ierr != nil {
			s.finishJob(j, nil, ierr)
			return
		}
		m.AttachInjector(inj)
	}
	var tr *trace.Tracer
	if spec.Trace {
		tr = &trace.Tracer{}
		m.AttachTracer(tr)
	}

	res := &JobResult{BatchSize: 1}
	var solveErr error
	switch {
	case spec.Resilient:
		rres, err := hpfexec.SolveCGResilient(m, plan, A, b, opt, hpfexec.ResilientOptions{
			Interval:    spec.CkptInterval,
			MaxRestarts: spec.MaxRestarts,
		})
		if err != nil {
			solveErr = err
			break
		}
		res.Attempts = rres.Attempts
		res.Failures = len(rres.Failures)
		res.ModelTime = rres.TotalModelTime
		fillResult(res, &rres.Result)
	case spec.TimeoutMS > 0:
		var r *hpfexec.Result
		var err error
		if spec.Pipelined {
			r, err = hpfexec.SolveCGPipelinedTimeout(m, plan, A, b, opt, time.Duration(spec.TimeoutMS)*time.Millisecond)
		} else {
			r, err = hpfexec.SolveCGSStepTimeout(m, plan, A, b, opt, spec.SStep, time.Duration(spec.TimeoutMS)*time.Millisecond)
		}
		if err != nil {
			solveErr = err
			break
		}
		res.ModelTime = r.Run.ModelTime
		fillResult(res, r)
	default:
		// Fault- and trace-attached jobs land here too: the pipelined
		// solver runs under injectors (clock skew never reaches the
		// arithmetic) and tracers (the hidden round shows as a span).
		var r *hpfexec.Result
		var err error
		if spec.Pipelined {
			r, err = hpfexec.SolveCGPipelined(m, plan, A, b, opt)
		} else {
			r, err = hpfexec.SolveCGSStep(m, plan, A, b, opt, spec.SStep)
		}
		if err != nil {
			solveErr = err
			break
		}
		res.ModelTime = r.Run.ModelTime
		fillResult(res, r)
	}
	if solveErr != nil {
		s.finishJob(j, nil, solveErr)
		return
	}
	res.SolveModelTime = res.ModelTime

	if tr != nil {
		if rec := tr.Last(); rec != nil {
			var buf bytes.Buffer
			if err := trace.WriteChromeTrace(&buf, rec); err == nil {
				s.mu.Lock()
				j.traceJSON = buf.Bytes()
				s.mu.Unlock()
			}
		}
	}
	s.met.addModel(res.ModelTime, res.CommTime, 0)
	s.finishJob(j, res, nil)
}

// fillResult copies the solver outcome shared by every solo variant.
func fillResult(res *JobResult, r *hpfexec.Result) {
	res.X = r.X
	res.Converged = r.Stats.Converged
	res.Iterations = r.Stats.Iterations
	res.Residual = r.Stats.Residual
	res.Strategy = r.Strategy.String()
	res.CommTime = r.Run.CommTime()
	res.SStep = r.Strategy.SStep
	if res.SStep == 0 {
		res.SStep = 1 // plain-CG paths (resilient) never engage s-step
	}
	res.Replacements = r.Stats.Replacements
	res.Pipelined = r.Stats.Pipelined
	res.Reductions = r.Stats.Reductions
	if res.ModelTime == 0 {
		res.ModelTime = r.Run.ModelTime
	}
}
