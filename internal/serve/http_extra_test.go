// HTTP-surface tests for the readiness split, request-ID propagation
// and the backpressure plumbing (queue-full responses and metric
// exposition invariants under concurrent scrapes).
package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d before drain", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Liveness stays up (the process still answers status polls);
	// readiness must be 503 so balancers stop sending traffic.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after drain", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after drain, want 503", resp.StatusCode)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// Client-supplied ID is echoed verbatim.
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(`{"matrix":"laplace1d:16","np":2}`))
	req.Header.Set(RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("request id %q, want trace-me-42", got)
	}

	// Absent ID: one is generated, even on rejected submissions.
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"np":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp2.StatusCode)
	}
	if got := resp2.Header.Get(RequestIDHeader); !strings.HasPrefix(got, "req-") {
		t.Fatalf("generated request id %q, want req- prefix", got)
	}
}

// TestQueueFullRetryAfter: 429 responses must carry a sane,
// integer-seconds Retry-After the closed-loop clients key off.
func TestQueueFullRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueCap: 1, StartPaused: true, RetryAfter: 1500 * time.Millisecond,
	})

	submit := func() *http.Response {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"matrix":"laplace1d:32","np":2}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit %d, want 202", resp.StatusCode)
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not integer seconds: %v", ra, err)
	}
	// 1500ms rounds up to 2s; anything in [1, 60] is a sane hint, 0
	// would make clients busy-spin.
	if sec < 1 || sec > 60 {
		t.Fatalf("Retry-After %d outside [1,60]", sec)
	}
	if sec != 2 {
		t.Fatalf("Retry-After %d, want ceil(1.5s) = 2", sec)
	}
}

// TestMetricsHistogramInvariantsUnderConcurrentScrapes: while jobs
// complete concurrently, every scrape must render histograms whose
// bucket counts are monotone non-decreasing in le and whose +Inf
// bucket equals _count — i.e. cumulative and internally consistent.
func TestMetricsHistogramInvariantsUnderConcurrentScrapes(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueCap: 64})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			j, err := s.Submit(JobSpec{Matrix: "laplace1d:64", NP: 2, Seed: int64(i + 1)})
			if err != nil {
				continue
			}
			s.Wait(context.Background(), j.ID)
		}
	}()

	for scrape := 0; scrape < 20; scrape++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		checkHistograms(t, buf.String())
	}
	close(stop)
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
}

// checkHistograms parses every *_bucket series in a Prometheus text
// exposition and asserts cumulative monotonicity plus +Inf == _count.
func checkHistograms(t *testing.T, text string) {
	t.Helper()
	type series struct {
		last    float64
		lastSet bool
		inf     float64
		infSeen bool
	}
	buckets := map[string]*series{} // metric name + non-le labels
	counts := map[string]float64{}

	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, valStr := fields[0], fields[1]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable sample %q", line)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			base, le, ok := splitLE(name)
			if !ok {
				t.Fatalf("bucket sample without le: %q", line)
			}
			sr := buckets[base]
			if sr == nil {
				sr = &series{}
				buckets[base] = sr
			}
			if le == "+Inf" {
				sr.inf, sr.infSeen = val, true
			} else {
				if sr.lastSet && val < sr.last {
					t.Fatalf("%s: bucket counts not monotone (%g after %g)", base, val, sr.last)
				}
				sr.last, sr.lastSet = val, true
			}
		case strings.Contains(name, "_count"):
			counts[strings.Replace(name, "_count", "", 1)] = val
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for base, sr := range buckets {
		if !sr.infSeen {
			t.Fatalf("%s: no +Inf bucket", base)
		}
		if sr.lastSet && sr.inf < sr.last {
			t.Fatalf("%s: +Inf bucket %g below last finite bucket %g", base, sr.inf, sr.last)
		}
		if c, ok := counts[base]; ok && c != sr.inf {
			t.Fatalf("%s: +Inf bucket %g != _count %g", base, sr.inf, c)
		}
	}
}

// splitLE splits `name{labels,le="x"}` into the series key without the
// le label and the le value.
func splitLE(sample string) (base, le string, ok bool) {
	i := strings.Index(sample, "{")
	if i < 0 {
		return "", "", false
	}
	name, labels := sample[:i], strings.Trim(sample[i+1:], "{}")
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if strings.HasPrefix(part, "le=") {
			le = strings.Trim(strings.TrimPrefix(part, "le="), `"`)
			continue
		}
		if part != "" {
			kept = append(kept, part)
		}
	}
	if le == "" {
		return "", "", false
	}
	base = strings.TrimSuffix(name, "_bucket")
	if len(kept) > 0 {
		base = fmt.Sprintf("%s{%s}", base, strings.Join(kept, ","))
	}
	return base, le, true
}
