package serve

import (
	"errors"
	"strings"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// A pipelined job must answer bit-identically to the direct
// hpfexec.SolveCGPipelined, report the pipelined strategy, and count
// one (hidden) allreduce round per iteration plus the bookkeeping
// rounds — the number the JSON surfaces as "reductions".
func TestPipelinedJobBitIdenticalToDirect(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	spec := JobSpec{Matrix: "banded:128:4", NP: 4, Seed: 11, Pipelined: true}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("job %+v", v)
	}
	if !v.Result.Pipelined {
		t.Fatal("result does not report pipelined")
	}
	if !strings.Contains(v.Result.Strategy, "pipelined") {
		t.Fatalf("strategy %q lacks the pipelined marker", v.Result.Strategy)
	}
	if v.Result.Replacements != 0 {
		t.Fatalf("drift guard tripped (%d replacements) on a band", v.Result.Replacements)
	}
	if want := v.Result.Iterations + 3; v.Result.Reductions != want {
		t.Fatalf("%d reductions for %d iterations, want %d", v.Result.Reductions, v.Result.Iterations, want)
	}

	A, err := sparse.GeneratorByName(spec.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hpfexec.PlanForLayout("csr", spec.NP, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.NewMachine(spec.NP, topology.Hypercube{}, topology.DefaultCostParams())
	b := sparse.RandomVector(A.NRows, spec.Seed)
	want, err := hpfexec.SolveCGPipelined(m, plan, A, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.X {
		if v.Result.X[i] != want.X[i] {
			t.Fatalf("x[%d] = %v, direct %v", i, v.Result.X[i], want.X[i])
		}
	}
	if v.Result.Iterations != want.Stats.Iterations {
		t.Fatalf("iterations %d, direct %d", v.Result.Iterations, want.Stats.Iterations)
	}
}

// Repeat pipelined traffic against the same matrix content must land
// on the cached overlap plan (plan_cache_hit, setup exactly 0) while a
// blocking job over the same matrix keeps its own plan — the pipe
// suffix in the registry key separates the two solvers.
func TestPipelinedPlanCacheSeparatesSolvers(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	run := func(spec JobSpec) *JobResult {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(testCtx(t), j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone || !v.Result.Converged {
			t.Fatalf("job %+v", v)
		}
		return v.Result
	}

	pipe := JobSpec{Matrix: "laplace2d:12:12", NP: 4, Seed: 3, Pipelined: true}
	cold := run(pipe)
	if cold.PlanCacheHit || cold.SetupModelTime <= 0 {
		t.Fatalf("cold pipelined job: hit=%v setup=%g", cold.PlanCacheHit, cold.SetupModelTime)
	}
	warm := run(pipe)
	if !warm.PlanCacheHit || warm.SetupModelTime != 0 {
		t.Fatalf("warm pipelined job: hit=%v setup=%g, want hit with setup exactly 0", warm.PlanCacheHit, warm.SetupModelTime)
	}
	if !warm.Pipelined {
		t.Fatal("warm result does not report pipelined")
	}
	for i := range cold.X {
		if cold.X[i] != warm.X[i] {
			t.Fatalf("warm x[%d] differs: %v vs %v", i, warm.X[i], cold.X[i])
		}
	}

	// Same matrix, blocking solver: must NOT hit the pipelined plan.
	block := run(JobSpec{Matrix: "laplace2d:12:12", NP: 4, Seed: 3})
	if block.PlanCacheHit {
		t.Fatal("blocking job hit the pipelined plan cache entry")
	}
	if block.Pipelined {
		t.Fatal("blocking job reports pipelined")
	}
}

// A pipelined stencil job runs the overlap solver on the matrix-free
// handle: zero modeled setup and the pipelined round count.
func TestPipelinedStencilJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	spec := JobSpec{
		Method:    "stencil",
		Stencil:   &StencilSpec{Stencil: "5pt", Nx: 10, Ny: 6},
		NP:        4,
		Seed:      7,
		Pipelined: true,
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("job %+v", v)
	}
	if !v.Result.Pipelined {
		t.Fatal("stencil result does not report pipelined")
	}
	if v.Result.SetupModelTime != 0 {
		t.Fatalf("stencil setup %g, want exactly 0", v.Result.SetupModelTime)
	}
	if want := v.Result.Iterations + 3; v.Result.Reductions != want {
		t.Fatalf("%d reductions for %d iterations, want %d", v.Result.Reductions, v.Result.Iterations, want)
	}
}

// Admission must reject every combination the pipelined solver has no
// form for, each with a field-named 400.
func TestPipelinedValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	for i, tc := range []struct {
		spec JobSpec
		frag string
	}{
		{JobSpec{Matrix: "laplace2d:8:8", Layout: "csc-merge", Pipelined: true}, "CSR layout"},
		{JobSpec{Matrix: "laplace2d:8:8", SStep: 4, Pipelined: true}, "s-step"},
		{JobSpec{Matrix: "laplace2d:8:8", Resilient: true, Pipelined: true}, "resilient"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}, Pipelined: true}, "hpcg"},
	} {
		_, err := s.Submit(tc.spec)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("spec %d: err = %v, want ValidationError", i, err)
		}
		if !strings.Contains(err.Error(), "pipelined") || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("spec %d: error %q does not name the pipelined conflict (%q)", i, err, tc.frag)
		}
	}
}
