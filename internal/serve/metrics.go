// Live service metrics in Prometheus text exposition format,
// hand-rolled so the repo stays dependency-free. The scheduler owns
// one Metrics and updates it at admission, dispatch and completion;
// /metrics renders it.
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hpfcg/internal/hpfexec"
)

// histogram is a fixed-bucket Prometheus histogram (cumulative counts
// rendered at exposition time).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, per-bucket (non-cumulative)
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// write renders the histogram with an optional constant label prefix
// (e.g. `stage="queue",`).
func (h *histogram) write(w io.Writer, name, label string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, label, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, label, cum)
	suffix := ""
	if label != "" {
		suffix = "{" + label[:len(label)-1] + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.count)
}

// secondsBuckets spans 10µs..100s in half-decade steps — wide enough
// for both queue waits and whole-batch solves.
func secondsBuckets() []float64 {
	return []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100}
}

// occupancyBuckets cover batch sizes 1..32.
func occupancyBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32}
}

// Metrics is the service's live counter set. Job-scoped families carry
// a job_type label ("cg" | "hpcg" | "stencil") so operators can tell
// generated-stencil traffic from general sparse traffic on one scrape.
type Metrics struct {
	mu sync.Mutex

	submitted map[string]uint64 // by job_type
	completed map[string]uint64 // by job_type
	failed    map[string]uint64 // by job_type
	rejected  map[string]uint64 // by reason: queue_full, draining

	queueDepth int
	inflight   int

	queueWait map[string]*histogram // submit -> dispatch, wall seconds, by job_type
	runWall   map[string]*histogram // dispatch -> finish, wall seconds, by job_type
	occupancy *histogram            // jobs per batch

	batches      uint64
	modelSeconds map[string]float64 // makespan, comm, setup

	// planStats, when non-nil, snapshots the Prepared-plan registry at
	// exposition time (set by the scheduler when the cache is enabled).
	planStats func() hpfexec.RegistryStats
}

func newMetrics() *Metrics {
	return &Metrics{
		submitted:    map[string]uint64{},
		completed:    map[string]uint64{},
		failed:       map[string]uint64{},
		rejected:     map[string]uint64{},
		queueWait:    map[string]*histogram{},
		runWall:      map[string]*histogram{},
		occupancy:    newHistogram(occupancyBuckets()),
		modelSeconds: map[string]float64{},
	}
}

// stageHist lazily creates the per-job_type stage histogram. Caller
// holds mt.mu.
func stageHist(m map[string]*histogram, jobType string) *histogram {
	h, ok := m[jobType]
	if !ok {
		h = newHistogram(secondsBuckets())
		m[jobType] = h
	}
	return h
}

func (mt *Metrics) submit(jobType string) {
	mt.mu.Lock()
	mt.submitted[jobType]++
	mt.mu.Unlock()
}
func (mt *Metrics) reject(why string) { mt.mu.Lock(); mt.rejected[why]++; mt.mu.Unlock() }

func (mt *Metrics) setGauges(queueDepth, inflight int) {
	mt.mu.Lock()
	mt.queueDepth, mt.inflight = queueDepth, inflight
	mt.mu.Unlock()
}

func (mt *Metrics) dispatch(jobType string, batchSize int, queueWaits []float64) {
	mt.mu.Lock()
	mt.batches++
	mt.occupancy.observe(float64(batchSize))
	qw := stageHist(mt.queueWait, jobType)
	for _, w := range queueWaits {
		qw.observe(w)
	}
	mt.mu.Unlock()
}

func (mt *Metrics) finish(jobType string, ok bool, runSeconds float64) {
	mt.mu.Lock()
	if ok {
		mt.completed[jobType]++
	} else {
		mt.failed[jobType]++
	}
	stageHist(mt.runWall, jobType).observe(runSeconds)
	mt.mu.Unlock()
}

func (mt *Metrics) addModel(makespan, comm, setup float64) {
	mt.mu.Lock()
	mt.modelSeconds["makespan"] += makespan
	mt.modelSeconds["comm"] += comm
	mt.modelSeconds["setup"] += setup
	mt.mu.Unlock()
}

// Snapshot returns headline counters for tests and logs, summed across
// job types.
func (mt *Metrics) Snapshot() (submitted, completed, failed, rejected uint64) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, n := range mt.submitted {
		submitted += n
	}
	for _, n := range mt.completed {
		completed += n
	}
	for _, n := range mt.failed {
		failed += n
	}
	for _, n := range mt.rejected {
		rejected += n
	}
	return submitted, completed, failed, rejected
}

// sortedKeys returns the map's keys in deterministic exposition order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// writeCounterByType renders one labeled counter family: a single
// HELP/TYPE header followed by one series per job_type. The known job
// types are always exported (zero before first traffic) so dashboards
// and rate() queries see stable series.
func writeCounterByType(w io.Writer, name, help string, m map[string]uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	seeded := map[string]uint64{"cg": 0, "hpcg": 0, "stencil": 0}
	for jt, n := range m {
		seeded[jt] = n
	}
	for _, jt := range sortedKeys(seeded) {
		fmt.Fprintf(w, "%s{job_type=%q} %d\n", name, jt, seeded[jt])
	}
}

// WriteProm renders the metrics in Prometheus text format.
func (mt *Metrics) WriteProm(w io.Writer) {
	mt.mu.Lock()
	defer mt.mu.Unlock()

	writeCounterByType(w, "hpfserve_jobs_submitted_total",
		"Jobs admitted to the queue, by job type.", mt.submitted)

	fmt.Fprintln(w, "# HELP hpfserve_jobs_rejected_total Jobs rejected at admission, by reason.")
	fmt.Fprintln(w, "# TYPE hpfserve_jobs_rejected_total counter")
	for _, r := range sortedKeys(mt.rejected) {
		fmt.Fprintf(w, "hpfserve_jobs_rejected_total{reason=%q} %d\n", r, mt.rejected[r])
	}

	writeCounterByType(w, "hpfserve_jobs_completed_total",
		"Jobs finished successfully, by job type.", mt.completed)

	writeCounterByType(w, "hpfserve_jobs_failed_total",
		"Jobs that ended in error, by job type.", mt.failed)

	fmt.Fprintln(w, "# HELP hpfserve_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE hpfserve_queue_depth gauge")
	fmt.Fprintf(w, "hpfserve_queue_depth %d\n", mt.queueDepth)

	fmt.Fprintln(w, "# HELP hpfserve_inflight_jobs Jobs currently being solved.")
	fmt.Fprintln(w, "# TYPE hpfserve_inflight_jobs gauge")
	fmt.Fprintf(w, "hpfserve_inflight_jobs %d\n", mt.inflight)

	fmt.Fprintln(w, "# HELP hpfserve_batches_total Worker dispatches (a batch may carry several jobs).")
	fmt.Fprintln(w, "# TYPE hpfserve_batches_total counter")
	fmt.Fprintf(w, "hpfserve_batches_total %d\n", mt.batches)

	fmt.Fprintln(w, "# HELP hpfserve_stage_seconds Wall-clock latency per lifecycle stage, by job type.")
	fmt.Fprintln(w, "# TYPE hpfserve_stage_seconds histogram")
	for _, jt := range sortedKeys(mt.queueWait) {
		mt.queueWait[jt].write(w, "hpfserve_stage_seconds",
			fmt.Sprintf("stage=\"queue\",job_type=%q,", jt))
	}
	for _, jt := range sortedKeys(mt.runWall) {
		mt.runWall[jt].write(w, "hpfserve_stage_seconds",
			fmt.Sprintf("stage=\"solve\",job_type=%q,", jt))
	}

	fmt.Fprintln(w, "# HELP hpfserve_batch_occupancy Jobs coalesced per dispatched batch.")
	fmt.Fprintln(w, "# TYPE hpfserve_batch_occupancy histogram")
	mt.occupancy.write(w, "hpfserve_batch_occupancy", "")

	if mt.planStats != nil {
		st := mt.planStats()
		fmt.Fprintln(w, "# HELP hpfserve_plan_cache_hits_total Batch dispatches served from a cached prepared plan.")
		fmt.Fprintln(w, "# TYPE hpfserve_plan_cache_hits_total counter")
		fmt.Fprintf(w, "hpfserve_plan_cache_hits_total %d\n", st.Hits)
		fmt.Fprintln(w, "# HELP hpfserve_plan_cache_misses_total Batch dispatches that had to prepare a plan.")
		fmt.Fprintln(w, "# TYPE hpfserve_plan_cache_misses_total counter")
		fmt.Fprintf(w, "hpfserve_plan_cache_misses_total %d\n", st.Misses)
		fmt.Fprintln(w, "# HELP hpfserve_plan_cache_evictions_total Plans evicted under the byte budget.")
		fmt.Fprintln(w, "# TYPE hpfserve_plan_cache_evictions_total counter")
		fmt.Fprintf(w, "hpfserve_plan_cache_evictions_total %d\n", st.Evictions)
		fmt.Fprintln(w, "# HELP hpfserve_plan_cache_entries Plans currently cached.")
		fmt.Fprintln(w, "# TYPE hpfserve_plan_cache_entries gauge")
		fmt.Fprintf(w, "hpfserve_plan_cache_entries %d\n", st.Entries)
		fmt.Fprintln(w, "# HELP hpfserve_plan_cache_bytes Estimated resident bytes of cached plans.")
		fmt.Fprintln(w, "# TYPE hpfserve_plan_cache_bytes gauge")
		fmt.Fprintf(w, "hpfserve_plan_cache_bytes %d\n", st.Bytes)
	}

	fmt.Fprintln(w, "# HELP hpfserve_model_seconds_total Modeled machine time accumulated across runs.")
	fmt.Fprintln(w, "# TYPE hpfserve_model_seconds_total counter")
	kinds := make([]string, 0, len(mt.modelSeconds))
	for k := range mt.modelSeconds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "hpfserve_model_seconds_total{kind=%q} %g\n", k, mt.modelSeconds[k])
	}
}
