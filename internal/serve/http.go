// HTTP surface of the solver service. NewHandler wires the scheduler
// into a mux the daemon (cmd/hpfserve) and the tests both serve:
//
//	POST /jobs             submit a JobSpec; 202 + id, 429 on overflow
//	GET  /jobs/{id}        job status; ?wait=1[&timeout=30s] blocks
//	GET  /jobs/{id}/trace  Perfetto trace download (jobs with trace:true)
//	GET  /metrics          Prometheus text format
//	GET  /healthz          liveness (always 200 while the process runs)
//	GET  /readyz           readiness (503 once draining)
//
// POST /jobs accepts an optional X-Request-ID header (one is generated
// when absent) and echoes it on the response, so a request can be
// correlated across router→shard proxy hops and logs.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds a job submission (Matrix Market uploads can be
// large, but not unbounded).
const maxBodyBytes = 64 << 20

// defaultWaitTimeout bounds ?wait=1 long-polls.
const defaultWaitTimeout = 60 * time.Second

// NewHandler returns the service's HTTP handler.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(s, w, r) })
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleGet(s, w, r) })
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { handleTrace(s, w, r) })
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics().WriteProm(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness is distinct from liveness: a draining scheduler is
	// still alive (it answers status polls for in-flight jobs) but must
	// stop receiving new traffic, so load balancers watch /readyz.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// RequestIDHeader carries the correlation ID across proxy hops.
const RequestIDHeader = "X-Request-ID"

// EnsureRequestID returns the request's correlation ID, generating one
// when the client sent none.
func EnsureRequestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); id != "" {
		return id
	}
	var b [6]byte
	_, _ = rand.Read(b[:])
	return "req-" + hex.EncodeToString(b[:])
}

// submitResponse acknowledges an admitted job.
type submitResponse struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func handleSubmit(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	w.Header().Set(RequestIDHeader, EnsureRequestID(r))
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		retry := strconv.Itoa(int((s.RetryAfter() + time.Second - 1) / time.Second))
		var verr *ValidationError
		switch {
		case errors.As(err, &verr):
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrQueueFull):
			// Backpressure: the queue is at capacity. 429 + Retry-After
			// tells closed-loop clients when to come back.
			w.Header().Set("Retry-After", retry)
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retry)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, StatusURL: "/jobs/" + j.ID})
}

func handleGet(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wait := r.URL.Query().Get("wait"); wait != "" && wait != "0" && wait != "false" {
		timeout := defaultWaitTimeout
		if ts := r.URL.Query().Get("timeout"); ts != "" {
			d, err := time.ParseDuration(ts)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad timeout: " + err.Error()})
				return
			}
			timeout = d
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		v, err := s.Wait(ctx, id)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, v)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			// Long-poll expired: report the current state instead.
			if v, ok := s.View(id); ok {
				writeJSON(w, http.StatusOK, v)
				return
			}
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		default:
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		}
		return
	}
	v, ok := s.View(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func handleTrace(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.View(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	if v.State == StateQueued || v.State == StateRunning {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "job " + id + " still " + string(v.State)})
		return
	}
	tr, ok := s.TraceJSON(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job " + id + " has no trace (submit with trace:true)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.trace.json"`)
	_, _ = w.Write(tr)
}
