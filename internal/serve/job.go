// The job model of the solver service: what a client may ask for, how
// a request is validated and normalized, and the batch key under which
// same-matrix jobs coalesce.
package serve

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"hpfcg/internal/fault"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/mfree"
	"hpfcg/internal/mg"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// MGSpec sizes an hpcg job's stencil problem: each rank owns an
// nx × ny × nz brick of the 27-point operator, solved by V-cycle
// multigrid-preconditioned CG (mg.Spec mirrors the fields; zero
// levels/smooths select the package defaults).
type MGSpec struct {
	Nx      int `json:"nx"`
	Ny      int `json:"ny"`
	Nz      int `json:"nz"`
	Levels  int `json:"levels,omitempty"`
	Smooths int `json:"smooths,omitempty"`
	// Coarse selects the coarsest-grid treatment: "" (auto), "smooth"
	// (HPCG-convention smoother sweeps) or "direct" (dense Cholesky).
	Coarse string `json:"coarse,omitempty"`
}

// spec converts to the mg package's form with defaults applied.
func (m *MGSpec) spec() mg.Spec {
	return mg.Spec{Nx: m.Nx, Ny: m.Ny, Nz: m.Nz, Levels: m.Levels, Smooths: m.Smooths, Coarse: m.Coarse}.WithDefaults()
}

// StencilSpec sizes a stencil job's matrix-free problem: the global
// grid dimensions and the stencil coefficients. Unlike MGSpec the
// dimensions are global — the service splits the grid into z-slabs
// over NP ranks. Zero center and off select the canonical Laplacian
// pair for the stencil kind.
type StencilSpec struct {
	// Stencil is "5pt" (2-D, nx × ny) or "27pt" (3-D, nx × ny × nz).
	Stencil string  `json:"stencil"`
	Nx      int     `json:"nx"`
	Ny      int     `json:"ny"`
	Nz      int     `json:"nz,omitempty"`
	Center  float64 `json:"center,omitempty"`
	Off     float64 `json:"off,omitempty"`
}

// spec converts to the mfree package's form with defaults applied.
func (st *StencilSpec) spec() mfree.Spec {
	return mfree.Spec{Stencil: st.Stencil, Nx: st.Nx, Ny: st.Ny, Nz: st.Nz, Center: st.Center, Off: st.Off}.WithDefaults()
}

// JobSpec is one solve request. The matrix comes either from a
// built-in generator spec (Matrix, e.g. "laplace2d:32:32") or from an
// inline Matrix Market upload (MatrixMarket, which wins when both are
// set). The right-hand side is either explicit (RHS) or the
// deterministic sparse.RandomVector of Seed, so a request is fully
// reproducible from its JSON.
type JobSpec struct {
	// Matrix is a generator spec (see sparse.GeneratorByName).
	Matrix string `json:"matrix,omitempty"`
	// MatrixMarket is an inline Matrix Market coordinate document.
	MatrixMarket string `json:"matrix_market,omitempty"`
	// Layout selects the execution: "csr" (default), "csc-serial",
	// "csc-merge" or "balanced" (see hpfexec.Layouts).
	Layout string `json:"layout,omitempty"`
	// Method is the solver: "cg" (the default) solves the job's matrix;
	// "hpcg" runs V-cycle multigrid-preconditioned CG on the 27-point
	// stencil sized by MG; "stencil" runs matrix-free CG on the
	// geometric stencil sized by Stencil (no matrix field applies to
	// either generated problem).
	Method string `json:"method,omitempty"`
	// MG sizes the stencil problem of an hpcg job.
	MG *MGSpec `json:"mg,omitempty"`
	// Stencil sizes the matrix-free problem of a stencil job.
	Stencil *StencilSpec `json:"stencil,omitempty"`
	// SStep is the communication-avoiding blocking factor: 0 (or
	// absent) lets the cost model choose per machine shape, 1 forces
	// plain CG, 2..hpfexec.MaxSStep fixes the factor (CSR layouts
	// only). Resilient jobs always run plain CG — the checkpoint
	// machinery is per-iteration.
	SStep int `json:"sstep,omitempty"`
	// Pipelined runs the overlap-based pipelined CG solver: one
	// nonblocking two-word allreduce per iteration, hidden behind the
	// mat-vec on the modeled clock. CSR layouts and stencil jobs only;
	// mutually exclusive with s-step blocking (the two attack the same
	// latency term), resilient mode and hpcg.
	Pipelined bool `json:"pipelined,omitempty"`
	// NP is the virtual processor count (default 4).
	NP int `json:"np,omitempty"`
	// Topology is "hypercube" (default), "ring", "mesh2d" or "full".
	Topology string `json:"topology,omitempty"`
	// Tol is the relative residual tolerance (0 -> 1e-10).
	Tol float64 `json:"tol,omitempty"`
	// MaxIter caps iterations (0 -> 2n).
	MaxIter int `json:"maxiter,omitempty"`
	// Seed generates the right-hand side when RHS is empty (0 -> 42).
	Seed int64 `json:"seed,omitempty"`
	// RHS is an explicit right-hand side (length n).
	RHS []float64 `json:"rhs,omitempty"`
	// Fault is a fault-injection spec (fault.Parse syntax); it forces
	// the job onto a dedicated machine.
	Fault string `json:"fault,omitempty"`
	// Resilient runs the solve under checkpoint/restart
	// (hpfexec.SolveCGResilient) so injected crashes are survived.
	Resilient bool `json:"resilient,omitempty"`
	// CkptInterval checkpoints every N iterations (with Resilient).
	CkptInterval int `json:"ckpt_interval,omitempty"`
	// MaxRestarts bounds restart attempts (with Resilient).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// TimeoutMS aborts a deadlocked solve after this much wall time
	// (hpfexec.SolveCGTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace captures a Perfetto/Chrome trace of the solve, downloadable
	// from /jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// normalize fills defaults in place.
func (sp *JobSpec) normalize() {
	if sp.Layout == "" {
		sp.Layout = "csr"
	}
	if sp.Method == "" {
		sp.Method = "cg"
	}
	if sp.NP == 0 {
		sp.NP = 4
	}
	if sp.Topology == "" {
		sp.Topology = "hypercube"
	}
	if sp.Seed == 0 {
		sp.Seed = 42
	}
	if sp.Resilient {
		sp.SStep = 1
	}
	sp.Matrix = strings.TrimSpace(sp.Matrix)
}

// fieldErr names the offending request field, so the HTTP 400 a
// *ValidationError maps to tells the client exactly what to fix.
func fieldErr(field, format string, args ...any) error {
	return fmt.Errorf("serve: field %s: %s", field, fmt.Sprintf(format, args...))
}

// validate rejects requests the service cannot run, centrally and
// with field-named errors — numeric bounds (sstep, np, dims, levels,
// tolerances) fail here at admission time with a 400 instead of deep
// in a worker. Matrix content errors (bad generator spec, malformed
// Matrix Market) still surface when the job runs; validate only
// checks what is knowable for free.
func (sp *JobSpec) validate(maxNP int) error {
	switch sp.Method {
	case "cg":
		if sp.Matrix == "" && sp.MatrixMarket == "" {
			return fieldErr("matrix", "job needs matrix or matrix_market")
		}
		if sp.MG != nil {
			return fieldErr("mg", "only applies to hpcg jobs")
		}
		if sp.Stencil != nil {
			return fieldErr("stencil", "only applies to stencil jobs")
		}
	case "hpcg":
		if err := sp.validateMG(); err != nil {
			return err
		}
	case "stencil":
		if err := sp.validateStencil(); err != nil {
			return err
		}
	default:
		return fieldErr("method", "unsupported %q (cg, hpcg and stencil are served)", sp.Method)
	}
	valid := false
	for _, l := range hpfexec.Layouts() {
		if sp.Layout == l {
			valid = true
		}
	}
	if !valid {
		return fieldErr("layout", "unknown %q (have %v)", sp.Layout, hpfexec.Layouts())
	}
	if sp.NP < 1 || sp.NP > maxNP {
		return fieldErr("np", "%d outside [1,%d]", sp.NP, maxNP)
	}
	if sp.SStep < 0 || sp.SStep > hpfexec.MaxSStep {
		return fieldErr("sstep", "%d outside [0,%d]", sp.SStep, hpfexec.MaxSStep)
	}
	if sp.SStep >= 2 && strings.HasPrefix(sp.Layout, "csc") {
		return fieldErr("sstep", "%d needs a CSR layout, got %q", sp.SStep, sp.Layout)
	}
	if sp.Pipelined {
		if strings.HasPrefix(sp.Layout, "csc") {
			return fieldErr("pipelined", "needs a CSR layout, got %q", sp.Layout)
		}
		if sp.SStep >= 2 {
			return fieldErr("pipelined", "cannot combine with s-step blocking (sstep=%d)", sp.SStep)
		}
		if sp.Resilient {
			return fieldErr("pipelined", "resilient mode checkpoints the plain recurrence only")
		}
	}
	if _, err := topology.ByName(sp.Topology); err != nil {
		return err
	}
	if sp.Tol < 0 {
		return fieldErr("tol", "negative tolerance %g", sp.Tol)
	}
	if sp.MaxIter < 0 {
		return fieldErr("maxiter", "negative bound %d", sp.MaxIter)
	}
	if sp.TimeoutMS < 0 {
		return fieldErr("timeout_ms", "negative bound %d", sp.TimeoutMS)
	}
	if sp.CkptInterval < 0 {
		return fieldErr("ckpt_interval", "negative bound %d", sp.CkptInterval)
	}
	if sp.MaxRestarts < 0 {
		return fieldErr("max_restarts", "negative bound %d", sp.MaxRestarts)
	}
	if sp.Fault != "" {
		if _, err := fault.Parse(sp.Fault); err != nil {
			return err
		}
	}
	return nil
}

// validateMG checks the hpcg job shape: the stencil dims and V-cycle
// bounds, and the per-matrix knobs that have no meaning for a
// generated stencil problem.
func (sp *JobSpec) validateMG() error {
	if sp.MG == nil {
		return fieldErr("mg", "hpcg jobs need the mg block ({nx,ny,nz,...})")
	}
	for _, d := range []struct {
		name string
		v    int
	}{{"mg.nx", sp.MG.Nx}, {"mg.ny", sp.MG.Ny}, {"mg.nz", sp.MG.Nz}} {
		if d.v < 1 || d.v > mg.MaxDim {
			return fieldErr(d.name, "%d outside [1,%d]", d.v, mg.MaxDim)
		}
	}
	if sp.MG.Levels < 0 || sp.MG.Levels > mg.MaxLevels {
		return fieldErr("mg.levels", "%d outside [0,%d] (0 selects %d)", sp.MG.Levels, mg.MaxLevels, mg.DefaultLevels)
	}
	if sp.MG.Smooths < 0 || sp.MG.Smooths > mg.MaxSmooths {
		return fieldErr("mg.smooths", "%d outside [0,%d] (0 selects %d)", sp.MG.Smooths, mg.MaxSmooths, mg.DefaultSmooths)
	}
	switch sp.MG.Coarse {
	case "", "smooth", "direct":
	default:
		return fieldErr("mg.coarse", "unsupported %q (auto %q, smooth, direct)", sp.MG.Coarse, "")
	}
	if sp.Stencil != nil {
		return fieldErr("stencil", "only applies to stencil jobs")
	}
	if sp.Matrix != "" || sp.MatrixMarket != "" {
		return fieldErr("matrix", "does not apply to hpcg jobs (the stencil is generated)")
	}
	if sp.SStep != 0 {
		return fieldErr("sstep", "does not apply to hpcg jobs")
	}
	if sp.Pipelined {
		return fieldErr("pipelined", "does not apply to hpcg jobs (the V-cycle is the inner solve)")
	}
	if sp.Fault != "" || sp.Resilient {
		return fieldErr("fault", "fault injection and resilient mode are not supported for hpcg jobs")
	}
	if sp.Trace || sp.TimeoutMS != 0 {
		return fieldErr("trace", "tracing and timeouts are not supported for hpcg jobs")
	}
	return nil
}

// validateStencil checks the stencil job shape: the spec itself (the
// mfree bounds, coefficient finiteness), that the grid admits a z-slab
// per rank, and the per-matrix knobs that have no meaning for a
// generated matrix-free problem.
func (sp *JobSpec) validateStencil() error {
	if sp.Stencil == nil {
		return fieldErr("stencil", "stencil jobs need the stencil block ({stencil,nx,ny,...})")
	}
	st := sp.Stencil.spec()
	if err := st.Validate(); err != nil {
		return fieldErr("stencil", "%v", err)
	}
	if sp.NP >= 1 {
		if _, err := st.Brick(sp.NP); err != nil {
			return fieldErr("stencil", "%v", err)
		}
	}
	if sp.MG != nil {
		return fieldErr("mg", "only applies to hpcg jobs")
	}
	if sp.Matrix != "" || sp.MatrixMarket != "" {
		return fieldErr("matrix", "does not apply to stencil jobs (the operator is never assembled)")
	}
	if sp.SStep != 0 {
		return fieldErr("sstep", "does not apply to stencil jobs")
	}
	if sp.Fault != "" || sp.Resilient {
		return fieldErr("fault", "fault injection and resilient mode are not supported for stencil jobs")
	}
	if sp.Trace || sp.TimeoutMS != 0 {
		return fieldErr("trace", "tracing and timeouts are not supported for stencil jobs")
	}
	return nil
}

// jobType labels the job for metrics: "cg", "hpcg" or "stencil".
func (sp *JobSpec) jobType() string {
	switch sp.Method {
	case "hpcg", "stencil":
		return sp.Method
	}
	return "cg"
}

// batchable reports whether the job may coalesce with same-matrix
// jobs. Fault injection, tracing, timeouts and resilient mode all
// need a run (or a machine attachment) of their own.
func (sp *JobSpec) batchable() bool {
	return sp.Fault == "" && !sp.Resilient && sp.TimeoutMS == 0 && !sp.Trace
}

// batchKey identifies the shared setup two jobs can amortize: the same
// matrix, assembled the same way, on the same machine shape. Tolerance,
// iteration caps, seeds and explicit right-hand sides stay per-job.
type batchKey struct {
	matrix   string
	layout   string
	np       int
	topology string
	// sstep is the requested blocking factor: jobs asking for different
	// factors run different solvers and must not share a dispatch.
	sstep int
	// pipelined jobs run the overlap solver: a different recurrence,
	// never coalesced with blocking-clock jobs.
	pipelined bool
}

func (sp *JobSpec) key() batchKey {
	if sp.Method == "hpcg" {
		return batchKey{matrix: "hpcg:" + sp.MG.spec().Key(), layout: sp.Layout, np: sp.NP, topology: sp.Topology}
	}
	if sp.Method == "stencil" {
		return batchKey{matrix: "stencil:" + sp.Stencil.spec().Key(), layout: sp.Layout, np: sp.NP, topology: sp.Topology, pipelined: sp.Pipelined}
	}
	mat := "gen:" + sp.Matrix
	if sp.MatrixMarket != "" {
		h := fnv.New64a()
		h.Write([]byte(sp.MatrixMarket))
		mat = fmt.Sprintf("mm:%016x", h.Sum64())
	}
	return batchKey{matrix: mat, layout: sp.Layout, np: sp.NP, topology: sp.Topology, sstep: sp.SStep, pipelined: sp.Pipelined}
}

// ContentHash returns the canonical content digest of the job's
// matrix: generator specs are hashed by their parameters (the matrix
// need not be generated), Matrix Market uploads by the canonical CSR
// digest, so two uploads of the same matrix — reordered entries,
// different whitespace — digest identically. The cluster router shards
// by this hash and the plan registry keys on it, which is what lands
// repeat traffic on the node already holding the prepared plan.
func (sp *JobSpec) ContentHash() (string, error) {
	h, _, err := sp.contentHashMatrix()
	return h, err
}

// contentHashMatrix computes the content hash and, when hashing had to
// assemble the matrix anyway (Matrix Market uploads), returns it so
// the caller does not parse twice. Generator specs return a nil
// matrix — on a plan-cache hit it is never built at all.
func (sp *JobSpec) contentHashMatrix() (string, *sparse.CSR, error) {
	if sp.Method == "hpcg" {
		// The stencil problem is fully determined by its spec string;
		// no matrix is ever assembled.
		return sparse.HashGeneratorSpec("hpcg:" + sp.MG.spec().Key()), nil, nil
	}
	if sp.Method == "stencil" {
		// Likewise matrix-free: the operator's content is its spec.
		return sparse.HashGeneratorSpec("stencil:" + sp.Stencil.spec().Key()), nil, nil
	}
	if sp.MatrixMarket != "" {
		A, err := sparse.ReadMatrixMarket(strings.NewReader(sp.MatrixMarket))
		if err != nil {
			return "", nil, fmt.Errorf("matrix: %w", err)
		}
		return sparse.ContentHash(A), A, nil
	}
	return sparse.HashGeneratorSpec(sp.Matrix), nil, nil
}

// planKey is the registry key: the matrix content plus everything that
// shapes the prepared plan (layout, machine size, topology, and the
// requested s-step factor — a widened powers schedule is a different
// cached artifact than the single-level ghost schedule).
func (sp *JobSpec) planKey(hash string) string {
	if sp.Method == "hpcg" {
		s := sp.MG.spec()
		return fmt.Sprintf("%s|hpcg|%d|%s|L%d:S%d", hash, sp.NP, sp.Topology, s.Levels, s.Smooths)
	}
	if sp.Method == "stencil" {
		return fmt.Sprintf("%s|stencil|%d|%s%s", hash, sp.NP, sp.Topology, pipeSuffix(sp.Pipelined))
	}
	return fmt.Sprintf("%s|%s|%d|%s|s%d%s", hash, sp.Layout, sp.NP, sp.Topology, sp.SStep, pipeSuffix(sp.Pipelined))
}

// pipeSuffix distinguishes pipelined cached plans: the handle carries
// the solver choice, so an overlap plan must never serve a blocking
// request (or vice versa) even over the same matrix content.
func pipeSuffix(pipelined bool) string {
	if pipelined {
		return "|pipe"
	}
	return ""
}

// buildMatrix assembles the job's matrix.
func (sp *JobSpec) buildMatrix() (*sparse.CSR, error) {
	if sp.MatrixMarket != "" {
		return sparse.ReadMatrixMarket(strings.NewReader(sp.MatrixMarket))
	}
	return sparse.GeneratorByName(sp.Matrix)
}

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued -> Running -> Done | Failed. Jobs rejected at
// admission are never stored.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one admitted request. Mutable fields are guarded by the
// scheduler's lock; read them through Scheduler.View or after Done.
type Job struct {
	ID   string
	Spec JobSpec

	state     State
	err       string
	result    *JobResult
	traceJSON []byte

	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}

	key       batchKey
	batchable bool
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobResult is the solver outcome the service reports.
type JobResult struct {
	X          []float64 `json:"x,omitempty"`
	Converged  bool      `json:"converged"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Strategy   string    `json:"strategy"`
	// ModelTime is the batch run's modeled makespan;
	// SolveModelTime this job's own modeled span within it, and
	// SetupModelTime the shared setup the batch paid once.
	ModelTime      float64 `json:"model_time"`
	SolveModelTime float64 `json:"solve_model_time"`
	SetupModelTime float64 `json:"setup_model_time"`
	// CommTime is the batch run's modeled communication time.
	CommTime float64 `json:"comm_time"`
	// BatchSize is how many jobs shared the run (1 = solo).
	BatchSize int `json:"batch_size"`
	// PlanCacheHit reports that the solve ran from a warm registry
	// plan: no partitioning, no inspector exchange, SetupModelTime 0.
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
	// SStep is the blocking factor the solve actually ran with (the
	// cost model's choice when the request left it at 0); 1 is plain
	// CG. Replacements counts explicit residual replacements: for
	// s-step runs a nonzero value means the stability guard tripped
	// and the tail of the solve fell back to plain CG; resilient runs
	// count their restore-time replacements here.
	SStep        int `json:"sstep,omitempty"`
	Replacements int `json:"replacements,omitempty"`
	// Pipelined reports the solve ran the overlap-based pipelined
	// solver; Reductions is its allreduce round count (setup plus one
	// hidden round per iteration plus confirmation), the number a
	// latency-bound client wants to compare against 2x iterations for
	// plain CG.
	Pipelined  bool `json:"pipelined,omitempty"`
	Reductions int  `json:"reductions,omitempty"`
	// Attempts/Failures report resilient-mode recovery (0 otherwise).
	Attempts int `json:"attempts,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Levels is the clamped multigrid hierarchy depth an hpcg job ran
	// with (0 for cg jobs).
	Levels int `json:"levels,omitempty"`
	// ModelGFlops is the HPCG-style figure of merit: the batch run's
	// charged floating-point operations over its modeled makespan, in
	// GFLOP/s of the modeled machine.
	ModelGFlops float64 `json:"model_gflops,omitempty"`
}

// JobView is the externally visible snapshot of a job.
type JobView struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	HasTrace  bool       `json:"has_trace,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   time.Time  `json:"started,omitempty"`
	Finished  time.Time  `json:"finished,omitempty"`
	// QueueSeconds and RunSeconds are wall-clock stage latencies.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// view snapshots the job; the caller holds the scheduler lock.
func (j *Job) view() JobView {
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Error:     j.err,
		Result:    j.result,
		HasTrace:  len(j.traceJSON) > 0,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if !j.started.IsZero() {
		v.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		v.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return v
}
