// Tests for the stencil job type: matrix-free CG end to end through
// the scheduler, zero modeled setup cold AND warm, batching and
// plan-cache warmth, field-named admission errors, and the stencil
// job_type metric series.
package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func stencilJob() JobSpec {
	return JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 10, Ny: 6}, NP: 2}
}

// TestStencilJobEndToEnd: a stencil job converges through the service,
// reports the matrix-free strategy, and — the subsystem's headline —
// pays zero modeled setup on its very first (cold) dispatch.
func TestStencilJobEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(stencilJob())
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	r := v.Result
	if !r.Converged {
		t.Fatalf("did not converge: %+v", r)
	}
	if !strings.Contains(r.Strategy, "mfree") {
		t.Errorf("strategy %q, want a matrix-free mode", r.Strategy)
	}
	if r.SetupModelTime != 0 {
		t.Errorf("cold setup_model_time = %g, want exactly 0", r.SetupModelTime)
	}
	if want := 10 * 6; len(r.X) != want {
		t.Errorf("len(x) = %d, want %d", len(r.X), want)
	}
}

// TestStencilBatchingAndWarmPlan: same-spec stencil jobs coalesce, and
// a follow-up request runs from the cached handle (plan_cache_hit) with
// setup still exactly zero and bit-identical answers.
func TestStencilBatchingAndWarmPlan(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 8, StartPaused: true})
	defer s.Drain(testCtx(t))
	const njobs = 3
	ids := make([]string, njobs)
	for k := 0; k < njobs; k++ {
		sp := stencilJob()
		sp.Seed = 7
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[k] = j.ID
	}
	s.Resume()
	var x0 []float64
	for k, id := range ids {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("job %d: state %s (err %q)", k, v.State, v.Error)
		}
		if v.Result.BatchSize != njobs {
			t.Fatalf("job %d: batch size %d, want %d", k, v.Result.BatchSize, njobs)
		}
		if v.Result.SetupModelTime != 0 {
			t.Fatalf("job %d: setup_model_time = %g, want exactly 0", k, v.Result.SetupModelTime)
		}
		if k == 0 {
			x0 = v.Result.X
			continue
		}
		for i := range x0 {
			if v.Result.X[i] != x0[i] {
				t.Fatalf("job %d: x[%d] = %v, job 0 %v", k, i, v.Result.X[i], x0[i])
			}
		}
	}

	// Second window against the same stencil: the cached handle is warm.
	sp := stencilJob()
	sp.Seed = 7
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("warm job: state %s (err %q)", v.State, v.Error)
	}
	if !v.Result.PlanCacheHit {
		t.Error("warm job: plan_cache_hit = false")
	}
	if v.Result.SetupModelTime != 0 {
		t.Errorf("warm job: setup_model_time = %g, want exactly 0", v.Result.SetupModelTime)
	}
	for i := range x0 {
		if v.Result.X[i] != x0[i] {
			t.Fatalf("warm job: x[%d] = %v, cold %v (warmth broke bit-identity)", i, v.Result.X[i], x0[i])
		}
	}
	if st := s.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("plan cache recorded no hits: %+v", st)
	}
}

// TestStencilValidationFieldNames: malformed stencil specs are rejected
// at admission with a ValidationError naming the offending field — the
// geometry check (slab thinner than the machine) included.
func TestStencilValidationFieldNames(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	cases := []struct {
		spec  JobSpec
		field string
	}{
		{JobSpec{Method: "stencil"}, "stencil"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "9pt", Nx: 4, Ny: 4}}, "stencil"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 4, Ny: 0}}, "stencil"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 2, Ny: 8}, NP: 4}, "stencil"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}, Matrix: "laplace1d:8"}, "matrix"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}, SStep: 2}, "sstep"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}, MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}}, "mg"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}, Trace: true}, "trace"},
		{JobSpec{Method: "stencil", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}, Fault: "crash:1:0"}, "fault"},
		{JobSpec{Matrix: "laplace1d:8", Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}}, "stencil"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4}, Stencil: &StencilSpec{Stencil: "5pt", Nx: 8, Ny: 8}}, "stencil"},
		{JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Coarse: "cholesky"}}, "mg.coarse"},
	}
	for i, c := range cases {
		_, err := s.Submit(c.spec)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("case %d: err = %v, want ValidationError", i, err)
			continue
		}
		if !strings.Contains(err.Error(), "field "+c.field) {
			t.Errorf("case %d: error %q does not name field %q", i, err, c.field)
		}
	}
}

// TestStencilMetricsJobType: stencil traffic lands in its own job_type
// series, and the series is exported (zero) before first traffic.
func TestStencilMetricsJobType(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))

	var buf bytes.Buffer
	s.Metrics().WriteProm(&buf)
	if !strings.Contains(buf.String(), `hpfserve_jobs_submitted_total{job_type="stencil"} 0`) {
		t.Errorf("stencil series not seeded before traffic:\n%s", buf.String())
	}

	j, err := s.Submit(stencilJob())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s.Wait(testCtx(t), j.ID); err != nil || v.State != StateDone {
		t.Fatalf("job failed: %v %+v", err, v)
	}
	buf.Reset()
	s.Metrics().WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		`hpfserve_jobs_submitted_total{job_type="stencil"} 1`,
		`hpfserve_jobs_completed_total{job_type="stencil"} 1`,
		`hpfserve_stage_seconds_bucket{stage="solve",job_type="stencil",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

// TestStencilRegistryDisabled: with the plan cache off the stencil path
// still runs per dispatch — and setup is still exactly zero, because
// there is no inspector to skip in the first place.
func TestStencilRegistryDisabled(t *testing.T) {
	s := New(Options{Workers: 1, PlanCacheBytes: -1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(stencilJob())
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	if v.Result.PlanCacheHit {
		t.Error("plan_cache_hit with the registry disabled")
	}
	if v.Result.SetupModelTime != 0 {
		t.Errorf("setup_model_time = %g, want exactly 0", v.Result.SetupModelTime)
	}
}

// TestMGCoarsePassThrough: the mg.coarse knob reaches the hierarchy —
// explicit smooth and direct produce different plan keys, so they never
// share a cached plan.
func TestMGCoarsePassThrough(t *testing.T) {
	smooth := JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "smooth"}, NP: 2}
	direct := JobSpec{Method: "hpcg", MG: &MGSpec{Nx: 4, Ny: 4, Nz: 4, Levels: 3, Coarse: "direct"}, NP: 2}
	smooth.normalize()
	direct.normalize()
	if smooth.key() == direct.key() {
		t.Error("smooth and direct coarse modes share a batch key")
	}
	hs, err := smooth.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	hd, err := direct.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if hs == hd {
		t.Error("smooth and direct coarse modes share a content hash")
	}

	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(direct)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("coarse=direct job: state %s (err %q)", v.State, v.Error)
	}
}
