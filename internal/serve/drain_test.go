package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGracefulDrain is the shutdown contract: in-flight jobs finish,
// queued jobs are rejected, workers exit, and admission stays closed.
// The BatchStarted hook holds the first batch in flight at a known
// point so the test controls exactly what Drain sees.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{
		Workers:     1,
		StartPaused: true,
		MaxBatch:    1, // keep the three jobs as three dispatches
		BatchStarted: func(jobs []*Job) {
			started <- struct{}{}
			<-release
		},
	})

	spec := JobSpec{Matrix: "laplace1d:64", NP: 2}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	s.Resume()
	<-started // j1 is in flight, j2/j3 still queued

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	// Drain rejects the queued jobs synchronously (before waiting on the
	// in-flight batch); their done channels close with a rejection.
	for _, j := range []*Job{j2, j3} {
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("%s not rejected while draining", j.ID)
		}
		v, _ := s.View(j.ID)
		if v.State != StateFailed || !strings.Contains(v.Error, "draining") {
			t.Fatalf("%s: state %s err %q, want failed/draining", j.ID, v.State, v.Error)
		}
	}

	// The in-flight job is untouched and completes once released.
	if v, _ := s.View(j1.ID); v.State != StateRunning {
		t.Fatalf("in-flight job state %s, want running", v.State)
	}
	close(release)

	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	v1, _ := s.View(j1.ID)
	if v1.State != StateDone || !v1.Result.Converged {
		t.Fatalf("in-flight job after drain: state %s result %+v", v1.State, v1.Result)
	}

	// Admission stays closed.
	if _, err := s.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestDrainClosesHTTPListener: the daemon's shutdown order — drain the
// scheduler, then close the listener — leaves a window where submits
// get 503 + Retry-After, after which the listener closes cleanly.
func TestDrainClosesHTTPListener(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(s))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, _ := postJob(t, ts, JobSpec{Matrix: "laplace1d:32", NP: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	ts.Close() // listener closes with workers already gone
	if _, err := http.Get(ts.URL + "/healthz"); err == nil {
		t.Fatal("listener still accepting after close")
	}
}

// TestDrainIdempotent: calling Drain twice is safe and both return.
func TestDrainIdempotent(t *testing.T) {
	s := New(Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
