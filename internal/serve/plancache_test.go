package serve

import (
	"context"
	"testing"
	"time"
)

// TestPlanCacheWarmHit: two sequential submissions of the same matrix
// must produce a registry hit, a warm second solve with zero modeled
// setup, and bit-identical answers.
func TestPlanCacheWarmHit(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 1})
	defer s.Drain(testCtx(t))
	spec := JobSpec{Matrix: "laplace2d:12:12", NP: 4, Seed: 5}

	run := func() JobView {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(testCtx(t), j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("state %s (%s)", v.State, v.Error)
		}
		return v
	}

	cold := run()
	if cold.Result.PlanCacheHit {
		t.Fatal("first solve reported a plan-cache hit")
	}
	if cold.Result.SetupModelTime <= 0 {
		t.Fatalf("cold setup %g, want > 0", cold.Result.SetupModelTime)
	}

	warm := run()
	if !warm.Result.PlanCacheHit {
		t.Fatal("second solve missed the plan cache")
	}
	if warm.Result.SetupModelTime != 0 {
		t.Fatalf("warm setup %g, want exactly 0", warm.Result.SetupModelTime)
	}
	if len(cold.Result.X) != len(warm.Result.X) {
		t.Fatal("solution length changed")
	}
	for i := range cold.Result.X {
		if cold.Result.X[i] != warm.Result.X[i] {
			t.Fatalf("x[%d] differs on cache hit: %v vs %v", i, cold.Result.X[i], warm.Result.X[i])
		}
	}

	st := s.PlanCacheStats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("registry stats %+v, want >=1 hit and >=1 miss", st)
	}
}

// TestPlanCacheHitAcrossMatrixMarketFormats: two uploads of the same
// matrix with different entry order must share one cached plan (the
// content hash is the canonical CSR digest, not the document bytes).
func TestPlanCacheHitAcrossMatrixMarketFormats(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 1})
	defer s.Drain(testCtx(t))
	doc1 := `%%MatrixMarket matrix coordinate real general
3 3 5
1 1 2.0
2 2 2.0
3 3 2.0
1 2 -1.0
2 1 -1.0
`
	doc2 := `%%MatrixMarket matrix coordinate real general
3 3 5
2 1 -1.0
1 1 2.0
3 3 2.0
1 2 -1.0
2 2 2.0
`
	for i, doc := range []string{doc1, doc2} {
		j, err := s.Submit(JobSpec{MatrixMarket: doc, NP: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(testCtx(t), j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("upload %d: %s (%s)", i, v.State, v.Error)
		}
		if hit := v.Result.PlanCacheHit; hit != (i == 1) {
			t.Fatalf("upload %d: plan_cache_hit=%v", i, hit)
		}
	}
}

// TestPlanCacheDisabled: PlanCacheBytes < 0 turns the registry off and
// the service still solves correctly through the uncached path.
func TestPlanCacheDisabled(t *testing.T) {
	s := New(Options{Workers: 1, PlanCacheBytes: -1})
	defer s.Drain(testCtx(t))
	for i := 0; i < 2; i++ {
		j, err := s.Submit(JobSpec{Matrix: "banded:64:3", NP: 2, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(testCtx(t), j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone || !v.Result.Converged {
			t.Fatalf("job %d: %s (%s)", i, v.State, v.Error)
		}
		if v.Result.PlanCacheHit {
			t.Fatal("cache hit reported with cache disabled")
		}
	}
	if st := s.PlanCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", st)
	}
}

// TestPlanCacheDistinctMatricesDistinctPlans: different content hashes
// must not collide in the registry.
func TestPlanCacheDistinctMatricesDistinctPlans(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 1})
	defer s.Drain(testCtx(t))
	for _, m := range []string{"laplace2d:8:8", "laplace2d:8:9", "banded:64:2"} {
		j, err := s.Submit(JobSpec{Matrix: m, NP: 2})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Wait(testCtx(t), j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("%s: %s (%s)", m, v.State, v.Error)
		}
		if v.Result.PlanCacheHit {
			t.Fatalf("%s: unexpected cache hit", m)
		}
	}
	st := s.PlanCacheStats()
	if st.Entries != 3 || st.Hits != 0 {
		t.Fatalf("registry stats %+v, want 3 entries and 0 hits", st)
	}
}

// TestDrainKeepsPlanCacheReadable: draining must not deadlock against
// an in-flight registry run, and the batch that was already dispatched
// still finishes through the cached-plan path.
func TestDrainKeepsPlanCacheReadable(t *testing.T) {
	started := make(chan []*Job, 1)
	s := New(Options{
		Workers:     1,
		StartPaused: true,
		BatchStarted: func(jobs []*Job) {
			select {
			case started <- jobs:
			default:
			}
		},
	})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(JobSpec{Matrix: "laplace2d:10:10", NP: 2, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	s.Resume()
	inflight := <-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range inflight {
		if v, ok := s.View(j.ID); !ok || v.State != StateDone {
			t.Fatalf("in-flight job %s did not finish across drain", j.ID)
		}
	}
	_ = ids
}
