package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// directSolve runs the same spec straight through hpfexec, bypassing
// the service — the bit-identity reference.
func directSolve(t *testing.T, spec JobSpec) *hpfexec.Result {
	t.Helper()
	spec.normalize()
	A, err := spec.buildMatrix()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hpfexec.PlanForLayout(spec.Layout, spec.NP, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	b := spec.RHS
	if len(b) == 0 {
		b = sparse.RandomVector(A.NRows, spec.Seed)
	}
	topo, err := topology.ByName(spec.Topology)
	if err != nil {
		t.Fatal(err)
	}
	m := comm.NewMachine(spec.NP, topo, topology.DefaultCostParams())
	res, err := hpfexec.SolveCG(m, plan, A, b, core.Options{Tol: spec.Tol, MaxIter: spec.MaxIter})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJobBitIdenticalToDirect is the acceptance check: a job through
// the scheduler returns exactly the bits hpfexec.SolveCG produces for
// the same spec and seed.
func TestJobBitIdenticalToDirect(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	// SStep pinned to 1: the reference is the plain-CG SolveCG, and the
	// service default (0) would auto-select an s-step factor.
	spec := JobSpec{Matrix: "banded:128:4", NP: 4, Seed: 11, SStep: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	if !v.Result.Converged {
		t.Fatalf("did not converge: %+v", v.Result)
	}
	want := directSolve(t, spec)
	if len(v.Result.X) != len(want.X) {
		t.Fatalf("x length %d != %d", len(v.Result.X), len(want.X))
	}
	for i := range want.X {
		if v.Result.X[i] != want.X[i] {
			t.Fatalf("x[%d] service %v != direct %v (bit-identity broken)", i, v.Result.X[i], want.X[i])
		}
	}
	if v.Result.Iterations != want.Stats.Iterations || v.Result.Strategy != want.Strategy.String() {
		t.Errorf("stats drifted: %+v vs %v/%v", v.Result, want.Stats, want.Strategy)
	}
}

// TestBatchCoalescingBitIdentical: same-matrix jobs submitted together
// coalesce into one batch, and every RHS's answer still matches its
// solo solve bit-for-bit.
func TestBatchCoalescingBitIdentical(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 8, StartPaused: true})
	defer s.Drain(testCtx(t))
	const njobs = 6
	ids := make([]string, njobs)
	specs := make([]JobSpec, njobs)
	for k := 0; k < njobs; k++ {
		specs[k] = JobSpec{Matrix: "laplace2d:12:12", NP: 4, Seed: int64(k + 1), SStep: 1}
		j, err := s.Submit(specs[k])
		if err != nil {
			t.Fatal(err)
		}
		ids[k] = j.ID
	}
	s.Resume()
	for k, id := range ids {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("job %d state %s (err %q)", k, v.State, v.Error)
		}
		if v.Result.BatchSize != njobs {
			t.Fatalf("job %d batch size %d, want %d (coalescing failed)", k, v.Result.BatchSize, njobs)
		}
		want := directSolve(t, specs[k])
		for i := range want.X {
			if v.Result.X[i] != want.X[i] {
				t.Fatalf("job %d: x[%d] batched %v != solo %v", k, i, v.Result.X[i], want.X[i])
			}
		}
	}
	// The batch paid one setup; per-job share is reported.
	v, _ := s.View(ids[0])
	if v.Result.SetupModelTime <= 0 || v.Result.SolveModelTime <= 0 {
		t.Errorf("missing stage model times: %+v", v.Result)
	}
}

// TestBatchKeySeparates: different matrices never coalesce.
func TestBatchKeySeparates(t *testing.T) {
	s := New(Options{Workers: 1, MaxBatch: 8, StartPaused: true})
	defer s.Drain(testCtx(t))
	j1, err := s.Submit(JobSpec{Matrix: "laplace1d:64", NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobSpec{Matrix: "laplace1d:96", NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Resume()
	for _, id := range []string{j1.ID, j2.ID} {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone || v.Result.BatchSize != 1 {
			t.Fatalf("%s: state %s batch %d, want done/1", id, v.State, v.Result.BatchSize)
		}
	}
}

// TestBackpressure: the bounded queue rejects the overflow submission
// with ErrQueueFull while earlier jobs stay admitted.
func TestBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, QueueCap: 2, StartPaused: true})
	defer s.Drain(testCtx(t))
	spec := JobSpec{Matrix: "laplace1d:32", NP: 2}
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	_, _, _, rejected := s.Metrics().Snapshot()
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
}

func TestValidation(t *testing.T) {
	s := New(Options{Workers: 1, MaxNP: 8})
	defer s.Drain(testCtx(t))
	bad := []JobSpec{
		{},                               // no matrix
		{Matrix: "laplace1d:32", NP: 99}, // np too big
		{Matrix: "laplace1d:32", Layout: "weird"}, // unknown layout
		{Matrix: "laplace1d:32", Method: "gmres"}, // unsupported method
		{Matrix: "laplace1d:32", Topology: "x"},   // unknown topology
		{Matrix: "laplace1d:32", Tol: -1},
		{Matrix: "laplace1d:32", Fault: "crash:rank=nope"},
	}
	for i, spec := range bad {
		_, err := s.Submit(spec)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("spec %d: err = %v, want ValidationError", i, err)
		}
	}
	// A bad generator spec is admitted (validation is free-only) and
	// fails at run time.
	j, err := s.Submit(JobSpec{Matrix: "nosuchgen:12"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateFailed || v.Error == "" {
		t.Fatalf("bad generator: state %s err %q, want failed", v.State, v.Error)
	}
}

// TestSoloTraceJob: trace capture forces a solo run and the Perfetto
// JSON is downloadable.
func TestSoloTraceJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(JobSpec{Matrix: "laplace1d:48", NP: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || v.Result.BatchSize != 1 {
		t.Fatalf("state %s batch %d, want done/1", v.State, v.Result.BatchSize)
	}
	if !v.HasTrace {
		t.Fatal("no trace captured")
	}
	tr, ok := s.TraceJSON(j.ID)
	if !ok || !bytes.Contains(tr, []byte("traceEvents")) {
		t.Fatalf("trace JSON missing or malformed (%d bytes)", len(tr))
	}
}

// TestSoloResilientFaultJob: an injected crash is survived via
// checkpoint/restart and the recovery is reported.
func TestSoloResilientFaultJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	spec := JobSpec{
		Matrix: "banded:192:4", NP: 4,
		Fault: "crash:rank=1@t=0.2ms", Resilient: true,
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone {
		t.Fatalf("state %s (err %q)", v.State, v.Error)
	}
	if !v.Result.Converged || v.Result.Attempts < 2 || v.Result.Failures < 1 {
		t.Fatalf("recovery not reported: %+v", v.Result)
	}
	// The recovered answer matches the fault-free direct solve.
	clean := directSolve(t, JobSpec{Matrix: spec.Matrix, NP: spec.NP})
	for i := range clean.X {
		if v.Result.X[i] != clean.X[i] {
			t.Fatalf("x[%d] resilient %v != fault-free %v", i, v.Result.X[i], clean.X[i])
		}
	}
}

// TestSoloFaultJobFails: the same crash without resilient mode fails
// the job with a typed peer-failure message rather than hanging.
func TestSoloFaultJobFails(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(JobSpec{Matrix: "banded:192:4", NP: 4, Fault: "crash:rank=1@t=0.2ms"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateFailed || !strings.Contains(v.Error, "processor 1") {
		t.Fatalf("state %s err %q, want failure naming processor 1", v.State, v.Error)
	}
}

// TestTimeoutJob: the per-job watchdog path solves fine when nothing
// hangs.
func TestTimeoutJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(JobSpec{Matrix: "laplace1d:64", NP: 2, TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Wait(testCtx(t), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("state %s result %+v", v.State, v.Result)
	}
}

// TestMatrixMarketUpload: an uploaded matrix solves and batches under
// its content hash.
func TestMatrixMarketUpload(t *testing.T) {
	var mm bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mm, sparse.Laplace1D(40)); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, StartPaused: true})
	defer s.Drain(testCtx(t))
	var ids []string
	for k := 0; k < 3; k++ {
		j, err := s.Submit(JobSpec{MatrixMarket: mm.String(), NP: 2, Seed: int64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	s.Resume()
	for _, id := range ids {
		v, err := s.Wait(testCtx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone || !v.Result.Converged || v.Result.BatchSize != 3 {
			t.Fatalf("%s: state %s result %+v", id, v.State, v.Result)
		}
	}
}

// --- HTTP surface ---

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, submitResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	return resp, sr
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	spec := JobSpec{Matrix: "banded:96:3", NP: 4, Seed: 5, SStep: 1}
	resp, sr := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted || sr.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sr)
	}

	get, err := http.Get(ts.URL + "/jobs/" + sr.ID + "?wait=1&timeout=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var v JobView
	if err := json.NewDecoder(get.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Result.Converged {
		t.Fatalf("job %+v", v)
	}
	want := directSolve(t, spec)
	for i := range want.X {
		if v.Result.X[i] != want.X[i] {
			t.Fatalf("x[%d] over HTTP %v != direct %v", i, v.Result.X[i], want.X[i])
		}
	}

	// Health and metrics.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, r.StatusCode)
		}
	}

	// Unknown job and bad spec.
	r404, _ := http.Get(ts.URL + "/jobs/job-999")
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", r404.StatusCode)
	}
	respBad, _ := postJob(t, ts, map[string]any{"matrix": "laplace1d:32", "np": 9999})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: %d, want 400", respBad.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	s := New(Options{Workers: 1, QueueCap: 1, StartPaused: true})
	defer s.Drain(testCtx(t))
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	spec := JobSpec{Matrix: "laplace1d:32", NP: 2}
	resp1, _ := postJob(t, ts, spec)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	resp2, _ := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	s.Resume()
}

func TestHTTPTraceDownload(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	_, sr := postJob(t, ts, JobSpec{Matrix: "laplace1d:48", NP: 2, Trace: true})
	r, err := http.Get(ts.URL + "/jobs/" + sr.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	tr, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace download: %d", tr.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(tr.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("trace body not Perfetto JSON (%d bytes)", buf.Len())
	}

	// A traceless job 404s on /trace.
	_, sr2 := postJob(t, ts, JobSpec{Matrix: "laplace1d:48", NP: 2})
	r2, err := http.Get(ts.URL + "/jobs/" + sr2.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	tr2, _ := http.Get(ts.URL + "/jobs/" + sr2.ID + "/trace")
	tr2.Body.Close()
	if tr2.StatusCode != http.StatusNotFound {
		t.Errorf("traceless /trace: %d, want 404", tr2.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	j, err := s.Submit(JobSpec{Matrix: "laplace1d:32", NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(testCtx(t), j.ID); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.Metrics().WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		`hpfserve_jobs_submitted_total{job_type="cg"} 1`,
		`hpfserve_jobs_completed_total{job_type="cg"} 1`,
		"hpfserve_queue_depth 0",
		"hpfserve_inflight_jobs 0",
		"hpfserve_batches_total 1",
		`hpfserve_stage_seconds_bucket{stage="queue",job_type="cg",le="+Inf"} 1`,
		`hpfserve_stage_seconds_bucket{stage="solve",job_type="cg",le="+Inf"} 1`,
		`hpfserve_batch_occupancy_bucket{le="1"} 1`,
		`hpfserve_model_seconds_total{kind="makespan"}`,
		`hpfserve_model_seconds_total{kind="comm"}`,
		`hpfserve_model_seconds_total{kind="setup"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestWaitUnknownJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Drain(testCtx(t))
	if _, err := s.Wait(testCtx(t), "job-404"); err == nil {
		t.Fatal("unknown job waited successfully")
	}
	if fmt.Sprint(ErrQueueFull) == "" || fmt.Sprint(ErrDraining) == "" {
		t.Fatal("sentinel errors unprintable")
	}
}
