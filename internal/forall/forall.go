// Package forall implements the loop-execution model of HPF and the
// paper's proposed §5.1 extensions.
//
// HPF-1 offers FORALL and INDEPENDENT DO for parallel loops, mapped to
// processors by the owner-computes rule. The paper shows that the CSC
// sparse matrix-vector product cannot use either: its inner loop
// accumulates many-to-one into q(row(k)), a write-after-write
// dependency that violates Bernstein's conditions. The proposed fix is
//
//	!EXT$ ITERATION j ON PROCESSOR(f(j)), PRIVATE(q(n)) WITH MERGE(+)
//
// — fork a private copy of the accumulation array per processor, run
// the outer loop independently under an explicit iteration mapping, and
// merge the private copies with a global reduction at region end.
//
// This package provides exactly those pieces: IterMap (the ON
// PROCESSOR(f(i)) construct), Indep (INDEPENDENT DO under a mapping),
// Forall (FORALL semantics: all right-hand sides evaluated before
// assignment), and PrivateRegion (PRIVATE arrays with MERGE(+) or
// DISCARD). It also provides Serialized, which emulates what an HPF-1
// compiler must do with the unparallelisable loop — run it sequentially
// on one processor after gathering the operands — so experiments can
// quantify what the extension buys (experiment E4).
package forall

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
)

// IterMap assigns loop iterations to processors: the paper's ON
// PROCESSOR(f(i)) clause. Implementations must be deterministic and
// identical on every processor.
type IterMap interface {
	// ProcOf returns the rank that executes iteration i.
	ProcOf(i int) int
}

// MapFunc adapts a function to an IterMap — the literal ON
// PROCESSOR(f(i)) form.
type MapFunc func(i int) int

// ProcOf implements IterMap.
func (f MapFunc) ProcOf(i int) int { return f(i) }

// OnDist maps iteration i to the owner of element i under d — the
// owner-computes rule HPF compilers default to.
type OnDist struct{ D dist.Dist }

// ProcOf implements IterMap.
func (m OnDist) ProcOf(i int) int { return m.D.Owner(i) }

// OnBlock maps [0,n) iterations block-wise over np processors — the
// paper's ON PROCESSOR(j/np) example (with HPF BLOCK block sizing).
func OnBlock(n, np int) IterMap { return OnDist{D: dist.NewBlock(n, np)} }

// OnCyclic maps iterations round-robin.
func OnCyclic(n, np int) IterMap { return OnDist{D: dist.NewCyclic(n, np)} }

// Indep executes body(i) for every owned iteration i in [lo, hi) — the
// semantics of INDEPENDENT DO under an iteration mapping. Iterations
// must be free of cross-iteration dependencies (Bernstein's
// conditions); the runtime cannot check that, just like the HPF
// directive it models, but unlike HPF each processor here really only
// touches its own iterations. flopsPerIter charges the cost model.
func Indep(p *comm.Proc, lo, hi int, m IterMap, flopsPerIter int, body func(i int)) {
	r := p.Rank()
	count := 0
	for i := lo; i < hi; i++ {
		if m.ProcOf(i) == r {
			body(i)
			count++
		}
	}
	p.Compute(count * flopsPerIter)
}

// Forall evaluates rhs(i) for all owned iterations first, then runs
// assign(i, value) — the two-phase semantics of the HPF FORALL
// construct ("all the right-hand sides should be computed before an
// assignment to the left-hand sides be done"). Both phases follow the
// iteration mapping.
func Forall(p *comm.Proc, lo, hi int, m IterMap, flopsPerIter int, rhs func(i int) float64, assign func(i int, v float64)) {
	r := p.Rank()
	idx := make([]int, 0, (hi-lo)/p.NP()+1)
	vals := make([]float64, 0, cap(idx))
	for i := lo; i < hi; i++ {
		if m.ProcOf(i) == r {
			idx = append(idx, i)
			vals = append(vals, rhs(i))
		}
	}
	for k, i := range idx {
		assign(i, vals[k])
	}
	p.Compute(len(idx) * flopsPerIter)
}

// ForallMasked is Forall with HPF's optional mask expression
// (FORALL (i=lo:hi, mask(i)) lhs(i) = rhs(i)): only iterations whose
// mask evaluates true participate, but the two-phase semantics (all
// right-hand sides before any assignment) still hold across the masked
// set. flopsPerIter is charged per executed iteration.
func ForallMasked(p *comm.Proc, lo, hi int, m IterMap, flopsPerIter int,
	mask func(i int) bool, rhs func(i int) float64, assign func(i int, v float64)) {
	r := p.Rank()
	idx := make([]int, 0, (hi-lo)/p.NP()+1)
	vals := make([]float64, 0, cap(idx))
	for i := lo; i < hi; i++ {
		if m.ProcOf(i) == r && mask(i) {
			idx = append(idx, i)
			vals = append(vals, rhs(i))
		}
	}
	for k, i := range idx {
		assign(i, vals[k])
	}
	p.Compute(len(idx) * flopsPerIter)
}

// MergeMode selects what happens to PRIVATE data at region end, per the
// paper's WITH MERGE / WITH DISCARD options.
type MergeMode int

const (
	// MergeSum merges the private copies into a single global copy with
	// element-wise addition: WITH MERGE(+).
	MergeSum MergeMode = iota
	// Discard throws the private copies away: WITH DISCARD.
	Discard
)

// PrivateRegion is the paper's PRIVATE abstraction (Figure 5): each
// processor forks a private n-element array that stays alive for the
// whole region (unlike NEW variables, which live one iteration), runs
// its iterations against the private copy, and the region ends with a
// merge or discard.
type PrivateRegion struct {
	p    *comm.Proc
	priv []float64
	mode MergeMode
}

// NewPrivate opens a private region with an n-element zeroed private
// array on every processor. The paper notes the cost: NP temporary
// vectors of length n ("unsatisfactory ... particularly if n >> NP"),
// which is exactly what this allocates; experiment E4 measures it.
func NewPrivate(p *comm.Proc, n int, mode MergeMode) *PrivateRegion {
	if n < 0 {
		panic(fmt.Sprintf("forall: private array length %d", n))
	}
	return &PrivateRegion{p: p, priv: make([]float64, n), mode: mode}
}

// Data returns this processor's private copy.
func (r *PrivateRegion) Data() []float64 { return r.priv }

// MergeReplicated closes the region, combining the private copies into
// a full-length result replicated on every processor (allreduce). For
// Discard regions it returns nil.
func (r *PrivateRegion) MergeReplicated() []float64 {
	if r.mode == Discard {
		return nil
	}
	return r.p.Allreduce(r.priv, comm.OpSum)
}

// MergeDistributed closes the region, combining the private copies
// element-wise and leaving each processor with its counts[rank] block —
// the merge a distributed LHS array (the BLOCK-distributed q of the
// paper's loop) needs. For Discard regions it returns nil.
func (r *PrivateRegion) MergeDistributed(counts []int) []float64 {
	if r.mode == Discard {
		return nil
	}
	return r.p.ReduceScatterSum(r.priv, counts)
}

// Serialized runs a loop the way an HPF-1 compiler must handle the
// dependent CSC accumulation (§4 Scenario 2, "no parallel loop
// execution is possible"): the distributed operand x is gathered,
// rank 0 executes the whole loop body sequentially against a full-size
// result array, and the result is scattered back by counts. body
// receives the gathered input and the output buffer and must be the
// sequential loop; flops is the total loop cost, charged to rank 0
// only.
func Serialized(p *comm.Proc, x []float64, xCounts, outCounts []int, n int, flops int, body func(xFull, out []float64)) []float64 {
	xFull := p.AllgatherV(x, xCounts)
	var out []float64
	if p.Rank() == 0 {
		out = make([]float64, n)
		body(xFull, out)
		p.Compute(flops)
	}
	return p.ScatterV(0, out, outCounts)
}
