package forall

import (
	"math"
	"sync"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

var testNPs = []int{1, 2, 3, 4, 8}

func TestIndepCoversEachIterationOnce(t *testing.T) {
	for _, np := range testNPs {
		n := 7*np + 3
		var mu sync.Mutex
		hits := make([]int, n)
		machine(np).Run(func(p *comm.Proc) {
			Indep(p, 0, n, OnBlock(n, np), 1, func(i int) {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			})
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("np=%d: iteration %d executed %d times", np, i, h)
			}
		}
	}
}

func TestIndepRespectsMapping(t *testing.T) {
	np := 4
	n := 16
	machine(np).Run(func(p *comm.Proc) {
		Indep(p, 0, n, OnCyclic(n, np), 0, func(i int) {
			if i%np != p.Rank() {
				t.Errorf("rank %d executed iteration %d under cyclic map", p.Rank(), i)
			}
		})
		Indep(p, 0, n, MapFunc(func(i int) int { return 2 }), 0, func(i int) {
			if p.Rank() != 2 {
				t.Errorf("rank %d executed iteration %d mapped to 2", p.Rank(), i)
			}
		})
	})
}

func TestIndepChargesOwnedIterationsOnly(t *testing.T) {
	np := 4
	n := 100
	st := machine(np).Run(func(p *comm.Proc) {
		Indep(p, 0, n, OnBlock(n, np), 10, func(i int) {})
	})
	if st.TotalFlops != int64(n*10) {
		t.Errorf("TotalFlops = %d, want %d", st.TotalFlops, n*10)
	}
	if st.MaxFlops != 250 {
		t.Errorf("MaxFlops = %d, want 250", st.MaxFlops)
	}
}

// FORALL semantics: all RHS evaluated before any assignment, so a
// vector reversal through the same array is safe per processor.
func TestForallTwoPhase(t *testing.T) {
	np := 1 // single proc: the two-phase property is per-processor
	n := 9
	machine(np).Run(func(p *comm.Proc) {
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(i)
		}
		Forall(p, 0, n, OnBlock(n, np), 1,
			func(i int) float64 { return a[n-1-i] },
			func(i int, v float64) { a[i] = v })
		for i := range a {
			if a[i] != float64(n-1-i) {
				t.Fatalf("FORALL reversal failed: a[%d] = %g", i, a[i])
			}
		}
	})
}

func TestForallDistributed(t *testing.T) {
	for _, np := range testNPs {
		n := 5 * np
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			out := make([]float64, n) // each proc writes only its part
			Forall(p, 0, n, OnDist{D: d}, 2,
				func(i int) float64 { return 3 * float64(i) },
				func(i int, v float64) { out[i] = v })
			lo := d.Lo(p.Rank())
			for off := 0; off < d.Count(p.Rank()); off++ {
				if out[lo+off] != 3*float64(lo+off) {
					t.Fatalf("np=%d rank=%d: out[%d] = %g", np, p.Rank(), lo+off, out[lo+off])
				}
			}
		})
	}
}

// The paper's Figure 5 workload: CSC-style many-to-one accumulation
// parallelised with PRIVATE + MERGE(+).
func TestPrivateMergeReplicated(t *testing.T) {
	for _, np := range testNPs {
		n := 4*np + 1
		machine(np).Run(func(p *comm.Proc) {
			region := NewPrivate(p, n, MergeSum)
			// Every processor accumulates into scattered targets.
			Indep(p, 0, n, OnBlock(n, np), 2, func(j int) {
				region.Data()[(j*3)%n] += float64(j)
			})
			got := region.MergeReplicated()
			want := make([]float64, n)
			for j := 0; j < n; j++ {
				want[(j*3)%n] += float64(j)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("np=%d: merged[%d] = %g, want %g", np, i, got[i], want[i])
				}
			}
		})
	}
}

func TestPrivateMergeDistributed(t *testing.T) {
	for _, np := range testNPs {
		n := 6 * np
		d := dist.NewBlock(n, np)
		counts := dist.Counts(d)
		machine(np).Run(func(p *comm.Proc) {
			region := NewPrivate(p, n, MergeSum)
			for i := 0; i < n; i++ {
				region.Data()[i] = float64(p.Rank() + 1)
			}
			blk := region.MergeDistributed(counts)
			if len(blk) != counts[p.Rank()] {
				t.Fatalf("np=%d: block len %d", np, len(blk))
			}
			sum := float64(np*(np+1)) / 2
			for _, v := range blk {
				if v != sum {
					t.Fatalf("np=%d: merged %g, want %g", np, v, sum)
				}
			}
		})
	}
}

func TestPrivateDiscard(t *testing.T) {
	machine(3).Run(func(p *comm.Proc) {
		region := NewPrivate(p, 5, Discard)
		region.Data()[0] = 1
		if got := region.MergeReplicated(); got != nil {
			t.Errorf("Discard MergeReplicated = %v", got)
		}
		if got := region.MergeDistributed([]int{2, 2, 1}); got != nil {
			t.Errorf("Discard MergeDistributed = %v", got)
		}
	})
}

func TestNewPrivateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative length should panic")
		}
	}()
	machine(1).Run(func(p *comm.Proc) {
		NewPrivate(p, -1, MergeSum)
	})
}

// Serialized must produce the same result as the parallel private-merge
// path, while charging all compute to rank 0.
func TestSerializedMatchesParallel(t *testing.T) {
	np := 4
	n := 20
	d := dist.NewBlock(n, np)
	counts := dist.Counts(d)
	// x[i] = i; out[j] = x[j] * 2 computed "serially".
	var serialOut, parallelOut []float64
	st := machine(np).Run(func(p *comm.Proc) {
		local := make([]float64, counts[p.Rank()])
		lo := d.Lo(p.Rank())
		for i := range local {
			local[i] = float64(lo + i)
		}
		blk := Serialized(p, local, counts, counts, n, 2*n, func(xFull, out []float64) {
			for j := 0; j < n; j++ {
				out[j] = 2 * xFull[j]
			}
		})
		full := p.AllgatherV(blk, counts)
		if p.Rank() == 0 {
			serialOut = full
		}
	})
	if st.Procs[1].Flops != 0 || st.Procs[0].Flops != int64(2*n) {
		t.Errorf("Serialized flops distribution wrong: %+v", st.Procs)
	}
	machine(np).Run(func(p *comm.Proc) {
		region := NewPrivate(p, n, MergeSum)
		Indep(p, 0, n, OnBlock(n, np), 2, func(j int) {
			region.Data()[j] = 2 * float64(j)
		})
		blk := region.MergeDistributed(counts)
		full := p.AllgatherV(blk, counts)
		if p.Rank() == 0 {
			parallelOut = full
		}
	})
	for i := range serialOut {
		if serialOut[i] != parallelOut[i] {
			t.Fatalf("serial vs parallel diverge at %d: %g vs %g", i, serialOut[i], parallelOut[i])
		}
	}
}

// The point of §5.1: the private-merge version distributes compute,
// the serialised version concentrates it on one processor.
func TestPrivateBeatsSerializedOnCompute(t *testing.T) {
	np := 8
	n := 1 << 10
	flopsPer := 4
	d := dist.NewBlock(n, np)
	counts := dist.Counts(d)

	serial := machine(np).Run(func(p *comm.Proc) {
		local := make([]float64, counts[p.Rank()])
		Serialized(p, local, counts, counts, n, n*flopsPer, func(xFull, out []float64) {})
	})
	parallel := machine(np).Run(func(p *comm.Proc) {
		region := NewPrivate(p, n, MergeSum)
		Indep(p, 0, n, OnBlock(n, np), flopsPer, func(j int) {})
		region.MergeDistributed(counts)
	})
	if parallel.MaxFlops >= serial.MaxFlops {
		t.Errorf("private-merge max flops %d should beat serialised %d", parallel.MaxFlops, serial.MaxFlops)
	}
	if serial.FlopImbalance() < float64(np)*0.99 {
		t.Errorf("serialised imbalance %g, want ~%d", serial.FlopImbalance(), np)
	}
	if parallel.FlopImbalance() > 1.3 {
		t.Errorf("private-merge imbalance %g, want ~1", parallel.FlopImbalance())
	}
}

// HPF FORALL with a mask: only masked iterations execute, two-phase
// semantics preserved across the masked set.
func TestForallMasked(t *testing.T) {
	for _, np := range testNPs {
		n := 6 * np
		d := dist.NewBlock(n, np)
		st := machine(np).Run(func(p *comm.Proc) {
			out := make([]float64, n)
			for i := range out {
				out[i] = -1
			}
			ForallMasked(p, 0, n, OnDist{D: d}, 3,
				func(i int) bool { return i%2 == 0 },
				func(i int) float64 { return float64(10 * i) },
				func(i int, v float64) { out[i] = v })
			lo := d.Lo(p.Rank())
			for off := 0; off < d.Count(p.Rank()); off++ {
				g := lo + off
				want := -1.0
				if g%2 == 0 {
					want = float64(10 * g)
				}
				if out[g] != want {
					t.Errorf("np=%d: out[%d] = %g, want %g", np, g, out[g], want)
					return
				}
			}
		})
		// Only masked iterations are charged: n/2 of them, 3 flops each.
		want := int64(3 * ((n + 1) / 2))
		if st.TotalFlops != want {
			t.Errorf("np=%d: flops %d, want %d", np, st.TotalFlops, want)
		}
	}
}

// A masked FORALL that reads what it conditionally writes must still
// see pre-assignment values in the RHS phase.
func TestForallMaskedTwoPhase(t *testing.T) {
	machine(1).Run(func(p *comm.Proc) {
		n := 8
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(i)
		}
		// a(i) = a(i+1) for even i: must read original a(i+1) even when
		// i+1 was itself (oddly) untouched... and for chains a(0)=a(1),
		// a(2)=a(3): no chaining issues since mask hits evens only, but
		// verify against the spec semantics anyway.
		ForallMasked(p, 0, n-1, OnBlock(n-1, 1), 1,
			func(i int) bool { return i%2 == 0 },
			func(i int) float64 { return a[i+1] },
			func(i int, v float64) { a[i] = v })
		want := []float64{1, 1, 3, 3, 5, 5, 7, 7}
		for i := range want {
			if a[i] != want[i] {
				t.Fatalf("a = %v, want %v", a, want)
			}
		}
	})
}
