// Package mfree is the matrix-free operator backend: regular-grid
// stencil operators that implement spmv.Operator/FusedOperator
// directly, without ever assembling a sparse matrix. The workloads the
// paper's introduction motivates (heat, laplace2d — regular-grid PDE
// solves) never need the assembled form: the stencil coefficients are
// two constants, so recomputing the operator on the fly removes the
// CSR value/index streams from the hot path entirely (Kronbichler et
// al., PAPERS.md) and, just as importantly for the serving tier,
// removes the whole setup pipeline — COO assembly, CSR conversion,
// content hashing of values, and the inspector's collective
// ghost-index discovery all disappear. The halo schedule is computed
// geometrically from grid.Brick3 coordinates instead (see Halo): under
// the z-slab decomposition each rank's ghost set is exactly the
// adjacent boundary plane of ranks r±1, known without any exchange.
//
// Numerical contract: Apply/ApplyDot are bit-identical to the
// assembled-CSR ghost executor (spmv.RowBlockCSRGhost over
// Spec.Assemble with the same brick layout). The kernels accumulate
// stencil terms in ascending global column order — the order a sorted
// CSR row stores them — with identical coefficient values and identical
// flop charges, so the equality is exact, not approximate, and every
// CG iterate (and therefore every solve) agrees bit for bit. The E25
// experiment and TestBitIdenticalToAssembled enforce this.
package mfree

import (
	"fmt"
	"math"

	"hpfcg/internal/grid"
	"hpfcg/internal/sparse"
)

// Spec bounds, mirroring mg's admission-time limits: a served stencil
// job must be rejected at validation, not deep in a worker.
const (
	// MaxDim caps each global grid dimension.
	MaxDim = 4096
)

// Default stencil coefficients: the 5-point 2-D Laplacian (diag 4,
// neighbours -1, exactly sparse.Laplace2D) and the HPCG-style 27-point
// 3-D stencil (diag 26, neighbours -1, exactly internal/mg's level
// assembly).
const (
	Center5pt  = 4
	Center27pt = 26
	OffDefault = -1
)

// Spec sizes one matrix-free stencil operator. Unlike mg.Spec the
// dimensions are GLOBAL grid dimensions (the service validates them
// against np at prepare time): "5pt" is the 5-point Laplacian on an
// Nx × Ny grid with sparse.Laplace2D's numbering (the Nx rows are the
// slab dimension, so Nx >= np); "27pt" is the 27-point stencil on an
// Nx × Ny × Nz grid with grid.Brick3's numbering (x fastest, z
// slowest; Nz >= np).
//
// Center and Off generalize the coefficients (both zero selects the
// canonical pair for the stencil), which is how examples/heat's
// implicit operator I + dt·A becomes Spec{Stencil: "5pt",
// Center: 1 + 4·dt, Off: -dt} with no assembly at all.
type Spec struct {
	Stencil    string  // "5pt" | "27pt"
	Nx, Ny, Nz int     // global dims; Nz ignored (0) for 5pt
	Center     float64 // diagonal coefficient (0,0 -> canonical pair)
	Off        float64 // neighbour coefficient
}

// WithDefaults fills the canonical coefficient pair when both Center
// and Off are zero.
func (s Spec) WithDefaults() Spec {
	if s.Center == 0 && s.Off == 0 {
		switch s.Stencil {
		case "5pt":
			s.Center, s.Off = Center5pt, OffDefault
		case "27pt":
			s.Center, s.Off = Center27pt, OffDefault
		}
	}
	return s
}

// Validate checks the (defaulted) spec. Errors name the offending
// field so the serving tier surfaces them as admission-time 400s.
func (s Spec) Validate() error {
	switch s.Stencil {
	case "5pt":
		if s.Nz != 0 {
			return fmt.Errorf("mfree: nz = %d does not apply to the 5pt stencil", s.Nz)
		}
	case "27pt":
		if s.Nz < 1 || s.Nz > MaxDim {
			return fmt.Errorf("mfree: nz = %d outside [1, %d]", s.Nz, MaxDim)
		}
	default:
		return fmt.Errorf("mfree: stencil %q unsupported (5pt and 27pt)", s.Stencil)
	}
	if s.Nx < 1 || s.Nx > MaxDim {
		return fmt.Errorf("mfree: nx = %d outside [1, %d]", s.Nx, MaxDim)
	}
	if s.Ny < 1 || s.Ny > MaxDim {
		return fmt.Errorf("mfree: ny = %d outside [1, %d]", s.Ny, MaxDim)
	}
	if math.IsNaN(s.Center) || math.IsInf(s.Center, 0) || s.Center == 0 {
		return fmt.Errorf("mfree: center = %g must be finite and nonzero", s.Center)
	}
	if math.IsNaN(s.Off) || math.IsInf(s.Off, 0) {
		return fmt.Errorf("mfree: off = %g must be finite", s.Off)
	}
	return nil
}

// N returns the global point count.
func (s Spec) N() int {
	if s.Stencil == "5pt" {
		return s.Nx * s.Ny
	}
	return s.Nx * s.Ny * s.Nz
}

// Brick maps the grid onto np ranks as a grid.Brick3 z-slab
// decomposition. For 5pt the Nx grid rows become z-planes of Ny
// points each (Brick3.Index(x, 0, z) = z·Ny + x is exactly
// sparse.Laplace2D's idx(i, j) = i·ny + j with z = i, x = j), so the
// same slab geometry, vector distribution and neighbour structure
// serve both stencils.
func (s Spec) Brick(np int) (grid.Brick3, error) {
	if s.Stencil == "5pt" {
		return grid.NewBrick3(s.Ny, 1, s.Nx, np)
	}
	return grid.NewBrick3(s.Nx, s.Ny, s.Nz, np)
}

// NNZ returns the exact stored-entry count of the assembled form —
// analytic, the matrix is never materialized.
func (s Spec) NNZ() int {
	if s.Stencil == "5pt" {
		return 5*s.Nx*s.Ny - 2*s.Nx - 2*s.Ny
	}
	return (3*s.Nx - 2) * (3*s.Ny - 2) * (3*s.Nz - 2)
}

// Key is the canonical cache-key fragment: two specs with equal keys
// build identical operators at equal np. Coefficients are part of the
// key — they are the operator's values.
func (s Spec) Key() string {
	s = s.WithDefaults()
	if s.Stencil == "5pt" {
		return fmt.Sprintf("5pt:%dx%d:c%g:o%g", s.Nx, s.Ny, s.Center, s.Off)
	}
	return fmt.Sprintf("27pt:%dx%dx%d:c%g:o%g", s.Nx, s.Ny, s.Nz, s.Center, s.Off)
}

// ModelBytes estimates the resident size of a prepared matrix-free
// plan at np ranks: the two ghost-plane buffers per rank plus a small
// fixed descriptor — no row pointers, no column indices, no values.
// This is the registry's cache-pressure signal, and its smallness is
// the point: a cached stencil plan is ~10^3 times lighter than the
// assembled CSR plan for the same grid.
func (s Spec) ModelBytes(np int) int64 {
	b, err := s.Brick(np)
	if err != nil {
		return 0
	}
	const floatB = 8
	plane := int64(b.X) * int64(b.Y)
	return int64(np) * (2*plane*floatB + 256)
}

// Assemble materializes the assembled-CSR comparator: the exact
// matrix the matrix-free kernels evaluate, entry for entry. For the
// 5pt stencil with canonical coefficients the result is bit-identical
// to sparse.Laplace2D (same COO insertion and the same sorted-CSR
// conversion); for 27pt it reproduces internal/mg's level assembly
// values. Tests and the E25 experiment build the assembled arm from
// this single source.
func (s Spec) Assemble() (*sparse.CSR, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.N()
	coo := sparse.NewCOO(n, n)
	if s.Stencil == "5pt" {
		idx := func(i, j int) int { return i*s.Ny + j }
		for i := 0; i < s.Nx; i++ {
			for j := 0; j < s.Ny; j++ {
				g := idx(i, j)
				coo.Add(g, g, s.Center)
				if i > 0 {
					coo.Add(g, idx(i-1, j), s.Off)
				}
				if i < s.Nx-1 {
					coo.Add(g, idx(i+1, j), s.Off)
				}
				if j > 0 {
					coo.Add(g, idx(i, j-1), s.Off)
				}
				if j < s.Ny-1 {
					coo.Add(g, idx(i, j+1), s.Off)
				}
			}
		}
		return coo.ToCSR(), nil
	}
	b := grid.Brick3{X: s.Nx, Y: s.Ny, Z: s.Nz, Procs: 1}
	for z := 0; z < s.Nz; z++ {
		for y := 0; y < s.Ny; y++ {
			for x := 0; x < s.Nx; x++ {
				g := b.Index(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					zz := z + dz
					if zz < 0 || zz >= s.Nz {
						continue
					}
					for dy := -1; dy <= 1; dy++ {
						yy := y + dy
						if yy < 0 || yy >= s.Ny {
							continue
						}
						for dx := -1; dx <= 1; dx++ {
							xx := x + dx
							if xx < 0 || xx >= s.Nx {
								continue
							}
							h := b.Index(xx, yy, zz)
							if h == g {
								coo.Add(g, h, s.Center)
							} else {
								coo.Add(g, h, s.Off)
							}
						}
					}
				}
			}
		}
	}
	return coo.ToCSR(), nil
}

// MulVec computes y = A·x sequentially from the stencil — the
// matrix-free reference apply. Terms accumulate in ascending global
// column order, so the result is bitwise equal to Assemble()'s
// CSR.MulVec; examples use it to form right-hand sides without
// assembling.
func (s Spec) MulVec(x, y []float64) {
	s = s.WithDefaults()
	n := s.N()
	if len(x) != n || len(y) != n {
		panic(fmt.Sprintf("mfree: MulVec lengths %d/%d != n=%d", len(x), len(y), n))
	}
	if s.Stencil == "5pt" {
		ny := s.Ny
		for i := 0; i < s.Nx; i++ {
			for j := 0; j < ny; j++ {
				g := i*ny + j
				var acc float64
				if i > 0 {
					acc += s.Off * x[g-ny]
				}
				if j > 0 {
					acc += s.Off * x[g-1]
				}
				acc += s.Center * x[g]
				if j < ny-1 {
					acc += s.Off * x[g+1]
				}
				if i < s.Nx-1 {
					acc += s.Off * x[g+ny]
				}
				y[g] = acc
			}
		}
		return
	}
	b := grid.Brick3{X: s.Nx, Y: s.Ny, Z: s.Nz, Procs: 1}
	for z := 0; z < s.Nz; z++ {
		for yy := 0; yy < s.Ny; yy++ {
			for xx := 0; xx < s.Nx; xx++ {
				g := b.Index(xx, yy, z)
				var acc float64
				for dz := -1; dz <= 1; dz++ {
					cz := z + dz
					if cz < 0 || cz >= s.Nz {
						continue
					}
					for dy := -1; dy <= 1; dy++ {
						cy := yy + dy
						if cy < 0 || cy >= s.Ny {
							continue
						}
						for dx := -1; dx <= 1; dx++ {
							cx := xx + dx
							if cx < 0 || cx >= s.Nx {
								continue
							}
							v := s.Off
							if dz == 0 && dy == 0 && dx == 0 {
								v = s.Center
							}
							acc += v * x[b.Index(cx, cy, cz)]
						}
					}
				}
				y[g] = acc
			}
		}
	}
}
