package mfree

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/grid"
)

// tagHalo carries the geometric plane exchange under its own tag so it
// can interleave with the inspector's 201/202 traffic without
// cross-matching.
const tagHalo = 203

// Halo is the geometric communication schedule of a slab-decomposed
// stencil: under grid.Brick3's z-slab decomposition (every rank owns at
// least one whole z-plane) a ±1 stencil reads exactly the adjacent
// boundary plane of ranks r-1 and r+1 — nothing else, and both sides
// know it from the brick dimensions alone. That makes the schedule
// purely local to construct: no AlltoallVInts request exchange, no
// ghost-index discovery, no collective of any kind. Where the
// inspector's Build is the setup cost E14/E25 price, NewHalo is free on
// the modeled clock — cold and warm prepares both report setup 0.
//
// Exchange mirrors inspector.Schedule.Exchange's mechanics exactly
// (pooled send buffers, ascending destination order, the same
// (r-off+np)%np receive order) with the same message sizes a built
// schedule would produce for these stencils — a full X·Y plane per
// neighbour — so per-iteration modeled communication matches the
// assembled executor's and only setup differs.
type Halo struct {
	p     *comm.Proc
	plane int // X*Y points per z-plane
	nloc  int // owned points
	// low receives rank r-1's top boundary plane (ghost z = zlo-1);
	// high receives rank r+1's bottom boundary plane (ghost z = zhi).
	// Preallocated at construction — Exchange allocates nothing.
	low, high []float64
	hasLow    bool
	hasHigh   bool
}

// NewHalo builds the geometric schedule for rank p over brick b. Purely
// local: every rank computes its neighbour set and buffer sizes from
// the brick coordinates it already holds.
func NewHalo(p *comm.Proc, b grid.Brick3) *Halo {
	if p.NP() != b.Procs {
		panic(fmt.Sprintf("mfree: halo over brick with %d procs on machine with %d", b.Procs, p.NP()))
	}
	r := p.Rank()
	zlo, zhi := b.ZRange(r)
	plane := b.X * b.Y
	h := &Halo{
		p:       p,
		plane:   plane,
		nloc:    (zhi - zlo) * plane,
		hasLow:  r > 0,
		hasHigh: r < b.Procs-1,
	}
	if h.hasLow {
		h.low = make([]float64, plane)
	}
	if h.hasHigh {
		h.high = make([]float64, plane)
	}
	return h
}

// Exchange swaps boundary planes with the z-neighbours: local's first
// plane goes down to r-1, its last plane up to r+1, and the returned
// low/high buffers hold the neighbours' boundary planes (nil on the
// domain boundary, where the kernels never read them). The ghost value
// of in-plane coordinates (x, y) sits at slot y·X+x of its buffer.
// Collective across ranks like the inspector executor; sends draw on
// the processor's buffer pool and receives recycle into it, so the
// steady state allocates nothing.
func (h *Halo) Exchange(local []float64) (low, high []float64) {
	if len(local) != h.nloc {
		panic(fmt.Sprintf("mfree: halo exchange of %d elements, rank owns %d", len(local), h.nloc))
	}
	r := h.p.Rank()
	// Sends in ascending destination order, as the inspector does.
	if h.hasLow {
		buf := h.p.GetBuf(h.plane)
		copy(buf, local[:h.plane])
		h.p.SendFloats(r-1, tagHalo, buf)
	}
	if h.hasHigh {
		buf := h.p.GetBuf(h.plane)
		copy(buf, local[h.nloc-h.plane:])
		h.p.SendFloats(r+1, tagHalo, buf)
	}
	// Receives in the inspector's (r-off+np)%np order: r-1 first,
	// r+1 last.
	if h.hasLow {
		part := h.p.RecvFloats(r-1, tagHalo)
		if len(part) != h.plane {
			panic(fmt.Sprintf("mfree: expected %d-point plane from %d, got %d", h.plane, r-1, len(part)))
		}
		copy(h.low, part)
		h.p.PutBuf(part)
	}
	if h.hasHigh {
		part := h.p.RecvFloats(r+1, tagHalo)
		if len(part) != h.plane {
			panic(fmt.Sprintf("mfree: expected %d-point plane from %d, got %d", h.plane, r+1, len(part)))
		}
		copy(h.high, part)
		h.p.PutBuf(part)
	}
	return h.low, h.high
}

// NGhosts returns how many remote elements Exchange fetches — the
// geometric analogue of inspector.Schedule.NGhosts.
func (h *Halo) NGhosts() int {
	n := 0
	if h.hasLow {
		n += h.plane
	}
	if h.hasHigh {
		n += h.plane
	}
	return n
}

// Rebind re-attaches the schedule to a fresh processor handle of the
// same rank — the warm plan-cache path, mirroring
// inspector.Schedule.Rebind.
func (h *Halo) Rebind(p *comm.Proc) {
	if p.Rank() != h.p.Rank() || p.NP() != h.p.NP() {
		panic(fmt.Sprintf("mfree: rebind rank %d/%d onto halo built for %d/%d",
			p.Rank(), p.NP(), h.p.Rank(), h.p.NP()))
	}
	h.p = p
}
