package mfree

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/grid"
)

// Operator is the matrix-free stencil executor: spmv.Operator,
// spmv.FusedOperator and spmv.Rebindable over a slab-decomposed
// regular grid, with no stored matrix. Each Apply exchanges the
// geometric halo and evaluates the stencil point by point, reading
// owned values from the local block and the two boundary planes from
// the Halo buffers.
//
// Bit-identity contract: for every local row the stencil terms
// accumulate into one scalar in ascending global column order — the
// order a sorted CSR row stores its entries — with the identical
// multiply-add sequence spmv.RowBlockCSRGhost performs over
// Spec.Assemble() on the same brick layout. Flop charges match too
// (2·nnzLocal per Apply, +2·n for the fused dot), so matrix-free and
// assembled CG runs produce identical iterates on identical modeled
// solve clocks; only setup differs.
type Operator struct {
	p        *comm.Proc
	spec     Spec // defaulted
	brick    grid.Brick3
	d        dist.Irregular
	dd       dist.Dist // d boxed once: alignment checks allocate nothing
	halo     *Halo
	zlo, zhi int
	n        int
	nnz      int
	nnzLocal int
}

// New builds rank p's slice of the stencil operator. Construction is
// purely local — the geometric schedule needs no collective — but New
// is called from every rank of a run like any operator constructor.
func New(p *comm.Proc, spec Spec) (*Operator, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b, err := spec.Brick(p.NP())
	if err != nil {
		return nil, err
	}
	zlo, zhi := b.ZRange(p.Rank())
	d := b.VectorDist()
	a := &Operator{
		p:     p,
		spec:  spec,
		brick: b,
		d:     d,
		dd:    d,
		halo:  NewHalo(p, b),
		zlo:   zlo,
		zhi:   zhi,
		n:     spec.N(),
		nnz:   spec.NNZ(),
	}
	// Stored entries of the owned rows in the (never-assembled) global
	// matrix: every in-grid stencil neighbour is one entry, whether its
	// column is owned or ghost. Per z-plane the x/y face factors are
	// constant, so one term per owned plane suffices.
	for z := zlo; z < zhi; z++ {
		zf := 1
		if z > 0 {
			zf++
		}
		if z < b.Z-1 {
			zf++
		}
		if spec.Stencil == "5pt" {
			// (3X-2) x-direction entries per plane; the diagonal is
			// counted in the x factor, so z-neighbours add X·(zf-1).
			a.nnzLocal += (3*b.X - 2) + b.X*(zf-1)
		} else {
			a.nnzLocal += (3*b.X - 2) * (3*b.Y - 2) * zf
		}
	}
	return a, nil
}

// N implements spmv.Operator.
func (a *Operator) N() int { return a.n }

// NNZ implements spmv.Operator: the assembled form's entry count,
// computed analytically.
func (a *Operator) NNZ() int { return a.nnz }

// LocalNNZ returns this rank's share of the (virtual) stored entries —
// the load metric the flop charges are based on.
func (a *Operator) LocalNNZ() int { return a.nnzLocal }

// NGhosts returns the remote elements each Apply fetches.
func (a *Operator) NGhosts() int { return a.halo.NGhosts() }

// Spec returns the (defaulted) stencil spec.
func (a *Operator) Spec() Spec { return a.spec }

// Dist returns the operator's vector distribution — the brick's slab
// layout callers must align operand vectors with.
func (a *Operator) Dist() dist.Irregular { return a.d }

// Rebind implements spmv.Rebindable: the warm plan-cache path swaps in
// the new run's processor handle; buffers and geometry carry over.
func (a *Operator) Rebind(p *comm.Proc) {
	if p.Rank() != a.p.Rank() || p.NP() != a.p.NP() {
		panic(fmt.Sprintf("mfree: rebind rank %d/%d onto operator built for %d/%d",
			p.Rank(), p.NP(), a.p.Rank(), a.p.NP()))
	}
	a.p = p
	a.halo.Rebind(p)
}

func (a *Operator) checkAligned(op string, x, y *darray.Vector) {
	if !dist.Same(a.dd, x.Dist()) || !dist.Same(a.dd, y.Dist()) {
		panic(fmt.Sprintf("mfree: %s operands not aligned with operator distribution %s", op, a.d.Name()))
	}
}

// Apply implements spmv.Operator: exchange the geometric halo, then
// evaluate the stencil over the owned points.
func (a *Operator) Apply(x, y *darray.Vector) {
	a.checkAligned("Apply", x, y)
	xl := x.Local()
	low, high := a.halo.Exchange(xl)
	if a.spec.Stencil == "5pt" {
		a.sweep5(xl, low, high, y.Local(), nil)
	} else {
		a.sweep27(xl, low, high, y.Local(), nil)
	}
	a.p.Compute(2 * a.nnzLocal)
}

// ApplyDot implements spmv.FusedOperator: the halo exchange and stencil
// sweep of Apply with the local x·y partial accumulated in the same
// pass (see spmv.RowBlockCSR.ApplyDot for the bit-identity argument).
func (a *Operator) ApplyDot(x, y *darray.Vector) float64 {
	a.checkAligned("ApplyDot", x, y)
	xl := x.Local()
	low, high := a.halo.Exchange(xl)
	yl := y.Local()
	var dot float64
	if a.spec.Stencil == "5pt" {
		a.sweep5(xl, low, high, yl, &dot)
	} else {
		a.sweep27(xl, low, high, yl, &dot)
	}
	a.p.Compute(2*a.nnzLocal + 2*len(yl))
	return dot
}

// sweep5 evaluates the 5-point stencil over the owned planes. Brick
// coordinates map to sparse.Laplace2D's grid as z = row i, x = col j
// (Y = 1), so each point's neighbours in ascending global column order
// are: (z-1,x), (z,x-1), self, (z,x+1), (z+1,x) — exactly a sorted CSR
// row. dot, when non-nil, accumulates the fused x·y partial.
func (a *Operator) sweep5(xl, low, high, yl []float64, dot *float64) {
	nx, c, o := a.brick.X, a.spec.Center, a.spec.Off
	li := 0
	for z := a.zlo; z < a.zhi; z++ {
		for x := 0; x < nx; x++ {
			s := 0.0
			if z > 0 {
				if z == a.zlo {
					s += o * low[x]
				} else {
					s += o * xl[li-nx]
				}
			}
			if x > 0 {
				s += o * xl[li-1]
			}
			s += c * xl[li]
			if x < nx-1 {
				s += o * xl[li+1]
			}
			if z < a.brick.Z-1 {
				if z == a.zhi-1 {
					s += o * high[x]
				} else {
					s += o * xl[li+nx]
				}
			}
			yl[li] = s
			if dot != nil {
				*dot += xl[li] * s
			}
			li++
		}
	}
}

// sweep27 evaluates the 27-point stencil. The dz, dy, dx loops ascend,
// which is ascending global index order under Brick3's numbering (x
// fastest, z slowest) — the same sorted order the assembled CSR row
// stores and the same nesting internal/mg's level assembly uses.
func (a *Operator) sweep27(xl, low, high, yl []float64, dot *float64) {
	X, Y, Z := a.brick.X, a.brick.Y, a.brick.Z
	c, o := a.spec.Center, a.spec.Off
	plane := X * Y
	li := 0
	for z := a.zlo; z < a.zhi; z++ {
		for y := 0; y < Y; y++ {
			for x := 0; x < X; x++ {
				s := 0.0
				for dz := -1; dz <= 1; dz++ {
					zz := z + dz
					if zz < 0 || zz >= Z {
						continue
					}
					// Source plane: a ghost buffer for the one
					// off-rank z on each side, the local block
					// otherwise (ghost slot and local in-plane offset
					// share the y·X+x layout).
					var src []float64
					base := 0
					switch {
					case zz < a.zlo:
						src = low
					case zz >= a.zhi:
						src = high
					default:
						src = xl
						base = (zz - a.zlo) * plane
					}
					for dy := -1; dy <= 1; dy++ {
						yy := y + dy
						if yy < 0 || yy >= Y {
							continue
						}
						row := base + yy*X
						for dx := -1; dx <= 1; dx++ {
							xx := x + dx
							if xx < 0 || xx >= X {
								continue
							}
							if dz == 0 && dy == 0 && dx == 0 {
								s += c * src[row+xx]
							} else {
								s += o * src[row+xx]
							}
						}
					}
				}
				yl[li] = s
				if dot != nil {
					*dot += xl[li] * s
				}
				li++
			}
		}
	}
}
