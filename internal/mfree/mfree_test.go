package mfree

import (
	"strings"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

// specs5 and specs27 are the cross-np test shapes: slab dimensions
// chosen so np∈{2,3,4,8} all produce uneven brick splits.
var (
	spec5  = Spec{Stencil: "5pt", Nx: 11, Ny: 5}
	spec27 = Spec{Stencil: "27pt", Nx: 3, Ny: 4, Nz: 9}
)

// TestAssembleMatchesLaplace2D: the 5pt assembled comparator with
// canonical coefficients must be bit-for-bit the generator the rest of
// the repo solves — same structure arrays, same value bits.
func TestAssembleMatchesLaplace2D(t *testing.T) {
	s := Spec{Stencil: "5pt", Nx: 9, Ny: 6}
	A, err := s.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	B := sparse.Laplace2D(9, 6)
	if A.NRows != B.NRows || A.NNZ() != B.NNZ() {
		t.Fatalf("shape %d/%d vs %d/%d", A.NRows, A.NNZ(), B.NRows, B.NNZ())
	}
	for i := range B.RowPtr {
		if A.RowPtr[i] != B.RowPtr[i] {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, A.RowPtr[i], B.RowPtr[i])
		}
	}
	for k := range B.Val {
		if A.Col[k] != B.Col[k] || A.Val[k] != B.Val[k] {
			t.Fatalf("entry %d = (%d,%g), want (%d,%g)", k, A.Col[k], A.Val[k], B.Col[k], B.Val[k])
		}
	}
	if got, want := s.NNZ(), A.NNZ(); got != want {
		t.Errorf("analytic NNZ = %d, assembled %d", got, want)
	}
}

// TestNNZAnalytic: the analytic entry count matches the assembled form
// for both stencils.
func TestNNZAnalytic(t *testing.T) {
	for _, s := range []Spec{spec5, spec27} {
		A, err := s.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if s.NNZ() != A.NNZ() {
			t.Errorf("%s: analytic NNZ %d != assembled %d", s.Stencil, s.NNZ(), A.NNZ())
		}
	}
}

// TestMulVecMatchesAssembled: the sequential matrix-free reference
// apply is bitwise the assembled CSR product.
func TestMulVecMatchesAssembled(t *testing.T) {
	for _, s := range []Spec{spec5, spec27, {Stencil: "5pt", Nx: 6, Ny: 6, Center: 1.8, Off: -0.2}} {
		A, err := s.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		n := s.N()
		x := sparse.RandomVector(n, 11)
		want := make([]float64, n)
		got := make([]float64, n)
		A.MulVec(x, want)
		s.MulVec(x, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: MulVec[%d] = %v, want %v", s.Stencil, i, got[i], want[i])
			}
		}
	}
}

// TestBitIdenticalToAssembled is the subsystem's ground truth: at every
// rank count (including uneven slab splits) the matrix-free Apply and
// ApplyDot must produce bit-identical vectors — and bit-identical local
// dot partials — to the assembled-CSR ghost executor over the same
// brick layout, with the same local entry counts feeding the flop
// charges.
func TestBitIdenticalToAssembled(t *testing.T) {
	for _, s := range []Spec{spec5, spec27, {Stencil: "27pt", Nx: 2, Ny: 2, Nz: 8, Center: 7.5, Off: -0.25}} {
		A, err := s.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		xs := sparse.RandomVector(s.N(), 3)
		for _, np := range []int{1, 2, 3, 4, 8} {
			if _, err := s.Brick(np); err != nil {
				continue // slab dimension thinner than np
			}
			if _, err := machine(np).RunChecked(func(p *comm.Proc) {
				op, err := New(p, s)
				if err != nil {
					t.Error(err)
					return
				}
				ref := spmv.NewRowBlockCSRGhost(p, A, op.Dist())
				if op.N() != ref.N() || op.NNZ() != ref.NNZ() {
					t.Errorf("np=%d: shape %d/%d vs %d/%d", np, op.N(), op.NNZ(), ref.N(), ref.NNZ())
				}
				if op.LocalNNZ() != ref.LocalNNZ() {
					t.Errorf("np=%d rank %d: local nnz %d, assembled %d", np, p.Rank(), op.LocalNNZ(), ref.LocalNNZ())
				}
				x := darray.New(p, op.Dist())
				x.SetGlobal(func(g int) float64 { return xs[g] })
				ym := darray.New(p, op.Dist())
				ya := darray.New(p, op.Dist())
				op.Apply(x, ym)
				ref.Apply(x, ya)
				ml, al := ym.Local(), ya.Local()
				for i := range ml {
					if ml[i] != al[i] {
						t.Errorf("np=%d rank %d: Apply[%d] = %v, assembled %v", np, p.Rank(), i, ml[i], al[i])
						return
					}
				}
				dm := op.ApplyDot(x, ym)
				da := ref.ApplyDot(x, ya)
				if dm != da {
					t.Errorf("np=%d rank %d: ApplyDot partial %v, assembled %v", np, p.Rank(), dm, da)
				}
				for i := range ml {
					if ml[i] != al[i] {
						t.Errorf("np=%d rank %d: ApplyDot y[%d] = %v, assembled %v", np, p.Rank(), i, ml[i], al[i])
						return
					}
				}
			}); err != nil {
				t.Fatalf("np=%d: %v", np, err)
			}
		}
	}
}

// TestGhostCountMatchesInspector: the geometric schedule fetches
// exactly the ghost set the inspector would discover — same remote
// element count per rank, so per-iteration modeled communication is
// identical and only setup differs.
func TestGhostCountMatchesInspector(t *testing.T) {
	for _, s := range []Spec{spec5, spec27} {
		A, err := s.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		for _, np := range []int{1, 2, 3, 4} {
			machine(np).Run(func(p *comm.Proc) {
				op, err := New(p, s)
				if err != nil {
					t.Error(err)
					return
				}
				ref := spmv.NewRowBlockCSRGhost(p, A, op.Dist())
				if op.NGhosts() != ref.NGhosts() {
					t.Errorf("%s np=%d rank %d: geometric ghosts %d, inspector %d",
						s.Stencil, np, p.Rank(), op.NGhosts(), ref.NGhosts())
				}
			})
		}
	}
}

// TestApplyAllocFree: the stencil hot path allocates nothing in steady
// state. AllocsPerRun counts process-wide allocations, so every rank
// runs the measured loop in lockstep (the halo exchange keeps them
// aligned) and the total must still be zero.
func TestApplyAllocFree(t *testing.T) {
	for _, s := range []Spec{spec5, spec27} {
		for _, np := range []int{1, 4} {
			var allocs float64
			machine(np).Run(func(p *comm.Proc) {
				op, err := New(p, s)
				if err != nil {
					t.Error(err)
					return
				}
				x := darray.New(p, op.Dist())
				y := darray.New(p, op.Dist())
				x.SetGlobal(func(g int) float64 { return float64(g%5) - 2 })
				op.Apply(x, y) // warm-up: pools fill
				op.ApplyDot(x, y)
				const runs = 10
				if p.Rank() == 0 {
					allocs = testing.AllocsPerRun(runs, func() {
						op.Apply(x, y)
						op.ApplyDot(x, y)
					})
				} else {
					// AllocsPerRun calls f runs+1 times; match it so
					// the halo exchanges stay aligned across ranks.
					for i := 0; i < runs+1; i++ {
						op.Apply(x, y)
						op.ApplyDot(x, y)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("%s np=%d: Apply+ApplyDot allocates %v in steady state", s.Stencil, np, allocs)
			}
		}
	}
}

// TestRebindBitIdentical: rebinding a cached operator onto a fresh
// run's Proc (the warm plan-registry path) reproduces the cold Apply
// bit for bit.
func TestRebindBitIdentical(t *testing.T) {
	s := spec27
	np := 3
	xs := sparse.RandomVector(s.N(), 5)
	ops := make([]*Operator, np)
	cold := make([]float64, 0, s.N())
	machine(np).Run(func(p *comm.Proc) {
		op, err := New(p, s)
		if err != nil {
			t.Error(err)
			return
		}
		ops[p.Rank()] = op
		x := darray.New(p, op.Dist())
		y := darray.New(p, op.Dist())
		x.SetGlobal(func(g int) float64 { return xs[g] })
		op.Apply(x, y)
		full := y.Gather()
		if p.Rank() == 0 {
			cold = append(cold, full...)
		}
	})
	machine(np).Run(func(p *comm.Proc) {
		op := ops[p.Rank()]
		op.Rebind(p)
		x := darray.New(p, op.Dist())
		y := darray.New(p, op.Dist())
		x.SetGlobal(func(g int) float64 { return xs[g] })
		op.Apply(x, y)
		full := y.Gather()
		if p.Rank() == 0 {
			for i := range full {
				if full[i] != cold[i] {
					t.Errorf("warm Apply[%d] = %v, cold %v", i, full[i], cold[i])
					return
				}
			}
		}
	})
}

// TestSpecValidate covers the admission-time bounds the serving tier
// relies on, and the slab-vs-np check at brick time.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		frag string
	}{
		{Spec{Stencil: "9pt", Nx: 4, Ny: 4}, "stencil"},
		{Spec{Stencil: "5pt", Nx: 0, Ny: 4}, "nx"},
		{Spec{Stencil: "5pt", Nx: 4, Ny: MaxDim + 1}, "ny"},
		{Spec{Stencil: "5pt", Nx: 4, Ny: 4, Nz: 2}, "nz"},
		{Spec{Stencil: "27pt", Nx: 4, Ny: 4, Nz: 0}, "nz"},
		{Spec{Stencil: "5pt", Nx: 4, Ny: 4, Center: 0, Off: -2}, "center"},
	}
	for _, c := range cases {
		err := c.spec.WithDefaults().Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%+v: error %v, want mention of %q", c.spec, err, c.frag)
		}
	}
	for _, ok := range []Spec{spec5, spec27} {
		if err := ok.WithDefaults().Validate(); err != nil {
			t.Errorf("%+v: unexpected %v", ok, err)
		}
	}
	// Slab thinner than the rank count is a brick-time error.
	if _, err := (Spec{Stencil: "5pt", Nx: 2, Ny: 8}).Brick(4); err == nil {
		t.Error("5pt Nx=2 over np=4: expected brick error")
	}
	if _, err := New(nil, Spec{Stencil: "tri"}); err == nil {
		t.Error("New with bad spec: expected error")
	}
}

// TestKeyAndDefaults: the cache key carries the coefficients (they are
// the operator's values) and defaulting picks the canonical pair.
func TestKeyAndDefaults(t *testing.T) {
	if k := spec5.Key(); k != "5pt:11x5:c4:o-1" {
		t.Errorf("key = %q", k)
	}
	if k := (Spec{Stencil: "5pt", Nx: 8, Ny: 8, Center: 1.8, Off: -0.2}).Key(); k != "5pt:8x8:c1.8:o-0.2" {
		t.Errorf("key = %q", k)
	}
	if k := spec27.Key(); k != "27pt:3x4x9:c26:o-1" {
		t.Errorf("key = %q", k)
	}
	d := spec27.WithDefaults()
	if d.Center != Center27pt || d.Off != OffDefault {
		t.Errorf("defaults = %g/%g", d.Center, d.Off)
	}
	// Off = 0 with a nonzero center is a valid (diagonal) operator,
	// not a trigger for defaulting.
	nd := Spec{Stencil: "5pt", Nx: 4, Ny: 4, Center: 2}.WithDefaults()
	if nd.Off != 0 || nd.Center != 2 {
		t.Errorf("explicit coefficients rewritten: %+v", nd)
	}
}

// TestModelBytesTiny: the matrix-free plan's registry footprint is
// orders of magnitude below the assembled CSR's for the same grid.
func TestModelBytesTiny(t *testing.T) {
	s := Spec{Stencil: "27pt", Nx: 32, Ny: 32, Nz: 32}
	mb := s.ModelBytes(4)
	if mb <= 0 {
		t.Fatalf("ModelBytes = %d", mb)
	}
	csrBytes := int64(s.NNZ()) * 16 // value + column index per entry
	if mb*100 > csrBytes {
		t.Errorf("ModelBytes %d not well below assembled %d", mb, csrBytes)
	}
}
