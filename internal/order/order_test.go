package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
)

// shuffled returns a randomly relabelled copy of A (destroying any
// banded structure) plus the scramble used.
func shuffled(A *sparse.CSR, seed int64) *sparse.CSR {
	n := A.NRows
	rng := rand.New(rand.NewSource(seed))
	perm := make(Permutation, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return PermuteSym(A, perm)
}

func TestPermutationHelpers(t *testing.T) {
	p := Permutation{2, 0, 1}
	if !p.Valid() {
		t.Fatal("valid permutation rejected")
	}
	inv := p.Inverse()
	for newIdx, oldIdx := range p {
		if inv[oldIdx] != newIdx {
			t.Fatalf("inverse wrong at %d", newIdx)
		}
	}
	for _, bad := range []Permutation{{0, 0, 1}, {0, 3, 1}, {-1, 0, 1}} {
		if bad.Valid() {
			t.Errorf("invalid permutation %v accepted", bad)
		}
	}
	x := []float64{10, 20, 30}
	px := PermuteVec(x, p) // out[new] = x[perm[new]] = {30, 10, 20}
	if px[0] != 30 || px[1] != 10 || px[2] != 20 {
		t.Errorf("PermuteVec = %v", px)
	}
	back := UnpermuteVec(px, p)
	for i := range x {
		if back[i] != x[i] {
			t.Errorf("UnpermuteVec did not invert: %v", back)
		}
	}
}

func TestPermuteSymPreservesValues(t *testing.T) {
	A := sparse.RandomSPD(30, 5, 3)
	perm := RCM(A)
	B := PermuteSym(A, perm)
	if B.NNZ() != A.NNZ() {
		t.Fatalf("nnz changed: %d -> %d", A.NNZ(), B.NNZ())
	}
	if !B.IsSymmetric(1e-12) {
		t.Error("symmetry lost")
	}
	inv := perm.Inverse()
	for i := 0; i < A.NRows; i++ {
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			j := A.Col[k]
			if got := B.At(inv[i], inv[j]); math.Abs(got-A.Val[k]) > 1e-15 {
				t.Fatalf("entry (%d,%d) lost: %g vs %g", i, j, got, A.Val[k])
			}
		}
	}
}

func TestRCMRecoversBandedStructure(t *testing.T) {
	// A banded matrix scrambled by a random permutation: RCM must bring
	// the bandwidth back near the original.
	orig := sparse.Banded(200, 3)
	origBW := Bandwidth(orig)
	scrambled := shuffled(orig, 7)
	if Bandwidth(scrambled) <= 2*origBW {
		t.Fatalf("scramble did not destroy bandwidth: %d", Bandwidth(scrambled))
	}
	perm := RCM(scrambled)
	if !perm.Valid() {
		t.Fatal("RCM produced an invalid permutation")
	}
	restored := PermuteSym(scrambled, perm)
	if got := Bandwidth(restored); got > 3*origBW {
		t.Errorf("RCM bandwidth %d, original %d, scrambled %d",
			got, origBW, Bandwidth(scrambled))
	}
	if Profile(restored) >= Profile(scrambled) {
		t.Errorf("RCM did not reduce profile: %d vs %d", Profile(restored), Profile(scrambled))
	}
}

func TestRCMOnLaplace2D(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	perm := RCM(A)
	B := PermuteSym(A, perm)
	if Bandwidth(B) > Bandwidth(A) {
		t.Errorf("RCM worsened the 2-D Laplacian bandwidth: %d -> %d", Bandwidth(A), Bandwidth(B))
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint chains: RCM must order both (a valid permutation).
	coo := sparse.NewCOO(10, 10)
	for i := 0; i < 4; i++ {
		coo.Add(i, i+1, -1)
		coo.Add(i+1, i, -1)
	}
	for i := 5; i < 9; i++ {
		coo.Add(i, i+1, -1)
		coo.Add(i+1, i, -1)
	}
	for i := 0; i < 10; i++ {
		coo.Add(i, i, 3)
	}
	A := coo.ToCSR()
	perm := RCM(A)
	if !perm.Valid() {
		t.Fatalf("invalid permutation %v", perm)
	}
	B := PermuteSym(A, perm)
	if Bandwidth(B) > 2 {
		t.Errorf("two chains should reorder to bandwidth <= 2, got %d", Bandwidth(B))
	}
}

// Solving the permuted system must give the permuted solution.
func TestPermutedSolveConsistency(t *testing.T) {
	A := sparse.RandomSPD(40, 4, 11)
	b := sparse.RandomVector(40, 5)
	x := make([]float64, 40)
	if _, err := seq.CG(A, b, x, seq.Options{Tol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	perm := RCM(A)
	B := PermuteSym(A, perm)
	pb := PermuteVec(b, perm)
	px := make([]float64, 40)
	if _, err := seq.CG(B, pb, px, seq.Options{Tol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	got := UnpermuteVec(px, perm)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-7 {
			t.Fatalf("permuted solve differs at %d: %g vs %g", i, got[i], x[i])
		}
	}
}

func TestPermuteSymValidation(t *testing.T) {
	A := sparse.Laplace1D(5)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length permutation should panic")
		}
	}()
	PermuteSym(A, Permutation{0, 1})
}

func TestBandwidthAndProfile(t *testing.T) {
	A := sparse.Laplace1D(6)
	if Bandwidth(A) != 1 {
		t.Errorf("tridiagonal bandwidth %d", Bandwidth(A))
	}
	if Profile(A) != 5 { // rows 1..5 each reach back 1
		t.Errorf("tridiagonal profile %d", Profile(A))
	}
	d := sparse.DiagWithEigenvalues([]float64{1, 2, 3})
	if Bandwidth(d) != 0 || Profile(d) != 0 {
		t.Errorf("diagonal bandwidth/profile %d/%d", Bandwidth(d), Profile(d))
	}
}

// Property: RCM always yields a valid permutation and never increases
// the profile of an already-banded matrix by more than a constant.
func TestRCMQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 5
		A := sparse.RandomSPD(n, 4, seed)
		perm := RCM(A)
		if !perm.Valid() {
			return false
		}
		B := PermuteSym(A, perm)
		return B.NNZ() == A.NNZ() && B.IsSymmetric(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
