// Package order implements sparse matrix reordering. The paper's
// irregular-problem story (§5.2.2) assumes the matrix arrives with
// whatever structure the application produced; a bandwidth-reducing
// permutation such as Reverse Cuthill-McKee (RCM) concentrates the
// nonzeros near the diagonal, which directly shrinks the
// inspector-executor halo (internal/inspector): after RCM, the remote
// elements a row block needs come almost entirely from neighbouring
// blocks. Experiment E16 measures that coupling.
package order

import (
	"fmt"
	"sort"

	"hpfcg/internal/sparse"
)

// Permutation maps new index -> old index (perm[new] = old).
type Permutation []int

// Inverse returns the old -> new mapping.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for newIdx, oldIdx := range p {
		inv[oldIdx] = newIdx
	}
	return inv
}

// Valid reports whether p is a permutation of [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// RCM computes the Reverse Cuthill-McKee ordering of the symmetric
// pattern of A (the pattern of A+A^T is used, so mildly nonsymmetric
// inputs are fine). Disconnected components are ordered one after
// another, each from a pseudo-peripheral start node.
func RCM(A *sparse.CSR) Permutation {
	n := A.NRows
	adj := symmetricAdjacency(A)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(adj, deg, start)
		// Cuthill-McKee BFS from root, neighbours by increasing degree.
		queue := []int{root}
		visited[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			next := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
				}
			}
			sort.Slice(next, func(a, b int) bool {
				if deg[next[a]] != deg[next[b]] {
					return deg[next[a]] < deg[next[b]]
				}
				return next[a] < next[b]
			})
			queue = append(queue, next...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// symmetricAdjacency builds sorted adjacency lists of A+A^T's
// off-diagonal pattern.
func symmetricAdjacency(A *sparse.CSR) [][]int {
	n := A.NRows
	sets := make([]map[int]bool, n)
	for i := range sets {
		sets[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			j := A.Col[k]
			if j == i || j >= n {
				continue
			}
			sets[i][j] = true
			sets[j][i] = true
		}
	}
	adj := make([][]int, n)
	for i, s := range sets {
		adj[i] = make([]int, 0, len(s))
		for j := range s {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	return adj
}

// pseudoPeripheral finds a node of near-maximal eccentricity in the
// component of start (the George-Liu heuristic: repeat BFS from the
// farthest minimum-degree node until the eccentricity stops growing).
func pseudoPeripheral(adj [][]int, deg []int, start int) int {
	root := start
	lastEcc := -1
	for {
		levels, ecc := bfsLevels(adj, root)
		if ecc <= lastEcc {
			return root
		}
		lastEcc = ecc
		// Pick a minimum-degree node in the last level.
		best, bestDeg := -1, int(^uint(0)>>1)
		for v, lv := range levels {
			if lv == ecc && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if best < 0 || best == root {
			return root
		}
		root = best
	}
}

// bfsLevels returns per-node BFS levels (-1 = unreachable) and the
// eccentricity of the root within its component.
func bfsLevels(adj [][]int, root int) ([]int, int) {
	levels := make([]int, len(adj))
	for i := range levels {
		levels[i] = -1
	}
	levels[root] = 0
	queue := []int{root}
	ecc := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if levels[w] < 0 {
				levels[w] = levels[v] + 1
				if levels[w] > ecc {
					ecc = levels[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return levels, ecc
}

// PermuteSym returns P·A·P^T for the permutation (perm[new] = old):
// entry (i, j) of the result is A(perm[i], perm[j]). Symmetry and
// values are preserved; only the labelling changes.
func PermuteSym(A *sparse.CSR, perm Permutation) *sparse.CSR {
	n := A.NRows
	if len(perm) != n || n != A.NCols {
		panic(fmt.Sprintf("order: permutation length %d for %dx%d matrix", len(perm), A.NRows, A.NCols))
	}
	inv := perm.Inverse()
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			coo.Add(inv[i], inv[A.Col[k]], A.Val[k])
		}
	}
	return coo.ToCSR()
}

// PermuteVec applies the permutation to a vector: out[new] = x[perm[new]].
func PermuteVec(x []float64, perm Permutation) []float64 {
	out := make([]float64, len(x))
	for newIdx, oldIdx := range perm {
		out[newIdx] = x[oldIdx]
	}
	return out
}

// UnpermuteVec inverts PermuteVec: out[perm[new]] = x[new].
func UnpermuteVec(x []float64, perm Permutation) []float64 {
	out := make([]float64, len(x))
	for newIdx, oldIdx := range perm {
		out[oldIdx] = x[newIdx]
	}
	return out
}

// Bandwidth returns max |i - j| over the stored entries of A.
func Bandwidth(A *sparse.CSR) int {
	bw := 0
	for i := 0; i < A.NRows; i++ {
		for k := A.RowPtr[i]; k < A.RowPtr[i+1]; k++ {
			d := i - A.Col[k]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the sum over rows of the distance from the first
// stored entry to the diagonal (the "envelope" size RCM minimises).
func Profile(A *sparse.CSR) int {
	total := 0
	for i := 0; i < A.NRows; i++ {
		if A.RowPtr[i] == A.RowPtr[i+1] {
			continue
		}
		first := A.Col[A.RowPtr[i]]
		if first < i {
			total += i - first
		}
	}
	return total
}
