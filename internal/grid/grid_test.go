package grid

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

func TestProcGridLayout(t *testing.T) {
	g := NewProcGrid(6)
	if g.Rows != 2 || g.Cols != 3 {
		t.Fatalf("grid %dx%d, want 2x3", g.Rows, g.Cols)
	}
	if g.NP() != 6 {
		t.Errorf("NP = %d", g.NP())
	}
	if g.Rank(1, 2) != 5 {
		t.Errorf("Rank(1,2) = %d", g.Rank(1, 2))
	}
	pr, pc := g.Coords(4)
	if pr != 1 || pc != 1 {
		t.Errorf("Coords(4) = (%d,%d)", pr, pc)
	}
	row := g.RowRanks(1)
	if len(row) != 3 || row[0] != 3 || row[2] != 5 {
		t.Errorf("RowRanks(1) = %v", row)
	}
	col := g.ColRanks(2)
	if len(col) != 2 || col[0] != 2 || col[1] != 5 {
		t.Errorf("ColRanks(2) = %v", col)
	}
}

func checkerboardApply(t *testing.T, np, n int) {
	t.Helper()
	A := sparse.RandomSPD(n, 5, int64(n+np)).ToDense()
	g := NewProcGrid(np)
	want := make([]float64, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	A.MulVec(x, want)
	var got []float64
	machine(np).Run(func(p *comm.Proc) {
		cb := NewDenseCheckerboard(p, A, g)
		var xBlock []float64
		pr, pc := g.Coords(p.Rank())
		if pr == 0 {
			lo := pc * n / g.Cols
			xBlock = append([]float64(nil), x[lo:lo+cb.XLen()]...)
		}
		y := cb.Apply(xBlock)
		if pc != 0 && y != nil {
			t.Errorf("np=%d rank %d off column 0 got y", np, p.Rank())
		}
		full := cb.GatherY(y)
		if p.Rank() == 0 {
			got = full
		}
	})
	if len(got) != n {
		t.Fatalf("np=%d: gathered %d elements", np, len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("np=%d n=%d: elem %d = %g, want %g", np, n, i, got[i], want[i])
		}
	}
}

func TestCheckerboardApply(t *testing.T) {
	for _, c := range []struct{ np, n int }{
		{1, 7}, {2, 10}, {4, 16}, {4, 17}, {6, 23}, {9, 30}, {16, 32},
	} {
		checkerboardApply(t, c.np, c.n)
	}
}

func TestCheckerboardRepeatedApplies(t *testing.T) {
	n, np := 20, 4
	A := sparse.Laplace1D(n).ToDense()
	g := NewProcGrid(np)
	machine(np).Run(func(p *comm.Proc) {
		cb := NewDenseCheckerboard(p, A, g)
		pr, pc := g.Coords(p.Rank())
		for rep := 1; rep <= 3; rep++ {
			var xBlock []float64
			if pr == 0 {
				xBlock = make([]float64, cb.XLen())
				lo := pc * n / g.Cols
				for i := range xBlock {
					xBlock[i] = float64(rep * (lo + i))
				}
			}
			y := cb.Apply(xBlock)
			full := cb.GatherY(y)
			if p.Rank() == 0 {
				want := make([]float64, n)
				xf := make([]float64, n)
				for i := range xf {
					xf[i] = float64(rep * i)
				}
				A.MulVec(xf, want)
				for i := range want {
					if math.Abs(full[i]-want[i]) > 1e-9 {
						t.Errorf("rep %d elem %d: %g want %g", rep, i, full[i], want[i])
						return
					}
				}
			}
		}
	})
}

// The §4-beating property: for large n the checkerboard moves fewer
// bytes per processor than the row-striped broadcast.
func TestCheckerboardBeatsStripesOnBytes(t *testing.T) {
	n, np := 512, 16
	A := sparse.Banded(n, 2).ToDense()
	g := NewProcGrid(np)

	cbStats := machine(np).Run(func(p *comm.Proc) {
		cb := NewDenseCheckerboard(p, A, g)
		var xBlock []float64
		if pr, _ := g.Coords(p.Rank()); pr == 0 {
			xBlock = make([]float64, cb.XLen())
		}
		cb.Apply(xBlock)
	})
	// Striped comparison: an allgather of the whole x (the DenseRowBlock
	// path) moves n*(np-1)/np elements into every processor.
	stripeBytes := int64(8 * n * (np - 1) / np * np) // total across procs
	if cbStats.TotalBytes >= stripeBytes {
		t.Errorf("checkerboard moved %d bytes total, striping moves %d", cbStats.TotalBytes, stripeBytes)
	}
}

func TestCheckerboardValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func(p *comm.Proc)
	}{
		{"grid-mismatch", func(p *comm.Proc) {
			NewDenseCheckerboard(p, sparse.NewDense(4, 4), ProcGrid{Rows: 3, Cols: 3})
		}},
		{"rectangular", func(p *comm.Proc) {
			NewDenseCheckerboard(p, sparse.NewDense(4, 5), NewProcGrid(p.NP()))
		}},
		{"bad-x-block", func(p *comm.Proc) {
			cb := NewDenseCheckerboard(p, sparse.NewDense(8, 8), NewProcGrid(p.NP()))
			cb.Apply(make([]float64, 99))
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			machine(2).Run(c.fn)
		})
	}
}
