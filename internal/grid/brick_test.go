package grid

import "testing"

func TestBrick3IndexRoundTrip(t *testing.T) {
	b, err := NewBrick3(3, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 60 {
		t.Fatalf("N = %d, want 60", b.N())
	}
	for g := 0; g < b.N(); g++ {
		x, y, z := b.Coords(g)
		if b.Index(x, y, z) != g {
			t.Fatalf("Index(Coords(%d)) = %d", g, b.Index(x, y, z))
		}
	}
	// x must vary fastest so each rank's slab is contiguous.
	if b.Index(1, 0, 0) != 1 || b.Index(0, 1, 0) != 3 || b.Index(0, 0, 1) != 15 {
		t.Fatalf("lexicographic order broken: %d %d %d",
			b.Index(1, 0, 0), b.Index(0, 1, 0), b.Index(0, 0, 1))
	}
}

func TestBrick3VectorDistMatchesSlabs(t *testing.T) {
	b, err := NewBrick3(4, 4, 10, 3) // uneven: 10 planes over 3 ranks
	if err != nil {
		t.Fatal(err)
	}
	d := b.VectorDist()
	if d.N() != b.N() || d.NP() != 3 {
		t.Fatalf("dist shape %d/%d", d.N(), d.NP())
	}
	total := 0
	for r := 0; r < 3; r++ {
		lo, hi := b.ZRange(r)
		if got := d.Count(r); got != (hi-lo)*b.X*b.Y {
			t.Fatalf("rank %d: count %d, want %d planes * %d", r, got, hi-lo, b.X*b.Y)
		}
		if d.Lo(r) != lo*b.X*b.Y {
			t.Fatalf("rank %d: lo %d, want %d", r, d.Lo(r), lo*b.X*b.Y)
		}
		total += d.Count(r)
	}
	if total != b.N() {
		t.Fatalf("counts cover %d of %d points", total, b.N())
	}
}

func TestBrick3NewRejectsBadShapes(t *testing.T) {
	if _, err := NewBrick3(0, 4, 4, 1); err == nil {
		t.Fatal("accepted zero dimension")
	}
	if _, err := NewBrick3(4, 4, 2, 4); err == nil {
		t.Fatal("accepted fewer z-planes than processors")
	}
	if _, err := NewBrick3(4, 4, 4, 0); err == nil {
		t.Fatal("accepted zero processors")
	}
}

// Coarsening edge cases: odd dims stop immediately, dims not divisible
// by 2^levels clamp partway, and a processor count larger than the
// would-be coarsest grid clamps rather than panicking.
func TestClampLevelsOddDims(t *testing.T) {
	b, _ := NewBrick3(7, 8, 8, 2)
	if got := ClampLevels(b, 4); got != 1 {
		t.Fatalf("odd x-dim: levels = %d, want 1", got)
	}
	if b.CanCoarsen() {
		t.Fatal("odd x-dim brick claims it can coarsen")
	}
}

func TestClampLevelsNonPowerOfTwoDims(t *testing.T) {
	// 12 halves twice (12 -> 6 -> 3) before going odd.
	b, _ := NewBrick3(12, 12, 12, 2)
	if got := ClampLevels(b, 4); got != 3 {
		t.Fatalf("12^3 grid: levels = %d, want 3", got)
	}
	// A full power-of-two grid reaches the requested depth.
	b, _ = NewBrick3(16, 16, 16, 2)
	if got := ClampLevels(b, 4); got != 4 {
		t.Fatalf("16^3 grid: levels = %d, want 4", got)
	}
}

func TestClampLevelsNPLargerThanCoarseGrid(t *testing.T) {
	// 4x4x16 over 8 ranks: one coarsening gives 2x2x8 (one plane per
	// rank); a second would give 1x1x4 — 4 points for 8 ranks — so the
	// depth clamps at 2 instead of panicking in level setup.
	b, err := NewBrick3(4, 4, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ClampLevels(b, 4); got != 2 {
		t.Fatalf("levels = %d, want 2", got)
	}
	c := b.Coarsen()
	if c.CanCoarsen() {
		t.Fatal("2x2x8 over 8 ranks claims it can coarsen below np points")
	}
}

func TestClampLevelsNeverBelowOne(t *testing.T) {
	b, _ := NewBrick3(3, 3, 3, 1)
	if got := ClampLevels(b, 0); got != 1 {
		t.Fatalf("levels = %d, want 1", got)
	}
}
