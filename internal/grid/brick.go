package grid

import (
	"fmt"

	"hpfcg/internal/dist"
)

// Brick3 is a three-dimensional structured grid of X x Y x Z points
// decomposed over NP processors in slabs of z-planes — the HPCG-style
// domain decomposition where each rank owns a contiguous brick of the
// global grid. Points are numbered lexicographically with x fastest
// and z slowest, so every rank's points form one contiguous global
// index range and the vector distribution is an ordinary contiguous
// descriptor (the §5 irregular-distribution machinery then treats the
// stencil's halo exactly like any other ghost set).
type Brick3 struct {
	X, Y, Z int // global grid dimensions
	Procs   int // ranks the z-planes are dealt over
}

// NewBrick3 validates and builds a brick decomposition. Every rank
// must own at least one z-plane.
func NewBrick3(x, y, z, np int) (Brick3, error) {
	if x < 1 || y < 1 || z < 1 {
		return Brick3{}, fmt.Errorf("grid: brick dims %dx%dx%d must be positive", x, y, z)
	}
	if np < 1 {
		return Brick3{}, fmt.Errorf("grid: brick needs at least one processor, got %d", np)
	}
	if z < np {
		return Brick3{}, fmt.Errorf("grid: %d z-planes cannot cover %d processors", z, np)
	}
	return Brick3{X: x, Y: y, Z: z, Procs: np}, nil
}

// N returns the global point count.
func (b Brick3) N() int { return b.X * b.Y * b.Z }

// Index returns the global point index of grid coordinates (x, y, z).
func (b Brick3) Index(x, y, z int) int { return (z*b.Y+y)*b.X + x }

// Coords inverts Index.
func (b Brick3) Coords(g int) (x, y, z int) {
	x = g % b.X
	g /= b.X
	return x, g % b.Y, g / b.Y
}

// planeDist distributes the z-planes over the ranks.
func (b Brick3) planeDist() dist.Block { return dist.NewBlock(b.Z, b.Procs) }

// ZRange returns the half-open range of z-planes rank r owns.
func (b Brick3) ZRange(r int) (lo, hi int) {
	d := b.planeDist()
	lo = d.Lo(r)
	return lo, lo + d.Count(r)
}

// VectorDist returns the contiguous distribution of the grid's point
// vector implied by the slab decomposition: rank r owns the points of
// its z-planes, a contiguous global range because z varies slowest.
func (b Brick3) VectorDist() dist.Irregular {
	cuts := make([]int, b.Procs+1)
	d := b.planeDist()
	for r := 0; r < b.Procs; r++ {
		cuts[r+1] = (d.Lo(r) + d.Count(r)) * b.X * b.Y
	}
	return dist.NewIrregular(cuts)
}

// CanCoarsen reports whether one geometric coarsening step (halving
// every dimension) is possible: all dimensions even, and the coarse
// grid still covering every rank with at least one z-plane and at
// least NP points in total.
func (b Brick3) CanCoarsen() bool {
	if b.X%2 != 0 || b.Y%2 != 0 || b.Z%2 != 0 {
		return false
	}
	cx, cy, cz := b.X/2, b.Y/2, b.Z/2
	return cz >= b.Procs && cx*cy*cz >= b.Procs
}

// Coarsen halves every dimension. It panics when CanCoarsen is false;
// use ClampLevels to size a hierarchy safely.
func (b Brick3) Coarsen() Brick3 {
	if !b.CanCoarsen() {
		panic(fmt.Sprintf("grid: brick %dx%dx%d/%d cannot coarsen", b.X, b.Y, b.Z, b.Procs))
	}
	return Brick3{X: b.X / 2, Y: b.Y / 2, Z: b.Z / 2, Procs: b.Procs}
}

// ClampLevels returns the deepest achievable multigrid hierarchy depth
// not exceeding want: coarsening stops at odd dimensions, at
// dimensions no longer divisible by two, and before a coarse grid
// would hold fewer points (or z-planes) than processors — the caller
// gets a clamped depth instead of a panic deep in level setup. The
// result is always at least 1 (the fine grid itself).
func ClampLevels(b Brick3, want int) int {
	levels := 1
	for levels < want && b.CanCoarsen() {
		b = b.Coarsen()
		levels++
	}
	return levels
}
