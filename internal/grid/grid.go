// Package grid implements two-dimensional (BLOCK, BLOCK) data
// mappings on a processor grid — HPF's `PROCESSORS P(R,C)` with both
// matrix dimensions distributed. The paper's §4 concludes that "it is
// not possible to reduce the communication time if the matrix is
// partitioned into regular stripes either in a row-wise or column-wise
// fashion"; the checkerboard partition is the standard way past that
// limit (Kumar et al., the paper's ref [17]): the matrix-vector
// product's communication drops from O(t_w·n) per processor to
// O(t_w·n/√NP·log NP), at the price of a column broadcast and a row
// reduction. Experiment E13 measures the crossover against the striped
// operators.
package grid

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// ProcGrid is an R x C arrangement of the machine's NP = R*C
// processors, rank = pr*C + pc (row-major).
type ProcGrid struct {
	Rows, Cols int
}

// NewProcGrid factors np into the most nearly square grid.
func NewProcGrid(np int) ProcGrid {
	r, c := topology.Dims(np)
	return ProcGrid{Rows: r, Cols: c}
}

// NP returns the processor count.
func (g ProcGrid) NP() int { return g.Rows * g.Cols }

// Rank returns the rank at grid position (pr, pc).
func (g ProcGrid) Rank(pr, pc int) int { return pr*g.Cols + pc }

// Coords returns the grid position of a rank.
func (g ProcGrid) Coords(rank int) (pr, pc int) { return rank / g.Cols, rank % g.Cols }

// RowRanks returns the ranks of grid row pr, in column order.
func (g ProcGrid) RowRanks(pr int) []int {
	out := make([]int, g.Cols)
	for c := range out {
		out[c] = g.Rank(pr, c)
	}
	return out
}

// ColRanks returns the ranks of grid column pc, in row order.
func (g ProcGrid) ColRanks(pc int) []int {
	out := make([]int, g.Rows)
	for r := range out {
		out[r] = g.Rank(r, pc)
	}
	return out
}

// DenseCheckerboard is a dense matrix distributed (BLOCK, BLOCK) over
// a processor grid: processor (pr, pc) stores the block
// A[rowLo(pr):rowHi(pr), colLo(pc):colHi(pc)].
//
// The mat-vec convention follows the textbook algorithm: the operand
// x lives block-distributed along grid row 0 (processor (0, pc) holds
// the pc-th column block of x) and the result y along grid column 0
// (processor (pr, 0) ends with the pr-th row block). Apply performs:
// column broadcast of x blocks, local block multiply, row reduction of
// partial results.
type DenseCheckerboard struct {
	p        *comm.Proc
	g        ProcGrid
	rowD     dist.Block // n over grid rows
	colD     dist.Block // n over grid cols
	local    [][]float64
	rowGroup comm.Group
	colGroup comm.Group
	n        int
}

// NewDenseCheckerboard slices this processor's block of dense A.
// Collective: all processors construct it together.
func NewDenseCheckerboard(p *comm.Proc, A *sparse.Dense, g ProcGrid) *DenseCheckerboard {
	if g.NP() != p.NP() {
		panic(fmt.Sprintf("grid: %dx%d grid needs %d procs, machine has %d", g.Rows, g.Cols, g.NP(), p.NP()))
	}
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("grid: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	n := A.NRows
	rowD := dist.NewBlock(n, g.Rows)
	colD := dist.NewBlock(n, g.Cols)
	pr, pc := g.Coords(p.Rank())
	rlo, rn := rowD.Lo(pr), rowD.Count(pr)
	clo, cn := colD.Lo(pc), colD.Count(pc)
	local := make([][]float64, rn)
	for i := range local {
		row := make([]float64, cn)
		copy(row, A.Row(rlo + i)[clo:clo+cn])
		local[i] = row
	}
	return &DenseCheckerboard{
		p:        p,
		g:        g,
		rowD:     rowD,
		colD:     colD,
		local:    local,
		rowGroup: comm.NewGroup(p, g.RowRanks(pr)),
		colGroup: comm.NewGroup(p, g.ColRanks(pc)),
		n:        n,
	}
}

// N returns the global dimension.
func (a *DenseCheckerboard) N() int { return a.n }

// XLen returns the length of this processor's x block if it is on grid
// row 0, else 0.
func (a *DenseCheckerboard) XLen() int {
	pr, pc := a.g.Coords(a.p.Rank())
	if pr != 0 {
		return 0
	}
	return a.colD.Count(pc)
}

// YLen returns the length of this processor's y block if it is on grid
// column 0, else 0.
func (a *DenseCheckerboard) YLen() int {
	pr, pc := a.g.Coords(a.p.Rank())
	if pc != 0 {
		return 0
	}
	return a.rowD.Count(pr)
}

// Apply computes y = A*x. xBlock must hold this processor's x block
// (grid row 0; nil elsewhere); the returned y block is valid on grid
// column 0 and nil elsewhere.
func (a *DenseCheckerboard) Apply(xBlock []float64) []float64 {
	pr, pc := a.g.Coords(a.p.Rank())
	if pr == 0 && len(xBlock) != a.colD.Count(pc) {
		panic(fmt.Sprintf("grid: x block length %d, want %d", len(xBlock), a.colD.Count(pc)))
	}
	// 1. Broadcast the x block down each grid column (root: grid row 0,
	//    which is column-group member index 0).
	xb := a.colGroup.BcastFloats(a.p, 0, xBlock)

	// 2. Local block multiply.
	partial := make([]float64, len(a.local))
	for i, row := range a.local {
		s := 0.0
		for j, v := range row {
			s += v * xb[j]
		}
		partial[i] = s
	}
	a.p.Compute(2 * len(a.local) * len(xb))

	// 3. Sum partials across each grid row onto column 0.
	return a.rowGroup.ReduceSumFloats(a.p, 0, partial)
}

// GatherY collects the distributed y blocks (grid column 0) into the
// full vector on rank 0; other ranks return nil. Used by tests and the
// E13 experiment.
func (a *DenseCheckerboard) GatherY(yBlock []float64) []float64 {
	_, pc := a.g.Coords(a.p.Rank())
	counts := make([]int, a.p.NP())
	for pr := 0; pr < a.g.Rows; pr++ {
		counts[a.g.Rank(pr, 0)] = a.rowD.Count(pr)
	}
	if pc != 0 {
		yBlock = nil
	}
	if len(yBlock) != counts[a.p.Rank()] {
		yBlock = make([]float64, counts[a.p.Rank()])
	}
	return a.p.GatherV(0, yBlock, counts)
}
