package grid

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// SparseCheckerboard is the sparse analogue of DenseCheckerboard:
// the CSR matrix distributed (BLOCK, BLOCK) over the processor grid,
// each processor holding its (row-strip x column-strip) sub-matrix in
// CSR with rebased indices. The mat-vec follows the same three steps
// (column broadcast, local sparse block multiply, row reduction), so
// for a sparse matrix with ~uniform row density the per-processor
// communication is O(n/√NP·log NP) versus the striped O(n) — the same
// escape from §4's striping bound, but for the storage format the
// paper actually cares about.
type SparseCheckerboard struct {
	p        *comm.Proc
	g        ProcGrid
	rowD     dist.Block
	colD     dist.Block
	rowPtr   []int // local block CSR, rebased to (0,0)
	col      []int
	val      []float64
	rowGroup comm.Group
	colGroup comm.Group
	n        int
	nnzLocal int
}

// NewSparseCheckerboard slices this processor's block of A.
// Collective: all processors construct it together.
func NewSparseCheckerboard(p *comm.Proc, A *sparse.CSR, g ProcGrid) *SparseCheckerboard {
	if g.NP() != p.NP() {
		panic(fmt.Sprintf("grid: %dx%d grid needs %d procs, machine has %d", g.Rows, g.Cols, g.NP(), p.NP()))
	}
	if A.NRows != A.NCols {
		panic(fmt.Sprintf("grid: matrix must be square, got %dx%d", A.NRows, A.NCols))
	}
	n := A.NRows
	rowD := dist.NewBlock(n, g.Rows)
	colD := dist.NewBlock(n, g.Cols)
	pr, pc := g.Coords(p.Rank())
	rlo, rn := rowD.Lo(pr), rowD.Count(pr)
	clo, cn := colD.Lo(pc), colD.Count(pc)

	rowPtr := make([]int, rn+1)
	var col []int
	var val []float64
	for i := 0; i < rn; i++ {
		rowPtr[i] = len(col)
		cols, vals := A.Row(rlo + i)
		for k, j := range cols {
			if j >= clo && j < clo+cn {
				col = append(col, j-clo)
				val = append(val, vals[k])
			}
		}
	}
	rowPtr[rn] = len(col)

	return &SparseCheckerboard{
		p:        p,
		g:        g,
		rowD:     rowD,
		colD:     colD,
		rowPtr:   rowPtr,
		col:      col,
		val:      val,
		rowGroup: comm.NewGroup(p, g.RowRanks(pr)),
		colGroup: comm.NewGroup(p, g.ColRanks(pc)),
		n:        n,
		nnzLocal: len(val),
	}
}

// N returns the global dimension.
func (a *SparseCheckerboard) N() int { return a.n }

// LocalNNZ returns this processor's stored entries.
func (a *SparseCheckerboard) LocalNNZ() int { return a.nnzLocal }

// XLen mirrors DenseCheckerboard.XLen.
func (a *SparseCheckerboard) XLen() int {
	pr, pc := a.g.Coords(a.p.Rank())
	if pr != 0 {
		return 0
	}
	return a.colD.Count(pc)
}

// Apply computes y = A*x with the same block conventions as
// DenseCheckerboard: x blocks on grid row 0 in, y blocks on grid
// column 0 out (nil elsewhere).
func (a *SparseCheckerboard) Apply(xBlock []float64) []float64 {
	pr, pc := a.g.Coords(a.p.Rank())
	if pr == 0 && len(xBlock) != a.colD.Count(pc) {
		panic(fmt.Sprintf("grid: x block length %d, want %d", len(xBlock), a.colD.Count(pc)))
	}
	xb := a.colGroup.BcastFloats(a.p, 0, xBlock)
	rn := len(a.rowPtr) - 1
	partial := make([]float64, rn)
	for i := 0; i < rn; i++ {
		s := 0.0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.val[k] * xb[a.col[k]]
		}
		partial[i] = s
	}
	a.p.Compute(2 * a.nnzLocal)
	return a.rowGroup.ReduceSumFloats(a.p, 0, partial)
}

// GatherY mirrors DenseCheckerboard.GatherY.
func (a *SparseCheckerboard) GatherY(yBlock []float64) []float64 {
	_, pc := a.g.Coords(a.p.Rank())
	counts := make([]int, a.p.NP())
	for pr := 0; pr < a.g.Rows; pr++ {
		counts[a.g.Rank(pr, 0)] = a.rowD.Count(pr)
	}
	if pc != 0 {
		yBlock = nil
	}
	if len(yBlock) != counts[a.p.Rank()] {
		yBlock = make([]float64, counts[a.p.Rank()])
	}
	return a.p.GatherV(0, yBlock, counts)
}
