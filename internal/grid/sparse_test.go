package grid

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

func sparseCheckerApply(t *testing.T, np, n int, A *sparse.CSR) {
	t.Helper()
	g := NewProcGrid(np)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	want := make([]float64, n)
	A.MulVec(x, want)
	var got []float64
	machine(np).Run(func(p *comm.Proc) {
		cb := NewSparseCheckerboard(p, A, g)
		var xBlock []float64
		pr, pc := g.Coords(p.Rank())
		if pr == 0 {
			lo := pc * n / g.Cols
			xBlock = append([]float64(nil), x[lo:lo+cb.XLen()]...)
		}
		y := cb.Apply(xBlock)
		full := cb.GatherY(y)
		if p.Rank() == 0 {
			got = full
		}
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("np=%d n=%d: elem %d = %g, want %g", np, n, i, got[i], want[i])
		}
	}
}

func TestSparseCheckerboardApply(t *testing.T) {
	for _, c := range []struct{ np, n int }{
		{1, 9}, {2, 12}, {4, 16}, {6, 25}, {9, 27}, {16, 40},
	} {
		sparseCheckerApply(t, c.np, c.n, sparse.RandomSPD(c.n, 4, int64(c.np)))
	}
	sparseCheckerApply(t, 4, 30, sparse.Laplace2D(5, 6))
	sparseCheckerApply(t, 4, 20, sparse.Banded(20, 3))
}

func TestSparseCheckerboardBlockNNZ(t *testing.T) {
	A := sparse.Laplace1D(16)
	np := 4
	g := NewProcGrid(np)
	total := 0
	var totals [4]int
	machine(np).Run(func(p *comm.Proc) {
		cb := NewSparseCheckerboard(p, A, g)
		totals[p.Rank()] = cb.LocalNNZ()
		if cb.N() != 16 {
			t.Errorf("N = %d", cb.N())
		}
	})
	for _, v := range totals {
		total += v
	}
	if total != A.NNZ() {
		t.Errorf("block nnz sum %d != %d", total, A.NNZ())
	}
}

// Versus striping on a uniformly sparse matrix: fewer bytes per apply.
func TestSparseCheckerboardBytes(t *testing.T) {
	n, np := 1024, 16
	A := sparse.Banded(n, 8)
	g := NewProcGrid(np)

	checker := machine(np).Run(func(p *comm.Proc) {
		cb := NewSparseCheckerboard(p, A, g)
		var xBlock []float64
		if pr, _ := g.Coords(p.Rank()); pr == 0 {
			xBlock = make([]float64, cb.XLen())
		}
		cb.Apply(xBlock)
	})
	d := dist.NewBlock(n, np)
	striped := machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		x := darray.New(p, d)
		y := darray.New(p, d)
		x.Fill(1)
		op.Apply(x, y)
	})
	if checker.TotalBytes >= striped.TotalBytes {
		t.Errorf("checkerboard %d bytes >= striped %d", checker.TotalBytes, striped.TotalBytes)
	}
}
