// Package topology models the interconnection networks the paper's
// communication analysis is parameterised over (hypercube, ring, 2-D
// mesh, fully connected). A Topology supplies hop distances between
// ranks; the analytic cost formulas from §4 of the paper (following
// Kumar et al., "Introduction to Parallel Computing") live here too so
// experiments can compare simulated collective costs against the
// closed-form expressions the paper quotes.
package topology

import (
	"fmt"
	"math/bits"
)

// Topology describes a static point-to-point interconnection network of
// np processors. Distance reports the number of hops a message between
// two ranks traverses; it is used by the communication cost model.
type Topology interface {
	// Name identifies the topology in reports ("hypercube", "ring", ...).
	Name() string
	// Distance returns the hop count between ranks a and b on an
	// np-processor instance of this network. Distance(a, a, np) == 0.
	Distance(a, b, np int) int
	// Diameter returns the maximum hop distance on an np-processor
	// instance.
	Diameter(np int) int
}

// Hypercube is a binary d-cube; rank i connects to i^2^k for each bit k.
// When np is not a power of two the network is the smallest enclosing
// cube with the unused corners removed (distances are still Hamming
// distances).
type Hypercube struct{}

// Name implements Topology.
func (Hypercube) Name() string { return "hypercube" }

// Distance implements Topology: Hamming distance between the ranks.
func (Hypercube) Distance(a, b, np int) int {
	return bits.OnesCount(uint(a ^ b))
}

// Diameter implements Topology: the cube dimension ceil(log2 np).
func (Hypercube) Diameter(np int) int { return Log2Ceil(np) }

// Ring is a bidirectional ring; messages take the shorter way round.
type Ring struct{}

// Name implements Topology.
func (Ring) Name() string { return "ring" }

// Distance implements Topology.
func (Ring) Distance(a, b, np int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if np-d < d {
		d = np - d
	}
	return d
}

// Diameter implements Topology.
func (Ring) Diameter(np int) int { return np / 2 }

// Mesh2D is a 2-D mesh (no wraparound) with near-square dimensions
// chosen by Dims. Ranks are laid out row-major.
type Mesh2D struct{}

// Name implements Topology.
func (Mesh2D) Name() string { return "mesh2d" }

// Distance implements Topology: Manhattan distance on the grid.
func (Mesh2D) Distance(a, b, np int) int {
	_, cols := Dims(np)
	ar, ac := a/cols, a%cols
	br, bc := b/cols, b%cols
	dr, dc := ar-br, ac-bc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Diameter implements Topology.
func (Mesh2D) Diameter(np int) int {
	rows, cols := Dims(np)
	return (rows - 1) + (cols - 1)
}

// FullyConnected is a crossbar: every pair of distinct ranks is one hop
// apart. It is the "communication distance does not matter" reference.
type FullyConnected struct{}

// Name implements Topology.
func (FullyConnected) Name() string { return "full" }

// Distance implements Topology.
func (FullyConnected) Distance(a, b, np int) int {
	if a == b {
		return 0
	}
	return 1
}

// Diameter implements Topology.
func (FullyConnected) Diameter(np int) int {
	if np <= 1 {
		return 0
	}
	return 1
}

// ByName returns the topology with the given Name. It is used by the
// CLIs to select a network from a flag.
func ByName(name string) (Topology, error) {
	switch name {
	case "hypercube":
		return Hypercube{}, nil
	case "ring":
		return Ring{}, nil
	case "mesh2d":
		return Mesh2D{}, nil
	case "full":
		return FullyConnected{}, nil
	}
	return nil, fmt.Errorf("topology: unknown topology %q", name)
}

// Dims factors np into the most nearly square rows x cols grid with
// rows*cols == np and rows <= cols.
func Dims(np int) (rows, cols int) {
	if np <= 0 {
		return 0, 0
	}
	rows = 1
	for f := 1; f*f <= np; f++ {
		if np%f == 0 {
			rows = f
		}
	}
	return rows, np / rows
}

// Log2Ceil returns ceil(log2 n) for n >= 1, and 0 for n <= 1.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CostParams are the machine constants of the paper's cost model
// (Kumar et al. notation): TStartup is the per-message start-up time
// t_s, THop the per-hop switching time t_h, TByte the per-byte transfer
// time t_w, and TFlop the time per floating-point operation.
type CostParams struct {
	TStartup float64
	THop     float64
	TByte    float64
	TFlop    float64
}

// DefaultCostParams models a fast mid-90s MPP of the kind the paper
// targets (Cray T3D / SP-2 class): ~10 us message start-up, 100 ns per
// hop, 10 ns/byte (~100 MB/s links), 10 ns per flop (~100 MFLOPS
// nodes). Only ratios matter for the reproduced shapes.
func DefaultCostParams() CostParams {
	return CostParams{
		TStartup: 10e-6,
		THop:     100e-9,
		TByte:    10e-9,
		TFlop:    10e-9,
	}
}

// PtToPtTime is the modeled cost of a single b-byte message over h hops:
// t_s + h*t_h + b*t_w.
func (c CostParams) PtToPtTime(hops, bytes int) float64 {
	return c.TStartup + float64(hops)*c.THop + float64(bytes)*c.TByte
}

// TreeBcastTime is the closed-form cost of a binomial-tree broadcast of
// a b-byte message among np processors: ceil(log2 np) sequential
// message steps. The hop term uses the topology diameter as the
// pessimistic per-step distance.
func TreeBcastTime(t Topology, c CostParams, np, bytes int) float64 {
	steps := Log2Ceil(np)
	return float64(steps) * c.PtToPtTime(t.Diameter(np), bytes)
}

// ReduceTime is the closed-form cost of a binomial-tree reduction; it
// mirrors TreeBcastTime plus the combine flops at each step.
func ReduceTime(t Topology, c CostParams, np, words int) float64 {
	steps := Log2Ceil(np)
	per := c.PtToPtTime(t.Diameter(np), words*8) + float64(words)*c.TFlop
	return float64(steps) * per
}

// AllreduceTime is reduce-to-root followed by broadcast, the
// implementation the runtime uses for arbitrary np.
func AllreduceTime(t Topology, c CostParams, np, words int) float64 {
	return ReduceTime(t, c, np, words) + TreeBcastTime(t, c, np, words*8)
}

// RabenseifnerAllreduceTime is the closed-form cost of Rabenseifner's
// allreduce (recursive-halving reduce-scatter + recursive-doubling
// allgather) of a words-element vector: the same 2·log2 NP' startups as
// the tree on the power-of-two group NP' but only 2·n·(NP'-1)/NP' words
// on the wire (plus the combine flops of the reduce-scatter half). For
// non-power-of-two NP the MPICH fold adds two full-vector messages and
// one combine. Like the other closed forms, the hop term uses the
// topology diameter as the pessimistic per-step distance.
func RabenseifnerAllreduceTime(t Topology, c CostParams, np, words int) float64 {
	if np <= 1 {
		return 0
	}
	pof2 := 1
	for pof2*2 <= np {
		pof2 *= 2
	}
	perStep := c.TStartup + float64(t.Diameter(np))*c.THop
	total := 0.0
	if pof2 < np {
		total += 2*c.PtToPtTime(t.Diameter(np), words*8) + float64(words)*c.TFlop
	}
	steps := Log2Ceil(pof2)
	moved := float64(words) * float64(pof2-1) / float64(pof2)
	// Reduce-scatter: log NP' startups, (NP'-1)/NP' of the vector moved
	// and combined; allgather: the same traffic back without the flops.
	total += float64(steps)*perStep + moved*8*c.TByte + moved*c.TFlop
	total += float64(steps)*perStep + moved*8*c.TByte
	return total
}

// RingAllgatherTime is the closed-form cost of the (np-1)-step ring
// all-gather of blocks of blockBytes each: (np-1)*(t_s + t_h + m*t_w).
// This is the "all-to-all broadcast of the local vector elements" the
// paper charges to Scenario 1 (§4): with m = n/NP it is
// t_s*(NP-1) + t_w*n*(NP-1)/NP, the same asymptotic form as the
// t_s*log NP + t_w*n/NP tree expression the paper quotes for the
// hypercube, differing only in the startup coefficient.
func RingAllgatherTime(c CostParams, np, blockBytes int) float64 {
	if np <= 1 {
		return 0
	}
	return float64(np-1) * c.PtToPtTime(1, blockBytes)
}

// HypercubeAllgatherTime is the recursive-doubling all-gather cost on a
// hypercube: sum over log NP steps of t_s + 2^k*m*t_w
// = t_s*log NP + m*(NP-1)*t_w. With m = n/NP bytes per block this is
// exactly the paper's t_startup*log NP + t_comm*n/NP*(NP-1) expression
// for the all-to-all broadcast of vector p.
func HypercubeAllgatherTime(c CostParams, np, blockBytes int) float64 {
	steps := Log2Ceil(np)
	total := 0.0
	blk := blockBytes
	for k := 0; k < steps; k++ {
		total += c.PtToPtTime(1, blk)
		blk *= 2
	}
	return total
}
