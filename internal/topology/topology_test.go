package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHypercubeDistance(t *testing.T) {
	h := Hypercube{}
	cases := []struct{ a, b, np, want int }{
		{0, 0, 8, 0},
		{0, 1, 8, 1},
		{0, 7, 8, 3},
		{5, 6, 8, 2}, // 101 ^ 110 = 011
		{0, 15, 16, 4},
	}
	for _, c := range cases {
		if got := h.Distance(c.a, c.b, c.np); got != c.want {
			t.Errorf("Hypercube.Distance(%d,%d,%d) = %d, want %d", c.a, c.b, c.np, got, c.want)
		}
	}
	if d := h.Diameter(8); d != 3 {
		t.Errorf("Hypercube.Diameter(8) = %d, want 3", d)
	}
	if d := h.Diameter(9); d != 4 {
		t.Errorf("Hypercube.Diameter(9) = %d, want 4", d)
	}
}

func TestRingDistance(t *testing.T) {
	r := Ring{}
	cases := []struct{ a, b, np, want int }{
		{0, 0, 8, 0},
		{0, 1, 8, 1},
		{0, 7, 8, 1}, // wraps
		{0, 4, 8, 4},
		{2, 6, 8, 4},
		{1, 5, 6, 2},
	}
	for _, c := range cases {
		if got := r.Distance(c.a, c.b, c.np); got != c.want {
			t.Errorf("Ring.Distance(%d,%d,%d) = %d, want %d", c.a, c.b, c.np, got, c.want)
		}
	}
	if d := r.Diameter(8); d != 4 {
		t.Errorf("Ring.Diameter(8) = %d, want 4", d)
	}
}

func TestMesh2DDistance(t *testing.T) {
	m := Mesh2D{}
	// np=6 -> 2x3 grid, row-major: rank 0=(0,0), rank 5=(1,2).
	if got := m.Distance(0, 5, 6); got != 3 {
		t.Errorf("Mesh2D.Distance(0,5,6) = %d, want 3", got)
	}
	if got := m.Distance(0, 2, 6); got != 2 {
		t.Errorf("Mesh2D.Distance(0,2,6) = %d, want 2", got)
	}
	if d := m.Diameter(6); d != 3 {
		t.Errorf("Mesh2D.Diameter(6) = %d, want 3", d)
	}
}

func TestFullyConnected(t *testing.T) {
	f := FullyConnected{}
	if got := f.Distance(3, 3, 8); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
	if got := f.Distance(0, 7, 8); got != 1 {
		t.Errorf("distance = %d, want 1", got)
	}
	if d := f.Diameter(1); d != 0 {
		t.Errorf("Diameter(1) = %d, want 0", d)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hypercube", "ring", "mesh2d", "full"} {
		topo, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if topo.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, topo.Name())
		}
	}
	if _, err := ByName("torus9d"); err == nil {
		t.Error("ByName(torus9d) should fail")
	}
}

func TestDims(t *testing.T) {
	cases := []struct{ np, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4}, {7, 1, 7}, {16, 4, 4},
	}
	for _, c := range cases {
		r, co := Dims(c.np)
		if r != c.rows || co != c.cols {
			t.Errorf("Dims(%d) = (%d,%d), want (%d,%d)", c.np, r, co, c.rows, c.cols)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Property: all distances are symmetric, non-negative, zero iff equal,
// and bounded by the diameter.
func TestDistanceProperties(t *testing.T) {
	topos := []Topology{Hypercube{}, Ring{}, Mesh2D{}, FullyConnected{}}
	f := func(a, b uint8, npRaw uint8) bool {
		np := int(npRaw%16) + 1
		ra, rb := int(a)%np, int(b)%np
		for _, topo := range topos {
			d := topo.Distance(ra, rb, np)
			if d != topo.Distance(rb, ra, np) {
				return false
			}
			if d < 0 {
				return false
			}
			if (d == 0) != (ra == rb) {
				return false
			}
			if d > topo.Diameter(np) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostFormulas(t *testing.T) {
	c := CostParams{TStartup: 100e-6, THop: 1e-6, TByte: 1e-8, TFlop: 1e-9}
	// Point to point: t_s + h t_h + b t_w.
	got := c.PtToPtTime(3, 1000)
	want := 100e-6 + 3e-6 + 1000e-8
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("PtToPtTime = %g, want %g", got, want)
	}
	// Hypercube allgather of 8 procs, 8-byte blocks:
	// steps k=0..2 with blocks 8,16,32 bytes.
	got = HypercubeAllgatherTime(c, 8, 8)
	want = 0
	h := Hypercube{}
	_ = h
	for _, blk := range []int{8, 16, 32} {
		want += c.PtToPtTime(1, blk)
	}
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("HypercubeAllgatherTime = %g, want %g", got, want)
	}
	// Ring allgather: (np-1) fixed-size steps.
	got = RingAllgatherTime(c, 5, 64)
	want = 4 * c.PtToPtTime(1, 64)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("RingAllgatherTime = %g, want %g", got, want)
	}
	if RingAllgatherTime(c, 1, 64) != 0 {
		t.Error("RingAllgatherTime(np=1) should be 0")
	}
	// Broadcast grows with log np.
	b4 := TreeBcastTime(Hypercube{}, c, 4, 100)
	b8 := TreeBcastTime(Hypercube{}, c, 8, 100)
	if b8 <= b4 {
		t.Errorf("TreeBcastTime should grow with np: b4=%g b8=%g", b4, b8)
	}
	// Allreduce = reduce + bcast.
	ar := AllreduceTime(Hypercube{}, c, 8, 4)
	if math.Abs(ar-(ReduceTime(Hypercube{}, c, 8, 4)+TreeBcastTime(Hypercube{}, c, 8, 32))) > 1e-15 {
		t.Error("AllreduceTime != ReduceTime + TreeBcastTime")
	}
}

func TestDefaultCostParams(t *testing.T) {
	c := DefaultCostParams()
	if c.TStartup <= 0 || c.TByte <= 0 || c.TFlop <= 0 || c.THop <= 0 {
		t.Errorf("DefaultCostParams has non-positive entries: %+v", c)
	}
	// Startup must dominate per-byte cost for small messages (the regime
	// the paper's analysis assumes).
	if c.TStartup < 1000*c.TByte {
		t.Errorf("expected startup-dominated small messages: %+v", c)
	}
}
