package darray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

var testNPs = []int{1, 2, 3, 4, 7, 8}

func TestSetGlobalAndGather(t *testing.T) {
	for _, np := range testNPs {
		n := 5*np + 3
		for _, d := range []dist.Dist{dist.NewBlock(n, np), dist.NewCyclic(n, np)} {
			m := machine(np)
			m.Run(func(p *comm.Proc) {
				v := New(p, d)
				v.SetGlobal(func(g int) float64 { return float64(g * g) })
				full := v.Gather()
				if len(full) != n {
					t.Errorf("np=%d %s: Gather length %d", np, d.Name(), len(full))
					return
				}
				for g := 0; g < n; g++ {
					if full[g] != float64(g*g) {
						t.Errorf("np=%d %s: full[%d] = %g", np, d.Name(), g, full[g])
						return
					}
				}
			})
		}
	}
}

func TestScatterGatherInverse(t *testing.T) {
	for _, np := range testNPs {
		n := 4*np + 1
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Sin(float64(i))
		}
		for _, d := range []dist.Dist{dist.NewBlock(n, np), dist.NewCyclic(n, np)} {
			m := machine(np)
			m.Run(func(p *comm.Proc) {
				v := New(p, d)
				var full []float64
				if p.Rank() == 0 {
					full = want
				}
				v.ScatterFrom(0, full)
				got := v.Gather()
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("np=%d %s: elem %d = %g, want %g", np, d.Name(), i, got[i], want[i])
						return
					}
				}
			})
		}
	}
}

func TestAXPYAndAYPX(t *testing.T) {
	for _, np := range testNPs {
		n := 3*np + 2
		d := dist.NewBlock(n, np)
		m := machine(np)
		m.Run(func(p *comm.Proc) {
			v := New(p, d)
			x := New(p, d)
			v.SetGlobal(func(g int) float64 { return float64(g) })
			x.SetGlobal(func(g int) float64 { return 2 * float64(g) })
			v.AXPY(3, x) // v = g + 6g = 7g
			full := v.Gather()
			for g := range full {
				if full[g] != 7*float64(g) {
					t.Errorf("AXPY wrong at %d: %g", g, full[g])
					return
				}
			}
			v.AYPX(0.5, x) // v = 3.5g + 2g = 5.5g
			full = v.Gather()
			for g := range full {
				if full[g] != 5.5*float64(g) {
					t.Errorf("AYPX wrong at %d: %g", g, full[g])
					return
				}
			}
			v.Scale(2)
			full = v.Gather()
			for g := range full {
				if full[g] != 11*float64(g) {
					t.Errorf("Scale wrong at %d: %g", g, full[g])
					return
				}
			}
		})
	}
}

func TestDotNormSum(t *testing.T) {
	for _, np := range testNPs {
		n := 6*np + 5
		d := dist.NewBlock(n, np)
		ref := make([]float64, n)
		rng := rand.New(rand.NewSource(4))
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		wantDot, wantSum := 0.0, 0.0
		for _, x := range ref {
			wantDot += x * x
			wantSum += x
		}
		m := machine(np)
		m.Run(func(p *comm.Proc) {
			v := New(p, d)
			v.SetGlobal(func(g int) float64 { return ref[g] })
			if got := v.Dot(v); math.Abs(got-wantDot) > 1e-9 {
				t.Errorf("np=%d Dot = %g, want %g", np, got, wantDot)
			}
			if got := v.Norm2(); math.Abs(got-math.Sqrt(wantDot)) > 1e-9 {
				t.Errorf("np=%d Norm2 = %g", np, got)
			}
			if got := v.Sum(); math.Abs(got-wantSum) > 1e-9 {
				t.Errorf("np=%d Sum = %g, want %g", np, got, wantSum)
			}
		})
	}
}

func TestMaxAbs(t *testing.T) {
	np := 4
	n := 17
	d := dist.NewBlock(n, np)
	m := machine(np)
	m.Run(func(p *comm.Proc) {
		v := New(p, d)
		v.SetGlobal(func(g int) float64 {
			if g == 11 {
				return -42
			}
			return float64(g % 3)
		})
		if got := v.MaxAbs(); got != 42 {
			t.Errorf("MaxAbs = %g, want 42", got)
		}
	})
}

func TestCloneCopyFill(t *testing.T) {
	np := 3
	d := dist.NewBlock(10, np)
	m := machine(np)
	m.Run(func(p *comm.Proc) {
		v := New(p, d)
		v.Fill(2.5)
		c := v.Clone()
		c.Scale(2)
		if v.Local()[0] != 2.5 {
			t.Error("Clone aliases original")
		}
		w := NewAligned(v)
		w.CopyFrom(c)
		if w.Local()[0] != 5 {
			t.Errorf("CopyFrom = %g", w.Local()[0])
		}
		if v.Len() != 10 {
			t.Errorf("Len = %d", v.Len())
		}
		if v.Dist().Name() != "BLOCK" {
			t.Errorf("Dist name %q", v.Dist().Name())
		}
		if v.Proc() != p {
			t.Error("Proc() identity lost")
		}
		_ = v.String()
	})
}

func TestReduceScatterFrom(t *testing.T) {
	for _, np := range testNPs {
		n := 4 * np
		d := dist.NewBlock(n, np)
		m := machine(np)
		m.Run(func(p *comm.Proc) {
			v := New(p, d)
			priv := make([]float64, n)
			for i := range priv {
				priv[i] = float64((p.Rank() + 1) * i)
			}
			v.ReduceScatterFrom(priv)
			full := v.Gather()
			sumRanks := float64(np*(np+1)) / 2
			for i := range full {
				want := sumRanks * float64(i)
				if math.Abs(full[i]-want) > 1e-9 {
					t.Errorf("np=%d merge elem %d = %g, want %g", np, i, full[i], want)
					return
				}
			}
		})
	}
}

func TestAlignmentEnforced(t *testing.T) {
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected misalignment panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		a := New(p, dist.NewBlock(10, 2))
		b := New(p, dist.NewCyclic(10, 2))
		a.AXPY(1, b)
	})
}

func TestMisalignedSameName(t *testing.T) {
	// Two Irregular descriptors with different cuts share a Name; Same
	// must still distinguish them.
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected misalignment panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		a := New(p, dist.NewIrregular([]int{0, 3, 10}))
		b := New(p, dist.NewIrregular([]int{0, 7, 10}))
		a.Dot(b)
	})
}

func TestDescriptorNPMismatch(t *testing.T) {
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected NP mismatch panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		New(p, dist.NewBlock(10, 3))
	})
}

// DOT must cost a local O(n/NP) compute plus a log NP startup-dominated
// merge — the §4 cost claim.
func TestDotCostModel(t *testing.T) {
	cost := topology.CostParams{TStartup: 1e-4, THop: 0, TByte: 0, TFlop: 1e-9}
	n := 1 << 12
	for _, np := range []int{2, 4, 8} {
		m := comm.NewMachine(np, topology.FullyConnected{}, cost)
		d := dist.NewBlock(n, np)
		st := m.Run(func(p *comm.Proc) {
			v := New(p, d)
			v.Fill(1)
			v.Dot(v)
		})
		local := 2 * float64(n/np) * cost.TFlop
		// reduce: log np sends; bcast: log np sends; plus 1 combine flop
		// per reduce step.
		steps := float64(topology.Log2Ceil(np))
		comb := steps * cost.TFlop
		want := local + 2*steps*cost.TStartup + comb
		if math.Abs(st.ModelTime-want) > want*0.5 {
			t.Errorf("np=%d Dot model time %g, want about %g", np, st.ModelTime, want)
		}
		// The merge phase must be startup-dominated (scalar payload).
		if st.CommTime() < steps*cost.TStartup {
			t.Errorf("np=%d comm time %g below %g", np, st.CommTime(), steps*cost.TStartup)
		}
	}
}

// Property: Gather∘SetGlobal is the identity for random distributions.
func TestGatherQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw, kindRaw uint8) bool {
		np := int(npRaw%4) + 1
		n := int(nRaw%40) + 1
		var d dist.Dist
		switch kindRaw % 3 {
		case 0:
			d = dist.NewBlock(n, np)
		case 1:
			d = dist.NewCyclic(n, np)
		default:
			d = dist.NewCyclicK(n, np, 2)
		}
		rng := rand.New(rand.NewSource(seed))
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		ok := true
		machine(np).Run(func(p *comm.Proc) {
			v := New(p, d)
			v.SetGlobal(func(g int) float64 { return ref[g] })
			got := v.Gather()
			for i := range ref {
				if got[i] != ref[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxValMinValHadamard(t *testing.T) {
	for _, np := range testNPs {
		n := 5*np + 2
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			v := New(p, d)
			v.SetGlobal(func(g int) float64 { return float64((g*7)%11) - 3 })
			wantMax, wantMin := math.Inf(-1), math.Inf(1)
			for g := 0; g < n; g++ {
				x := float64((g*7)%11) - 3
				if x > wantMax {
					wantMax = x
				}
				if x < wantMin {
					wantMin = x
				}
			}
			if got := v.MaxVal(); got != wantMax {
				t.Errorf("np=%d MaxVal = %g, want %g", np, got, wantMax)
			}
			if got := v.MinVal(); got != wantMin {
				t.Errorf("np=%d MinVal = %g, want %g", np, got, wantMin)
			}
			w := New(p, d)
			w.SetGlobal(func(g int) float64 { return 2 })
			v.Hadamard(w)
			full := v.Gather()
			for g := range full {
				want := 2 * (float64((g*7)%11) - 3)
				if full[g] != want {
					t.Errorf("np=%d Hadamard[%d] = %g, want %g", np, g, full[g], want)
					return
				}
			}
		})
	}
}
