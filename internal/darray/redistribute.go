package darray

import (
	"fmt"

	"hpfcg/internal/dist"
)

// RedistributeTo returns a copy of v mapped by newDist — the runtime
// realisation of HPF's REDISTRIBUTE directive (the paper's DYNAMIC
// arrays change distribution once runtime data is known, §5.2.1). The
// exchange is a personalised all-to-all: each processor packs, for
// every destination, the values of its elements that the destination
// owns under the new descriptor.
//
// Both descriptors must enumerate their local elements in increasing
// global order (Global(r, off) monotone in off), which holds for every
// distribution in package dist; sender pack order and receiver unpack
// order then agree without shipping index lists.
func (v *Vector) RedistributeTo(newDist dist.Dist) *Vector {
	if newDist.N() != v.d.N() {
		panic(fmt.Sprintf("darray: redistribute to length %d, have %d", newDist.N(), v.d.N()))
	}
	if newDist.NP() != v.d.NP() {
		panic(fmt.Sprintf("darray: redistribute to NP %d, have %d", newDist.NP(), v.d.NP()))
	}
	out := New(v.p, newDist)
	if dist.Same(v.d, newDist) {
		copy(out.loc, v.loc)
		return out
	}
	np := v.p.NP()
	r := v.p.Rank()

	// Pack by destination, walking local elements in global order.
	segs := make([][]float64, np)
	for off, val := range v.loc {
		g := v.d.Global(r, off)
		dst := newDist.Owner(g)
		segs[dst] = append(segs[dst], val)
	}
	parts := v.p.AlltoallV(segs)

	// Unpack: walk the new local elements in global order, pulling the
	// next value from the segment of each element's old owner.
	next := make([]int, np)
	for off := range out.loc {
		g := newDist.Global(r, off)
		src := v.d.Owner(g)
		part := parts[src]
		if next[src] >= len(part) {
			panic(fmt.Sprintf("darray: redistribute underflow from rank %d", src))
		}
		out.loc[off] = part[next[src]]
		next[src]++
	}
	for src, n := range next {
		if n != len(parts[src]) {
			panic(fmt.Sprintf("darray: redistribute left %d elements from rank %d", len(parts[src])-n, src))
		}
	}
	return out
}
