// Package darray provides distributed one-dimensional arrays over the
// comm machine — the runtime realisation of HPF's distributed vectors
// in the paper's Figure 2. It supplies the three vector-operation
// classes §4 analyses:
//
//   - SAXPY-style parallel array assignments (AXPY, AYPX, Scale, ...),
//     which run in O(n/NP) with no communication because all operand
//     vectors are mutually ALIGNed (share one descriptor);
//   - the DOT_PRODUCT intrinsic, whose element-wise phase is local and
//     whose merge phase is a t_s·log NP allreduce;
//   - gather/broadcast of a whole vector (the all-to-all broadcast
//     Scenario 1 needs to make p fully available).
//
// A Vector is an SPMD object: every processor holds its own *Vector
// with the same shared descriptor but only the local block of data.
package darray

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
)

// Vector is the per-processor view of a distributed vector.
type Vector struct {
	p      *comm.Proc
	d      dist.Dist
	loc    []float64
	counts []int // per-rank block sizes, cached so collectives don't rebuild them
}

// New creates a distributed vector of the given descriptor, zero
// initialised. Must be called by every processor of the machine with
// an identical descriptor (HPF ALIGN = sharing d).
func New(p *comm.Proc, d dist.Dist) *Vector {
	if d.NP() != p.NP() {
		panic(fmt.Sprintf("darray: descriptor NP %d != machine NP %d", d.NP(), p.NP()))
	}
	return &Vector{p: p, d: d, loc: make([]float64, d.Count(p.Rank())), counts: dist.Counts(d)}
}

// NewAligned creates a vector aligned with v (same descriptor) — HPF's
// `ALIGN (:) WITH p(:)`.
func NewAligned(v *Vector) *Vector { return New(v.p, v.d) }

// Dist returns the vector's distribution descriptor.
func (v *Vector) Dist() dist.Dist { return v.d }

// Proc returns the owning processor context.
func (v *Vector) Proc() *comm.Proc { return v.p }

// Len returns the global length.
func (v *Vector) Len() int { return v.d.N() }

// Local returns the local block (a view; mutating it mutates the
// vector).
func (v *Vector) Local() []float64 { return v.loc }

// sameDist panics unless w is aligned with v. HPF would insert
// communication for unaligned operands; this runtime (like the paper's
// codes) requires explicit alignment so every vector op is local.
func (v *Vector) sameDist(w *Vector) {
	if !dist.Same(v.d, w.d) {
		panic(fmt.Sprintf("darray: operands not aligned: %v vs %v", v.d.Name(), w.d.Name()))
	}
}

// Fill sets every element to c.
func (v *Vector) Fill(c float64) {
	for i := range v.loc {
		v.loc[i] = c
	}
}

// SetGlobal initialises the local block from a function of the global
// index (owner-computes: each processor evaluates only its own part).
func (v *Vector) SetGlobal(f func(g int) float64) {
	r := v.p.Rank()
	for off := range v.loc {
		v.loc[off] = f(v.d.Global(r, off))
	}
}

// CopyFrom copies w into v (aligned operands, no communication).
func (v *Vector) CopyFrom(w *Vector) {
	v.sameDist(w)
	copy(v.loc, w.loc)
}

// Clone returns an aligned copy of v.
func (v *Vector) Clone() *Vector {
	c := NewAligned(v)
	copy(c.loc, v.loc)
	return c
}

// AXPY computes v = v + alpha*x (the paper's saxpy), locally in
// O(n/NP).
func (v *Vector) AXPY(alpha float64, x *Vector) {
	v.sameDist(x)
	for i := range v.loc {
		v.loc[i] += alpha * x.loc[i]
	}
	v.p.Compute(2 * len(v.loc))
}

// AYPX computes v = beta*v + x (the paper's saypx, used for
// p = beta*p + r), locally in O(n/NP).
func (v *Vector) AYPX(beta float64, x *Vector) {
	v.sameDist(x)
	for i := range v.loc {
		v.loc[i] = beta*v.loc[i] + x.loc[i]
	}
	v.p.Compute(2 * len(v.loc))
}

// Scale computes v = alpha*v.
func (v *Vector) Scale(alpha float64) {
	for i := range v.loc {
		v.loc[i] *= alpha
	}
	v.p.Compute(len(v.loc))
}

// DotLocal is the element-wise phase of the DOT_PRODUCT intrinsic: the
// local partial sum, with no communication. Solvers batch several
// DotLocal partials into one comm.AllreduceScalars round — the
// communication-avoiding form of Dot.
func (v *Vector) DotLocal(x *Vector) float64 {
	v.sameDist(x)
	s := 0.0
	for i := range v.loc {
		s += v.loc[i] * x.loc[i]
	}
	v.p.Compute(2 * len(v.loc))
	return s
}

// NormSqLocal returns the local partial of ||v||².
func (v *Vector) NormSqLocal() float64 { return v.DotLocal(v) }

// Dot is the DOT_PRODUCT intrinsic: local element-wise products and
// partial sum (no communication), then a t_s·log NP allreduce merge.
func (v *Vector) Dot(x *Vector) float64 {
	return v.p.AllreduceScalar(v.DotLocal(x), comm.OpSum)
}

// Norm2 returns the Euclidean norm sqrt(v . v).
func (v *Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// AXPYNormSqLocal fuses v = v + alpha*x with the local partial of the
// updated ||v||², in one pass over the vectors instead of two (the
// Kronbichler-style data-locality fusion of CG's residual update with
// its convergence norm). Per element the arithmetic is the update
// followed by the square, exactly as AXPY-then-NormSqLocal computes it,
// so the result is bit-identical; only the number of sweeps changes.
// The flop charge (2n for the axpy + 2n for the norm) also matches the
// unfused pair — the win is memory traffic, not flops.
func (v *Vector) AXPYNormSqLocal(alpha float64, x *Vector) float64 {
	v.sameDist(x)
	s := 0.0
	for i := range v.loc {
		v.loc[i] += alpha * x.loc[i]
		s += v.loc[i] * v.loc[i]
	}
	v.p.Compute(4 * len(v.loc))
	return s
}

// DiffNormSqLocal returns the local partial of ||v - w||², with no
// communication. The resilient CG's residual-replacement guard merges
// it to compare a restored recurrence residual against the true
// residual b - A·x.
func (v *Vector) DiffNormSqLocal(w *Vector) float64 {
	v.sameDist(w)
	s := 0.0
	for i := range v.loc {
		d := v.loc[i] - w.loc[i]
		s += d * d
	}
	v.p.Compute(3 * len(v.loc))
	return s
}

// Sum is the HPF SUM intrinsic over the whole vector.
func (v *Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.loc {
		s += x
	}
	v.p.Compute(len(v.loc))
	return v.p.AllreduceScalar(s, comm.OpSum)
}

// MaxAbs returns the infinity norm, used by stopping criteria.
func (v *Vector) MaxAbs() float64 {
	s := 0.0
	for _, x := range v.loc {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	v.p.Compute(len(v.loc))
	return v.p.AllreduceScalar(s, comm.OpMax)
}

// Gather returns the full global vector on every processor — the
// "all-to-all broadcast of the local vector elements" of Scenario 1.
// Cost: (NP-1) ring steps of ~n/NP elements each. For non-contiguous
// (CYCLIC) descriptors the gathered blocks are permuted back into
// global order locally.
func (v *Vector) Gather() []float64 { return v.GatherInto(nil) }

// GatherInto is Gather writing into a caller-provided full-length
// buffer (allocated when nil), so a mat-vec that gathers p every
// iteration reuses one buffer and the steady state allocates nothing.
// For contiguous descriptors the allgather writes the buffer directly;
// CYCLIC descriptors still allocate a packed intermediate for the
// permutation.
func (v *Vector) GatherInto(full []float64) []float64 {
	if full != nil && len(full) != v.d.N() {
		panic(fmt.Sprintf("darray: GatherInto buffer length %d != %d", len(full), v.d.N()))
	}
	if _, contiguous := v.d.(dist.Contiguous); contiguous {
		return v.p.AllgatherVInto(v.loc, v.counts, full)
	}
	packed := v.p.AllgatherV(v.loc, v.counts)
	if full == nil {
		full = make([]float64, v.d.N())
	}
	off := 0
	for r := 0; r < v.d.NP(); r++ {
		for l := 0; l < v.counts[r]; l++ {
			full[v.d.Global(r, l)] = packed[off]
			off++
		}
	}
	return full
}

// ScatterFrom distributes a full global vector held at root into v.
func (v *Vector) ScatterFrom(root int, full []float64) {
	counts := v.counts
	var packed []float64
	if v.p.Rank() == root {
		if len(full) != v.d.N() {
			panic(fmt.Sprintf("darray: ScatterFrom length %d != %d", len(full), v.d.N()))
		}
		packed = make([]float64, v.d.N())
		off := 0
		for r := 0; r < v.d.NP(); r++ {
			for l := 0; l < counts[r]; l++ {
				packed[off] = full[v.d.Global(r, l)]
				off++
			}
		}
	}
	copy(v.loc, v.p.ScatterV(root, packed, counts))
}

// ReduceScatterFrom merges per-processor full-length private copies
// (the paper's PRIVATE ... WITH MERGE(+)) into the distributed vector:
// each processor contributes priv (length n); afterwards v holds the
// element-wise sum, distributed by its descriptor. Only contiguous
// descriptors are supported (the merge target in the paper is the
// BLOCK-distributed q).
func (v *Vector) ReduceScatterFrom(priv []float64) {
	if len(priv) != v.d.N() {
		panic(fmt.Sprintf("darray: ReduceScatterFrom length %d != %d", len(priv), v.d.N()))
	}
	if _, contiguous := v.d.(dist.Contiguous); !contiguous {
		panic("darray: ReduceScatterFrom requires a contiguous descriptor")
	}
	counts := v.counts
	copy(v.loc, v.p.ReduceScatterSum(priv, counts))
}

// String formats the local block for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("Vector{rank=%d, dist=%s, local=%v}", v.p.Rank(), v.d.Name(), v.loc)
}

// MaxVal is the HPF MAXVAL intrinsic: the maximum element value.
func (v *Vector) MaxVal() float64 {
	s := math.Inf(-1)
	for _, x := range v.loc {
		if x > s {
			s = x
		}
	}
	v.p.Compute(len(v.loc))
	return v.p.AllreduceScalar(s, comm.OpMax)
}

// MinVal is the HPF MINVAL intrinsic: the minimum element value.
func (v *Vector) MinVal() float64 {
	s := math.Inf(1)
	for _, x := range v.loc {
		if x < s {
			s = x
		}
	}
	v.p.Compute(len(v.loc))
	return v.p.AllreduceScalar(s, comm.OpMin)
}

// Hadamard computes v = v .* x (element-wise product), locally.
func (v *Vector) Hadamard(x *Vector) {
	v.sameDist(x)
	for i := range v.loc {
		v.loc[i] *= x.loc[i]
	}
	v.p.Compute(len(v.loc))
}
