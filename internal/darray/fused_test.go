package darray

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/topology"
)

// TestAXPYNormSqLocalBitIdentical: the fused update-and-norm must match
// AXPY followed by NormSqLocal exactly — same per-element arithmetic
// order, just one sweep — on every processor count and for CYCLIC as
// well as BLOCK layouts.
func TestAXPYNormSqLocalBitIdentical(t *testing.T) {
	const n = 57
	mk := func(name string, np int) dist.Dist {
		if name == "cyclic" {
			return dist.NewCyclic(n, np)
		}
		return dist.NewBlock(n, np)
	}
	for _, layout := range []string{"block", "cyclic"} {
		for _, np := range []int{1, 2, 3, 4, 8} {
			d := mk(layout, np)
			comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams()).Run(func(p *comm.Proc) {
				y1 := New(p, d)
				y2 := New(p, d)
				x := New(p, d)
				y1.SetGlobal(func(g int) float64 { return 1.0 / float64(g+2) })
				y2.CopyFrom(y1)
				x.SetGlobal(func(g int) float64 { return float64(g*g%13) - 6.5 })
				const alpha = -0.37

				y1.AXPY(alpha, x)
				want := y1.NormSqLocal()
				got := y2.AXPYNormSqLocal(alpha, x)

				if got != want {
					t.Errorf("%s np=%d rank=%d: fused partial %v != unfused %v", layout, np, p.Rank(), got, want)
				}
				l1, l2 := y1.Local(), y2.Local()
				for i := range l1 {
					if l1[i] != l2[i] {
						t.Errorf("%s np=%d rank=%d: y differs at local %d", layout, np, p.Rank(), i)
					}
				}
			})
		}
	}
}

// TestAXPYNormSqLocalFlopCharge: the fused sweep charges exactly the
// flops of the pair it replaces (2n axpy + 2n norm).
func TestAXPYNormSqLocalFlopCharge(t *testing.T) {
	const n = 64
	d := dist.NewBlock(n, 4)
	run := func(fused bool) int64 {
		return comm.NewMachine(4, topology.Hypercube{}, topology.DefaultCostParams()).Run(func(p *comm.Proc) {
			y := New(p, d)
			x := New(p, d)
			x.Fill(1)
			if fused {
				y.AXPYNormSqLocal(0.5, x)
			} else {
				y.AXPY(0.5, x)
				y.NormSqLocal()
			}
		}).TotalFlops
	}
	if f, u := run(true), run(false); f != u {
		t.Errorf("fused charges %d flops, AXPY+NormSqLocal charges %d", f, u)
	}
}

// TestGatherIntoMatchesGather: the buffer-reusing gather fills the
// caller's buffer with exactly Gather's result for both contiguous and
// cyclic layouts.
func TestGatherIntoMatchesGather(t *testing.T) {
	const n = 41
	for _, layout := range []string{"block", "cyclic"} {
		for _, np := range []int{1, 3, 4} {
			var d dist.Dist
			if layout == "cyclic" {
				d = dist.NewCyclic(n, np)
			} else {
				d = dist.NewBlock(n, np)
			}
			comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams()).Run(func(p *comm.Proc) {
				v := New(p, d)
				v.SetGlobal(func(g int) float64 { return float64(3*g + 1) })
				want := v.Gather()
				buf := make([]float64, n)
				got := v.GatherInto(buf)
				if &got[0] != &buf[0] {
					t.Errorf("%s np=%d: GatherInto did not use the provided buffer", layout, np)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s np=%d: element %d: %v vs %v", layout, np, i, got[i], want[i])
					}
				}
			})
		}
	}
}
