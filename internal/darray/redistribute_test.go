package darray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
)

func TestRedistributeBlockToCyclic(t *testing.T) {
	for _, np := range testNPs {
		n := 7*np + 3
		src := dist.NewBlock(n, np)
		dstD := dist.NewCyclic(n, np)
		machine(np).Run(func(p *comm.Proc) {
			v := New(p, src)
			v.SetGlobal(func(g int) float64 { return float64(3*g + 1) })
			w := v.RedistributeTo(dstD)
			// Every element must be intact under the new mapping.
			r := p.Rank()
			for off, val := range w.Local() {
				g := dstD.Global(r, off)
				if val != float64(3*g+1) {
					t.Errorf("np=%d rank=%d: elem %d = %g", np, r, g, val)
					return
				}
			}
			full := w.Gather()
			for g := range full {
				if full[g] != float64(3*g+1) {
					t.Errorf("np=%d: gathered %d = %g", np, g, full[g])
					return
				}
			}
		})
	}
}

func TestRedistributeToIrregular(t *testing.T) {
	np := 4
	n := 20
	src := dist.NewBlock(n, np)
	dstD := dist.NewIrregular([]int{0, 1, 1, 14, 20}) // includes an empty proc
	machine(np).Run(func(p *comm.Proc) {
		v := New(p, src)
		v.SetGlobal(func(g int) float64 { return float64(g * g) })
		w := v.RedistributeTo(dstD)
		full := w.Gather()
		for g := range full {
			if full[g] != float64(g*g) {
				t.Fatalf("elem %d = %g", g, full[g])
			}
		}
	})
}

func TestRedistributeSameDistIsCopy(t *testing.T) {
	np := 3
	d := dist.NewBlock(9, np)
	machine(np).Run(func(p *comm.Proc) {
		v := New(p, d)
		v.Fill(5)
		w := v.RedistributeTo(dist.NewBlock(9, np))
		w.Scale(2)
		if v.Local()[0] != 5 {
			t.Error("redistribute aliased the source")
		}
		if w.Local()[0] != 10 {
			t.Errorf("copy wrong: %g", w.Local()[0])
		}
	})
}

func TestRedistributeValidation(t *testing.T) {
	m := machine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected length mismatch panic")
		}
	}()
	m.Run(func(p *comm.Proc) {
		v := New(p, dist.NewBlock(10, 2))
		v.RedistributeTo(dist.NewBlock(11, 2))
	})
}

// Property: redistribute is lossless for random distributions and a
// round trip restores the original local data.
func TestRedistributeQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw, kindRaw uint8) bool {
		np := int(npRaw%4) + 1
		n := int(nRaw%40) + np
		var d2 dist.Dist
		switch kindRaw % 3 {
		case 0:
			d2 = dist.NewCyclic(n, np)
		case 1:
			d2 = dist.NewCyclicK(n, np, 3)
		default:
			cuts := []int{0}
			rng := rand.New(rand.NewSource(seed))
			for r := 1; r < np; r++ {
				lo := cuts[r-1]
				cuts = append(cuts, lo+rng.Intn(n-lo+1))
			}
			cuts = append(cuts, n)
			d2 = dist.NewIrregular(cuts)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
		ok := true
		d1 := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			v := New(p, d1)
			v.SetGlobal(func(g int) float64 { return ref[g] })
			w := v.RedistributeTo(d2)
			back := w.RedistributeTo(d1)
			for off, val := range back.Local() {
				if val != v.Local()[off] {
					ok = false
				}
			}
			full := w.Gather()
			for g := range full {
				if full[g] != ref[g] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
