package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hpfcg/internal/sparse"
)

func TestAtomsFromPtr(t *testing.T) {
	// The Figure 1 CSC matrix: column pointer array defines 6 atoms.
	m := sparse.Figure1Matrix().ToCSC()
	a := AtomsFromPtr(m.ColPtr)
	if a.NAtoms() != 6 {
		t.Fatalf("NAtoms = %d", a.NAtoms())
	}
	if a.NElems() != 15 {
		t.Fatalf("NElems = %d", a.NElems())
	}
	// Column 0 has 4 entries (a11,a21,a31,a51).
	if a.Weight(0) != 4 {
		t.Errorf("Weight(0) = %d, want 4", a.Weight(0))
	}
	w := a.Weights()
	total := 0
	for _, x := range w {
		total += x
	}
	if total != 15 {
		t.Errorf("weights sum to %d", total)
	}
}

func TestAtomsValidation(t *testing.T) {
	for _, ptr := range [][]int{{}, {0, 3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ptr %v should panic", ptr)
				}
			}()
			AtomsFromPtr(ptr)
		}()
	}
}

func TestElemDistNeverSplitsAtoms(t *testing.T) {
	m := sparse.PowerLaw(200, 1.1, 50, 9)
	a := AtomsFromPtr(m.RowPtr)
	np := 4
	cuts := UniformAtomBlock(a.NAtoms(), np)
	ed := a.ElemDist(cuts)
	if ed.N() != a.NElems() {
		t.Fatalf("element dist length %d != %d", ed.N(), a.NElems())
	}
	// Every atom's elements must land on a single processor.
	for i := 0; i < a.NAtoms(); i++ {
		lo, hi := a.Bounds[i], a.Bounds[i+1]
		if hi == lo {
			continue
		}
		owner := ed.Owner(lo)
		for e := lo; e < hi; e++ {
			if ed.Owner(e) != owner {
				t.Fatalf("atom %d split across processors", i)
			}
		}
	}
	ad := a.AtomDist(cuts)
	if ad.NP() != np || ad.N() != a.NAtoms() {
		t.Errorf("atom dist shape wrong")
	}
}

func TestElemDistValidation(t *testing.T) {
	a := AtomsFromPtr([]int{0, 2, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range atom cut should panic")
		}
	}()
	a.ElemDist([]int{0, 3})
}

func TestUniformAtomBlock(t *testing.T) {
	cuts := UniformAtomBlock(10, 4)
	want := []int{0, 2, 5, 7, 10}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestSplitCount(t *testing.T) {
	// 3 atoms of 4 elements each over 2 procs: element BLOCK cuts at 6,
	// splitting the middle atom only.
	a := AtomsFromPtr([]int{0, 4, 8, 12})
	if got := SplitCount(a, 2); got != 1 {
		t.Errorf("SplitCount = %d, want 1", got)
	}
	if got := SplitCount(a, 1); got != 0 {
		t.Errorf("np=1 SplitCount = %d, want 0", got)
	}
	// More processors than atoms: every multi-element atom gets split.
	if got := SplitCount(a, 12); got != 3 {
		t.Errorf("np=12 SplitCount = %d, want 3", got)
	}
	// Singleton atoms can never split.
	ones := AtomsFromPtr([]int{0, 1, 2, 3, 4})
	if got := SplitCount(ones, 3); got != 0 {
		t.Errorf("singleton SplitCount = %d", got)
	}
}

func TestBalancedContiguousOptimal(t *testing.T) {
	cases := []struct {
		weights    []int
		np         int
		bottleneck int
	}{
		{[]int{1, 1, 1, 1}, 2, 2},
		{[]int{5, 1, 1, 1, 1, 1}, 2, 5},
		{[]int{1, 2, 3, 4, 5}, 3, 6}, // {1,2,3},{4},{5} -> 6
		{[]int{9, 1, 1, 1}, 4, 9},    // big head
		{[]int{1, 1, 1, 9}, 4, 9},    // big tail
		{[]int{2, 2, 2, 2, 2}, 5, 2}, // exact
		{[]int{10}, 3, 10},           // fewer atoms than procs
		{[]int{0, 0, 0}, 2, 0},       // all-zero
	}
	for _, c := range cases {
		cuts := BalancedContiguous(c.weights, c.np)
		if len(cuts) != c.np+1 {
			t.Fatalf("weights %v np %d: %d cuts", c.weights, c.np, len(cuts))
		}
		if cuts[0] != 0 || cuts[c.np] != len(c.weights) {
			t.Fatalf("weights %v: cuts %v don't cover", c.weights, cuts)
		}
		if got := Bottleneck(c.weights, cuts); got != c.bottleneck {
			t.Errorf("weights %v np %d: bottleneck %d, want %d (cuts %v)",
				c.weights, c.np, got, c.bottleneck, cuts)
		}
	}
}

// Property: the binary-search bottleneck is never worse than greedy,
// never better than total/np (rounded up), and cuts are valid.
func TestBalancedQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8) bool {
		n := int(nRaw%40) + 1
		np := int(npRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		weights := make([]int, n)
		total := 0
		for i := range weights {
			weights[i] = rng.Intn(20)
			total += weights[i]
		}
		opt := BalancedContiguous(weights, np)
		gre := GreedyContiguous(weights, np)
		for _, cuts := range [][]int{opt, gre} {
			if cuts[0] != 0 || cuts[np] != n {
				return false
			}
			for i := 1; i <= np; i++ {
				if cuts[i] < cuts[i-1] {
					return false
				}
			}
		}
		bOpt := Bottleneck(weights, opt)
		bGre := Bottleneck(weights, gre)
		if bOpt > bGre {
			return false
		}
		lower := (total + np - 1) / np
		maxW := 0
		for _, w := range weights {
			if w > maxW {
				maxW = w
			}
		}
		if lower < maxW {
			lower = maxW
		}
		return bOpt >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBalancedBeatsUniformOnSkew(t *testing.T) {
	// The §5.2.2 scenario: power-law rows make uniform atom blocks
	// unbalanced; the partitioner must fix it.
	m := sparse.PowerLaw(600, 1.0, 150, 17)
	a := AtomsFromPtr(m.RowPtr)
	np := 8
	uni := UniformAtomBlock(a.NAtoms(), np)
	bal := BalancedContiguous(a.Weights(), np)
	iu := Imbalance(a.Weights(), uni)
	ib := Imbalance(a.Weights(), bal)
	if ib > iu {
		t.Errorf("balanced imbalance %.3f worse than uniform %.3f", ib, iu)
	}
	if ib > 1.5 {
		t.Errorf("balanced imbalance %.3f still large", ib)
	}
}

func TestImbalanceAndBottleneck(t *testing.T) {
	w := []int{4, 4, 4, 4}
	cuts := []int{0, 2, 4}
	if got := Imbalance(w, cuts); got != 1 {
		t.Errorf("Imbalance = %g, want 1", got)
	}
	if got := Bottleneck(w, cuts); got != 8 {
		t.Errorf("Bottleneck = %d, want 8", got)
	}
	skew := []int{10, 1, 1}
	cuts = []int{0, 1, 3}
	// groups: 10 and 2; mean 6 -> imbalance 10/6.
	if got := Imbalance(skew, cuts); got < 1.66 || got > 1.67 {
		t.Errorf("Imbalance = %g", got)
	}
	if got := Imbalance([]int{0, 0}, []int{0, 1, 2}); got != 1 {
		t.Errorf("all-zero Imbalance = %g, want 1", got)
	}
}

func TestPartitionValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { BalancedContiguous([]int{1}, 0) },
		func() { BalancedContiguous([]int{-1}, 2) },
		func() { GreedyContiguous([]int{1}, 0) },
		func() { UniformAtomBlock(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAtomCyclicRoundTrip(t *testing.T) {
	// Atoms of varying sizes incl. an empty one.
	a := AtomsFromPtr([]int{0, 3, 3, 7, 9, 14, 15})
	for _, np := range []int{1, 2, 3, 4} {
		ac := NewAtomCyclic(a, np)
		if ac.N() != a.NElems() || ac.NP() != np {
			t.Fatalf("np=%d: shape %d/%d", np, ac.N(), ac.NP())
		}
		if ac.Name() != "ATOM:CYCLIC" {
			t.Errorf("name %q", ac.Name())
		}
		total := 0
		for r := 0; r < np; r++ {
			total += ac.Count(r)
		}
		if total != a.NElems() {
			t.Fatalf("np=%d: counts sum %d != %d", np, total, a.NElems())
		}
		seen := map[[2]int]bool{}
		for g := 0; g < ac.N(); g++ {
			r, off := ac.Local(g)
			if r != ac.Owner(g) {
				t.Fatalf("np=%d: Local(%d) proc %d != Owner %d", np, g, r, ac.Owner(g))
			}
			if off < 0 || off >= ac.Count(r) {
				t.Fatalf("np=%d: Local(%d) offset %d out of range", np, g, off)
			}
			if back := ac.Global(r, off); back != g {
				t.Fatalf("np=%d: Global(Local(%d)) = %d", np, g, back)
			}
			key := [2]int{r, off}
			if seen[key] {
				t.Fatalf("np=%d: duplicate slot %v", np, key)
			}
			seen[key] = true
		}
	}
}

func TestAtomCyclicNeverSplitsAtoms(t *testing.T) {
	m := sparse.PowerLaw(150, 1.1, 40, 4)
	a := AtomsFromPtr(m.RowPtr)
	ac := NewAtomCyclic(a, 4)
	for i := 0; i < a.NAtoms(); i++ {
		lo, hi := a.Bounds[i], a.Bounds[i+1]
		if hi == lo {
			continue
		}
		owner := ac.Owner(lo)
		if owner != i%4 {
			t.Fatalf("atom %d on proc %d, want %d", i, owner, i%4)
		}
		for e := lo; e < hi; e++ {
			if ac.Owner(e) != owner {
				t.Fatalf("atom %d split", i)
			}
		}
	}
}

func TestAtomCyclicValidation(t *testing.T) {
	a := AtomsFromPtr([]int{0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("np=0 should panic")
		}
	}()
	NewAtomCyclic(a, 0)
}

// TestMoreProcessorsThanRows: np > nAtoms leaves processors empty but
// every partitioner must still produce valid monotone cuts covering
// all atoms, and the distributions must round-trip.
func TestMoreProcessorsThanRows(t *testing.T) {
	m := sparse.Banded(3, 1) // 3 rows, np up to 8
	a := AtomsFromPtr(m.RowPtr)
	for _, np := range []int{4, 8} {
		for name, cuts := range map[string][]int{
			"uniform":  UniformAtomBlock(a.NAtoms(), np),
			"balanced": BalancedContiguous(a.Weights(), np),
			"greedy":   GreedyContiguous(a.Weights(), np),
		} {
			if len(cuts) != np+1 || cuts[0] != 0 || cuts[np] != a.NAtoms() {
				t.Fatalf("np=%d %s: bad cuts %v", np, name, cuts)
			}
			for r := 0; r < np; r++ {
				if cuts[r] > cuts[r+1] {
					t.Fatalf("np=%d %s: cuts not monotone %v", np, name, cuts)
				}
			}
			ed := a.ElemDist(cuts)
			total := 0
			for r := 0; r < np; r++ {
				total += ed.Count(r)
			}
			if total != a.NElems() {
				t.Fatalf("np=%d %s: element counts sum %d != %d", np, name, total, a.NElems())
			}
		}
	}
}

// TestSingleRowMatrix: one atom, any np — all elements on one
// processor, the rest empty, imbalance = np.
func TestSingleRowMatrix(t *testing.T) {
	a := AtomsFromPtr([]int{0, 5}) // one atom of weight 5
	for _, np := range []int{1, 2, 4} {
		cuts := BalancedContiguous(a.Weights(), np)
		ed := a.ElemDist(cuts)
		owners := map[int]bool{}
		for g := 0; g < 5; g++ {
			owners[ed.Owner(g)] = true
		}
		if len(owners) != 1 {
			t.Fatalf("np=%d: single atom split across %v", np, owners)
		}
		if got, want := Imbalance(a.Weights(), cuts), float64(np); got != want {
			t.Errorf("np=%d: imbalance %g, want %g", np, got, want)
		}
		if Bottleneck(a.Weights(), cuts) != 5 {
			t.Errorf("np=%d: bottleneck != 5", np)
		}
	}
}

// TestAtomCyclicUnevenAtoms: nAtoms not a multiple of np — the last
// deal round is short, so counts differ by one atom's weight and the
// round-trip must still be exact.
func TestAtomCyclicUnevenAtoms(t *testing.T) {
	// 7 atoms over np=3: procs own {0,3,6}, {1,4}, {2,5}.
	a := AtomsFromPtr([]int{0, 2, 5, 6, 10, 11, 14, 15})
	ac := NewAtomCyclic(a, 3)
	wantCounts := []int{2 + 4 + 1, 3 + 1, 1 + 3}
	for r, want := range wantCounts {
		if got := ac.Count(r); got != want {
			t.Errorf("proc %d: count %d, want %d", r, got, want)
		}
	}
	for g := 0; g < ac.N(); g++ {
		r, off := ac.Local(g)
		if back := ac.Global(r, off); back != g {
			t.Fatalf("Global(Local(%d)) = %d", g, back)
		}
	}
	// np > nAtoms: trailing processors own nothing.
	wide := NewAtomCyclic(a, 10)
	for r := 7; r < 10; r++ {
		if wide.Count(r) != 0 {
			t.Errorf("proc %d: count %d, want 0 (no atom dealt)", r, wide.Count(r))
		}
	}
	total := 0
	for r := 0; r < 10; r++ {
		total += wide.Count(r)
	}
	if total != a.NElems() {
		t.Errorf("np=10: counts sum %d != %d", total, a.NElems())
	}
}
