package partition

import (
	"fmt"
	"sort"
)

// AtomCyclic is the element-level distribution induced by dealing
// atoms round-robin to processors — the paper's proposed
// `REDISTRIBUTE row(ATOM: CYCLIC)` (§5.2.1: "We could use an
// (ATOM: CYCLIC) distribution in a similar way"). Atom i goes to
// processor i mod NP with all its elements; the element index sets are
// therefore non-contiguous, but atoms are never split.
//
// It implements dist.Dist (not dist.Contiguous), so it composes with
// the vector layer's gather/scatter but not with the strip-based
// mat-vec operators — matching HPF, where a CYCLIC matrix distribution
// also forces a different compilation strategy.
type AtomCyclic struct {
	bounds []int // atom boundaries (len nAtoms+1)
	np     int
	// starts[r][k] is the local offset at which atom (k*np + r) begins
	// on processor r; starts[r] has one extra entry holding Count(r).
	starts [][]int
	// atomsOf[r] lists the atom ids owned by r, ascending.
	atomsOf [][]int
}

// NewAtomCyclic builds the distribution from atoms over np processors.
func NewAtomCyclic(a Atoms, np int) AtomCyclic {
	if np < 1 {
		panic(fmt.Sprintf("partition: np=%d", np))
	}
	ac := AtomCyclic{
		bounds:  append([]int(nil), a.Bounds...),
		np:      np,
		starts:  make([][]int, np),
		atomsOf: make([][]int, np),
	}
	for r := 0; r < np; r++ {
		off := 0
		for atom := r; atom < a.NAtoms(); atom += np {
			ac.starts[r] = append(ac.starts[r], off)
			ac.atomsOf[r] = append(ac.atomsOf[r], atom)
			off += a.Weight(atom)
		}
		ac.starts[r] = append(ac.starts[r], off)
	}
	return ac
}

// N implements dist.Dist.
func (ac AtomCyclic) N() int { return ac.bounds[len(ac.bounds)-1] }

// NP implements dist.Dist.
func (ac AtomCyclic) NP() int { return ac.np }

// Name implements dist.Dist.
func (ac AtomCyclic) Name() string { return "ATOM:CYCLIC" }

// atomOf returns the atom containing element g.
func (ac AtomCyclic) atomOf(g int) int {
	if g < 0 || g >= ac.N() {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", g, ac.N()))
	}
	// bounds is nondecreasing; find the last bound <= g among atom
	// starts (skip empty atoms by taking the rightmost).
	atom := sort.Search(len(ac.bounds)-1, func(i int) bool { return ac.bounds[i+1] > g })
	return atom
}

// Owner implements dist.Dist.
func (ac AtomCyclic) Owner(g int) int { return ac.atomOf(g) % ac.np }

// Local implements dist.Dist.
func (ac AtomCyclic) Local(g int) (int, int) {
	atom := ac.atomOf(g)
	r := atom % ac.np
	k := atom / ac.np
	return r, ac.starts[r][k] + (g - ac.bounds[atom])
}

// Global implements dist.Dist.
func (ac AtomCyclic) Global(proc, off int) int {
	s := ac.starts[proc]
	// Find the owned-atom slot k with starts[k] <= off < starts[k+1].
	k := sort.Search(len(s)-1, func(i int) bool { return s[i+1] > off })
	atom := ac.atomsOf[proc][k]
	return ac.bounds[atom] + (off - s[k])
}

// Count implements dist.Dist.
func (ac AtomCyclic) Count(proc int) int {
	s := ac.starts[proc]
	return s[len(s)-1]
}
