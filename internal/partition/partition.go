// Package partition implements the data-mapping machinery of §5.2 of
// the paper: indivisible entities ("atoms") within larger arrays, the
// proposed ATOM:BLOCK / ATOM:CYCLIC redistributions that never split a
// sparse row or column across processors, and the load-balancing
// partitioners (the paper's CG_BALANCED_PARTITIONER_1) that place
// whole rows/columns so the per-processor nonzero counts are as even
// as possible.
//
// An atom i of the data array a is the chunk a[Bounds[i]:Bounds[i+1]]
// "enclosed within two border elements" of an indirection array — for
// CSR the row-pointer array, for CSC the column-pointer array. The
// paper's directive
//
//	!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
//
// corresponds to AtomsFromPtr(colPtr).
package partition

import (
	"fmt"

	"hpfcg/internal/dist"
)

// Atoms describes the indivisible entities of an array: atom i spans
// element indices [Bounds[i], Bounds[i+1]). Bounds is nondecreasing.
type Atoms struct {
	Bounds []int
}

// AtomsFromPtr builds the atom structure from a CSR/CSC pointer array
// (length nAtoms+1) — the INDIVISABLE directive applied to the sparse
// trio.
func AtomsFromPtr(ptr []int) Atoms {
	if len(ptr) < 1 {
		panic("partition: empty pointer array")
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] < ptr[i-1] {
			panic(fmt.Sprintf("partition: pointer array decreases at %d", i))
		}
	}
	b := make([]int, len(ptr))
	copy(b, ptr)
	return Atoms{Bounds: b}
}

// NAtoms returns the number of atoms.
func (a Atoms) NAtoms() int { return len(a.Bounds) - 1 }

// NElems returns the total number of underlying elements.
func (a Atoms) NElems() int { return a.Bounds[len(a.Bounds)-1] }

// Weight returns the element count of atom i — the partitioning weight
// (nonzeros per row/column).
func (a Atoms) Weight(i int) int { return a.Bounds[i+1] - a.Bounds[i] }

// Weights returns all atom weights.
func (a Atoms) Weights() []int {
	w := make([]int, a.NAtoms())
	for i := range w {
		w[i] = a.Weight(i)
	}
	return w
}

// ElemDist expands an atom-level contiguous distribution (cut points in
// atom space) to the element-level Irregular distribution of the
// underlying data array: processor r owns elements
// [Bounds[atomCuts[r]], Bounds[atomCuts[r+1]]). This is the descriptor
// the REDISTRIBUTE row(ATOM: BLOCK) directive produces: whole atoms,
// never split.
func (a Atoms) ElemDist(atomCuts []int) dist.Irregular {
	cuts := make([]int, len(atomCuts))
	for i, c := range atomCuts {
		if c < 0 || c > a.NAtoms() {
			panic(fmt.Sprintf("partition: atom cut %d outside [0,%d]", c, a.NAtoms()))
		}
		cuts[i] = a.Bounds[c]
	}
	return dist.NewIrregular(cuts)
}

// AtomDist returns the atom-level Irregular distribution itself (which
// atoms each processor owns).
func (a Atoms) AtomDist(atomCuts []int) dist.Irregular {
	return dist.NewIrregular(atomCuts)
}

// UniformAtomBlock is the proposed (ATOM: BLOCK) distribution for the
// regular case of §5.2.1: atoms are dealt out in contiguous groups of
// as equal *count* as possible (like HPF BLOCK, but in atom units). It
// returns the atom-space cut points.
func UniformAtomBlock(nAtoms, np int) []int {
	if np < 1 {
		panic(fmt.Sprintf("partition: np=%d", np))
	}
	cuts := make([]int, np+1)
	for r := 0; r <= np; r++ {
		cuts[r] = r * nAtoms / np
	}
	return cuts
}

// SplitCount reports how many atoms a plain element-level BLOCK
// distribution of the data array would cut across a processor
// boundary — the defect the INDIVISABLE extension removes (each split
// column costs extra "communication among intra-column elements").
func SplitCount(a Atoms, np int) int {
	n := a.NElems()
	if n == 0 || np <= 1 {
		return 0
	}
	d := dist.NewBlock(n, np)
	splits := 0
	for i := 0; i < a.NAtoms(); i++ {
		lo, hi := a.Bounds[i], a.Bounds[i+1]
		if hi-lo <= 1 {
			continue
		}
		if d.Owner(lo) != d.Owner(hi-1) {
			splits++
		}
	}
	return splits
}

// BalancedContiguous solves the chains-on-chains partitioning problem:
// split weights into np contiguous groups minimising the maximum group
// weight. This is CG_BALANCED_PARTITIONER_1 (§5.2.2): weights are the
// nonzeros per row/column and the result keeps rows/columns whole while
// evening the multiply work. The optimum bottleneck is found by binary
// search over feasible bottleneck values with a greedy feasibility
// check; runtime O(n log(sum w)).
func BalancedContiguous(weights []int, np int) []int {
	if np < 1 {
		panic(fmt.Sprintf("partition: np=%d", np))
	}
	total, maxW := 0, 0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("partition: negative weight %d", w))
		}
		total += w
		if w > maxW {
			maxW = w
		}
	}
	// Binary search the minimal feasible bottleneck in [maxW, total].
	lo, hi := maxW, total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(weights, np, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return carve(weights, np, lo)
}

// feasible reports whether weights can be covered by np contiguous
// groups each of weight <= cap.
func feasible(weights []int, np, cap int) bool {
	groups, cur := 1, 0
	for _, w := range weights {
		if w > cap {
			return false
		}
		if cur+w > cap {
			groups++
			cur = 0
			if groups > np {
				return false
			}
		}
		cur += w
	}
	return true
}

// carve produces cut points realising the bottleneck: greedily fill
// each group up to cap, but leave enough atoms so that every remaining
// processor boundary can still be placed (empty trailing groups are
// allowed; empty leading groups are not produced by the greedy fill).
func carve(weights []int, np, cap int) []int {
	n := len(weights)
	cuts := make([]int, np+1)
	idx := 0
	for r := 0; r < np; r++ {
		cuts[r] = idx
		cur := 0
		for idx < n && cur+weights[idx] <= cap {
			cur += weights[idx]
			idx++
		}
	}
	cuts[np] = n
	if idx != n {
		// cap was infeasible; callers always pass a feasible cap.
		panic(fmt.Sprintf("partition: internal error, %d atoms unplaced at cap %d", n-idx, cap))
	}
	return cuts
}

// GreedyContiguous is the simple streaming heuristic the paper
// envisages a compiler applying at REDISTRIBUTE time: walk the atoms,
// starting a new processor whenever the running weight passes the ideal
// total/np share. It is cheaper than BalancedContiguous but may be up
// to 2x off the optimal bottleneck; experiment E8 compares both.
func GreedyContiguous(weights []int, np int) []int {
	if np < 1 {
		panic(fmt.Sprintf("partition: np=%d", np))
	}
	n := len(weights)
	total := 0
	for _, w := range weights {
		total += w
	}
	cuts := make([]int, np+1)
	cuts[np] = n
	idx, acc := 0, 0
	for r := 1; r < np; r++ {
		target := total * r / np
		for idx < n && acc < target {
			acc += weights[idx]
			idx++
		}
		cuts[r] = idx
	}
	return cuts
}

// CGWeights converts per-row nonzero counts into per-row CG work
// weights: each stored entry costs one multiply-add in the mat-vec,
// and each row additionally owns one element of the aligned vectors,
// which see ~perRowExtra multiply-adds per iteration (the SAXPYs and
// inner products of the Figure 2 loop; 6 for plain CG). Balancing
// these combined weights balances the whole iteration, not just the
// multiply — the tension §5.2.2 notes when A(k,i) and p(i) part ways.
func CGWeights(rowNNZ []int, perRowExtra int) []int {
	w := make([]int, len(rowNNZ))
	for i, nz := range rowNNZ {
		w[i] = nz + perRowExtra
	}
	return w
}

// Imbalance returns max/mean of the per-group weights implied by cuts
// (1.0 = perfect). Groups may be empty; an all-zero weighting returns 1.
func Imbalance(weights []int, cuts []int) float64 {
	np := len(cuts) - 1
	total, maxG := 0, 0
	for r := 0; r < np; r++ {
		g := 0
		for i := cuts[r]; i < cuts[r+1]; i++ {
			g += weights[i]
		}
		total += g
		if g > maxG {
			maxG = g
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(np)
	return float64(maxG) / mean
}

// Bottleneck returns the maximum per-group weight implied by cuts.
func Bottleneck(weights []int, cuts []int) int {
	np := len(cuts) - 1
	maxG := 0
	for r := 0; r < np; r++ {
		g := 0
		for i := cuts[r]; i < cuts[r+1]; i++ {
			g += weights[i]
		}
		if g > maxG {
			maxG = g
		}
	}
	return maxG
}
