// Package nas implements the NAS-CG benchmark kernel the paper cites
// among the codes that exercise conjugate gradient (§1, refs [1],
// [12]): a shifted-inverse power iteration that estimates the smallest
// eigenvalue region of a large sparse SPD matrix, with an inner loop of
// exactly 25 (untested-for-convergence) CG iterations per outer step.
//
// Substitution note (DESIGN.md): the matrix comes from
// sparse.NASCGMatrix, a documented simplification of the official
// `makea` generator that preserves the irregular random SPD structure
// the kernel's communication pattern depends on; absolute zeta values
// therefore differ from the published verification numbers, but the
// convergence trajectory (zeta stabilising over outer iterations,
// residual collapsing inside each inner solve) is reproduced and
// checked by tests.
package nas

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// InnerIters is the fixed CG iteration count of the NAS CG kernel.
const InnerIters = 25

// Result reports one NAS-CG run.
type Result struct {
	Class    string
	Zetas    []float64 // zeta after each outer iteration
	RNorms   []float64 // inner-solve final residual norms
	MatVecs  int
	OuterIts int
}

// FinalZeta returns the last zeta estimate.
func (r Result) FinalZeta() float64 { return r.Zetas[len(r.Zetas)-1] }

// innerCG runs exactly InnerIters unpreconditioned CG iterations on
// A z = x starting from z = 0 and returns ||r|| at exit (the NAS
// kernel's structure; no convergence test inside).
func innerCG(A *sparse.CSR, x, z []float64) float64 {
	n := A.NRows
	for i := range z {
		z[i] = 0
	}
	r := make([]float64, n)
	copy(r, x)
	p := make([]float64, n)
	copy(p, x)
	q := make([]float64, n)
	rho := dot(r, r)
	for it := 0; it < InnerIters; it++ {
		A.MulVec(p, q)
		alpha := rho / dot(p, q)
		axpy(z, alpha, p)
		axpy(r, -alpha, q)
		rho0 := rho
		rho = dot(r, r)
		beta := rho / rho0
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return math.Sqrt(rho)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Run executes the sequential NAS-CG kernel for the class.
func Run(cls sparse.NASCGClass, seed int64) Result {
	A := sparse.NASCGMatrix(cls, seed)
	return RunWithMatrix(cls, A)
}

// RunWithMatrix executes the kernel against a caller-provided matrix
// (so distributed and sequential runs can share one).
func RunWithMatrix(cls sparse.NASCGClass, A *sparse.CSR) Result {
	n := cls.N
	x := sparse.Ones(n)
	z := make([]float64, n)
	res := Result{Class: cls.Name, OuterIts: cls.NIter}
	for it := 0; it < cls.NIter; it++ {
		rnorm := innerCG(A, x, z)
		res.MatVecs += InnerIters
		zeta := cls.Shift + 1/dot(x, z)
		res.Zetas = append(res.Zetas, zeta)
		res.RNorms = append(res.RNorms, rnorm)
		// x = z / ||z||
		zn := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / zn
		}
	}
	return res
}

// RunDistributed executes the same kernel SPMD over the machine, using
// the row-block CSR operator of Scenario 1. Every processor returns the
// same Result.
func RunDistributed(p *comm.Proc, cls sparse.NASCGClass, A *sparse.CSR) Result {
	n := cls.N
	d := dist.NewBlock(n, p.NP())
	op := spmv.NewRowBlockCSR(p, A, d)

	x := darray.New(p, d)
	x.Fill(1)
	z := darray.New(p, d)
	r := darray.New(p, d)
	pd := darray.New(p, d)
	q := darray.New(p, d)

	res := Result{Class: cls.Name, OuterIts: cls.NIter}
	for it := 0; it < cls.NIter; it++ {
		// Inner CG: z = A⁻¹x approximately, 25 iterations.
		z.Fill(0)
		r.CopyFrom(x)
		pd.CopyFrom(x)
		rho := r.Dot(r)
		for k := 0; k < InnerIters; k++ {
			op.Apply(pd, q)
			alpha := rho / pd.Dot(q)
			z.AXPY(alpha, pd)
			r.AXPY(-alpha, q)
			rho0 := rho
			rho = r.Dot(r)
			pd.AYPX(rho/rho0, r)
		}
		res.MatVecs += InnerIters
		res.RNorms = append(res.RNorms, math.Sqrt(rho))
		zeta := cls.Shift + 1/x.Dot(z)
		res.Zetas = append(res.Zetas, zeta)
		zn := z.Norm2()
		x.CopyFrom(z)
		x.Scale(1 / zn)
	}
	return res
}

// Verify checks the structural health of a run: zeta must settle (the
// power iteration converges) and the inner residuals must be small
// relative to the first one. It returns nil when the trajectory looks
// like a correct NAS-CG run.
func Verify(res Result) error {
	if len(res.Zetas) < 2 {
		return fmt.Errorf("nas: too few outer iterations (%d)", len(res.Zetas))
	}
	last := res.Zetas[len(res.Zetas)-1]
	prev := res.Zetas[len(res.Zetas)-2]
	firstDelta := math.Abs(res.Zetas[1] - res.Zetas[0])
	lastDelta := math.Abs(last - prev)
	// The shifted power iteration converges linearly; after the outer
	// loop the step size must be both small relative to zeta and much
	// smaller than the initial step.
	if lastDelta > 0.01*math.Abs(last) {
		return fmt.Errorf("nas: zeta has not settled: %.10g vs %.10g", prev, last)
	}
	if firstDelta > 0 && lastDelta > 0.5*firstDelta {
		return fmt.Errorf("nas: zeta trajectory not contracting: first step %g, last step %g", firstDelta, lastDelta)
	}
	if !(last > 0) || math.IsNaN(last) || math.IsInf(last, 0) {
		return fmt.Errorf("nas: bad final zeta %g", last)
	}
	first, final := res.RNorms[0], res.RNorms[len(res.RNorms)-1]
	if final > first {
		return fmt.Errorf("nas: inner residual grew: %g -> %g", first, final)
	}
	return nil
}
