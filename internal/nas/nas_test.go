package nas

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// A small class for fast tests.
var tiny = sparse.NASCGClass{Name: "T", N: 200, Nonzer: 5, Shift: 8, NIter: 10}

func TestSequentialRun(t *testing.T) {
	res := Run(tiny, 7)
	if res.OuterIts != tiny.NIter || len(res.Zetas) != tiny.NIter {
		t.Fatalf("trajectory length %d", len(res.Zetas))
	}
	if res.MatVecs != tiny.NIter*InnerIters {
		t.Errorf("MatVecs = %d, want %d", res.MatVecs, tiny.NIter*InnerIters)
	}
	if err := Verify(res); err != nil {
		t.Fatalf("Verify: %v (zetas %v)", err, res.Zetas)
	}
	// zeta must exceed the shift: A's eigenvalues are > shift by the
	// diagonally-dominant construction, so 1/(x·z) > 0.
	if res.FinalZeta() <= tiny.Shift {
		t.Errorf("final zeta %g <= shift %g", res.FinalZeta(), tiny.Shift)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(tiny, 3)
	b := Run(tiny, 3)
	if a.FinalZeta() != b.FinalZeta() {
		t.Errorf("same seed differs: %g vs %g", a.FinalZeta(), b.FinalZeta())
	}
	c := Run(tiny, 4)
	if a.FinalZeta() == c.FinalZeta() {
		t.Errorf("different seeds should differ")
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	A := sparse.NASCGMatrix(tiny, 7)
	want := RunWithMatrix(tiny, A)
	for _, np := range []int{1, 2, 4} {
		m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
		var got Result
		m.Run(func(p *comm.Proc) {
			r := RunDistributed(p, tiny, A)
			if p.Rank() == 0 {
				got = r
			}
		})
		if err := Verify(got); err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		for i := range want.Zetas {
			if math.Abs(got.Zetas[i]-want.Zetas[i]) > 1e-8*math.Abs(want.Zetas[i]) {
				t.Fatalf("np=%d outer %d: zeta %g vs sequential %g", np, i, got.Zetas[i], want.Zetas[i])
			}
		}
	}
}

func TestClassS(t *testing.T) {
	if testing.Short() {
		t.Skip("class S takes a few seconds")
	}
	res := Run(sparse.NASClassS, 1)
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.FinalZeta() <= sparse.NASClassS.Shift {
		t.Errorf("zeta %g below shift", res.FinalZeta())
	}
}

func TestVerifyRejectsBadRuns(t *testing.T) {
	good := Run(tiny, 2)
	cases := map[string]func(Result) Result{
		"short": func(r Result) Result {
			r.Zetas = r.Zetas[:1]
			return r
		},
		"unsettled": func(r Result) Result {
			z := append([]float64(nil), r.Zetas...)
			z[len(z)-1] *= 2
			r.Zetas = z
			return r
		},
		"residual-grew": func(r Result) Result {
			rn := append([]float64(nil), r.RNorms...)
			rn[len(rn)-1] = rn[0] * 10
			r.RNorms = rn
			return r
		},
	}
	for name, mutate := range cases {
		if err := Verify(mutate(good)); err == nil {
			t.Errorf("%s: Verify accepted a corrupted run", name)
		}
	}
}
