package sparse

import (
	"fmt"
	"math"
)

// This file adds the structure-exploiting storage schemes §3 alludes to
// ("some of which can exploit additional information about the sparsity
// structure of the matrix"): ELLPACK for matrices whose rows have
// (nearly) the same number of nonzeros — exactly the "regular
// (uniform)" case of §5.2.1 — and the diagonal format (DIA) for banded
// matrices. Both trade generality for contiguous, branch-light inner
// loops.

// ELL is the ELLPACK/ITPACK format: every row stores exactly Width
// entries (shorter rows are padded with a zero value and a repeated
// column index), laid out column-major so the mat-vec inner loop is a
// stride-NRows stream.
type ELL struct {
	NRows, NCols int
	Width        int
	Col          []int     // len NRows*Width, Col[j*NRows+i] = column of row i's j-th entry
	Val          []float64 // same layout
}

// ToELL converts a CSR matrix. maxWidth bounds the acceptable row
// width (0 = no bound); conversion fails if some row is longer, which
// signals the matrix is not uniform enough for ELLPACK (use CSR).
func (m *CSR) ToELL(maxWidth int) (*ELL, error) {
	width := 0
	for i := 0; i < m.NRows; i++ {
		if w := m.RowPtr[i+1] - m.RowPtr[i]; w > width {
			width = w
		}
	}
	if maxWidth > 0 && width > maxWidth {
		return nil, fmt.Errorf("sparse: ELL width %d exceeds bound %d (matrix too irregular)", width, maxWidth)
	}
	e := &ELL{
		NRows: m.NRows,
		NCols: m.NCols,
		Width: width,
		Col:   make([]int, m.NRows*width),
		Val:   make([]float64, m.NRows*width),
	}
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		pad := 0
		if len(cols) > 0 {
			pad = cols[0] // repeat a real column index for padding
		}
		for j := 0; j < width; j++ {
			idx := j*m.NRows + i
			if j < len(cols) {
				e.Col[idx] = cols[j]
				e.Val[idx] = vals[j]
			} else {
				e.Col[idx] = pad
				e.Val[idx] = 0
			}
		}
	}
	return e, nil
}

// NNZ returns the stored entries including padding.
func (e *ELL) NNZ() int { return e.NRows * e.Width }

// PaddingRatio reports stored/structural entries (1.0 = perfectly
// uniform rows, the §5.2.1 regular case).
func (e *ELL) PaddingRatio(structuralNNZ int) float64 {
	if structuralNNZ == 0 {
		return math.Inf(1)
	}
	return float64(e.NNZ()) / float64(structuralNNZ)
}

// MulVec computes y = A*x.
func (e *ELL) MulVec(x, y []float64) {
	if len(x) != e.NCols || len(y) != e.NRows {
		panic(fmt.Sprintf("sparse: ELL MulVec shapes: A %dx%d, x %d, y %d", e.NRows, e.NCols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < e.Width; j++ {
		base := j * e.NRows
		for i := 0; i < e.NRows; i++ {
			y[i] += e.Val[base+i] * x[e.Col[base+i]]
		}
	}
}

// ToCSR converts back, dropping padding zeros.
func (e *ELL) ToCSR() *CSR {
	coo := NewCOO(e.NRows, e.NCols)
	for j := 0; j < e.Width; j++ {
		base := j * e.NRows
		for i := 0; i < e.NRows; i++ {
			if v := e.Val[base+i]; v != 0 {
				coo.Add(i, e.Col[base+i], v)
			}
		}
	}
	return coo.ToCSR()
}

// DIA is the diagonal storage format: Offsets lists the stored
// diagonals (0 = main, +k above, -k below) and Diags holds each
// diagonal as a full-length strip indexed by row.
type DIA struct {
	N       int // square
	Offsets []int
	Diags   [][]float64 // Diags[d][i] = A(i, i+Offsets[d]) where valid
}

// ToDIA converts a square CSR matrix. maxDiags bounds the number of
// distinct diagonals (0 = no bound); conversion fails beyond it, which
// signals the matrix is not banded enough for DIA.
func (m *CSR) ToDIA(maxDiags int) (*DIA, error) {
	if m.NRows != m.NCols {
		return nil, fmt.Errorf("sparse: DIA needs a square matrix, got %dx%d", m.NRows, m.NCols)
	}
	n := m.NRows
	seen := map[int]bool{}
	var offsets []int
	for i := 0; i < n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			off := m.Col[k] - i
			if !seen[off] {
				seen[off] = true
				offsets = append(offsets, off)
			}
		}
	}
	if maxDiags > 0 && len(offsets) > maxDiags {
		return nil, fmt.Errorf("sparse: %d distinct diagonals exceed bound %d (matrix not banded)", len(offsets), maxDiags)
	}
	// Sort offsets ascending for deterministic layout.
	for i := 1; i < len(offsets); i++ {
		for j := i; j > 0 && offsets[j] < offsets[j-1]; j-- {
			offsets[j], offsets[j-1] = offsets[j-1], offsets[j]
		}
	}
	idx := make(map[int]int, len(offsets))
	for d, off := range offsets {
		idx[off] = d
	}
	dia := &DIA{N: n, Offsets: offsets, Diags: make([][]float64, len(offsets))}
	for d := range dia.Diags {
		dia.Diags[d] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dia.Diags[idx[m.Col[k]-i]][i] = m.Val[k]
		}
	}
	return dia, nil
}

// NNZ returns the stored entries including the zero parts of each
// diagonal strip.
func (d *DIA) NNZ() int { return len(d.Offsets) * d.N }

// MulVec computes y = A*x diagonal by diagonal.
func (d *DIA) MulVec(x, y []float64) {
	if len(x) != d.N || len(y) != d.N {
		panic(fmt.Sprintf("sparse: DIA MulVec shapes: A %d, x %d, y %d", d.N, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for k, off := range d.Offsets {
		diag := d.Diags[k]
		lo, hi := 0, d.N
		if off > 0 {
			hi = d.N - off
		} else {
			lo = -off
		}
		for i := lo; i < hi; i++ {
			y[i] += diag[i] * x[i+off]
		}
	}
}

// ToCSR converts back, dropping structural zeros.
func (d *DIA) ToCSR() *CSR {
	coo := NewCOO(d.N, d.N)
	for k, off := range d.Offsets {
		for i := 0; i < d.N; i++ {
			j := i + off
			if j < 0 || j >= d.N {
				continue
			}
			if v := d.Diags[k][i]; v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
