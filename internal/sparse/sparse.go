// Package sparse implements the sparse-matrix storage schemes of §3 of
// the paper — Compressed Sparse Row (CSR), Compressed Sparse Column
// (CSC, Figure 1) and the coordinate (COO) builder format — together
// with dense matrices, format conversions, transposition, symmetry
// checks, and the matrix generators the experiments need (Laplacians,
// banded, random SPD, NAS-CG-like, and power-law "irregular grid"
// matrices for the load-balance study of §5.2.2).
//
// Index convention: everything is 0-based (the paper's Fortran listings
// are 1-based). In CSR, row j's entries occupy a[RowPtr[j]:RowPtr[j+1]]
// with column indices Col[...]; the paper's (row, col, a) trio maps to
// (RowPtr, Col, Val) for CSR and (ColPtr, Row, Val) for CSC.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// COO is the coordinate ("triplet") builder format: unordered (i, j, v)
// entries. Duplicate coordinates are summed on conversion.
type COO struct {
	NRows, NCols int
	I, J         []int
	V            []float64
}

// NewCOO creates an empty nrows x ncols triplet accumulator.
func NewCOO(nrows, ncols int) *COO {
	if nrows < 0 || ncols < 0 {
		panic(fmt.Sprintf("sparse: invalid shape %dx%d", nrows, ncols))
	}
	return &COO{NRows: nrows, NCols: ncols}
}

// Add appends entry (i, j, v). Zero values are kept (callers may want
// explicit zeros); duplicates are summed when converting.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.NRows || j < 0 || j >= c.NCols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, c.NRows, c.NCols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// NNZ returns the number of stored entries (duplicates counted).
func (c *COO) NNZ() int { return len(c.V) }

// ToCSR converts the triplets to CSR, summing duplicates and sorting
// column indices within each row.
func (c *COO) ToCSR() *CSR {
	n := c.NRows
	rowCount := make([]int, n)
	for _, i := range c.I {
		rowCount[i]++
	}
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + rowCount[i]
	}
	col := make([]int, len(c.V))
	val := make([]float64, len(c.V))
	next := append([]int(nil), rowPtr[:n]...)
	for k := range c.V {
		i := c.I[k]
		col[next[i]] = c.J[k]
		val[next[i]] = c.V[k]
		next[i]++
	}
	m := &CSR{NRows: n, NCols: c.NCols, RowPtr: rowPtr, Col: col, Val: val}
	m.sortRows()
	m.sumDuplicates()
	return m
}

// ToCSC converts the triplets to CSC via CSR transposition.
func (c *COO) ToCSC() *CSC { return c.ToCSR().ToCSC() }

// CSR is the Compressed Sparse Row format: for row i, the entries are
// Val[RowPtr[i]:RowPtr[i+1]] in columns Col[RowPtr[i]:RowPtr[i+1]],
// sorted by column.
type CSR struct {
	NRows, NCols int
	RowPtr       []int // length NRows+1
	Col          []int // length NNZ
	Val          []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Validate checks structural invariants and returns a descriptive
// error when they are violated.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.NRows+1 {
		return fmt.Errorf("sparse: RowPtr length %d != NRows+1 = %d", len(m.RowPtr), m.NRows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.NRows] != len(m.Val) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("sparse: nnz mismatch: RowPtr end %d, Col %d, Val %d",
			m.RowPtr[m.NRows], len(m.Col), len(m.Val))
	}
	for i := 0; i < m.NRows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] < 0 || m.Col[k] >= m.NCols {
				return fmt.Errorf("sparse: row %d has column %d outside [0,%d)", i, m.Col[k], m.NCols)
			}
			if k > m.RowPtr[i] && m.Col[k] <= m.Col[k-1] {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, k)
			}
		}
	}
	return nil
}

func (m *CSR) sortRows() {
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		sort.Sort(&rowSorter{col: m.Col[lo:hi], val: m.Val[lo:hi]})
	}
}

type rowSorter struct {
	col []int
	val []float64
}

func (s *rowSorter) Len() int           { return len(s.col) }
func (s *rowSorter) Less(i, j int) bool { return s.col[i] < s.col[j] }
func (s *rowSorter) Swap(i, j int) {
	s.col[i], s.col[j] = s.col[j], s.col[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// sumDuplicates merges adjacent equal-column entries (rows must be
// sorted first).
func (m *CSR) sumDuplicates() {
	out := 0
	newPtr := make([]int, m.NRows+1)
	for i := 0; i < m.NRows; i++ {
		newPtr[i] = out
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if out > newPtr[i] && m.Col[out-1] == m.Col[k] {
				m.Val[out-1] += m.Val[k]
			} else {
				m.Col[out] = m.Col[k]
				m.Val[out] = m.Val[k]
				out++
			}
		}
	}
	newPtr[m.NRows] = out
	m.RowPtr = newPtr
	m.Col = m.Col[:out]
	m.Val = m.Val[:out]
}

// Row returns the column indices and values of row i (views, not
// copies).
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j), zero if not stored.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.Col[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A*x sequentially. y must have length NRows.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.NCols || len(y) != m.NRows {
		panic(fmt.Sprintf("sparse: MulVec shapes: A %dx%d, x %d, y %d", m.NRows, m.NCols, len(x), len(y)))
	}
	for i := 0; i < m.NRows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// MulVecT computes y = A^T*x sequentially. y must have length NCols.
func (m *CSR) MulVecT(x, y []float64) {
	if len(x) != m.NRows || len(y) != m.NCols {
		panic(fmt.Sprintf("sparse: MulVecT shapes: A %dx%d, x %d, y %d", m.NRows, m.NCols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.NRows; i++ {
		xi := x[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.Col[k]] += m.Val[k] * xi
		}
	}
}

// Diag returns the main diagonal as a dense vector (zeros where no
// entry is stored).
func (m *CSR) Diag() []float64 {
	n := m.NRows
	if m.NCols < n {
		n = m.NCols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// ToCSC converts to compressed sparse column form.
func (m *CSR) ToCSC() *CSC {
	t := m.Transpose()
	return &CSC{
		NRows:  m.NRows,
		NCols:  m.NCols,
		ColPtr: t.RowPtr,
		Row:    t.Col,
		Val:    t.Val,
	}
}

// Transpose returns A^T in CSR form.
func (m *CSR) Transpose() *CSR {
	colCount := make([]int, m.NCols)
	for _, j := range m.Col {
		colCount[j]++
	}
	ptr := make([]int, m.NCols+1)
	for j := 0; j < m.NCols; j++ {
		ptr[j+1] = ptr[j] + colCount[j]
	}
	col := make([]int, len(m.Val))
	val := make([]float64, len(m.Val))
	next := append([]int(nil), ptr[:m.NCols]...)
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			col[next[j]] = i
			val[next[j]] = m.Val[k]
			next[j]++
		}
	}
	return &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: ptr, Col: col, Val: val}
}

// IsSymmetric reports whether the matrix equals its transpose to
// within tol on every stored entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.NRows != m.NCols {
		return false
	}
	t := m.Transpose()
	if len(t.Val) != len(m.Val) {
		return false
	}
	for i := 0; i < m.NRows; i++ {
		if t.RowPtr[i] != m.RowPtr[i] {
			return false
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if t.Col[k] != m.Col[k] || math.Abs(t.Val[k]-m.Val[k]) > tol {
				return false
			}
		}
	}
	return true
}

// RowNNZ returns the per-row nonzero counts, the weights the
// CG_BALANCED_PARTITIONER of §5.2.2 balances.
func (m *CSR) RowNNZ() []int {
	w := make([]int, m.NRows)
	for i := range w {
		w[i] = m.RowPtr[i+1] - m.RowPtr[i]
	}
	return w
}

// ToDense expands to a dense matrix (for tests and small baselines).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.NRows, m.NCols)
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.Col[k], m.Val[k])
		}
	}
	return d
}

// CSC is the Compressed Sparse Column format of Figure 1: for column j,
// the entries are Val[ColPtr[j]:ColPtr[j+1]] in rows
// Row[ColPtr[j]:ColPtr[j+1]], sorted by row.
type CSC struct {
	NRows, NCols int
	ColPtr       []int // length NCols+1
	Row          []int // length NNZ
	Val          []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Val) }

// Validate checks structural invariants.
func (m *CSC) Validate() error {
	asCSR := &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: m.ColPtr, Col: m.Row, Val: m.Val}
	if err := asCSR.Validate(); err != nil {
		return fmt.Errorf("sparse: CSC invalid (checked as transposed CSR): %w", err)
	}
	return nil
}

// Col returns the row indices and values of column j (views).
func (m *CSC) ColEntries(j int) (rows []int, vals []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.Row[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j), zero if not stored.
func (m *CSC) At(i, j int) float64 {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	rows := m.Row[lo:hi]
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A*x sequentially in column order — the paper's
// Scenario 2 loop: "each i-iteration gives a partial sum at several
// elements of q".
func (m *CSC) MulVec(x, y []float64) {
	if len(x) != m.NCols || len(y) != m.NRows {
		panic(fmt.Sprintf("sparse: MulVec shapes: A %dx%d, x %d, y %d", m.NRows, m.NCols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.NCols; j++ {
		pj := x[j]
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			y[m.Row[k]] += m.Val[k] * pj
		}
	}
}

// ToCSR converts to compressed sparse row form.
func (m *CSC) ToCSR() *CSR {
	asCSR := &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: m.ColPtr, Col: m.Row, Val: m.Val}
	return asCSR.Transpose()
}

// ColNNZ returns per-column nonzero counts.
func (m *CSC) ColNNZ() []int {
	w := make([]int, m.NCols)
	for j := range w {
		w[j] = m.ColPtr[j+1] - m.ColPtr[j]
	}
	return w
}

// Dense is a row-major dense matrix, the paper's "dense storage
// format" alternative (§4).
type Dense struct {
	NRows, NCols int
	Data         []float64 // row-major
}

// NewDense allocates an nrows x ncols zero matrix.
func NewDense(nrows, ncols int) *Dense {
	if nrows < 0 || ncols < 0 {
		panic(fmt.Sprintf("sparse: invalid shape %dx%d", nrows, ncols))
	}
	return &Dense{NRows: nrows, NCols: ncols, Data: make([]float64, nrows*ncols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.NCols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.NCols+j] = v }

// Row returns row i as a view.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.NCols : (i+1)*d.NCols] }

// MulVec computes y = A*x.
func (d *Dense) MulVec(x, y []float64) {
	if len(x) != d.NCols || len(y) != d.NRows {
		panic(fmt.Sprintf("sparse: MulVec shapes: A %dx%d, x %d, y %d", d.NRows, d.NCols, len(x), len(y)))
	}
	for i := 0; i < d.NRows; i++ {
		row := d.Row(i)
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// ToCSR compresses, dropping exact zeros.
func (d *Dense) ToCSR() *CSR {
	coo := NewCOO(d.NRows, d.NCols)
	for i := 0; i < d.NRows; i++ {
		for j := 0; j < d.NCols; j++ {
			if v := d.At(i, j); v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.NRows, d.NCols)
	copy(c.Data, d.Data)
	return c
}
