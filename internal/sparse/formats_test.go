package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func mulVecClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
}

func TestELLRoundTripAndMulVec(t *testing.T) {
	for name, A := range map[string]*CSR{
		"banded":  Banded(40, 3),
		"laplace": Laplace2D(5, 6),
		"randspd": RandomSPD(30, 4, 2),
	} {
		e, err := A.ToELL(0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := RandomVector(A.NCols, 3)
		want := make([]float64, A.NRows)
		A.MulVec(x, want)
		got := make([]float64, A.NRows)
		e.MulVec(x, got)
		mulVecClose(t, name+"/ell", got, want)

		back := e.ToCSR()
		if back.NNZ() != A.NNZ() {
			t.Errorf("%s: round trip nnz %d != %d", name, back.NNZ(), A.NNZ())
		}
	}
}

func TestELLWidthBound(t *testing.T) {
	// Power-law matrix: very uneven rows, ELL should refuse a tight bound.
	A := PowerLaw(100, 1.0, 40, 5)
	if _, err := A.ToELL(3); err == nil {
		t.Error("irregular matrix accepted with tight width bound")
	}
	e, err := A.ToELL(0)
	if err != nil {
		t.Fatal(err)
	}
	// Padding is wasteful for irregular rows — the §5.2.1 regular/
	// irregular distinction in storage terms.
	if e.PaddingRatio(A.NNZ()) < 1.5 {
		t.Errorf("power-law padding ratio %g suspiciously small", e.PaddingRatio(A.NNZ()))
	}
	uniform := Banded(40, 2)
	eu, err := uniform.ToELL(0)
	if err != nil {
		t.Fatal(err)
	}
	if eu.PaddingRatio(uniform.NNZ()) > 1.3 {
		t.Errorf("banded padding ratio %g too large", eu.PaddingRatio(uniform.NNZ()))
	}
	if eu.NNZ() != uniform.NRows*eu.Width {
		t.Errorf("NNZ accounting wrong")
	}
}

func TestDIARoundTripAndMulVec(t *testing.T) {
	A := Banded(50, 4)
	d, err := A.ToDIA(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Offsets) != 9 { // -4..4
		t.Errorf("banded halfband 4 has %d diagonals, want 9", len(d.Offsets))
	}
	x := RandomVector(50, 7)
	want := make([]float64, 50)
	A.MulVec(x, want)
	got := make([]float64, 50)
	d.MulVec(x, got)
	mulVecClose(t, "dia", got, want)

	back := d.ToCSR()
	if back.NNZ() != A.NNZ() {
		t.Errorf("round trip nnz %d != %d", back.NNZ(), A.NNZ())
	}
}

func TestDIABounds(t *testing.T) {
	A := RandomSPD(60, 8, 3)
	if _, err := A.ToDIA(5); err == nil {
		t.Error("random matrix accepted with tight diagonal bound")
	}
	rect := NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := rect.ToCSR().ToDIA(0); err == nil {
		t.Error("rectangular matrix accepted")
	}
	// Tridiagonal: exactly 3 diagonals, sorted offsets.
	tri, err := Laplace1D(10).ToDIA(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tri.Offsets) != 3 || tri.Offsets[0] != -1 || tri.Offsets[2] != 1 {
		t.Errorf("offsets %v", tri.Offsets)
	}
	if tri.NNZ() != 30 {
		t.Errorf("DIA NNZ = %d", tri.NNZ())
	}
}

func TestFormatShapeValidation(t *testing.T) {
	e, _ := Laplace1D(5).ToELL(0)
	d, _ := Laplace1D(5).ToDIA(0)
	for _, fn := range []func(){
		func() { e.MulVec(make([]float64, 4), make([]float64, 5)) },
		func() { d.MulVec(make([]float64, 5), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected shape panic")
				}
			}()
			fn()
		}()
	}
}

// Property: ELL and DIA agree with CSR on random banded matrices.
func TestFormatsQuick(t *testing.T) {
	f := func(seed int64, nRaw, bandRaw uint8) bool {
		n := int(nRaw%40) + 3
		band := int(bandRaw%3) + 1
		A := Banded(n, band)
		x := RandomVector(n, seed)
		want := make([]float64, n)
		A.MulVec(x, want)

		e, err := A.ToELL(0)
		if err != nil {
			return false
		}
		ge := make([]float64, n)
		e.MulVec(x, ge)
		d, err := A.ToDIA(0)
		if err != nil {
			return false
		}
		gd := make([]float64, n)
		d.MulVec(x, gd)
		for i := range want {
			if math.Abs(ge[i]-want[i]) > 1e-9 || math.Abs(gd[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
