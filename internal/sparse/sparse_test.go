package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSRBasic(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 1)
	coo.Add(2, 1, 5)
	coo.Add(1, 2, 3)
	coo.Add(0, 2, 2)
	coo.Add(0, 2, 4) // duplicate, must sum to 6
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 after duplicate merge", m.NNZ())
	}
	if m.At(0, 2) != 6 {
		t.Errorf("At(0,2) = %g, want 6", m.At(0, 2))
	}
	if m.At(2, 1) != 5 || m.At(1, 2) != 3 || m.At(0, 0) != 1 {
		t.Error("entries misplaced")
	}
	if m.At(2, 2) != 0 {
		t.Errorf("missing entry should read 0, got %g", m.At(2, 2))
	}
}

func TestCOOValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add should panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestFigure1CSC(t *testing.T) {
	// Figure 1 of the paper gives the CSC arrays for its 6x6 example.
	m := Figure1Matrix()
	csc := m.ToCSC()
	if err := csc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Column 1 (0-based 0) holds a11, a21, a31, a51 in row order.
	rows, vals := csc.ColEntries(0)
	wantRows := []int{0, 1, 2, 4}
	wantVals := []float64{11, 21, 31, 51}
	if len(rows) != 4 {
		t.Fatalf("col 0 has %d entries", len(rows))
	}
	for k := range rows {
		if rows[k] != wantRows[k] || vals[k] != wantVals[k] {
			t.Errorf("col 0 entry %d = (%d,%g), want (%d,%g)", k, rows[k], vals[k], wantRows[k], wantVals[k])
		}
	}
	// Column 6 (0-based 5) holds a26, a66.
	rows, vals = csc.ColEntries(5)
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 5 || vals[0] != 26 || vals[1] != 66 {
		t.Errorf("col 5 entries = %v %v", rows, vals)
	}
	if m.NNZ() != 15 {
		t.Errorf("Figure 1 matrix has %d nonzeros, want 15", m.NNZ())
	}
}

func TestCSRCSCRoundTrip(t *testing.T) {
	m := RandomSPD(50, 6, 1)
	back := m.ToCSC().ToCSR()
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip changed nnz: %d -> %d", m.NNZ(), back.NNZ())
	}
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			if back.At(i, j) != m.Val[k] {
				t.Fatalf("round trip changed entry (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	m := RandomSPD(40, 5, 7)
	d := m.ToDense()
	x := RandomVector(40, 2)
	ys, yd := make([]float64, 40), make([]float64, 40)
	m.MulVec(x, ys)
	d.MulVec(x, yd)
	for i := range ys {
		if math.Abs(ys[i]-yd[i]) > 1e-10 {
			t.Fatalf("CSR MulVec differs from dense at %d: %g vs %g", i, ys[i], yd[i])
		}
	}
	csc := m.ToCSC()
	yc := make([]float64, 40)
	csc.MulVec(x, yc)
	for i := range yc {
		if math.Abs(yc[i]-yd[i]) > 1e-10 {
			t.Fatalf("CSC MulVec differs from dense at %d", i)
		}
	}
}

func TestMulVecT(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(1, 3, 5)
	coo.Add(2, 0, -1)
	m := coo.ToCSR()
	x := []float64{1, 2, 3}
	y := make([]float64, 4)
	m.MulVecT(x, y)
	// A^T x: col0 gets -1*3, col1 gets 2*1, col3 gets 5*2.
	want := []float64{-3, 2, 0, 10}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
	// Cross-check against explicit transpose.
	tm := m.Transpose()
	y2 := make([]float64, 4)
	tm.MulVec(x, y2)
	for i := range y2 {
		if math.Abs(y[i]-y2[i]) > 1e-14 {
			t.Fatal("MulVecT != Transpose().MulVec")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := PowerLaw(60, 1.1, 20, 3)
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatal("double transpose changed nnz")
	}
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if tt.At(i, m.Col[k]) != m.Val[k] {
				t.Fatal("double transpose changed values")
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !RandomSPD(30, 4, 9).IsSymmetric(1e-12) {
		t.Error("RandomSPD should be symmetric")
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1)
	if coo.ToCSR().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	coo2 := NewCOO(2, 3)
	if coo2.ToCSR().IsSymmetric(1e-12) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestDiagAndRowNNZ(t *testing.T) {
	m := Laplace1D(5)
	d := m.Diag()
	for i, v := range d {
		if v != 2 {
			t.Errorf("Diag[%d] = %g, want 2", i, v)
		}
	}
	w := m.RowNNZ()
	want := []int{2, 3, 3, 3, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("RowNNZ[%d] = %d, want %d", i, w[i], want[i])
		}
	}
	csc := m.ToCSC()
	cw := csc.ColNNZ()
	for i := range want {
		if cw[i] != want[i] {
			t.Errorf("ColNNZ[%d] = %d, want %d (symmetric)", i, cw[i], want[i])
		}
	}
}

func TestLaplace2DStructure(t *testing.T) {
	m := Laplace2D(3, 4)
	if m.NRows != 12 || m.NCols != 12 {
		t.Fatalf("shape %dx%d", m.NRows, m.NCols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Error("Laplace2D not symmetric")
	}
	// Interior point (1,1) -> index 1*4+1 = 5 has 5 entries.
	if got := m.RowPtr[6] - m.RowPtr[5]; got != 5 {
		t.Errorf("interior row has %d entries, want 5", got)
	}
	// Corner (0,0) has 3 entries.
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 3 {
		t.Errorf("corner row has %d entries, want 3", got)
	}
	// Row sums of the Laplacian with Dirichlet boundary are >= 0 and the
	// matrix is diagonally dominant.
	for i := 0; i < m.NRows; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k]
		}
		if sum < 0 {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}
}

func TestLaplace3D(t *testing.T) {
	m := Laplace3D(3, 3, 3)
	if m.NRows != 27 {
		t.Fatalf("shape %d", m.NRows)
	}
	if !m.IsSymmetric(0) {
		t.Error("Laplace3D not symmetric")
	}
	// Center point has 7 entries.
	center := (1*3+1)*3 + 1
	if got := m.RowPtr[center+1] - m.RowPtr[center]; got != 7 {
		t.Errorf("center row has %d entries, want 7", got)
	}
}

func TestBandedUniform(t *testing.T) {
	m := Banded(20, 2)
	if !m.IsSymmetric(0) {
		t.Error("Banded not symmetric")
	}
	w := m.RowNNZ()
	// Interior rows all have 2*2+1 = 5 entries: the uniform case.
	for i := 2; i < 18; i++ {
		if w[i] != 5 {
			t.Errorf("row %d has %d entries, want 5", i, w[i])
		}
	}
}

func TestRandomSPDDominance(t *testing.T) {
	m := RandomSPD(80, 6, 42)
	for i := 0; i < m.NRows; i++ {
		diag, off := 0.0, 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == i {
				diag = m.Val[k]
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant: diag %g, off %g", i, diag, off)
		}
	}
	// Determinism.
	m2 := RandomSPD(80, 6, 42)
	if m2.NNZ() != m.NNZ() || m2.At(0, 0) != m.At(0, 0) {
		t.Error("RandomSPD not deterministic for equal seeds")
	}
}

func TestPowerLawSkew(t *testing.T) {
	m := PowerLaw(400, 1.0, 100, 5)
	if !m.IsSymmetric(1e-12) {
		t.Error("PowerLaw not symmetric")
	}
	w := m.RowNNZ()
	mn, mx := w[0], w[0]
	for _, c := range w {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	// The point of the generator is skew: max row must be much denser
	// than min row.
	if mx < 4*mn {
		t.Errorf("power-law matrix insufficiently skewed: min %d, max %d", mn, mx)
	}
}

func TestDiagWithEigenvalues(t *testing.T) {
	eigs := []float64{1, 2, 2, 5}
	m := DiagWithEigenvalues(eigs)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	for i, e := range eigs {
		if m.At(i, i) != e {
			t.Errorf("diag %d = %g", i, m.At(i, i))
		}
	}
}

func TestNASCGMatrix(t *testing.T) {
	m := NASCGMatrix(NASClassS, 11)
	if m.NRows != 1400 {
		t.Fatalf("class S size %d", m.NRows)
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("NAS matrix not symmetric")
	}
	// Diagonal must dominate (shift + rowsum construction).
	for i := 0; i < m.NRows; i++ {
		diag, off := 0.0, 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == i {
				diag = m.Val[k]
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag < off+NASClassS.Shift-1e-9 {
			t.Fatalf("row %d: diag %g < off %g + shift", i, diag, off)
		}
	}
}

func TestDense(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 1, 5)
	d.Set(1, 2, -2)
	if d.At(0, 1) != 5 || d.At(1, 2) != -2 || d.At(0, 0) != 0 {
		t.Error("Set/At wrong")
	}
	x := []float64{1, 2, 3}
	y := make([]float64, 2)
	d.MulVec(x, y)
	if y[0] != 10 || y[1] != -6 {
		t.Errorf("MulVec = %v", y)
	}
	c := d.Clone()
	c.Set(0, 0, 9)
	if d.At(0, 0) != 0 {
		t.Error("Clone aliases original")
	}
	m := d.ToCSR()
	if m.NNZ() != 2 || m.At(0, 1) != 5 {
		t.Errorf("ToCSR wrong: nnz=%d", m.NNZ())
	}
}

func TestGeneratorByName(t *testing.T) {
	specs := []struct {
		spec string
		n    int
	}{
		{"laplace1d:10", 10},
		{"laplace2d:3:5", 15},
		{"laplace3d:2:3:4", 24},
		{"banded:12:2", 12},
		{"randspd:20:4:7", 20},
		{"powerlaw:30:1", 30},
		{"nascg:S:3", 1400},
	}
	for _, s := range specs {
		m, err := GeneratorByName(s.spec)
		if err != nil {
			t.Fatalf("%s: %v", s.spec, err)
		}
		if m.NRows != s.n {
			t.Errorf("%s: size %d, want %d", s.spec, m.NRows, s.n)
		}
	}
	if _, err := GeneratorByName("nonsense:1"); err == nil {
		t.Error("expected error for unknown spec")
	}
	if _, err := GeneratorByName("nascg:Q:1"); err == nil {
		t.Error("expected error for unknown NAS class")
	}
}

// Property: for random COO input, CSR conversion preserves the summed
// entry values and MulVec agrees with a naive triplet multiply.
func TestCOOCSRQuick(t *testing.T) {
	f := func(seed int64, nRaw, nnzRaw uint8) bool {
		n := int(nRaw%20) + 1
		nnz := int(nnzRaw % 60)
		rng := rand.New(rand.NewSource(seed))
		coo := NewCOO(n, n)
		dense := NewDense(n, n)
		for k := 0; k < nnz; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			coo.Add(i, j, v)
			dense.Set(i, j, dense.At(i, j)+v)
		}
		m := coo.ToCSR()
		if m.Validate() != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1, y2 := make([]float64, n), make([]float64, n)
		m.MulVec(x, y1)
		dense.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
