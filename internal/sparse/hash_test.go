package sparse

import (
	"strings"
	"testing"
)

func TestContentHashDeterministic(t *testing.T) {
	a := Laplace2D(8, 8)
	b := Laplace2D(8, 8)
	if ContentHash(a) != ContentHash(b) {
		t.Fatal("identical matrices hash differently")
	}
	if len(ContentHash(a)) != 16 {
		t.Fatalf("hash %q not 16 hex chars", ContentHash(a))
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := Laplace2D(8, 8)
	h := ContentHash(base)

	other := Laplace2D(8, 9)
	if ContentHash(other) == h {
		t.Fatal("different shape, same hash")
	}

	perturbed := Laplace2D(8, 8)
	perturbed.Val[3] += 1e-12
	if ContentHash(perturbed) == h {
		t.Fatal("perturbed value, same hash")
	}
}

// TestContentHashCanonical: the digest must see through incidental
// representation differences — entry order and duplicates are erased
// by CSR canonicalization, so a shuffled/duplicated COO assembly of
// the same matrix hashes identically.
func TestContentHashCanonical(t *testing.T) {
	c1 := NewCOO(3, 3)
	c1.Add(0, 0, 2)
	c1.Add(1, 1, 2)
	c1.Add(2, 2, 2)
	c1.Add(0, 1, -1)
	c1.Add(1, 0, -1)

	c2 := NewCOO(3, 3)
	c2.Add(1, 0, -1)
	c2.Add(2, 2, 2)
	c2.Add(0, 1, -0.5)
	c2.Add(0, 1, -0.5) // duplicate accumulates to -1
	c2.Add(1, 1, 2)
	c2.Add(0, 0, 2)

	if ContentHash(c1.ToCSR()) != ContentHash(c2.ToCSR()) {
		t.Fatal("canonically equal matrices hash differently")
	}
}

func TestContentHashNegativeZero(t *testing.T) {
	a := NewCOO(1, 1)
	a.Add(0, 0, 0.0)
	b := NewCOO(1, 1)
	negZero := 0.0
	negZero = -negZero
	b.Add(0, 0, negZero)
	if ContentHash(a.ToCSR()) != ContentHash(b.ToCSR()) {
		t.Fatal("-0 and +0 hash differently")
	}
}

func TestHashGeneratorSpec(t *testing.T) {
	if HashGeneratorSpec("laplace2d:16:16") != HashGeneratorSpec("  LAPLACE2D:16:16 ") {
		t.Fatal("generator hash not canonicalized")
	}
	if HashGeneratorSpec("laplace2d:16:16") == HashGeneratorSpec("laplace2d:16:17") {
		t.Fatal("different parameters, same hash")
	}
	// The generator namespace must not collide with uploaded-matrix
	// digests even for the same matrix content.
	A := Laplace2D(16, 16)
	if HashGeneratorSpec("laplace2d:16:16") == ContentHash(A) {
		t.Fatal("generator and content namespaces collide")
	}
}

func TestContentHashMatrixMarketRoundTrip(t *testing.T) {
	doc := `%%MatrixMarket matrix coordinate real general
3 3 5
1 1 2.0
2 2 2.0
3 3 2.0
1 2 -1.0
2 1 -1.0
`
	A, err := ReadMatrixMarket(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Reordered entries, same matrix.
	doc2 := `%%MatrixMarket matrix coordinate real general
3 3 5
2 1 -1.0
1 2 -1.0
3 3 2.0
2 2 2.0
1 1 2.0
`
	B, err := ReadMatrixMarket(strings.NewReader(doc2))
	if err != nil {
		t.Fatal(err)
	}
	if ContentHash(A) != ContentHash(B) {
		t.Fatal("reordered Matrix Market uploads hash differently")
	}
}
