// Content hashing: a canonical digest of a sparse matrix's content,
// the key under which the serving tier caches prepared plans and the
// cluster router shards traffic. Two requests for the same matrix —
// whether uploaded twice, or re-generated from the same generator
// parameters — must map to the same shard and the same cached plan, so
// the hash covers exactly the mathematical content (dimensions,
// structure, values) and nothing incidental (upload formatting,
// duplicate-entry order — both are erased by the CSR canonicalization
// in COO.ToCSR / ReadMatrixMarket).
package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strings"
)

// ContentHash returns the canonical content digest of a CSR matrix:
// SHA-256 over the dimensions, row pointers, sorted column indices and
// the IEEE-754 bits of the values. CSR construction sorts each row and
// accumulates duplicates, so any two representations of the same
// matrix digest identically. The result is 16 hex bytes (64 bits) —
// plenty for cache keys and ring placement.
func ContentHash(m *CSR) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte("csr\x00"))
	writeInt(m.NRows)
	writeInt(m.NCols)
	for _, v := range m.RowPtr {
		writeInt(v)
	}
	for _, v := range m.Col {
		writeInt(v)
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], floatBits(v))
		h.Write(buf[:])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// HashGeneratorSpec digests a generator spec string ("laplace2d:32:32")
// by its parameters: specs are already canonical parameter lists, so
// the digest is over the trimmed, lowercased text in a separate
// namespace from uploaded-matrix digests. The matrix need not be
// generated to route or cache-key a generator job.
func HashGeneratorSpec(spec string) string {
	h := sha256.New()
	h.Write([]byte("gen\x00"))
	h.Write([]byte(strings.ToLower(strings.TrimSpace(spec))))
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// floatBits returns the IEEE-754 bit pattern, with -0 folded into +0
// so the digest matches numeric equality for every value CG can
// produce (NaN never survives ReadMatrixMarket or the generators).
func floatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}
