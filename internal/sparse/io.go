package sparse

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteMatrixMarket writes m in the Matrix Market coordinate format
// ("%%MatrixMarket matrix coordinate real general", 1-based indices),
// the lingua franca for the application matrices the paper's
// experiments draw on.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows, m.NCols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Col[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses the coordinate real format written by
// WriteMatrixMarket (general or symmetric; symmetric entries are
// mirrored). Parse errors carry the 1-based line number of the
// offending line. Non-finite values (NaN, ±Inf) and out-of-range
// indices are rejected; duplicate coordinates are accumulated (their
// values sum), which is the Matrix Market convention for assembled
// finite-element matrices.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty matrix market stream")
	}
	lineNo++
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("sparse: line %d: bad header %q", lineNo, header)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[2] != "coordinate" || fields[3] != "real" {
		return nil, fmt.Errorf("sparse: line %d: unsupported matrix market type %q", lineNo, header)
	}
	symmetric := fields[4] == "symmetric"

	// Skip comments, read size line.
	var nrows, ncols, nnz int
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &nrows, &ncols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: line %d: bad size line %q: %w", lineNo, line, err)
		}
		break
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, fmt.Errorf("sparse: line %d: bad dimensions %dx%d", lineNo, nrows, ncols)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("sparse: line %d: negative entry count %d", lineNo, nnz)
	}
	coo := NewCOO(nrows, ncols)
	read := 0
	for read < nnz && sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var i, j int
		var v float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &i, &j, &v); err != nil {
			return nil, fmt.Errorf("sparse: line %d: bad entry %q: %w", lineNo, line, err)
		}
		if i < 1 || i > nrows || j < 1 || j > ncols {
			return nil, fmt.Errorf("sparse: line %d: entry (%d,%d) outside %dx%d", lineNo, i, j, nrows, ncols)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sparse: line %d: non-finite value %g at (%d,%d)", lineNo, v, i, j)
		}
		coo.Add(i-1, j-1, v)
		if symmetric && i != j {
			coo.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}
