package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteMatrixMarket writes m in the Matrix Market coordinate format
// ("%%MatrixMarket matrix coordinate real general", 1-based indices),
// the lingua franca for the application matrices the paper's
// experiments draw on.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows, m.NCols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Col[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses the coordinate real format written by
// WriteMatrixMarket (general or symmetric; symmetric entries are
// mirrored).
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty matrix market stream")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("sparse: bad header %q", header)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[2] != "coordinate" || fields[3] != "real" {
		return nil, fmt.Errorf("sparse: unsupported matrix market type %q", header)
	}
	symmetric := fields[4] == "symmetric"

	// Skip comments, read size line.
	var nrows, ncols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &nrows, &ncols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if nrows <= 0 || ncols <= 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d", nrows, ncols)
	}
	coo := NewCOO(nrows, ncols)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var i, j int
		var v float64
		if _, err := fmt.Sscanf(line, "%d %d %g", &i, &j, &v); err != nil {
			return nil, fmt.Errorf("sparse: bad entry %q: %w", line, err)
		}
		if i < 1 || i > nrows || j < 1 || j > ncols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", i, j, nrows, ncols)
		}
		coo.Add(i-1, j-1, v)
		if symmetric && i != j {
			coo.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}
