package sparse

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RandomSPD(25, 4, 13)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NRows != m.NRows || back.NCols != m.NCols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz %d", back.NRows, back.NCols, back.NNZ())
	}
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			if math.Abs(back.At(i, j)-m.Val[k]) > 1e-15 {
				t.Fatalf("entry (%d,%d) changed: %g vs %g", i, j, back.At(i, j), m.Val[k])
			}
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle of a 3x3 matrix
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Errorf("symmetric mirror missing: %g %g", m.At(0, 1), m.At(1, 0))
	}
	if !m.IsSymmetric(0) {
		t.Error("expected symmetric read")
	}
	if m.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", m.NNZ())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // too few entries
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n-1 2 0\n",         // bad dims
		"%%MatrixMarket matrix coordinate real general\nbogus\n",          // bad size line
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n", // bad entry
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMatrixMarketCommentsSkipped(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% comment line
% another

2 2 1
1 2 3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 3.5 {
		t.Errorf("At(0,1) = %g", m.At(0, 1))
	}
}

// FuzzReadMatrixMarket checks the reader never panics on arbitrary
// input and that round-tripping accepted matrices is stable.
func FuzzReadMatrixMarket(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMatrixMarket(&buf, Laplace1D(5))
	f.Add(buf.String())
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 0 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadMatrixMarket(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteMatrixMarket(&out, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadMatrixMarket(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.NRows != m.NRows {
			t.Fatalf("round trip changed shape")
		}
	})
}

// TestMatrixMarketRejectsNonFinite: NaN and ±Inf entries are refused
// with the offending line number.
func TestMatrixMarketRejectsNonFinite(t *testing.T) {
	cases := map[string]string{
		"nan":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n",
		"inf":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 Inf\n",
		"-inf": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 -Inf\n",
	}
	wantLine := map[string]string{"nan": "line 3", "inf": "line 3", "-inf": "line 4"}
	for name, in := range cases {
		_, err := ReadMatrixMarket(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") || !strings.Contains(err.Error(), wantLine[name]) {
			t.Errorf("%s: error %q lacks non-finite/%s", name, err, wantLine[name])
		}
	}
}

// TestMatrixMarketErrorLineNumbers: malformed and out-of-range entries
// name the line they sit on, comments and blanks included in the count.
func TestMatrixMarketErrorLineNumbers(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n" +
		"% comment\n" +
		"\n" +
		"2 2 2\n" +
		"1 1 1.0\n" +
		"9 9 1.0\n" // line 6, out of range
	_, err := ReadMatrixMarket(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Errorf("out-of-range error lacks line 6: %v", err)
	}

	in2 := "%%MatrixMarket matrix coordinate real general\n" +
		"2 2 1\n" +
		"1 x 1.0\n" // line 3, malformed
	_, err = ReadMatrixMarket(strings.NewReader(in2))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("malformed-entry error lacks line 3: %v", err)
	}

	_, err = ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real general\n2 2 -1\n"))
	if err == nil || !strings.Contains(err.Error(), "negative entry count") {
		t.Errorf("negative nnz not rejected: %v", err)
	}
}

// TestMatrixMarketDuplicatesAccumulate: repeated coordinates sum, the
// Matrix Market convention for assembled finite-element matrices.
func TestMatrixMarketDuplicatesAccumulate(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 4
1 1 1.5
1 1 2.5
2 2 1.0
1 1 -1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3.0 {
		t.Errorf("duplicates not summed: At(0,0) = %g, want 3", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 after accumulation", m.NNZ())
	}
}
