package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// Laplace1D returns the n x n tridiagonal [-1 2 -1] matrix, the 1-D
// Poisson operator. It is symmetric positive-definite.
func Laplace1D(n int) *CSR {
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// Laplace2D returns the 5-point finite-difference Laplacian on an
// nx x ny grid (the computational-fluid-dynamics style matrix the
// paper's introduction motivates). Size is nx*ny; SPD.
func Laplace2D(nx, ny int) *CSR {
	n := nx * ny
	coo := NewCOO(n, n)
	idx := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			g := idx(i, j)
			coo.Add(g, g, 4)
			if i > 0 {
				coo.Add(g, idx(i-1, j), -1)
			}
			if i < nx-1 {
				coo.Add(g, idx(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(g, idx(i, j-1), -1)
			}
			if j < ny-1 {
				coo.Add(g, idx(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// Laplace3D returns the 7-point Laplacian on an nx x ny x nz grid; SPD.
func Laplace3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	coo := NewCOO(n, n)
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				g := idx(i, j, k)
				coo.Add(g, g, 6)
				if i > 0 {
					coo.Add(g, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					coo.Add(g, idx(i+1, j, k), -1)
				}
				if j > 0 {
					coo.Add(g, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					coo.Add(g, idx(i, j+1, k), -1)
				}
				if k > 0 {
					coo.Add(g, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					coo.Add(g, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// Banded returns a symmetric banded matrix with the given half
// bandwidth: entries -1 within the band, diagonal large enough to be
// strictly diagonally dominant (hence SPD). Rows have approximately
// equal nonzero counts — the "regular (uniform)" case of §5.2.1.
func Banded(n, halfBand int) *CSR {
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		off := 0
		for d := 1; d <= halfBand; d++ {
			if i-d >= 0 {
				coo.Add(i, i-d, -1)
				off++
			}
			if i+d < n {
				coo.Add(i, i+d, -1)
				off++
			}
		}
		coo.Add(i, i, float64(off)+1)
	}
	return coo.ToCSR()
}

// RandomSPD returns an n x n symmetric, strictly diagonally dominant
// (hence positive-definite) matrix with about nnzPerRow off-diagonal
// entries per row, deterministically from seed.
func RandomSPD(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	absRowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for t := 0; t < nnzPerRow/2+1; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			// Add symmetrically; duplicates are summed by ToCSR.
			coo.Add(i, j, v)
			coo.Add(j, i, v)
			absRowSum[i] += math.Abs(v)
			absRowSum[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, absRowSum[i]+1+rng.Float64())
	}
	m := coo.ToCSR()
	// Duplicate summation can only shrink |offdiag| sums, so dominance
	// holds; assert symmetry in debug spirit.
	if !m.IsSymmetric(1e-12) {
		panic("sparse: RandomSPD produced a non-symmetric matrix")
	}
	return m
}

// PowerLaw returns an n x n symmetric SPD matrix whose row densities
// follow a truncated power law: a few rows are very dense ("some grid
// points may have many neighbours, while others have very few",
// §5.2.2). alpha > 0 controls skew (larger = more skewed); maxDeg caps
// the dense rows.
func PowerLaw(n int, alpha float64, maxDeg int, seed int64) *CSR {
	if maxDeg >= n {
		maxDeg = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	absRowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		// Inverse-CDF sample of a power-law degree in [1, maxDeg].
		u := rng.Float64()
		deg := int(math.Pow(u, -1/alpha))
		if deg < 1 {
			deg = 1
		}
		if deg > maxDeg {
			deg = maxDeg
		}
		for t := 0; t < deg; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			coo.Add(i, j, v)
			coo.Add(j, i, v)
			absRowSum[i] += math.Abs(v)
			absRowSum[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, absRowSum[i]+1)
	}
	return coo.ToCSR()
}

// PowerLawClustered is PowerLaw with the dense rows clustered at the
// front of the index space (descending harmonic-ish degrees) instead of
// scattered randomly. This is the §5.2.2 case of structure that is
// "identifiable to a human but not to a compiler": a plain BLOCK
// distribution hands the first processor almost all the work, while an
// atom-aware balanced partitioner fixes it.
func PowerLawClustered(n, maxDeg int, seed int64) *CSR {
	if maxDeg >= n {
		maxDeg = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	absRowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		deg := maxDeg / (1 + i/8)
		if deg < 1 {
			deg = 1
		}
		for t := 0; t < deg; t++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			coo.Add(i, j, v)
			coo.Add(j, i, v)
			absRowSum[i] += math.Abs(v)
			absRowSum[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, absRowSum[i]+1)
	}
	return coo.ToCSR()
}

// DiagWithEigenvalues returns a diagonal matrix whose spectrum is
// exactly eigs (repeats allowed). CG on such a system converges in at
// most (#distinct eigenvalues) iterations — the §2 convergence claim
// experiment E9 checks.
func DiagWithEigenvalues(eigs []float64) *CSR {
	n := len(eigs)
	coo := NewCOO(n, n)
	for i, e := range eigs {
		coo.Add(i, i, e)
	}
	return coo.ToCSR()
}

// NASCGClass describes a NAS-CG-style problem size. Substitution note
// (see DESIGN.md): the official NAS `makea` builds A as a weighted sum
// of random sparse outer products; we reproduce its *shape* — an
// irregular random symmetric pattern with `Nonzer` entries per row and
// a diagonal shift — which exercises the identical CG code path.
type NASCGClass struct {
	Name   string
	N      int
	Nonzer int
	Shift  float64
	NIter  int
}

// Standard NAS-CG classes (S and W are laptop-scale).
var (
	NASClassS = NASCGClass{Name: "S", N: 1400, Nonzer: 7, Shift: 10, NIter: 15}
	NASClassW = NASCGClass{Name: "W", N: 7000, Nonzer: 8, Shift: 12, NIter: 15}
	NASClassA = NASCGClass{Name: "A", N: 14000, Nonzer: 11, Shift: 20, NIter: 15}
)

// NASCGMatrix generates the class's matrix: random symmetric pattern
// with cls.Nonzer off-diagonals per row, values in (0,1], plus
// (shift + rowsum) on the diagonal so the matrix is SPD with smallest
// eigenvalues near the shift.
func NASCGMatrix(cls NASCGClass, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(cls.N, cls.N)
	absRowSum := make([]float64, cls.N)
	for i := 0; i < cls.N; i++ {
		for t := 0; t < cls.Nonzer; t++ {
			j := rng.Intn(cls.N)
			if j == i {
				continue
			}
			v := rng.Float64()
			coo.Add(i, j, v)
			coo.Add(j, i, v)
			absRowSum[i] += v
			absRowSum[j] += v
		}
	}
	for i := 0; i < cls.N; i++ {
		coo.Add(i, i, absRowSum[i]+cls.Shift)
	}
	return coo.ToCSR()
}

// Figure1Matrix returns the 6x6 sparse matrix used in Figure 1 of the
// paper to illustrate CSC storage (0-based here).
//
//	a11 a12  0   0  a15  0
//	a21 a22  0  a24  0  a26
//	a31  0  a33  0   0   0
//	 0  a42  0  a44  0   0
//	a51  0   0   0  a55  0
//	 0  a62  0   0   0  a66
//
// The numeric values encode their 1-based position (a_ij = 10i + j) so
// tests can recognise entries.
func Figure1Matrix() *CSR {
	coo := NewCOO(6, 6)
	entries := [][2]int{
		{1, 1}, {1, 2}, {1, 5},
		{2, 1}, {2, 2}, {2, 4}, {2, 6},
		{3, 1}, {3, 3},
		{4, 2}, {4, 4},
		{5, 1}, {5, 5},
		{6, 2}, {6, 6},
	}
	for _, e := range entries {
		coo.Add(e[0]-1, e[1]-1, float64(10*e[0]+e[1]))
	}
	return coo.ToCSR()
}

// RandomVector returns an n-vector of standard normal entries,
// deterministically from seed.
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// Ones returns the all-ones n-vector.
func Ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// GeneratorByName builds one of the named test matrices; used by the
// CLIs. Supported: laplace1d:n, laplace2d:nx:ny, laplace3d:nx:ny:nz,
// banded:n:halfband, randspd:n:nnzrow:seed, powerlaw:n:seed,
// nascg:S|W|A:seed.
func GeneratorByName(spec string) (*CSR, error) {
	var (
		a, b, c int
		name    string
	)
	if n, _ := fmt.Sscanf(spec, "laplace1d:%d", &a); n == 1 {
		return Laplace1D(a), nil
	}
	if n, _ := fmt.Sscanf(spec, "laplace2d:%d:%d", &a, &b); n == 2 {
		return Laplace2D(a, b), nil
	}
	if n, _ := fmt.Sscanf(spec, "laplace3d:%d:%d:%d", &a, &b, &c); n == 3 {
		return Laplace3D(a, b, c), nil
	}
	if n, _ := fmt.Sscanf(spec, "banded:%d:%d", &a, &b); n == 2 {
		return Banded(a, b), nil
	}
	if n, _ := fmt.Sscanf(spec, "randspd:%d:%d:%d", &a, &b, &c); n == 3 {
		return RandomSPD(a, b, int64(c)), nil
	}
	if n, _ := fmt.Sscanf(spec, "powerlawc:%d:%d", &a, &b); n == 2 {
		return PowerLawClustered(a, a/8, int64(b)), nil
	}
	if n, _ := fmt.Sscanf(spec, "powerlaw:%d:%d", &a, &b); n == 2 {
		return PowerLaw(a, 1.2, a/4, int64(b)), nil
	}
	if n, _ := fmt.Sscanf(spec, "nascg:%1s:%d", &name, &a); n == 2 {
		var cls NASCGClass
		switch name {
		case "S":
			cls = NASClassS
		case "W":
			cls = NASClassW
		case "A":
			cls = NASClassA
		default:
			return nil, fmt.Errorf("sparse: unknown NAS class %q", name)
		}
		return NASCGMatrix(cls, int64(a)), nil
	}
	return nil, fmt.Errorf("sparse: unknown matrix spec %q", spec)
}
