// The s-step execution path: cost-model-driven selection of the
// communication-avoiding blocking factor, and the entry points that
// run core.CGSStep under a directive plan.
//
// The model prices one CG iteration at blocking factor s with the
// paper's §4 machine constants (topology.CostParams): plain CG pays
// two one-word allreduce rounds and one halo exchange per iteration,
// while the s-step variant pays one m(m+1)/2-word Gram allreduce
// (m = 2s+1) and one widened two-vector halo per s iterations, plus
// the extra overlap flops of the matrix-powers closure and the basis
// bookkeeping. The flop side comes from spmv.PowersStats — the exact
// per-rank reachability closure the kernel itself sweeps — so the
// selector and the executor price the same work.
package hpfexec

import (
	"fmt"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpf"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// MaxSStep bounds the blocking factor any entry point accepts. Beyond
// this the monomial basis is numerically useless and the Gram round
// ((2s+1)(2s+2)/2 words) stops being small.
const MaxSStep = 16

// SStepCandidates are the blocking factors the auto-selector prices.
// 1 is plain CG; powers of two up to 8 cover the regime where the
// monomial basis stays stable under the diagonal Gram scaling.
var SStepCandidates = []int{1, 2, 4, 8}

// SStepModel is the modeled per-iteration cost of running CG at one
// blocking factor on a concrete machine/matrix/distribution triple.
type SStepModel struct {
	S int
	// TimePerIter is the modeled makespan of one CG iteration: the
	// s-step block cost divided by s.
	TimePerIter float64
	// RoundsPerIter is the allreduce rounds per iteration (2 for plain
	// CG, 1/s for the batched Gram recovery).
	RoundsPerIter float64
	// BlockEntries is the max per-rank matrix entries one basis block
	// sweeps (spmv.PowersStats); Ghosts the widened halo width.
	BlockEntries int
	Ghosts       int
}

// ModelSStep prices one CG iteration at blocking factor s >= 1 for
// matrix A distributed by d over the machine's np ranks, using the
// machine's topology and cost constants.
func ModelSStep(m *comm.Machine, A *sparse.CSR, d dist.Contiguous, s int) SStepModel {
	np := m.NP()
	topo, c := m.Topology(), m.Cost()
	nloc := 0
	for r := 0; r < np; r++ {
		if cnt := d.Count(r); cnt > nloc {
			nloc = cnt
		}
	}
	entries, ghosts := spmv.PowersStats(A, d, np, s)
	mod := SStepModel{S: s, BlockEntries: entries, Ghosts: ghosts}
	if s <= 1 {
		// Plain CG: per iteration, one mat-vec (halo g1), two scalar
		// allreduces, and the 5 length-n vector ops of Figure 2.
		mod.RoundsPerIter = 2
		flops := 2*float64(entries) + 10*float64(nloc)
		mod.TimePerIter = 2*topology.AllreduceTime(topo, c, np, 1) +
			haloTime(c, ghosts, 1) +
			c.TFlop*flops
		return mod
	}
	mcols := 2*s + 1
	nG := mcols * (mcols + 1) / 2
	mod.RoundsPerIter = 1 / float64(s)
	// Per block: the widened two-seed halo, the basis sweep over the
	// closure, the local Gram triangle, one nG-word allreduce, three
	// recovery gemvs, and s inner steps on m-length coefficients.
	blockFlops := 2*float64(entries) + // matrix-powers sweep
		2*float64(nloc*nG) + // Gram triangle partials
		6*float64(mcols*nloc) + // recover x, r, p
		float64(s)*(4*float64(mcols*mcols)+12*float64(mcols)) // quads + coeff updates
	blockTime := topology.AllreduceTime(topo, c, np, nG) +
		haloTime(c, ghosts, 2) +
		c.TFlop*blockFlops
	mod.TimePerIter = blockTime / float64(s)
	return mod
}

// haloTime prices one halo exchange of k vectors' ghost values: a
// single nearest-neighbour message of k*8*ghosts bytes (ExchangeBlock
// packs the vectors into one message per neighbour pair).
func haloTime(c topology.CostParams, ghosts, k int) float64 {
	if ghosts == 0 {
		return 0
	}
	return c.PtToPtTime(1, k*8*ghosts)
}

// ChooseSStep prices every candidate blocking factor and returns the
// cheapest (smallest s wins ties, so the selector never buys stability
// risk for free). The full frontier comes back for reporting.
func ChooseSStep(m *comm.Machine, A *sparse.CSR, d dist.Contiguous) (int, []SStepModel) {
	models := make([]SStepModel, 0, len(SStepCandidates))
	best := 1
	var bestT float64
	for _, s := range SStepCandidates {
		mod := ModelSStep(m, A, d, s)
		models = append(models, mod)
		if len(models) == 1 || mod.TimePerIter < bestT {
			best, bestT = s, mod.TimePerIter
		}
	}
	return best, models
}

// resolveSStep turns a requested blocking factor (0 = auto) into the
// concrete s the prepared plan will run, against the already-analyzed
// strategy. The column-block CSC scenarios have no matrix-powers form,
// so auto degrades to plain CG there and a fixed s >= 2 is an error.
func resolveSStep(m *comm.Machine, pc *preparedCG, s int) (int, error) {
	if s < 0 || s > MaxSStep {
		return 0, fmt.Errorf("hpfexec: s-step factor %d out of range [0, %d]", s, MaxSStep)
	}
	if pc.format != "csr" {
		if s >= 2 {
			return 0, fmt.Errorf("hpfexec: s-step CG needs the row-block CSR scenario, plan declares %s", pc.format)
		}
		return 1, nil
	}
	if s == 0 {
		chosen, _ := ChooseSStep(m, pc.A, pc.d)
		return chosen, nil
	}
	return s, nil
}

// PrepareSStep is Prepare with an s-step blocking factor: s = 0 lets
// the cost model choose per the machine's topology constants, s = 1
// forces plain CG, s >= 2 fixes the factor. The widened matrix-powers
// inspector schedule is built on the first batch run and cached in the
// handle like every other operator, so registry hits skip the s-level
// closure inspection too.
func PrepareSStep(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, s int) (*Prepared, error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, err
	}
	if s, err = resolveSStep(m, pc, s); err != nil {
		return nil, err
	}
	pc.sstep = s
	pc.strategy.SStep = s
	return &Prepared{m: m, A: A, pc: pc, strategy: pc.strategy, ops: make([]spmv.Operator, m.NP())}, nil
}

// SStep returns the blocking factor the handle's solves run with
// (1 = plain CG; 0 on handles made by plain Prepare).
func (pr *Prepared) SStep() int { return pr.pc.sstep }

// SolveCGSStep executes the directive-driven CG with the s-step
// communication-avoiding solver (core.CGSStep): s = 0 auto-selects
// from the cost model, s = 1 is bit-identical to SolveCG, s >= 2 runs
// s iterations per allreduce round with the stability guard armed.
func SolveCGSStep(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, s int) (*Result, error) {
	fn, finish, err := prepareCGSStep(m, plan, A, b, opt, s)
	if err != nil {
		return nil, err
	}
	run, err := m.RunChecked(fn)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// SolveCGSStepTimeout is SolveCGSStep under the same deadlock watchdog
// as SolveCGTimeout.
func SolveCGSStepTimeout(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, s int, d time.Duration) (*Result, error) {
	fn, finish, err := prepareCGSStep(m, plan, A, b, opt, s)
	if err != nil {
		return nil, err
	}
	run, err := m.RunTimeout(fn, d)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// prepareCGSStep resolves the blocking factor and builds the SPMD body
// running core.CGSStep under it.
func prepareCGSStep(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, s int) (func(p *comm.Proc), func(run comm.RunStats) (*Result, error), error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, nil, err
	}
	if s, err = resolveSStep(m, pc, s); err != nil {
		return nil, nil, err
	}
	pc.sstep = s
	pc.strategy.SStep = s
	return prepareCGFrom(m, pc, b, opt,
		func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector) (core.Stats, error) {
			return core.CGSStep(p, op, bv, xv, opt, pc.sstep)
		})
}
