package hpfexec

import (
	"math"
	"strings"
	"testing"

	"hpfcg/internal/core"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// The s-step entry point at s=1 must be SolveCG in every bit: same
// solver (CGSStep delegates to CG), same operator, same plan analysis.
func TestSolveCGSStepS1MatchesSolveCG(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	b := sparse.RandomVector(A.NRows, 4)
	np := 4
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	opt := core.Options{Tol: 1e-10}
	ref, err := SolveCG(machine(np), plan, A, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveCGSStep(machine(np), plan, A, b, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if got.X[i] != ref.X[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, got.X[i], ref.X[i])
		}
	}
	if got.Stats.Iterations != ref.Stats.Iterations {
		t.Fatalf("iterations %d vs %d", got.Stats.Iterations, ref.Stats.Iterations)
	}
	if got.Stats.SStep != 1 || got.Strategy.SStep != 1 {
		t.Fatalf("s=1 run reported stats s=%d strategy s=%d", got.Stats.SStep, got.Strategy.SStep)
	}
}

// Fixed s >= 2 must cut the allreduce rounds to ~1/s per iteration on
// both the plain-BLOCK and the partitioner-balanced layouts (the
// powers closure runs on irregular contiguous distributions too).
func TestSolveCGSStepReducesRounds(t *testing.T) {
	A := sparse.Banded(256, 4)
	b := sparse.RandomVector(A.NRows, 5)
	np := 4
	for _, layout := range []string{"csr", "balanced"} {
		plan, err := PlanForLayout(layout, np, A.NRows, A.NNZ())
		if err != nil {
			t.Fatal(err)
		}
		const s = 4
		res, err := SolveCGSStep(machine(np), plan, A, b, core.Options{Tol: 1e-10}, s)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if !st.Converged {
			t.Fatalf("%s: did not converge", layout)
		}
		if rr := relResidual(A, res.X, b); rr > 1e-8 {
			t.Fatalf("%s: relative residual %g", layout, rr)
		}
		if st.SStep != s {
			t.Fatalf("%s: stats report s=%d, want %d", layout, st.SStep, s)
		}
		if st.Replacements != 0 {
			t.Fatalf("%s: stability guard tripped (%d replacements) on a well-conditioned band", layout, st.Replacements)
		}
		want := 2 + (st.Iterations+s-1)/s
		if st.Reductions != want {
			t.Fatalf("%s: %d reductions for %d iterations, want %d", layout, st.Reductions, st.Iterations, want)
		}
		if !strings.Contains(res.Strategy.String(), "s-step(s=4)") {
			t.Fatalf("%s: strategy string %q lacks the s-step marker", layout, res.Strategy)
		}
	}
}

// The CSC scenarios have no matrix-powers form: a fixed s >= 2 is a
// plan error, and auto-selection degrades to plain CG.
func TestSolveCGSStepCSCFallsBackToPlain(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.RandomVector(A.NRows, 6)
	np := 2
	plan := bindPlan(t, cscPlanMerge, A.NRows, A.NNZ(), np)
	if _, err := SolveCGSStep(machine(np), plan, A, b, core.Options{}, 4); err == nil {
		t.Fatal("fixed s=4 on a CSC plan did not error")
	}
	res, err := SolveCGSStep(machine(np), plan, A, b, core.Options{Tol: 1e-10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.SStep != 1 || res.Stats.SStep != 1 {
		t.Fatalf("auto on CSC resolved to s=%d, want 1", res.Strategy.SStep)
	}
	if _, err := SolveCGSStep(machine(np), plan, A, b, core.Options{}, MaxSStep+1); err == nil {
		t.Fatal("out-of-range s did not error")
	}
}

// The cost model's structural properties: rounds per iteration are 2
// for plain CG and 1/s for the blocked recovery; on one processor
// (where allreduces are free) the flop overhead makes s=1 optimal;
// at np >= 4 with the default machine constants the latency term
// dominates and the selector must find a win at some s > 1 whose
// modeled time beats plain CG.
func TestSStepCostModelSelection(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	n := A.NRows

	d1 := dist.NewBlock(n, 1)
	s1, models1 := ChooseSStep(machine(1), A, d1)
	if s1 != 1 {
		t.Fatalf("np=1 chose s=%d, want 1 (allreduces are free, overlap flops are not)", s1)
	}
	for _, mod := range models1 {
		wantRounds := 2.0
		if mod.S > 1 {
			wantRounds = 1 / float64(mod.S)
		}
		if math.Abs(mod.RoundsPerIter-wantRounds) > 1e-12 {
			t.Fatalf("s=%d models %g rounds/iter, want %g", mod.S, mod.RoundsPerIter, wantRounds)
		}
	}

	np := 4
	d4 := dist.NewBlock(n, np)
	s4, models4 := ChooseSStep(machine(np), A, d4)
	if s4 <= 1 {
		t.Fatalf("np=%d chose s=%d; latency-dominated regime should pick s>1", np, s4)
	}
	var t1, tBest float64
	for _, mod := range models4 {
		if mod.S == 1 {
			t1 = mod.TimePerIter
		}
		if mod.S == s4 {
			tBest = mod.TimePerIter
		}
	}
	// The chosen s must be the frontier argmin (ties to smaller s).
	for _, mod := range models4 {
		if mod.TimePerIter < tBest || (mod.TimePerIter == tBest && mod.S < s4) {
			t.Fatalf("selector picked s=%d (%.3g) but s=%d models %.3g", s4, tBest, mod.S, mod.TimePerIter)
		}
	}
	if tBest >= t1 {
		t.Fatalf("chosen s=%d models %.3g per iter, no better than plain CG's %.3g", s4, tBest, t1)
	}

	// Widening monotonicity of the priced work: deeper closures sweep
	// more entries and fetch more ghosts on a multi-rank distribution.
	if models4[len(models4)-1].BlockEntries <= models4[0].BlockEntries ||
		models4[len(models4)-1].Ghosts <= models4[0].Ghosts {
		t.Fatalf("model frontier not monotone in closure size: %+v", models4)
	}
}

// Satellite: a registry hit on an s-step Prepared must reuse the
// cached matrix-powers operator — widened inspector schedule included —
// with zero modeled setup and bit-identical solutions.
func TestRegistryWarmSStepHit(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	n := A.NRows
	np := 4
	plan, err := PlanForLayout("csr", np, n, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	const s = 4
	pr, err := PrepareSStep(machine(np), plan, A, s)
	if err != nil {
		t.Fatal(err)
	}
	if pr.SStep() != s {
		t.Fatalf("prepared handle reports s=%d, want %d", pr.SStep(), s)
	}
	reg := NewRegistry(0)
	if _, ok := reg.Put("sstep-plan", pr); !ok {
		t.Fatal("put failed")
	}

	rhs := [][]float64{sparse.RandomVector(n, 9), sparse.RandomVector(n, 10)}
	opts := []core.Options{{Tol: 1e-10}}
	e, ok := reg.Get("sstep-plan")
	if !ok {
		t.Fatal("registry miss on the key just put")
	}
	e.Lock()
	cold, err := e.Prepared().SolveBatch(rhs, opts)
	e.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if cold.SetupModelTime <= 0 {
		t.Fatalf("cold s-step setup model time %g, want > 0 (widened inspector exchange)", cold.SetupModelTime)
	}

	e, ok = reg.Get("sstep-plan")
	if !ok {
		t.Fatal("registry miss on warm lookup")
	}
	if !e.Prepared().Warm() {
		t.Fatal("entry not warm after first batch")
	}
	e.Lock()
	warm, err := e.Prepared().SolveBatch(rhs, opts)
	e.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if warm.SetupModelTime != 0 {
		t.Fatalf("warm s-step setup model time %g, want exactly 0", warm.SetupModelTime)
	}
	for k := range rhs {
		if got, want := warm.Results[k].Stats.SStep, s; got != want {
			t.Fatalf("rhs %d: warm stats report s=%d, want %d", k, got, want)
		}
		st := warm.Results[k].Stats
		if wantRed := 2 + (st.Iterations+s-1)/s; st.Reductions != wantRed {
			t.Fatalf("rhs %d: %d reductions for %d iterations, want %d", k, st.Reductions, st.Iterations, wantRed)
		}
		cx, wx := cold.Results[k].X, warm.Results[k].X
		for i := range cx {
			if cx[i] != wx[i] {
				t.Fatalf("rhs %d: warm x[%d] differs: %v vs %v", k, i, wx[i], cx[i])
			}
		}
		if rr := relResidual(A, wx, rhs[k]); rr > 1e-8 {
			t.Fatalf("rhs %d: relative residual %g", k, rr)
		}
	}
	if st := reg.Stats(); st.Hits != 2 {
		t.Fatalf("registry hits %d, want 2", st.Hits)
	}
}
