// The Prepared-plan registry: a content-addressed, byte-budgeted LRU
// cache of Prepared handles. Batching (batch.go) amortizes setup only
// within one batch window; the registry carries it across windows —
// repeat traffic against a hot matrix skips plan validation, the
// partitioner, the CSC conversion and (via Prepared's warm operator
// cache) the inspector ghost exchange entirely. The serving tier keys
// entries by matrix content hash plus execution shape, so in cluster
// mode the router's content-hash sharding lands a matrix back on the
// node whose registry already holds its plan.
package hpfexec

import (
	"container/list"
	"sync"
)

// DefaultRegistryBudget bounds the registry when the caller passes no
// budget: 256 MiB of estimated plan bytes.
const DefaultRegistryBudget = 256 << 20

// Registry is the plan cache. All methods are safe for concurrent use;
// the Prepared inside an entry is not, so callers run solves under the
// entry's lock (Entry.Lock/Unlock).
type Registry struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = most recently used, values are *Entry
	byKey  map[string]*Entry

	hits      uint64
	misses    uint64
	evictions uint64
}

// Entry is one cached plan. The entry-level mutex serializes batch
// runs on the entry's Prepared (which owns its machine and cached
// operators); eviction never blocks on it — an evicted entry simply
// leaves the index while its current user finishes.
type Entry struct {
	key  string
	pr   *Prepared
	size int64
	elem *list.Element

	mu sync.Mutex
}

// Lock acquires the entry for a batch run.
func (e *Entry) Lock() { e.mu.Lock() }

// Unlock releases the entry.
func (e *Entry) Unlock() { e.mu.Unlock() }

// Prepared returns the cached handle; call under Lock.
func (e *Entry) Prepared() *Prepared { return e.pr }

// Key returns the entry's cache key.
func (e *Entry) Key() string { return e.key }

// NewRegistry builds a registry with the given byte budget
// (<=0 selects DefaultRegistryBudget).
func NewRegistry(budgetBytes int64) *Registry {
	if budgetBytes <= 0 {
		budgetBytes = DefaultRegistryBudget
	}
	return &Registry{
		budget: budgetBytes,
		lru:    list.New(),
		byKey:  map[string]*Entry{},
	}
}

// Get looks up a cached plan, counting a hit or miss and refreshing
// recency on hit.
func (r *Registry) Get(key string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byKey[key]
	if !ok {
		r.misses++
		return nil, false
	}
	r.hits++
	r.lru.MoveToFront(e.elem)
	return e, true
}

// Put inserts a freshly prepared plan, evicting least-recently-used
// entries until the budget holds. A plan larger than the whole budget
// is not cached (returns nil, false) — the caller runs it uncached.
// If the key is already present (two workers missed concurrently and
// both prepared), the existing entry wins and the new plan is dropped.
func (r *Registry) Put(key string, pr *Prepared) (*Entry, bool) {
	size := pr.MemoryBytes()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		r.lru.MoveToFront(e.elem)
		return e, true
	}
	if size > r.budget {
		return nil, false
	}
	for r.bytes+size > r.budget && r.lru.Len() > 0 {
		back := r.lru.Back()
		victim := back.Value.(*Entry)
		r.lru.Remove(back)
		delete(r.byKey, victim.key)
		r.bytes -= victim.size
		r.evictions++
	}
	e := &Entry{key: key, pr: pr, size: size}
	e.elem = r.lru.PushFront(e)
	r.byKey[key] = e
	r.bytes += size
	return e, true
}

// RegistryStats is a point-in-time counter snapshot for /metrics.
type RegistryStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
	Budget    int64
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
		Entries:   r.lru.Len(),
		Bytes:     r.bytes,
		Budget:    r.budget,
	}
}
