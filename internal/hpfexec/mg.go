// The HPCG execution path: directive-free prepared handles for the
// multigrid-preconditioned stencil solve. Where Prepare captures a
// matrix's RHS-independent analysis, PrepareMG captures a stencil
// problem's — the level hierarchy with its halo and transfer
// schedules is built collectively on the first batch run and cached
// in the handle, so a warm registry hit skips the coarse-grid setup
// entirely and pays SetupModelTime of exactly zero, the same
// semantics the CG plan cache established.
package hpfexec

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/grid"
	"hpfcg/internal/mg"
)

// PrepareMG validates the HPCG spec against the machine and fixes the
// execution strategy, returning the handle SolveHPCGBatch runs from.
// The requested hierarchy depth clamps to what the geometry supports;
// Strategy reports the clamped shape.
func PrepareMG(m *comm.Machine, spec mg.Spec) (*Prepared, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fine, err := spec.Fine(m.NP())
	if err != nil {
		return nil, err
	}
	depth := grid.ClampLevels(fine, spec.Levels)
	strategy := Strategy{
		Scenario: "hpcg 27-pt stencil",
		Mode:     fmt.Sprintf("mg-vcycle(levels=%d,smooths=%d)", depth, spec.Smooths),
	}
	return &Prepared{
		m:        m,
		mgSpec:   &spec,
		mgLevels: depth,
		strategy: strategy,
		mgProbs:  make([]*mg.Problem, m.NP()),
	}, nil
}

// MG returns the handle's HPCG spec, or nil for matrix handles.
func (pr *Prepared) MG() *mg.Spec { return pr.mgSpec }

// MGLevels returns the clamped hierarchy depth of an MG handle
// (0 for matrix handles).
func (pr *Prepared) MGLevels() int { return pr.mgLevels }

// SolveHPCG prepares and solves one HPCG-style system: V-cycle
// multigrid-preconditioned CG on the 27-point stencil sized by spec.
func SolveHPCG(m *comm.Machine, spec mg.Spec, b []float64, opt core.Options) (*Result, error) {
	pr, err := PrepareMG(m, spec)
	if err != nil {
		return nil, err
	}
	out, err := pr.SolveHPCGBatch([][]float64{b}, []core.Options{opt})
	if err != nil {
		return nil, err
	}
	return out.Results[0], nil
}

// SolveHPCGBatch solves the prepared stencil problem for every
// right-hand side in one SPMD run, exactly like SolveBatch does for
// matrix handles: cold runs build the level hierarchy (collective
// inspector exchanges per level) and cache the per-rank problems in
// the handle; warm runs rebind the cached hierarchy into the new run,
// so modeled setup is zero. Each RHS runs core.PCG under the V-cycle
// preconditioner with one pooled workspace per rank, bit-identical
// across repeat calls.
func (pr *Prepared) SolveHPCGBatch(rhs [][]float64, opts []core.Options) (*BatchResult, error) {
	if pr.mgSpec == nil {
		return nil, fmt.Errorf("hpfexec: SolveHPCGBatch on a matrix handle (use SolveBatch)")
	}
	if len(rhs) == 0 {
		return nil, fmt.Errorf("hpfexec: empty batch")
	}
	n := pr.N()
	for k, b := range rhs {
		if len(b) != n {
			return nil, fmt.Errorf("hpfexec: rhs %d length %d != %d", k, len(b), n)
		}
	}
	if len(opts) != 1 && len(opts) != len(rhs) {
		return nil, fmt.Errorf("hpfexec: got %d option sets for %d right-hand sides", len(opts), len(rhs))
	}
	optFor := func(k int) core.Options {
		if len(opts) == 1 {
			return opts[0]
		}
		return opts[k]
	}

	np := pr.m.NP()
	out := &BatchResult{
		Results:        make([]*Result, len(rhs)),
		SolveModelTime: make([]float64, len(rhs)),
	}
	marks := make([][]float64, np)
	for r := range marks {
		marks[r] = make([]float64, len(rhs)+1)
	}
	stats := make([]core.Stats, len(rhs))
	xs := make([][]float64, len(rhs))
	var solveErr error

	warm := pr.warm
	run, err := pr.m.RunChecked(func(p *comm.Proc) {
		var pb *mg.Problem
		if warm {
			// Warm start: the cached hierarchy rebinds its schedules to
			// this run's Proc — no level setup, no inspector exchange,
			// modeled setup is zero.
			pb = pr.mgProbs[p.Rank()]
			pb.Rebind(p)
		} else {
			var err error
			pb, err = mg.NewProblem(p, *pr.mgSpec)
			if err != nil {
				// Deterministic in (spec, np), so every rank fails
				// identically and control flow stays aligned.
				if p.Rank() == 0 {
					solveErr = err
				}
				return
			}
			pr.mgProbs[p.Rank()] = pb
		}
		op, M := pb.Operator(), pb.Precond()
		bv := darray.New(p, pb.Dist())
		xv := darray.New(p, pb.Dist())
		work := core.NewWorkspace()
		marks[p.Rank()][0] = p.Clock()
		for k := range rhs {
			b := rhs[k]
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv.Fill(0)
			opt := optFor(k)
			opt.Work = work
			st, err := core.PCG(p, op, M, bv, xv, opt)
			if err != nil {
				if p.Rank() == 0 {
					solveErr = fmt.Errorf("hpfexec: batch rhs %d: %w", k, err)
				}
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				xs[k] = full
				stats[k] = st
			}
			marks[p.Rank()][k+1] = p.Clock()
		}
	})
	if err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	pr.warm = true

	maxAt := func(j int) float64 {
		m := 0.0
		for r := 0; r < np; r++ {
			if marks[r][j] > m {
				m = marks[r][j]
			}
		}
		return m
	}
	out.SetupModelTime = maxAt(0)
	prev := out.SetupModelTime
	for k := range rhs {
		end := maxAt(k + 1)
		out.SolveModelTime[k] = end - prev
		prev = end
	}
	out.Run = run
	for k := range rhs {
		out.Results[k] = &Result{X: xs[k], Stats: stats[k], Run: run, Strategy: pr.strategy}
	}
	return out, nil
}
