package hpfexec

import (
	"strings"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/mfree"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// TestSolveCGPipelinedConverges: the directive-driven pipelined entry
// point converges on the row-block CSR scenario and on the
// partitioner-balanced layout, reports the pipelined strategy, and —
// on a clean solve — pays exactly one allreduce round per iteration
// plus the setup/detection/confirmation rounds.
func TestSolveCGPipelinedConverges(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	b := sparse.RandomVector(A.NRows, 4)
	np := 4
	for _, layout := range []string{"csr", "balanced"} {
		plan, err := PlanForLayout(layout, np, A.NRows, A.NNZ())
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveCGPipelined(machine(np), plan, A, b, core.Options{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if !st.Converged {
			t.Fatalf("%s: did not converge: %+v", layout, st)
		}
		if rr := relResidual(A, res.X, b); rr > 1e-8 {
			t.Fatalf("%s: relative residual %g", layout, rr)
		}
		if !st.Pipelined || !res.Strategy.Pipelined {
			t.Fatalf("%s: pipelined run reported stats=%v strategy=%v", layout, st.Pipelined, res.Strategy.Pipelined)
		}
		if !strings.Contains(res.Strategy.String(), "pipelined") {
			t.Fatalf("%s: strategy string %q lacks the pipelined marker", layout, res.Strategy)
		}
		if st.Replacements != 0 {
			t.Fatalf("%s: drift guard tripped (%d replacements) on a Laplacian", layout, st.Replacements)
		}
		if want := st.Iterations + 3; st.Reductions != want {
			t.Fatalf("%s: %d reductions for %d iterations, want %d (one hidden round per iteration)",
				layout, st.Reductions, st.Iterations, want)
		}
	}
}

// TestPipelinedRejectsIncompatiblePlans: the overlap recurrence has no
// CSC form, and it does not compose with s-step blocking — both are
// plan errors at prepare time, not silent fallbacks.
func TestPipelinedRejectsIncompatiblePlans(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.RandomVector(A.NRows, 6)
	np := 2
	plan := bindPlan(t, cscPlanMerge, A.NRows, A.NNZ(), np)
	if _, err := SolveCGPipelined(machine(np), plan, A, b, core.Options{}); err == nil {
		t.Fatal("pipelined CG on a CSC plan did not error")
	}
	if _, err := PreparePipelined(machine(np), plan, A); err == nil {
		t.Fatal("PreparePipelined on a CSC plan did not error")
	}
	if err := resolvePipelined(&preparedCG{format: "csr", sstep: 4}); err == nil {
		t.Fatal("pipelined + s-step blocking did not error")
	}
}

// TestRegistryWarmPipelinedHit: a registry hit on a pipelined Prepared
// reuses the cached ghost operators with zero modeled setup and
// bit-identical solutions — the pipelined path inherits the Prepared
// lifecycle unchanged.
func TestRegistryWarmPipelinedHit(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	n := A.NRows
	np := 4
	plan, err := PlanForLayout("csr", np, n, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PreparePipelined(machine(np), plan, A)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Pipelined() {
		t.Fatal("prepared handle does not report pipelined")
	}
	reg := NewRegistry(0)
	if _, ok := reg.Put("pipe-plan", pr); !ok {
		t.Fatal("put failed")
	}

	rhs := [][]float64{sparse.RandomVector(n, 9), sparse.RandomVector(n, 10)}
	opts := []core.Options{{Tol: 1e-10}}
	e, ok := reg.Get("pipe-plan")
	if !ok {
		t.Fatal("registry miss on the key just put")
	}
	e.Lock()
	cold, err := e.Prepared().SolveBatch(rhs, opts)
	e.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if cold.SetupModelTime <= 0 {
		t.Fatalf("cold pipelined setup model time %g, want > 0 (inspector exchange)", cold.SetupModelTime)
	}

	e, ok = reg.Get("pipe-plan")
	if !ok {
		t.Fatal("registry miss on warm lookup")
	}
	if !e.Prepared().Warm() {
		t.Fatal("entry not warm after first batch")
	}
	e.Lock()
	warm, err := e.Prepared().SolveBatch(rhs, opts)
	e.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if warm.SetupModelTime != 0 {
		t.Fatalf("warm pipelined setup model time %g, want exactly 0", warm.SetupModelTime)
	}
	for k := range rhs {
		if !warm.Results[k].Stats.Pipelined {
			t.Fatalf("rhs %d: warm stats not pipelined", k)
		}
		cx, wx := cold.Results[k].X, warm.Results[k].X
		for i := range cx {
			if cx[i] != wx[i] {
				t.Fatalf("rhs %d: warm x[%d] differs: %v vs %v", k, i, wx[i], cx[i])
			}
		}
		if rr := relResidual(A, wx, rhs[k]); rr > 1e-8 {
			t.Fatalf("rhs %d: relative residual %g", k, rr)
		}
	}
}

// TestVariantFrontier pins the three-regime frontier the §4 pricing
// predicts on a bandwidth-9 operator at np=4: at near-zero latency the
// plain recurrence's smaller flop count wins; at the default machine
// constants the pipelined variant wins by hiding its single round
// behind the mat-vec; at 125x latency the round cannot hide and the
// s-step amortization (1/s rounds) takes over.
func TestVariantFrontier(t *testing.T) {
	A := sparse.Banded(1024, 8)
	np := 4
	d := dist.NewBlock(A.NRows, np)
	for _, tc := range []struct {
		scale float64
		want  string
	}{
		{0.05, "plain"},
		{1, "pipelined"},
		{125, "sstep(s=8)"},
	} {
		c := topology.DefaultCostParams()
		c.TStartup *= tc.scale
		c.THop *= tc.scale
		m := comm.NewMachine(np, topology.Hypercube{}, c)
		best, models := ChooseVariant(m, A, d)
		if best != tc.want {
			t.Fatalf("scale %g: chose %q, want %q (%+v)", tc.scale, best, tc.want, models)
		}
		// The winner must be the frontier argmin, ties to the earlier
		// (simpler) variant.
		var tBest float64
		var iBest int
		for i, mod := range models {
			if mod.Name == best {
				tBest, iBest = mod.TimePerIter, i
			}
		}
		for i, mod := range models {
			if mod.TimePerIter < tBest || (mod.TimePerIter == tBest && i < iBest) {
				t.Fatalf("scale %g: chose %q (%.3g) but %q models %.3g", tc.scale, best, tBest, mod.Name, mod.TimePerIter)
			}
		}

		pipe := ModelPipelined(m, A, d)
		if pipe.RoundsPerIter != 1 {
			t.Fatalf("scale %g: pipelined models %g rounds/iter, want 1", tc.scale, pipe.RoundsPerIter)
		}
		wantHidden := pipe.ReduceTime
		if pipe.OverlapWindow < wantHidden {
			wantHidden = pipe.OverlapWindow
		}
		if pipe.HiddenTime != wantHidden {
			t.Fatalf("scale %g: hidden %g != min(reduce %g, window %g)", tc.scale, pipe.HiddenTime, pipe.ReduceTime, pipe.OverlapWindow)
		}
	}
}

// TestStencilPipelinedBitIdenticalToAssembled: the pipelined solver on
// a matrix-free stencil handle equals, bit for bit, core.CGPipelined
// over the assembled CSR ghost executor on the same brick layout — the
// overlap window prices differently, the arithmetic does not.
func TestStencilPipelinedBitIdenticalToAssembled(t *testing.T) {
	spec := mfree.Spec{Stencil: "5pt", Nx: 10, Ny: 6}
	A, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{1, 4} {
		m := machine(np)
		pr, err := PrepareStencilPipelined(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Pipelined() || !pr.strategy.Pipelined {
			t.Fatal("stencil handle does not report pipelined")
		}
		b := sparse.RandomVector(pr.N(), 5)
		out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
		if err != nil {
			t.Fatal(err)
		}
		if out.SetupModelTime != 0 {
			t.Fatalf("np=%d: stencil setup time %g, want exactly 0", np, out.SetupModelTime)
		}
		if !out.Results[0].Stats.Pipelined {
			t.Fatalf("np=%d: stats not pipelined", np)
		}

		var want []float64
		var st core.Stats
		if _, err := machine(np).RunChecked(func(p *comm.Proc) {
			brick, err := spec.Brick(np)
			if err != nil {
				t.Error(err)
				return
			}
			op := spmv.NewRowBlockCSRGhost(p, A, brick.VectorDist())
			bv := darray.New(p, brick.VectorDist())
			xv := darray.New(p, brick.VectorDist())
			bv.SetGlobal(func(g int) float64 { return b[g] })
			s, err := core.CGPipelined(p, op, bv, xv, core.Options{Tol: 1e-10}, true)
			if err != nil {
				t.Error(err)
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				want = full
				st = s
			}
		}); err != nil {
			t.Fatal(err)
		}

		got := out.Results[0].X
		if out.Results[0].Stats.Iterations != st.Iterations {
			t.Errorf("np=%d: %d iterations, assembled %d", np, out.Results[0].Stats.Iterations, st.Iterations)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("np=%d: x[%d] = %v, assembled %v", np, i, got[i], want[i])
			}
		}
	}
}
