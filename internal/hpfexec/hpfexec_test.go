package hpfexec

import (
	"math"
	"strings"
	"testing"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpf"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

// bindPlan parses and binds directives for an n x n system with nz
// nonzeros over np processors, supplying the standard array sizes.
func bindPlan(t *testing.T, src string, n, nz, np int) *hpf.Plan {
	t.Helper()
	plan, err := hpf.Bind(hpf.MustParse(src), np,
		map[string]int{"p": n, "q": n, "r": n, "x": n, "b": n,
			"row": n + 1, "col": nz, "a": nz,
			"colptr": n + 1, "rowidx": nz},
		map[string]int{"n": n, "nz": nz})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

const csrPlan = `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`

const cscPlanSerial = `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
`

const cscPlanMerge = cscPlanSerial + `
!EXT$ ITERATION j ON PROCESSOR(j*np/n), PRIVATE(q(n)) WITH MERGE(+)
`

const balancedPlan = csrPlan + `
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
`

func relResidual(A *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, A.NRows)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

func TestCSRPlanRunsScenario1(t *testing.T) {
	// Big enough that the row-strip halo (2 grid rows) is well under a
	// quarter of the vector, so the executor selection picks ghost.
	A := sparse.Laplace2D(16, 16)
	b := sparse.RandomVector(A.NRows, 2)
	np := 4
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	res, err := SolveCG(machine(np), plan, A, b, core.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Scenario != "row-block CSR" || !strings.HasPrefix(res.Strategy.Mode, "local") {
		t.Errorf("strategy %v", res.Strategy)
	}
	// The 2-D Laplacian has a thin halo: the executor must pick ghost.
	if res.Strategy.Mode != "local(ghost)" {
		t.Errorf("mode %q, want local(ghost) for a Laplacian", res.Strategy.Mode)
	}
	if !res.Stats.Converged {
		t.Fatalf("not converged: %v", res.Stats)
	}
	if rr := relResidual(A, res.X, b); rr > 1e-8 {
		t.Errorf("residual %g", rr)
	}
}

func TestCSCPlanModes(t *testing.T) {
	A := sparse.Banded(48, 3)
	b := sparse.RandomVector(48, 5)
	np := 4

	serialPlan := bindPlan(t, cscPlanSerial, 48, A.NNZ(), np)
	serial, err := SolveCG(machine(np), serialPlan, A, b, core.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Strategy.Mode != "serialized" {
		t.Fatalf("without ITERATION directive mode = %q", serial.Strategy.Mode)
	}

	mergePlan := bindPlan(t, cscPlanMerge, 48, A.NNZ(), np)
	merged, err := SolveCG(machine(np), mergePlan, A, b, core.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strategy.Mode != "private-merge" {
		t.Fatalf("with MERGE(+) directive mode = %q", merged.Strategy.Mode)
	}

	// Same numerics, different speed: §5.1's point.
	if serial.Stats.Iterations != merged.Stats.Iterations {
		t.Errorf("iterations differ: %d vs %d", serial.Stats.Iterations, merged.Stats.Iterations)
	}
	for i := range serial.X {
		if math.Abs(serial.X[i]-merged.X[i]) > 1e-9 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
	if merged.Run.ModelTime >= serial.Run.ModelTime {
		t.Errorf("merge model time %g >= serialized %g", merged.Run.ModelTime, serial.Run.ModelTime)
	}
	if !strings.Contains(merged.Strategy.String(), "private-merge") {
		t.Error("strategy string")
	}
}

func TestBalancedPlanRebalances(t *testing.T) {
	A := sparse.PowerLawClustered(400, 100, 7)
	b := sparse.RandomVector(400, 3)
	np := 4

	plain := bindPlan(t, csrPlan, 400, A.NNZ(), np)
	p1, err := SolveCG(machine(np), plain, A, b, core.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	bal := bindPlan(t, balancedPlan, 400, A.NNZ(), np)
	p2, err := SolveCG(machine(np), bal, A, b, core.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Strategy.Balanced || p1.Strategy.Balanced {
		t.Fatalf("balanced flags: %v %v", p1.Strategy, p2.Strategy)
	}
	if p2.Run.FlopImbalance() >= p1.Run.FlopImbalance() {
		t.Errorf("partitioner did not improve imbalance: %g vs %g",
			p2.Run.FlopImbalance(), p1.Run.FlopImbalance())
	}
	if rr := relResidual(A, p2.X, b); rr > 1e-6 {
		t.Errorf("balanced residual %g", rr)
	}
}

func TestMatchesSequential(t *testing.T) {
	A := sparse.RandomSPD(40, 5, 9)
	b := sparse.RandomVector(40, 4)
	np := 2
	plan := bindPlan(t, csrPlan, 40, A.NNZ(), np)
	res, err := SolveCG(machine(np), plan, A, b, core.Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 40)
	if _, err := seq.CG(A, b, xs, seq.Options{Tol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(res.X[i]-xs[i]) > 1e-7 {
			t.Fatalf("directive-driven solve differs from sequential at %d", i)
		}
	}
}

func TestSolveCGErrors(t *testing.T) {
	A := sparse.Laplace1D(8)
	b := sparse.Ones(8)
	np := 2

	// No SPARSE_MATRIX declaration.
	noSM := bindPlan(t, `!HPF$ DISTRIBUTE p(BLOCK)`, 8, A.NNZ(), np)
	if _, err := SolveCG(machine(np), noSM, A, b, core.Options{}); err == nil {
		t.Error("missing SPARSE_MATRIX accepted")
	}
	// Cyclic vector distribution.
	cyc := bindPlan(t, `
!HPF$ DISTRIBUTE p(CYCLIC)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`, 8, A.NNZ(), np)
	if _, err := SolveCG(machine(np), cyc, A, b, core.Options{}); err == nil {
		t.Error("cyclic vector distribution accepted")
	}
	// Plan/machine NP mismatch.
	plan := bindPlan(t, csrPlan, 8, A.NNZ(), np)
	if _, err := SolveCG(machine(np+1), plan, A, b, core.Options{}); err == nil {
		t.Error("NP mismatch accepted")
	}
	// Rectangular matrix and bad rhs.
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := SolveCG(machine(np), plan, rect.ToCSR(), b[:2], core.Options{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, err := SolveCG(machine(np), plan, A, b[:3], core.Options{}); err == nil {
		t.Error("short rhs accepted")
	}
	// No array of vector size.
	tiny := bindPlan(t, `
!HPF$ DISTRIBUTE col(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`, 8, A.NNZ(), np)
	delete(tiny.Arrays, "p") // ensure only col (nz-sized) remains
	if _, err := SolveCG(machine(np), tiny, A, b, core.Options{}); err == nil {
		t.Error("plan without vector arrays accepted")
	}
}

// TestSolveCGTimeoutCompletes: a healthy solve under the watchdog
// behaves exactly like SolveCG.
func TestSolveCGTimeoutCompletes(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	b := sparse.RandomVector(A.NRows, 3)
	np := 4
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	res, err := SolveCGTimeout(machine(np), plan, A, b, core.Options{Tol: 1e-10}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("not converged: %v", res.Stats)
	}
	if rr := relResidual(A, res.X, b); rr > 1e-8 {
		t.Errorf("residual %g", rr)
	}
	plain, err := SolveCG(machine(np), plan, A, b, core.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != plain.Stats.Iterations {
		t.Errorf("timeout path took %d iterations, plain path %d", res.Stats.Iterations, plain.Stats.Iterations)
	}
}
