// The matrix-free execution path: prepared handles for stencil CG with
// no assembled matrix. Where Prepare pays for partitioning, CSC
// conversion and the inspector's ghost-schedule exchange, and PrepareMG
// pays for a level hierarchy, PrepareStencil pays for nothing the
// modeled clock can see: the operator is two coefficients plus brick
// geometry, and its halo schedule is computed locally from the brick
// coordinates (mfree.Halo). SetupModelTime is therefore exactly zero on
// COLD runs as well as warm ones — the assembled path's setup cost is
// not amortized here, it is eliminated (experiment E25 prices both).
package hpfexec

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/mfree"
)

// PrepareStencil validates the stencil spec against the machine and
// returns the handle SolveStencilBatch runs from. No collective work
// happens here or later: the geometric schedule makes setup free.
func PrepareStencil(m *comm.Machine, spec mfree.Spec) (*Prepared, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, err := spec.Brick(m.NP()); err != nil {
		return nil, err
	}
	strategy := Strategy{
		Scenario: fmt.Sprintf("matrix-free %s stencil", spec.Stencil),
		Mode:     "mfree(geometric-halo)",
	}
	return &Prepared{
		m:        m,
		mfSpec:   &spec,
		strategy: strategy,
		mfOps:    make([]*mfree.Operator, m.NP()),
	}, nil
}

// Stencil returns the handle's stencil spec, or nil for other handles.
func (pr *Prepared) Stencil() *mfree.Spec { return pr.mfSpec }

// SolveStencil prepares and solves one matrix-free stencil system.
func SolveStencil(m *comm.Machine, spec mfree.Spec, b []float64, opt core.Options) (*Result, error) {
	pr, err := PrepareStencil(m, spec)
	if err != nil {
		return nil, err
	}
	out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{opt})
	if err != nil {
		return nil, err
	}
	return out.Results[0], nil
}

// SolveStencilBatch solves the prepared stencil problem for every
// right-hand side in one SPMD run. Cold runs construct each rank's
// operator locally (no collective — the geometric schedule needs no
// inspector exchange, so cold SetupModelTime is 0 like warm) and cache
// it in the handle; warm runs rebind the cached operators. Each RHS
// runs core.CG — whose fused fast path engages mfree's ApplyDot — or
// core.CGPipelined on handles from PrepareStencilPipelined, with one
// pooled workspace per rank — bit-identical across repeat calls and
// bit-identical to the assembled-CSR executor over the same brick
// layout.
func (pr *Prepared) SolveStencilBatch(rhs [][]float64, opts []core.Options) (*BatchResult, error) {
	if pr.mfSpec == nil {
		return nil, fmt.Errorf("hpfexec: SolveStencilBatch on a non-stencil handle (use SolveBatch)")
	}
	if len(rhs) == 0 {
		return nil, fmt.Errorf("hpfexec: empty batch")
	}
	n := pr.N()
	for k, b := range rhs {
		if len(b) != n {
			return nil, fmt.Errorf("hpfexec: rhs %d length %d != %d", k, len(b), n)
		}
	}
	if len(opts) != 1 && len(opts) != len(rhs) {
		return nil, fmt.Errorf("hpfexec: got %d option sets for %d right-hand sides", len(opts), len(rhs))
	}
	optFor := func(k int) core.Options {
		if len(opts) == 1 {
			return opts[0]
		}
		return opts[k]
	}

	np := pr.m.NP()
	out := &BatchResult{
		Results:        make([]*Result, len(rhs)),
		SolveModelTime: make([]float64, len(rhs)),
	}
	marks := make([][]float64, np)
	for r := range marks {
		marks[r] = make([]float64, len(rhs)+1)
	}
	stats := make([]core.Stats, len(rhs))
	xs := make([][]float64, len(rhs))
	var solveErr error

	warm := pr.warm
	run, err := pr.m.RunChecked(func(p *comm.Proc) {
		var op *mfree.Operator
		if warm {
			op = pr.mfOps[p.Rank()]
			op.Rebind(p)
		} else {
			var err error
			op, err = mfree.New(p, *pr.mfSpec)
			if err != nil {
				// Deterministic in (spec, np): every rank fails
				// identically and control flow stays aligned.
				if p.Rank() == 0 {
					solveErr = err
				}
				return
			}
			pr.mfOps[p.Rank()] = op
		}
		bv := darray.New(p, op.Dist())
		xv := darray.New(p, op.Dist())
		work := core.NewWorkspace()
		marks[p.Rank()][0] = p.Clock()
		for k := range rhs {
			b := rhs[k]
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv.Fill(0)
			opt := optFor(k)
			opt.Work = work
			var st core.Stats
			var err error
			if pr.pipelined {
				st, err = core.CGPipelined(p, op, bv, xv, opt, true)
			} else {
				st, err = core.CG(p, op, bv, xv, opt)
			}
			if err != nil {
				if p.Rank() == 0 {
					solveErr = fmt.Errorf("hpfexec: batch rhs %d: %w", k, err)
				}
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				xs[k] = full
				stats[k] = st
			}
			marks[p.Rank()][k+1] = p.Clock()
		}
	})
	if err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	pr.warm = true

	maxAt := func(j int) float64 {
		m := 0.0
		for r := 0; r < np; r++ {
			if marks[r][j] > m {
				m = marks[r][j]
			}
		}
		return m
	}
	out.SetupModelTime = maxAt(0)
	prev := out.SetupModelTime
	for k := range rhs {
		end := maxAt(k + 1)
		out.SolveModelTime[k] = end - prev
		prev = end
	}
	out.Run = run
	for k := range rhs {
		out.Results[k] = &Result{X: xs[k], Stats: stats[k], Run: run, Strategy: pr.strategy}
	}
	return out, nil
}
