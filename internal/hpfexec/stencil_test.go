package hpfexec

import (
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/mfree"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

func stencilSpec() mfree.Spec { return mfree.Spec{Stencil: "5pt", Nx: 10, Ny: 6} }

// TestSolveStencilConverges: the end-to-end matrix-free handle solves
// the stencil system and reports the matrix-free strategy.
func TestSolveStencilConverges(t *testing.T) {
	m := machine(4)
	pr, err := PrepareStencil(m, stencilSpec())
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != 60 {
		t.Fatalf("N = %d, want 60", pr.N())
	}
	b := sparse.RandomVector(pr.N(), 42)
	out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	if !res.Stats.Converged {
		t.Fatalf("no convergence: %+v", res.Stats)
	}
	if res.Strategy.Scenario != "matrix-free 5pt stencil" {
		t.Errorf("scenario = %q", res.Strategy.Scenario)
	}
	if pr.Stencil() == nil {
		t.Error("Stencil() nil on a stencil handle")
	}
	if out.Run.TotalFlops <= 0 {
		t.Errorf("no flops charged: %d", out.Run.TotalFlops)
	}
}

// TestStencilSetupZeroColdAndWarm is the subsystem's headline claim:
// unlike the assembled and MG paths, whose COLD batches pay for
// partitioning or inspector exchanges, the geometric schedule makes
// modeled setup exactly zero on the very first batch — and stays zero
// warm, with bit-identical answers.
func TestStencilSetupZeroColdAndWarm(t *testing.T) {
	m := machine(4)
	pr, err := PrepareStencil(m, stencilSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 7)
	opts := []core.Options{{Tol: 1e-10}}

	cold, err := pr.SolveStencilBatch([][]float64{b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SetupModelTime != 0 {
		t.Errorf("cold setup time %v, want exactly 0", cold.SetupModelTime)
	}
	if !pr.Warm() {
		t.Fatal("handle not warm after first batch")
	}
	warm, err := pr.SolveStencilBatch([][]float64{b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SetupModelTime != 0 {
		t.Errorf("warm setup time %v, want exactly 0", warm.SetupModelTime)
	}
	x0, x1 := cold.Results[0].X, warm.Results[0].X
	for i := range x0 {
		if x0[i] != x1[i] {
			t.Fatalf("warm answer differs at %d: %v vs %v", i, x0[i], x1[i])
		}
	}
	if cold.SolveModelTime[0] != warm.SolveModelTime[0] {
		t.Errorf("warm solve model %v != cold %v", warm.SolveModelTime[0], cold.SolveModelTime[0])
	}
}

// TestStencilBitIdenticalToAssembledCG: a full CG solve through the
// matrix-free handle equals, bit for bit, a CG solve over the
// assembled CSR ghost executor on the same brick layout — the
// end-to-end form of mfree's per-Apply contract.
func TestStencilBitIdenticalToAssembledCG(t *testing.T) {
	for _, spec := range []mfree.Spec{stencilSpec(), {Stencil: "27pt", Nx: 3, Ny: 3, Nz: 7}} {
		A, err := spec.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		for _, np := range []int{1, 3, 4} {
			m := machine(np)
			pr, err := PrepareStencil(m, spec)
			if err != nil {
				t.Fatal(err)
			}
			b := sparse.RandomVector(pr.N(), 5)
			out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
			if err != nil {
				t.Fatal(err)
			}

			var want []float64
			var st core.Stats
			if _, err := machine(np).RunChecked(func(p *comm.Proc) {
				brick, err := spec.Brick(np)
				if err != nil {
					t.Error(err)
					return
				}
				op := spmv.NewRowBlockCSRGhost(p, A, brick.VectorDist())
				bv := darray.New(p, brick.VectorDist())
				xv := darray.New(p, brick.VectorDist())
				bv.SetGlobal(func(g int) float64 { return b[g] })
				s, err := core.CG(p, op, bv, xv, core.Options{Tol: 1e-10})
				if err != nil {
					t.Error(err)
					return
				}
				full := xv.Gather()
				if p.Rank() == 0 {
					want = full
					st = s
				}
			}); err != nil {
				t.Fatal(err)
			}

			got := out.Results[0].X
			if out.Results[0].Stats.Iterations != st.Iterations {
				t.Errorf("%s np=%d: %d iterations, assembled %d",
					spec.Stencil, np, out.Results[0].Stats.Iterations, st.Iterations)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s np=%d: x[%d] = %v, assembled %v", spec.Stencil, np, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStencilBatchMultiRHS: each batched solution matches its solo
// solve bit for bit.
func TestStencilBatchMultiRHS(t *testing.T) {
	spec := stencilSpec()
	solo := func(seed int64) []float64 {
		pr, err := PrepareStencil(machine(2), spec)
		if err != nil {
			t.Fatal(err)
		}
		b := sparse.RandomVector(pr.N(), seed)
		out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
		if err != nil {
			t.Fatal(err)
		}
		return out.Results[0].X
	}
	pr, err := PrepareStencil(machine(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs := [][]float64{
		sparse.RandomVector(pr.N(), 1),
		sparse.RandomVector(pr.N(), 2),
		sparse.RandomVector(pr.N(), 3),
	}
	out, err := pr.SolveStencilBatch(rhs, []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	for k, seed := range []int64{1, 2, 3} {
		want := solo(seed)
		got := out.Results[k].X
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rhs %d: x[%d] = %v, solo %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestPrepareStencilRejectsBadSpec: admission-time validation,
// including the slab-vs-np geometry check.
func TestPrepareStencilRejectsBadSpec(t *testing.T) {
	if _, err := PrepareStencil(machine(2), mfree.Spec{Stencil: "9pt", Nx: 4, Ny: 4}); err == nil {
		t.Error("accepted unknown stencil")
	}
	if _, err := PrepareStencil(machine(4), mfree.Spec{Stencil: "5pt", Nx: 2, Ny: 8}); err == nil {
		t.Error("accepted slab thinner than the machine")
	}
}

// TestStencilHandleMemoryBytes: registry sizing is analytic and tiny.
func TestStencilHandleMemoryBytes(t *testing.T) {
	pr, err := PrepareStencil(machine(2), stencilSpec())
	if err != nil {
		t.Fatal(err)
	}
	if pr.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d", pr.MemoryBytes())
	}
}

// TestSolveBatchRoutesStencilHandles: registry consumers need no type
// switch for matrix-free handles either.
func TestSolveBatchRoutesStencilHandles(t *testing.T) {
	pr, err := PrepareStencil(machine(2), stencilSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 9)
	out, err := pr.SolveBatch([][]float64{b}, []core.Options{{Tol: 1e-8}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Results[0].Stats.Converged {
		t.Error("no convergence through SolveBatch routing")
	}
}
